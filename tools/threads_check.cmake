# threads_check.cmake — proves a bench sweep is thread-count invariant: the
# same binary run serially and with a worker pool must produce byte-identical
# canonical reports AND byte-identical run traces. Driven from add_test():
#
#   cmake -DBENCH=<bench binary> -DSCHEMA_CHECK=<bench_schema_check>
#         -DWORK_DIR=<scratch dir> -P threads_check.cmake
#
# The trace comparison is the sharp edge: the executor buffers each rep's
# observer events and replays them in rep order, so a parallel batch's trace
# must match a serial run byte for byte — any nondeterministic interleaving
# or seed-schema violation shows up here immediately. The report comparison
# uses `bench_schema_check --canon`, which strips the run-dependent fields
# (timings, git_rev, threads, trace_overhead).
if(NOT DEFINED BENCH OR NOT DEFINED SCHEMA_CHECK OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "threads_check.cmake needs -DBENCH=..., -DSCHEMA_CHECK=..., -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/serial" "${WORK_DIR}/parallel")

# Environment common to both runs: a small rep budget keeps the sweep quick,
# flags that change report contents are cleared, and each run traces into
# its own directory. Only SYNRAN_THREADS differs.
set(common_env
  ${CMAKE_COMMAND} -E env
  --unset=SYNRAN_CSV_DIR --unset=SYNRAN_CKPT_DIR --unset=SYNRAN_RESUME
  --unset=SYNRAN_FAIL_POLICY --unset=SYNRAN_REP_RETRIES
  SYNRAN_REPS_BUDGET=32)

foreach(which serial parallel)
  if(which STREQUAL "serial")
    set(threads 1)
  else()
    set(threads 3)
  endif()
  execute_process(
    COMMAND ${common_env} SYNRAN_THREADS=${threads}
      SYNRAN_BENCH_DIR=${WORK_DIR}/${which}
      SYNRAN_TRACE_DIR=${WORK_DIR}/${which}
      ${BENCH} --benchmark_filter=__none__
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${which} run failed (rc ${rc})\n${out}")
  endif()
endforeach()

# --- Compare canonical reports. -------------------------------------------
file(GLOB reports "${WORK_DIR}/serial/BENCH_*.json")
list(LENGTH reports n_reports)
if(NOT n_reports EQUAL 1)
  message(FATAL_ERROR "expected one report, found: ${reports}")
endif()
list(GET reports 0 serial_report)
get_filename_component(report_name "${serial_report}" NAME)

foreach(which serial parallel)
  execute_process(
    COMMAND ${SCHEMA_CHECK} --canon "${WORK_DIR}/${which}/${report_name}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE canon_${which} ERROR_VARIABLE canon_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--canon rejected the ${which} report\n${canon_err}")
  endif()
endforeach()

if(NOT canon_serial STREQUAL canon_parallel)
  message(FATAL_ERROR
    "parallel report differs from the serial one\n"
    "--- serial ---\n${canon_serial}\n--- parallel ---\n${canon_parallel}")
endif()

# --- Compare traces byte for byte. ----------------------------------------
file(GLOB serial_traces RELATIVE "${WORK_DIR}/serial"
  "${WORK_DIR}/serial/*.jsonl" "${WORK_DIR}/serial/*.bin")
list(LENGTH serial_traces n_traces)
if(n_traces EQUAL 0)
  message(FATAL_ERROR "serial run wrote no traces — the test degenerated "
    "into a report-only comparison")
endif()
foreach(trace ${serial_traces})
  if(NOT EXISTS "${WORK_DIR}/parallel/${trace}")
    message(FATAL_ERROR "parallel run is missing trace ${trace}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/serial/${trace}" "${WORK_DIR}/parallel/${trace}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace ${trace} differs between the serial and "
      "parallel runs")
  endif()
endforeach()
message(STATUS "threads check ok: ${n_traces} traces and the canonical "
  "reports are byte-identical at 1 vs 3 threads")
