#!/usr/bin/env bash
# End-to-end smoke of `synran serve` in socket mode, run by ctest
# (ServeCli.Smoke) and CI's serve-smoke job:
#
#   1.  ping over the socket
#   2.  run (cache miss), replayed run (cache hit) — byte-identical
#   3.  malformed config and non-JSON bodies — structured bad_request,
#       daemon stays up
#   4.  per-request deadline on an oversized batch — deadline_exceeded,
#       daemon stays up
#   5.  overload with --max-queue=1 — exactly the excess is shed
#   6.  SIGKILL mid-batch + a torn cache entry, restart over the same
#       cache dir — torn entry quarantined, cached response byte-identical
#       to the pre-kill one
#   7.  bench_schema_check --serve over the captured request and response
#       streams
#   8.  SIGTERM during an in-flight async batch — the in-flight request is
#       answered `shutting_down` and the daemon exits with code 4
#   9.  SIGTERM while idle — exit code 4
#
# Usage: serve_smoke.sh <synran-cli> <bench_schema_check> <workdir>
set -u

CLI=$1
CHECKER=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"
SOCK=$PWD/serve.sock
CACHE=$PWD/cache

fail() { echo "serve_smoke FAIL: $*" >&2; exit 1; }

# Never leave a daemon (or a blocked client) behind: ctest waits on every
# child, so an orphan turns one failed assertion into a timeout.
DAEMON=
CLIENT=
cleanup() {
  [ -n "${DAEMON:-}" ] && kill -KILL "$DAEMON" 2>/dev/null
  [ -n "${CLIENT:-}" ] && kill -KILL "$CLIENT" 2>/dev/null
  return 0
}
trap cleanup EXIT

frame() { printf '%s\n%s' "${#1}" "$1"; }

start_daemon() {
  "$CLI" serve --socket "$SOCK" --cache-dir "$CACHE" --git-rev smoke \
    "$@" 2>> serve.log &
  DAEMON=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON" 2>/dev/null || fail "daemon died on startup (serve.log)"
    sleep 0.1
  done
  fail "daemon never created $SOCK"
}

stop_daemon_expect() { # <expected exit code>
  kill -TERM "$DAEMON" 2>/dev/null
  wait "$DAEMON"
  local rc=$?
  [ "$rc" -eq "$1" ] || fail "daemon exited $rc, expected $1"
  DAEMON=
}

request() { # <request file> <response file>
  "$CLI" request --socket "$SOCK" < "$1" > "$2" || fail "request $1 failed"
}

# ---- 1. ping ---------------------------------------------------------------
start_daemon
frame '{"schema":"synran-req/1","id":"ping1","cmd":"ping"}' > ping.req
request ping.req ping.resp
grep -q '"pong":true' ping.resp || fail "ping got no pong: $(cat ping.resp)"

# ---- 2. miss, then hit: byte-identical -------------------------------------
RUN='{"schema":"synran-req/1","id":"run1","cmd":"run","config":{"model":"sync","n":16,"reps":5,"seed":21}}'
frame "$RUN" > run.req
request run.req run_miss.resp
grep -q '"ok":true' run_miss.resp || fail "run rejected: $(cat run_miss.resp)"
request run.req run_hit.resp
cmp -s run_miss.resp run_hit.resp \
  || fail "cache hit response differs from the computed one"

# ---- 3. malformed requests are structured rejections -----------------------
frame '{"schema":"synran-req/1","id":"bad","cmd":"run","config":{"bogus":1}}' \
  > bad.req
request bad.req bad.resp
grep -q '"code":"bad_request"' bad.resp || fail "unknown key not rejected"
grep -q '"id":"bad"' bad.resp || fail "rejection lost the request id"
frame 'this is not json' > notjson.req
request notjson.req notjson.resp
grep -q '"code":"bad_request"' notjson.resp || fail "non-JSON not rejected"

# ---- 4. deadline-exceeded, daemon keeps serving ----------------------------
SLOW='{"schema":"synran-req/1","id":"slow","cmd":"run","deadline_ms":50,"config":{"model":"sync","n":32,"reps":100000000,"seed":2}}'
frame "$SLOW" > slow.req
request slow.req slow.resp
grep -q '"code":"deadline_exceeded"' slow.resp \
  || fail "oversized batch not cut off: $(cat slow.resp)"
request ping.req ping2.resp
grep -q '"pong":true' ping2.resp || fail "daemon dead after deadline"

# ---- 5. overload shedding with --max-queue=1 -------------------------------
stop_daemon_expect 4
start_daemon --max-queue 1
{ frame "$SLOW"; frame "$SLOW"; frame "$SLOW"; } > burst.req
request burst.req burst.resp
# Every request is answered; how many are shed (vs served after the queue
# drains) depends on socket timing, but with --max-queue=1 at least one of
# the three must be.
answered=$(grep -o '"id":"slow"' burst.resp | wc -l)
[ "$answered" -eq 3 ] || fail "burst: expected 3 responses, got $answered"
overloaded=$(grep -o '"code":"overloaded"' burst.resp | wc -l)
[ "$overloaded" -ge 1 ] \
  || fail "expected at least 1 overloaded response, got $overloaded"

# ---- 6. SIGKILL mid-batch; restart; cache is intact and byte-identical -----
LONG='{"schema":"synran-req/1","id":"doomed","cmd":"run","config":{"model":"sync","n":64,"reps":100000000,"seed":4}}'
frame "$LONG" > long.req
"$CLI" request --socket "$SOCK" < long.req > /dev/null 2>&1 &
CLIENT=$!
sleep 1
kill -KILL "$DAEMON"
wait "$DAEMON" 2>/dev/null
wait "$CLIENT" 2>/dev/null
DAEMON=
printf '{"schema":"synran-ck' > "$CACHE/00deadbeef00dead.ckpt"  # torn entry
start_daemon
grep -q "1 quarantined" serve.log || fail "torn cache entry not quarantined"
[ -e "$CACHE/00deadbeef00dead.ckpt.quarantined" ] \
  || fail "torn entry not renamed aside"
request run.req run_revived.resp
cmp -s run_miss.resp run_revived.resp \
  || fail "restarted daemon served different bytes for the cached run"

# ---- 7. the schema checker validates both captured streams -----------------
cat ping.req run.req bad.req slow.req burst.req > all_requests.stream
cat ping.resp run_miss.resp bad.resp slow.resp burst.resp > all_responses.stream
"$CHECKER" --serve all_requests.stream all_responses.stream \
  || fail "bench_schema_check --serve rejected the captured streams"
# notjson.req is a well-framed but invalid body: the checker must reject it.
if "$CHECKER" --serve notjson.req > /dev/null 2>&1; then
  fail "bench_schema_check --serve accepted a non-JSON body"
fi

# ---- 8. SIGTERM during an in-flight async batch drains with code 4 ---------
ASYNC='{"schema":"synran-req/1","id":"abatch","cmd":"run","config":{"model":"async","n":16,"reps":100000000,"seed":6}}'
frame "$ASYNC" > async.req
"$CLI" request --socket "$SOCK" < async.req > async.resp 2>/dev/null &
CLIENT=$!
sleep 1
kill -TERM "$DAEMON"
wait "$DAEMON"
rc=$?
[ "$rc" -eq 4 ] || fail "drain mid-async-batch exited $rc, expected 4"
wait "$CLIENT" 2>/dev/null
grep -q '"code":"shutting_down"' async.resp \
  || fail "in-flight async request not answered on drain: $(cat async.resp)"
DAEMON=

# ---- 9. SIGTERM while idle drains with code 4 ------------------------------
start_daemon
sleep 0.3
stop_daemon_expect 4

echo "serve_smoke OK"
