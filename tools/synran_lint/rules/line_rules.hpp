// The nine per-line rules, run over a lexed file's code view so comments
// and string literals cannot false-positive. Rule semantics are documented
// in lint.hpp; suppression trailers are read from the original lines.
#pragma once

#include <vector>

#include "synran_lint/lexer.hpp"
#include "synran_lint/lint.hpp"

namespace synran::lint {

std::vector<Finding> run_line_rules(const LexedFile& file);

}  // namespace synran::lint
