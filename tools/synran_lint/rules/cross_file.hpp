// The three cross-file rules. They need the whole project at once:
//
//   layering         every src-internal #include edge must sit in the layer
//                    DAG's transitive closure (include_graph.hpp); include
//                    cycles among undeclared modules are rejected too.
//   rng-streams      SeedSequence stream tags — constants named k*Stream*
//                    and literal stream(<int>) call sites in src/ — must be
//                    pairwise distinct. Two subsystems sharing a tag draw
//                    the *same* pseudorandom stream from the master seed: a
//                    seed collision no test notices until correlations bite.
//   schema-literals  JSON field names emitted by the trace/bench writers
//                    (src/obs/trace_writer.cpp, bench/bench_util.hpp) must
//                    appear as string literals in the schema validator
//                    (tools/bench_schema_check.cpp), and every kTrace2*
//                    wire constant defined in src/obs must be referenced
//                    by name in the validator's synran-trace/2 decoder; a
//                    field or constant the validator has never heard of
//                    means writer and checker drifted.
//
// Findings honor the same `// synran-lint: allow(<rule>)` trailers as the
// per-line rules, read from the original line each finding lands on.
#pragma once

#include <vector>

#include "synran_lint/lexer.hpp"
#include "synran_lint/lint.hpp"

namespace synran::lint {

/// Everything the cross-file rules look at. `checker` is the lexed
/// tools/bench_schema_check.cpp when the tree has one (it lives outside the
/// scanned roots, so scan_tree reads it separately); without it the
/// schema-literals rule is silent.
struct Project {
  std::vector<LexedFile> files;
  const LexedFile* checker = nullptr;
};

std::vector<Finding> run_cross_file_rules(const Project& project);

}  // namespace synran::lint
