#include "synran_lint/rules/cross_file.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "synran_lint/include_graph.hpp"

namespace synran::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

std::string hex_tag(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

/// Parses an integer literal (decimal or 0x hex, with optional digit
/// separators and u/l suffixes) starting at `pos`. Returns the value and
/// advances `pos` past the literal; nullopt if `pos` starts no literal.
std::optional<std::uint64_t> parse_int_literal(std::string_view s,
                                               std::size_t& pos) {
  std::size_t i = pos;
  std::uint64_t value = 0;
  bool any = false;
  if (i + 1 < s.size() && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    i += 2;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\'') continue;
      const int d = std::isdigit(static_cast<unsigned char>(c)) ? c - '0'
                    : (c >= 'a' && c <= 'f')                    ? c - 'a' + 10
                    : (c >= 'A' && c <= 'F')                    ? c - 'A' + 10
                                                                : -1;
      if (d < 0) break;
      value = value * 16 + static_cast<std::uint64_t>(d);
      any = true;
    }
  } else {
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '\'') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) break;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      any = true;
    }
  }
  if (!any) return std::nullopt;
  while (i < s.size() && (s[i] == 'u' || s[i] == 'U' || s[i] == 'l' ||
                          s[i] == 'L'))
    ++i;
  if (i < s.size() && ident_char(s[i])) return std::nullopt;  // 123abc
  pos = i;
  return value;
}

std::size_t skip_ws(std::string_view s, std::size_t pos) {
  while (pos < s.size() && is_space(s[pos])) ++pos;
  return pos;
}

// ---------------------------------------------------------------- layering

void layering_rule(const Project& project, std::vector<Finding>& out) {
  std::map<std::string, const LexedFile*> by_path;
  for (const auto& f : project.files) by_path[f.rel_path] = &f;

  const auto edges = project_edges(project.files);

  // Reachability over the observed module graph, for cycle attribution: an
  // edge lies on a cycle iff its head reaches its tail.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& e : edges) adj[e.from_module].insert(e.to_module);
  const auto reaches = [&adj](const std::string& from, const std::string& to) {
    std::vector<std::string> stack{from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string m = stack.back();
      stack.pop_back();
      if (m == to) return true;
      if (!seen.insert(m).second) continue;
      const auto it = adj.find(m);
      if (it != adj.end())
        stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
    return false;
  };

  for (const auto& e : edges) {
    const LexedFile* file = by_path.at(e.file);
    if (e.line >= 1 && e.line <= file->lines.size() &&
        allows(file->lines[e.line - 1], "layering"))
      continue;
    if (layer_known(e.from_module) && layer_known(e.to_module)) {
      if (!layer_allows(e.from_module, e.to_module)) {
        std::string deps;
        for (const auto& d : layer_direct_deps().at(e.from_module)) {
          if (!deps.empty()) deps += ", ";
          deps += d;
        }
        out.push_back(Finding{
            e.file, e.line, "layering",
            "src/" + e.from_module + " may not include src/" + e.to_module +
                ": the layer DAG (include_graph.hpp) gives " +
                e.from_module + " the deps {" + deps +
                "}; an upward edge inverts the architecture"});
      }
    } else if (reaches(e.to_module, e.from_module)) {
      out.push_back(Finding{
          e.file, e.line, "layering",
          "include cycle: src/" + e.from_module + " -> src/" + e.to_module +
              " closes a loop back to src/" + e.from_module +
              "; module includes must form a DAG"});
    }
  }
}

// -------------------------------------------------------------- rng-streams

struct StreamTagSite {
  std::string file;
  std::size_t line = 0;
  std::string name;  ///< constant identifier, or "literal" for a bare tag
};

void rng_streams_rule(const Project& project, std::vector<Finding>& out) {
  std::map<std::uint64_t, std::vector<StreamTagSite>> by_value;

  for (const auto& f : project.files) {
    if (module_of(f.rel_path).empty()) continue;  // src/ only
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string_view code = f.code[li];
      if (allows(f.lines[li], "rng-streams")) continue;
      std::size_t i = 0;
      while (i < code.size()) {
        if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) {
          ++i;
          continue;
        }
        std::size_t end = i;
        while (end < code.size() && ident_char(code[end])) ++end;
        const std::string_view ident = code.substr(i, end - i);

        // `kFooStreamBase = <literal>`: a stream-tag constant definition.
        if (ident.size() > 1 && ident[0] == 'k' &&
            ident.find("Stream") != std::string_view::npos) {
          std::size_t j = skip_ws(code, end);
          if (j < code.size() && code[j] == '=' &&
              (j + 1 >= code.size() || code[j + 1] != '=')) {
            j = skip_ws(code, j + 1);
            if (const auto v = parse_int_literal(code, j)) {
              by_value[*v].push_back(
                  StreamTagSite{f.rel_path, li + 1, std::string(ident)});
            }
          }
        }

        // `stream(<literal> ...)`: a bare tag at a derivation site.
        if (ident == "stream") {
          std::size_t j = skip_ws(code, end);
          if (j < code.size() && code[j] == '(') {
            j = skip_ws(code, j + 1);
            if (const auto v = parse_int_literal(code, j)) {
              by_value[*v].push_back(
                  StreamTagSite{f.rel_path, li + 1, "literal tag"});
            }
          }
        }
        i = end;
      }
    }
  }

  for (const auto& [value, sites] : by_value) {
    if (sites.size() < 2) continue;
    std::vector<StreamTagSite> ordered = sites;
    std::sort(ordered.begin(), ordered.end(),
              [](const StreamTagSite& a, const StreamTagSite& b) {
                return a.file != b.file ? a.file < b.file : a.line < b.line;
              });
    for (std::size_t s = 1; s < ordered.size(); ++s) {
      out.push_back(Finding{
          ordered[s].file, ordered[s].line, "rng-streams",
          "stream tag " + hex_tag(value) + " (" + ordered[s].name +
              ") collides with " + ordered[0].name + " at " +
              ordered[0].file + ":" + std::to_string(ordered[0].line) +
              "; two owners of one tag draw the same pseudorandom stream "
              "from the master seed"});
    }
  }
}

// ---------------------------------------------------------- schema-literals

bool is_writer_file(std::string_view rel_path) {
  return rel_path == "src/obs/trace_writer.cpp" ||
         rel_path == "bench/bench_util.hpp";
}

/// The code immediately preceding a literal, skipping blank prefixes back
/// across lines, must end with `set(` for the literal to be a JSON field
/// name (first argument of JsonValue::object().set("name", ...)).
bool is_set_field_position(const LexedFile& f, const StringLiteral& lit) {
  std::size_t line_idx = lit.line - 1;
  std::string_view before =
      std::string_view(f.code[line_idx]).substr(0, lit.column);
  while (true) {
    std::size_t end = before.size();
    while (end > 0 && is_space(before[end - 1])) --end;
    if (end > 0) {
      before = before.substr(0, end);
      break;
    }
    if (line_idx == 0) return false;
    --line_idx;
    before = f.code[line_idx];
  }
  constexpr std::string_view kSetOpen = "set(";
  return before.size() >= kSetOpen.size() &&
         before.substr(before.size() - kSetOpen.size()) == kSetOpen;
}

/// The binary trace format's wire constants share the checker-lockstep
/// contract with the JSON field names: every `kTrace2*` constant the obs
/// layer defines (obs/trace_format.hpp) must be referenced by name in
/// tools/bench_schema_check.cpp, whose synran-trace/2 decoder re-implements
/// the wire walk from exactly those constants.
constexpr std::string_view kTrace2Prefix = "kTrace2";

void schema_literals_rule(const Project& project, std::vector<Finding>& out) {
  if (project.checker == nullptr) return;

  std::set<std::string> known;
  for (const auto& lit : project.checker->strings) known.insert(lit.text);

  // Every identifier token of the checker, for the kTrace2* constant check.
  std::set<std::string, std::less<>> checker_idents;
  for (const std::string& line : project.checker->code) {
    const std::string_view code = line;
    std::size_t i = 0;
    while (i < code.size()) {
      if (!ident_char(code[i])) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < code.size() && ident_char(code[end])) ++end;
      checker_idents.insert(std::string(code.substr(i, end - i)));
      i = end;
    }
  }

  for (const auto& f : project.files) {
    if (is_writer_file(f.rel_path)) {
      for (const auto& lit : f.strings) {
        if (lit.text.empty() || !is_set_field_position(f, lit)) continue;
        if (known.count(lit.text) != 0) continue;
        if (allows(f.lines[lit.line - 1], "schema-literals")) continue;
        out.push_back(Finding{
            f.rel_path, lit.line, "schema-literals",
            "JSON field \"" + lit.text + "\" is emitted here but appears "
                "nowhere in tools/bench_schema_check.cpp; writer and schema "
                "validator have drifted — teach the checker the field (or "
                "drop it from the writer)"});
      }
    }

    // `kTrace2Foo = <anything>` in src/obs: a wire-constant definition.
    if (module_of(f.rel_path) != "obs") continue;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string_view code = f.code[li];
      std::size_t i = 0;
      while (i < code.size()) {
        if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) {
          ++i;
          continue;
        }
        std::size_t end = i;
        while (end < code.size() && ident_char(code[end])) ++end;
        const std::string_view ident = code.substr(i, end - i);
        i = end;
        if (ident.substr(0, kTrace2Prefix.size()) != kTrace2Prefix ||
            ident.size() == kTrace2Prefix.size())
          continue;
        const std::size_t j = skip_ws(code, end);
        if (j >= code.size() || code[j] != '=' ||
            (j + 1 < code.size() && code[j + 1] == '='))
          continue;  // a use, not a definition
        if (checker_idents.find(ident) != checker_idents.end()) continue;
        if (allows(f.lines[li], "schema-literals")) continue;
        out.push_back(Finding{
            f.rel_path, li + 1, "schema-literals",
            "wire constant " + std::string(ident) + " is defined here but "
                "referenced nowhere in tools/bench_schema_check.cpp; the "
                "synran-trace/2 validator has drifted from the format — "
                "teach its decoder the constant (or drop it from the "
                "format)"});
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_cross_file_rules(const Project& project) {
  std::vector<Finding> out;
  layering_rule(project, out);
  rng_streams_rule(project, out);
  schema_literals_rule(project, out);
  std::sort(out.begin(), out.end(), finding_order);
  return out;
}

}  // namespace synran::lint
