#include "synran_lint/rules/line_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace synran::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// True iff `token` occurs in `line` at an identifier boundary (the
/// preceding character, if any, is not part of an identifier; same for the
/// following character when `right_boundary` is set).
bool has_token(std::string_view line, std::string_view token,
               bool right_boundary = false) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok =
        !right_boundary || end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

struct TokenRule {
  std::string_view token;
  bool right_boundary;
  std::string_view message;
};

constexpr std::string_view kRandomMessage =
    "banned randomness primitive; all randomness must derive from the "
    "master seed via Xoshiro256/SeedSequence in src/common/rng.hpp";

constexpr std::array<TokenRule, 9> kBannedRandom{{
    {"std::mt19937", false, kRandomMessage},
    {"mt19937", false, kRandomMessage},
    {"std::random_device", false, kRandomMessage},
    {"random_device", false, kRandomMessage},
    {"std::rand(", false, kRandomMessage},
    {"srand(", false, kRandomMessage},
    {"rand(", false, kRandomMessage},
    {"std::time(", false,
     "time(...)-derived values are seeds that change run to run; derive "
     "seeds from the experiment's master seed instead"},
    {"time(nullptr", false,
     "time(...)-derived values are seeds that change run to run; derive "
     "seeds from the experiment's master seed instead"},
}};

constexpr std::string_view kClockMessage =
    "wall-clock read outside src/obs/ and bench/; seeded runs must not "
    "observe real time — move timing into the observability layer or the "
    "bench harness";

constexpr std::array<TokenRule, 5> kWallClock{{
    {"std::chrono", false, kClockMessage},
    {"<chrono>", false, kClockMessage},
    {"steady_clock", true, kClockMessage},
    {"system_clock", true, kClockMessage},
    {"high_resolution_clock", true, kClockMessage},
}};

constexpr std::string_view kThreadsMessage =
    "threading primitive outside src/exec/; the batch executor is the one "
    "concurrency boundary — route parallel work through "
    "exec::BatchExecutor so rep scheduling stays deterministic";

constexpr std::array<TokenRule, 8> kThreads{{
    {"std::thread", false, kThreadsMessage},
    {"std::jthread", false, kThreadsMessage},
    {"std::async", false, kThreadsMessage},
    {"std::mutex", false, kThreadsMessage},
    {"std::shared_mutex", false, kThreadsMessage},
    {"<thread>", false, kThreadsMessage},
    {"<mutex>", false, kThreadsMessage},
    {"<future>", false, kThreadsMessage},
}};

constexpr std::string_view kSignalsMessage =
    "signal primitive outside src/exec/; exec/stopper.{hpp,cpp} owns the "
    "one SIGINT/SIGTERM handler and its monotonic stop flag — poll "
    "exec::stop_requested() instead of installing handlers";

constexpr std::array<TokenRule, 7> kSignals{{
    {"<csignal>", false, kSignalsMessage},
    {"<signal.h>", false, kSignalsMessage},
    {"std::signal", false, kSignalsMessage},
    {"sigaction", true, kSignalsMessage},
    {"std::raise", false, kSignalsMessage},
    {"sig_atomic_t", true, kSignalsMessage},
    {"signal(", false, kSignalsMessage},
}};

}  // namespace

std::vector<Finding> run_line_rules(const LexedFile& file) {
  const FileClass fc = classify(file.rel_path);
  std::vector<Finding> findings;
  if (!fc.scanned) return findings;

  const auto report = [&](std::size_t line_no, std::string_view rule,
                          std::string_view message) {
    findings.push_back(Finding{file.rel_path, line_no, std::string(rule),
                               std::string(message)});
  };

  bool pragma_once_allowed = false;

  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::size_t line_no = i + 1;
    // Token rules see the comment/literal-blanked code view; suppression
    // trailers live in comments, so allow() reads the original line.
    const std::string_view code = file.code[i];
    const std::string_view orig = file.lines[i];

    std::size_t first = code.find_first_not_of(" \t");
    const std::string_view trimmed =
        first == std::string_view::npos ? std::string_view{}
                                        : code.substr(first);

    if (allows(orig, "pragma-once")) pragma_once_allowed = true;

    if (!fc.is_rng_header && !allows(orig, "banned-random")) {
      for (const auto& rule : kBannedRandom) {
        if (has_token(code, rule.token, rule.right_boundary)) {
          report(line_no, "banned-random", rule.message);
          break;
        }
      }
    }

    if (!fc.clock_allowed && !allows(orig, "wall-clock")) {
      for (const auto& rule : kWallClock) {
        if (has_token(code, rule.token, rule.right_boundary)) {
          report(line_no, "wall-clock", rule.message);
          break;
        }
      }
    }

    if (!fc.threads_allowed && !allows(orig, "threads")) {
      for (const auto& rule : kThreads) {
        if (has_token(code, rule.token, rule.right_boundary)) {
          report(line_no, "threads", rule.message);
          break;
        }
      }
    }

    if (!fc.signals_allowed && !allows(orig, "signals")) {
      for (const auto& rule : kSignals) {
        if (has_token(code, rule.token, rule.right_boundary)) {
          report(line_no, "signals", rule.message);
          break;
        }
      }
    }

    if (fc.protocol_code && !allows(orig, "coin-source") &&
        has_token(code, "Xoshiro256", true)) {
      report(line_no, "coin-source",
             "direct Xoshiro256 use in protocol code; draw coins through "
             "CoinSource::flip() so the valency engine can enumerate "
             "outcomes instead of sampling them");
    }

    if (fc.is_header && !allows(orig, "using-namespace") &&
        has_token(code, "using namespace")) {
      report(line_no, "using-namespace",
             "'using namespace' in a header leaks into every includer");
    }

    if (fc.library_code && !allows(orig, "iostream") &&
        starts_with(trimmed, "#include") &&
        code.find("<iostream>") != std::string_view::npos) {
      report(line_no, "iostream",
             "<iostream> in library code; only tools/, examples/, and "
             "src/runner/ may print");
    }

    if (!allows(orig, "bare-assert")) {
      if (has_token(code, "assert(")) {
        report(line_no, "bare-assert",
               "bare assert() compiles out in release builds; use "
               "SYNRAN_CHECK / SYNRAN_REQUIRE (always-on, throwing)");
      } else if (has_token(code, "abort(")) {
        report(line_no, "bare-assert",
               "abort() gives no diagnostic; use SYNRAN_CHECK / "
               "SYNRAN_REQUIRE (always-on, throwing)");
      }
    }
  }

  if (fc.is_header && !file.has_pragma_once && !pragma_once_allowed) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  std::sort(findings.begin(), findings.end(), finding_order);
  return findings;
}

}  // namespace synran::lint
