// A minimal C++ lexer for synran_lint: classifies every byte of a source
// file as code, comment, or literal so rules can match *tokens* instead of
// raw lines. The old per-line substring scan false-positived on doc comments
// ("never use std::rand here") and on fixture strings; the lexer makes those
// bytes invisible to the rules while keeping line/column geometry intact.
//
// Handled: // and /* */ comments (including line-spliced `// ... \`
// continuations), string and char literals with escapes, raw strings
// R"delim(...)delim" (any prefix, any delimiter), digit separators
// (1'000'000 does not open a char literal), and preprocessor #include
// directives, whose header-names are captured as structured edges for the
// include graph rather than treated as string literals.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace synran::lint {

/// One string or character literal: where it opens and its raw contents
/// (escape sequences are kept verbatim, not decoded).
struct StringLiteral {
  std::size_t line = 0;    ///< 1-based line of the opening quote
  std::size_t column = 0;  ///< 0-based column of the opening quote
  std::string text;        ///< characters between the delimiters
};

/// One #include directive.
struct IncludeDirective {
  std::size_t line = 0;  ///< 1-based
  std::string target;    ///< header-name without the <> or "" delimiters
  bool angled = false;   ///< <...> (system) vs "..." (project)
};

/// A lexed file. `code` mirrors `lines` byte for byte except that comment
/// bytes and literal *contents* are blanked to spaces (delimiters stay, so
/// `"..."` survives as `""`); rules that match tokens scan `code`, rules
/// that read suppression trailers scan `lines`.
struct LexedFile {
  std::string rel_path;
  std::vector<std::string> lines;  ///< original text, no trailing '\n'
  std::vector<std::string> code;   ///< comment/literal-blanked view
  std::vector<StringLiteral> strings;
  std::vector<IncludeDirective> includes;
  bool has_pragma_once = false;  ///< a real `#pragma once` outside comments
};

LexedFile lex(std::string_view rel_path, std::string_view contents);

}  // namespace synran::lint
