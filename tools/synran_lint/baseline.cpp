#include "synran_lint/baseline.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace synran::lint {

constexpr std::string_view kBaselineSchema = "synran-lint-baseline/1";

Baseline parse_baseline(std::string_view json) {
  using synran::obs::JsonValue;
  std::string err;
  const auto doc = JsonValue::parse(json, &err);
  if (!doc.has_value())
    throw std::runtime_error("baseline: parse error: " + err);
  if (!doc->is_object())
    throw std::runtime_error("baseline: document is not a JSON object");
  const auto* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kBaselineSchema)
    throw std::runtime_error("baseline: schema is not \"" +
                             std::string(kBaselineSchema) + "\"");
  const auto* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_array())
    throw std::runtime_error("baseline: \"entries\" is not an array");

  Baseline out;
  for (std::size_t i = 0; i < entries->as_array().size(); ++i) {
    const auto& e = entries->as_array()[i];
    const std::string at = "baseline: entries[" + std::to_string(i) + "]";
    if (!e.is_object()) throw std::runtime_error(at + " is not an object");
    const auto* file = e.find("file");
    const auto* line = e.find("line");
    const auto* rule = e.find("rule");
    if (file == nullptr || !file->is_string())
      throw std::runtime_error(at + ".file is not a string");
    if (line == nullptr || !line->is_int() || line->as_int() < 1)
      throw std::runtime_error(at + ".line is not a positive integer");
    if (rule == nullptr || !rule->is_string())
      throw std::runtime_error(at + ".rule is not a string");
    out.entries.push_back(
        BaselineEntry{file->as_string(),
                      static_cast<std::size_t>(line->as_int()),
                      rule->as_string()});
  }
  return out;
}

std::string baseline_json(const std::vector<Finding>& findings) {
  using synran::obs::JsonValue;
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(), finding_order);
  JsonValue entries = JsonValue::array();
  for (const auto& f : sorted) {
    entries.push(JsonValue::object()
                     .set("file", JsonValue(f.file))
                     .set("line", JsonValue(std::uint64_t{f.line}))
                     .set("rule", JsonValue(f.rule)));
  }
  return JsonValue::object()
      .set("schema", JsonValue(std::string(kBaselineSchema)))
      .set("entries", std::move(entries))
      .dump();
}

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& baseline) {
  BaselineResult result;
  std::vector<bool> used(baseline.entries.size(), false);
  for (const auto& f : findings) {
    bool suppressed = false;
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      const auto& e = baseline.entries[i];
      if (!used[i] && e.file == f.file && e.line == f.line &&
          e.rule == f.rule) {
        used[i] = true;
        suppressed = true;
        break;
      }
    }
    if (suppressed)
      ++result.suppressed;
    else
      result.active.push_back(f);
  }
  for (std::size_t i = 0; i < baseline.entries.size(); ++i)
    if (!used[i]) result.stale.push_back(baseline.entries[i]);
  return result;
}

}  // namespace synran::lint
