// Project include graph + the enforced layer DAG.
//
// `src/` is layered: every module (a directory directly under src/) may
// include only modules it is declared to depend on, directly or
// transitively. The declared DAG, lowest layer first:
//
//   common                                (primitives: rng, bitsets, checks)
//   net, analysis, coin      -> common
//   obs                      -> net, analysis
//   sim                      -> net, obs
//   async                    -> net
//   protocols                -> analysis, sim
//   lowerbound               -> net, sim
//   adversary                -> net, sim, protocols, lowerbound
//   exec                     -> analysis, obs, sim
//   runner                   -> everything
//
// The `layering` rule rejects any src-internal #include whose edge is not in
// the transitive closure of this table (an "upward" or sideways edge), and
// any include cycle among modules the table does not know (fixture trees,
// future modules): a cycle is unlayerable by definition.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "synran_lint/lexer.hpp"

namespace synran::lint {

/// "src/exec/batch.hpp" -> "exec"; "" for anything not of the form
/// src/<module>/<...>.
std::string module_of(std::string_view rel_path);

/// Declared direct dependencies per module (the table above).
const std::map<std::string, std::vector<std::string>>& layer_direct_deps();

/// True iff `module` appears in the declared DAG.
bool layer_known(const std::string& module);

/// True iff `from` may include `to` (reflexive; transitive closure of the
/// declared direct deps). Only meaningful when both modules are known.
bool layer_allows(const std::string& from, const std::string& to);

/// One cross-module include edge observed in the project.
struct IncludeEdge {
  std::string file;         ///< repo-relative path of the including file
  std::size_t line = 0;     ///< line of the #include
  std::string from_module;  ///< module of `file`
  std::string to_module;    ///< first path component of the include target
};

/// Extracts the cross-module edges of all src/ files. Quote-includes whose
/// first path component names a module present in `files` (or in the
/// declared DAG) become edges; everything else (system headers, third-party,
/// same-module includes) is ignored.
std::vector<IncludeEdge> project_edges(const std::vector<LexedFile>& files);

/// Modules that sit on an include cycle (a strongly connected component of
/// the module graph with more than one node, or a mutual pair).
std::set<std::string> cyclic_modules(const std::vector<IncludeEdge>& edges);

}  // namespace synran::lint
