#include "synran_lint/lexer.hpp"

#include <cctype>

namespace synran::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return c == ' ' || c == '\t'; }

/// True iff `before` (the code emitted so far on the current line) is
/// exactly an `#include` directive head, i.e. the next token is the
/// header-name. Tolerates `#  include` and leading whitespace.
bool include_head(std::string_view before) {
  std::size_t i = 0;
  while (i < before.size() && is_space(before[i])) ++i;
  if (i >= before.size() || before[i] != '#') return false;
  ++i;
  while (i < before.size() && is_space(before[i])) ++i;
  constexpr std::string_view kw = "include";
  if (before.substr(i, kw.size()) != kw) return false;
  i += kw.size();
  while (i < before.size() && is_space(before[i])) ++i;
  return i == before.size();
}

/// The identifier glued to the left of a `"` decides whether it opens a raw
/// string: R, LR, uR, UR, u8R.
bool raw_string_prefix(std::string_view code_before) {
  std::size_t end = code_before.size();
  std::size_t start = end;
  while (start > 0 && ident_char(code_before[start - 1])) --start;
  const std::string_view id = code_before.substr(start, end - start);
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

}  // namespace

LexedFile lex(std::string_view rel_path, std::string_view contents) {
  LexedFile f;
  f.rel_path = std::string(rel_path);

  // Split into lines up front; the state machine below walks them in order,
  // carrying comment/literal state across newlines where C++ does.
  std::size_t pos = 0;
  while (pos <= contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    if (nl == std::string_view::npos) {
      if (pos < contents.size()) f.lines.emplace_back(contents.substr(pos));
      break;
    }
    f.lines.emplace_back(contents.substr(pos, nl - pos));
    pos = nl + 1;
  }

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
    kIncludeQuote,
    kIncludeAngle,
  };
  State st = State::kCode;
  std::string raw_close;       // ")delim\"" that ends the current raw string
  StringLiteral lit;           // literal being accumulated
  IncludeDirective inc;        // include target being accumulated
  f.code.reserve(f.lines.size());

  for (std::size_t ln = 0; ln < f.lines.size(); ++ln) {
    const std::string& line = f.lines[ln];
    std::string code(line.size(), ' ');
    const bool spliced = !line.empty() && line.back() == '\\';

    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      switch (st) {
        case State::kCode: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            st = State::kLineComment;
            ++i;  // both slashes stay blank
            break;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            st = State::kBlockComment;
            ++i;
            break;
          }
          if (c == '"') {
            const std::string_view before =
                std::string_view(code).substr(0, i);
            if (raw_string_prefix(before)) {
              // R"delim( ... — collect the close pattern, then skip to it.
              std::string delim;
              std::size_t j = i + 1;
              while (j < line.size() && line[j] != '(') delim += line[j++];
              raw_close = ")" + delim + "\"";
              lit = StringLiteral{ln + 1, i, ""};
              code[i] = '"';
              i = j;  // consume up to and including '('
              st = State::kRawString;
              break;
            }
            if (include_head(before)) {
              inc = IncludeDirective{ln + 1, "", false};
              code[i] = '"';
              st = State::kIncludeQuote;
              break;
            }
            lit = StringLiteral{ln + 1, i, ""};
            code[i] = '"';
            st = State::kString;
            break;
          }
          if (c == '\'') {
            // A quote glued to an identifier/number is a digit separator
            // (1'000'000), not a character literal.
            if (i > 0 && ident_char(code[i - 1])) {
              code[i] = c;
              break;
            }
            lit = StringLiteral{ln + 1, i, ""};
            code[i] = '\'';
            st = State::kChar;
            break;
          }
          if (c == '<' &&
              include_head(std::string_view(code).substr(0, i))) {
            inc = IncludeDirective{ln + 1, "", true};
            code[i] = '<';
            st = State::kIncludeAngle;
            break;
          }
          code[i] = c;
          break;
        }
        case State::kLineComment:
          break;  // stays blank; EOL handling below
        case State::kBlockComment:
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            ++i;
            st = State::kCode;
          }
          break;
        case State::kString:
        case State::kChar: {
          const char close = st == State::kString ? '"' : '\'';
          if (c == '\\') {
            if (i + 1 < line.size()) {
              lit.text += c;
              lit.text += line[i + 1];
              ++i;
            }
            // A backslash at end of line splices the literal onward; the
            // EOL handling below keeps the state.
            break;
          }
          if (c == close) {
            code[i] = close;
            f.strings.push_back(lit);
            st = State::kCode;
            break;
          }
          lit.text += c;
          break;
        }
        case State::kRawString: {
          if (line.compare(i, raw_close.size(), raw_close) == 0) {
            i += raw_close.size() - 1;
            code[i] = '"';
            f.strings.push_back(lit);
            st = State::kCode;
            break;
          }
          lit.text += c;
          break;
        }
        case State::kIncludeQuote:
          if (c == '"') {
            code[i] = '"';
            f.includes.push_back(inc);
            st = State::kCode;
            break;
          }
          inc.target += c;
          code[i] = c;  // header-names stay visible to token rules
          break;
        case State::kIncludeAngle:
          if (c == '>') {
            code[i] = '>';
            f.includes.push_back(inc);
            st = State::kCode;
            break;
          }
          inc.target += c;
          code[i] = c;
          break;
      }
    }

    // End of line: line comments and non-raw literals survive only via a
    // backslash splice; raw strings and block comments span lines freely.
    switch (st) {
      case State::kLineComment:
        if (!spliced) st = State::kCode;
        break;
      case State::kString:
      case State::kChar:
        if (!spliced) {
          // Ill-formed (unterminated) literal; recover rather than letting
          // one bad line swallow the rest of the file.
          f.strings.push_back(lit);
          st = State::kCode;
        }
        break;
      case State::kRawString:
        lit.text += '\n';
        break;
      case State::kIncludeQuote:
      case State::kIncludeAngle:
        f.includes.push_back(inc);  // unterminated; recover
        st = State::kCode;
        break;
      default:
        break;
    }

    f.code.push_back(std::move(code));
  }

  for (const std::string& code_line : f.code) {
    std::size_t i = 0;
    while (i < code_line.size() && is_space(code_line[i])) ++i;
    constexpr std::string_view kPragmaOnce = "#pragma once";
    if (code_line.compare(i, kPragmaOnce.size(), kPragmaOnce) == 0) {
      f.has_pragma_once = true;
      break;
    }
  }
  return f;
}

}  // namespace synran::lint
