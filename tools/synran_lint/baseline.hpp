// Baseline suppression: a checked-in lint_baseline.json grandfathers
// pre-existing findings so a new rule can land without a big-bang cleanup.
//
//   {"schema":"synran-lint-baseline/1",
//    "entries":[{"file":"src/x/y.cpp","line":12,"rule":"layering"}, ...]}
//
// A baseline entry suppresses at most one matching finding (same file, line
// and rule). Entries that match nothing are *stale*: the debt they recorded
// was paid off (or the code moved), and the run fails until the entry is
// deleted — a baseline may only ever shrink.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "synran_lint/lint.hpp"

namespace synran::lint {

struct BaselineEntry {
  std::string file;
  std::size_t line = 0;
  std::string rule;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline document. Throws std::runtime_error with a one-line
/// diagnostic on malformed input (bad JSON, wrong schema, missing fields).
Baseline parse_baseline(std::string_view json);

/// Serializes `findings` as a fresh baseline document (entries sorted by
/// (file, line, rule), one per finding).
std::string baseline_json(const std::vector<Finding>& findings);

struct BaselineResult {
  std::vector<Finding> active;        ///< findings the baseline did not cover
  std::size_t suppressed = 0;         ///< findings the baseline absorbed
  std::vector<BaselineEntry> stale;   ///< entries that matched nothing
};

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const Baseline& baseline);

}  // namespace synran::lint
