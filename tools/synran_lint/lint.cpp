#include "synran_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace synran::lint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True iff `token` occurs in `line` at an identifier boundary (the
/// preceding character, if any, is not part of an identifier; same for the
/// following character when `right_boundary` is set).
bool has_token(std::string_view line, std::string_view token,
               bool right_boundary = false) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok =
        !right_boundary || end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Rules suppressed on this line via `// synran-lint: allow(rule[, rule])`.
std::vector<std::string> allowed_rules(std::string_view line) {
  std::vector<std::string> out;
  const std::string_view marker = "synran-lint: allow(";
  const std::size_t at = line.find(marker);
  if (at == std::string_view::npos) return out;
  const std::size_t open = at + marker.size();
  const std::size_t close = line.find(')', open);
  if (close == std::string_view::npos) return out;
  std::string name;
  for (std::size_t i = open; i <= close; ++i) {
    const char c = i < close ? line[i] : ',';
    if (c == ',' || c == ' ') {
      if (!name.empty()) out.push_back(name);
      name.clear();
    } else {
      name.push_back(c);
    }
  }
  return out;
}

bool allows(std::string_view line, std::string_view rule) {
  const auto rules = allowed_rules(line);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

struct TokenRule {
  std::string_view token;
  bool right_boundary;
  std::string_view message;
};

constexpr std::string_view kRandomMessage =
    "banned randomness primitive; all randomness must derive from the "
    "master seed via Xoshiro256/SeedSequence in src/common/rng.hpp";

constexpr std::array<TokenRule, 9> kBannedRandom{{
    {"std::mt19937", false, kRandomMessage},
    {"mt19937", false, kRandomMessage},
    {"std::random_device", false, kRandomMessage},
    {"random_device", false, kRandomMessage},
    {"std::rand(", false, kRandomMessage},
    {"srand(", false, kRandomMessage},
    {"rand(", false, kRandomMessage},
    {"std::time(", false,
     "time(...)-derived values are seeds that change run to run; derive "
     "seeds from the experiment's master seed instead"},
    {"time(nullptr", false,
     "time(...)-derived values are seeds that change run to run; derive "
     "seeds from the experiment's master seed instead"},
}};

constexpr std::string_view kClockMessage =
    "wall-clock read outside src/obs/ and bench/; seeded runs must not "
    "observe real time — move timing into the observability layer or the "
    "bench harness";

constexpr std::array<TokenRule, 5> kWallClock{{
    {"std::chrono", false, kClockMessage},
    {"<chrono>", false, kClockMessage},
    {"steady_clock", true, kClockMessage},
    {"system_clock", true, kClockMessage},
    {"high_resolution_clock", true, kClockMessage},
}};

constexpr std::string_view kThreadsMessage =
    "threading primitive outside src/exec/; the batch executor is the one "
    "concurrency boundary — route parallel work through "
    "exec::BatchExecutor so rep scheduling stays deterministic";

constexpr std::array<TokenRule, 8> kThreads{{
    {"std::thread", false, kThreadsMessage},
    {"std::jthread", false, kThreadsMessage},
    {"std::async", false, kThreadsMessage},
    {"std::mutex", false, kThreadsMessage},
    {"std::shared_mutex", false, kThreadsMessage},
    {"<thread>", false, kThreadsMessage},
    {"<mutex>", false, kThreadsMessage},
    {"<future>", false, kThreadsMessage},
}};

constexpr std::string_view kSignalsMessage =
    "signal primitive outside src/exec/; exec/stopper.{hpp,cpp} owns the "
    "one SIGINT/SIGTERM handler and its monotonic stop flag — poll "
    "exec::stop_requested() instead of installing handlers";

constexpr std::array<TokenRule, 7> kSignals{{
    {"<csignal>", false, kSignalsMessage},
    {"<signal.h>", false, kSignalsMessage},
    {"std::signal", false, kSignalsMessage},
    {"sigaction", true, kSignalsMessage},
    {"std::raise", false, kSignalsMessage},
    {"sig_atomic_t", true, kSignalsMessage},
    {"signal(", false, kSignalsMessage},
}};

}  // namespace

FileClass classify(std::string_view rel_path) {
  FileClass fc;
  fc.scanned = starts_with(rel_path, "src/") ||
               starts_with(rel_path, "tests/") ||
               starts_with(rel_path, "bench/") ||
               starts_with(rel_path, "examples/");
  fc.is_header = ends_with(rel_path, ".hpp");
  fc.is_rng_header = rel_path == "src/common/rng.hpp";
  fc.protocol_code = starts_with(rel_path, "src/protocols/") ||
                     starts_with(rel_path, "src/async/");
  fc.library_code =
      starts_with(rel_path, "src/") && !starts_with(rel_path, "src/runner/");
  fc.clock_allowed =
      starts_with(rel_path, "src/obs/") || starts_with(rel_path, "bench/");
  fc.threads_allowed = starts_with(rel_path, "src/exec/");
  fc.signals_allowed = starts_with(rel_path, "src/exec/");
  return fc;
}

std::vector<Finding> scan_file(std::string_view rel_path,
                               std::string_view contents) {
  const FileClass fc = classify(rel_path);
  std::vector<Finding> findings;
  if (!fc.scanned) return findings;

  const auto report = [&](std::size_t line_no, std::string_view rule,
                          std::string_view message) {
    findings.push_back(Finding{std::string(rel_path), line_no,
                               std::string(rule), std::string(message)});
  };

  bool saw_pragma_once = false;
  bool pragma_once_allowed = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    const std::string_view line =
        contents.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                          : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? contents.size() + 1 : nl + 1;
    if (line.empty() && pos > contents.size()) break;

    std::size_t first = line.find_first_not_of(" \t");
    const std::string_view trimmed =
        first == std::string_view::npos ? std::string_view{}
                                        : line.substr(first);

    if (starts_with(trimmed, "#pragma once")) saw_pragma_once = true;
    if (allows(line, "pragma-once")) pragma_once_allowed = true;

    if (!fc.is_rng_header && !allows(line, "banned-random")) {
      for (const auto& rule : kBannedRandom) {
        if (has_token(line, rule.token, rule.right_boundary)) {
          report(line_no, "banned-random", rule.message);
          break;
        }
      }
    }

    if (!fc.clock_allowed && !allows(line, "wall-clock")) {
      for (const auto& rule : kWallClock) {
        if (has_token(line, rule.token, rule.right_boundary)) {
          report(line_no, "wall-clock", rule.message);
          break;
        }
      }
    }

    if (!fc.threads_allowed && !allows(line, "threads")) {
      for (const auto& rule : kThreads) {
        if (has_token(line, rule.token, rule.right_boundary)) {
          report(line_no, "threads", rule.message);
          break;
        }
      }
    }

    if (!fc.signals_allowed && !allows(line, "signals")) {
      for (const auto& rule : kSignals) {
        if (has_token(line, rule.token, rule.right_boundary)) {
          report(line_no, "signals", rule.message);
          break;
        }
      }
    }

    if (fc.protocol_code && !allows(line, "coin-source") &&
        has_token(line, "Xoshiro256", true)) {
      report(line_no, "coin-source",
             "direct Xoshiro256 use in protocol code; draw coins through "
             "CoinSource::flip() so the valency engine can enumerate "
             "outcomes instead of sampling them");
    }

    if (fc.is_header && !allows(line, "using-namespace") &&
        has_token(line, "using namespace")) {
      report(line_no, "using-namespace",
             "'using namespace' in a header leaks into every includer");
    }

    if (fc.library_code && !allows(line, "iostream") &&
        starts_with(trimmed, "#include") &&
        line.find("<iostream>") != std::string_view::npos) {
      report(line_no, "iostream",
             "<iostream> in library code; only tools/, examples/, and "
             "src/runner/ may print");
    }

    if (!allows(line, "bare-assert")) {
      if (has_token(line, "assert(")) {
        report(line_no, "bare-assert",
               "bare assert() compiles out in release builds; use "
               "SYNRAN_CHECK / SYNRAN_REQUIRE (always-on, throwing)");
      } else if (has_token(line, "abort(")) {
        report(line_no, "bare-assert",
               "abort() gives no diagnostic; use SYNRAN_CHECK / "
               "SYNRAN_REQUIRE (always-on, throwing)");
      }
    }
  }

  if (fc.is_header && !saw_pragma_once && !pragma_once_allowed) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  // scan_file reports in file order except the file-level rule above; keep
  // the list sorted by line for stable output.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> scan_tree(const std::string& root,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      paths.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Finding> findings;
  for (const auto& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string contents = buf.str();
    auto file_findings = scan_file(rel, contents);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  if (files_scanned != nullptr) *files_scanned = paths.size();
  return findings;
}

std::string summary_json(const std::vector<Finding>& findings,
                         std::size_t files_scanned) {
  std::map<std::string, std::size_t> by_rule;
  for (const auto& f : findings) ++by_rule[f.rule];
  std::ostringstream os;
  os << "{\"files_scanned\":" << files_scanned
     << ",\"findings\":" << findings.size() << ",\"by_rule\":{";
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    if (!first) os << ',';
    first = false;
    os << '"' << rule << "\":" << count;
  }
  os << "}}";
  return os.str();
}

}  // namespace synran::lint
