#include "synran_lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "synran_lint/lexer.hpp"
#include "synran_lint/rules/cross_file.hpp"
#include "synran_lint/rules/line_rules.hpp"

namespace synran::lint {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Rules suppressed on this line via `// synran-lint: allow(rule[, rule])`.
std::vector<std::string> allowed_rules(std::string_view line) {
  std::vector<std::string> out;
  const std::string_view marker = "synran-lint: allow(";
  const std::size_t at = line.find(marker);
  if (at == std::string_view::npos) return out;
  const std::size_t open = at + marker.size();
  const std::size_t close = line.find(')', open);
  if (close == std::string_view::npos) return out;
  std::string name;
  for (std::size_t i = open; i <= close; ++i) {
    const char c = i < close ? line[i] : ',';
    if (c == ',' || c == ' ') {
      if (!name.empty()) out.push_back(name);
      name.clear();
    } else {
      name.push_back(c);
    }
  }
  return out;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const std::vector<RuleInfo> kRules = {
    {"banned-random",
     "randomness primitive outside src/common/rng.hpp",
     "All randomness must derive from the experiment's master seed via "
     "Xoshiro256/SeedSequence (src/common/rng.hpp). One stray std::mt19937, "
     "std::random_device, rand() or time()-derived seed silently breaks "
     "bit-for-bit seed reproducibility — the property every experiment and "
     "golden test in this repo rests on."},
    {"coin-source",
     "direct PRNG construction in protocol code",
     "src/protocols/ and src/async/ draw coins through CoinSource::flip() "
     "instead of constructing Xoshiro256 directly. The exact-valency engine "
     "of the Bar-Joseph & Ben-Or lower bound replaces sampling with "
     "enumeration by substituting the coin source; a protocol that owns its "
     "generator cannot be enumerated."},
    {"pragma-once",
     "header missing #pragma once",
     "Every header uses #pragma once (the repo convention; no include "
     "guards)."},
    {"using-namespace",
     "`using namespace` in a header",
     "A using-directive in a header leaks into every includer; qualify "
     "names instead."},
    {"iostream",
     "<iostream> in library code",
     "Library code (src/ minus src/runner/) may not print; only tools/, "
     "examples/, and the runner own stdout/stderr."},
    {"bare-assert",
     "bare assert()/abort() instead of SYNRAN_CHECK",
     "assert() compiles out in release builds and abort() gives no "
     "diagnostic; SYNRAN_CHECK / SYNRAN_REQUIRE stay on everywhere and "
     "throw typed exceptions the runner can report."},
    {"wall-clock",
     "wall-clock read outside src/obs/, src/serve/, and bench/",
     "Seeded runs must not observe real time: a wall-clock read in protocol "
     "or analysis paths makes them non-reproducible. Timing belongs to the "
     "observability layer, the serve daemon (deadlines and latency "
     "metrics), and the bench harness."},
    {"threads",
     "threading primitive outside src/exec/ and src/serve/",
     "The batch executor is the one concurrency boundary; its determinism "
     "contract (static rep schedule, rep-order aggregation) only holds if "
     "nothing else spawns or synchronizes threads behind its back. The "
     "serve daemon's deadline watchdog is the one sanctioned exception — "
     "it only raises the cooperative stop flag."},
    {"signals",
     "signal primitive outside src/exec/ and src/serve/",
     "Graceful interruption is owned by exec/stopper.{hpp,cpp}; a second "
     "handler would race the stop flag's monotonic contract. Poll "
     "exec::stop_requested() instead. src/serve may additionally ignore "
     "SIGPIPE (a vanished client must surface as EPIPE, not kill the "
     "daemon)."},
    {"layering",
     "src/ include edge outside the layer DAG, or an include cycle",
     "src/ modules form an enforced DAG (documented in include_graph.hpp "
     "and DESIGN.md): common at the bottom; net/analysis/coin above it; "
     "then obs, sim, the protocol/adversary/lowerbound band, exec, and "
     "runner on top. An upward or sideways #include inverts the "
     "architecture and eventually forces a cycle; extend the DAG table "
     "deliberately instead of working around it."},
    {"rng-streams",
     "duplicate SeedSequence stream tag",
     "Every stream tag (a k*Stream* constant or a literal stream(<int>) "
     "argument in src/) must be unique: SeedSequence::stream(id) is a pure "
     "function of (master seed, id), so two owners of one tag draw the "
     "*same* pseudorandom stream — a silent seed collision that correlates "
     "supposedly independent subsystems. Pick an unclaimed tag; the "
     "convention is an ASCII-derived hex constant (e.g. 0x494e505554 = "
     "\"INPUT\")."},
    {"schema-literals",
     "trace/bench writers and the schema checker have drifted apart",
     "The JSONL trace writer (src/obs/trace_writer.cpp), the bench report "
     "writer (bench/bench_util.hpp), and the synran-trace/2 wire constants "
     "(src/obs, kTrace2*) must stay in lockstep with "
     "tools/bench_schema_check.cpp, which CI runs over every artifact. A "
     "JSON field name emitted by a writer but absent from the checker's "
     "string literals — or a kTrace2* constant the checker's independent "
     "binary decoder never references — means the validator would silently "
     "wave a format change through (or reject the artifact) — update both "
     "sides together."},
};

}  // namespace

bool finding_order(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
}

const std::vector<RuleInfo>& rule_registry() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const auto& r : kRules)
    if (r.id == id) return &r;
  return nullptr;
}

bool allows(std::string_view line, std::string_view rule) {
  const auto rules = allowed_rules(line);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

FileClass classify(std::string_view rel_path) {
  FileClass fc;
  fc.scanned = starts_with(rel_path, "src/") ||
               starts_with(rel_path, "tests/") ||
               starts_with(rel_path, "bench/") ||
               starts_with(rel_path, "examples/");
  // Fixture trees hold deliberate violations for the lint's own tests;
  // they are scanned only when the fixture directory itself is the root.
  if (rel_path.find("lint_fixtures/") != std::string_view::npos)
    fc.scanned = false;
  fc.is_header = ends_with(rel_path, ".hpp");
  fc.is_rng_header = rel_path == "src/common/rng.hpp";
  fc.protocol_code = starts_with(rel_path, "src/protocols/") ||
                     starts_with(rel_path, "src/async/");
  fc.library_code =
      starts_with(rel_path, "src/") && !starts_with(rel_path, "src/runner/");
  // src/serve joins the allowlists deliberately: the daemon owns deadlines
  // (wall clock + a watchdog thread) and SIGPIPE suppression, and its
  // determinism contract covers response BYTES (derived from checkpoint
  // payloads), not wall-clock metrics like request latency.
  fc.clock_allowed = starts_with(rel_path, "src/obs/") ||
                     starts_with(rel_path, "src/serve/") ||
                     starts_with(rel_path, "bench/");
  fc.threads_allowed = starts_with(rel_path, "src/exec/") ||
                       starts_with(rel_path, "src/serve/");
  fc.signals_allowed = starts_with(rel_path, "src/exec/") ||
                       starts_with(rel_path, "src/serve/");
  return fc;
}

std::vector<Finding> scan_file(std::string_view rel_path,
                               std::string_view contents) {
  if (!classify(rel_path).scanned) return {};
  return run_line_rules(lex(rel_path, contents));
}

std::vector<Finding> scan_tree(const std::string& root,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      if (!classify(rel).scanned) continue;
      paths.push_back(rel);
    }
  }
  std::sort(paths.begin(), paths.end());

  Project project;
  project.files.reserve(paths.size());
  for (const auto& rel : paths)
    project.files.push_back(lex(rel, read_file(fs::path(root) / rel)));

  std::vector<Finding> findings;
  for (const auto& file : project.files) {
    auto file_findings = run_line_rules(file);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  // The schema checker lives outside the scanned roots; read it as the
  // reference document for the schema-literals rule when the tree has one.
  LexedFile checker;
  const fs::path checker_path =
      fs::path(root) / "tools" / "bench_schema_check.cpp";
  if (fs::exists(checker_path)) {
    checker = lex("tools/bench_schema_check.cpp", read_file(checker_path));
    project.checker = &checker;
  }

  auto cross = run_cross_file_rules(project);
  findings.insert(findings.end(), cross.begin(), cross.end());

  // Byte-stable output: (file, line, rule) order regardless of walk order
  // or which rule produced a finding first.
  std::sort(findings.begin(), findings.end(), finding_order);

  if (files_scanned != nullptr) *files_scanned = paths.size();
  return findings;
}

std::string summary_json(const std::vector<Finding>& findings,
                         std::size_t files_scanned) {
  std::map<std::string, std::size_t> by_rule;
  for (const auto& f : findings) ++by_rule[f.rule];
  std::ostringstream os;
  os << "{\"files_scanned\":" << files_scanned
     << ",\"findings\":" << findings.size() << ",\"by_rule\":{";
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    if (!first) os << ',';
    first = false;
    os << '"' << rule << "\":" << count;
  }
  os << "}}";
  return os.str();
}

}  // namespace synran::lint
