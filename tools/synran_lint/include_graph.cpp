#include "synran_lint/include_graph.hpp"

#include <algorithm>

namespace synran::lint {
namespace {

/// Transitive closure of layer_direct_deps(), built once.
const std::map<std::string, std::set<std::string>>& layer_closure() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    const auto& direct = layer_direct_deps();
    // The table is tiny; iterate to a fixed point.
    for (const auto& [m, deps] : direct)
      out[m] = std::set<std::string>(deps.begin(), deps.end());
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [m, deps] : out) {
        std::set<std::string> add;
        for (const auto& d : deps) {
          const auto it = out.find(d);
          if (it == out.end()) continue;
          for (const auto& dd : it->second)
            if (deps.count(dd) == 0) add.insert(dd);
        }
        if (!add.empty()) {
          deps.insert(add.begin(), add.end());
          changed = true;
        }
      }
    }
    return out;
  }();
  return closure;
}

}  // namespace

std::string module_of(std::string_view rel_path) {
  constexpr std::string_view prefix = "src/";
  if (rel_path.substr(0, prefix.size()) != prefix) return "";
  const std::string_view rest = rel_path.substr(prefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash == 0) return "";
  return std::string(rest.substr(0, slash));
}

const std::map<std::string, std::vector<std::string>>& layer_direct_deps() {
  static const std::map<std::string, std::vector<std::string>> deps = {
      {"common", {}},
      {"net", {"common"}},
      {"analysis", {"common"}},
      {"coin", {"common"}},
      {"obs", {"net", "analysis"}},
      {"sim", {"net", "obs"}},
      // The event-driven async core reports runs through the observer
      // layer (trace hooks), hence async -> obs.
      {"async", {"net", "obs"}},
      {"protocols", {"analysis", "sim"}},
      {"lowerbound", {"net", "sim"}},
      {"adversary", {"net", "sim", "protocols", "lowerbound"}},
      {"exec", {"analysis", "async", "obs", "sim"}},
      {"runner",
       {"analysis", "adversary", "async", "coin", "exec", "lowerbound",
        "net", "obs", "protocols", "sim"}},
      // The serve daemon sits on top of the whole execution stack: it
      // canonicalizes requests (obs JSON), rebuilds the CLI's factory
      // wiring (adversary/protocols/async), and schedules on the batch
      // executors through the runner front.
      {"serve", {"runner"}},
  };
  return deps;
}

bool layer_known(const std::string& module) {
  return layer_direct_deps().count(module) != 0;
}

bool layer_allows(const std::string& from, const std::string& to) {
  if (from == to) return true;
  const auto& closure = layer_closure();
  const auto it = closure.find(from);
  return it != closure.end() && it->second.count(to) != 0;
}

std::vector<IncludeEdge> project_edges(const std::vector<LexedFile>& files) {
  std::set<std::string> present;  // modules that exist in this project
  for (const auto& f : files) {
    const std::string m = module_of(f.rel_path);
    if (!m.empty()) present.insert(m);
  }

  std::vector<IncludeEdge> edges;
  for (const auto& f : files) {
    const std::string from = module_of(f.rel_path);
    if (from.empty()) continue;  // layering governs src/ only
    for (const auto& inc : f.includes) {
      if (inc.angled) continue;  // system/third-party headers
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos || slash == 0) continue;
      const std::string to = inc.target.substr(0, slash);
      if (to == from) continue;
      if (present.count(to) == 0 && !layer_known(to)) continue;
      edges.push_back(IncludeEdge{f.rel_path, inc.line, from, to});
    }
  }
  return edges;
}

std::set<std::string> cyclic_modules(const std::vector<IncludeEdge>& edges) {
  // Module graphs here have ~a dozen nodes; a simple reachability check
  // (m is cyclic iff m reaches itself through at least one edge) is plenty.
  std::map<std::string, std::set<std::string>> adj;
  std::set<std::string> nodes;
  for (const auto& e : edges) {
    adj[e.from_module].insert(e.to_module);
    nodes.insert(e.from_module);
    nodes.insert(e.to_module);
  }
  std::set<std::string> cyclic;
  for (const auto& start : nodes) {
    std::vector<std::string> stack(adj[start].begin(), adj[start].end());
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string m = stack.back();
      stack.pop_back();
      if (m == start) {
        cyclic.insert(start);
        break;
      }
      if (!seen.insert(m).second) continue;
      const auto it = adj.find(m);
      if (it != adj.end())
        stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return cyclic;
}

}  // namespace synran::lint
