#include "synran_lint/sarif.hpp"

#include <cstddef>
#include <map>

#include "obs/json.hpp"

namespace synran::lint {

std::string to_sarif(const std::vector<Finding>& findings) {
  using synran::obs::JsonValue;

  JsonValue rules = JsonValue::array();
  std::map<std::string, std::size_t> rule_index;
  for (const auto& info : rule_registry()) {
    rule_index[std::string(info.id)] = rule_index.size();
    rules.push(
        JsonValue::object()
            .set("id", JsonValue(std::string(info.id)))
            .set("shortDescription",
                 JsonValue::object().set(
                     "text", JsonValue(std::string(info.summary))))
            .set("fullDescription",
                 JsonValue::object().set("text",
                                         JsonValue(std::string(info.help))))
            .set("defaultConfiguration",
                 JsonValue::object().set("level", JsonValue("error"))));
  }

  JsonValue results = JsonValue::array();
  for (const auto& f : findings) {
    JsonValue result =
        JsonValue::object()
            .set("ruleId", JsonValue(f.rule))
            .set("level", JsonValue("error"))
            .set("message", JsonValue::object().set("text",
                                                    JsonValue(f.message)))
            .set("locations",
                 JsonValue::array().push(JsonValue::object().set(
                     "physicalLocation",
                     JsonValue::object()
                         .set("artifactLocation",
                              JsonValue::object()
                                  .set("uri", JsonValue(f.file))
                                  .set("uriBaseId", JsonValue("SRCROOT")))
                         .set("region",
                              JsonValue::object().set(
                                  "startLine",
                                  JsonValue(std::uint64_t{f.line}))))));
    if (const auto it = rule_index.find(f.rule); it != rule_index.end())
      result.set("ruleIndex", JsonValue(std::uint64_t{it->second}));
    results.push(std::move(result));
  }

  JsonValue doc =
      JsonValue::object()
          .set("$schema",
               JsonValue("https://json.schemastore.org/sarif-2.1.0.json"))
          .set("version", JsonValue("2.1.0"))
          .set("runs",
               JsonValue::array().push(
                   JsonValue::object()
                       .set("tool",
                            JsonValue::object().set(
                                "driver",
                                JsonValue::object()
                                    .set("name", JsonValue("synran_lint"))
                                    .set("version", JsonValue("2.0.0"))
                                    .set("rules", std::move(rules))))
                       .set("originalUriBaseIds",
                            JsonValue::object().set(
                                "SRCROOT",
                                JsonValue::object().set(
                                    "description",
                                    JsonValue::object().set(
                                        "text",
                                        JsonValue("repository root")))))
                       .set("results", std::move(results))));
  return doc.dump();
}

}  // namespace synran::lint
