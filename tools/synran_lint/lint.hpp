// synran_lint — repo-invariant static checks.
//
// The two properties the whole reproduction rests on — bit-for-bit
// reproducibility from a master seed, and protocols drawing *all* randomness
// through CoinSource so the exact-valency engine can enumerate coin outcomes
// — are invisible to the compiler. This lint makes them machine-checked.
//
// Rules match *tokens*, not raw lines: a small C++ lexer (lexer.hpp) blanks
// comments and string/char literals first, so a doc comment mentioning
// std::rand or a fixture string containing a banned primitive never trips a
// rule. Nine rules are per-line:
//
//   banned-random    no std::rand / rand() / srand / std::mt19937 /
//                    std::random_device / time(...)-derived seeds anywhere
//                    outside src/common/rng.hpp. One stray generator breaks
//                    seed-reproducibility silently.
//   coin-source      src/protocols/ and src/async/ never construct
//                    Xoshiro256 directly; protocol randomness flows through
//                    CoinSource::flip() so tapes can replace sampling.
//   pragma-once      every header uses #pragma once.
//   using-namespace  headers never contain `using namespace`.
//   iostream         no <iostream> in library code (src/ minus src/runner/);
//                    only tools, examples, and the runner may print.
//   bare-assert      SYNRAN_CHECK / SYNRAN_REQUIRE instead of bare assert()
//                    or abort(): checks must stay on in release builds and
//                    throw typed exceptions.
//   wall-clock       no std::chrono / <chrono> / *_clock outside src/obs/
//                    and bench/: wall-clock reads in protocol or analysis
//                    paths make seeded runs non-reproducible.
//   threads          no std::thread / std::async / std::mutex (or <thread>,
//                    <mutex>, <future>) outside src/exec/: the batch
//                    executor is the one concurrency boundary.
//   signals          no <csignal> / std::signal / sigaction / raise /
//                    sig_atomic_t outside src/exec/: graceful interruption
//                    is owned by exec/stopper.{hpp,cpp}.
//
// Three rules are cross-file, computed over the whole tree at once
// (rules/cross_file.hpp):
//
//   layering         src/ modules form a DAG (include_graph.hpp documents
//                    it); reject upward/sideways #include edges and cycles.
//   rng-streams      every SeedSequence stream tag constant (k*Stream*) and
//                    literal stream(<int>) tag in src/ must be unique; a
//                    duplicate silently hands two subsystems the same
//                    random stream.
//   schema-literals  every JSON field name the trace/bench writers emit,
//                    and every kTrace2* wire constant src/obs defines, must
//                    be known to tools/bench_schema_check.cpp, so the
//                    writers and the validator cannot drift apart.
//
// A finding on one specific line can be suppressed with an explicit trailer:
//     legit_line();  // synran-lint: allow(<rule>)
// For the file-scoped pragma-once rule the trailer may sit on any line.
// Pre-existing findings can also be grandfathered in a baseline file
// (baseline.hpp); `synran_lint --explain <rule>` prints a rule's rationale.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace synran::lint {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Orders findings by (file, line, rule): byte-stable output across
/// platforms and filesystem walk orders.
bool finding_order(const Finding& a, const Finding& b);

/// One rule's identity and documentation (drives --explain and SARIF).
struct RuleInfo {
  std::string_view id;
  std::string_view summary;  ///< one line
  std::string_view help;     ///< rationale + how to fix or suppress
};

/// All rules, per-line first, in stable order.
const std::vector<RuleInfo>& rule_registry();

/// nullptr if `id` names no rule.
const RuleInfo* find_rule(std::string_view id);

/// How the rules apply to one path (repo-relative, '/'-separated).
struct FileClass {
  bool scanned = false;      ///< under src/, tests/, bench/, examples/
  bool is_header = false;    ///< *.hpp
  bool is_rng_header = false;///< src/common/rng.hpp — the one place PRNGs live
  bool protocol_code = false;///< src/protocols/ or src/async/
  bool library_code = false; ///< src/ minus src/runner/ — may not print
  bool clock_allowed = false;///< src/obs/ or bench/ — may read wall clocks
  bool threads_allowed = false;///< src/exec/ — the one concurrency boundary
  bool signals_allowed = false;///< src/exec/ — owns the stop flag + handlers
};

FileClass classify(std::string_view rel_path);

/// True iff `line` (original text, comments intact) carries a
/// `// synran-lint: allow(rule[, rule])` trailer naming `rule`.
bool allows(std::string_view line, std::string_view rule);

/// Scans one file's contents with the per-line rules. `rel_path` decides
/// which rules apply. Cross-file rules need the whole tree; see
/// rules/cross_file.hpp.
std::vector<Finding> scan_file(std::string_view rel_path,
                               std::string_view contents);

/// Walks `root`'s src/, tests/, bench/, examples/ trees (*.hpp, *.cpp),
/// runs the per-line rules on every file and the cross-file rules on the
/// whole project (reading tools/bench_schema_check.cpp as the schema
/// reference when present). Findings come back sorted by (file, line,
/// rule). `files_scanned` (optional) receives the file count. Trees under a
/// `lint_fixtures` directory are skipped: they hold deliberate violations
/// for the lint's own tests.
std::vector<Finding> scan_tree(const std::string& root,
                               std::size_t* files_scanned = nullptr);

/// One-line machine-readable summary, e.g.
/// {"files_scanned":120,"findings":2,"by_rule":{"banned-random":2}}
std::string summary_json(const std::vector<Finding>& findings,
                         std::size_t files_scanned);

}  // namespace synran::lint
