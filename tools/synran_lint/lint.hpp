// synran_lint — repo-invariant static checks.
//
// The two properties the whole reproduction rests on — bit-for-bit
// reproducibility from a master seed, and protocols drawing *all* randomness
// through CoinSource so the exact-valency engine can enumerate coin outcomes
// — are invisible to the compiler. This lint makes them machine-checked:
//
//   banned-random    no std::rand / rand() / srand / std::mt19937 /
//                    std::random_device / time(...)-derived seeds anywhere
//                    outside src/common/rng.hpp. One stray generator breaks
//                    seed-reproducibility silently.
//   coin-source      src/protocols/ and src/async/ never construct
//                    Xoshiro256 directly; protocol randomness flows through
//                    CoinSource::flip() so tapes can replace sampling.
//   pragma-once      every header uses #pragma once.
//   using-namespace  headers never contain `using namespace`.
//   iostream         no <iostream> in library code (src/ minus src/runner/);
//                    only tools, examples, and the runner may print.
//   bare-assert      SYNRAN_CHECK / SYNRAN_REQUIRE instead of bare assert()
//                    or abort(): checks must stay on in release builds and
//                    throw typed exceptions.
//   wall-clock       no std::chrono / <chrono> / *_clock outside src/obs/
//                    and bench/: wall-clock reads in protocol or analysis
//                    paths make seeded runs non-reproducible. Timing belongs
//                    to the observability layer and the bench harness.
//   threads          no std::thread / std::async / std::mutex (or <thread>,
//                    <mutex>, <future>) outside src/exec/: the batch
//                    executor is the one concurrency boundary, and its
//                    determinism contract (static rep schedule, rep-order
//                    aggregation) only holds if nothing else spawns or
//                    synchronizes threads behind its back.
//   signals          no <csignal> / std::signal / sigaction / raise /
//                    sig_atomic_t outside src/exec/: graceful interruption
//                    is owned by exec/stopper.{hpp,cpp}. A second handler
//                    would race the stop flag's monotonic contract, and
//                    signal-unsafe work in a handler is UB — everything
//                    else must poll exec::stop_requested().
//
// A finding on one specific line can be suppressed with an explicit trailer:
//     legit_line();  // synran-lint: allow(<rule>)
// For the file-scoped pragma-once rule the trailer may sit on any line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace synran::lint {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// How the rules apply to one path (repo-relative, '/'-separated).
struct FileClass {
  bool scanned = false;      ///< under src/, tests/, bench/, examples/
  bool is_header = false;    ///< *.hpp
  bool is_rng_header = false;///< src/common/rng.hpp — the one place PRNGs live
  bool protocol_code = false;///< src/protocols/ or src/async/
  bool library_code = false; ///< src/ minus src/runner/ — may not print
  bool clock_allowed = false;///< src/obs/ or bench/ — may read wall clocks
  bool threads_allowed = false;///< src/exec/ — the one concurrency boundary
  bool signals_allowed = false;///< src/exec/ — owns the stop flag + handlers
};

FileClass classify(std::string_view rel_path);

/// Scans one file's contents. `rel_path` decides which rules apply.
std::vector<Finding> scan_file(std::string_view rel_path,
                               std::string_view contents);

/// Walks `root`'s src/, tests/, bench/, examples/ trees (*.hpp, *.cpp) and
/// scans every file. `files_scanned` (optional) receives the file count.
std::vector<Finding> scan_tree(const std::string& root,
                               std::size_t* files_scanned = nullptr);

/// One-line machine-readable summary, e.g.
/// {"files_scanned":120,"findings":2,"by_rule":{"banned-random":2}}
std::string summary_json(const std::vector<Finding>& findings,
                         std::size_t files_scanned);

}  // namespace synran::lint
