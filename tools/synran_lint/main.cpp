// synran_lint CLI: walk a repo root and report invariant violations.
//
//   synran_lint [root] [--format=text|json|sarif] [--baseline FILE]
//               [--write-baseline FILE] [--explain RULE]
//
// text (default) prints one `file:line: [rule] message` diagnostic per
// finding plus a machine-readable JSON summary line; json prints one
// document with every finding; sarif prints a SARIF 2.1.0 document for
// GitHub code scanning. --baseline suppresses the findings recorded in a
// checked-in baseline and *fails* on stale entries (debt that no longer
// exists must be deleted, so a baseline only ever shrinks);
// --write-baseline captures the current findings as a fresh baseline.
// --explain prints one rule's rationale. Exit code 1 iff any unsuppressed
// finding or stale baseline entry remains, 2 on usage errors or a root
// that yields nothing to scan (a typo'd path must not read as a clean pass
// in CI).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "synran_lint/baseline.hpp"
#include "synran_lint/lint.hpp"
#include "synran_lint/sarif.hpp"

namespace {

int usage_error(const std::string& message) {
  std::cerr << "synran_lint: " << message << "; see --help\n";
  return 2;
}

void print_help() {
  std::cout
      << "usage: synran_lint [repo-root] [options]\n"
         "Scans src/, tests/, bench/, examples/ for repo-invariant "
         "violations\n"
         "(tokens, not raw lines: comments and string literals never "
         "match).\n\n"
         "options:\n"
         "  --format=text|json|sarif  output format (default text; sarif "
         "is\n"
         "                            SARIF 2.1.0 for GitHub code "
         "scanning)\n"
         "  --baseline FILE           suppress findings recorded in FILE "
         "and\n"
         "                            fail on stale entries\n"
         "  --write-baseline FILE     write current findings to FILE and "
         "exit\n"
         "  --explain RULE            print one rule's rationale and exit\n"
         "  --help                    this text\n\n"
         "Suppress a single finding in code with a trailing\n"
         "'// synran-lint: allow(<rule>)'.\n"
         "Exit codes: 0 clean, 1 findings or stale baseline entries, 2 "
         "usage.\n";
}

int explain(const std::string& rule_id) {
  const auto* rule = synran::lint::find_rule(rule_id);
  if (rule == nullptr) {
    std::cerr << "synran_lint: unknown rule '" << rule_id << "'; rules:\n";
    for (const auto& r : synran::lint::rule_registry())
      std::cerr << "  " << r.id << "\n";
    return 2;
  }
  std::cout << rule->id << " — " << rule->summary << "\n\n"
            << rule->help << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using synran::lint::Finding;
  namespace lint = synran::lint;

  std::string root = ".";
  bool root_set = false;
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--explain") {
      const char* v = value_of();
      if (v == nullptr) return usage_error("missing rule after --explain");
      return explain(v);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        return usage_error("unknown format '" + format +
                           "' (expected text, json, or sarif)");
    } else if (arg == "--baseline") {
      const char* v = value_of();
      if (v == nullptr) return usage_error("missing file after --baseline");
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value_of();
      if (v == nullptr)
        return usage_error("missing file after --write-baseline");
      write_baseline_path = v;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error("unknown option '" + arg + "'");
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return usage_error("expected at most one repo root, got '" + arg +
                         "' too");
    }
  }

  if (!std::filesystem::is_directory(root)) {
    std::cerr << "synran_lint: " << root << " is not a directory\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  const auto findings = lint::scan_tree(root, &files_scanned);
  if (files_scanned == 0) {
    std::cerr << "synran_lint: no source files under " << root
              << " (wrong root?)\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << lint::baseline_json(findings) << "\n";
    if (!out.good()) {
      std::cerr << "synran_lint: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    std::cout << "synran_lint: wrote " << findings.size() << " entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  lint::BaselineResult applied;
  applied.active = findings;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "synran_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      applied = lint::apply_baseline(findings,
                                     lint::parse_baseline(buf.str()));
    } catch (const std::exception& e) {
      std::cerr << "synran_lint: " << e.what() << "\n";
      return 2;
    }
  }

  const bool failed = !applied.active.empty() || !applied.stale.empty();

  if (format == "sarif") {
    std::cout << lint::to_sarif(applied.active) << "\n";
  } else if (format == "json") {
    using synran::obs::JsonValue;
    JsonValue items = JsonValue::array();
    for (const auto& f : applied.active)
      items.push(JsonValue::object()
                     .set("file", JsonValue(f.file))
                     .set("line", JsonValue(std::uint64_t{f.line}))
                     .set("rule", JsonValue(f.rule))
                     .set("message", JsonValue(f.message)));
    JsonValue stale = JsonValue::array();
    for (const auto& e : applied.stale)
      stale.push(JsonValue::object()
                     .set("file", JsonValue(e.file))
                     .set("line", JsonValue(std::uint64_t{e.line}))
                     .set("rule", JsonValue(e.rule)));
    std::cout << JsonValue::object()
                     .set("schema", JsonValue("synran-lint/1"))
                     .set("files_scanned",
                          JsonValue(std::uint64_t{files_scanned}))
                     .set("findings", std::move(items))
                     .set("suppressed",
                          JsonValue(std::uint64_t{applied.suppressed}))
                     .set("stale_baseline", std::move(stale))
                     .dump()
              << "\n";
  } else {
    for (const auto& f : applied.active) {
      std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
                << f.message << '\n';
    }
    if (applied.suppressed > 0)
      std::cout << "synran-lint: " << applied.suppressed
                << " finding(s) suppressed by baseline\n";
    std::cout << "synran-lint: "
              << lint::summary_json(applied.active, files_scanned)
              << std::endl;
  }

  // Stale entries always go to stderr so every format reports them.
  for (const auto& e : applied.stale)
    std::cerr << "synran_lint: stale baseline entry " << e.file << ":"
              << e.line << " [" << e.rule
              << "] no longer fires — delete it from the baseline\n";

  return failed ? 1 : 0;
}
