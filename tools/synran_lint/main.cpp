// synran_lint CLI: walk a repo root and report invariant violations.
//
// Usage: synran_lint [root]        (root defaults to ".")
// Prints one `file:line: [rule] message` diagnostic per finding, then a
// single machine-readable JSON summary line. Exit code 1 iff any finding,
// 2 on usage errors or a root that yields nothing to scan (a typo'd path
// must not read as a clean pass in CI).
#include <filesystem>
#include <iostream>
#include <string>

#include "synran_lint/lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  if (argc > 2) {
    std::cerr << "synran_lint: expected at most one argument (repo root); "
              << "see --help\n";
    return 2;
  }
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: synran_lint [repo-root]\n"
                << "Scans src/, tests/, bench/, examples/ for repo-invariant "
                << "violations.\nSuppress a finding with a trailing "
                << "'// synran-lint: allow(<rule>)'.\n";
      return 0;
    }
    root = arg;
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "synran_lint: " << root << " is not a directory\n";
    return 2;
  }

  std::size_t files_scanned = 0;
  const auto findings = synran::lint::scan_tree(root, &files_scanned);
  if (files_scanned == 0) {
    std::cerr << "synran_lint: no source files under " << root
              << " (wrong root?)\n";
    return 2;
  }
  for (const auto& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
              << f.message << '\n';
  }
  std::cout << "synran-lint: "
            << synran::lint::summary_json(findings, files_scanned)
            << std::endl;
  return findings.empty() ? 0 : 1;
}
