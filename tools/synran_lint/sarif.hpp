// SARIF 2.1.0 output for GitHub code scanning: one run, one driver
// ("synran_lint"), every rule from the registry in the driver's rule table,
// one result per finding. The document is built on obs::JsonValue, so its
// serialization is deterministic (insertion-ordered keys, no whitespace)
// and the lint's SARIF is byte-stable for a given finding set.
#pragma once

#include <string>
#include <vector>

#include "synran_lint/lint.hpp"

namespace synran::lint {

/// Serializes `findings` as a SARIF 2.1.0 document. File paths are emitted
/// as relative artifact URIs under the SRCROOT uriBase, which is what the
/// GitHub SARIF ingester expects for repo-relative paths.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace synran::lint
