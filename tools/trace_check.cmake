# End-to-end trace contract, driven through the shipped binaries only: the
# synran CLI writes one batch's trace in both formats, `synran trace
# convert` must round-trip them byte-for-byte, the binary file must be at
# least 4x smaller than its JSONL twin, `trace stats --format=json` must
# agree across formats, a --threads=4 rerun must produce the identical
# binary trace, and bench_schema_check --trace must accept every file.
# Driven from add_test():
#
#   cmake -DCLI=<synran> -DCHECKER=<bench_schema_check> -DWORKDIR=<dir>
#         -P trace_check.cmake
#
# Nothing here links the library — a bug that the in-process tests can't
# see because writer and reader share code still has to get past the
# independent checker and the byte comparisons below.
if(NOT DEFINED CLI OR NOT DEFINED CHECKER OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "trace_check.cmake needs -DCLI=... -DCHECKER=... -DWORKDIR=...")
endif()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
    OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "command failed (rc=${rc}): ${ARGN}\n--- output ---\n${out}${err}")
  endif()
endfunction()

function(expect_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# One crash-fault batch and one omission-fault batch (the latter exercises
# the flag-gated omission fields on the wire); each traced in both formats.
set(base run --protocol synran --adversary coinbias
         --n 32 --t 4 --reps 5 --seed 7)
set(omit run --protocol synran --adversary none
         --n 32 --t 4 --reps 5 --seed 7 --faults=omit:0.2,40)
foreach(variant base omit)
  run_or_die(${CLI} ${${variant}}
    --trace-out=${WORKDIR}/${variant}.jsonl --trace-format=jsonl)
  run_or_die(${CLI} ${${variant}}
    --trace-out=${WORKDIR}/${variant}.bin --trace-format=bin)

  # Round trips through `trace convert`: decoding the binary must recover
  # the JSONL byte-for-byte, and JSONL -> binary -> JSONL must be a fixed
  # point (header fields may differ from the direct binary, so the encode
  # leg is judged by what decodes back out).
  run_or_die(${CLI} trace convert --in ${WORKDIR}/${variant}.bin
    --out ${WORKDIR}/${variant}.converted.jsonl --to jsonl)
  expect_same(${WORKDIR}/${variant}.jsonl
    ${WORKDIR}/${variant}.converted.jsonl
    "binary -> jsonl convert must match the directly written trace")
  run_or_die(${CLI} trace convert --in ${WORKDIR}/${variant}.jsonl
    --out ${WORKDIR}/${variant}.reencoded.bin --to bin)
  run_or_die(${CLI} trace convert --in ${WORKDIR}/${variant}.reencoded.bin
    --out ${WORKDIR}/${variant}.reencoded.jsonl --to jsonl)
  expect_same(${WORKDIR}/${variant}.jsonl
    ${WORKDIR}/${variant}.reencoded.jsonl
    "jsonl -> bin -> jsonl must be a fixed point")

  # Streaming aggregation must not depend on which format it read.
  execute_process(COMMAND ${CLI} trace stats --in ${WORKDIR}/${variant}.jsonl
    --format json RESULT_VARIABLE rc OUTPUT_VARIABLE stats_jsonl)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace stats on ${variant}.jsonl failed (rc=${rc})")
  endif()
  execute_process(COMMAND ${CLI} trace stats --in ${WORKDIR}/${variant}.bin
    --format json RESULT_VARIABLE rc OUTPUT_VARIABLE stats_bin)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace stats on ${variant}.bin failed (rc=${rc})")
  endif()
  if(NOT stats_jsonl STREQUAL stats_bin)
    message(FATAL_ERROR
      "trace stats --format=json disagrees across formats for ${variant}:\n"
      "jsonl: ${stats_jsonl}\nbin:   ${stats_bin}")
  endif()

  # The independent validator walks both files from the kTrace2* constants.
  run_or_die(${CHECKER} --trace
    ${WORKDIR}/${variant}.jsonl ${WORKDIR}/${variant}.bin)

  # The headline size claim: binary at least 4x smaller than JSONL.
  file(SIZE ${WORKDIR}/${variant}.jsonl jsonl_bytes)
  file(SIZE ${WORKDIR}/${variant}.bin bin_bytes)
  math(EXPR four_bins "4 * ${bin_bytes}")
  if(jsonl_bytes LESS four_bins)
    message(FATAL_ERROR
      "${variant}: binary trace is only ${bin_bytes} bytes vs "
      "${jsonl_bytes} JSONL — less than the promised 4x reduction")
  endif()
endforeach()

# Thread-count invariance through the CLI: a parallel rerun of the crash
# batch must reproduce the serial binary trace exactly.
run_or_die(${CLI} ${base} --threads 4
  --trace-out=${WORKDIR}/base.t4.bin --trace-format=bin)
expect_same(${WORKDIR}/base.bin ${WORKDIR}/base.t4.bin
  "--threads=4 binary trace must equal the serial one")

message(STATUS "trace_check: all round-trip, stats, size, and thread-"
  "invariance checks passed")
