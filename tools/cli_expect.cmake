# Runs a CLI invocation and asserts on its exit code, optionally also on a
# substring of its combined stdout+stderr. Driven from add_test():
#
#   cmake -DCLI=<path> "-DARGS=run;--threads;0x" -DEXPECT_RC=2
#         [-DEXPECT_OUT=<substring>] [-DREMOVE=<file>] -P cli_expect.cmake
#
# ARGS is a ;-separated list. A mismatch prints the full output and fails.
# REMOVE deletes a file first (e.g. a stale checkpoint ledger, so a resume
# test's recording run starts from nothing).
if(NOT DEFINED CLI OR NOT DEFINED EXPECT_RC)
  message(FATAL_ERROR "cli_expect.cmake needs -DCLI=... and -DEXPECT_RC=...")
endif()

if(DEFINED REMOVE)
  file(REMOVE "${REMOVE}")
endif()

execute_process(
  COMMAND ${CLI} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
set(combined "${out}${err}")

if(NOT rc EQUAL EXPECT_RC)
  message(FATAL_ERROR
    "expected exit code ${EXPECT_RC}, got ${rc}\n--- output ---\n${combined}")
endif()

if(DEFINED EXPECT_OUT)
  string(FIND "${combined}" "${EXPECT_OUT}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "output does not contain '${EXPECT_OUT}'\n--- output ---\n${combined}")
  endif()
endif()
