// synran — command-line front end to the library.
//
//   synran run      --protocol synran --adversary coinbias --n 256 --t 128
//   synran coin     --game majority --n 1024 --budget 300 --samples 500
//   synran valency  --n 3 --t 1 --depth 14
//   synran narrate  --n 96 --t 95 --adversary coinbias --seed 11
//   synran trace    convert|stats|head --in FILE [...]
//
// `run` and `narrate` accept --trace-out=FILE to write a round trace in
// the format picked by --trace-format=jsonl|bin (JSONL "synran-trace/1" or
// binary "synran-trace/2" — see EXPERIMENTS.md); tracing works at any
// --threads count, byte-identical to the serial run. `trace` operates on
// existing trace files: `convert` round-trips between the formats
// byte-stably, `stats` streams a file into the RepeatedRunStats-shaped
// aggregate, `head` prints the first events as JSONL.
// `run` additionally accepts --faults=omit:RATE[,BUDGET] to layer seeded
// i.i.d. link drops (ChaosAdversary) on top of the chosen crash adversary —
// or --faults=byz:RATE[,BUDGET] to layer seeded equivocating value
// corruption (ByzantineAdversary) instead —
// --fail-policy/--retries to quarantine failing reps instead of aborting,
// and --resume=FILE to checkpoint the batch (synran-ckpt/1) and reload it
// on a rerun instead of recomputing.
//
// Exit codes (also in --help and README.md):
//   0  safe, successful run
//   1  safety or runtime failure (agreement/validity violations, reps that
//      hit --max-rounds, quarantined reps, I/O errors)
//   2  usage error (unknown names, malformed or out-of-range flag values)
//   3  interrupted (SIGINT/SIGTERM honored between repetitions)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "adversary/basic.hpp"
#include "adversary/byzantine.hpp"
#include "async/benor.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/nonadaptive.hpp"
#include "adversary/omission.hpp"
#include "coin/forcing.hpp"
#include "coin/games.hpp"
#include "coin/recursive_games.hpp"
#include "common/table.hpp"
#include "exec/stopper.hpp"
#include "lowerbound/valency.hpp"
#include "obs/checkpoint.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "runner/narrate.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace {

using namespace synran;

/// A malformed invocation: unknown names, unparsable or out-of-range flag
/// values. Caught in main() and turned into a one-line message + exit 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict whole-string unsigned parse: rejects empty strings, signs, trailing
/// junk ("0x", "12a"), and overflow, with the flag name in the message.
std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  std::uint64_t v = 0;
  const char* b = text.data();
  const char* e = b + text.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (text.empty() || ec != std::errc() || p != e) {
    throw UsageError("invalid value for --" + key + ": '" + text +
                     "' (expected a non-negative integer)");
  }
  return v;
}

std::uint32_t parse_u32(const std::string& key, const std::string& text) {
  const std::uint64_t v = parse_u64(key, text);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw UsageError("value for --" + key + " is out of range: '" + text +
                     "'");
  }
  return static_cast<std::uint32_t>(v);
}

/// Strict whole-string double parse (for rates).
double parse_f64(const std::string& key, const std::string& text) {
  double v = 0.0;
  const char* b = text.data();
  const char* e = b + text.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (text.empty() || ec != std::errc() || p != e) {
    throw UsageError("invalid value for --" + key + ": '" + text +
                     "' (expected a number)");
  }
  return v;
}

/// Minimal argument parser: accepts both "--key value" and "--key=value".
/// Names listed in `flags` are booleans — they take no value and read back
/// as "1" (get("name", "") != "" tests presence).
class Args {
 public:
  Args(int argc, char** argv, int first,
       const std::set<std::string>& flags = {}) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw UsageError("expected --key value pairs, got '" +
                         std::string(argv[i]) + "'");
      }
      const std::string arg = argv[i] + 2;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      if (flags.count(arg) != 0) {
        kv_[arg] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        throw UsageError("missing value for '--" + arg + "'");
      }
      kv_[arg] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& key, std::uint64_t dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : parse_u64(key, it->second);
  }
  std::uint32_t num32(const std::string& key, std::uint32_t dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : parse_u32(key, it->second);
  }

 private:
  std::map<std::string, std::string> kv_;
};

std::unique_ptr<ProcessFactory> make_protocol(const std::string& name,
                                              std::uint32_t t) {
  if (name == "synran") return std::make_unique<SynRanFactory>();
  if (name == "benor-sym") {
    SynRanOptions o;
    o.coin_rule = CoinRule::Symmetric;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "synran-nodet") {
    SynRanOptions o;
    o.det_handoff = false;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "floodmin")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, false});
  if (name == "floodmin-early")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, true});
  if (name == "leadercoin") return std::make_unique<LeaderCoinFactory>();
  return nullptr;
}

AdversaryFactory make_adversary(const std::string& name) {
  if (name == "none") return no_adversary_factory();
  if (name == "random")
    return [](std::uint64_t s) {
      return std::make_unique<RandomCrashAdversary>(
          RandomCrashAdversary::Options{2, 0.6, s});
    };
  if (name == "chain")
    return [](std::uint64_t) {
      return std::make_unique<ChainHidingAdversary>();
    };
  if (name == "coinbias")
    return [](std::uint64_t s) {
      return std::make_unique<CoinBiasAdversary>(
          CoinBiasOptions{0.55, true, s});
    };
  if (name == "oblivious")
    return [](std::uint64_t s) {
      return std::make_unique<ObliviousAdversary>(ObliviousOptions{64, s});
    };
  if (name == "leader-killer")
    return [](std::uint64_t) {
      return std::make_unique<LeaderKillerAdversary>();
    };
  return nullptr;
}

InputPattern parse_pattern(const std::string& name) {
  if (name == "all-0") return InputPattern::AllZero;
  if (name == "all-1") return InputPattern::AllOne;
  if (name == "half") return InputPattern::Half;
  if (name == "single-0") return InputPattern::SingleZero;
  return InputPattern::Random;
}

/// Parsed --faults. `omit:RATE[,BUDGET]` layers seeded i.i.d. link drops
/// (ChaosAdversary); `byz:RATE[,BUDGET]` layers seeded equivocating value
/// corruption (ByzantineAdversary). Both stay off without the flag.
struct FaultFlag {
  bool enabled = false;
  /// Corrupted-value regime (byz:) instead of link drops (omit:).
  bool byzantine = false;
  double rate = 0.0;
  /// Directive budget (omission or corruption, per the regime); defaults to
  /// "effectively unlimited" so a bare --faults=omit:p / byz:p studies the
  /// pure rate regime.
  std::uint32_t budget = std::numeric_limits<std::uint32_t>::max();
};

/// Parsed --trace-format (default jsonl, the human-readable schema).
obs::TraceFormat parse_format_flag(const Args& args) {
  const std::string name = args.get("trace-format", "jsonl");
  const auto format = obs::parse_trace_format(name);
  if (!format.has_value()) {
    throw UsageError("invalid --trace-format '" + name +
                     "' (expected jsonl or bin)");
  }
  return *format;
}

/// Header metadata for binary traces the CLI produces: the current seeding
/// schema, provenance unknown (the CLI has no build id baked in).
obs::Trace2Header cli_trace_header() {
  obs::Trace2Header header;
  header.seed_schema = static_cast<std::uint16_t>(kSeedSchemaVersion);
  return header;
}

FaultFlag parse_faults(const std::string& text) {
  FaultFlag f;
  if (text.empty()) return f;
  std::string rest;
  if (text.rfind("omit:", 0) == 0) {
    rest = text.substr(5);
  } else if (text.rfind("byz:", 0) == 0) {
    f.byzantine = true;
    rest = text.substr(4);
  } else {
    throw UsageError("invalid --faults '" + text +
                     "': expected omit:RATE[,BUDGET] or byz:RATE[,BUDGET]");
  }
  if (const auto comma = rest.find(','); comma != std::string::npos) {
    f.budget = parse_u32("faults", rest.substr(comma + 1));
    rest = rest.substr(0, comma);
  }
  f.rate = parse_f64("faults", rest);
  if (f.rate < 0.0 || f.rate > 1.0) {
    throw UsageError("invalid --faults rate '" + rest +
                     "': must lie in [0, 1]");
  }
  f.enabled = true;
  return f;
}

/// Parsed --scheduler for --model=async.
AsyncSchedulerFactory make_scheduler(const std::string& name) {
  if (name == "fifo") return fifo_scheduler_factory();
  if (name == "random") return random_scheduler_factory();
  if (name == "laggard") return laggard_scheduler_factory();
  if (name == "stall") return stall_scheduler_factory();
  throw UsageError("invalid --scheduler '" + name +
                   "' (expected fifo, random, laggard, or stall)");
}

/// Parsed --delay held|fixed:D|uniform:LO,HI for --model=async.
AsyncDelayFactory make_delay(const std::string& text) {
  if (text.empty() || text == "held") return held_delay_factory();
  if (text.rfind("fixed:", 0) == 0) {
    return fixed_delay_factory(parse_u64("delay", text.substr(6)));
  }
  if (text.rfind("uniform:", 0) == 0) {
    const std::string rest = text.substr(8);
    const auto comma = rest.find(',');
    if (comma == std::string::npos) {
      throw UsageError("invalid --delay '" + text +
                       "': uniform needs LO,HI");
    }
    const auto lo = parse_u64("delay", rest.substr(0, comma));
    const auto hi = parse_u64("delay", rest.substr(comma + 1));
    if (lo > hi) {
      throw UsageError("invalid --delay '" + text + "': LO must be <= HI");
    }
    return uniform_delay_factory(lo, hi);
  }
  throw UsageError("invalid --delay '" + text +
                   "' (expected held, fixed:D, or uniform:LO,HI)");
}

/// The async branch of `run` (--model=async): repeated event-driven
/// executions of Ben-Or under a scheduler + delay model, optionally in
/// partial synchrony (--gst/--delta).
int cmd_run_async(const Args& args) {
  exec::install_stop_handlers();

  const auto n = args.num32("n", 32);
  const auto t = args.num32("t", n >= 2 ? (n - 1) / 2 : 0);
  const auto proto = args.get("protocol", "benor");
  if (proto != "benor") {
    throw UsageError("--model=async supports --protocol benor only");
  }
  // Sync-only machinery is rejected loudly rather than ignored.
  for (const char* flag : {"adversary", "faults", "resume", "fail-policy",
                           "retries", "max-rounds"}) {
    if (!args.get(flag, "").empty()) {
      throw UsageError(std::string("--") + flag +
                       " does not apply to --model=async" +
                       (std::string(flag) == "adversary"
                            ? " (use --scheduler)"
                            : ""));
    }
  }

  AsyncSchedulerFactory schedulers =
      make_scheduler(args.get("scheduler", "random"));
  AsyncDelayFactory delays = make_delay(args.get("delay", "held"));
  const auto gst = args.num("gst", 0);
  const auto delta = args.num("delta", 0);
  if ((gst != 0 || delta != 0)) {
    // Partial synchrony: adversary-held before GST, forced delivery within
    // --delta after. Composes with the scheduler, not the timed delays.
    if (args.get("delay", "held") != "held") {
      throw UsageError("--gst/--delta require --delay held (they bound the "
                       "adversary, not a timed link model)");
    }
    if (delta == 0) {
      throw UsageError("--gst needs --delta >= 1 (the post-GST bound)");
    }
    delays = gst_delay_factory(gst, delta);
  }

  BenOrOptions protocol_options;
  protocol_options.retransmit_every = args.num("retransmit", 0);
  const BenOrAsyncFactory factory(protocol_options);

  AsyncRepeatSpec spec;
  spec.n = n;
  spec.pattern = parse_pattern(args.get("pattern", "random"));
  spec.reps = args.num("reps", 50);
  spec.seed = args.num("seed", 1);
  spec.threads = static_cast<unsigned>(args.num("threads", 0));
  spec.engine.t_budget = t;
  spec.engine.max_steps = args.num("max-steps", 2000000);
  if (const auto max_time = args.num("max-time", 0); max_time != 0) {
    spec.engine.max_time = max_time;
  }

  std::unique_ptr<obs::TraceWriter> tracer;
  if (const auto path = args.get("trace-out", ""); !path.empty()) {
    try {
      tracer = obs::make_trace_writer(parse_format_flag(args), path,
                                      cli_trace_header());
    } catch (const obs::IoError& e) {
      throw UsageError(e.what());
    }
    spec.engine.observer = tracer.get();
  }
  const AsyncRunStats stats =
      run_repeated_async(factory, schedulers, delays, spec);
  if (tracer != nullptr) tracer->close();

  Table table("benor-async vs " + args.get("scheduler", "random"));
  table.header({"metric", "value"});
  table.row({std::string("n / t / reps"),
             std::to_string(n) + " / " + std::to_string(t) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("rounds to decision (mean)"),
             stats.rounds_to_decision().mean()});
  table.row({std::string("ticks to decision (mean)"),
             stats.ticks_to_decision().mean()});
  table.row({std::string("messages delivered (mean)"),
             stats.messages_delivered().mean()});
  table.row({std::string("coin flips (mean)"), stats.coin_flips().mean()});
  table.row({std::string("timers fired (mean)"),
             stats.timers_fired().mean()});
  table.row({std::string("crashes used (mean)"), stats.crashes_used().mean()});
  table.row({std::string("decided 1 / reps"),
             std::to_string(stats.decided_one()) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("agreement failures"),
             static_cast<long long>(stats.agreement_failures())});
  table.row({std::string("validity failures"),
             static_cast<long long>(stats.validity_failures())});
  table.row({std::string("non-terminated"),
             static_cast<long long>(stats.non_terminated())});
  table.print(std::cout);
  if (stats.non_terminated() > 0) {
    std::cerr << "WARNING: " << stats.non_terminated() << " of "
              << stats.reps()
              << " repetitions did not terminate (starved, capped, or out of "
                 "simulated time); their aggregates are truncated\n";
  }
  return stats.all_safe() ? 0 : 1;
}

int cmd_run(const Args& args) {
  // Long-running batches honor SIGINT/SIGTERM between repetitions: the
  // executor finishes in-flight reps, then throws exec::Interrupted, which
  // main() turns into exit code 3.
  exec::install_stop_handlers();

  const auto n = args.num32("n", 128);
  const auto t = args.num32("t", n / 2);
  const auto proto = args.get("protocol", "synran");
  const auto adv = args.get("adversary", "coinbias");
  const auto faults = parse_faults(args.get("faults", ""));

  const auto policy_name = args.get("fail-policy", "fail_fast");
  FailurePolicy policy;
  if (policy_name == "fail_fast") {
    policy = FailurePolicy::FailFast;
  } else if (policy_name == "quarantine") {
    policy = FailurePolicy::Quarantine;
  } else {
    throw UsageError("invalid --fail-policy '" + policy_name +
                     "' (expected fail_fast or quarantine)");
  }

  const auto factory = make_protocol(proto, t);
  AdversaryFactory adversaries = make_adversary(adv);
  if (!factory || !adversaries) {
    throw UsageError("unknown protocol or adversary");
  }
  if (faults.enabled) {
    // Layer seeded link faults over the chosen crash adversary. The fault
    // coins use their own derived stream so they never perturb the inner
    // adversary's randomness (stream 1 = omission chaos, 2 = corruption).
    if (faults.byzantine) {
      adversaries = [inner = std::move(adversaries),
                     faults](std::uint64_t s) -> std::unique_ptr<Adversary> {
        ByzantineOptions byz;
        byz.corrupt_rate = faults.rate;
        byz.seed = SeedSequence(s).stream(2);
        return std::make_unique<ByzantineAdversary>(byz, inner(s));
      };
    } else {
      adversaries = [inner = std::move(adversaries),
                     faults](std::uint64_t s) -> std::unique_ptr<Adversary> {
        ChaosOptions chaos;
        chaos.drop_rate = faults.rate;
        chaos.seed = SeedSequence(s).stream(1);
        return std::make_unique<ChaosAdversary>(chaos, inner(s));
      };
    }
  }

  RepeatSpec spec;
  spec.n = n;
  spec.pattern = parse_pattern(args.get("pattern", "random"));
  spec.reps = args.num("reps", 50);
  spec.seed = args.num("seed", 1);
  spec.threads = static_cast<unsigned>(args.num("threads", 0));
  spec.engine.t_budget = t;
  spec.engine.max_rounds = args.num32("max-rounds", 100000);
  spec.engine.max_rep_retries = args.num32("retries", 0);
  spec.policy = policy;
  if (faults.enabled) {
    if (faults.byzantine)
      spec.engine.byzantine_budget = faults.budget;
    else
      spec.engine.omission_budget = faults.budget;
  }

  // --resume=FILE binds a synran-ckpt/1 ledger keyed by the full spec (plus
  // the adversary/fault flags, which shape results but not the spec). A key
  // hit reloads the exact accumulator state instead of re-running; schema-2
  // seed streams make the restored report identical to a fresh one.
  const std::string resume_path = args.get("resume", "");
  std::unique_ptr<obs::CheckpointLedger> ledger;
  std::string cell_key;
  if (!resume_path.empty()) {
    cell_key = spec_cell_key(
        spec, proto, "cli:" + adv + ":faults=" + args.get("faults", ""));
    ledger = std::make_unique<obs::CheckpointLedger>(resume_path, "synran-run",
                                                     spec.seed);
  }

  RepeatedRunStats stats;
  bool restored = false;
  if (ledger != nullptr) {
    if (const obs::CheckpointCell* hit = ledger->find(0, cell_key)) {
      stats = RepeatedRunStats::from_checkpoint(hit->data);
      restored = true;
      std::cerr << "[resume: batch restored from " << resume_path << "]\n";
    }
  }

  std::unique_ptr<obs::TraceWriter> tracer;
  if (!restored) {
    if (const auto path = args.get("trace-out", ""); !path.empty()) {
      // Any thread count: the executor buffers per-rep callbacks and
      // replays them in rep order, so the trace bytes match a serial run.
      try {
        tracer =
            obs::make_trace_writer(parse_format_flag(args), path,
                                   cli_trace_header());
      } catch (const obs::IoError& e) {
        throw UsageError(e.what());
      }
      spec.engine.observer = tracer.get();
    }
    stats = run_repeated(*factory, adversaries, spec);
    if (tracer != nullptr) tracer->close();
    // Record after a completed batch only; an interrupt above never leaves
    // a half-written cell. obs::IoError propagates to main() → exit 1.
    if (ledger != nullptr) {
      ledger->record(obs::CheckpointCell{0, cell_key, stats.checkpoint_json()});
    }
  } else if (!args.get("trace-out", "").empty()) {
    std::cerr << "[resume: --trace-out skipped — batch was not re-executed]\n";
  }

  Table table(proto + " vs " + adv);
  table.header({"metric", "value"});
  table.row({std::string("n / t / reps"),
             std::to_string(n) + " / " + std::to_string(t) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("rounds to decision (mean)"),
             stats.rounds_to_decision().mean()});
  table.row({std::string("rounds to decision (sd)"),
             stats.rounds_to_decision().stddev()});
  table.row({std::string("rounds to halt (mean)"),
             stats.rounds_to_halt().mean()});
  table.row({std::string("crashes used (mean)"), stats.crashes_used().mean()});
  if (faults.enabled && !faults.byzantine) {
    table.row({std::string("omissions used (mean)"),
               stats.omissions_used().mean()});
    table.row({std::string("messages omitted (mean)"),
               stats.messages_omitted().mean()});
  }
  if (faults.enabled && faults.byzantine) {
    table.row({std::string("corruptions used (mean)"),
               stats.corruptions_used().mean()});
    table.row({std::string("messages corrupted (mean)"),
               stats.messages_corrupted().mean()});
  }
  table.row({std::string("decided 1 / reps"),
             std::to_string(stats.decided_one()) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("agreement failures"),
             static_cast<long long>(stats.agreement_failures())});
  table.row({std::string("validity failures"),
             static_cast<long long>(stats.validity_failures())});
  table.row({std::string("non-terminated"),
             static_cast<long long>(stats.non_terminated())});
  if (policy == FailurePolicy::Quarantine) {
    table.row({std::string("reps quarantined"),
               static_cast<long long>(stats.reps_quarantined())});
  }
  table.print(std::cout);
  if (stats.reps_quarantined() > 0) {
    std::cerr << "WARNING: " << stats.reps_quarantined()
              << " repetitions were quarantined after exhausting their retry "
                 "budget; every aggregate above covers survivors only\n";
    for (const auto& f : stats.failures()) {
      std::cerr << "  rep " << f.rep << " (engine seed " << f.seed << ", "
                << f.attempts << " attempts): " << f.error << "\n";
    }
  }
  if (stats.non_terminated() > 0) {
    std::cerr << "WARNING: " << stats.non_terminated() << " of "
              << stats.reps() << " repetitions hit --max-rounds ("
              << spec.engine.max_rounds
              << ") without terminating; their round counts are truncated "
                 "and every aggregate above is suspect\n";
  }
  return stats.all_safe() && stats.reps_quarantined() == 0 ? 0 : 1;
}

int cmd_coin(const Args& args) {
  const auto n = args.num32("n", 256);
  const auto game_name = args.get("game", "majority");
  std::unique_ptr<CoinGame> game;
  if (game_name == "majority")
    game = std::make_unique<MajorityPresentGame>(n);
  else if (game_name == "majority0")
    game = std::make_unique<MajorityDefaultZeroGame>(n);
  else if (game_name == "parity")
    game = std::make_unique<ParityPresentGame>(n);
  else if (game_name == "leader")
    game = std::make_unique<LeaderBitGame>(n);
  else if (game_name == "tribes")
    game = std::make_unique<TribesGame>(n / 8 ? n / 8 : 1, 8);
  if (!game) {
    throw UsageError("unknown game (majority|majority0|parity|leader|tribes)");
  }

  const auto budget = args.num32("budget", 0);
  const auto samples = args.num("samples", 400);
  const auto est =
      estimate_control(*game, budget, samples, args.num("seed", 1));

  Table table(std::string(game->name()) + " control");
  table.header({"outcome", "Pr(U^v)", "< 1/n?"});
  table.precision(4);
  for (std::uint32_t v = 0; v < game->outcomes(); ++v)
    table.row({static_cast<long long>(v), est.pr_unforceable[v],
               std::string(est.pr_unforceable[v] <
                                   1.0 / game->players() + 0.01
                               ? "yes"
                               : "no")});
  table.print(std::cout);
  return 0;
}

int cmd_valency(const Args& args) {
  const auto n = args.num32("n", 3);
  ValencyOptions opts;
  opts.t_budget = args.num32("t", 1);
  opts.max_depth = args.num32("depth", 14);
  SynRanFactory factory;

  Table table("SynRan initial-state valencies");
  table.header({"inputs", "min r", "max r", "classes"});
  table.precision(3);
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<Bit> inputs;
    std::string label;
    for (std::uint32_t i = 0; i < n; ++i) {
      inputs.push_back((x >> i) & 1 ? Bit::One : Bit::Zero);
      label += (x >> i) & 1 ? '1' : '0';
    }
    const auto v = evaluate_initial_state(factory, inputs, opts);
    std::string classes;
    for (int c = 0; c < 4; ++c)
      if (v.classes & (1u << c)) {
        if (!classes.empty()) classes += "|";
        classes += to_string(static_cast<Valency>(c));
      }
    table.row({label,
               "[" + std::to_string(v.min_r.lo).substr(0, 5) + "," +
                   std::to_string(v.min_r.hi).substr(0, 5) + "]",
               "[" + std::to_string(v.max_r.lo).substr(0, 5) + "," +
                   std::to_string(v.max_r.hi).substr(0, 5) + "]",
               classes});
  }
  table.print(std::cout);
  return 0;
}

int cmd_narrate(const Args& args) {
  const auto n = args.num32("n", 96);
  const auto t = args.num32("t", n - 1);
  const auto seed = args.num("seed", 11);
  const auto adversaries = make_adversary(args.get("adversary", "coinbias"));
  if (!adversaries) {
    throw UsageError("unknown adversary");
  }
  auto inner = adversaries(seed);
  TracingAdversary tracer(*inner);
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  opts.max_rounds = 100000;
  std::unique_ptr<obs::TraceWriter> trace_out;
  if (const auto path = args.get("trace-out", ""); !path.empty()) {
    try {
      trace_out = obs::make_trace_writer(parse_format_flag(args), path,
                                         cli_trace_header());
    } catch (const obs::IoError& e) {
      throw UsageError(e.what());
    }
    opts.observer = trace_out.get();
  }
  Xoshiro256 rng(seed);
  const auto inputs =
      make_inputs(n, parse_pattern(args.get("pattern", "half")), rng);
  const auto res = run_once(factory, inputs, tracer, opts);
  if (trace_out != nullptr) trace_out->close();
  narrate(tracer.trace(), std::cout);
  std::cout << "decision "
            << (res.has_decision ? std::to_string(to_int(res.decision)) : "-")
            << " @ round " << res.rounds_to_decision << ", agreement "
            << (res.agreement ? "yes" : "NO") << "\n";
  return res.agreement ? 0 : 1;
}

/// `synran trace convert`: re-encode a trace file in the other format (or
/// an explicit --to). Conversion replays records through a fresh writer, so
/// jsonl→bin→jsonl and bin→jsonl→bin are byte-stable for CLI-produced
/// files; --seed-schema/--git-rev reproduce a foreign binary header.
int cmd_trace_convert(const Args& args) {
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    throw UsageError("trace convert needs --in FILE and --out FILE");
  }
  const obs::TraceFormat from = obs::sniff_trace_format(in);
  obs::TraceFormat to = from == obs::TraceFormat::Binary
                            ? obs::TraceFormat::Jsonl
                            : obs::TraceFormat::Binary;
  if (const auto name = args.get("to", ""); !name.empty()) {
    const auto parsed = obs::parse_trace_format(name);
    if (!parsed.has_value()) {
      throw UsageError("invalid --to '" + name + "' (expected jsonl or bin)");
    }
    to = *parsed;
  }
  obs::Trace2Header header = cli_trace_header();
  header.seed_schema = static_cast<std::uint16_t>(
      args.num("seed-schema", header.seed_schema));
  header.git_rev = args.get("git-rev", header.git_rev);
  const auto reader = obs::open_trace_reader(in);
  const auto writer = obs::make_trace_writer(to, out, std::move(header));
  const std::uint64_t events = obs::convert_trace(*reader, *writer);
  std::cout << "converted " << events << " events: " << in << " ("
            << obs::to_string(from) << ") -> " << out << " ("
            << obs::to_string(to) << ", " << writer->bytes_written()
            << " bytes)\n";
  return 0;
}

/// `synran trace stats`: stream a trace (either format) into the
/// RepeatedRunStats-shaped aggregate. --format=json prints the raw metrics
/// snapshot — byte-identical across the two trace encodings of one run.
int cmd_trace_stats(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) throw UsageError("trace stats needs --in FILE");
  const auto reader = obs::open_trace_reader(in);
  obs::TraceAggregator agg;
  obs::aggregate_trace(*reader, agg);

  const std::string format = args.get("format", "table");
  if (format == "json") {
    std::cout << agg.metrics().to_json().dump() << "\n";
    return 0;
  }
  if (format != "table") {
    throw UsageError("invalid --format '" + format +
                     "' (expected table or json)");
  }
  const auto& m = agg.metrics();
  Table table("trace stats: " + in);
  table.header({"metric", "value"});
  table.row({std::string("runs completed"),
             static_cast<long long>(agg.runs())});
  table.row({std::string("rounds"), static_cast<long long>(agg.rounds())});
  table.row({std::string("attempts abandoned"),
             static_cast<long long>(agg.abandoned())});
  table.row({std::string("rounds to decision (mean)"),
             m.summary_at("rounds_to_decision").mean()});
  table.row({std::string("rounds to halt (mean)"),
             m.summary_at("rounds_to_halt").mean()});
  table.row({std::string("crashes used (mean)"),
             m.summary_at("crashes_used").mean()});
  table.row({std::string("messages delivered (mean)"),
             m.summary_at("messages_delivered").mean()});
  table.row({std::string("omissions used (mean)"),
             m.summary_at("omissions_used").mean()});
  table.row({std::string("decided 1 / runs"),
             std::to_string(m.counter_at("decided_one").value()) + " / " +
                 std::to_string(m.counter_at("reps").value())});
  table.row({std::string("agreement failures"),
             static_cast<long long>(
                 m.counter_at("agreement_failures").value())});
  table.row({std::string("non-terminated"),
             static_cast<long long>(m.counter_at("non_terminated").value())});
  table.print(std::cout);
  return 0;
}

/// `synran trace head`: decode the first --count events (either format) and
/// print them as JSONL — the binary format's inspection hatch.
int cmd_trace_head(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) throw UsageError("trace head needs --in FILE");
  const std::uint64_t count = args.num("count", 10);
  const auto reader = obs::open_trace_reader(in);
  obs::JsonlTraceWriter writer(std::cout);
  obs::TraceRecord record;
  for (std::uint64_t shown = 0; shown < count && reader->next(record);
       ++shown) {
    obs::replay(record, writer);
  }
  return 0;
}

/// `synran serve`: the fault-tolerant batch-request daemon (synran-req/1
/// over stdio or a Unix socket, content-addressed result cache, bounded
/// queue with shedding, per-request deadlines, graceful drain). See
/// EXPERIMENTS.md "Serving batches" and README.md "Serving".
int cmd_serve(const Args& args) {
  exec::install_stop_handlers();

  serve::ServerOptions opts;
  opts.socket_path = args.get("socket", "");
  if (!args.get("stdio", "").empty() && !opts.socket_path.empty()) {
    throw UsageError("--stdio and --socket are mutually exclusive");
  }
  opts.cache_dir = args.get("cache-dir", ".synran-cache");
  opts.max_queue = args.num("max-queue", 64);
  if (opts.max_queue == 0) {
    throw UsageError("--max-queue must be >= 1");
  }
  opts.deadline_ms = args.num("deadline-ms", 0);
  opts.threads = static_cast<unsigned>(args.num("threads", 0));
  opts.max_cache_entries = args.num("max-cache-entries", 0);
  opts.backoff_ms = static_cast<unsigned>(args.num("backoff-ms", 10));
  // Cache keys embed the build identity so a rebuilt binary never serves
  // results computed by different code. SYNRAN_GIT_REV (env) overrides.
  opts.git_rev = args.get("git-rev", "");
  if (opts.git_rev.empty()) {
    const char* env = std::getenv("SYNRAN_GIT_REV");
    opts.git_rev = env != nullptr && *env != '\0' ? env : "unknown";
  }
  opts.log = &std::cerr;

  serve::Server server(std::move(opts));
  return server.run();
}

/// `synran request`: minimal client for the daemon's socket mode. Reads
/// frames (or anything else) from stdin, ships the bytes to --socket,
/// half-closes, and streams the responses to stdout. Stdin is consumed
/// fully before sending, so pipe scripts of smoke-test size — not bulk
/// transfers — are the intended use.
int cmd_request(const Args& args) {
  const std::string path = args.get("socket", "");
  if (path.empty()) {
    throw UsageError("request needs --socket PATH");
  }

  std::string input;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("stdin read failed: ") +
                               std::strerror(errno));
    }
    if (got == 0) break;
    input.append(chunk, static_cast<std::size_t>(got));
  }

  const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (sock < 0) {
    throw std::runtime_error(std::string("socket failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(sock);
    throw UsageError("--socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(sock);
    throw std::runtime_error("cannot connect to " + path + ": " +
                             std::strerror(errno));
  }

  std::size_t off = 0;
  while (off < input.size()) {
    const ssize_t put = ::write(sock, input.data() + off, input.size() - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      ::close(sock);
      throw std::runtime_error(std::string("socket write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(put);
  }
  ::shutdown(sock, SHUT_WR);

  for (;;) {
    const ssize_t got = ::read(sock, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(sock);
      throw std::runtime_error(std::string("socket read failed: ") +
                               std::strerror(errno));
    }
    if (got == 0) break;
    std::cout.write(chunk, got);
  }
  std::cout.flush();
  ::close(sock);
  return 0;
}

int cmd_trace(const std::string& sub, const Args& args) {
  if (sub == "convert") return cmd_trace_convert(args);
  if (sub == "stats") return cmd_trace_stats(args);
  if (sub == "head") return cmd_trace_head(args);
  throw UsageError("unknown trace subcommand '" + sub +
                   "' (expected convert, stats, or head)");
}

void usage() {
  std::cout <<
      "synran <command> [--key value ...]\n"
      "\n"
      "commands:\n"
      "  run      repeated executions: --protocol synran|benor-sym|\n"
      "           synran-nodet|floodmin|floodmin-early|leadercoin\n"
      "           --adversary none|random|chain|coinbias|oblivious|\n"
      "           leader-killer --n --t --reps --seed --pattern\n"
      "           --threads N (0 = SYNRAN_THREADS or serial; statistics\n"
      "           are identical at any thread count)\n"
      "           --trace-out=FILE --trace-format=jsonl|bin (round trace,\n"
      "           schema synran-trace/1 or /2; byte-identical at any\n"
      "           --threads count)\n"
      "           --faults=omit:RATE[,BUDGET] (seeded i.i.d. link drops at\n"
      "           RATE in [0,1]; BUDGET caps omission directives, default\n"
      "           unlimited)\n"
      "           --faults=byz:RATE[,BUDGET] (seeded equivocating value\n"
      "           corruption: each live sender is corrupted with prob.\n"
      "           RATE per round; BUDGET caps corruption directives,\n"
      "           default unlimited)\n"
      "           --fail-policy fail_fast|quarantine (quarantine records a\n"
      "           failing rep and keeps going instead of aborting the batch)\n"
      "           --retries N (same-seed retries per failing rep before it\n"
      "           is quarantined or aborts the batch; default 0)\n"
      "           --resume=FILE (synran-ckpt/1 ledger: a completed batch is\n"
      "           recorded, and a rerun with the same flags reloads it\n"
      "           instead of recomputing)\n"
      "           --model sync|async (default sync). --model=async runs\n"
      "           Ben-Or on the event-driven core:\n"
      "             --scheduler fifo|random|laggard|stall (the async\n"
      "             adversary; default random)\n"
      "             --delay held|fixed:D|uniform:LO,HI (link delay model;\n"
      "             default held = pure asynchrony)\n"
      "             --gst G --delta B (partial synchrony: adversary-held\n"
      "             before G, delivery forced within B after; needs\n"
      "             --delay held)\n"
      "             --retransmit N (rebroadcast latest phase message every\n"
      "             N ticks; 0 = off)\n"
      "             --max-steps N --max-time T (per-rep caps)\n"
      "           Sync-only flags (--adversary, --faults, --resume,\n"
      "           --fail-policy, --retries, --max-rounds) are rejected.\n"
      "  coin     one-round game control: --game majority|majority0|\n"
      "           parity|leader|tribes --n --budget --samples\n"
      "  valency  exact initial-state valencies (tiny n): --n --t --depth\n"
      "  narrate  round-by-round story of one run: --n --t --seed\n"
      "           --adversary --pattern --trace-out=FILE\n"
      "           --trace-format=jsonl|bin\n"
      "  trace    operate on trace files (format sniffed from the bytes):\n"
      "           convert --in FILE --out FILE [--to jsonl|bin]\n"
      "                   [--seed-schema N --git-rev REV] (byte-stable\n"
      "                   round-trips between the formats)\n"
      "           stats   --in FILE [--format table|json] (streaming\n"
      "                   aggregation; json matches across formats)\n"
      "           head    --in FILE [--count N] (first events as JSONL)\n"
      "  serve    batch-request daemon (schema synran-req/1 over\n"
      "           length-prefixed frames; see EXPERIMENTS.md):\n"
      "           --stdio (default) | --socket PATH (Unix socket)\n"
      "           --cache-dir DIR (content-addressed result cache,\n"
      "           default .synran-cache) --max-cache-entries N (0 = no\n"
      "           LRU eviction) --max-queue N (default 64; excess\n"
      "           requests get a structured 'overloaded' error)\n"
      "           --deadline-ms N (default per-request deadline; 0 =\n"
      "           none) --threads N --git-rev REV (cache-key build id;\n"
      "           default $SYNRAN_GIT_REV or 'unknown')\n"
      "  request  client for serve's socket mode: frames from stdin to\n"
      "           --socket PATH, responses to stdout\n"
      "\n"
      "exit codes:\n"
      "  0  safe, successful run\n"
      "  1  safety or runtime failure (agreement/validity violations,\n"
      "     non-terminated or quarantined reps, I/O errors)\n"
      "  2  usage error (unknown names, malformed flag values)\n"
      "  3  interrupted (SIGINT/SIGTERM; in-flight reps finish first)\n"
      "  4  serve drained (SIGINT/SIGTERM: queued requests answered\n"
      "     'shutting_down', cache left consistent, then exit)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "-h" || cmd == "--help" || cmd == "help") {
    usage();
    return 0;
  }
  try {
    if (cmd == "trace") {
      if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
        throw UsageError(
            "trace needs a subcommand: convert, stats, or head");
      }
      return cmd_trace(argv[2], Args(argc, argv, 3));
    }
    // serve parses its own Args: --stdio is a value-less flag the generic
    // --key value parser would misread as a pair.
    if (cmd == "serve") return cmd_serve(Args(argc, argv, 2, {"stdio"}));
    Args args(argc, argv, 2);
    if (cmd == "run") {
      const std::string model = args.get("model", "sync");
      if (model == "async") return cmd_run_async(args);
      if (model != "sync") {
        throw UsageError("invalid --model '" + model +
                         "' (expected sync or async)");
      }
      return cmd_run(args);
    }
    if (cmd == "coin") return cmd_coin(args);
    if (cmd == "valency") return cmd_valency(args);
    if (cmd == "narrate") return cmd_narrate(args);
    if (cmd == "request") return cmd_request(args);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const synran::exec::Interrupted& e) {
    std::cerr << "interrupted: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}
