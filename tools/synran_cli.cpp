// synran — command-line front end to the library.
//
//   synran run      --protocol synran --adversary coinbias --n 256 --t 128
//   synran coin     --game majority --n 1024 --budget 300 --samples 500
//   synran valency  --n 3 --t 1 --depth 14
//   synran narrate  --n 96 --t 95 --adversary coinbias --seed 11
//
// `run` and `narrate` accept --trace-out=FILE to write a JSONL trace
// (schema "synran-trace/1", one event per round — see EXPERIMENTS.md).
//
// Every subcommand prints an aligned table (or narrative) and exits 0 on a
// safe, successful run.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/nonadaptive.hpp"
#include "coin/forcing.hpp"
#include "coin/games.hpp"
#include "coin/recursive_games.hpp"
#include "common/table.hpp"
#include "lowerbound/valency.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "runner/narrate.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace {

using namespace synran;

/// Minimal argument parser: accepts both "--key value" and "--key=value".
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::cerr << "expected --key value pairs, got '" << argv[i] << "'\n";
        ok_ = false;
        return;
      }
      const std::string arg = argv[i] + 2;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << "missing value for '--" << arg << "'\n";
        ok_ = false;
        return;
      }
      kv_[arg] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& key, std::uint64_t dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> kv_;
  bool ok_ = true;
};

std::unique_ptr<ProcessFactory> make_protocol(const std::string& name,
                                              std::uint32_t t) {
  if (name == "synran") return std::make_unique<SynRanFactory>();
  if (name == "benor-sym") {
    SynRanOptions o;
    o.coin_rule = CoinRule::Symmetric;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "synran-nodet") {
    SynRanOptions o;
    o.det_handoff = false;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "floodmin")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, false});
  if (name == "floodmin-early")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, true});
  if (name == "leadercoin") return std::make_unique<LeaderCoinFactory>();
  return nullptr;
}

AdversaryFactory make_adversary(const std::string& name) {
  if (name == "none") return no_adversary_factory();
  if (name == "random")
    return [](std::uint64_t s) {
      return std::make_unique<RandomCrashAdversary>(
          RandomCrashAdversary::Options{2, 0.6, s});
    };
  if (name == "chain")
    return [](std::uint64_t) {
      return std::make_unique<ChainHidingAdversary>();
    };
  if (name == "coinbias")
    return [](std::uint64_t s) {
      return std::make_unique<CoinBiasAdversary>(
          CoinBiasOptions{0.55, true, s});
    };
  if (name == "oblivious")
    return [](std::uint64_t s) {
      return std::make_unique<ObliviousAdversary>(ObliviousOptions{64, s});
    };
  if (name == "leader-killer")
    return [](std::uint64_t) {
      return std::make_unique<LeaderKillerAdversary>();
    };
  return nullptr;
}

InputPattern parse_pattern(const std::string& name) {
  if (name == "all-0") return InputPattern::AllZero;
  if (name == "all-1") return InputPattern::AllOne;
  if (name == "half") return InputPattern::Half;
  if (name == "single-0") return InputPattern::SingleZero;
  return InputPattern::Random;
}

int cmd_run(const Args& args) {
  const auto n = static_cast<std::uint32_t>(args.num("n", 128));
  const auto t = static_cast<std::uint32_t>(args.num("t", n / 2));
  const auto proto = args.get("protocol", "synran");
  const auto adv = args.get("adversary", "coinbias");

  const auto factory = make_protocol(proto, t);
  const auto adversaries = make_adversary(adv);
  if (!factory || !adversaries) {
    std::cerr << "unknown protocol or adversary\n";
    return 2;
  }

  RepeatSpec spec;
  spec.n = n;
  spec.pattern = parse_pattern(args.get("pattern", "random"));
  spec.reps = args.num("reps", 50);
  spec.seed = args.num("seed", 1);
  spec.threads = static_cast<unsigned>(args.num("threads", 0));
  spec.engine.t_budget = t;
  spec.engine.max_rounds = args.num("max-rounds", 100000);

  std::ofstream trace_out;
  std::unique_ptr<obs::JsonlTraceWriter> tracer;
  if (const auto path = args.get("trace-out", ""); !path.empty()) {
    if (exec::resolve_threads(spec.threads) > 1) {
      std::cerr << "--trace-out needs a serial run: JSONL traces are "
                   "round-ordered, so drop --threads (and SYNRAN_THREADS) "
                   "or set --threads 1\n";
      return 2;
    }
    spec.threads = 1;
    trace_out.open(path);
    if (!trace_out) {
      std::cerr << "cannot write trace file '" << path << "'\n";
      return 2;
    }
    tracer = std::make_unique<obs::JsonlTraceWriter>(trace_out);
    spec.engine.observer = tracer.get();
  }

  const auto stats = run_repeated(*factory, adversaries, spec);

  Table table(proto + " vs " + adv);
  table.header({"metric", "value"});
  table.row({std::string("n / t / reps"),
             std::to_string(n) + " / " + std::to_string(t) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("rounds to decision (mean)"),
             stats.rounds_to_decision().mean()});
  table.row({std::string("rounds to decision (sd)"),
             stats.rounds_to_decision().stddev()});
  table.row({std::string("rounds to halt (mean)"),
             stats.rounds_to_halt().mean()});
  table.row({std::string("crashes used (mean)"), stats.crashes_used().mean()});
  table.row({std::string("decided 1 / reps"),
             std::to_string(stats.decided_one()) + " / " +
                 std::to_string(stats.reps())});
  table.row({std::string("agreement failures"),
             static_cast<long long>(stats.agreement_failures())});
  table.row({std::string("validity failures"),
             static_cast<long long>(stats.validity_failures())});
  table.row({std::string("non-terminated"),
             static_cast<long long>(stats.non_terminated())});
  table.print(std::cout);
  return stats.all_safe() ? 0 : 1;
}

int cmd_coin(const Args& args) {
  const auto n = static_cast<std::uint32_t>(args.num("n", 256));
  const auto game_name = args.get("game", "majority");
  std::unique_ptr<CoinGame> game;
  if (game_name == "majority")
    game = std::make_unique<MajorityPresentGame>(n);
  else if (game_name == "majority0")
    game = std::make_unique<MajorityDefaultZeroGame>(n);
  else if (game_name == "parity")
    game = std::make_unique<ParityPresentGame>(n);
  else if (game_name == "leader")
    game = std::make_unique<LeaderBitGame>(n);
  else if (game_name == "tribes")
    game = std::make_unique<TribesGame>(n / 8 ? n / 8 : 1, 8);
  if (!game) {
    std::cerr << "unknown game (majority|majority0|parity|leader|tribes)\n";
    return 2;
  }

  const auto budget = static_cast<std::uint32_t>(args.num("budget", 0));
  const auto samples = args.num("samples", 400);
  const auto est =
      estimate_control(*game, budget, samples, args.num("seed", 1));

  Table table(std::string(game->name()) + " control");
  table.header({"outcome", "Pr(U^v)", "< 1/n?"});
  table.precision(4);
  for (std::uint32_t v = 0; v < game->outcomes(); ++v)
    table.row({static_cast<long long>(v), est.pr_unforceable[v],
               std::string(est.pr_unforceable[v] <
                                   1.0 / game->players() + 0.01
                               ? "yes"
                               : "no")});
  table.print(std::cout);
  return 0;
}

int cmd_valency(const Args& args) {
  const auto n = static_cast<std::uint32_t>(args.num("n", 3));
  ValencyOptions opts;
  opts.t_budget = static_cast<std::uint32_t>(args.num("t", 1));
  opts.max_depth = static_cast<std::uint32_t>(args.num("depth", 14));
  SynRanFactory factory;

  Table table("SynRan initial-state valencies");
  table.header({"inputs", "min r", "max r", "classes"});
  table.precision(3);
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<Bit> inputs;
    std::string label;
    for (std::uint32_t i = 0; i < n; ++i) {
      inputs.push_back((x >> i) & 1 ? Bit::One : Bit::Zero);
      label += (x >> i) & 1 ? '1' : '0';
    }
    const auto v = evaluate_initial_state(factory, inputs, opts);
    std::string classes;
    for (int c = 0; c < 4; ++c)
      if (v.classes & (1u << c)) {
        if (!classes.empty()) classes += "|";
        classes += to_string(static_cast<Valency>(c));
      }
    table.row({label,
               "[" + std::to_string(v.min_r.lo).substr(0, 5) + "," +
                   std::to_string(v.min_r.hi).substr(0, 5) + "]",
               "[" + std::to_string(v.max_r.lo).substr(0, 5) + "," +
                   std::to_string(v.max_r.hi).substr(0, 5) + "]",
               classes});
  }
  table.print(std::cout);
  return 0;
}

int cmd_narrate(const Args& args) {
  const auto n = static_cast<std::uint32_t>(args.num("n", 96));
  const auto t = static_cast<std::uint32_t>(args.num("t", n - 1));
  const auto seed = args.num("seed", 11);
  const auto adversaries = make_adversary(args.get("adversary", "coinbias"));
  if (!adversaries) {
    std::cerr << "unknown adversary\n";
    return 2;
  }
  auto inner = adversaries(seed);
  TracingAdversary tracer(*inner);
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  opts.max_rounds = 100000;
  std::ofstream trace_out;
  std::unique_ptr<obs::JsonlTraceWriter> jsonl;
  if (const auto path = args.get("trace-out", ""); !path.empty()) {
    trace_out.open(path);
    if (!trace_out) {
      std::cerr << "cannot write trace file '" << path << "'\n";
      return 2;
    }
    jsonl = std::make_unique<obs::JsonlTraceWriter>(trace_out);
    opts.observer = jsonl.get();
  }
  Xoshiro256 rng(seed);
  const auto inputs =
      make_inputs(n, parse_pattern(args.get("pattern", "half")), rng);
  const auto res = run_once(factory, inputs, tracer, opts);
  narrate(tracer.trace(), std::cout);
  std::cout << "decision "
            << (res.has_decision ? std::to_string(to_int(res.decision)) : "-")
            << " @ round " << res.rounds_to_decision << ", agreement "
            << (res.agreement ? "yes" : "NO") << "\n";
  return res.agreement ? 0 : 1;
}

void usage() {
  std::cout <<
      "synran <command> [--key value ...]\n"
      "\n"
      "commands:\n"
      "  run      repeated executions: --protocol synran|benor-sym|\n"
      "           synran-nodet|floodmin|floodmin-early|leadercoin\n"
      "           --adversary none|random|chain|coinbias|oblivious|\n"
      "           leader-killer --n --t --reps --seed --pattern\n"
      "           --threads N (0 = SYNRAN_THREADS or serial; statistics\n"
      "           are identical at any thread count)\n"
      "           --trace-out=FILE (JSONL round trace; serial only)\n"
      "  coin     one-round game control: --game majority|majority0|\n"
      "           parity|leader|tribes --n --budget --samples\n"
      "  valency  exact initial-state valencies (tiny n): --n --t --depth\n"
      "  narrate  round-by-round story of one run: --n --t --seed\n"
      "           --adversary --pattern --trace-out=FILE\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) return 2;
  try {
    if (cmd == "run") return cmd_run(args);
    if (cmd == "coin") return cmd_coin(args);
    if (cmd == "valency") return cmd_valency(args);
    if (cmd == "narrate") return cmd_narrate(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}
