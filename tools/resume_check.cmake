# resume_check.cmake — proves checkpoint/resume reproduces an uninterrupted
# bench sweep byte for byte. Driven from add_test():
#
#   cmake -DBENCH=<bench binary> -DSCHEMA_CHECK=<bench_schema_check>
#         -DWORK_DIR=<scratch dir> -P resume_check.cmake
#
# The script runs the sweep to completion once, truncates its checkpoint
# ledger mid-grid (including a torn final line, as a real interruption can
# leave), reruns under SYNRAN_RESUME=1, and asserts the two BENCH_*.json
# reports are byte-identical in canonical form (timings/git_rev stripped by
# `bench_schema_check --canon`). That equality is the whole point of seed
# schema 2 plus exact accumulator checkpoints: a resumed sweep must be
# indistinguishable from one that never stopped.
if(NOT DEFINED BENCH OR NOT DEFINED SCHEMA_CHECK OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "resume_check.cmake needs -DBENCH=..., -DSCHEMA_CHECK=..., -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/full" "${WORK_DIR}/resumed")

# Environment common to both runs. The rep budget keeps the grid small; the
# flags that change cell keys or report contents are pinned/cleared so the
# two runs differ only in SYNRAN_RESUME. Timing kernels are filtered out —
# --canon strips timings anyway, so they would only add wall-clock.
set(common_env
  ${CMAKE_COMMAND} -E env
  --unset=SYNRAN_TRACE_DIR --unset=SYNRAN_CSV_DIR
  --unset=SYNRAN_FAIL_POLICY --unset=SYNRAN_REP_RETRIES
  SYNRAN_REPS_BUDGET=32 SYNRAN_THREADS=2)

# --- Run 1: uninterrupted, recording a checkpoint per cell. ---------------
execute_process(
  COMMAND ${common_env} --unset=SYNRAN_RESUME
    SYNRAN_BENCH_DIR=${WORK_DIR}/full SYNRAN_CKPT_DIR=${WORK_DIR}/full
    ${BENCH} --benchmark_filter=__none__
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "full run failed (rc ${rc})\n${out}")
endif()

file(GLOB ledgers "${WORK_DIR}/full/CKPT_*.jsonl")
list(LENGTH ledgers n_ledgers)
if(NOT n_ledgers EQUAL 1)
  message(FATAL_ERROR "expected one checkpoint ledger, found: ${ledgers}")
endif()
list(GET ledgers 0 ledger)
get_filename_component(ledger_name "${ledger}" NAME)
file(GLOB reports "${WORK_DIR}/full/BENCH_*.json")
list(GET reports 0 full_report)
get_filename_component(report_name "${full_report}" NAME)

# --- Truncate the ledger mid-grid, with a torn final line. ----------------
# Keep the header plus the first 7 cells, then append half of the next line
# without its newline: a process killed mid-flush leaves exactly this shape,
# and the loader must keep the intact prefix and recompute from the tear.
# (Split by scanning for newlines: cell keys contain ';', so CMake's
# list-based line handling would mangle them.)
file(READ "${ledger}" content)
set(kept "")
set(remaining "${content}")
set(lines_kept 0)
while(lines_kept LESS 8)
  string(FIND "${remaining}" "\n" nl)
  if(nl EQUAL -1)
    message(FATAL_ERROR
      "ledger too short to truncate mid-grid (${lines_kept} lines): ${ledger}")
  endif()
  math(EXPR nl1 "${nl} + 1")
  string(SUBSTRING "${remaining}" 0 ${nl1} line)
  string(APPEND kept "${line}")
  string(SUBSTRING "${remaining}" ${nl1} -1 remaining)
  math(EXPR lines_kept "${lines_kept} + 1")
endwhile()
string(LENGTH "${remaining}" rest_len)
if(rest_len LESS 40)
  message(FATAL_ERROR "nothing left after the truncation point; the resumed "
    "run would not recompute anything")
endif()
string(SUBSTRING "${remaining}" 0 20 torn)
string(APPEND kept "${torn}")
file(WRITE "${WORK_DIR}/resumed/${ledger_name}" "${kept}")

# --- Run 2: resume from the truncated ledger. -----------------------------
execute_process(
  COMMAND ${common_env} SYNRAN_RESUME=1
    SYNRAN_BENCH_DIR=${WORK_DIR}/resumed SYNRAN_CKPT_DIR=${WORK_DIR}/resumed
    ${BENCH} --benchmark_filter=__none__
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed run failed (rc ${rc})\n${out}")
endif()
string(FIND "${out}" "[ckpt: cell" restored_at)
if(restored_at EQUAL -1)
  message(FATAL_ERROR
    "resumed run restored no cells — the test degenerated into running the "
    "sweep twice\n${out}")
endif()

# --- Compare canonical forms. ---------------------------------------------
foreach(which full resumed)
  execute_process(
    COMMAND ${SCHEMA_CHECK} --canon "${WORK_DIR}/${which}/${report_name}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE canon_${which} ERROR_VARIABLE canon_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--canon rejected the ${which} report\n${canon_err}")
  endif()
endforeach()

if(NOT canon_full STREQUAL canon_resumed)
  message(FATAL_ERROR
    "resumed report differs from the uninterrupted one\n"
    "--- full ---\n${canon_full}\n--- resumed ---\n${canon_resumed}")
endif()
message(STATUS "resume check ok: canonical reports are byte-identical")
