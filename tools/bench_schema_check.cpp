// bench_schema_check — validates the machine-readable artifacts the
// observability layer emits, for CI and for humans wiring up downstream
// tooling.
//
//   bench_schema_check BENCH_e1.json ...         # synran-bench/1 reports
//   bench_schema_check --trace run.jsonl ...     # synran-trace/1 JSONL
//   bench_schema_check --canon BENCH_e1.json     # canonical form to stdout
//
// Prints one verdict line per file; exits 0 iff every file validates.
// --canon validates one report, then prints it with the run-dependent
// fields (timings, git_rev) stripped — two runs of the same experiment are
// equivalent iff their canonical forms are byte-identical, which is how the
// resume tests prove a checkpointed rerun reproduces an uninterrupted one.
// EXPERIMENTS.md documents both schemas field by field.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace_writer.hpp"

namespace {

using synran::obs::JsonValue;

/// Collects every problem in one file so a broken report shows all its
/// defects at once instead of one per CI round-trip.
struct Check {
  std::vector<std::string> problems;

  void fail(const std::string& what) { problems.push_back(what); }

  const JsonValue* field(const JsonValue& obj, const std::string& key) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) fail("missing field \"" + key + "\"");
    return v;
  }

  const JsonValue* typed(const JsonValue& obj, const std::string& key,
                         bool (JsonValue::*pred)() const,
                         const char* type_name) {
    const JsonValue* v = field(obj, key);
    if (v != nullptr && !(v->*pred)()) {
      fail("field \"" + key + "\" is not " + type_name);
      return nullptr;
    }
    return v;
  }
};

void check_bench_report(const JsonValue& doc, Check& c) {
  if (!doc.is_object()) {
    c.fail("document is not a JSON object");
    return;
  }
  if (const auto* schema =
          c.typed(doc, "schema", &JsonValue::is_string, "a string");
      schema != nullptr && schema->as_string() != "synran-bench/1")
    c.fail("schema is \"" + schema->as_string() +
           "\", expected \"synran-bench/1\"");
  if (const auto* exp =
          c.typed(doc, "experiment", &JsonValue::is_string, "a string");
      exp != nullptr && exp->as_string().empty())
    c.fail("experiment name is empty");
  c.typed(doc, "seed", &JsonValue::is_int, "an integer");
  c.typed(doc, "git_rev", &JsonValue::is_string, "a string");
  // Additive field (absent in pre-executor artifacts): if present it must be
  // a positive integer worker count.
  if (const auto* threads = doc.find("threads"); threads != nullptr) {
    if (!threads->is_int() || threads->as_int() < 1)
      c.fail("threads is present but not a positive integer");
  }
  // Additive field (omission experiments only): an array of
  // {drop_rate in [0,1], budget >= 0} configurations.
  if (const auto* oms = doc.find("omissions"); oms != nullptr) {
    if (!oms->is_array()) {
      c.fail("omissions is present but not an array");
    } else {
      for (std::size_t i = 0; i < oms->as_array().size(); ++i) {
        const auto& om = oms->as_array()[i];
        const std::string at = "omissions[" + std::to_string(i) + "]";
        if (!om.is_object()) {
          c.fail(at + " is not an object");
          continue;
        }
        const auto* rate = om.find("drop_rate");
        if (rate == nullptr || !rate->is_number())
          c.fail(at + ".drop_rate is not a number");
        else if (rate->as_double() < 0.0 || rate->as_double() > 1.0)
          c.fail(at + ".drop_rate is outside [0, 1]");
        const auto* budget = om.find("budget");
        if (budget == nullptr || !budget->is_int())
          c.fail(at + ".budget is not an integer");
        else if (budget->as_int() < 0)
          c.fail(at + ".budget is negative");
      }
    }
  }

  // Additive field: present (and true) only when a report was flushed after
  // an interruption — its tables/timings cover a prefix of the experiment.
  if (const auto* partial = doc.find("partial"); partial != nullptr) {
    if (!partial->is_bool())
      c.fail("partial is present but not a boolean");
  }
  // Additive field (quarantine policy only): one entry per quarantined rep,
  // tagged with the cell ordinal it belongs to.
  if (const auto* failures = doc.find("failures"); failures != nullptr) {
    if (!failures->is_array()) {
      c.fail("failures is present but not an array");
    } else {
      for (std::size_t i = 0; i < failures->as_array().size(); ++i) {
        const auto& f = failures->as_array()[i];
        const std::string at = "failures[" + std::to_string(i) + "]";
        if (!f.is_object()) {
          c.fail(at + " is not an object");
          continue;
        }
        for (const char* key : {"cell", "rep", "seed", "attempts"}) {
          const auto* v = f.find(key);
          if (v == nullptr || !v->is_int())
            c.fail(at + "." + key + " is not an integer");
        }
        if (const auto* v = f.find("attempts");
            v != nullptr && v->is_int() && v->as_int() < 1)
          c.fail(at + ".attempts is not positive");
        if (const auto* v = f.find("error"); v == nullptr || !v->is_string())
          c.fail(at + ".error is not a string");
      }
    }
  }

  if (const auto* grid =
          c.typed(doc, "grid", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < grid->as_array().size(); ++i) {
      const auto& pt = grid->as_array()[i];
      const std::string at = "grid[" + std::to_string(i) + "]";
      if (!pt.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      for (const char* key : {"n", "t"}) {
        const auto* v = pt.find(key);
        if (v == nullptr || !v->is_int())
          c.fail(at + "." + key + " is not an integer");
      }
    }
  }

  if (const auto* tables =
          c.typed(doc, "tables", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < tables->as_array().size(); ++i) {
      const auto& table = tables->as_array()[i];
      const std::string at = "tables[" + std::to_string(i) + "]";
      if (!table.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      const auto* title = table.find("title");
      if (title == nullptr || !title->is_string())
        c.fail(at + ".title is not a string");
      const auto* columns = table.find("columns");
      std::size_t width = 0;
      if (columns == nullptr || !columns->is_array()) {
        c.fail(at + ".columns is not an array");
      } else {
        width = columns->as_array().size();
        for (const auto& col : columns->as_array())
          if (!col.is_string()) c.fail(at + ".columns has a non-string");
      }
      const auto* rows = table.find("rows");
      if (rows == nullptr || !rows->is_array()) {
        c.fail(at + ".rows is not an array");
      } else {
        for (std::size_t r = 0; r < rows->as_array().size(); ++r) {
          const auto& row = rows->as_array()[r];
          if (!row.is_array()) {
            c.fail(at + ".rows[" + std::to_string(r) + "] is not an array");
            continue;
          }
          if (columns != nullptr && columns->is_array() &&
              row.as_array().size() > width)
            c.fail(at + ".rows[" + std::to_string(r) + "] is wider than "
                   "the header");
          for (const auto& cell : row.as_array())
            if (!cell.is_string() && !cell.is_number())
              c.fail(at + ".rows[" + std::to_string(r) +
                     "] has a cell that is neither string nor number");
        }
      }
    }
  }

  if (const auto* timings =
          c.typed(doc, "timings", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < timings->as_array().size(); ++i) {
      const auto& t = timings->as_array()[i];
      const std::string at = "timings[" + std::to_string(i) + "]";
      if (!t.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      const auto* name = t.find("name");
      if (name == nullptr || !name->is_string())
        c.fail(at + ".name is not a string");
      if (const auto* v = t.find("iterations"); v != nullptr && !v->is_int())
        c.fail(at + ".iterations is not an integer");
      for (const char* key : {"real_time", "cpu_time"})
        if (const auto* v = t.find(key); v != nullptr && !v->is_number())
          c.fail(at + "." + key + " is not a number");
      if (const auto* v = t.find("time_unit"); v != nullptr && !v->is_string())
        c.fail(at + ".time_unit is not a string");
    }
  }
}

/// Validates one synran-trace/1 JSONL stream: every line parses, events come
/// in run_begin → round* → run_end order, and each run's round-level crash
/// and delivery counts sum to the totals its run_end claims.
void check_trace_stream(std::istream& in, Check& c) {
  std::string line;
  std::size_t line_no = 0;
  bool in_run = false;
  std::int64_t expected_run = 0;
  std::int64_t crashes_sum = 0;
  std::int64_t delivered_sum = 0;
  std::int64_t omissions_sum = 0;
  std::int64_t omitted_sum = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string at = "line " + std::to_string(line_no);
    std::string err;
    const auto parsed = JsonValue::parse(line, &err);
    if (!parsed.has_value()) {
      c.fail(at + ": parse error: " + err);
      continue;
    }
    if (!parsed->is_object()) {
      c.fail(at + ": event is not an object");
      continue;
    }
    const auto* event = parsed->find("event");
    if (event == nullptr || !event->is_string()) {
      c.fail(at + ": missing \"event\"");
      continue;
    }
    const auto* run = parsed->find("run");
    if (run == nullptr || !run->is_int()) {
      c.fail(at + ": missing integer \"run\"");
      continue;
    }
    const std::string& kind = event->as_string();

    if (kind == "run_begin") {
      if (in_run) c.fail(at + ": run_begin inside an open run");
      const auto* schema = parsed->find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != synran::obs::kTraceSchema)
        c.fail(at + ": run_begin schema is not \"" +
               std::string(synran::obs::kTraceSchema) + "\"");
      if (run->as_int() != expected_run)
        c.fail(at + ": run index " + std::to_string(run->as_int()) +
               ", expected " + std::to_string(expected_run));
      for (const char* key : {"n", "t", "per_round_cap", "seed"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_begin." + key + " is not an integer");
      // Additive fields, emitted only for runs with an omission budget.
      for (const char* key : {"omission_budget", "omission_round_cap"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": run_begin." + key + " is present but not an integer");
      in_run = true;
      crashes_sum = 0;
      delivered_sum = 0;
      omissions_sum = 0;
      omitted_sum = 0;
    } else if (kind == "round") {
      if (!in_run) c.fail(at + ": round outside a run");
      for (const char* key :
           {"round", "alive", "halted", "senders", "ones", "zeros", "det",
            "decided", "crashes", "budget_left", "delivered"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": round." + key + " is not an integer");
      if (const auto* v = parsed->find("crashes"); v != nullptr && v->is_int())
        crashes_sum += v->as_int();
      if (const auto* v = parsed->find("delivered");
          v != nullptr && v->is_int())
        delivered_sum += v->as_int();
      // Additive round fields under an omission budget.
      for (const char* key : {"omissions", "omitted"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": round." + key + " is present but not an integer");
      if (const auto* v = parsed->find("omissions");
          v != nullptr && v->is_int())
        omissions_sum += v->as_int();
      if (const auto* v = parsed->find("omitted"); v != nullptr && v->is_int())
        omitted_sum += v->as_int();
    } else if (kind == "run_end") {
      if (!in_run) c.fail(at + ": run_end outside a run");
      for (const char* key : {"terminated", "agreement"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_bool())
          c.fail(at + ": run_end." + key + " is not a boolean");
      const auto* decision = parsed->find("decision");
      if (decision == nullptr ||
          (!decision->is_null() && !decision->is_int()))
        c.fail(at + ": run_end.decision is neither null nor an integer");
      for (const char* key : {"rounds_to_decision", "rounds_to_halt",
                              "crashes", "delivered", "survivors"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_end." + key + " is not an integer");
      if (const auto* v = parsed->find("crashes");
          v != nullptr && v->is_int() && v->as_int() != crashes_sum)
        c.fail(at + ": run_end.crashes (" + std::to_string(v->as_int()) +
               ") != sum of round crashes (" + std::to_string(crashes_sum) +
               ")");
      if (const auto* v = parsed->find("delivered");
          v != nullptr && v->is_int() && v->as_int() != delivered_sum)
        c.fail(at + ": run_end.delivered (" + std::to_string(v->as_int()) +
               ") != sum of round deliveries (" +
               std::to_string(delivered_sum) + ")");
      for (const char* key : {"omissions", "omitted"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": run_end." + key + " is present but not an integer");
      if (const auto* v = parsed->find("omissions");
          v != nullptr && v->is_int() && v->as_int() != omissions_sum)
        c.fail(at + ": run_end.omissions (" + std::to_string(v->as_int()) +
               ") != sum of round omissions (" +
               std::to_string(omissions_sum) + ")");
      if (const auto* v = parsed->find("omitted");
          v != nullptr && v->is_int() && v->as_int() != omitted_sum)
        c.fail(at + ": run_end.omitted (" + std::to_string(v->as_int()) +
               ") != sum of round omitted links (" +
               std::to_string(omitted_sum) + ")");
      in_run = false;
      ++expected_run;
    } else if (kind == "run_abandoned") {
      // A repetition attempt died (retry exhaustion or retry in progress).
      // The event may close an open run (engine threw mid-run) or stand
      // alone (setup threw before run_begin); either way its run index is
      // the slot the attempt occupied, i.e. the current expected run.
      if (run->as_int() != expected_run)
        c.fail(at + ": run_abandoned index " + std::to_string(run->as_int()) +
               ", expected " + std::to_string(expected_run));
      for (const char* key : {"rep", "seed", "attempt"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_abandoned." + key + " is not an integer");
      if (const auto* v = parsed->find("error");
          v == nullptr || !v->is_string())
        c.fail(at + ": run_abandoned.error is not a string");
      if (in_run) {
        in_run = false;
        ++expected_run;
      }
    } else {
      c.fail(at + ": unknown event \"" + kind + "\"");
    }
  }
  if (in_run) c.fail("stream ends inside an open run (no run_end)");
  if (line_no == 0) c.fail("stream is empty");
}

int check_file(const std::string& path, bool trace_mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  Check c;
  if (trace_mode) {
    check_trace_stream(in, c);
  } else {
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto doc = JsonValue::parse(buf.str(), &err);
    if (!doc.has_value())
      c.fail("parse error: " + err);
    else
      check_bench_report(*doc, c);
  }
  if (c.problems.empty()) {
    std::cout << path << ": ok\n";
    return 0;
  }
  std::cout << path << ": INVALID\n";
  for (const auto& p : c.problems) std::cout << "  " << p << "\n";
  return 1;
}

/// Validates one report, then prints its canonical form: every field in
/// document order except the run-dependent ones (timings vary with load,
/// git_rev with the working tree). Verdicts go to stderr so stdout is
/// exactly the canonical document.
int canon_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = JsonValue::parse(buf.str(), &err);
  Check c;
  if (!doc.has_value())
    c.fail("parse error: " + err);
  else
    check_bench_report(*doc, c);
  if (!c.problems.empty()) {
    std::cerr << path << ": INVALID\n";
    for (const auto& p : c.problems) std::cerr << "  " << p << "\n";
    return 1;
  }
  JsonValue canon = JsonValue::object();
  for (const auto& [key, value] : doc->as_object()) {
    if (key == "timings" || key == "git_rev") continue;
    canon.set(key, value);
  }
  std::cout << canon.dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  bool canon_mode = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace")
      trace_mode = true;
    else if (arg == "--canon")
      canon_mode = true;
    else
      files.push_back(arg);
  }
  if (files.empty() || (trace_mode && canon_mode) ||
      (canon_mode && files.size() != 1)) {
    std::cerr << "usage: bench_schema_check [--trace] FILE...\n"
                 "       bench_schema_check --canon FILE\n"
                 "  validates synran-bench/1 reports (default) or\n"
                 "  synran-trace/1 JSONL streams (--trace); --canon prints\n"
                 "  one report minus timings/git_rev for byte comparison\n";
    return 2;
  }
  if (canon_mode) return canon_file(files[0]);
  int rc = 0;
  for (const auto& f : files)
    if (check_file(f, trace_mode) != 0) rc = 1;
  return rc;
}
