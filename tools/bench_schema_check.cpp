// bench_schema_check — validates the machine-readable artifacts the
// observability layer emits, for CI and for humans wiring up downstream
// tooling.
//
//   bench_schema_check BENCH_e1.json ...         # synran-bench/1 reports
//   bench_schema_check --trace run.jsonl ...     # synran-trace/1 JSONL
//   bench_schema_check --trace run.bin ...       # synran-trace/2 binary
//   bench_schema_check --canon BENCH_e1.json     # canonical form to stdout
//
// Prints one verdict line per file; exits 0 iff every file validates.
// --trace sniffs each file's format from its leading bytes (the
// synran-trace/2 magic vs JSONL's '{'). The binary walk deliberately
// re-implements the wire layout from the kTrace2* constants
// (obs/trace_format.hpp) instead of reusing obs::BinaryTraceReader, so a
// shared decode bug cannot self-certify; the schema-literals lint rule
// keeps the constant set here in lockstep with src/obs.
// --canon validates one report, then prints it with the run-dependent
// fields (timings, git_rev, threads, trace_overhead) stripped — two runs
// of the same experiment are equivalent iff their canonical forms are
// byte-identical, which is how the resume tests prove a checkpointed rerun
// reproduces an uninterrupted one and the thread-invariance tests prove a
// parallel sweep reproduces a serial one. EXPERIMENTS.md documents the
// schemas field by field.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace_format.hpp"
#include "obs/trace_writer.hpp"

namespace {

using synran::obs::JsonValue;

/// Collects every problem in one file so a broken report shows all its
/// defects at once instead of one per CI round-trip.
struct Check {
  std::vector<std::string> problems;

  void fail(const std::string& what) { problems.push_back(what); }

  const JsonValue* field(const JsonValue& obj, const std::string& key) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) fail("missing field \"" + key + "\"");
    return v;
  }

  const JsonValue* typed(const JsonValue& obj, const std::string& key,
                         bool (JsonValue::*pred)() const,
                         const char* type_name) {
    const JsonValue* v = field(obj, key);
    if (v != nullptr && !(v->*pred)()) {
      fail("field \"" + key + "\" is not " + type_name);
      return nullptr;
    }
    return v;
  }
};

void check_bench_report(const JsonValue& doc, Check& c) {
  if (!doc.is_object()) {
    c.fail("document is not a JSON object");
    return;
  }
  if (const auto* schema =
          c.typed(doc, "schema", &JsonValue::is_string, "a string");
      schema != nullptr && schema->as_string() != "synran-bench/1")
    c.fail("schema is \"" + schema->as_string() +
           "\", expected \"synran-bench/1\"");
  if (const auto* exp =
          c.typed(doc, "experiment", &JsonValue::is_string, "a string");
      exp != nullptr && exp->as_string().empty())
    c.fail("experiment name is empty");
  c.typed(doc, "seed", &JsonValue::is_int, "an integer");
  c.typed(doc, "git_rev", &JsonValue::is_string, "a string");
  // Additive field (absent in pre-executor artifacts): if present it must be
  // a positive integer worker count.
  if (const auto* threads = doc.find("threads"); threads != nullptr) {
    if (!threads->is_int() || threads->as_int() < 1)
      c.fail("threads is present but not a positive integer");
  }
  // Additive field (omission experiments only): an array of
  // {drop_rate in [0,1], budget >= 0} configurations.
  if (const auto* oms = doc.find("omissions"); oms != nullptr) {
    if (!oms->is_array()) {
      c.fail("omissions is present but not an array");
    } else {
      for (std::size_t i = 0; i < oms->as_array().size(); ++i) {
        const auto& om = oms->as_array()[i];
        const std::string at = "omissions[" + std::to_string(i) + "]";
        if (!om.is_object()) {
          c.fail(at + " is not an object");
          continue;
        }
        const auto* rate = om.find("drop_rate");
        if (rate == nullptr || !rate->is_number())
          c.fail(at + ".drop_rate is not a number");
        else if (rate->as_double() < 0.0 || rate->as_double() > 1.0)
          c.fail(at + ".drop_rate is outside [0, 1]");
        const auto* budget = om.find("budget");
        if (budget == nullptr || !budget->is_int())
          c.fail(at + ".budget is not an integer");
        else if (budget->as_int() < 0)
          c.fail(at + ".budget is negative");
      }
    }
  }

  // Additive field (corruption experiments only): an array of
  // {corrupt_rate in [0,1], budget >= 0} configurations.
  if (const auto* cors = doc.find("corruptions"); cors != nullptr) {
    if (!cors->is_array()) {
      c.fail("corruptions is present but not an array");
    } else {
      for (std::size_t i = 0; i < cors->as_array().size(); ++i) {
        const auto& cor = cors->as_array()[i];
        const std::string at = "corruptions[" + std::to_string(i) + "]";
        if (!cor.is_object()) {
          c.fail(at + " is not an object");
          continue;
        }
        const auto* rate = cor.find("corrupt_rate");
        if (rate == nullptr || !rate->is_number())
          c.fail(at + ".corrupt_rate is not a number");
        else if (rate->as_double() < 0.0 || rate->as_double() > 1.0)
          c.fail(at + ".corrupt_rate is outside [0, 1]");
        const auto* budget = cor.find("budget");
        if (budget == nullptr || !budget->is_int())
          c.fail(at + ".budget is not an integer");
        else if (budget->as_int() < 0)
          c.fail(at + ".budget is negative");
      }
    }
  }

  // Additive block (traced batches only): the trace-write overhead the
  // harness measured. Wall-clock fields, so --canon strips it like timings.
  if (const auto* overhead = doc.find("trace_overhead"); overhead != nullptr) {
    if (!overhead->is_object()) {
      c.fail("trace_overhead is present but not an object");
    } else {
      const auto* fmt = overhead->find("format");
      if (fmt == nullptr || !fmt->is_string() ||
          !synran::obs::parse_trace_format(fmt->as_string()).has_value())
        c.fail("trace_overhead.format is not \"jsonl\" or \"bin\"");
      for (const char* key : {"files", "events", "bytes"}) {
        const auto* v = overhead->find(key);
        if (v == nullptr || !v->is_int() || v->as_int() < 0)
          c.fail(std::string("trace_overhead.") + key +
                 " is not a non-negative integer");
      }
      if (const auto* v = overhead->find("files");
          v != nullptr && v->is_int() && v->as_int() < 1)
        c.fail("trace_overhead.files is not positive");
      for (const char* key : {"write_seconds", "batch_seconds",
                              "write_share"}) {
        const auto* v = overhead->find(key);
        if (v == nullptr || !v->is_number() || v->as_double() < 0.0)
          c.fail(std::string("trace_overhead.") + key +
                 " is not a non-negative number");
      }
    }
  }

  // Additive field: present (and true) only when a report was flushed after
  // an interruption — its tables/timings cover a prefix of the experiment.
  if (const auto* partial = doc.find("partial"); partial != nullptr) {
    if (!partial->is_bool())
      c.fail("partial is present but not a boolean");
  }
  // Additive field (quarantine policy only): one entry per quarantined rep,
  // tagged with the cell ordinal it belongs to.
  if (const auto* failures = doc.find("failures"); failures != nullptr) {
    if (!failures->is_array()) {
      c.fail("failures is present but not an array");
    } else {
      for (std::size_t i = 0; i < failures->as_array().size(); ++i) {
        const auto& f = failures->as_array()[i];
        const std::string at = "failures[" + std::to_string(i) + "]";
        if (!f.is_object()) {
          c.fail(at + " is not an object");
          continue;
        }
        for (const char* key : {"cell", "rep", "seed", "attempts"}) {
          const auto* v = f.find(key);
          if (v == nullptr || !v->is_int())
            c.fail(at + "." + key + " is not an integer");
        }
        if (const auto* v = f.find("attempts");
            v != nullptr && v->is_int() && v->as_int() < 1)
          c.fail(at + ".attempts is not positive");
        if (const auto* v = f.find("error"); v == nullptr || !v->is_string())
          c.fail(at + ".error is not a string");
      }
    }
  }

  if (const auto* grid =
          c.typed(doc, "grid", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < grid->as_array().size(); ++i) {
      const auto& pt = grid->as_array()[i];
      const std::string at = "grid[" + std::to_string(i) + "]";
      if (!pt.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      for (const char* key : {"n", "t"}) {
        const auto* v = pt.find(key);
        if (v == nullptr || !v->is_int())
          c.fail(at + "." + key + " is not an integer");
      }
    }
  }

  if (const auto* tables =
          c.typed(doc, "tables", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < tables->as_array().size(); ++i) {
      const auto& table = tables->as_array()[i];
      const std::string at = "tables[" + std::to_string(i) + "]";
      if (!table.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      const auto* title = table.find("title");
      if (title == nullptr || !title->is_string())
        c.fail(at + ".title is not a string");
      const auto* columns = table.find("columns");
      std::size_t width = 0;
      if (columns == nullptr || !columns->is_array()) {
        c.fail(at + ".columns is not an array");
      } else {
        width = columns->as_array().size();
        for (const auto& col : columns->as_array())
          if (!col.is_string()) c.fail(at + ".columns has a non-string");
      }
      const auto* rows = table.find("rows");
      if (rows == nullptr || !rows->is_array()) {
        c.fail(at + ".rows is not an array");
      } else {
        for (std::size_t r = 0; r < rows->as_array().size(); ++r) {
          const auto& row = rows->as_array()[r];
          if (!row.is_array()) {
            c.fail(at + ".rows[" + std::to_string(r) + "] is not an array");
            continue;
          }
          if (columns != nullptr && columns->is_array() &&
              row.as_array().size() > width)
            c.fail(at + ".rows[" + std::to_string(r) + "] is wider than "
                   "the header");
          for (const auto& cell : row.as_array())
            if (!cell.is_string() && !cell.is_number())
              c.fail(at + ".rows[" + std::to_string(r) +
                     "] has a cell that is neither string nor number");
        }
      }
    }
  }

  if (const auto* timings =
          c.typed(doc, "timings", &JsonValue::is_array, "an array")) {
    for (std::size_t i = 0; i < timings->as_array().size(); ++i) {
      const auto& t = timings->as_array()[i];
      const std::string at = "timings[" + std::to_string(i) + "]";
      if (!t.is_object()) {
        c.fail(at + " is not an object");
        continue;
      }
      const auto* name = t.find("name");
      if (name == nullptr || !name->is_string())
        c.fail(at + ".name is not a string");
      if (const auto* v = t.find("iterations"); v != nullptr && !v->is_int())
        c.fail(at + ".iterations is not an integer");
      for (const char* key : {"real_time", "cpu_time"})
        if (const auto* v = t.find(key); v != nullptr && !v->is_number())
          c.fail(at + "." + key + " is not a number");
      if (const auto* v = t.find("time_unit"); v != nullptr && !v->is_string())
        c.fail(at + ".time_unit is not a string");
    }
  }
}

/// Validates one synran-trace/1 JSONL stream: every line parses, events come
/// in run_begin → round* → run_end order, and each run's round-level crash
/// and delivery counts sum to the totals its run_end claims.
void check_trace_stream(std::istream& in, Check& c) {
  std::string line;
  std::size_t line_no = 0;
  bool in_run = false;
  std::int64_t expected_run = 0;
  std::int64_t crashes_sum = 0;
  std::int64_t delivered_sum = 0;
  std::int64_t omissions_sum = 0;
  std::int64_t omitted_sum = 0;
  std::int64_t corruptions_sum = 0;
  std::int64_t corrupted_sum = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string at = "line " + std::to_string(line_no);
    std::string err;
    const auto parsed = JsonValue::parse(line, &err);
    if (!parsed.has_value()) {
      c.fail(at + ": parse error: " + err);
      continue;
    }
    if (!parsed->is_object()) {
      c.fail(at + ": event is not an object");
      continue;
    }
    const auto* event = parsed->find("event");
    if (event == nullptr || !event->is_string()) {
      c.fail(at + ": missing \"event\"");
      continue;
    }
    const auto* run = parsed->find("run");
    if (run == nullptr || !run->is_int()) {
      c.fail(at + ": missing integer \"run\"");
      continue;
    }
    const std::string& kind = event->as_string();

    if (kind == "run_begin") {
      if (in_run) c.fail(at + ": run_begin inside an open run");
      const auto* schema = parsed->find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != synran::obs::kTraceSchema)
        c.fail(at + ": run_begin schema is not \"" +
               std::string(synran::obs::kTraceSchema) + "\"");
      if (run->as_int() != expected_run)
        c.fail(at + ": run index " + std::to_string(run->as_int()) +
               ", expected " + std::to_string(expected_run));
      for (const char* key : {"n", "t", "per_round_cap", "seed"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_begin." + key + " is not an integer");
      // Additive fields, emitted only for runs with an omission budget
      // (and, likewise, only for runs with a byzantine budget).
      for (const char* key : {"omission_budget", "omission_round_cap",
                              "byzantine_budget", "byzantine_round_cap"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": run_begin." + key + " is present but not an integer");
      in_run = true;
      crashes_sum = 0;
      delivered_sum = 0;
      omissions_sum = 0;
      omitted_sum = 0;
      corruptions_sum = 0;
      corrupted_sum = 0;
    } else if (kind == "round") {
      if (!in_run) c.fail(at + ": round outside a run");
      for (const char* key :
           {"round", "alive", "halted", "senders", "ones", "zeros", "det",
            "decided", "crashes", "budget_left", "delivered"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": round." + key + " is not an integer");
      if (const auto* v = parsed->find("crashes"); v != nullptr && v->is_int())
        crashes_sum += v->as_int();
      if (const auto* v = parsed->find("delivered");
          v != nullptr && v->is_int())
        delivered_sum += v->as_int();
      // Additive round fields under an omission or byzantine budget.
      for (const char* key : {"omissions", "omitted", "corruptions",
                              "corrupted"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": round." + key + " is present but not an integer");
      if (const auto* v = parsed->find("omissions");
          v != nullptr && v->is_int())
        omissions_sum += v->as_int();
      if (const auto* v = parsed->find("omitted"); v != nullptr && v->is_int())
        omitted_sum += v->as_int();
      if (const auto* v = parsed->find("corruptions");
          v != nullptr && v->is_int())
        corruptions_sum += v->as_int();
      if (const auto* v = parsed->find("corrupted");
          v != nullptr && v->is_int())
        corrupted_sum += v->as_int();
    } else if (kind == "run_end") {
      if (!in_run) c.fail(at + ": run_end outside a run");
      for (const char* key : {"terminated", "agreement"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_bool())
          c.fail(at + ": run_end." + key + " is not a boolean");
      const auto* decision = parsed->find("decision");
      if (decision == nullptr ||
          (!decision->is_null() && !decision->is_int()))
        c.fail(at + ": run_end.decision is neither null nor an integer");
      for (const char* key : {"rounds_to_decision", "rounds_to_halt",
                              "crashes", "delivered", "survivors"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_end." + key + " is not an integer");
      if (const auto* v = parsed->find("crashes");
          v != nullptr && v->is_int() && v->as_int() != crashes_sum)
        c.fail(at + ": run_end.crashes (" + std::to_string(v->as_int()) +
               ") != sum of round crashes (" + std::to_string(crashes_sum) +
               ")");
      if (const auto* v = parsed->find("delivered");
          v != nullptr && v->is_int() && v->as_int() != delivered_sum)
        c.fail(at + ": run_end.delivered (" + std::to_string(v->as_int()) +
               ") != sum of round deliveries (" +
               std::to_string(delivered_sum) + ")");
      for (const char* key : {"omissions", "omitted", "corruptions",
                              "corrupted"})
        if (const auto* v = parsed->find(key); v != nullptr && !v->is_int())
          c.fail(at + ": run_end." + key + " is present but not an integer");
      if (const auto* v = parsed->find("omissions");
          v != nullptr && v->is_int() && v->as_int() != omissions_sum)
        c.fail(at + ": run_end.omissions (" + std::to_string(v->as_int()) +
               ") != sum of round omissions (" +
               std::to_string(omissions_sum) + ")");
      if (const auto* v = parsed->find("omitted");
          v != nullptr && v->is_int() && v->as_int() != omitted_sum)
        c.fail(at + ": run_end.omitted (" + std::to_string(v->as_int()) +
               ") != sum of round omitted links (" +
               std::to_string(omitted_sum) + ")");
      if (const auto* v = parsed->find("corruptions");
          v != nullptr && v->is_int() && v->as_int() != corruptions_sum)
        c.fail(at + ": run_end.corruptions (" + std::to_string(v->as_int()) +
               ") != sum of round corruptions (" +
               std::to_string(corruptions_sum) + ")");
      if (const auto* v = parsed->find("corrupted");
          v != nullptr && v->is_int() && v->as_int() != corrupted_sum)
        c.fail(at + ": run_end.corrupted (" + std::to_string(v->as_int()) +
               ") != sum of round corrupted links (" +
               std::to_string(corrupted_sum) + ")");
      in_run = false;
      ++expected_run;
    } else if (kind == "run_abandoned") {
      // A repetition attempt died (retry exhaustion or retry in progress).
      // The event may close an open run (engine threw mid-run) or stand
      // alone (setup threw before run_begin); either way its run index is
      // the slot the attempt occupied, i.e. the current expected run.
      if (run->as_int() != expected_run)
        c.fail(at + ": run_abandoned index " + std::to_string(run->as_int()) +
               ", expected " + std::to_string(expected_run));
      for (const char* key : {"rep", "seed", "attempt"})
        if (const auto* v = parsed->find(key); v == nullptr || !v->is_int())
          c.fail(at + ": run_abandoned." + key + " is not an integer");
      if (const auto* v = parsed->find("error");
          v == nullptr || !v->is_string())
        c.fail(at + ": run_abandoned.error is not a string");
      if (in_run) {
        in_run = false;
        ++expected_run;
      }
    } else {
      c.fail(at + ": unknown event \"" + kind + "\"");
    }
  }
  if (in_run) c.fail("stream ends inside an open run (no run_end)");
  if (line_no == 0) c.fail("stream is empty");
}

/// Validates one synran-trace/2 binary stream by walking the wire layout
/// directly off the kTrace2* constants: header (magic, version, reserved,
/// NUL-padded git_rev), per-record kind tags and flag bits, LEB128 varints
/// with the overlong-encoding cap, the omission gate latched per run, and
/// the same event-order and crash/delivery/omission sum cross-checks the
/// JSONL checker applies. A header-only file is valid (an empty run set
/// still self-identifies); structural damage stops the walk at the first
/// undecodable byte.
void check_trace2_stream(const std::string& data, Check& c) {
  using namespace synran::obs;

  if (data.size() < kTrace2HeaderSize) {
    c.fail("file is shorter than the " + std::to_string(kTrace2HeaderSize) +
           "-byte " + std::string(kTrace2Schema) + " header");
    return;
  }
  auto u8 = [&data](std::size_t i) {
    return static_cast<std::uint8_t>(data[i]);
  };
  auto le = [&u8](std::size_t at, std::size_t bytes) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i)
      v |= static_cast<std::uint64_t>(u8(at + i)) << (8 * i);
    return v;
  };
  if (le(0, 8) != kTrace2Magic) {
    c.fail("bad magic — not a " + std::string(kTrace2Schema) + " file");
    return;
  }
  if (le(8, 2) != kTrace2Version)
    c.fail("version " + std::to_string(le(8, 2)) + ", expected " +
           std::to_string(kTrace2Version));
  // Bytes 10..11 are the producer's seed schema — any value is valid.
  if (le(12, 4) != 0) c.fail("reserved header word is not zero");
  // git_rev is NUL-padded: once padding starts, it must not resume.
  bool padding = false;
  for (std::size_t i = 0; i < kTrace2GitRevSize; ++i) {
    const std::uint8_t b = u8(16 + i);
    if (b == 0)
      padding = true;
    else if (padding)
      c.fail("git_rev has bytes after its NUL padding");
  }

  std::size_t pos = kTrace2HeaderSize;
  auto fail_at = [&c](std::size_t at, const std::string& what) {
    c.fail("offset " + std::to_string(at) + ": " + what);
  };
  // LEB128, at most kTrace2MaxVarintBytes bytes; the last permitted byte of
  // a u64 may only carry its single valid data bit and no continuation.
  auto varint = [&](std::uint64_t& out, const char* what) -> bool {
    std::uint64_t v = 0;
    int shift = 0;
    std::size_t n = 0;
    while (true) {
      if (pos >= data.size()) {
        fail_at(pos, std::string("truncated varint (") + what + ")");
        return false;
      }
      const std::uint8_t b = u8(pos++);
      if (++n == kTrace2MaxVarintBytes && (b & 0xFE) != 0) {
        fail_at(pos - 1, std::string("overlong varint (") + what + ")");
        return false;
      }
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      shift += 7;
      if ((b & 0x80) == 0) break;
    }
    out = v;
    return true;
  };

  bool in_run = false;
  bool omissions = false;
  bool corruptions = false;
  std::uint64_t crashes_sum = 0;
  std::uint64_t delivered_sum = 0;
  std::uint64_t omissions_sum = 0;
  std::uint64_t omitted_sum = 0;
  std::uint64_t corruptions_sum = 0;
  std::uint64_t corrupted_sum = 0;

  while (pos < data.size()) {
    const std::size_t at = pos;
    const std::uint8_t kind = u8(pos++);
    if (kind == kTrace2KindRunBegin) {
      if (in_run) fail_at(at, "run_begin inside an open run");
      if (pos >= data.size()) {
        fail_at(pos, "truncated run_begin flags");
        return;
      }
      const std::uint8_t flags = u8(pos++);
      if ((flags & ~(kTrace2FlagOmissions | kTrace2FlagCorruptions)) != 0)
        fail_at(at, "unknown run_begin flag bits");
      omissions = (flags & kTrace2FlagOmissions) != 0;
      corruptions = (flags & kTrace2FlagCorruptions) != 0;
      const std::size_t count = kTrace2RunBeginFields +
                                (omissions ? kTrace2OmissionFields : 0) +
                                (corruptions ? kTrace2CorruptionFields : 0);
      std::uint64_t v = 0;
      for (std::size_t f = 0; f < count; ++f)
        if (!varint(v, "run_begin field")) return;
      in_run = true;
      crashes_sum = delivered_sum = omissions_sum = omitted_sum = 0;
      corruptions_sum = corrupted_sum = 0;
    } else if (kind == kTrace2KindRound) {
      if (!in_run) fail_at(at, "round outside a run");
      std::uint64_t fields[kTrace2RoundFields + kTrace2OmissionFields +
                           kTrace2CorruptionFields] = {};
      const std::size_t count = kTrace2RoundFields +
                                (omissions ? kTrace2OmissionFields : 0) +
                                (corruptions ? kTrace2CorruptionFields : 0);
      for (std::size_t f = 0; f < count; ++f)
        if (!varint(fields[f], "round field")) return;
      // Field order per trace_format.hpp: crashes is the 9th varint,
      // delivered the 11th, then the omission pair, then the corruption
      // pair (each present only when its flag is set, always in that
      // order).
      crashes_sum += fields[8];
      delivered_sum += fields[10];
      std::size_t extra = kTrace2RoundFields;
      if (omissions) {
        omissions_sum += fields[extra];
        omitted_sum += fields[extra + 1];
        extra += kTrace2OmissionFields;
      }
      if (corruptions) {
        corruptions_sum += fields[extra];
        corrupted_sum += fields[extra + 1];
      }
    } else if (kind == kTrace2KindRunEnd) {
      if (!in_run) fail_at(at, "run_end outside a run");
      if (pos >= data.size()) {
        fail_at(pos, "truncated run_end flags");
        return;
      }
      const std::uint8_t flags = u8(pos++);
      constexpr std::uint8_t known =
          kTrace2EndFlagTerminated | kTrace2EndFlagAgreement |
          kTrace2EndFlagHasDecision | kTrace2EndFlagDecisionOne;
      if ((flags & ~known) != 0) fail_at(at, "unknown run_end flag bits");
      if ((flags & kTrace2EndFlagDecisionOne) != 0 &&
          (flags & kTrace2EndFlagHasDecision) == 0)
        fail_at(at, "run_end decision-one flag without a decision");
      std::uint64_t fields[kTrace2RunEndFields + kTrace2OmissionFields +
                           kTrace2CorruptionFields] = {};
      const std::size_t count = kTrace2RunEndFields +
                                (omissions ? kTrace2OmissionFields : 0) +
                                (corruptions ? kTrace2CorruptionFields : 0);
      for (std::size_t f = 0; f < count; ++f)
        if (!varint(fields[f], "run_end field")) return;
      // rounds_to_decision, rounds_to_halt, crashes, delivered, survivors.
      if (fields[2] != crashes_sum)
        fail_at(at, "run_end.crashes (" + std::to_string(fields[2]) +
                        ") != sum of round crashes (" +
                        std::to_string(crashes_sum) + ")");
      if (fields[3] != delivered_sum)
        fail_at(at, "run_end.delivered (" + std::to_string(fields[3]) +
                        ") != sum of round deliveries (" +
                        std::to_string(delivered_sum) + ")");
      std::size_t extra = kTrace2RunEndFields;
      if (omissions) {
        if (fields[extra] != omissions_sum)
          fail_at(at, "run_end.omissions (" + std::to_string(fields[extra]) +
                          ") != sum of round omissions (" +
                          std::to_string(omissions_sum) + ")");
        if (fields[extra + 1] != omitted_sum)
          fail_at(at, "run_end.omitted (" +
                          std::to_string(fields[extra + 1]) +
                          ") != sum of round omitted links (" +
                          std::to_string(omitted_sum) + ")");
        extra += kTrace2OmissionFields;
      }
      if (corruptions) {
        if (fields[extra] != corruptions_sum)
          fail_at(at, "run_end.corruptions (" +
                          std::to_string(fields[extra]) +
                          ") != sum of round corruptions (" +
                          std::to_string(corruptions_sum) + ")");
        if (fields[extra + 1] != corrupted_sum)
          fail_at(at, "run_end.corrupted (" +
                          std::to_string(fields[extra + 1]) +
                          ") != sum of round corrupted links (" +
                          std::to_string(corrupted_sum) + ")");
      }
      in_run = false;
    } else if (kind == kTrace2KindRunAbandoned) {
      std::uint64_t fields[kTrace2AbandonFields] = {};
      for (std::size_t f = 0; f < kTrace2AbandonFields; ++f)
        if (!varint(fields[f], "run_abandoned field")) return;
      // rep, seed, attempt, error_len; the error text follows inline.
      const std::uint64_t error_len = fields[kTrace2AbandonFields - 1];
      if (error_len > kTrace2MaxErrorBytes) {
        fail_at(at, "run_abandoned error length " +
                        std::to_string(error_len) + " exceeds the " +
                        std::to_string(kTrace2MaxErrorBytes) + "-byte cap");
        return;
      }
      if (data.size() - pos < error_len) {
        fail_at(pos, "truncated run_abandoned error text");
        return;
      }
      pos += static_cast<std::size_t>(error_len);
      in_run = false;
    } else {
      fail_at(at, "unknown record kind " + std::to_string(kind));
      return;
    }
  }
  if (in_run) c.fail("stream ends inside an open run (no run_end)");
}

/// Validates a synran-req/1 / synran-resp/1 frame stream: every frame is a
/// decimal length line + exactly that many body bytes, every body is a
/// JSON object tagged with one of the two serve schemas, requests carry a
/// known cmd, and responses carry ok plus the matching result/error
/// member. The stream must end exactly at a frame boundary — a trailing
/// partial frame is how a torn capture (or a killed daemon's last write,
/// which the commit discipline forbids) shows up.
void check_serve_stream(const std::string& data, Check& c) {
  std::size_t pos = 0;
  std::size_t frame_no = 0;
  if (data.empty()) {
    c.fail("stream is empty");
    return;
  }
  while (pos < data.size()) {
    ++frame_no;
    const std::string at = "frame " + std::to_string(frame_no);
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      c.fail(at + ": no newline after the length line (torn frame)");
      return;
    }
    std::size_t len = 0;
    if (nl == pos || nl - pos > 20) {
      c.fail(at + ": bad length line");
      return;
    }
    for (std::size_t i = pos; i < nl; ++i) {
      const char ch = data[i];
      if (ch < '0' || ch > '9') {
        c.fail(at + ": non-digit in length line");
        return;
      }
      len = len * 10 + static_cast<std::size_t>(ch - '0');
    }
    if (data.size() - nl - 1 < len) {
      c.fail(at + ": body truncated (" + std::to_string(data.size() - nl - 1) +
             " of " + std::to_string(len) + " bytes)");
      return;
    }
    const std::string body = data.substr(nl + 1, len);
    pos = nl + 1 + len;

    std::string err;
    const auto parsed = JsonValue::parse(body, &err);
    if (!parsed.has_value()) {
      c.fail(at + ": body parse error: " + err);
      continue;
    }
    if (!parsed->is_object()) {
      c.fail(at + ": body is not an object");
      continue;
    }
    const auto* schema = parsed->find("schema");
    if (schema == nullptr || !schema->is_string()) {
      c.fail(at + ": missing string \"schema\"");
      continue;
    }
    if (schema->as_string() == "synran-req/1") {
      const auto* cmd = parsed->find("cmd");
      if (cmd == nullptr || !cmd->is_string()) {
        c.fail(at + ": request has no string cmd");
      } else {
        const std::string& name = cmd->as_string();
        if (name != "run" && name != "ping" && name != "stats" &&
            name != "shutdown")
          c.fail(at + ": unknown request cmd \"" + name + "\"");
      }
      const auto* id = parsed->find("id");
      if (id != nullptr && !id->is_string())
        c.fail(at + ": request id is not a string");
    } else if (schema->as_string() == "synran-resp/1") {
      const auto* ok = parsed->find("ok");
      if (ok == nullptr || !ok->is_bool()) {
        c.fail(at + ": response has no boolean ok");
        continue;
      }
      const auto* id = parsed->find("id");
      if (id == nullptr || !id->is_string())
        c.fail(at + ": response id is not a string");
      if (ok->as_bool()) {
        if (parsed->find("result") == nullptr)
          c.fail(at + ": ok response without result");
        if (parsed->find("error") != nullptr)
          c.fail(at + ": ok response carries an error");
      } else {
        const auto* error = parsed->find("error");
        if (error == nullptr || !error->is_object()) {
          c.fail(at + ": error response without error object");
        } else {
          const auto* code = error->find("code");
          if (code == nullptr || !code->is_string() ||
              code->as_string().empty())
            c.fail(at + ": error.code is not a non-empty string");
          if (const auto* msg = error->find("message");
              msg == nullptr || !msg->is_string())
            c.fail(at + ": error.message is not a string");
        }
        if (parsed->find("result") != nullptr)
          c.fail(at + ": error response carries a result");
      }
    } else {
      c.fail(at + ": schema \"" + schema->as_string() +
             "\" is neither synran-req/1 nor synran-resp/1");
    }
  }
}

int check_file(const std::string& path, bool trace_mode, bool serve_mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  Check c;
  if (serve_mode) {
    std::ostringstream buf;
    buf << in.rdbuf();
    check_serve_stream(buf.str(), c);
  } else if (trace_mode) {
    // Sniff the format off the leading bytes: the synran-trace/2 magic wins,
    // anything else is treated as JSONL (whose first byte is '{').
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    bool binary = data.size() >= 8;
    for (std::size_t i = 0; binary && i < 8; ++i)
      binary = static_cast<std::uint8_t>(data[i]) ==
               static_cast<std::uint8_t>(synran::obs::kTrace2Magic >> (8 * i));
    if (binary) {
      check_trace2_stream(data, c);
    } else {
      std::istringstream text(data);
      check_trace_stream(text, c);
    }
  } else {
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto doc = JsonValue::parse(buf.str(), &err);
    if (!doc.has_value())
      c.fail("parse error: " + err);
    else
      check_bench_report(*doc, c);
  }
  if (c.problems.empty()) {
    std::cout << path << ": ok\n";
    return 0;
  }
  std::cout << path << ": INVALID\n";
  for (const auto& p : c.problems) std::cout << "  " << p << "\n";
  return 1;
}

/// Validates one report, then prints its canonical form: every field in
/// document order except the run-dependent ones (timings and trace_overhead
/// vary with load, git_rev with the working tree, threads with how the run
/// was parallelized — the statistics it describes are thread-count
/// invariant). Verdicts go to stderr so stdout is exactly the canonical
/// document.
int canon_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = JsonValue::parse(buf.str(), &err);
  Check c;
  if (!doc.has_value())
    c.fail("parse error: " + err);
  else
    check_bench_report(*doc, c);
  if (!c.problems.empty()) {
    std::cerr << path << ": INVALID\n";
    for (const auto& p : c.problems) std::cerr << "  " << p << "\n";
    return 1;
  }
  JsonValue canon = JsonValue::object();
  for (const auto& [key, value] : doc->as_object()) {
    if (key == "timings" || key == "git_rev" || key == "threads" ||
        key == "trace_overhead")
      continue;
    canon.set(key, value);
  }
  std::cout << canon.dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool trace_mode = false;
  bool canon_mode = false;
  bool serve_mode = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace")
      trace_mode = true;
    else if (arg == "--canon")
      canon_mode = true;
    else if (arg == "--serve")
      serve_mode = true;
    else
      files.push_back(arg);
  }
  const int modes = static_cast<int>(trace_mode) +
                    static_cast<int>(canon_mode) +
                    static_cast<int>(serve_mode);
  if (files.empty() || modes > 1 || (canon_mode && files.size() != 1)) {
    std::cerr << "usage: bench_schema_check [--trace|--serve] FILE...\n"
                 "       bench_schema_check --canon FILE\n"
                 "  validates synran-bench/1 reports (default), run traces\n"
                 "  (--trace; synran-trace/1 JSONL and synran-trace/2\n"
                 "  binary, sniffed per file), or synran-req/1 frame\n"
                 "  streams (--serve: request or response captures);\n"
                 "  --canon prints one report minus\n"
                 "  timings/git_rev/threads/trace_overhead for byte\n"
                 "  comparison\n";
    return 2;
  }
  if (canon_mode) return canon_file(files[0]);
  int rc = 0;
  for (const auto& f : files)
    if (check_file(f, trace_mode, serve_mode) != 0) rc = 1;
  return rc;
}
