// Quickstart: run the SynRan consensus protocol in the synchronous
// simulator, first failure-free, then against the adaptive full-information
// coin-bias adversary.
//
//   ./quickstart [n] [t] [seed]
#include <cstdlib>
#include <iostream>

#include "adversary/coinbias.hpp"
#include "common/table.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::uint32_t t = argc > 2 ? std::atoi(argv[2]) : n / 2;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 42;

  std::cout << "SynRan quickstart: n = " << n << ", t = " << t
            << ", seed = " << seed << "\n\n";

  // Inputs: half zeros, half ones — the contested case.
  Xoshiro256 rng(seed);
  const auto inputs = make_inputs(n, InputPattern::Half, rng);

  Table table("one execution per adversary");
  table.header({"adversary", "rounds to decide", "rounds to halt",
                "decision", "crashes", "agreement"});

  const auto report = [&table](const char* name, const RunResult& res) {
    table.row({std::string(name),
               static_cast<long long>(res.rounds_to_decision),
               static_cast<long long>(res.rounds_to_halt),
               std::string(res.has_decision
                               ? (res.decision == Bit::One ? "1" : "0")
                               : "-"),
               static_cast<long long>(res.crashes_total),
               std::string(res.agreement ? "yes" : "NO")});
  };

  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  opts.max_rounds = 100000;

  {
    NoAdversary none;
    report("none", run_once(factory, inputs, none, opts));
  }
  {
    CoinBiasAdversary adv({0.55, true, seed});
    report("coin-bias (adaptive)", run_once(factory, inputs, adv, opts));
  }

  table.print(std::cout);

  // A batch for statistics: expected rounds under attack.
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = 100;
  spec.seed = seed;
  spec.engine = opts;
  const auto stats = run_repeated(
      factory,
      [](std::uint64_t s) {
        return std::make_unique<CoinBiasAdversary>(
            CoinBiasOptions{0.55, true, s});
      },
      spec);

  std::cout << "\nover " << stats.reps()
            << " attacked executions: mean rounds = "
            << stats.rounds_to_decision().mean()
            << " (sd " << stats.rounds_to_decision().stddev() << "), "
            << "agreement failures = " << stats.agreement_failures()
            << ", validity failures = " << stats.validity_failures() << "\n";
  return stats.all_safe() ? 0 : 1;
}
