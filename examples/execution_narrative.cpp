// Watch one execution unfold round by round: the protocol's traffic
// composition, the adversary's spend, and the decision dance — the story
// the paper's lemmas tell, on a real run.
//
//   ./execution_narrative [n] [t] [seed] [adversary: none|coinbias|chain]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "runner/narrate.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 96;
  const std::uint32_t t = argc > 2 ? std::atoi(argv[2]) : n - 1;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 11;
  const char* which = argc > 4 ? argv[4] : "coinbias";

  std::unique_ptr<Adversary> inner;
  if (std::strcmp(which, "none") == 0)
    inner = std::make_unique<NoAdversary>();
  else if (std::strcmp(which, "chain") == 0)
    inner = std::make_unique<ChainHidingAdversary>();
  else
    inner = std::make_unique<CoinBiasAdversary>(
        CoinBiasOptions{0.55, true, seed});

  TracingAdversary tracer(*inner);
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  opts.max_rounds = 100000;

  Xoshiro256 rng(seed);
  const auto inputs = make_inputs(n, InputPattern::Half, rng);
  const auto res = run_once(factory, inputs, tracer, opts);

  narrate(tracer.trace(), std::cout);

  std::cout << "\noutcome: " << (res.terminated ? "terminated" : "CAPPED")
            << ", decision "
            << (res.has_decision ? (res.decision == Bit::One ? "1" : "0")
                                 : "-")
            << " at round " << res.rounds_to_decision << ", halted by round "
            << res.rounds_to_halt << ", " << res.crashes_total << "/" << t
            << " crashes spent, " << res.messages_delivered
            << " messages delivered, agreement "
            << (res.agreement ? "yes" : "NO") << "\n";

  const auto report = check_model_invariants(tracer.trace());
  std::cout << "model invariants: " << (report.ok ? "all hold" : "VIOLATED")
            << "\n";
  return res.agreement && report.ok ? 0 : 1;
}
