// The §3 machinery made executable on a tiny system: exact (interval)
// valencies of every initial state, the round-1 classification table, and
// the Lemma 3.5 search for a bivalent-or-null-valent starting point.
//
//   ./lower_bound_demo [depth]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "lowerbound/valency.hpp"
#include "protocols/synran.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t depth = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::uint32_t n = 3;

  std::cout << "exact valency analysis of SynRan, n = " << n
            << ", t = 1, horizon " << depth << " rounds\n"
            << "(min/max of Pr[decide 1] over all single-crash-per-round "
               "adversaries,\n by exhausting every coin vector and fault "
               "action; cut subtrees widen the interval)\n\n";

  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = depth;
  SynRanFactory factory;

  const auto classes_str = [](std::uint8_t mask) {
    std::string out;
    for (int v = 0; v < 4; ++v)
      if (mask & (1u << v)) {
        if (!out.empty()) out += "|";
        out += to_string(static_cast<Valency>(v));
      }
    return out;
  };

  Table table("initial states (round-1 classification, ε = 1/√n − 1/n)");
  table.header({"inputs", "min r", "max r", "classes", "states explored"});
  table.precision(4);
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<Bit> inputs;
    std::string label;
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool one = (x >> i) & 1;
      inputs.push_back(one ? Bit::One : Bit::Zero);
      label += one ? '1' : '0';
    }
    const auto v = evaluate_initial_state(factory, inputs, opts);
    table.row({label,
               "[" + std::to_string(v.min_r.lo).substr(0, 5) + ", " +
                   std::to_string(v.min_r.hi).substr(0, 5) + "]",
               "[" + std::to_string(v.max_r.lo).substr(0, 5) + ", " +
                   std::to_string(v.max_r.hi).substr(0, 5) + "]",
               classes_str(v.classes),
               static_cast<long long>(v.states_visited)});
  }
  table.print(std::cout);

  const auto finding = find_bivalent_or_null_initial_state(factory, n, opts);
  std::cout << "\nLemma 3.5: bivalent-or-null-valent initial state "
            << (finding.found ? "FOUND" : "not decided at this horizon")
            << " — inputs ";
  for (auto b : finding.inputs) std::cout << (b == Bit::One ? '1' : '0');
  std::cout << ", classes " << classes_str(finding.verdict.classes) << "\n";
  std::cout << "\nvalidity check: all-0 and all-1 rows must be 0-valent and "
               "1-valent with exact\nintervals; mixed rows swing to "
               "bivalent because one crash flips the outcome.\n";
  return finding.found ? 0 : 1;
}
