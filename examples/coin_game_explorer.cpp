// Explore one-round collective coin-flipping games (§2 of the paper):
// sample inputs, watch the fail-stop adversary search for a hiding set, and
// measure how control probability scales with the budget.
//
//   ./coin_game_explorer [n] [samples] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "coin/forcing.hpp"
#include "coin/games.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 256;
  const std::size_t samples = argc > 2 ? std::atoll(argv[2]) : 300;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 7;

  std::cout << "one-round coin-flipping games, n = " << n << " players\n\n";

  MajorityPresentGame majority(n);
  MajorityDefaultZeroGame majority0(n);
  ParityPresentGame parity(n);
  LeaderBitGame leader(n);
  const CoinGame* games[] = {&majority, &majority0, &parity, &leader};

  // One concrete draw, forced each way.
  Xoshiro256 rng(seed);
  Table demo("one sampled input vector per game, budget = 4√(n·ln n)");
  demo.header({"game", "natural outcome", "force 0", "|hiding|", "force 1",
               "|hiding|"});
  const auto budget = static_cast<std::uint32_t>(
      4.0 * std::sqrt(n * std::log(static_cast<double>(n))));
  for (const CoinGame* g : games) {
    std::vector<GameValue> v;
    g->sample(rng, v);
    const DynBitset none(n);
    const auto to0 = can_force(*g, v, 0, budget);
    const auto to1 = can_force(*g, v, 1, budget);
    demo.row({std::string(g->name()),
              static_cast<long long>(g->outcome(v, none)),
              std::string(to0.forced ? "yes" : "no"),
              static_cast<long long>(to0.forced ? to0.hiding.count() : 0),
              std::string(to1.forced ? "yes" : "no"),
              static_cast<long long>(to1.forced ? to1.hiding.count() : 0)});
  }
  demo.print(std::cout);
  std::cout << '\n';

  // Control probability vs budget (the Lemma 2.1 quantity).
  Table sweep("min_v Pr(U^v) vs budget — below 1/n means control");
  sweep.header({"game", "budget", "Pr(U^0)", "Pr(U^1)", "min", "< 1/n?"});
  for (const CoinGame* g : games) {
    for (double f : {0.1, 0.5, 1.0}) {
      const auto b = static_cast<std::uint32_t>(f * budget);
      const auto est = estimate_control(*g, b, samples, seed + b);
      sweep.row({std::string(g->name()), static_cast<long long>(b),
                 est.pr_unforceable[0], est.pr_unforceable[1],
                 est.min_pr_unforceable(),
                 std::string(est.min_pr_unforceable() <
                                     1.0 / static_cast<double>(n) + 0.05
                                 ? "yes"
                                 : "no")});
    }
  }
  sweep.precision(4);
  sweep.print(std::cout);

  std::cout << "\nreading: every game has SOME outcome the adversary can "
               "force (Cor. 2.2),\nbut majority-default-0 shows the "
               "one-sidedness — force-1 only works when the\ndraw already "
               "favours 1.\n";
  return 0;
}
