// Side-by-side demo of the two worlds the paper connects: SynRan in the
// synchronous full-information model vs Ben-Or in the asynchronous model,
// under benign and adversarial conditions.
//
//   ./sync_vs_async [n] [reps] [seed]
#include <cstdlib>
#include <iostream>

#include "adversary/coinbias.hpp"
#include "async/benor.hpp"
#include "async/engine.hpp"
#include "async/scheduler.hpp"
#include "common/table.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::size_t reps = argc > 2 ? std::atoll(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 23;

  std::cout << "synchronous SynRan vs asynchronous Ben-Or, n = " << n
            << ", " << reps << " reps\n\n";

  Table table("mean rounds to decision (half-0/half-1 inputs)");
  table.header({"model", "protocol", "adversary", "t", "rounds(mean)",
                "msgs(mean)", "safe"});

  // Synchronous rows.
  {
    SynRanFactory factory;
    for (bool attack : {false, true}) {
      RepeatSpec spec;
      spec.n = n;
      spec.pattern = InputPattern::Half;
      spec.reps = reps;
      spec.seed = seed;
      spec.engine.t_budget = attack ? n - 1 : 0;
      spec.engine.max_rounds = 100000;
      const auto stats = run_repeated(
          factory,
          attack ? AdversaryFactory([](std::uint64_t s) {
            return std::make_unique<CoinBiasAdversary>(
                CoinBiasOptions{0.55, true, s});
          })
                 : no_adversary_factory(),
          spec);
      table.row({std::string("sync"), std::string("synran"),
                 std::string(attack ? "coin-bias" : "none"),
                 static_cast<long long>(spec.engine.t_budget),
                 stats.rounds_to_decision().mean(),
                 stats.messages_delivered().mean(),
                 std::string(stats.all_safe() ? "yes" : "NO")});
    }
  }

  // Asynchronous rows.
  {
    BenOrAsyncFactory factory;
    SeedSequence seeds(seed);
    Xoshiro256 input_rng(seeds.stream(1));
    for (bool attack : {false, true}) {
      Summary rounds;
      Summary msgs;
      bool safe = true;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        AsyncEngineOptions opts;
        opts.t_budget = n / 2 - 1;
        opts.seed = seeds.stream(rep + (attack ? 10000 : 0));
        auto inputs = make_inputs(n, InputPattern::Half, input_rng);
        AsyncRunResult res;
        if (attack) {
          LaggardScheduler sched(seeds.stream(90000 + rep));
          res = run_async(factory, inputs, sched, opts);
        } else {
          RandomScheduler sched(seeds.stream(90000 + rep));
          res = run_async(factory, inputs, sched, opts);
        }
        if (!res.terminated || !res.agreement) safe = false;
        if (res.terminated) {
          rounds.add(static_cast<double>(res.max_round));
          msgs.add(static_cast<double>(res.messages_delivered));
        }
      }
      table.row({std::string("async"), std::string("benor"),
                 std::string(attack ? "laggard sched" : "random sched"),
                 static_cast<long long>(n / 2 - 1), rounds.mean(),
                 msgs.mean(),
                 std::string(safe ? "yes" : "NO")});
    }
  }

  table.print(std::cout);
  std::cout << "\nreading: the synchronous protocol tolerates ANY t < n "
               "(here t = n-1)\nwhile the asynchronous one requires t < n/2; "
               "the paper's theorem says the\nsynchronous price is "
               "Θ(t/√(n·log(2+t/√n))) rounds — no constant-round\nprotocol "
               "exists against the strong adversary.\n";
  return 0;
}
