// Side-by-side demo of the worlds the paper connects: SynRan in the
// synchronous full-information model, Ben-Or under pure asynchrony, and
// Ben-Or in partial synchrony (adversary-held until GST, bounded after) —
// under benign and adversarial conditions.
//
//   ./sync_vs_async [n] [reps] [seed]
#include <cstdlib>
#include <iostream>

#include "adversary/coinbias.hpp"
#include "async/benor.hpp"
#include "async/core.hpp"
#include "async/scheduler.hpp"
#include "common/table.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::size_t reps = argc > 2 ? std::atoll(argv[2]) : 40;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 23;

  std::cout << "synchronous SynRan vs asynchronous Ben-Or vs "
               "partial-synchrony Ben-Or, n = "
            << n << ", " << reps << " reps\n\n";

  Table table("mean rounds to decision (half-0/half-1 inputs)");
  table.header({"model", "protocol", "adversary", "t", "rounds(mean)",
                "msgs(mean)", "ticks(mean)", "safe"});

  // Synchronous rows (the step-round engine; ticks do not apply).
  {
    SynRanFactory factory;
    for (bool attack : {false, true}) {
      RepeatSpec spec;
      spec.n = n;
      spec.pattern = InputPattern::Half;
      spec.reps = reps;
      spec.seed = seed;
      spec.engine.t_budget = attack ? n - 1 : 0;
      spec.engine.max_rounds = 100000;
      const auto stats = run_repeated(
          factory,
          attack ? AdversaryFactory([](std::uint64_t s) {
            return std::make_unique<CoinBiasAdversary>(
                CoinBiasOptions{0.55, true, s});
          })
                 : no_adversary_factory(),
          spec);
      table.row({std::string("sync"), std::string("synran"),
                 std::string(attack ? "coin-bias" : "none"),
                 static_cast<long long>(spec.engine.t_budget),
                 stats.rounds_to_decision().mean(),
                 stats.messages_delivered().mean(), std::string("-"),
                 std::string(stats.all_safe() ? "yes" : "NO")});
    }
  }

  // Ben-Or is constant-round only for t = O(√n) — the regime the paper
  // cites ([BO83] via §1.2). Near t = n/2 its expected round count blows up
  // exponentially, so the async rows run at t ≈ √n where the contrast with
  // the synchronous bound is meaningful.
  std::uint32_t t_async = 1;
  while ((t_async + 1) * (t_async + 1) <= n) ++t_async;
  if (n >= 2 && t_async > n / 2 - 1) t_async = n / 2 - 1;

  // Asynchronous rows: the event-driven core under the adversary-held
  // default — the scheduler alone decides delivery order, time stays at 0.
  {
    BenOrAsyncFactory factory;
    for (bool attack : {false, true}) {
      AsyncRepeatSpec spec;
      spec.n = n;
      spec.pattern = InputPattern::Half;
      spec.reps = reps;
      spec.seed = seed;
      spec.engine.t_budget = t_async;
      const AsyncRunStats stats = run_repeated_async(
          factory,
          attack ? laggard_scheduler_factory() : random_scheduler_factory(),
          held_delay_factory(), spec);
      table.row({std::string("async"), std::string("benor"),
                 std::string(attack ? "laggard sched" : "random sched"),
                 static_cast<long long>(t_async),
                 stats.rounds_to_decision().mean(),
                 stats.messages_delivered().mean(),
                 stats.ticks_to_decision().mean(),
                 std::string(stats.all_safe() ? "yes" : "NO")});
    }
  }

  // Partial-synchrony rows: adversary-held before GST, delivery forced
  // within the bound after. The stall scheduler is the extremal adversary
  // (every message waits for its deadline); retransmission keeps the
  // protocol live across the pre-GST blackout.
  {
    const SimTime gst = 50;
    const SimTime bound = 8;
    BenOrOptions protocol_options;
    protocol_options.retransmit_every = 2 * bound;
    BenOrAsyncFactory factory(protocol_options);
    for (bool stall : {false, true}) {
      AsyncRepeatSpec spec;
      spec.n = n;
      spec.pattern = InputPattern::Half;
      spec.reps = reps;
      spec.seed = seed;
      spec.engine.t_budget = t_async;
      const AsyncRunStats stats = run_repeated_async(
          factory,
          stall ? stall_scheduler_factory() : random_scheduler_factory(),
          gst_delay_factory(gst, bound), spec);
      table.row({std::string("partial"), std::string("benor"),
                 std::string(stall ? "stall sched" : "random sched"),
                 static_cast<long long>(t_async),
                 stats.rounds_to_decision().mean(),
                 stats.messages_delivered().mean(),
                 stats.ticks_to_decision().mean(),
                 std::string(stats.all_safe() ? "yes" : "NO")});
    }
  }

  table.print(std::cout);
  std::cout
      << "\nreading: the synchronous protocol tolerates ANY t < n (here "
         "t = n-1)\nwhile the asynchronous ones require t < n/2 and are "
         "constant-round only\nfor t = O(√n) — the async rows run "
         "there; the paper's theorem says the\nsynchronous price is "
         "Θ(t/√(n·log(2+t/√n))) rounds — no constant-round\nprotocol "
         "exists against the strong adversary. The partial rows show the\n"
         "DLS escape hatch: once deliveries are bounded after GST, even "
         "the\nmaximally patient adversary cannot starve Ben-Or, at the "
         "cost of the\nticks column (every message waits out its "
         "deadline).\n";
  return 0;
}
