// Tournament: every protocol in the library against every adversary, one
// table of mean rounds-to-decision. Shows in one screen what each adversary
// buys and what each protocol pays.
//
//   ./adversary_tournament [n] [reps] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "common/table.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

int main(int argc, char** argv) {
  using namespace synran;

  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const std::size_t reps = argc > 2 ? std::atoll(argv[2]) : 50;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 17;
  const std::uint32_t t = n / 2;

  std::cout << "protocol x adversary tournament: n = " << n << ", t = " << t
            << ", " << reps << " reps, random inputs\n\n";

  SynRanOptions sym;
  sym.coin_rule = CoinRule::Symmetric;
  SynRanFactory synran, benor(sym);
  FloodMinFactory flood({t, false}), early({t, true});
  const ProcessFactory* protocols[] = {&synran, &benor, &flood, &early};

  struct NamedAdv {
    const char* name;
    AdversaryFactory make;
  };
  const NamedAdv adversaries[] = {
      {"none", no_adversary_factory()},
      {"random",
       [](std::uint64_t s) {
         return std::make_unique<RandomCrashAdversary>(
             RandomCrashAdversary::Options{2, 0.6, s});
       }},
      {"chain",
       [](std::uint64_t) { return std::make_unique<ChainHidingAdversary>(); }},
      {"coin-bias",
       [](std::uint64_t s) {
         return std::make_unique<CoinBiasAdversary>(
             CoinBiasOptions{0.55, true, s});
       }},
  };

  Table table("mean rounds to decision (* = safety violation observed)");
  std::vector<std::string> header{"protocol"};
  for (const auto& a : adversaries) header.push_back(a.name);
  table.header(header);

  for (const ProcessFactory* proto : protocols) {
    std::vector<Cell> row{std::string(proto->name())};
    for (const auto& adv : adversaries) {
      RepeatSpec spec;
      spec.n = n;
      spec.pattern = InputPattern::Random;
      spec.reps = reps;
      spec.seed = seed;
      spec.engine.t_budget = t;
      spec.engine.max_rounds = 100000;
      const auto stats = run_repeated(*proto, adv.make, spec);
      std::string cell = std::to_string(stats.rounds_to_decision().mean());
      cell.resize(std::min<std::size_t>(cell.size(), 6));
      if (!stats.all_safe()) cell += " *";
      row.push_back(cell);
    }
    table.row(std::move(row));
  }
  table.print(std::cout);

  std::cout
      << "\nreading: the deterministic protocols pay t+1 = " << t + 1
      << " rounds no matter what; SynRan pays only a handful even against\n"
         "the adaptive adversary; the symmetric ablation (benor-sym) can "
         "lose safety\nunder the adaptive split attack — that is the "
         "one-side-bias rule's job.\n";
  return 0;
}
