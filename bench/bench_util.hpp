// Shared plumbing for the experiment binaries.
//
// Every bench binary regenerates one experiment's table (EXPERIMENTS.md):
// it prints the paper-shaped rows first (deterministic, seeded), then hands
// over to google-benchmark for wall-clock timings of the underlying kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "adversary/coinbias.hpp"
#include "analysis/fit.hpp"
#include "analysis/stats.hpp"
#include "analysis/theory.hpp"
#include "common/table.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran::bench {

/// Master seed shared by every experiment table so the whole suite is
/// reproducible as a unit.
inline constexpr std::uint64_t kSeed = 0x5ee01dULL;

/// Standard rep count, scaled down for large systems so tables regenerate in
/// seconds on a laptop (the paper's curves are about shape, not ±1%).
inline std::size_t reps_for(std::uint32_t n, std::size_t budget = 40000) {
  const std::size_t r = budget / std::max<std::uint32_t>(1, n);
  return std::max<std::size_t>(30, std::min<std::size_t>(400, r));
}

/// The CoinBias adversary factory used across experiments.
inline AdversaryFactory coinbias_factory(bool stall = true) {
  return [stall](std::uint64_t seed) {
    return std::make_unique<CoinBiasAdversary>(
        CoinBiasOptions{0.55, stall, seed});
  };
}

/// Runs SynRan (or an ablation) under the CoinBias adversary and returns the
/// aggregate — the workhorse of E1/E2/E5/E8.
inline RepeatedRunStats attack_run(const ProcessFactory& factory,
                                   std::uint32_t n, std::uint32_t t,
                                   InputPattern pattern, std::size_t reps,
                                   std::uint64_t seed, bool capped = false,
                                   bool stall = true) {
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = pattern;
  spec.reps = reps;
  spec.seed = seed;
  spec.engine.t_budget = t;
  spec.engine.max_rounds = 200000;
  if (capped)
    spec.engine.per_round_cap = static_cast<std::uint32_t>(
        theory::per_round_budget(static_cast<double>(n)));
  return run_repeated(factory, coinbias_factory(stall), spec);
}

/// Prints the table and a one-line safety verdict (every experiment demands
/// zero agreement/validity/termination failures). When the environment
/// variable SYNRAN_CSV_DIR is set, the table is also written there as CSV
/// (file name derived from the table title) for downstream plotting.
inline void emit(Table& table, bool all_safe = true) {
  table.print(std::cout);
  if (!all_safe)
    std::cout << "WARNING: safety violations occurred — see rows above\n";
  if (const char* dir = std::getenv("SYNRAN_CSV_DIR");
      dir != nullptr && *dir != '\0') {
    std::string name;
    for (char c : table.title()) {
      if (std::isalnum(static_cast<unsigned char>(c)))
        name += static_cast<char>(std::tolower(c));
      else if (!name.empty() && name.back() != '-')
        name += '-';
    }
    while (!name.empty() && name.back() == '-') name.pop_back();
    if (name.empty()) name = "table";
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream csv(path);
    if (csv) {
      table.write_csv(csv);
      std::cout << "  [csv: " << path << "]\n";
    } else {
      std::cout << "  [csv: cannot write " << path << "]\n";
    }
  }
  std::cout << std::endl;
}

/// Shared main: print the experiment table(s) via `tables`, then run the
/// registered google-benchmark timings.
inline int run_main(int argc, char** argv, void (*tables)()) {
  tables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace synran::bench

#define SYNRAN_BENCH_MAIN(tables_fn)                       \
  int main(int argc, char** argv) {                        \
    return ::synran::bench::run_main(argc, argv, tables_fn); \
  }
