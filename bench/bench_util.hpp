// Shared plumbing for the experiment binaries.
//
// Every bench binary regenerates one experiment's table (EXPERIMENTS.md):
// it prints the paper-shaped rows first (deterministic, seeded), then hands
// over to google-benchmark for wall-clock timings of the underlying kernels.
// Besides the human tables, each binary writes a machine-readable
// BENCH_<experiment>.json report (schema "synran-bench/1": seed, git rev,
// n/t grid, every emitted table, google-benchmark timings) so the repo
// accumulates a perf trajectory; see EXPERIMENTS.md for the schema.
//
// Environment hooks:
//   SYNRAN_CSV_DIR     also write every emitted table as CSV into this dir
//   SYNRAN_TRACE_DIR   write a run trace per attack_run batch here (works at
//                      any thread count; parallel batches replay buffered
//                      events in rep order, so traces are byte-identical to
//                      a serial run). When tracing, the report gains an
//                      additive "trace_overhead" block: files, events,
//                      bytes, and the wall-time share spent inside the
//                      writer.
//   SYNRAN_TRACE_FORMAT "jsonl" (synran-trace/1, default) or "bin"
//                      (synran-trace/2, varint-packed binary);
//                      --trace-format=F on the command line wins
//   SYNRAN_BENCH_DIR   where BENCH_<experiment>.json lands (default ".")
//   SYNRAN_REPS_BUDGET override the rep budget, dropping the usual floor
//                      and ceiling (CI: tiny for smoke runs, huge to hold a
//                      sweep open for the interruption test)
//   SYNRAN_THREADS     worker threads for every repeated-run batch
//                      (--threads=N on the command line wins). Per-cell
//                      statistics are bit-identical at any thread count; the
//                      resolved count is recorded as "threads" in the report.
//   SYNRAN_CKPT_DIR    write a per-cell checkpoint ledger
//                      (CKPT_<experiment>.jsonl, schema synran-ckpt/1) here
//                      as each grid cell completes
//   SYNRAN_RESUME      "1": reload completed cells from the ledger instead
//                      of recomputing them. Seed schema 2 makes every cell
//                      independent of execution order and the ledger stores
//                      exact accumulator state, so a resumed run's
//                      BENCH_*.json is byte-identical to an uninterrupted
//                      one (timings aside).
//   SYNRAN_FAIL_POLICY "quarantine" | "fail_fast": what a repeated-run
//                      batch does with a rep that still throws after its
//                      retries (default fail_fast — abort the sweep)
//   SYNRAN_REP_RETRIES re-attempts per failing rep, identical seeds
//                      (default 0)
//
// SIGINT/SIGTERM are routed to the cooperative stop flag (exec/stopper.hpp):
// the executor finishes in-flight reps, completed cells stay in the ledger,
// and the binary writes its report with "partial":true and exits with the
// distinct code 3.
#pragma once

#include <benchmark/benchmark.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "adversary/coinbias.hpp"
#include "analysis/fit.hpp"
#include "common/check.hpp"
#include "analysis/stats.hpp"
#include "analysis/theory.hpp"
#include "common/table.hpp"
#include "exec/executor.hpp"
#include "exec/stopper.hpp"
#include "obs/atomic_file.hpp"
#include "obs/checkpoint.hpp"
#include "obs/json.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran::bench {

/// Master seed shared by every experiment table so the whole suite is
/// reproducible as a unit.
inline constexpr std::uint64_t kSeed = 0x5ee01dULL;

inline constexpr const char* kBenchSchema = "synran-bench/1";

/// Standard rep count, scaled down for large systems so tables regenerate in
/// seconds on a laptop (the paper's curves are about shape, not ±1%).
/// SYNRAN_REPS_BUDGET overrides the budget and drops both the 30-rep floor
/// and the 400-rep ceiling: CI smoke runs shrink the sweep to seconds, and
/// the interruption test inflates it far past any SIGINT latency.
inline std::size_t reps_for(std::uint32_t n, std::size_t budget = 40000) {
  std::size_t floor = 30;
  std::size_t ceiling = 400;
  if (const char* env = std::getenv("SYNRAN_REPS_BUDGET");
      env != nullptr && *env != '\0') {
    budget = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    floor = 1;
    ceiling = budget;
  }
  const std::size_t r = budget / std::max<std::uint32_t>(1, n);
  return std::max<std::size_t>(floor, std::min<std::size_t>(ceiling, r));
}

/// The worker-thread count every repeated-run batch in this binary uses:
/// --threads=N (recorded by run_main) when given, else SYNRAN_THREADS, else
/// serial. Resolved once so the tables and the report agree.
inline unsigned& bench_threads_setting() {
  static unsigned threads = 0;  // 0 = defer to the environment
  return threads;
}

inline unsigned bench_threads() {
  return exec::resolve_threads(bench_threads_setting());
}

/// The trace format every batch trace in this binary uses: --trace-format=F
/// (recorded by run_main) when given, else SYNRAN_TRACE_FORMAT, else JSONL.
/// Only consulted when SYNRAN_TRACE_DIR enables tracing at all.
inline std::optional<obs::TraceFormat>& bench_trace_format_setting() {
  static std::optional<obs::TraceFormat> format;  // unset = defer to the env
  return format;
}

inline obs::TraceFormat bench_trace_format() {
  if (bench_trace_format_setting().has_value())
    return *bench_trace_format_setting();
  if (const char* env = std::getenv("SYNRAN_TRACE_FORMAT");
      env != nullptr && *env != '\0') {
    const auto format = obs::parse_trace_format(env);
    SYNRAN_REQUIRE(format.has_value(),
                   "SYNRAN_TRACE_FORMAT must be 'jsonl' or 'bin'");
    return *format;
  }
  return obs::TraceFormat::Jsonl;
}

// ---------------------------------------------------------------- reporting

/// Lower-cases a table title into a file-name slug ("E1a: t = n/2" ->
/// "e1a-t-n-2").
inline std::string csv_slug(const std::string& title) {
  std::string name;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      name += static_cast<char>(std::tolower(c));
    else if (!name.empty() && name.back() != '-')
      name += '-';
  }
  while (!name.empty() && name.back() == '-') name.pop_back();
  if (name.empty()) name = "table";
  return name;
}

/// Hands out collision-free CSV base names within one process: two tables
/// whose titles slug identically get "slug" and "slug-2" instead of silently
/// overwriting each other in SYNRAN_CSV_DIR.
class CsvNameRegistry {
 public:
  static CsvNameRegistry& instance() {
    static CsvNameRegistry r;
    return r;
  }

  std::string unique(const std::string& slug) {
    const int k = ++used_[slug];
    if (k == 1) return slug;
    return slug + "-" + std::to_string(k);
  }

  void reset() { used_.clear(); }

 private:
  std::map<std::string, int> used_;
};

/// Accumulates one binary's machine-readable report and writes it as
/// BENCH_<experiment>.json. Everything except "timings" is derived from the
/// seeded tables, so those fields are byte-identical across runs with the
/// same seed; "timings" carries google-benchmark's wall-clock measurements.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport r;
    return r;
  }

  void set_experiment(std::string name) { experiment_ = std::move(name); }
  const std::string& experiment() const { return experiment_; }

  /// Records an (n, t) grid point once, in first-seen order.
  void note_grid(std::uint32_t n, std::uint32_t t) {
    for (const auto& [gn, gt] : grid_)
      if (gn == n && gt == t) return;
    grid_.emplace_back(n, t);
  }

  /// Records an omission configuration (drop rate, directive budget) once.
  /// Reports that never call this keep the exact pre-omission JSON shape;
  /// otherwise an additive top-level "omissions" array rides along.
  void note_omission(double drop_rate, std::uint32_t budget) {
    for (const auto& [r, b] : omissions_)
      if (r == drop_rate && b == budget) return;
    omissions_.emplace_back(drop_rate, budget);
  }

  /// Records a corrupted-value configuration (corruption rate, byzantine
  /// directive budget) once. Additive like "omissions": reports that never
  /// call this keep their exact prior JSON shape.
  void note_corruption(double corrupt_rate, std::uint32_t budget) {
    for (const auto& [r, b] : corruptions_)
      if (r == corrupt_rate && b == budget) return;
    corruptions_.emplace_back(corrupt_rate, budget);
  }

  void add_table(const Table& table) {
    obs::JsonValue columns = obs::JsonValue::array();
    for (const auto& col : table.header()) columns.push(obs::JsonValue(col));
    obs::JsonValue rows = obs::JsonValue::array();
    for (const auto& row : table.rows()) {
      obs::JsonValue cells = obs::JsonValue::array();
      for (const auto& cell : row) {
        if (const auto* s = std::get_if<std::string>(&cell))
          cells.push(obs::JsonValue(*s));
        else if (const auto* i = std::get_if<long long>(&cell))
          cells.push(obs::JsonValue(static_cast<std::int64_t>(*i)));
        else
          cells.push(obs::JsonValue(std::get<double>(cell)));
      }
      rows.push(std::move(cells));
    }
    tables_.push(obs::JsonValue::object()
                     .set("title", obs::JsonValue(table.title()))
                     .set("columns", std::move(columns))
                     .set("rows", std::move(rows)));
  }

  void set_timings(obs::JsonValue timings) { timings_ = std::move(timings); }

  /// Marks the report as the salvage of an interrupted sweep: the additive
  /// top-level "partial":true rides along, telling consumers that tables
  /// for cells past the interruption point are absent (completed cells are
  /// exact — they were checkpointed before the stop was honored).
  void mark_partial() { partial_ = true; }
  bool partial() const { return partial_; }

  /// Records one quarantined repetition (additive top-level "failures"
  /// array, present only when something was quarantined). `cell` is the
  /// sweep-order cell ordinal, matching the checkpoint ledger.
  void note_failure(std::uint64_t cell, const RepFailure& failure) {
    failures_.emplace_back(cell, failure);
  }

  /// Accumulates one traced batch's write-overhead sample (additive
  /// top-level "trace_overhead" block, present only when SYNRAN_TRACE_DIR
  /// enabled tracing). `write_seconds` is the wall-time spent inside the
  /// trace writer's callbacks (measured by obs::TraceWriteTimer);
  /// `batch_seconds` is the whole batch including that time, so the block
  /// can report the write share. Wall-clock fields make the block
  /// non-deterministic — canonical report comparisons must strip it, like
  /// "timings".
  void note_trace_overhead(std::uint64_t events, std::uint64_t bytes,
                           double write_seconds, double batch_seconds) {
    ++trace_files_;
    trace_events_ += events;
    trace_bytes_ += bytes;
    trace_write_seconds_ += write_seconds;
    trace_batch_seconds_ += batch_seconds;
  }

  obs::JsonValue to_json() const {
    obs::JsonValue grid = obs::JsonValue::array();
    for (const auto& [n, t] : grid_)
      grid.push(obs::JsonValue::object()
                    .set("n", obs::JsonValue(n))
                    .set("t", obs::JsonValue(t)));
    obs::JsonValue report =
        obs::JsonValue::object()
            .set("schema", obs::JsonValue(kBenchSchema))
            .set("experiment", obs::JsonValue(experiment_))
            .set("seed", obs::JsonValue(kSeed))
            .set("git_rev", obs::JsonValue(git_rev()))
            // Additive since schema synran-bench/1 first shipped: the worker
            // threads the seeded tables ran with. Statistics are thread-count
            // invariant; this records how fast the run was allowed to be.
            .set("threads",
                 obs::JsonValue(static_cast<std::int64_t>(bench_threads())))
            .set("grid", std::move(grid));
    if (!omissions_.empty()) {
      // Additive, like "threads": present only for omission experiments.
      obs::JsonValue oms = obs::JsonValue::array();
      for (const auto& [rate, budget] : omissions_)
        oms.push(obs::JsonValue::object()
                     .set("drop_rate", obs::JsonValue(rate))
                     .set("budget", obs::JsonValue(budget)));
      report.set("omissions", std::move(oms));
    }
    if (!corruptions_.empty()) {
      // Additive, like "omissions": present only for corruption experiments.
      obs::JsonValue cors = obs::JsonValue::array();
      for (const auto& [rate, budget] : corruptions_)
        cors.push(obs::JsonValue::object()
                      .set("corrupt_rate", obs::JsonValue(rate))
                      .set("budget", obs::JsonValue(budget)));
      report.set("corruptions", std::move(cors));
    }
    if (partial_) report.set("partial", obs::JsonValue(true));
    if (trace_files_ > 0) {
      // Additive, like "omissions": present only when batches were traced.
      report.set(
          "trace_overhead",
          obs::JsonValue::object()
              .set("format",
                   obs::JsonValue(std::string(
                       obs::to_string(bench_trace_format()))))
              .set("files", obs::JsonValue(trace_files_))
              .set("events", obs::JsonValue(trace_events_))
              .set("bytes", obs::JsonValue(trace_bytes_))
              .set("write_seconds", obs::JsonValue(trace_write_seconds_))
              .set("batch_seconds", obs::JsonValue(trace_batch_seconds_))
              .set("write_share",
                   obs::JsonValue(trace_batch_seconds_ > 0.0
                                      ? trace_write_seconds_ /
                                            trace_batch_seconds_
                                      : 0.0)));
    }
    if (!failures_.empty()) {
      obs::JsonValue fails = obs::JsonValue::array();
      for (const auto& [cell, f] : failures_) {
        obs::JsonValue entry = obs::JsonValue::object();
        entry.set("cell", obs::JsonValue(cell));
        const obs::JsonValue fields = f.to_json();
        for (const auto& [key, value] : fields.as_object())
          entry.set(key, value);
        fails.push(std::move(entry));
      }
      report.set("failures", std::move(fails));
    }
    return report.set("tables", tables_).set("timings", timings_);
  }

  /// Writes BENCH_<experiment>.json into `dir` via a temp file + fsync +
  /// atomic rename (obs::commit_atomic), so neither a crash, a full disk,
  /// nor a power loss right after the rename leaves a truncated or empty
  /// report under the final name. Returns the path, or "" on any failure
  /// (open, write, close, fsync, or rename — checked at each step).
  std::string write(const std::string& dir) const {
    const std::string path = dir + "/BENCH_" + experiment_ + ".json";
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return {};
      out << to_json().dump() << "\n";
      out.flush();
      if (!out.good()) {
        out.close();
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return {};
      }
    }
    try {
      obs::commit_atomic(tmp, path, "bench report");
    } catch (const obs::IoError&) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return {};
    }
    return path;
  }

  void reset() {
    experiment_ = "experiment";
    grid_.clear();
    omissions_.clear();
    corruptions_.clear();
    partial_ = false;
    failures_.clear();
    trace_files_ = 0;
    trace_events_ = 0;
    trace_bytes_ = 0;
    trace_write_seconds_ = 0.0;
    trace_batch_seconds_ = 0.0;
    tables_ = obs::JsonValue::array();
    timings_ = obs::JsonValue::array();
  }

  static std::string git_rev() {
#ifdef SYNRAN_GIT_REV
    return SYNRAN_GIT_REV;
#else
    return "unknown";
#endif
  }

 private:
  std::string experiment_ = "experiment";
  std::vector<std::pair<std::uint32_t, std::uint32_t>> grid_;
  std::vector<std::pair<double, std::uint32_t>> omissions_;
  std::vector<std::pair<double, std::uint32_t>> corruptions_;
  bool partial_ = false;
  std::vector<std::pair<std::uint64_t, RepFailure>> failures_;
  std::uint64_t trace_files_ = 0;
  std::uint64_t trace_events_ = 0;
  std::uint64_t trace_bytes_ = 0;
  double trace_write_seconds_ = 0.0;
  double trace_batch_seconds_ = 0.0;
  obs::JsonValue tables_ = obs::JsonValue::array();
  obs::JsonValue timings_ = obs::JsonValue::array();
};

/// "path/to/bench_e1_synran_scaling" -> "e1_synran_scaling".
inline std::string experiment_name_from(const char* argv0) {
  std::string name = std::filesystem::path(argv0).filename().string();
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  if (name.empty()) name = "experiment";
  return name;
}

// ----------------------------------------------------------------- tracing

/// Holds an open trace writer (format per bench_trace_format) for one batch
/// of runs; empty (observer() == nullptr) when SYNRAN_TRACE_DIR is unset.
/// The engine observes through a TraceWriteTimer so the batch's trace-write
/// wall-time is known afterwards. The writer owns its file and streams into
/// "<path>.tmp"; close() atomically renames onto the final name and throws
/// obs::IoError on any stream failure, so a batch never leaves a truncated
/// trace behind under the final name.
struct ScopedTrace {
  std::unique_ptr<obs::TraceWriter> writer;
  std::unique_ptr<obs::TraceWriteTimer> timer;

  obs::EngineObserver* observer() { return timer.get(); }
  bool active() const { return timer != nullptr; }
  void close() {
    if (timer != nullptr) timer->close();
  }
};

/// Opens "<SYNRAN_TRACE_DIR>/<experiment>-<seq>-<tag>.<format>"; the
/// sequence number keeps same-tag batches within one binary apart. Binary
/// traces stamp the bench build's seed schema and git rev into the header.
inline ScopedTrace open_trace(const std::string& tag) {
  ScopedTrace t;
  const char* dir = std::getenv("SYNRAN_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return t;
  static int seq = 0;
  const obs::TraceFormat format = bench_trace_format();
  const std::string path = std::string(dir) + "/" +
                           BenchReport::instance().experiment() + "-" +
                           std::to_string(++seq) + "-" + tag + "." +
                           obs::to_string(format);
  try {
    t.writer = obs::make_trace_writer(
        format, path,
        obs::Trace2Header{static_cast<std::uint16_t>(kSeedSchemaVersion),
                          BenchReport::git_rev()});
    t.timer = std::make_unique<obs::TraceWriteTimer>(*t.writer);
  } catch (const obs::IoError& e) {
    std::cout << "  [" << e.what() << "]\n";
  }
  return t;
}

// ------------------------------------------------------------ checkpoints

/// Reads a failure policy from SYNRAN_FAIL_POLICY ("quarantine" or
/// "fail_fast"); anything else is rejected loudly (a typo must not silently
/// run a 2-hour sweep under the wrong policy). Falls back to `fallback`
/// when unset.
inline FailurePolicy bench_fail_policy(
    FailurePolicy fallback = FailurePolicy::FailFast) {
  const char* env = std::getenv("SYNRAN_FAIL_POLICY");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string_view value = env;
  if (value == "quarantine") return FailurePolicy::Quarantine;
  if (value == "fail_fast") return FailurePolicy::FailFast;
  SYNRAN_REQUIRE(false, "SYNRAN_FAIL_POLICY must be 'fail_fast' or "
                        "'quarantine'");
  return fallback;
}

/// Per-rep retry budget from SYNRAN_REP_RETRIES (default `fallback`).
inline std::uint32_t bench_rep_retries(std::uint32_t fallback = 0) {
  const char* env = std::getenv("SYNRAN_REP_RETRIES");
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
}

/// Process-wide checkpoint plumbing for the bench harness: binds the ledger
/// (CKPT_<experiment>.jsonl under SYNRAN_CKPT_DIR) lazily on first use —
/// after run_main has set the experiment name — and hands out the sweep's
/// cell ordinals in execution order.
class CheckpointState {
 public:
  static CheckpointState& instance() {
    static CheckpointState s;
    return s;
  }

  /// Next cell ordinal; every cell of the sweep claims one, whether it is
  /// computed or restored, so ordinals always mirror execution order.
  std::uint64_t next_cell() {
    ensure_init();
    return next_cell_++;
  }

  /// SYNRAN_RESUME is set and not "0".
  bool resuming() {
    ensure_init();
    return resume_;
  }

  /// The bound ledger, or nullptr when SYNRAN_CKPT_DIR is unset.
  obs::CheckpointLedger* ledger() {
    ensure_init();
    return ledger_.enabled() ? &ledger_ : nullptr;
  }

  /// Drops the binding and the ordinal counter; the environment is re-read
  /// on next use (tests).
  void reset() {
    init_ = false;
    resume_ = false;
    next_cell_ = 0;
    ledger_ = obs::CheckpointLedger();
  }

 private:
  void ensure_init() {
    if (init_) return;
    init_ = true;
    if (const char* env = std::getenv("SYNRAN_RESUME");
        env != nullptr && *env != '\0' && std::string_view(env) != "0") {
      resume_ = true;
    }
    if (const char* dir = std::getenv("SYNRAN_CKPT_DIR");
        dir != nullptr && *dir != '\0') {
      const std::string path = std::string(dir) + "/CKPT_" +
                               BenchReport::instance().experiment() + ".jsonl";
      ledger_ = obs::CheckpointLedger(path,
                                      BenchReport::instance().experiment(),
                                      kSeed);
    }
  }

  bool init_ = false;
  bool resume_ = false;
  std::uint64_t next_cell_ = 0;
  obs::CheckpointLedger ledger_;
};

/// Runs one grid cell — a repeated batch — through the resilience plumbing:
/// SYNRAN_FAIL_POLICY / SYNRAN_REP_RETRIES overrides, per-batch trace in
/// the configured format (any thread count — the executor replays buffered
/// events in rep order, so the trace is byte-identical to a serial run),
/// checkpoint recording under SYNRAN_CKPT_DIR, and
/// reload-instead-of-recompute under SYNRAN_RESUME=1 when the recorded cell
/// key still matches. Quarantined reps land in the report's "failures"
/// array either way (fresh or restored), so a resumed report is
/// byte-identical to an uninterrupted one. Traced batches also feed the
/// report's "trace_overhead" block.
inline RepeatedRunStats run_cell(const ProcessFactory& factory,
                                 const AdversaryFactory& adversaries,
                                 RepeatSpec spec, const std::string& tag) {
  spec.policy = bench_fail_policy(spec.policy);
  spec.engine.max_rep_retries = bench_rep_retries(spec.engine.max_rep_retries);

  auto& ckpt = CheckpointState::instance();
  const std::uint64_t cell = ckpt.next_cell();
  const std::string key = spec_cell_key(spec, factory.name(), tag);

  auto report_failures = [cell](const RepeatedRunStats& stats) {
    for (const RepFailure& f : stats.failures()) {
      BenchReport::instance().note_failure(cell, f);
      std::cout << "  [quarantined: rep " << f.rep << " (engine seed "
                << f.seed << ", " << f.attempts << " attempts): " << f.error
                << "]\n";
    }
  };

  if (ckpt.resuming() && ckpt.ledger() != nullptr) {
    if (const obs::CheckpointCell* hit = ckpt.ledger()->find(cell, key)) {
      auto stats = RepeatedRunStats::from_checkpoint(hit->data);
      std::cout << "  [ckpt: cell " << cell << " restored]\n";
      report_failures(stats);
      return stats;
    }
  }

  ScopedTrace trace;
  if (spec.engine.observer == nullptr) {
    trace = open_trace(tag);
    spec.engine.observer = trace.observer();
  }
  const auto batch_start = std::chrono::steady_clock::now();
  auto stats = run_repeated(factory, adversaries, spec);
  trace.close();
  if (trace.active()) {
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_start)
            .count();
    BenchReport::instance().note_trace_overhead(
        trace.timer->events_written(), trace.timer->bytes_written(),
        trace.timer->write_seconds(), batch_seconds);
  }

  if (obs::CheckpointLedger* ledger = ckpt.ledger()) {
    try {
      ledger->record(
          obs::CheckpointCell{cell, key, stats.checkpoint_json()});
    } catch (const obs::IoError& e) {
      // A dead checkpoint dir must not kill a healthy sweep: the cell's
      // results are already in hand, only resumability is lost.
      std::cout << "  [" << e.what() << "]\n";
    }
  }
  report_failures(stats);
  return stats;
}

// ------------------------------------------------------------ experiments

/// The CoinBias adversary factory used across experiments.
inline AdversaryFactory coinbias_factory(bool stall = true) {
  return [stall](std::uint64_t seed) {
    return std::make_unique<CoinBiasAdversary>(
        CoinBiasOptions{0.55, stall, seed});
  };
}

/// Runs SynRan (or an ablation) under the CoinBias adversary and returns the
/// aggregate — the workhorse of E1/E2/E5/E8. Grid points land in the bench
/// report; the batch goes through run_cell, so it traces under
/// SYNRAN_TRACE_DIR (at any thread count, in the configured format),
/// checkpoints under SYNRAN_CKPT_DIR, and resumes under SYNRAN_RESUME=1.
inline RepeatedRunStats attack_run(const ProcessFactory& factory,
                                   std::uint32_t n, std::uint32_t t,
                                   InputPattern pattern, std::size_t reps,
                                   std::uint64_t seed, bool capped = false,
                                   bool stall = true) {
  BenchReport::instance().note_grid(n, t);
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = pattern;
  spec.reps = reps;
  spec.seed = seed;
  spec.threads = bench_threads();
  spec.engine.t_budget = t;
  spec.engine.max_rounds = 200000;
  if (capped)
    spec.engine.per_round_cap = static_cast<std::uint32_t>(
        theory::per_round_budget(static_cast<double>(n)));
  const std::string tag = "n" + std::to_string(n) + "-t" + std::to_string(t) +
                          (stall ? "" : "-nostall");
  return run_cell(factory, coinbias_factory(stall), std::move(spec), tag);
}

/// Prints the table and a one-line safety verdict (every experiment demands
/// zero agreement/validity/termination failures), and adds the table to the
/// binary's BENCH_*.json report. When SYNRAN_CSV_DIR is set, the table is
/// also written there as CSV (collision-free name derived from the title)
/// for downstream plotting.
inline void emit(Table& table, bool all_safe = true) {
  table.print(std::cout);
  if (!all_safe)
    std::cout << "WARNING: safety violations occurred — see rows above\n";
  BenchReport::instance().add_table(table);
  if (const char* dir = std::getenv("SYNRAN_CSV_DIR");
      dir != nullptr && *dir != '\0') {
    const std::string name =
        CsvNameRegistry::instance().unique(csv_slug(table.title()));
    const std::string path = std::string(dir) + "/" + name + ".csv";
    const std::string tmp = path + ".tmp";
    // Temp file + fsync + atomic rename (obs::commit_atomic), with the
    // stream state checked before the commit: a full disk or power loss
    // yields a diagnostic and no file at the final name, never a silently
    // truncated or empty CSV.
    bool ok = false;
    {
      std::ofstream csv(tmp, std::ios::binary | std::ios::trunc);
      if (csv) {
        table.write_csv(csv);
        csv.flush();
        ok = csv.good();
      }
    }
    if (ok) {
      try {
        obs::commit_atomic(tmp, path, "bench csv");
      } catch (const obs::IoError&) {
        ok = false;
      }
    }
    if (ok) {
      std::cout << "  [csv: " << path << "]\n";
    } else {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      std::cout << "  [csv: cannot write " << path << "]\n";
    }
  }
  std::cout << std::endl;
}

// --------------------------------------------------------------- timings

/// Extracts the "benchmarks" array from google-benchmark's JSON output,
/// keeping the stable fields our schema documents.
inline obs::JsonValue extract_timings(const std::string& gbench_json) {
  obs::JsonValue timings = obs::JsonValue::array();
  const auto doc = obs::JsonValue::parse(gbench_json);
  if (!doc.has_value()) return timings;
  const auto* benches = doc->find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return timings;
  for (const auto& b : benches->as_array()) {
    obs::JsonValue entry = obs::JsonValue::object();
    for (const char* key :
         {"name", "iterations", "real_time", "cpu_time", "time_unit"}) {
      if (const auto* v = b.find(key); v != nullptr) entry.set(key, *v);
    }
    timings.push(std::move(entry));
  }
  return timings;
}

/// Shared main: print the experiment table(s) via `tables`, run the
/// registered google-benchmark timings (captured as JSON through a side
/// file), then write BENCH_<experiment>.json. SIGINT/SIGTERM interrupt the
/// sweep gracefully: the report is still written — marked "partial":true,
/// with the completed tables — and the process exits with code 3 (completed
/// cells survive in the checkpoint ledger for SYNRAN_RESUME=1).
inline int run_main(int argc, char** argv, void (*tables)()) {
  exec::install_stop_handlers();
  BenchReport::instance().set_experiment(experiment_name_from(argv[0]));

  // Strip --threads=N and --trace-format=F before google-benchmark sees
  // argv (it rejects flags it does not know). Must happen before tables()
  // runs the seeded batches.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      bench_threads_setting() = static_cast<unsigned>(
          std::strtoul(argv[i] + std::strlen("--threads="), nullptr, 10));
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const auto format =
          obs::parse_trace_format(arg.substr(std::strlen("--trace-format=")));
      SYNRAN_REQUIRE(format.has_value(),
                     "--trace-format must be 'jsonl' or 'bin'");
      bench_trace_format_setting() = *format;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (bench_threads() > 1)
    std::cout << "[threads: " << bench_threads() << "]\n";

  bool interrupted = false;
  try {
    tables();
  } catch (const exec::Interrupted& e) {
    interrupted = true;
    BenchReport::instance().mark_partial();
    std::cout << "[interrupted: " << e.what() << "]\n";
  }

  const char* bench_dir_env = std::getenv("SYNRAN_BENCH_DIR");
  const std::string bench_dir =
      (bench_dir_env != nullptr && *bench_dir_env != '\0') ? bench_dir_env
                                                           : ".";

  if (!interrupted) {
    const std::string timings_path =
        bench_dir + "/." + BenchReport::instance().experiment() +
        ".timings.json";

    // Route google-benchmark's JSON through a side file (its file reporter
    // demands --benchmark_out); injected last so it wins over duplicates.
    std::vector<std::string> args_storage(argv, argv + argc);
    args_storage.push_back("--benchmark_out=" + timings_path);
    args_storage.push_back("--benchmark_out_format=json");
    std::vector<char*> args;
    args.reserve(args_storage.size());
    for (auto& a : args_storage) args.push_back(a.data());
    int args_count = static_cast<int>(args.size());

    ::benchmark::Initialize(&args_count, args.data());
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    std::ifstream in(timings_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    BenchReport::instance().set_timings(extract_timings(buf.str()));
    std::error_code ec;
    std::filesystem::remove(timings_path, ec);
  }

  const std::string report = BenchReport::instance().write(bench_dir);
  if (!report.empty())
    std::cout << "[bench report: " << report << "]\n";
  else
    std::cout << "[bench report: cannot write into " << bench_dir << "]\n";
  return interrupted ? 3 : 0;
}

}  // namespace synran::bench

#define SYNRAN_BENCH_MAIN(tables_fn)                       \
  int main(int argc, char** argv) {                        \
    return ::synran::bench::run_main(argc, argv, tables_fn); \
  }
