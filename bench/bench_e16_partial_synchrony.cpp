// E16 — partial synchrony as the DLS escape hatch: the adversary holds
// every message until GST, after which deliveries are forced within a bound
// Δ. Against the maximally patient scheduler (stall — it never volunteers a
// delivery), Ben-Or's decision time tracks GST + O(Δ) instead of diverging,
// and per-process retransmission timers recover quorums that omission
// bursts destroy. No synchronous counterpart exists in the paper; like E11
// this regenerates the context the paper's model section contrasts against.
//
// Tables:
//   E16a  GST sweep at fixed Δ — ticks-to-decision tracks GST linearly
//   E16b  Δ sweep at fixed GST — the post-GST grace is the only slack left
//   E16c  omission bursts with and without retransmission — the timer
//         chain's liveness value, and its message-overhead price
#include "bench_async.hpp"

#include <cmath>

#include "async/delay.hpp"
#include "async/scheduler.hpp"

namespace synran::bench {
namespace {

/// t ≈ √n: the constant-round Ben-Or regime ([BO83]); keeps every cell's
/// round count small so the tick columns isolate the delay model's effect.
std::uint32_t sqrt_t(std::uint32_t n) {
  std::uint32_t t = 1;
  while ((t + 1) * (t + 1) <= n) ++t;
  return t;
}

void tables() {
  std::cout << "E16 — Ben-Or under partial synchrony (held until GST, "
               "forced within Δ after)\n\n";

  const std::uint32_t n = 32;
  const std::uint32_t t = sqrt_t(n);
  const std::size_t reps = std::min<std::size_t>(reps_for(n, 800), 20);

  Table gst_sweep("E16a: GST sweep, n = 32, Δ = 8, stall scheduler");
  gst_sweep.header({"gst", "rounds(mean)", "ticks(mean)", "msgs(mean)",
                    "timers(mean)", "safe"});
  for (SimTime gst : {0ull, 25ull, 50ull, 100ull, 200ull}) {
    const SimTime bound = 8;
    BenOrOptions protocol;
    protocol.retransmit_every = 2 * bound;
    const auto stats = async_run(n, t, stall_scheduler_factory(),
                                 gst_delay_factory(gst, bound), reps,
                                 kSeed + gst, "e16a-gst" + std::to_string(gst),
                                 protocol);
    gst_sweep.row({static_cast<long long>(gst),
                   stats.rounds_to_decision().mean(),
                   stats.ticks_to_decision().mean(),
                   stats.messages_delivered().mean(),
                   stats.timers_fired().mean(),
                   std::string(stats.all_safe() ? "yes" : "NO")});
  }
  emit(gst_sweep);
  std::cout << "  note: ticks-to-decision ≈ GST + (rounds · O(Δ)) — the\n"
               "  pre-GST blackout delays but cannot prevent the decision,\n"
               "  the DLS guarantee the pure-async rows of E11 lack.\n\n";

  Table bound_sweep("E16b: Δ sweep, n = 32, GST = 50, stall scheduler");
  bound_sweep.header({"Δ", "rounds(mean)", "ticks(mean)", "msgs(mean)",
                      "timers(mean)", "safe"});
  for (SimTime bound : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    BenOrOptions protocol;
    protocol.retransmit_every = 2 * bound;
    const auto stats = async_run(n, t, stall_scheduler_factory(),
                                 gst_delay_factory(50, bound), reps,
                                 kSeed + 1000 + bound,
                                 "e16b-d" + std::to_string(bound), protocol);
    bound_sweep.row({static_cast<long long>(bound),
                     stats.rounds_to_decision().mean(),
                     stats.ticks_to_decision().mean(),
                     stats.messages_delivered().mean(),
                     stats.timers_fired().mean(),
                     std::string(stats.all_safe() ? "yes" : "NO")});
  }
  emit(bound_sweep);
  std::cout << "  note: past GST every phase costs O(Δ) ticks, so the\n"
               "  post-decision tick count scales linearly in Δ while the\n"
               "  round count stays put.\n\n";

  // E16c: an omission burst at the start of the run destroys two senders'
  // round-1 broadcasts. n - t - 2 processes are short of the n - t quorum,
  // so without retransmission the run starves (the event list drains with
  // nobody decided); the retransmission timer chain re-broadcasts and
  // recovers, at a visible message-overhead price.
  Table omission("E16c: omission bursts, n = 8, GST = 20, Δ = 4");
  omission.header({"retransmit", "terminated", "rounds(mean)", "msgs(mean)",
                   "timers(mean)", "ticks(mean)"});
  {
    const std::uint32_t on = 8;
    const std::uint32_t ot = 1;
    const std::size_t oreps = std::min<std::size_t>(reps_for(on, 400), 20);
    AsyncFaultTimetable burst;
    burst.omissions.push_back(AsyncOmitAt{1, 0, on});
    burst.omissions.push_back(AsyncOmitAt{2, 1, on});
    for (std::uint64_t every : {0ull, 8ull}) {
      BenOrOptions protocol;
      protocol.retransmit_every = every;
      BenOrAsyncFactory factory(protocol);
      AsyncRepeatSpec spec;
      spec.n = on;
      spec.pattern = InputPattern::Half;
      spec.reps = oreps;
      spec.seed = kSeed + 16;
      spec.engine.t_budget = ot;
      spec.engine.omission_budget = 2;
      spec.engine.faults = &burst;
      spec.engine.max_steps = 200000;
      BenchReport::instance().note_grid(on, ot);
      BenchReport::instance().note_omission(1.0, 2);
      const auto stats = run_async_cell(
          factory, stall_scheduler_factory(), gst_delay_factory(20, 4),
          std::move(spec),
          std::string("e16c-") + (every == 0 ? "bare" : "retransmit"));
      omission.row(
          {std::string(every == 0 ? "off" : "every 8"),
           static_cast<long long>(stats.reps() - stats.non_terminated()),
           stats.rounds_to_decision().mean(),
           stats.messages_delivered().mean(), stats.timers_fired().mean(),
           stats.ticks_to_decision().mean()});
    }
  }
  emit(omission);
  std::cout
      << "  reading: partial synchrony bounds delay, not loss — omitted\n"
         "  messages stay lost, and only the retransmission timers (a\n"
         "  timeout-based mechanism partial synchrony makes meaningful)\n"
         "  restore liveness. The msgs column is the overhead price.\n\n";
}

void BM_PartialSynchronyRun(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenOrOptions protocol;
  protocol.retransmit_every = 16;
  BenOrAsyncFactory factory(protocol);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ++seed;
    StallScheduler sched;
    GstDelay delay(50, 8);
    AsyncEngineOptions opts;
    opts.t_budget = sqrt_t(n);
    opts.seed = seed;
    opts.delay = &delay;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_async(factory, inputs, sched, opts);
    ::benchmark::DoNotOptimize(res.end_time);
  }
}
BENCHMARK(BM_PartialSynchronyRun)->Arg(32)->Arg(128);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
