// E1 — Theorem 2/3: SynRan's expected rounds scale as
// Θ(t/√(n·ln(2+t/√n))) against the adaptive coin-bias adversary; for
// t = Θ(n) this is Θ(√(n/ln n)). Includes ablation A2 (deterministic-stage
// hand-off removed).
#include "bench_util.hpp"

#include <cstdint>
#include <sstream>
#include <vector>

#include "obs/trace_binary.hpp"
#include "obs/trace_record.hpp"
#include "obs/trace_writer.hpp"

namespace synran::bench {
namespace {

void table_for(const char* title, double t_fraction, bool fit_shape) {
  Table table(title);
  table.header({"n", "t", "reps", "rounds(mean)", "±stderr", "bound curve",
                "rounds/bound", "crashes(mean)"});
  std::vector<double> theory_pts, measured;

  SynRanFactory synran;
  bool within_bound = true;
  for (std::uint32_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const auto t = static_cast<std::uint32_t>(
        t_fraction >= 1.0 ? n - 1 : t_fraction * n);
    const auto stats = attack_run(synran, n, t, InputPattern::Half,
                                  reps_for(n), kSeed + n);
    const double th =
        theory::tight_round_bound(static_cast<double>(n),
                                  static_cast<double>(t));
    theory_pts.push_back(th);
    measured.push_back(stats.rounds_to_decision().mean());
    // Theorem 2's O(·) with an implied constant well above 1; 3 is a very
    // conservative consistency threshold for the upper-bound check.
    if (stats.rounds_to_decision().mean() > 3.0 * th) within_bound = false;
    table.row({static_cast<long long>(n), static_cast<long long>(t),
               static_cast<long long>(stats.reps()),
               stats.rounds_to_decision().mean(),
               stats.rounds_to_decision().stderr_mean(), th,
               stats.rounds_to_decision().mean() / th,
               stats.crashes_used().mean()});
    if (!stats.all_safe()) emit(table, false);
  }
  emit(table);

  if (fit_shape) {
    const auto fit = fit_scale(theory_pts, measured);
    std::cout << "  shape fit: rounds ≈ " << fit.scale
              << " · t/√(n·ln(2+t/√n)),  R² = " << fit.r2
              << ",  ratio spread = " << fit.ratio_spread() << "\n\n";
  } else {
    std::cout << "  upper-bound consistency (Theorem 2): measured mean stays "
              << (within_bound ? "within" : "OUTSIDE")
              << " 3x the bound curve at every n.\n"
                 "  (The executable adversary cannot afford the z ≈ p/2 "
                 "Z-split at t = n/2, so it\n  undershoots the curve here; "
                 "the lower-bound strategy of Theorem 1 is existence-only.\n"
                 "  See E1b and E5 for the regime where the constructive "
                 "adversary tracks the shape.)\n\n";
  }
}

/// One E1-sized batch's event stream (n = 256, t = n/2, the usual rep
/// budget), recorded once and shared by the E1d volume table and the
/// trace-write throughput benchmarks. Recorded directly through
/// run_repeated — not run_cell — so the trace comparison never claims a
/// checkpoint cell ordinal or opens a SYNRAN_TRACE_DIR file of its own.
const std::vector<obs::TraceRecord>& trace_records() {
  static const std::vector<obs::TraceRecord> records = [] {
    std::vector<obs::TraceRecord> recs;
    obs::TraceRecorder recorder(recs);
    SynRanFactory synran;
    RepeatSpec spec;
    spec.n = 256;
    spec.pattern = InputPattern::Half;
    spec.reps = reps_for(256);
    spec.seed = kSeed + 13 * 256;
    spec.threads = 1;
    spec.engine.t_budget = 128;
    spec.engine.max_rounds = 200000;
    spec.engine.observer = &recorder;
    run_repeated(synran, coinbias_factory(), spec);
    return recs;
  }();
  return records;
}

/// Replays the shared event stream through both trace writers (in-memory
/// streams) and tabulates the persisted volume. Every cell is a pure
/// function of the seed, so the table is byte-stable across runs — the
/// wall-clock side of the comparison lives in the BM_TraceWrite* timings.
void table_trace_volume() {
  Table table("E1d: trace write volume, synran-trace/1 vs synran-trace/2");
  table.header({"format", "events", "bytes", "bytes/event", "size vs jsonl"});

  const auto& records = trace_records();
  std::ostringstream jsonl_out;
  obs::JsonlTraceWriter jsonl(jsonl_out);
  obs::replay(records, jsonl);
  jsonl.close();

  std::ostringstream bin_out;
  obs::BinaryTraceWriter bin(
      bin_out, obs::Trace2Header{static_cast<std::uint16_t>(kSeedSchemaVersion),
                                 BenchReport::git_rev()});
  obs::replay(records, bin);
  bin.close();

  for (const obs::TraceWriter* w :
       {static_cast<const obs::TraceWriter*>(&jsonl),
        static_cast<const obs::TraceWriter*>(&bin)}) {
    const double events = static_cast<double>(w->events_written());
    table.row({std::string(obs::to_string(w->format())),
               static_cast<long long>(w->events_written()),
               static_cast<long long>(w->bytes_written()),
               events > 0.0 ? static_cast<double>(w->bytes_written()) / events
                            : 0.0,
               static_cast<double>(w->bytes_written()) /
                   static_cast<double>(jsonl.bytes_written())});
  }
  emit(table);

  const double ratio = static_cast<double>(jsonl.bytes_written()) /
                       static_cast<double>(bin.bytes_written());
  std::cout << "  synran-trace/2 packs the same stream "
            << ratio << "x smaller than JSONL.\n\n";
}

void tables() {
  std::cout << "E1 — SynRan scaling vs the tight bound "
               "(Theorems 2 & 3)\n\n";
  table_for("E1a: t = n/2, coin-bias adversary (upper-bound check)", 0.5,
            false);
  table_for("E1b: t = n-1 (maximal resilience, shape check)", 1.0, true);

  // Ablation A2: without the deterministic stage the shape must persist
  // (the hand-off only matters once survivors drop below √(n/ln n)).
  Table table("E1c (ablation A2): no deterministic hand-off, t = n/2");
  table.header({"n", "rounds(mean)", "with-handoff", "delta"});
  SynRanOptions nodet;
  nodet.det_handoff = false;
  SynRanFactory plain, ablated(nodet);
  for (std::uint32_t n : {128u, 512u, 2048u}) {
    const auto a = attack_run(ablated, n, n / 2, InputPattern::Half,
                              reps_for(n), kSeed + 7 * n);
    const auto b = attack_run(plain, n, n / 2, InputPattern::Half,
                              reps_for(n), kSeed + 7 * n);
    table.row({static_cast<long long>(n), a.rounds_to_decision().mean(),
               b.rounds_to_decision().mean(),
               a.rounds_to_decision().mean() - b.rounds_to_decision().mean()});
  }
  emit(table);

  table_trace_volume();
}

void BM_SynRanAttackedRun(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SynRanFactory factory;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    CoinBiasAdversary adv({0.55, true, seed});
    EngineOptions opts;
    opts.t_budget = n / 2;
    opts.seed = ++seed;
    opts.max_rounds = 200000;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_once(factory, inputs, adv, opts);
    ::benchmark::DoNotOptimize(res.rounds_to_decision);
  }
}
BENCHMARK(BM_SynRanAttackedRun)->Arg(256)->Arg(1024)->Arg(4096);

/// Write-throughput twins over the shared pre-recorded event stream: the
/// replay isolates pure serialization cost (no engine work inside the
/// timed region), so these two timings are directly comparable.
void BM_TraceWriteJsonl(::benchmark::State& state) {
  const auto& records = trace_records();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    obs::JsonlTraceWriter writer(out);
    obs::replay(records, writer);
    writer.close();
    bytes = writer.bytes_written();
    ::benchmark::DoNotOptimize(bytes);
  }
  state.counters["trace_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TraceWriteJsonl);

void BM_TraceWriteBinary(::benchmark::State& state) {
  const auto& records = trace_records();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    obs::BinaryTraceWriter writer(out);
    obs::replay(records, writer);
    writer.close();
    bytes = writer.bytes_written();
    ::benchmark::DoNotOptimize(bytes);
  }
  state.counters["trace_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_TraceWriteBinary);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
