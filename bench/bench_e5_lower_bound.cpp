// E5 — Theorem 1: an adaptive full-information fail-stop adversary forces
// Ω(t/√(n·ln n)) rounds. Two executable adversaries demonstrate the bound's
// shape: the protocol-aware CoinBias strategy and the protocol-agnostic
// Monte-Carlo valency steerer of §3 (DESIGN.md documents the substitution
// of sampled for exact valencies). Ablation A1 contrasts SynRan with the
// symmetric-coin variant.
#include "bench_util.hpp"

#include "adversary/valency.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E5 — forced rounds vs the Ω(t/√(n·ln n)) lower bound "
               "(Theorem 1)\n\n";

  // t = n-1 (the Corollary 3.6 regime t = Ω(n)) with the uncapped coin-bias
  // adversary: here the constructive strategy can afford the Z-splits the
  // stalling requires, and the forced-round distribution tracks the
  // Ω(t/√(n·ln n)) curve. (The capped class-B adversary of the proof is
  // existence-only against SynRan — see E1a's note and EXPERIMENTS.md.)
  Table table("E5a: coin-bias adversary vs SynRan, t = n-1");
  table.header({"n", "t", "rounds(mean)", "p10", "lower-bound curve",
                "ratio"});
  SynRanFactory synran;
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    const std::uint32_t t = n - 1;
    RepeatSpec spec;
    spec.n = n;
    spec.pattern = InputPattern::Half;
    spec.reps = reps_for(n);
    spec.seed = kSeed + n;
    spec.engine.t_budget = t;
    spec.engine.max_rounds = 200000;

    // Collect the distribution, not just the mean: the theorem is a
    // with-high-probability statement. Serial per-rep loop (run_repeated
    // only keeps the aggregate) on the synran-seed/2 per-rep streams.
    std::vector<double> rounds;
    Summary s;
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
      CoinBiasAdversary adv(
          {0.55, true, adversary_seed_for_rep(spec.seed, rep)});
      EngineOptions opts = spec.engine;
      opts.seed = engine_seed_for_rep(spec.seed, rep);
      auto inputs = make_inputs(n, spec.pattern, input_rng);
      const auto res = run_once(synran, inputs, adv, opts);
      s.add(static_cast<double>(res.rounds_to_decision));
      rounds.push_back(static_cast<double>(res.rounds_to_decision));
    }
    const double lb = theory::lower_bound_rounds(n, t);
    table.row({static_cast<long long>(n), static_cast<long long>(t),
               s.mean(), quantile(rounds, 0.1), lb, s.mean() / lb});
  }
  emit(table);

  Table mc("E5b: Monte-Carlo valency adversary (protocol-agnostic), t=n-1");
  mc.header({"n", "t", "rounds(mean)", "no-adversary mean", "slowdown"});
  for (std::uint32_t n : {16u, 32u, 64u}) {
    const std::uint32_t t = n - 1;
    RepeatSpec spec;
    spec.n = n;
    spec.pattern = InputPattern::Half;
    spec.reps = 15;
    spec.threads = bench_threads();
    spec.seed = kSeed + 11 * n;
    spec.engine.t_budget = t;
    spec.engine.max_rounds = 100000;
    const auto attacked = run_repeated(
        synran,
        [](std::uint64_t seed) {
          ValencySamplingOptions o;
          o.rollouts = 8;
          o.seed = seed;
          return std::make_unique<ValencySamplingAdversary>(o);
        },
        spec);
    RepeatSpec base = spec;
    base.engine.t_budget = 0;
    const auto baseline = run_repeated(synran, no_adversary_factory(), base);
    mc.row({static_cast<long long>(n), static_cast<long long>(t),
            attacked.rounds_to_decision().mean(),
            baseline.rounds_to_decision().mean(),
            attacked.rounds_to_decision().mean() /
                std::max(1.0, baseline.rounds_to_decision().mean())});
  }
  emit(mc);

  // Without the one-side-bias rule the symmetric-coin variant falls into
  // the all-flippers fixed point: with thresholds relative to the *current*
  // count, escaping requires a Θ(p) binomial deviation — expected rounds
  // blow up exponentially in n (this is the classic Ben-Or behaviour for
  // t = Θ(n) that the paper's protocol eliminates). Runs are capped.
  Table abl(
      "E5c (ablation A1): one-side-bias vs symmetric coin, t = n/2, "
      "20000-round cap");
  abl.header({"n", "synran rounds", "benor-sym rounds", "sym capped runs",
              "sym/synran"});
  SynRanOptions symopt;
  symopt.coin_rule = CoinRule::Symmetric;
  SynRanFactory sym(symopt);
  for (std::uint32_t n : {64u, 128u, 256u}) {
    const auto a = attack_run(synran, n, n / 2, InputPattern::Half,
                              reps_for(n), kSeed + 13 * n);
    RepeatSpec spec;
    spec.n = n;
    spec.pattern = InputPattern::Half;
    spec.reps = 30;
    spec.threads = bench_threads();
    spec.seed = kSeed + 13 * n;
    spec.engine.t_budget = n / 2;
    spec.engine.max_rounds = 20000;
    const auto b = run_repeated(sym, coinbias_factory(true), spec);
    const double sym_rounds = b.rounds_to_decision().count() > 0
                                  ? b.rounds_to_decision().mean()
                                  : 20000.0;
    abl.row({static_cast<long long>(n), a.rounds_to_decision().mean(),
             sym_rounds, static_cast<long long>(b.non_terminated()),
             sym_rounds / std::max(1.0, a.rounds_to_decision().mean())});
  }
  emit(abl);
}

void BM_ValencyAdversaryRound(::benchmark::State& state) {
  SynRanFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ValencySamplingOptions o;
    o.rollouts = 8;
    o.seed = ++seed;
    ValencySamplingAdversary adv(o);
    EngineOptions opts;
    opts.t_budget = 8;
    opts.seed = seed;
    opts.max_rounds = 50000;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(16, InputPattern::Half, rng);
    const auto res = run_once(factory, inputs, adv, opts);
    ::benchmark::DoNotOptimize(res.rounds_to_decision);
  }
}
BENCHMARK(BM_ValencyAdversaryRound);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
