// E17 (robustness) — protocol × adversary tournament across fault models.
// The paper's lower bound lives in the fail-stop world (§3.1); E15 stepped
// out to omissions, and this experiment completes the ladder with corrupted
// values (CorruptionDirective): live senders whose round messages are
// replaced per receiver with forged payloads, the corrupted-value regime of
// the Byzantine literature (King & Saia, JACM 2016 correction; Haitner &
// Karidi-Heller 2020 for the adaptive coin attack).
//
//   E17a races the protocol zoo (SynRan, FloodMin, validity-hardened
//        k-FloodMin) against the link-fault adversary zoo (chaos drops,
//        targeted omission, equivocating byzantine, adaptive coin attack)
//        under each adversary's natural budget and reports agreement
//        probability, rounds to decide, and the fault volume.
//   E17b sweeps the corruption budget against the flooding family with
//        unanimous-1 inputs: plain flooding adopts any forged 0 it ever
//        sees (validity collapses at the first directive), while the
//        hardened variant filters admissions below its per-round tolerance
//        and stays valid.
//   E17c aims the adaptive coin attacker at SynRan's collective coin and
//        measures how the decided-1 share moves with the corruption budget
//        — the empirical cousin of the adaptive coin-flip bounds.
//
// Every configuration lands in the report's additive "omissions" /
// "corruptions" arrays next to the usual n/t grid.
#include "bench_util.hpp"

#include "adversary/byzantine.hpp"
#include "adversary/omission.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/kfloodmin.hpp"

namespace synran::bench {
namespace {

constexpr std::uint32_t kUnlimited = 0xffffffffu;

/// Per-round corruption allotment shared by every corrupting cell; the
/// hardened flooding tolerance is set to match, so E17b shows the regime
/// the hardening was designed for.
constexpr std::uint32_t kRoundCap = 2;
constexpr std::uint32_t kTolerance = 2;

/// Link-fault spec: crashes off (t_budget 0) to isolate the fault family
/// under test; protocol-side tolerance rides in the factories.
RepeatSpec fault_spec(std::uint32_t n, InputPattern pattern, std::size_t reps,
                      std::uint64_t seed) {
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = pattern;
  spec.reps = reps;
  spec.seed = seed;
  spec.threads = bench_threads();
  spec.engine.t_budget = 0;
  spec.engine.max_rounds = 200000;
  return spec;
}

AdversaryFactory chaos_factory_at(double drop_rate) {
  return [drop_rate](std::uint64_t s) {
    ChaosOptions opts;
    opts.drop_rate = drop_rate;
    opts.seed = s;
    return std::make_unique<ChaosAdversary>(opts);
  };
}

AdversaryFactory targeted_factory() {
  return [](std::uint64_t s) {
    return std::make_unique<OmissionAdversary>(
        OmissionAttackOptions{0.55, s});
  };
}

AdversaryFactory byzantine_factory(double corrupt_rate) {
  return [corrupt_rate](std::uint64_t s) {
    ByzantineOptions opts;
    opts.corrupt_rate = corrupt_rate;
    opts.seed = s;
    return std::make_unique<ByzantineAdversary>(opts);
  };
}

AdversaryFactory coin_attack_factory(double push_ratio) {
  return [push_ratio](std::uint64_t s) {
    CoinAttackOptions opts;
    opts.push_ratio = push_ratio;
    opts.seed = s;
    return std::make_unique<AdaptiveCoinAttacker>(opts);
  };
}

double pr_agreement(const RepeatedRunStats& stats) {
  return stats.reps() == 0
             ? 0.0
             : 1.0 - static_cast<double>(stats.agreement_failures()) /
                         static_cast<double>(stats.reps());
}

double pr_validity(const RepeatedRunStats& stats) {
  return stats.reps() == 0
             ? 0.0
             : 1.0 - static_cast<double>(stats.validity_failures()) /
                         static_cast<double>(stats.reps());
}

void tables() {
  std::cout << "E17 — protocol x adversary tournament across fault models\n\n";

  const std::uint32_t n = 48;
  const std::uint32_t proto_t = 4;
  const std::size_t reps = reps_for(n, 20000);

  // E17a: the full grid. Omission adversaries get an omission budget,
  // corruption adversaries a byzantine budget (both capped per round so no
  // single round is wiped out); each cell reports the directive volume it
  // actually spent.
  struct ProtocolEntry {
    const char* label;
    const ProcessFactory& factory;
  };
  SynRanFactory synran;
  FloodMinFactory floodmin{FloodMinOptions{proto_t, false}};
  KFloodMinFactory hardened{KFloodMinOptions{proto_t, 2, kTolerance}};
  const ProtocolEntry protocols[] = {
      {"synran", synran}, {"floodmin", floodmin},
      {"kfloodmin-hardened", hardened}};

  struct AdversaryEntry {
    const char* label;
    AdversaryFactory factory;
    bool corrupts;  ///< spends the byzantine budget instead of omissions
  };
  const AdversaryEntry adversaries[] = {
      {"chaos", chaos_factory_at(0.15), false},
      {"targeted", targeted_factory(), false},
      {"byzantine", byzantine_factory(0.2), true},
      {"coin-attack", coin_attack_factory(0.65), true}};

  Table grid("E17a: protocol x adversary (n = 48, crashes off)");
  grid.header({"protocol", "adversary", "Pr[agreement]", "rounds(mean)",
               "±stderr", "directives(mean)", "msgs touched(mean)"});
  std::uint64_t cell_seed = kSeed;
  for (const auto& proto : protocols) {
    for (const auto& adv : adversaries) {
      BenchReport::instance().note_grid(n, 0);
      if (adv.corrupts)
        BenchReport::instance().note_corruption(0.2, kUnlimited);
      else
        BenchReport::instance().note_omission(0.15, kUnlimited);
      RepeatSpec spec = fault_spec(n, InputPattern::Half, reps, ++cell_seed);
      if (adv.corrupts) {
        spec.engine.byzantine_budget = kUnlimited;
        spec.engine.byzantine_round_cap = kRoundCap;
      } else {
        spec.engine.omission_budget = kUnlimited;
        spec.engine.omission_round_cap = kRoundCap;
      }
      const std::string tag =
          std::string("e17a-") + proto.label + "-" + adv.label;
      const auto stats = run_cell(proto.factory, adv.factory, spec, tag);
      grid.row({std::string(proto.label), std::string(adv.label),
                pr_agreement(stats), stats.rounds_to_decision().mean(),
                stats.rounds_to_decision().stderr_mean(),
                stats.omissions_used().mean() +
                    stats.corruptions_used().mean(),
                stats.messages_omitted().mean() +
                    stats.messages_corrupted().mean()});
    }
  }
  emit(grid);

  // E17b: validity under equivocation, unanimous-1 inputs. Plain flooding
  // adopts the first forged 0 it sees; the hardened admission filter needs
  // more supporters than the per-round tolerance, which the round cap
  // denies the adversary.
  FloodMinFactory plain_flood{FloodMinOptions{proto_t, false}};
  KFloodMinFactory plain_k{KFloodMinOptions{proto_t, 2, 0}};
  const ProtocolEntry flooders[] = {{"floodmin", plain_flood},
                                    {"kfloodmin", plain_k},
                                    {"kfloodmin-hardened", hardened}};
  Table validity("E17b: corruption budget vs validity (all-1 inputs, n = 48)");
  validity.header({"protocol", "byz budget", "Pr[validity]",
                   "corruptions used(mean)", "rounds(mean)"});
  for (const auto& proto : flooders) {
    for (std::uint32_t budget : {0u, 4u, 16u, 64u, kUnlimited}) {
      BenchReport::instance().note_corruption(0.25, budget);
      RepeatSpec spec =
          fault_spec(n, InputPattern::AllOne, reps, ++cell_seed);
      spec.engine.byzantine_budget = budget;
      spec.engine.byzantine_round_cap = kRoundCap;
      const std::string tag = std::string("e17b-") + proto.label + "-b" +
                              std::to_string(budget);
      const auto stats =
          run_cell(proto.factory, byzantine_factory(0.25), spec, tag);
      validity.row({std::string(proto.label),
                    budget == kUnlimited ? std::string("unlimited")
                                         : std::to_string(budget),
                    pr_validity(stats), stats.corruptions_used().mean(),
                    stats.rounds_to_decision().mean()});
    }
  }
  emit(validity);

  // E17c: the adaptive coin attacker vs SynRan's collective coin. With no
  // budget the decided-1 share sits at the protocol's natural bias; each
  // budget increment lets the attacker flip more visible minority coins.
  Table coin("E17c: adaptive coin attack vs SynRan (n = 48, target 1)");
  coin.header({"byz budget", "decided-1 share", "Pr[agreement]",
               "corruptions used(mean)", "rounds(mean)"});
  for (std::uint32_t budget : {0u, 8u, 32u, 128u}) {
    BenchReport::instance().note_corruption(0.65, budget);
    RepeatSpec spec = fault_spec(n, InputPattern::Half, reps, ++cell_seed);
    spec.engine.byzantine_budget = budget;
    spec.engine.byzantine_round_cap = kRoundCap;
    const auto stats = run_cell(synran, coin_attack_factory(0.65), spec,
                                "e17c-b" + std::to_string(budget));
    const double share =
        stats.reps() == 0 ? 0.0
                          : static_cast<double>(stats.decided_one()) /
                                static_cast<double>(stats.reps());
    coin.row({std::to_string(budget), share, pr_agreement(stats),
              stats.corruptions_used().mean(),
              stats.rounds_to_decision().mean()});
  }
  emit(coin);

  std::cout << "  reading: corruption is strictly nastier than omission — "
               "equivocation breaks plain\n  flooding validity at the first "
               "directive, while the hardened admission filter holds\n  "
               "whenever the per-round tolerance covers the round cap; the "
               "adaptive attacker\n  moves SynRan's decided-1 share with a "
               "budget far below one directive per round.\n\n";
}

void BM_TournamentCell(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SynRanFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    // Straight through run_repeated: a timing kernel must not claim cell
    // ordinals or write checkpoints.
    RepeatSpec spec = fault_spec(n, InputPattern::Half, 1, ++seed);
    spec.engine.byzantine_budget = kUnlimited;
    spec.engine.byzantine_round_cap = kRoundCap;
    const auto stats =
        run_repeated(factory, byzantine_factory(0.2), spec);
    ::benchmark::DoNotOptimize(stats.reps());
  }
}
BENCHMARK(BM_TournamentCell)->Arg(64)->Arg(256);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
