// E9 — the §3.2–3.6 machinery, literally: exact (interval-bounded) min/max
// r(α) for every initial state of tiny systems, the exhaustive+exclusive
// classification, and the executable Lemma 3.5 initial-state search.
#include "bench_util.hpp"

#include "adversary/exact_valency.hpp"
#include "lowerbound/valency.hpp"
#include "protocols/floodmin.hpp"

namespace synran::bench {
namespace {

std::string classes_to_string(std::uint8_t mask) {
  std::string out;
  for (int v = 0; v < 4; ++v) {
    if (mask & (1u << v)) {
      if (!out.empty()) out += "|";
      out += to_string(static_cast<Valency>(v));
    }
  }
  return out.empty() ? "?" : out;
}

std::string inputs_to_string(const std::vector<Bit>& inputs) {
  std::string s;
  for (auto b : inputs) s += b == Bit::One ? '1' : '0';
  return s;
}

void initial_state_table(const char* title, const ProcessFactory& factory,
                         std::uint32_t n, const ValencyOptions& opts) {
  Table table(title);
  table.header({"inputs", "min r ∈", "max r ∈", "classes", "states"});
  table.precision(4);
  for (std::uint32_t x = 0; x < (1u << n); ++x) {
    std::vector<Bit> inputs;
    for (std::uint32_t i = 0; i < n; ++i)
      inputs.push_back((x >> i) & 1 ? Bit::One : Bit::Zero);
    const auto v = evaluate_initial_state(factory, inputs, opts);
    table.row({inputs_to_string(inputs),
               "[" + std::to_string(v.min_r.lo).substr(0, 6) + "," +
                   std::to_string(v.min_r.hi).substr(0, 6) + "]",
               "[" + std::to_string(v.max_r.lo).substr(0, 6) + "," +
                   std::to_string(v.max_r.hi).substr(0, 6) + "]",
               classes_to_string(v.classes),
               static_cast<long long>(v.states_visited)});
    if (v.saw_disagreement)
      std::cout << "!! disagreement detected for inputs "
                << inputs_to_string(inputs) << "\n";
  }
  emit(table);
}

void tables() {
  std::cout << "E9 — exact valency of initial states and Lemma 3.5 "
               "(tiny systems, exhaustive game tree)\n\n";

  ValencyOptions fopts;
  fopts.t_budget = 1;
  fopts.max_depth = 6;
  FloodMinFactory flood({1, false});
  initial_state_table("E9a: FloodMin (t = 1), n = 3 — exact", flood, 3,
                      fopts);

  ValencyOptions sopts;
  sopts.t_budget = 1;
  sopts.max_depth = 14;
  SynRanFactory synran;
  initial_state_table("E9b: SynRan (t = 1), n = 3 — interval bounds", synran,
                      3, sopts);

  // The §3.3–3.5 strategy, played move by move: at each round the adversary
  // queries the exact valency of every candidate fault action and keeps the
  // execution bivalent/null-valent when any action can.
  Table played("E9d: the exact adversary playing §3.3–3.5 (SynRan, n = 3, "
               "t = 2)");
  played.header({"seed", "rounds (exact adv)", "rounds (none)",
                 "crashes spent", "decision", "baseline decision",
                 "agreement"});
  {
    SynRanFactory synran2;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      ExactValencyAdversary adv({10});
      EngineOptions opts;
      opts.t_budget = 2;
      opts.per_round_cap = 1;
      opts.seed = seed;
      opts.max_rounds = 500;
      const auto res = run_once(
          synran2, {Bit::Zero, Bit::One, Bit::One}, adv, opts);
      NoAdversary none;
      const auto base = run_once(
          synran2, {Bit::Zero, Bit::One, Bit::One}, none, opts);
      played.row({static_cast<long long>(seed),
                  static_cast<long long>(res.rounds_to_decision),
                  static_cast<long long>(base.rounds_to_decision),
                  static_cast<long long>(res.crashes_total),
                  std::string(res.decision == Bit::One ? "1" : "0"),
                  std::string(base.decision == Bit::One ? "1" : "0"),
                  std::string(res.agreement ? "yes" : "NO")});
    }
  }
  emit(played);

  Table lemma("E9c: Lemma 3.5 — bivalent/null-valent initial state exists");
  lemma.header({"protocol", "found", "witness inputs", "classes"});
  {
    const auto f = find_bivalent_or_null_initial_state(flood, 3, fopts);
    lemma.row({std::string("floodmin"), std::string(f.found ? "yes" : "NO"),
               inputs_to_string(f.inputs),
               classes_to_string(f.verdict.classes)});
  }
  {
    const auto f = find_bivalent_or_null_initial_state(synran, 3, sopts);
    lemma.row({std::string("synran"), std::string(f.found ? "yes" : "NO"),
               inputs_to_string(f.inputs),
               classes_to_string(f.verdict.classes)});
  }
  emit(lemma);
}

void BM_ExactValency(::benchmark::State& state) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = static_cast<std::uint32_t>(state.range(0));
  const std::vector<Bit> inputs{Bit::Zero, Bit::One, Bit::One};
  for (auto _ : state) {
    const auto v = evaluate_initial_state(factory, inputs, opts);
    ::benchmark::DoNotOptimize(v.states_visited);
  }
}
BENCHMARK(BM_ExactValency)->Arg(8)->Arg(12);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
