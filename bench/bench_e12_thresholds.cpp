// E12 (ablation) — threshold sensitivity of SynRan. The paper's 7/6/5/4
// numerators encode two design constraints: a ≥1/10 gap between deciding and
// proposing (Lemma 4.2's failure-absorption argument) and a coin-flip window
// wide enough that the adversary must spend to escape it. This experiment
// varies the numerators and measures rounds and safety, plus the multi-round
// coin game backing the window-width intuition.
#include "bench_util.hpp"

#include <cmath>

#include "coin/multiround.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E12 — SynRan threshold-sensitivity ablation + multi-round "
               "coin games\n\n";

  struct Margin {
    const char* label;
    std::uint32_t d1, p1, p0, d0;
  };
  const Margin margins[] = {
      {"paper 7/6/5/4", 7, 6, 5, 4},
      {"wide window 8/7/4/3", 8, 7, 4, 3},
      {"narrow window 7/6/6/5", 7, 6, 6, 5},
      {"tight decide gap 7/6/5/5", 7, 6, 5, 5},
  };

  Table table("E12a: threshold numerators vs rounds (n = 256, t = n/2)");
  table.header({"margins", "rounds(mean)", "±stderr", "agreement fails",
                "validity fails"});
  for (const auto& m : margins) {
    SynRanOptions opts;
    opts.decide_one_num = m.d1;
    opts.propose_one_num = m.p1;
    opts.propose_zero_num = m.p0;
    opts.decide_zero_num = m.d0;
    if (!opts.margins_valid()) {
      table.row({std::string(m.label), std::string("(invalid combination)")});
      continue;
    }
    SynRanFactory factory(opts);
    RepeatSpec spec;
    spec.n = 256;
    spec.pattern = InputPattern::Half;
    spec.reps = 60;
    spec.threads = bench_threads();
    spec.seed = kSeed + m.d1 * 1000 + m.d0;
    spec.engine.t_budget = 128;
    spec.engine.max_rounds = 100000;
    const auto stats = run_repeated(factory, coinbias_factory(true), spec);
    table.row({std::string(m.label), stats.rounds_to_decision().mean(),
               stats.rounds_to_decision().stderr_mean(),
               static_cast<long long>(stats.agreement_failures()),
               static_cast<long long>(stats.validity_failures())});
  }
  emit(table);

  Table mr("E12b: multi-round coin game — bias vs budget (n = 256)");
  mr.header({"rounds R", "budget", "budget/√(nR)", "Pr[forced 1]",
             "Pr[forced 0]"});
  for (std::uint32_t rounds : {1u, 4u, 16u}) {
    for (double factor : {0.5, 1.5, 4.0}) {
      MultiRoundSpec spec;
      spec.players = 256;
      spec.rounds = rounds;
      const double unit = std::sqrt(256.0 * rounds);
      spec.budget = std::min<std::uint32_t>(
          256, static_cast<std::uint32_t>(factor * unit));
      GreedyBiasMultiRound to1(1), to0(0);
      const double p1 =
          estimate_multiround_bias(spec, to1, 1, 300, kSeed + rounds);
      const double p0 =
          estimate_multiround_bias(spec, to0, 0, 300, kSeed + rounds + 1);
      mr.row({static_cast<long long>(rounds),
              static_cast<long long>(spec.budget),
              static_cast<double>(spec.budget) / unit, p1, p0});
    }
  }
  emit(mr);

  std::cout << "  reading: biasing an R-round game needs kills on the order "
               "of its √(nR)\n  standard deviation — the per-round price "
               "√(n·log n) of §3.2 in aggregate form.\n\n";
}

void BM_MultiRoundGame(::benchmark::State& state) {
  MultiRoundSpec spec;
  spec.players = static_cast<std::uint32_t>(state.range(0));
  spec.rounds = 8;
  spec.budget = spec.players / 4;
  GreedyBiasMultiRound adv(1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = play_multiround(spec, adv, ++seed);
    ::benchmark::DoNotOptimize(res.sum);
  }
}
BENCHMARK(BM_MultiRoundGame)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
