// Bench plumbing for the event-driven asynchronous engine: the async
// counterpart of bench_util.hpp's run_cell. A cell is one repeated async
// batch (protocol factory × scheduler factory × delay factory); it honors
// the same environment hooks — SYNRAN_FAIL_POLICY / SYNRAN_REP_RETRIES,
// SYNRAN_THREADS / --threads=N, per-batch traces under SYNRAN_TRACE_DIR
// (byte-identical at any thread count: the async executor replays buffered
// observer events in rep order, mirroring the synchronous one), checkpoint
// recording under SYNRAN_CKPT_DIR, and reload-instead-of-recompute under
// SYNRAN_RESUME=1. Async and sync cells share one ledger and one ordinal
// counter, so a mixed sweep (e.g. E16) resumes as a whole; the async cell
// key is prefixed "model=async" so the two families can never serve each
// other stale data even at a colliding ordinal.
#pragma once

#include "bench_util.hpp"

#include "async/benor.hpp"
#include "exec/async_executor.hpp"

namespace synran::bench {

/// Runs one async grid cell through the full resilience plumbing, including
/// the checkpoint ledger — restored cells reproduce the uninterrupted
/// report byte-for-byte, exactly like run_cell. Quarantined reps land in
/// the report's "failures" array either way (fresh or restored).
inline AsyncRunStats run_async_cell(const AsyncProcessFactory& factory,
                                    const AsyncSchedulerFactory& schedulers,
                                    const AsyncDelayFactory& delays,
                                    AsyncRepeatSpec spec,
                                    const std::string& tag) {
  spec.policy = bench_fail_policy(spec.policy);
  spec.max_rep_retries = bench_rep_retries(spec.max_rep_retries);
  spec.threads = bench_threads();

  auto& ckpt = CheckpointState::instance();
  const std::uint64_t cell = ckpt.next_cell();
  const std::string key = async_spec_cell_key(spec, factory.name(), tag);

  auto report_failures = [cell](const AsyncRunStats& stats) {
    for (const RepFailure& f : stats.failures()) {
      BenchReport::instance().note_failure(cell, f);
      std::cout << "  [quarantined: rep " << f.rep << " (engine seed "
                << f.seed << ", " << f.attempts << " attempts): " << f.error
                << "]\n";
    }
  };

  if (ckpt.resuming() && ckpt.ledger() != nullptr) {
    if (const obs::CheckpointCell* hit = ckpt.ledger()->find(cell, key)) {
      auto stats = AsyncRunStats::from_checkpoint(hit->data);
      std::cout << "  [ckpt: cell " << cell << " restored]\n";
      report_failures(stats);
      return stats;
    }
  }

  ScopedTrace trace;
  if (spec.engine.observer == nullptr) {
    trace = open_trace(tag);
    spec.engine.observer = trace.observer();
  }
  const auto batch_start = std::chrono::steady_clock::now();
  auto stats = exec::AsyncBatchExecutor().run(factory, schedulers, delays,
                                              spec);
  trace.close();
  if (trace.active()) {
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_start)
            .count();
    BenchReport::instance().note_trace_overhead(
        trace.timer->events_written(), trace.timer->bytes_written(),
        trace.timer->write_seconds(), batch_seconds);
  }

  if (obs::CheckpointLedger* ledger = ckpt.ledger()) {
    try {
      ledger->record(
          obs::CheckpointCell{cell, key, stats.checkpoint_json()});
    } catch (const obs::IoError& e) {
      // A dead checkpoint dir must not kill a healthy sweep: the cell's
      // results are already in hand, only resumability is lost.
      std::cout << "  [" << e.what() << "]\n";
    }
  }
  report_failures(stats);
  return stats;
}

/// Convenience wrapper mirroring attack_run: Ben-Or (optionally with
/// retransmission) at (n, t) under the given scheduler/delay factories.
inline AsyncRunStats async_run(std::uint32_t n, std::uint32_t t,
                               const AsyncSchedulerFactory& schedulers,
                               const AsyncDelayFactory& delays,
                               std::size_t reps, std::uint64_t seed,
                               const std::string& tag,
                               const BenOrOptions& protocol = {},
                               std::uint64_t max_steps = 0) {
  BenchReport::instance().note_grid(n, t);
  BenOrAsyncFactory factory(protocol);
  AsyncRepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = reps;
  spec.seed = seed;
  spec.engine.t_budget = t;
  if (max_steps != 0) spec.engine.max_steps = max_steps;
  return run_async_cell(factory, schedulers, delays, std::move(spec), tag);
}

}  // namespace synran::bench
