// Bench plumbing for the event-driven asynchronous engine: the async
// counterpart of bench_util.hpp's run_cell. A cell is one repeated async
// batch (protocol factory × scheduler factory × delay factory); it honors
// the same environment hooks — SYNRAN_FAIL_POLICY / SYNRAN_REP_RETRIES,
// SYNRAN_THREADS / --threads=N, and per-batch traces under SYNRAN_TRACE_DIR
// (byte-identical at any thread count: the async executor replays buffered
// observer events in rep order, mirroring the synchronous one).
//
// Async cells do NOT checkpoint: AsyncRunStats has no ledger serialization
// yet, so SYNRAN_CKPT_DIR / SYNRAN_RESUME pass async sweeps by. The cell
// ordinal counter is still claimed per cell, keeping mixed sync/async
// binaries' ordinals in execution order if one ever exists.
#pragma once

#include "bench_util.hpp"

#include "async/benor.hpp"
#include "exec/async_executor.hpp"

namespace synran::bench {

/// Runs one async grid cell through the resilience plumbing (minus
/// checkpoints — see the header comment). Quarantined reps land in the
/// report's "failures" array exactly like synchronous cells.
inline AsyncRunStats run_async_cell(const AsyncProcessFactory& factory,
                                    const AsyncSchedulerFactory& schedulers,
                                    const AsyncDelayFactory& delays,
                                    AsyncRepeatSpec spec,
                                    const std::string& tag) {
  spec.policy = bench_fail_policy(spec.policy);
  spec.max_rep_retries = bench_rep_retries(spec.max_rep_retries);
  spec.threads = bench_threads();

  const std::uint64_t cell = CheckpointState::instance().next_cell();

  ScopedTrace trace;
  if (spec.engine.observer == nullptr) {
    trace = open_trace(tag);
    spec.engine.observer = trace.observer();
  }
  const auto batch_start = std::chrono::steady_clock::now();
  auto stats = exec::AsyncBatchExecutor().run(factory, schedulers, delays,
                                              spec);
  trace.close();
  if (trace.active()) {
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      batch_start)
            .count();
    BenchReport::instance().note_trace_overhead(
        trace.timer->events_written(), trace.timer->bytes_written(),
        trace.timer->write_seconds(), batch_seconds);
  }

  for (const RepFailure& f : stats.failures()) {
    BenchReport::instance().note_failure(cell, f);
    std::cout << "  [quarantined: rep " << f.rep << " (engine seed " << f.seed
              << ", " << f.attempts << " attempts): " << f.error << "]\n";
  }
  return stats;
}

/// Convenience wrapper mirroring attack_run: Ben-Or (optionally with
/// retransmission) at (n, t) under the given scheduler/delay factories.
inline AsyncRunStats async_run(std::uint32_t n, std::uint32_t t,
                               const AsyncSchedulerFactory& schedulers,
                               const AsyncDelayFactory& delays,
                               std::size_t reps, std::uint64_t seed,
                               const std::string& tag,
                               const BenOrOptions& protocol = {},
                               std::uint64_t max_steps = 0) {
  BenchReport::instance().note_grid(n, t);
  BenOrAsyncFactory factory(protocol);
  AsyncRepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = reps;
  spec.seed = seed;
  spec.engine.t_budget = t;
  if (max_steps != 0) spec.engine.max_steps = max_steps;
  return run_async_cell(factory, schedulers, delays, std::move(spec), tag);
}

}  // namespace synran::bench
