// E3 — Lemma 2.1 / Corollary 2.2: with budget above k·4√(n·ln n) the
// adversary controls some outcome of ANY one-round game with probability
// > 1 − 1/n; measured as min_v Pr(U^v) over sampled inputs.
#include "bench_util.hpp"

#include <cmath>

#include "coin/forcing.hpp"
#include "coin/games.hpp"

namespace synran::bench {
namespace {

void control_rows(Table& table, const CoinGame& game, std::uint32_t n,
                  double budget_factor, std::size_t samples) {
  const double unit = std::sqrt(static_cast<double>(n) *
                                std::log(static_cast<double>(n)));
  const auto budget =
      static_cast<std::uint32_t>(budget_factor * 4.0 * unit *
                                 static_cast<double>(game.outcomes() == 2
                                                         ? 1
                                                         : game.outcomes()));
  const auto est = estimate_control(game, budget, samples, kSeed + n);
  table.row({std::string(game.name()), static_cast<long long>(n),
             static_cast<long long>(budget), budget_factor,
             est.min_pr_unforceable(), 1.0 / static_cast<double>(n),
             std::string(est.min_pr_unforceable() <
                                 1.0 / static_cast<double>(n) +
                                     2.0 / std::sqrt(double(samples))
                             ? "yes"
                             : "NO"),
             static_cast<long long>(est.best_outcome())});
}

void tables() {
  std::cout << "E3 — adversary control of one-round games "
               "(Lemma 2.1, Corollary 2.2)\n\n";

  Table table("E3a: min_v Pr(U^v) at the paper budget k·4√(n·ln n)");
  table.header({"game", "n", "budget", "factor", "min Pr(U^v)", "1/n",
                "controlled", "toward"});
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    MajorityPresentGame maj(n);
    MajorityDefaultZeroGame mdz(n);
    ParityPresentGame par(n);
    LeaderBitGame lead(n);
    control_rows(table, maj, n, 1.0, 400);
    control_rows(table, mdz, n, 1.0, 400);
    control_rows(table, par, n, 1.0, 400);
    control_rows(table, lead, n, 1.0, 400);
  }
  emit(table);

  Table sweep("E3b: budget sweep (majority-present, n = 1024)");
  sweep.header({"budget", "/4√(n·ln n)", "Pr(U^0)", "Pr(U^1)",
                "min Pr(U^v)"});
  const std::uint32_t n = 1024;
  const double unit = 4.0 * std::sqrt(1024.0 * std::log(1024.0));
  MajorityPresentGame game(n);
  for (double f : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    const auto budget = static_cast<std::uint32_t>(f * unit);
    const auto est = estimate_control(game, budget, 400, kSeed + budget);
    sweep.row({static_cast<long long>(budget), f, est.pr_unforceable[0],
               est.pr_unforceable[1], est.min_pr_unforceable()});
  }
  emit(sweep);

  // Multi-outcome game: exhaustive forcing on a small instance shows every
  // residue reachable with a small budget (the k-outcome clause).
  Table multi("E3c: k-outcome control (mod-sum, exhaustive, n = 18)");
  multi.header({"k", "budget", "min Pr(U^v)", "1/n", "controlled"});
  for (std::uint32_t k : {2u, 3u, 4u}) {
    ModSumGame game2(18, k);
    ForcingOptions fo;
    fo.exhaustive_max_players = 18;
    fo.exhaustive_max_budget = 3;
    const auto est = estimate_control(game2, 3, 300, kSeed + k, fo);
    multi.row({static_cast<long long>(k), 3LL, est.min_pr_unforceable(),
               1.0 / 18.0,
               std::string(est.min_pr_unforceable() < 0.1 ? "yes" : "NO")});
  }
  emit(multi);
}

void BM_EstimateControl(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  MajorityPresentGame game(n);
  const auto budget = static_cast<std::uint32_t>(
      4.0 * std::sqrt(n * std::log(static_cast<double>(n))));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto est = estimate_control(game, budget, 50, ++seed);
    ::benchmark::DoNotOptimize(est.samples);
  }
}
BENCHMARK(BM_EstimateControl)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
