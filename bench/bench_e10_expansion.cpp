// E10 — the Schechtman inequality as used in Lemma 2.1: exact Hamming-ball
// expansion on the hypercube vs the bound Pr(B(A,l)) ≥ 1 − e^{−(l−l₀)²/4n},
// including the actual U^v sets of coin games.
#include "bench_util.hpp"

#include <cmath>

#include "analysis/binomial.hpp"
#include "coin/expansion.hpp"
#include "coin/games.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E10 — measure concentration on the hypercube "
               "(Schechtman, as used in Lemma 2.1)\n\n";

  Table table("E10a: exact expansion of Hamming balls vs the bound");
  table.header({"n", "α", "l₀", "l", "exact Pr(B(A,l))", "bound", "holds"});
  table.precision(5);
  for (std::uint32_t n : {14u, 18u}) {
    // A = ball around 0 with measure closest to 1/n.
    HypercubeExpansion probe(n, [](std::uint64_t x) { return x == 0; });
    std::uint32_t r = 0;
    while (probe.ball_measure(r) < 1.0 / n) ++r;
    HypercubeExpansion e(n, [r](std::uint64_t x) {
      return static_cast<std::uint32_t>(__builtin_popcountll(x)) <= r;
    });
    const double alpha = e.measure();
    const double l0 = schechtman_l0(n, alpha);
    for (std::uint32_t l = 0; l <= n; l += 2) {
      const double bound = schechtman_expansion_bound(n, alpha, l);
      table.row({static_cast<long long>(n), alpha, l0,
                 static_cast<long long>(l), e.ball_measure(l), bound,
                 std::string(e.ball_measure(l) + 1e-12 >= bound ? "yes"
                                                                : "NO")});
    }
  }
  emit(table);

  Table uv("E10b: expansion of real U^v sets (majority-present game)");
  uv.header({"n", "budget", "target v", "α = Pr(U^v)", "l for 1−1/n",
             "4√(n·ln n)"});
  uv.precision(5);
  for (std::uint32_t n : {12u, 16u, 20u}) {
    for (std::uint32_t budget : {1u, 2u}) {
      MajorityPresentGame game(n);
      for (std::uint32_t v = 0; v < 2; ++v) {
        const auto e = expansion_of_unforceable_set(game, v, budget);
        const double target = 1.0 - 1.0 / static_cast<double>(n);
        uv.row({static_cast<long long>(n), static_cast<long long>(budget),
                static_cast<long long>(v), e.measure(),
                static_cast<long long>(e.radius_for(target)),
                4.0 * std::sqrt(n * std::log(static_cast<double>(n)))});
      }
    }
  }
  emit(uv);

  std::cout << "  reading: the enlargement radius needed to cover 1−1/n of\n"
               "  the cube stays far below the paper's 4√(n·ln n) budget —\n"
               "  exactly the slack Lemma 2.1 exploits.\n\n";
}

void BM_Expansion(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    HypercubeExpansion e(n, [](std::uint64_t x) { return x % 97 == 0; });
    ::benchmark::DoNotOptimize(e.ball_measure(2));
  }
}
BENCHMARK(BM_Expansion)->Arg(14)->Arg(18);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
