// E7 — the deterministic baseline: FloodMin always pays t+1 rounds (the
// classic deterministic lower bound), early-deciding FloodMin pays
// min(f+2, t+1) and is dragged back to the worst case by the chain
// adversary, and SynRan overtakes both once t ≫ √(n·ln n).
#include "bench_util.hpp"

#include <cmath>

#include "adversary/basic.hpp"
#include "protocols/floodmin.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E7 — deterministic t+1 baseline vs SynRan (§1, [Lyn96], "
               "[GM93])\n\n";

  const std::uint32_t n = 256;
  Table table("E7a: rounds to decision at n = 256");
  table.header({"t", "floodmin", "early (no faults)", "early (chain)",
                "synran (coinbias)", "winner"});
  SynRanFactory synran;
  for (std::uint32_t t : {1u, 4u, 16u, 64u, 128u, 255u}) {
    FloodMinFactory flood({t, false});
    FloodMinFactory early({t, true});
    NoAdversary none;
    EngineOptions opts;
    opts.t_budget = t;
    opts.max_rounds = 200000;

    Xoshiro256 rng(kSeed);
    auto inputs = make_inputs(n, InputPattern::SingleZero, rng);

    const auto base = run_once(flood, inputs, none, opts);
    const auto fast = run_once(early, inputs, none, opts);
    ChainHidingAdversary chain;
    const auto dragged = run_once(early, inputs, chain, opts);

    const auto sr = attack_run(synran, n, t, InputPattern::Half,
                               reps_for(n), kSeed + t);
    const double sr_rounds = sr.rounds_to_decision().mean();
    table.row({static_cast<long long>(t),
               static_cast<long long>(base.rounds_to_decision),
               static_cast<long long>(fast.rounds_to_decision),
               static_cast<long long>(dragged.rounds_to_decision),
               sr_rounds,
               std::string(sr_rounds < base.rounds_to_decision ? "synran"
                                                               : "floodmin")});
  }
  emit(table);

  // Crossover: SynRan's curve is ~c·t/√(n·ln(2+t/√n)); the deterministic
  // baseline is t+1. Locate the measured crossover in t.
  Table cross("E7b: crossover location (smallest t where SynRan wins)");
  cross.header({"n", "crossover t (measured)", "√n", "t/√n"});
  for (std::uint32_t nn : {64u, 256u, 1024u}) {
    std::uint32_t crossover = 0;
    for (std::uint32_t t = 1; t < nn; t = t < 8 ? t + 1 : t * 2) {
      const auto sr = attack_run(synran, nn, t, InputPattern::Half,
                                 std::max<std::size_t>(20, reps_for(nn) / 2),
                                 kSeed + nn + t);
      if (sr.rounds_to_decision().mean() < static_cast<double>(t + 1)) {
        crossover = t;
        break;
      }
    }
    cross.row({static_cast<long long>(nn),
               static_cast<long long>(crossover),
               std::sqrt(static_cast<double>(nn)),
               crossover / std::sqrt(static_cast<double>(nn))});
  }
  emit(cross);
}

void BM_FloodMinRun(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  FloodMinFactory factory({n / 2, false});
  NoAdversary none;
  EngineOptions opts;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    opts.seed = ++seed;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_once(factory, inputs, none, opts);
    ::benchmark::DoNotOptimize(res.rounds_to_decision);
  }
}
BENCHMARK(BM_FloodMinRun)->Arg(64)->Arg(256);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
