// E15 (robustness) — graceful degradation of SynRan under omission faults.
// The paper's model is fail-stop (§3.1): a crashed process is gone for good.
// This experiment deliberately steps outside it and asks how SynRan behaves
// when messages are *dropped* but the senders stay alive — the send-omission
// regime of the general-omission literature.
//
//   E15a sweeps the per-link drop rate p (ChaosAdversary, i.i.d. seeded
//        drops, unlimited directive budget) at fixed n and measures agreement
//        probability, expected rounds to decision, and the omission volume.
//   E15b repeats the midpoint drop rate across n to show how system size
//        shifts the degradation knee.
//   E15c aims a targeted OmissionAdversary at the 6/10 and 5/10 threshold
//        margins under a directive budget, as the crash-free analogue of the
//        CoinBias attack.
//
// Every configuration lands in the report's additive "omissions" array
// (drop_rate, budget) next to the usual n/t grid.
#include "bench_util.hpp"

#include "adversary/omission.hpp"

namespace synran::bench {
namespace {

/// Runs SynRan under ChaosAdversary link drops (no crashes) and returns the
/// aggregate. `budget` caps omission directives; kUnlimited studies the pure
/// drop-rate regime.
constexpr std::uint32_t kUnlimited = 0xffffffffu;

RepeatSpec chaos_spec(std::uint32_t n, std::uint32_t budget, std::size_t reps,
                      std::uint64_t seed) {
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = reps;
  spec.seed = seed;
  spec.threads = bench_threads();
  spec.engine.t_budget = 0;  // no crashes: isolate the omission effect
  spec.engine.omission_budget = budget;
  spec.engine.max_rounds = 200000;
  return spec;
}

AdversaryFactory chaos_factory(double drop_rate) {
  return [drop_rate](std::uint64_t s) {
    ChaosOptions opts;
    opts.drop_rate = drop_rate;
    opts.seed = s;
    return std::make_unique<ChaosAdversary>(opts);
  };
}

/// One table cell: goes through run_cell, so chaos batches trace,
/// checkpoint, and resume like every attack_run cell (the drop rate rides
/// in the cell tag — it shapes the adversary, not the spec).
RepeatedRunStats chaos_run(std::uint32_t n, double drop_rate,
                           std::uint32_t budget, std::size_t reps,
                           std::uint64_t seed) {
  BenchReport::instance().note_grid(n, 0);
  BenchReport::instance().note_omission(drop_rate, budget);
  SynRanFactory factory;
  const std::string tag = "chaos-n" + std::to_string(n) + "-p" +
                          std::to_string(drop_rate) + "-b" +
                          std::to_string(budget);
  return run_cell(factory, chaos_factory(drop_rate),
                  chaos_spec(n, budget, reps, seed), tag);
}

void tables() {
  std::cout << "E15 — SynRan graceful degradation under omission faults\n\n";

  // E15a: drop-rate sweep at fixed n. SynRan's thresholds compare against
  // the previous round's message count, so uniform drops mostly cancel —
  // agreement should survive far beyond the fail-stop budget's reach, with
  // rounds growing as drops push receivers out of the decide window.
  const std::uint32_t n_fixed = 128;
  Table sweep("E15a: drop rate vs agreement and rounds (n = 128, t = 0)");
  sweep.header({"drop rate", "Pr[agreement]", "rounds(mean)", "±stderr",
                "omitted links(mean)", "non-term"});
  for (double p : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    const auto reps = reps_for(n_fixed);
    const auto stats =
        chaos_run(n_fixed, p, kUnlimited, reps,
                  kSeed + static_cast<std::uint64_t>(p * 1000));
    const double pr_agree =
        stats.reps() == 0
            ? 0.0
            : 1.0 - static_cast<double>(stats.agreement_failures()) /
                        static_cast<double>(stats.reps());
    sweep.row({p, pr_agree, stats.rounds_to_decision().mean(),
               stats.rounds_to_decision().stderr_mean(),
               stats.messages_omitted().mean(),
               static_cast<long long>(stats.non_terminated())});
  }
  emit(sweep);

  // E15b: the same midpoint drop rate across n — does size buy resilience?
  Table across("E15b: n vs degradation at drop rate 0.2 (t = 0)");
  across.header({"n", "Pr[agreement]", "rounds(mean)", "±stderr",
                 "omissions(mean)"});
  for (std::uint32_t n : {32u, 64u, 128u, 256u}) {
    const auto stats = chaos_run(n, 0.2, kUnlimited, reps_for(n), kSeed + n);
    const double pr_agree =
        stats.reps() == 0
            ? 0.0
            : 1.0 - static_cast<double>(stats.agreement_failures()) /
                        static_cast<double>(stats.reps());
    across.row({static_cast<long long>(n), pr_agree,
                stats.rounds_to_decision().mean(),
                stats.rounds_to_decision().stderr_mean(),
                stats.omissions_used().mean()});
  }
  emit(across);

  // E15c: targeted threshold attack under a directive budget — the
  // crash-free analogue of CoinBias. Budgets are directive counts, so n
  // directives ≈ one fully-suppressed round.
  Table targeted("E15c: targeted omission attack vs budget (n = 128, t = 0)");
  targeted.header({"omission budget", "rounds(mean)", "±stderr",
                   "omissions used(mean)", "agreement fails"});
  for (std::uint32_t budget : {0u, 64u, 256u, 1024u, kUnlimited}) {
    BenchReport::instance().note_omission(0.0, budget);
    SynRanFactory factory;
    const AdversaryFactory adversaries = [](std::uint64_t s) {
      return std::make_unique<OmissionAdversary>(
          OmissionAttackOptions{0.55, s});
    };
    const auto stats =
        run_cell(factory, adversaries,
                 chaos_spec(128, budget, reps_for(128), kSeed + budget),
                 "targeted-b" + std::to_string(budget));
    targeted.row({budget == kUnlimited ? std::string("unlimited")
                                       : std::to_string(budget),
                  stats.rounds_to_decision().mean(),
                  stats.rounds_to_decision().stderr_mean(),
                  stats.omissions_used().mean(),
                  static_cast<long long>(stats.agreement_failures())});
  }
  emit(targeted);

  std::cout << "  reading: uniform link drops degrade SynRan gracefully — "
               "agreement holds while\n  rounds stretch; a targeted attacker "
               "needs a standing omission budget every round\n  to keep the "
               "execution away from the decide thresholds.\n\n";
}

void BM_ChaosDelivery(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SynRanFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    // Straight through run_repeated: a timing kernel must not claim cell
    // ordinals or write checkpoints.
    const auto stats = run_repeated(factory, chaos_factory(0.1),
                                    chaos_spec(n, kUnlimited, 1, ++seed));
    ::benchmark::DoNotOptimize(stats.reps());
  }
}
BENCHMARK(BM_ChaosDelivery)->Arg(64)->Arg(256);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
