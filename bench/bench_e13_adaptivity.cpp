// E13 — adaptivity is the whole game (§1.2 / [CMS89]): the same leader-coin
// protocol runs in O(1) expected rounds against a non-adaptive (oblivious)
// t-adversary but is stalled for ~t rounds by the one-crash-per-round
// adaptive leader killer. SynRan is immune to the leader killer (it has no
// leaders) — its price against full adaptivity is the paper's
// Θ(t/√(n·log(2+t/√n))).
#include "bench_util.hpp"

#include "adversary/nonadaptive.hpp"
#include "protocols/leadercoin.hpp"

namespace synran::bench {
namespace {

RepeatedRunStats with_adversary(const ProcessFactory& factory,
                                const AdversaryFactory& adversaries,
                                std::uint32_t n, std::uint32_t t,
                                std::uint64_t seed) {
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = reps_for(n);
  spec.threads = bench_threads();
  spec.seed = seed;
  spec.engine.t_budget = t;
  spec.engine.max_rounds = 100000;
  return run_repeated(factory, adversaries, spec);
}

void tables() {
  std::cout << "E13 — non-adaptive vs adaptive adversaries "
               "(§1.2, [CMS89])\n\n";

  const std::uint32_t n = 256;
  LeaderCoinFactory leader;
  SynRanFactory synran;

  const auto oblivious = [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<ObliviousAdversary>(
        ObliviousOptions{64, seed});
  };
  const auto killer = [](std::uint64_t) -> std::unique_ptr<Adversary> {
    return std::make_unique<LeaderKillerAdversary>();
  };

  Table table("E13a: leader-coin protocol, n = 256 — rounds vs t");
  table.header({"t", "oblivious", "leader-killer (adaptive)",
                "killer/oblivious"});
  for (std::uint32_t t : {8u, 32u, 64u, 128u, 255u}) {
    const auto obl = with_adversary(leader, oblivious, n, t, kSeed + t);
    const auto kil = with_adversary(leader, killer, n, t, kSeed + 31 * t);
    table.row({static_cast<long long>(t), obl.rounds_to_decision().mean(),
               kil.rounds_to_decision().mean(),
               kil.rounds_to_decision().mean() /
                   std::max(1.0, obl.rounds_to_decision().mean())});
    if (!obl.all_safe() || !kil.all_safe()) emit(table, false);
  }
  emit(table);
  std::cout << "  reading: the oblivious column stays O(1) while the "
               "adaptive column grows ≈ t —\n  the executable content of "
               "\"our lower bound does not hold without the adaptive\n  "
               "selection of the faulty processes\".\n\n";

  Table cmp("E13b: SynRan under the same adversaries (no leader to kill)");
  cmp.header({"t", "oblivious", "leader-killer", "coin-bias (adaptive)"});
  for (std::uint32_t t : {64u, 255u}) {
    const auto obl = with_adversary(synran, oblivious, n, t, kSeed + t);
    const auto kil = with_adversary(synran, killer, n, t, kSeed + 7 * t);
    const auto cb = attack_run(synran, n, t, InputPattern::Half,
                               reps_for(n), kSeed + 13 * t);
    cmp.row({static_cast<long long>(t), obl.rounds_to_decision().mean(),
             kil.rounds_to_decision().mean(), cb.rounds_to_decision().mean()});
  }
  emit(cmp);
}

void BM_LeaderCoinRun(::benchmark::State& state) {
  LeaderCoinFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    LeaderKillerAdversary adv;
    EngineOptions opts;
    opts.t_budget = 128;
    opts.seed = ++seed;
    opts.max_rounds = 100000;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(256, InputPattern::Half, rng);
    const auto res = run_once(factory, inputs, adv, opts);
    ::benchmark::DoNotOptimize(res.rounds_to_decision);
  }
}
BENCHMARK(BM_LeaderCoinRun);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
