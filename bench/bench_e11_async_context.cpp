// E11 — the asynchronous context of §1/§1.2: Ben-Or's protocol [BO83] is
// O(1) expected rounds for t = O(√n) but degrades sharply as t grows toward
// n/2 under adversarial scheduling, and the total coin-flip count relates to
// Aspnes's Ω(t²/log²t) asynchronous lower bound [Asp97]. This experiment
// regenerates that context table (it has no synchronous counterpart in the
// paper; it motivates why the synchronous question was open).
//
// Runs on the event-driven core through the async batch executor: the
// adversary-held delay model reproduces the old step-scheduler semantics
// exactly, and the batch seeding (schema 2 + the delay stream) makes every
// cell thread-count invariant.
#include "bench_async.hpp"

#include <cmath>

#include "async/delay.hpp"
#include "async/scheduler.hpp"

namespace synran::bench {
namespace {

/// The step cap that turns Ben-Or's near-n/2 blow-up into a reported
/// "capped" count instead of an endless grind — scaled to the ~2n² messages
/// a protocol round costs.
std::uint64_t step_cap(std::uint32_t n) { return 100ull * n * n; }

void tables() {
  std::cout << "E11 — asynchronous Ben-Or as the paper's context "
               "([BO83], [Asp97])\n\n";

  Table table("E11a: rounds vs fault budget, n = 32 (capped at 100·n² steps)");
  table.header({"t", "t/√n", "scheduler", "rounds(mean)", "msgs(mean)",
                "coin flips", "capped", "agree"});
  const std::uint32_t n = 32;
  const std::size_t reps = std::min<std::size_t>(reps_for(n, 800), 20);
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 15u}) {
    for (bool adversarial : {false, true}) {
      const auto stats = async_run(
          n, t,
          adversarial ? laggard_scheduler_factory()
                      : random_scheduler_factory(),
          held_delay_factory(), reps, kSeed + t,
          std::string("e11a-t") + std::to_string(t) +
              (adversarial ? "-laggard" : "-random"),
          {}, step_cap(n));
      table.row({static_cast<long long>(t),
                 static_cast<double>(t) / std::sqrt(double(n)),
                 std::string(adversarial ? "laggard" : "random"),
                 stats.rounds_to_decision().mean(),
                 stats.messages_delivered().mean(), stats.coin_flips().mean(),
                 static_cast<long long>(stats.non_terminated()),
                 std::string(stats.agreement_failures() == 0 ? "yes" : "NO")});
    }
  }
  emit(table);
  std::cout << "  note: rounds stay O(1) for t = O(√n) and blow up as t\n"
               "  approaches n/2 under the adversarial scheduler (capped\n"
               "  runs) — exactly the [BO83] behaviour the paper cites.\n\n";

  Table flips("E11b: coin flips vs the Aspnes Ω(t²/log²t) curve, t = ⌈√n⌉");
  flips.header({"n", "t", "flips(mean)", "t²/ln²t", "ratio", "capped"});
  for (std::uint32_t nn : {32u, 64u, 128u, 256u}) {
    const auto t = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(nn))));
    const std::size_t flip_reps = std::min<std::size_t>(reps_for(nn, 600), 15);
    const auto stats = async_run(nn, t, laggard_scheduler_factory(),
                                 held_delay_factory(), flip_reps, kSeed + nn,
                                 "e11b-n" + std::to_string(nn), {},
                                 step_cap(nn));
    const double lt = std::log(std::max(2.0, static_cast<double>(t)));
    const double curve = static_cast<double>(t) * t / (lt * lt);
    flips.row({static_cast<long long>(nn), static_cast<long long>(t),
               stats.coin_flips().mean(), curve,
               stats.coin_flips().mean() / curve,
               static_cast<long long>(stats.non_terminated())});
  }
  emit(flips);

  std::cout
      << "  reading: the asynchronous protocol's cost is benign for small\n"
         "  t but the adversarial scheduler inflates it as t -> n/2; the\n"
         "  paper asks (and answers) what happens in the SYNCHRONOUS model\n"
         "  where [Asp97]'s argument does not apply.\n\n";
}

void BM_AsyncRun(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenOrAsyncFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ++seed;
    RandomScheduler sched(seed);
    AsyncEngineOptions opts;
    opts.t_budget = 4;
    opts.seed = seed;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_async(factory, inputs, sched, opts);
    ::benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_AsyncRun)->Arg(32)->Arg(128);

void BM_AsyncRunTimed(::benchmark::State& state) {
  // The timed path: every link gets a fixed latency, so the run exercises
  // the event heap instead of the adversary-held pool.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenOrAsyncFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ++seed;
    FifoScheduler sched;
    FixedDelay delay(1);
    AsyncEngineOptions opts;
    opts.t_budget = 4;
    opts.seed = seed;
    opts.delay = &delay;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_async(factory, inputs, sched, opts);
    ::benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_AsyncRunTimed)->Arg(32)->Arg(128);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
