// E11 — the asynchronous context of §1/§1.2: Ben-Or's protocol [BO83] is
// O(1) expected rounds for t = O(√n) but degrades sharply as t grows toward
// n/2 under adversarial scheduling, and the total coin-flip count relates to
// Aspnes's Ω(t²/log²t) asynchronous lower bound [Asp97]. This experiment
// regenerates that context table (it has no synchronous counterpart in the
// paper; it motivates why the synchronous question was open).
#include "bench_util.hpp"

#include <cmath>

#include "async/benor.hpp"
#include "async/engine.hpp"
#include "async/scheduler.hpp"

namespace synran::bench {
namespace {

struct AsyncAgg {
  Summary rounds, steps, flips;
  std::size_t disagreements = 0;
  std::size_t non_terminated = 0;
};

AsyncAgg run_batch(std::uint32_t n, std::uint32_t t, bool adversarial,
                   std::size_t reps, std::uint64_t seed) {
  BenOrAsyncFactory factory;
  AsyncAgg agg;
  SeedSequence seeds(seed);
  Xoshiro256 input_rng(seeds.stream(1));
  for (std::size_t rep = 0; rep < reps; ++rep) {
    AsyncEngineOptions opts;
    opts.t_budget = t;
    opts.seed = seeds.stream(100 + rep);
    // Near t = n/2 the expected round count explodes (the exponential
    // regime [BO83] suffers under the strong scheduler); the cap — scaled
    // to the ~2n^2 messages a protocol round costs — turns the blow-up into
    // a reported "capped" count instead of an endless grind.
    opts.max_steps = 100ull * n * n;
    auto inputs = make_inputs(n, InputPattern::Half, input_rng);
    AsyncRunResult res;
    if (adversarial) {
      LaggardScheduler sched(seeds.stream(5000 + rep));
      res = run_async(factory, inputs, sched, opts);
    } else {
      RandomScheduler sched(seeds.stream(5000 + rep));
      res = run_async(factory, inputs, sched, opts);
    }
    if (!res.terminated) {
      ++agg.non_terminated;
      continue;
    }
    if (!res.agreement) ++agg.disagreements;
    agg.rounds.add(static_cast<double>(res.max_round));
    agg.steps.add(static_cast<double>(res.steps));
    agg.flips.add(static_cast<double>(res.coin_flips));
  }
  return agg;
}

void tables() {
  std::cout << "E11 — asynchronous Ben-Or as the paper's context "
               "([BO83], [Asp97])\n\n";

  Table table("E11a: rounds vs fault budget, n = 32 (capped at 100·n² steps)");
  table.header({"t", "t/√n", "scheduler", "rounds(mean)", "steps(mean)",
                "coin flips", "capped", "agree"});
  const std::uint32_t n = 32;
  for (std::uint32_t t : {1u, 2u, 4u, 8u, 15u}) {
    for (bool adversarial : {false, true}) {
      const auto agg = run_batch(n, t, adversarial, 20, kSeed + t);
      table.row({static_cast<long long>(t),
                 static_cast<double>(t) / std::sqrt(double(n)),
                 std::string(adversarial ? "laggard" : "random"),
                 agg.rounds.mean(), agg.steps.mean(), agg.flips.mean(),
                 static_cast<long long>(agg.non_terminated),
                 std::string(agg.disagreements == 0 ? "yes" : "NO")});
    }
  }
  emit(table);
  std::cout << "  note: rounds stay O(1) for t = O(√n) and blow up as t\n"
               "  approaches n/2 under the adversarial scheduler (capped\n"
               "  runs) — exactly the [BO83] behaviour the paper cites.\n\n";

  Table flips("E11b: coin flips vs the Aspnes Ω(t²/log²t) curve, t = ⌈√n⌉");
  flips.header({"n", "t", "flips(mean)", "t²/ln²t", "ratio", "capped"});
  for (std::uint32_t nn : {32u, 64u, 128u, 256u}) {
    const auto t = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(nn))));
    const auto agg = run_batch(nn, t, true, 15, kSeed + nn);
    const double lt = std::log(std::max(2.0, static_cast<double>(t)));
    const double curve = static_cast<double>(t) * t / (lt * lt);
    flips.row({static_cast<long long>(nn), static_cast<long long>(t),
               agg.flips.mean(), curve, agg.flips.mean() / curve,
               static_cast<long long>(agg.non_terminated)});
  }
  emit(flips);

  std::cout
      << "  reading: the asynchronous protocol's cost is benign for small\n"
         "  t but the adversarial scheduler inflates it as t -> n/2; the\n"
         "  paper asks (and answers) what happens in the SYNCHRONOUS model\n"
         "  where [Asp97]'s argument does not apply.\n\n";
}

void BM_AsyncRun(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  BenOrAsyncFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ++seed;
    RandomScheduler sched(seed);
    AsyncEngineOptions opts;
    opts.t_budget = 4;
    opts.seed = seed;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_async(factory, inputs, sched, opts);
    ::benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_AsyncRun)->Arg(32)->Arg(128);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
