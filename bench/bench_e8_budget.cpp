// E8 — failure-budget accounting: the lower-bound adversary stays inside
// 4√(n·ln n)+1 crashes per round (adversary class B, §3.2); the upper-bound
// analysis says keeping SynRan alive costs ≳ √(p·ln p)/16 expected kills per
// 3-round block (Lemma 4.6 / Theorem 2). Ablation A3 contrasts the capped
// and uncapped adversary.
#include "bench_util.hpp"

#include <cmath>

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E8 — crashes per round: measured vs the paper's budgets "
               "(§3.2, Lemma 4.6)\n\n";

  Table table("E8a: per-round spend of the capped coin-bias adversary");
  table.header({"n", "t", "rounds", "crashes/round (mean)",
                "cap 4√(n·ln n)+1", "block spend /3 rounds",
                "√(p·ln p)/16 @ p=n"});
  SynRanFactory synran;
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    const std::uint32_t t = n / 2;
    SeedSequence seeds(kSeed + n);
    Xoshiro256 input_rng(seeds.stream(1));
    Summary per_round, rounds, total;
    const std::size_t reps = reps_for(n);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      CoinBiasAdversary adv({0.55, true, seeds.stream(100 + rep)});
      EngineOptions opts;
      opts.t_budget = t;
      opts.per_round_cap = static_cast<std::uint32_t>(
          theory::per_round_budget(static_cast<double>(n)));
      opts.seed = seeds.stream(5000 + rep);
      opts.max_rounds = 200000;
      auto inputs = make_inputs(n, InputPattern::Half, input_rng);
      const auto res = run_once(synran, inputs, adv, opts);
      rounds.add(static_cast<double>(res.rounds_to_decision));
      total.add(static_cast<double>(res.crashes_total));
      for (auto c : res.crashes_per_round)
        per_round.add(static_cast<double>(c));
    }
    const double lemma46 =
        std::sqrt(static_cast<double>(n) * std::log(double(n))) / 16.0;
    table.row({static_cast<long long>(n), static_cast<long long>(t),
               rounds.mean(), per_round.mean(),
               theory::per_round_budget(static_cast<double>(n)),
               3.0 * per_round.mean(), lemma46});
  }
  emit(table);

  Table abl("E8b (ablation A3): capped vs uncapped adversary, n = 1024");
  abl.header({"variant", "rounds(mean)", "crashes(mean)",
              "crashes/round"});
  const std::uint32_t n = 1024;
  for (bool capped : {true, false}) {
    const auto stats = attack_run(synran, n, n / 2, InputPattern::Half,
                                  reps_for(n), kSeed + (capped ? 1 : 2),
                                  capped);
    abl.row({std::string(capped ? "capped (class B)" : "uncapped"),
             stats.rounds_to_decision().mean(), stats.crashes_used().mean(),
             stats.crashes_used().mean() /
                 std::max(1.0, stats.rounds_to_decision().mean())});
  }
  emit(abl);

  Table stall("E8c: the 10%-rule after unanimity (Lemma 4.1)");
  stall.header({"stall enabled", "rounds(mean)", "crashes(mean)"});
  for (bool stall_opt : {false, true}) {
    const auto stats =
        attack_run(synran, 512, 511, InputPattern::AllOne, 60,
                   kSeed + (stall_opt ? 3 : 4), false, stall_opt);
    stall.row({std::string(stall_opt ? "yes" : "no"),
               stats.rounds_to_decision().mean(), stats.crashes_used().mean()});
  }
  emit(stall);
}

void BM_CoinBiasPlanning(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SynRanFactory factory;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    CoinBiasAdversary adv({0.55, true, ++seed});
    EngineOptions opts;
    opts.t_budget = n / 2;
    opts.seed = seed;
    opts.max_rounds = 200000;
    Xoshiro256 rng(seed);
    auto inputs = make_inputs(n, InputPattern::Half, rng);
    const auto res = run_once(factory, inputs, adv, opts);
    ::benchmark::DoNotOptimize(res.crashes_total);
  }
}
BENCHMARK(BM_CoinBiasPlanning)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
