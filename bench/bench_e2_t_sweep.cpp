// E2 — Theorem 3's t-dependence at fixed n: expected rounds grow linearly in
// t modulo the √ln(2+t/√n) correction. The final remark of §4 says the same
// protocol covers every t < n.
#include "bench_util.hpp"

#include <vector>

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E2 — round count vs fault budget t at fixed n "
               "(Theorem 3)\n\n";

  const std::uint32_t n = 1024;
  Table table("E2: n = 1024, t sweep, coin-bias adversary");
  table.header({"t", "t/√n", "reps", "rounds(mean)", "±stderr", "theory",
                "ratio"});

  std::vector<double> theory_pts, measured, ts;
  SynRanFactory factory;
  for (std::uint32_t t : {32u, 64u, 128u, 256u, 384u, 512u, 768u, 1023u}) {
    const auto stats = attack_run(factory, n, t, InputPattern::Half,
                                  reps_for(n), kSeed + t);
    const double th = theory::tight_round_bound(n, t);
    theory_pts.push_back(th);
    measured.push_back(stats.rounds_to_decision().mean());
    ts.push_back(t);
    table.row({static_cast<long long>(t),
               static_cast<double>(t) / 32.0,
               static_cast<long long>(stats.reps()),
               stats.rounds_to_decision().mean(),
               stats.rounds_to_decision().stderr_mean(), th,
               stats.rounds_to_decision().mean() / th});
    if (!stats.all_safe()) emit(table, false);
  }
  emit(table);

  const auto shape = fit_scale(theory_pts, measured);
  std::cout << "  shape fit against t/√(n·ln(2+t/√n)): scale = "
            << shape.scale << ", R² = " << shape.r2
            << ", ratio spread = " << shape.ratio_spread() << "\n";
  // The dominant behaviour is linear in t; report the linear fit too.
  const auto line = fit_linear(ts, measured);
  std::cout << "  raw linear fit: rounds ≈ " << line.slope << "·t + "
            << line.intercept << " (R² = " << line.r2 << ")\n\n";
}

void BM_TightBoundCurve(::benchmark::State& state) {
  double acc = 0;
  for (auto _ : state) {
    for (double t = 1; t < 1024; t += 1)
      acc += synran::theory::tight_round_bound(1024.0, t);
    ::benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TightBoundCurve);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
