// E14 (supplementary) — two cost views the paper leaves implicit:
//  * communication complexity: every protocol here broadcasts, so messages
//    ≈ (rounds × survivors²); SynRan's round advantage over the t+1
//    deterministic baseline translates directly into message savings;
//  * influence profiles of the one-round deciding functions ([BOL89]): the
//    structural quantity behind which games are cheap to control (E3/E4).
#include "bench_util.hpp"

#include <cmath>

#include "coin/influence.hpp"
#include "coin/recursive_games.hpp"
#include "protocols/floodmin.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E14 — message complexity and influence profiles\n\n";

  Table msg("E14a: messages delivered to decision (n = 128, mean)");
  msg.header({"t", "synran (coinbias)", "floodmin", "ratio"});
  const std::uint32_t n = 128;
  SynRanFactory synran;
  for (std::uint32_t t : {8u, 32u, 64u, 127u}) {
    // SynRan under attack.
    Summary sr_msgs;
    SeedSequence seeds(kSeed + t);
    Xoshiro256 input_rng(seeds.stream(1));
    for (std::size_t rep = 0; rep < 40; ++rep) {
      CoinBiasAdversary adv({0.55, true, seeds.stream(100 + rep)});
      EngineOptions opts;
      opts.t_budget = t;
      opts.seed = seeds.stream(5000 + rep);
      opts.max_rounds = 100000;
      auto inputs = make_inputs(n, InputPattern::Half, input_rng);
      const auto res = run_once(synran, inputs, adv, opts);
      sr_msgs.add(static_cast<double>(res.messages_delivered));
    }
    // FloodMin, failure-free (its message count is schedule-determined).
    FloodMinFactory flood({t, false});
    NoAdversary none;
    EngineOptions fopts;
    Xoshiro256 rng(kSeed);
    const auto fres =
        run_once(flood, make_inputs(n, InputPattern::Half, rng), none,
                 fopts);
    msg.row({static_cast<long long>(t), sr_msgs.mean(),
             static_cast<double>(fres.messages_delivered),
             static_cast<double>(fres.messages_delivered) /
                 std::max(1.0, sr_msgs.mean())});
  }
  emit(msg);

  Table infl("E14b: influence profiles of the §2 deciding functions");
  infl.header({"game", "n", "max I_i", "total I", "E[f]",
               "√(2/πn) anchor"});
  infl.precision(4);
  {
    const std::uint32_t gn = 15;
    MajorityPresentGame maj(gn);
    MajorityDefaultZeroGame mdz(gn);
    ParityPresentGame par(gn);
    LeaderBitGame lead(gn);
    TribesGame tribes(5, 3);
    RecursiveMajorityGame rec(2);
    const CoinGame* games[] = {&maj, &mdz, &par, &lead, &tribes, &rec};
    for (const CoinGame* g : games) {
      const auto prof = game_influences(*g);
      infl.row({std::string(g->name()),
                static_cast<long long>(g->players()), prof.max(),
                prof.total(), prof.expectation,
                std::sqrt(2.0 / (M_PI * g->players()))});
    }
  }
  emit(infl);
  std::cout
      << "  reading: high-influence functions (leader, parity) hand the\n"
         "  adversary cheap control; majority spreads influence to the\n"
         "  √(2/πn) floor — which is why its control price is Θ(√n)\n"
         "  hidings (E3/E4) and why the paper prices a ROUND of SynRan at\n"
         "  Θ(√(n·log n)) kills.\n\n";
}

void BM_Influences(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  MajorityPresentGame game(n);
  for (auto _ : state) {
    const auto prof = game_influences(game);
    ::benchmark::DoNotOptimize(prof.expectation);
  }
}
BENCHMARK(BM_Influences)->Arg(15)->Arg(19);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
