// E6 — Lemma 4.4 / Corollary 4.5: the non-asymptotic binomial deviation
// bound Pr(x − E(x) ≥ t√n) ≥ e^{−4(t+1)²}/√(2π), validated against the
// exact tail and a Monte-Carlo estimate, plus the Hoeffding upper bound for
// scale.
#include "bench_util.hpp"

#include <cmath>

#include "analysis/binomial.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E6 — large-deviation bound (Lemma 4.4, Corollary 4.5)\n\n";

  Table table("E6a: exact binomial tail vs the paper's lower bound");
  table.header({"n", "t", "threshold k", "exact tail", "lemma 4.4 LB",
                "exact/LB", "hoeffding UB"});
  for (std::uint64_t n : {64u, 256u, 1024u, 4096u}) {
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    for (double t : {0.25, 0.5, 1.0, std::sqrt(std::log(double(n))) / 8.0}) {
      if (t >= sqrt_n / 8.0) continue;
      const auto k = static_cast<std::uint64_t>(
          std::ceil(n / 2.0 + t * sqrt_n));
      const double exact = binomial_upper_tail(n, k, 0.5);
      const double lb = lemma44_lower_bound(t);
      table.row({static_cast<long long>(n), t, static_cast<long long>(k),
                 exact, lb, exact / lb,
                 hoeffding_upper_bound(static_cast<double>(n),
                                       t * sqrt_n)});
    }
  }
  table.precision(6);
  emit(table);

  Table cor("E6b: Corollary 4.5 — Pr(x−E(x) ≥ √(n·ln n)/8) ≥ √(ln n/n)");
  cor.header({"n", "exact tail", "√(ln n/n)", "holds", "MC estimate"});
  for (std::uint64_t n : {256u, 1024u, 4096u}) {
    const double thresh = std::sqrt(n * std::log(double(n))) / 8.0;
    const auto k =
        static_cast<std::uint64_t>(std::ceil(n / 2.0 + thresh));
    const double exact = binomial_upper_tail(n, k, 0.5);
    const double target = std::sqrt(std::log(double(n)) / double(n));

    // Monte-Carlo cross-check of the exact computation.
    Xoshiro256 rng(kSeed + n);
    const int reps = 20000;
    int hits = 0;
    for (int rep = 0; rep < reps; ++rep) {
      std::uint64_t ones = 0;
      for (std::uint64_t i = 0; i < n; i += 64) {
        const std::uint64_t chunk = std::min<std::uint64_t>(64, n - i);
        const std::uint64_t word =
            chunk == 64 ? rng.next() : (rng.next() >> (64 - chunk));
        ones += static_cast<std::uint64_t>(__builtin_popcountll(word));
      }
      if (ones >= k) ++hits;
    }
    cor.row({static_cast<long long>(n), exact, target,
             std::string(exact >= target ? "yes" : "NO"),
             static_cast<double>(hits) / reps});
  }
  cor.precision(5);
  emit(cor);
}

void BM_ExactTail(::benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const double tail = binomial_upper_tail(n, n / 2 + n / 32, 0.5);
    ::benchmark::DoNotOptimize(tail);
  }
}
BENCHMARK(BM_ExactTail)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
