// E4 — §2's one-sidedness: majority-with-default-0 can be pushed toward 0
// with Θ(√n) hidings but can never be pushed toward 1 — the structural fact
// SynRan's Z=0 rule is built on.
#include "bench_util.hpp"

#include <cmath>

#include "coin/forcing.hpp"
#include "coin/games.hpp"

namespace synran::bench {
namespace {

void tables() {
  std::cout << "E4 — one-side bias of majority-with-default-0 (§2)\n\n";

  Table table("E4a: forceability of each direction, budget 4√(n·ln n)");
  table.header({"n", "budget", "Pr(U^0)", "Pr(U^1)",
                "Pr(draw is 1-majority)", "note"});
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    const auto budget = static_cast<std::uint32_t>(
        4.0 * std::sqrt(n * std::log(static_cast<double>(n))));
    MajorityDefaultZeroGame game(n);
    const auto est = estimate_control(game, budget, 500, kSeed + n);
    // Pr(U^1) must equal the probability the draw already lost: forcing 1
    // is impossible once the visible 1s are not a majority.
    Xoshiro256 rng(kSeed + n);
    std::size_t already_one = 0;
    std::vector<GameValue> v;
    DynBitset none(n);
    for (int s = 0; s < 500; ++s) {
      game.sample(rng, v);
      if (game.outcome(v, none) == 1) ++already_one;
    }
    table.row({static_cast<long long>(n), static_cast<long long>(budget),
               est.pr_unforceable[0], est.pr_unforceable[1],
               1.0 - static_cast<double>(already_one) / 500.0,
               std::string("U^1 ≈ Pr(not already 1)")});
  }
  emit(table);

  // Cost of the cheap direction: the hiding set needed to force 0 is the
  // 1-surplus, which concentrates at Θ(√n).
  Table cost("E4b: witness size to force 0 (when not already 0)");
  cost.header({"n", "mean |hiding|", "p90 |hiding|", "√n", "mean/√n"});
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    MajorityDefaultZeroGame game(n);
    Xoshiro256 rng(kSeed + 3 * n);
    std::vector<GameValue> v;
    std::vector<double> sizes;
    Summary s;
    for (int rep = 0; rep < 400; ++rep) {
      game.sample(rng, v);
      const auto res = can_force(game, v, 0, n);
      if (!res.forced || res.hiding.count() == 0) continue;
      s.add(static_cast<double>(res.hiding.count()));
      sizes.push_back(static_cast<double>(res.hiding.count()));
    }
    const double rt = std::sqrt(static_cast<double>(n));
    cost.row({static_cast<long long>(n), s.mean(),
              sizes.empty() ? 0.0 : quantile(sizes, 0.9), rt,
              s.mean() / rt});
  }
  emit(cost);

  // Contrast: the symmetric game is cheap in BOTH directions.
  Table sym("E4c: symmetric majority needs Θ(√n) either way");
  sym.header({"n", "mean |hiding| → 0", "mean |hiding| → 1"});
  for (std::uint32_t n : {256u, 1024u}) {
    MajorityPresentGame game(n);
    Xoshiro256 rng(kSeed + 5 * n);
    std::vector<GameValue> v;
    Summary to0, to1;
    for (int rep = 0; rep < 300; ++rep) {
      game.sample(rng, v);
      for (std::uint32_t target = 0; target < 2; ++target) {
        const auto res = can_force(game, v, target, n);
        if (res.forced && res.hiding.count() > 0)
          (target == 0 ? to0 : to1)
              .add(static_cast<double>(res.hiding.count()));
      }
    }
    sym.row({static_cast<long long>(n), to0.mean(), to1.mean()});
  }
  emit(sym);
}

void BM_ForceZero(::benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  MajorityDefaultZeroGame game(n);
  Xoshiro256 rng(1);
  std::vector<GameValue> v;
  game.sample(rng, v);
  for (auto _ : state) {
    const auto res = can_force(game, v, 0, n);
    ::benchmark::DoNotOptimize(res.forced);
  }
}
BENCHMARK(BM_ForceZero)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace synran::bench

SYNRAN_BENCH_MAIN(synran::bench::tables)
