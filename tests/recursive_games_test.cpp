// Tests for the structured coin-flipping games (recursive majority-of-3 and
// tribes) and their interaction with the forcing search.
#include <gtest/gtest.h>

#include "coin/forcing.hpp"
#include "coin/recursive_games.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

std::vector<GameValue> vals(std::initializer_list<int> xs) {
  std::vector<GameValue> out;
  for (int x : xs) out.push_back(static_cast<GameValue>(x));
  return out;
}

// ------------------------------------------------------ recursive majority

TEST(RecursiveMajorityTest, HeightOneIsPlainMajority) {
  RecursiveMajorityGame g(1);
  EXPECT_EQ(g.players(), 3u);
  const DynBitset none(3);
  EXPECT_EQ(g.outcome(vals({1, 1, 0}), none), 1u);
  EXPECT_EQ(g.outcome(vals({1, 0, 0}), none), 0u);
}

TEST(RecursiveMajorityTest, HeightTwoComposesMajorities) {
  RecursiveMajorityGame g(2);
  EXPECT_EQ(g.players(), 9u);
  const DynBitset none(9);
  // Blocks (1,1,0)=1, (0,0,1)=0, (1,0,1)=1 -> majority(1,0,1) = 1.
  EXPECT_EQ(g.outcome(vals({1, 1, 0, 0, 0, 1, 1, 0, 1}), none), 1u);
  // Blocks 0,1,0 -> 0.
  EXPECT_EQ(g.outcome(vals({0, 0, 1, 1, 1, 0, 0, 1, 0}), none), 0u);
}

TEST(RecursiveMajorityTest, HiddenLeavesDefaultToZero) {
  RecursiveMajorityGame g(1);
  DynBitset hidden(3);
  hidden.set(0);
  // (—,1,0) with default 0 -> majority(0,1,0) = 0.
  EXPECT_EQ(g.outcome(vals({1, 1, 0}), hidden), 0u);
}

TEST(RecursiveMajorityTest, OneSided) {
  // Like majority-default-0: hiding can never turn a 0 outcome into 1.
  RecursiveMajorityGame g(2);
  Xoshiro256 rng(3);
  std::vector<GameValue> v;
  const DynBitset none(9);
  int checked = 0;
  for (int rep = 0; rep < 40; ++rep) {
    g.sample(rng, v);
    if (g.outcome(v, none) == 1) continue;
    const auto res = can_force(g, v, 1, 9);
    EXPECT_FALSE(res.forced);
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(RecursiveMajorityTest, ForcingZeroNeedsOnePerCriticalPath) {
  // All-ones tree of height 2: flipping the root needs two blocks broken,
  // each by hiding 2 leaves (hidden -> 0, block majority needs two zeros).
  RecursiveMajorityGame g(2);
  const auto v = vals({1, 1, 1, 1, 1, 1, 1, 1, 1});
  ForcingOptions fo;
  fo.exhaustive_max_players = 9;
  fo.exhaustive_max_budget = 4;
  EXPECT_FALSE(can_force(g, v, 0, 3, fo).forced);
  const auto res = can_force(g, v, 0, 4, fo);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 4u);
  EXPECT_EQ(g.outcome(v, res.hiding), 0u);
}

TEST(RecursiveMajorityTest, GuardsHeight) {
  EXPECT_THROW(RecursiveMajorityGame(0), ArgumentError);
  EXPECT_THROW(RecursiveMajorityGame(11), ArgumentError);
}

// ------------------------------------------------------------------ tribes

TEST(TribesTest, OutcomeIsOrOfAnds) {
  TribesGame g(2, 3);
  const DynBitset none(6);
  EXPECT_EQ(g.outcome(vals({1, 1, 1, 0, 0, 0}), none), 1u);
  EXPECT_EQ(g.outcome(vals({1, 1, 0, 0, 1, 1}), none), 0u);
  EXPECT_EQ(g.outcome(vals({0, 0, 0, 1, 1, 1}), none), 1u);
}

TEST(TribesTest, OneHidingVetoesABlock) {
  TribesGame g(2, 2);
  const auto v = vals({1, 1, 0, 1});
  const auto res = can_force(g, v, 0, 1);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 1u);
  EXPECT_EQ(g.outcome(v, res.hiding), 0u);
}

TEST(TribesTest, ForcingZeroCostsOnePerWinningBlock) {
  TribesGame g(3, 2);
  const auto v = vals({1, 1, 1, 1, 0, 1});  // two winning blocks
  EXPECT_FALSE(can_force(g, v, 0, 1).forced);
  const auto res = can_force(g, v, 0, 2);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 2u);
}

TEST(TribesTest, CannotForceOne) {
  TribesGame g(2, 2);
  const auto v = vals({1, 0, 0, 1});
  const auto res = can_force(g, v, 1, 4);
  EXPECT_FALSE(res.forced);
  EXPECT_TRUE(res.exact);
}

TEST(TribesTest, AlreadyWinningNeedsNoHiding) {
  TribesGame g(2, 2);
  const auto v = vals({1, 1, 0, 0});
  const auto res = can_force(g, v, 1, 0);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 0u);
}

TEST(TribesTest, ControlIsHeavilyZeroBiased) {
  // Wide blocks make a winning block unlikely, so Pr(U^1) is large while
  // Pr(U^0) is near zero (vetoes are cheap).
  TribesGame g(8, 8);
  const auto est = estimate_control(g, 8, 300, 5);
  EXPECT_LT(est.pr_unforceable[0], 0.01);
  EXPECT_GT(est.pr_unforceable[1], 0.5);
  EXPECT_EQ(est.best_outcome(), 0u);
}

TEST(TribesTest, GuardsShape) {
  EXPECT_THROW(TribesGame(0, 3), ArgumentError);
  EXPECT_THROW(TribesGame(3, 0), ArgumentError);
  EXPECT_THROW(TribesGame(100, 100), ArgumentError);
}

}  // namespace
}  // namespace synran
