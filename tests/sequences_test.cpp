// Multi-round execution-sequence tests: decide/rescind/re-decide chains,
// deterministic-stage entry paths, engine boundary behaviour, and valency
// engine determinism — the scenarios that span several of the paper's rules
// at once.
#include <gtest/gtest.h>

#include "adversary/basic.hpp"
#include "common/check.hpp"
#include "lowerbound/valency.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

Receipt bit_receipt(std::uint32_t ones, std::uint32_t zeros) {
  Receipt r;
  r.count = ones + zeros;
  r.ones = ones;
  r.zeros = zeros;
  r.or_mask = (ones ? payload::kSupports1 : 0) |
              (zeros ? payload::kSupports0 : 0);
  return r;
}

std::optional<Payload> step(SynRanProcess& p, const Receipt& r,
                            std::vector<bool> tape = {}) {
  TapeCoinSource coins(std::move(tape));
  return p.on_round(&r, coins);
}

// ----------------------------------------------- decide/rescind sequences

TEST(SynRanSequences, FullRescindCycleEndsInStop) {
  SynRanProcess p(0, 100, Bit::Zero, {});
  TapeCoinSource init;
  (void)p.on_round(nullptr, init);

  (void)step(p, bit_receipt(80, 20));        // decide 1 (N^1=100)
  ASSERT_TRUE(p.decided());
  (void)step(p, bit_receipt(70, 10), {});    // N^2=80: diff=20>10 rescind;
                                             // 700 > 6·100 ⇒ propose 1
  ASSERT_FALSE(p.decided());
  EXPECT_EQ(p.estimate(), Bit::One);
  (void)step(p, bit_receipt(70, 10));        // N^3=80: 700 > 7·80 ⇒ decide
  ASSERT_TRUE(p.decided());
  (void)step(p, bit_receipt(70, 10));        // N^4=80: diff=N^1−N^4=20,
                                             // 10·20 > N^2=80 ⇒ rescind;
                                             // 700 > 7·80=560 ⇒ decide again
  ASSERT_TRUE(p.decided());
  // N^5=80: diff = N^2−N^5 = 0 ≤ N^3/10 ⇒ STOP.
  const auto out = step(p, bit_receipt(70, 10));
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(p.halted());
  EXPECT_EQ(p.decision(), Bit::One);
}

TEST(SynRanSequences, CoinRunsUntilThresholdBreaks) {
  // A long streak of coin-window receipts: exactly one flip per round, b
  // follows the tape, and nothing decides until the counts leave the
  // window.
  SynRanProcess p(0, 100, Bit::Zero, {});
  TapeCoinSource init;
  (void)p.on_round(nullptr, init);

  const bool tape[] = {true, false, true, true, false};
  std::uint32_t count = 100;
  for (bool coin : tape) {
    const auto out = step(p, bit_receipt(count * 55 / 100,
                                         count - count * 55 / 100),
                          {coin});
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, payload::of_bit(coin ? Bit::One : Bit::Zero));
    EXPECT_FALSE(p.decided());
    EXPECT_TRUE(p.view().flipped_coin);
  }
  // Leave the window: a decisive receipt.
  (void)step(p, bit_receipt(90, 10));
  EXPECT_TRUE(p.decided());
}

TEST(SynRanSequences, SymmetricModeRescindsToo) {
  SynRanOptions o;
  o.coin_rule = CoinRule::Symmetric;
  SynRanProcess p(0, 100, Bit::Zero, o);
  TapeCoinSource init;
  (void)p.on_round(nullptr, init);
  (void)step(p, bit_receipt(80, 20));  // 800 > 7·100 ⇒ decide 1
  ASSERT_TRUE(p.decided());
  (void)step(p, bit_receipt(50, 10));  // N^2=60: diff=40 > N^0/10 ⇒ rescind;
                                       // 500 > 7·60=420 ⇒ decide again
  EXPECT_TRUE(p.decided());
}

// ------------------------------------------------- det-stage entry paths

TEST(SynRanSequences, DetStageEntryWhileDecided) {
  // A process that decided earlier still honours the hand-off check first
  // (pseudocode order), entering the deterministic stage without stopping.
  SynRanProcess p(0, 100, Bit::Zero, {});
  TapeCoinSource init;
  (void)p.on_round(nullptr, init);
  (void)step(p, bit_receipt(80, 20));  // decide 1
  ASSERT_TRUE(p.decided());
  // Count below √(100/ln 100) ≈ 4.66 ⇒ hand-off beats the stop check.
  const auto out = step(p, bit_receipt(3, 1));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(*out & payload::kDeterministicFlag);
  EXPECT_TRUE(p.in_deterministic_stage());
  EXPECT_FALSE(p.halted());
}

TEST(SynRanSequences, DetStageAllOnesDecidesOne) {
  SynRanProcess p(0, 100, Bit::One, {});
  TapeCoinSource init;
  (void)p.on_round(nullptr, init);
  (void)step(p, bit_receipt(4, 0));  // hand-off
  auto out = step(p, bit_receipt(4, 0));  // sync round: only 1s
  for (int i = 0; i < 12 && out.has_value(); ++i)
    out = step(p, bit_receipt(4, 0));
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(p.decision(), Bit::One);
}

TEST(SynRanSequences, DetMarginExtendsFloodLength) {
  SynRanOptions longer;
  longer.det_margin = 5;
  SynRanProcess a(0, 100, Bit::One, {});
  SynRanProcess b(0, 100, Bit::One, longer);
  TapeCoinSource c1, c2;
  (void)a.on_round(nullptr, c1);
  (void)b.on_round(nullptr, c2);
  (void)step(a, bit_receipt(4, 0));
  (void)step(b, bit_receipt(4, 0));
  int rounds_a = 0, rounds_b = 0;
  for (int i = 0; i < 30; ++i) {
    if (step(a, bit_receipt(4, 0)).has_value()) ++rounds_a; else break;
  }
  for (int i = 0; i < 30; ++i) {
    if (step(b, bit_receipt(4, 0)).has_value()) ++rounds_b; else break;
  }
  EXPECT_EQ(rounds_b - rounds_a, 3);  // margin 5 vs default 2
}

// ------------------------------------------------------- engine boundary

TEST(EngineBoundary, HaltedProcessesReceiveNothing) {
  // After a FloodMin run completes, re-running with a larger max_rounds
  // changes nothing: halted processes take no further steps.
  FloodMinFactory factory({1, false});
  NoAdversary none;
  EngineOptions opts;
  opts.max_rounds = 10;
  const auto a = run_once(factory, {Bit::One, Bit::Zero, Bit::One}, none,
                          opts);
  opts.max_rounds = 10000;
  const auto b = run_once(factory, {Bit::One, Bit::Zero, Bit::One}, none,
                          opts);
  EXPECT_EQ(a.rounds_to_halt, b.rounds_to_halt);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(EngineBoundary, MaxRoundsExactlyAtCompletionStillTerminates) {
  FloodMinFactory factory({2, false});  // halts during phase A of round 4
  NoAdversary none;
  EngineOptions opts;
  opts.max_rounds = 4;
  const auto res =
      run_once(factory, {Bit::One, Bit::Zero, Bit::One, Bit::One}, none,
               opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.rounds_to_halt, 3u);
}

TEST(EngineBoundary, CrashesPerRoundVectorMatchesTotal) {
  SynRanFactory factory;
  RandomCrashAdversary adv({3, 0.9, 77});
  EngineOptions opts;
  opts.t_budget = 12;
  opts.seed = 5;
  const auto res = run_once(
      factory, std::vector<Bit>(24, Bit::One), adv, opts);
  std::uint32_t acc = 0;
  for (auto c : res.crashes_per_round) acc += c;
  EXPECT_EQ(acc, res.crashes_total);
}

TEST(EngineBoundary, MessageCountMatchesHandComputation) {
  // FloodMin n=4, t=1, no faults: rounds 1 and 2 deliver 4×4 each.
  FloodMinFactory factory({1, false});
  NoAdversary none;
  const auto res = run_once(
      factory, std::vector<Bit>(4, Bit::One), none, {});
  EXPECT_EQ(res.messages_delivered, 32u);
}

// --------------------------------------------------- valency determinism

TEST(ValencyDeterminism, RepeatedEvaluationIsIdentical) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 10;
  const std::vector<Bit> inputs{Bit::Zero, Bit::One, Bit::One};
  const auto a = evaluate_initial_state(factory, inputs, opts);
  const auto b = evaluate_initial_state(factory, inputs, opts);
  EXPECT_EQ(a.min_r.lo, b.min_r.lo);
  EXPECT_EQ(a.min_r.hi, b.min_r.hi);
  EXPECT_EQ(a.max_r.lo, b.max_r.lo);
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.states_visited, b.states_visited);
}

TEST(ValencyDeterminism, DeeperHorizonOnlyTightens) {
  SynRanFactory factory;
  const std::vector<Bit> inputs{Bit::Zero, Bit::One, Bit::One};
  ValencyOptions shallow, deep;
  shallow.t_budget = deep.t_budget = 1;
  shallow.max_depth = 4;
  deep.max_depth = 12;
  const auto s = evaluate_initial_state(factory, inputs, shallow);
  const auto d = evaluate_initial_state(factory, inputs, deep);
  EXPECT_LE(s.min_r.lo, d.min_r.lo + 1e-12);
  EXPECT_GE(s.min_r.hi, d.min_r.hi - 1e-12);
  EXPECT_LE(s.max_r.lo, d.max_r.lo + 1e-12);
  EXPECT_GE(s.max_r.hi, d.max_r.hi - 1e-12);
}

TEST(ValencyDeterminism, FloodMinNEquals4IsExact) {
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 7;
  const auto v = evaluate_initial_state(
      factory, {Bit::Zero, Bit::One, Bit::One, Bit::One}, opts);
  EXPECT_TRUE(v.min_r.exact());
  EXPECT_TRUE(v.max_r.exact());
  EXPECT_DOUBLE_EQ(v.min_r.lo, 0.0);
  EXPECT_DOUBLE_EQ(v.max_r.lo, 1.0);  // hide the 0 entirely ⇒ decide 1
  EXPECT_FALSE(v.saw_disagreement);
}

}  // namespace
}  // namespace synran
