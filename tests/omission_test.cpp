// Tests for the omission-fault layer: auditor rejection of every malformed
// omission plan, engine-side budget accounting, the ChaosAdversary /
// OmissionAdversary injectors, and the additive (conditional) trace fields.
// Suite names start with Omission/Chaos/Faults so CI's sanitizer job can pick
// them up with `ctest -R "^Faults|^Omission|^Chaos"`.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/basic.hpp"
#include "adversary/omission.hpp"
#include "common/check.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

std::vector<Bit> half_inputs(std::uint32_t n) {
  std::vector<Bit> inputs(n, Bit::Zero);
  for (std::uint32_t i = n / 2; i < n; ++i) inputs[i] = Bit::One;
  return inputs;
}

/// Adversary built from a lambda (mirrors the audit_test helper).
class LambdaAdversary final : public Adversary {
 public:
  explicit LambdaAdversary(std::function<FaultPlan(const WorldView&)> fn)
      : fn_(std::move(fn)) {}
  FaultPlan plan_round(const WorldView& w) override { return fn_(w); }
  const char* name() const override { return "lambda"; }

 private:
  std::function<FaultPlan(const WorldView&)> fn_;
};

std::string run_expecting_audit_error(Adversary& adv, EngineOptions opts,
                                      std::uint32_t n = 8) {
  SynRanFactory factory;
  try {
    run_once(factory, half_inputs(n), adv, opts);
  } catch (const InvariantError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an InvariantError";
  return {};
}

/// Omits the lowest-id sender for everyone else, every round, regardless of
/// the budget the world grants.
FaultPlan omit_first_sender(const WorldView& w) {
  FaultPlan plan;
  for (ProcessId p = 0; p < w.n(); ++p) {
    if (w.sending(p)) {
      DynBitset drop(w.n(), true);
      drop.reset(p);
      plan.omissions.push_back({p, drop});
      break;
    }
  }
  return plan;
}

// ------------------------------------------------ auditor rejection classes

TEST(OmissionAudit, ForbiddenUnderFailStopDefault) {
  LambdaAdversary adv(omit_first_sender);
  EngineOptions opts;  // omission_budget stays 0
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("exceeding the omission budget 0"), std::string::npos)
      << what;
  EXPECT_NE(what.find("omissions are forbidden under the fail-stop model"),
            std::string::npos)
      << what;
}

TEST(OmissionAudit, GlobalBudgetIsEnforced) {
  // One directive per round against a budget of 2: round 3's plan must die.
  LambdaAdversary adv(omit_first_sender);
  EngineOptions opts;
  opts.omission_budget = 2;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("round 3"), std::string::npos) << what;
  EXPECT_NE(what.find("exceeding the omission budget 2"), std::string::npos)
      << what;
}

TEST(OmissionAudit, PerRoundCapIsEnforced) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.omissions.push_back({0, DynBitset(w.n())});
    plan.omissions.push_back({1, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.omission_budget = 10;
  opts.omission_round_cap = 1;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("per-round omission cap is 1"), std::string::npos)
      << what;
}

TEST(OmissionAudit, CrashOmitOverlapIsRejected) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    plan.omissions.push_back({0, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  opts.omission_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("both crashed and omitted"), std::string::npos) << what;
}

TEST(OmissionAudit, NonSenderOmissionIsRejected) {
  // Crash 0 in round 1, then try to omit its (nonexistent) round-2 message.
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    if (w.round() == 1) plan.crashes.push_back({0, DynBitset(w.n())});
    if (w.round() == 2) plan.omissions.push_back({0, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  opts.omission_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("round 2"), std::string::npos) << what;
  EXPECT_NE(what.find("not sending this round"), std::string::npos) << what;
}

TEST(OmissionAudit, DuplicateOmissionSenderIsRejected) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.omissions.push_back({2, DynBitset(w.n())});
    plan.omissions.push_back({2, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.omission_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("appears twice"), std::string::npos) << what;
}

TEST(OmissionAudit, WrongDropForSizeIsRejected) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.omissions.push_back({0, DynBitset(w.n() + 1)});
    return plan;
  });
  EngineOptions opts;
  opts.omission_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("drop_for"), std::string::npos) << what;
}

TEST(OmissionAudit, AuditedAdversaryTracksOmissionSpend) {
  // The wrapper adopts the omission budget from the first WorldView and must
  // agree with the engine's arithmetic for the whole run.
  ChaosAdversary chaos({0.4, 0xc0ffee});
  AuditedAdversary audited(chaos);
  SynRanFactory factory;
  EngineOptions opts;
  opts.omission_budget = 40;
  opts.seed = 5;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(16), audited, opts));
  EXPECT_EQ(audited.auditor().omissions_so_far(), res.omissions_total);
  EXPECT_LE(res.omissions_total, 40u);
}

// -------------------------------------------------- chaos injector behavior

TEST(ChaosInjector, RespectsBudgetAndReportsSpend) {
  SynRanFactory factory;
  ChaosAdversary chaos({0.5, 42});
  EngineOptions opts;
  opts.omission_budget = 3;
  opts.seed = 9;
  const auto res = run_once(factory, half_inputs(16), chaos, opts);
  EXPECT_LE(res.omissions_total, 3u);
  EXPECT_EQ(chaos.omissions_spent(), res.omissions_total);
}

TEST(ChaosInjector, DropsLinksUnderGenerousBudget) {
  SynRanFactory factory;
  ChaosAdversary chaos({0.5, 42});
  EngineOptions opts;
  opts.omission_budget = 1000000;
  opts.seed = 9;
  const auto res = run_once(factory, half_inputs(16), chaos, opts);
  EXPECT_GT(res.omissions_total, 0u);
  EXPECT_GT(res.messages_omitted, 0u);
  EXPECT_EQ(chaos.omissions_spent(), res.omissions_total);
}

TEST(ChaosInjector, ZeroRateMatchesNoAdversary) {
  SynRanFactory factory;
  EngineOptions opts;
  opts.omission_budget = 1000;
  opts.seed = 11;
  NoAdversary none;
  const auto baseline = run_once(factory, half_inputs(12), none, opts);
  ChaosAdversary calm({0.0, 42});
  const auto chaotic = run_once(factory, half_inputs(12), calm, opts);
  EXPECT_EQ(chaotic.omissions_total, 0u);
  EXPECT_EQ(chaotic.messages_omitted, 0u);
  EXPECT_EQ(chaotic.rounds_to_decision, baseline.rounds_to_decision);
  EXPECT_EQ(chaotic.rounds_to_halt, baseline.rounds_to_halt);
  EXPECT_EQ(chaotic.messages_delivered, baseline.messages_delivered);
}

TEST(ChaosInjector, RejectsDropRateOutsideUnitInterval) {
  ChaosAdversary chaos({1.5, 42});
  EXPECT_THROW(chaos.begin(8, 0), ArgumentError);
  ChaosAdversary negative({-0.1, 42});
  EXPECT_THROW(negative.begin(8, 0), ArgumentError);
}

TEST(ChaosInjector, ComposesWithInnerCrashAdversary) {
  // Chaos keeps the inner plan's crashes and never overlaps them with
  // omissions, so the combined plan must pass the engine's auditor.
  SynRanFactory factory;
  ChaosAdversary chaos(
      {0.3, 7}, std::make_unique<RandomCrashAdversary>(
                    RandomCrashAdversary::Options{1, 0.6, 123}));
  EngineOptions opts;
  opts.t_budget = 2;
  opts.omission_budget = 500;
  opts.seed = 3;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(16), chaos, opts));
  EXPECT_LE(res.crashes_total, 2u);
  EXPECT_LE(res.omissions_total, 500u);
}

TEST(ChaosDeterminism, BitIdenticalAtAnyThreadCount) {
  RepeatSpec spec;
  spec.n = 24;
  spec.pattern = InputPattern::Half;
  spec.reps = 10;
  spec.seed = 0x0515;
  spec.engine.omission_budget = 100000;
  SynRanFactory factory;
  const AdversaryFactory chaos = [](std::uint64_t s) {
    return std::make_unique<ChaosAdversary>(ChaosOptions{0.2, s});
  };
  spec.threads = 1;
  const std::string serial =
      run_repeated(factory, chaos, spec).metrics().to_json().dump();
  const std::string serial_again =
      run_repeated(factory, chaos, spec).metrics().to_json().dump();
  EXPECT_EQ(serial, serial_again);
  for (unsigned threads : {2u, 4u}) {
    spec.threads = threads;
    const std::string parallel =
        run_repeated(factory, chaos, spec).metrics().to_json().dump();
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

// ------------------------------------------------ targeted omission attack

TEST(OmissionAttack, SpendMatchesEngineCounters) {
  SynRanFactory factory;
  OmissionAdversary attack(OmissionAttackOptions{0.55, 21});
  EngineOptions opts;
  opts.omission_budget = 200;
  opts.seed = 17;
  opts.max_rounds = 50000;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(20), attack, opts));
  EXPECT_EQ(attack.omissions_spent(), res.omissions_total);
  EXPECT_LE(res.omissions_total, 200u);
}

TEST(OmissionAttack, StandsDownWithoutBudget) {
  SynRanFactory factory;
  OmissionAdversary attack(OmissionAttackOptions{0.55, 21});
  EngineOptions opts;  // omission_budget 0: the attacker must emit nothing
  opts.seed = 17;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(20), attack, opts));
  EXPECT_EQ(res.omissions_total, 0u);
  EXPECT_EQ(attack.omissions_spent(), 0u);
}

// -------------------------------------------------- conditional trace fields

TEST(OmissionTrace, FieldsEmittedOnlyUnderAnOmissionBudget) {
  SynRanFactory factory;
  EngineOptions opts;
  opts.seed = 23;

  std::ostringstream plain;
  {
    obs::JsonlTraceWriter writer(plain);
    opts.observer = &writer;
    NoAdversary none;
    run_once(factory, half_inputs(10), none, opts);
  }
  // Fail-stop default: no omission vocabulary anywhere in the stream.
  EXPECT_EQ(plain.str().find("omission"), std::string::npos);
  EXPECT_EQ(plain.str().find("omitted"), std::string::npos);

  std::ostringstream chaotic;
  {
    obs::JsonlTraceWriter writer(chaotic);
    opts.observer = &writer;
    opts.omission_budget = 50;
    ChaosAdversary chaos({0.4, 31});
    run_once(factory, half_inputs(10), chaos, opts);
  }
  EXPECT_NE(chaotic.str().find("\"omission_budget\":50"), std::string::npos);
  EXPECT_NE(chaotic.str().find("\"omissions\":"), std::string::npos);
  EXPECT_NE(chaotic.str().find("\"omitted\":"), std::string::npos);
}

}  // namespace
}  // namespace synran
