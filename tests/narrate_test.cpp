// Tests for the execution narrator.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/basic.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "runner/narrate.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace synran {
namespace {

Trace traced_run(Adversary& inner, std::uint32_t n, std::uint32_t t,
                 std::uint64_t seed) {
  TracingAdversary tracer(inner);
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  Xoshiro256 rng(seed);
  const auto inputs = make_inputs(n, InputPattern::Half, rng);
  (void)run_once(factory, inputs, tracer, opts);
  return tracer.trace();
}

TEST(NarrateTest, EmitsHeaderAndOneLinePerRound) {
  NoAdversary none;
  const Trace tr = traced_run(none, 16, 0, 1);
  std::ostringstream os;
  NarrateOptions opts;
  opts.collapse_repeats = false;
  narrate(tr, os, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("n = 16"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  // One line per round plus the header.
  std::size_t lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, tr.rounds.size() + 1);
}

TEST(NarrateTest, CollapsesIdenticalRounds) {
  // A deterministic all-ones run repeats its shape; collapsed output must
  // be shorter than the uncollapsed one when repeats exist.
  NoAdversary none;
  TracingAdversary tracer(none);
  SynRanFactory factory;
  EngineOptions opts;
  (void)run_once(factory, std::vector<Bit>(8, Bit::One), tracer, opts);

  std::ostringstream collapsed, full;
  narrate(tracer.trace(), collapsed, {true, 10});
  narrate(tracer.trace(), full, {false, 10});
  EXPECT_LE(collapsed.str().size(), full.str().size());
}

TEST(NarrateTest, MarksCrashes) {
  StaticCrashAdversary adv({{1, 0, {}}});
  const Trace tr = traced_run(adv, 12, 1, 3);
  std::ostringstream os;
  narrate(tr, os);
  EXPECT_NE(os.str().find("CRASH x1"), std::string::npos);
}

TEST(NarrateTest, BarReflectsComposition) {
  RoundTrace all_ones;
  all_ones.round = 1;
  all_ones.alive = all_ones.senders = all_ones.ones = 4;
  Trace tr;
  tr.n = 4;
  tr.rounds.push_back(all_ones);
  std::ostringstream os;
  narrate(tr, os, {false, 8});
  EXPECT_NE(os.str().find("[11111111]"), std::string::npos);
}

}  // namespace
}  // namespace synran
