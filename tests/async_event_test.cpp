// Tests for the event-driven core's clock layer: EventList determinism and
// FIFO tiebreaking, Trigger composition, the delay models (fixed, seeded
// uniform, adversary-held, GST clamping), and the async run auditor's
// violation detection.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "async/audit.hpp"
#include "async/delay.hpp"
#include "async/event.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

/// Records every dispatch as (time, tag) so tests can assert exact order.
class Recorder final : public EventSource {
 public:
  void do_next_event(SimTime now, std::uint64_t tag) override {
    seen.push_back({now, tag});
  }
  std::vector<std::pair<SimTime, std::uint64_t>> seen;
};

TEST(AsyncEventListTest, DispatchesInTimeOrder) {
  EventList list;
  Recorder rec;
  list.schedule_at(rec, 30, 0);
  list.schedule_at(rec, 10, 1);
  list.schedule_at(rec, 20, 2);
  while (list.run_next()) {
  }
  ASSERT_EQ(rec.seen.size(), 3u);
  EXPECT_EQ(rec.seen[0], (std::pair<SimTime, std::uint64_t>{10, 1}));
  EXPECT_EQ(rec.seen[1], (std::pair<SimTime, std::uint64_t>{20, 2}));
  EXPECT_EQ(rec.seen[2], (std::pair<SimTime, std::uint64_t>{30, 0}));
  EXPECT_EQ(list.now(), 30u);
  EXPECT_EQ(list.dispatched(), 3u);
}

TEST(AsyncEventListTest, EqualTimesDispatchInSchedulingOrderFifo) {
  // Property: any number of same-instant events dispatch in exactly the
  // order they were scheduled — never heap order. Interleave two instants
  // to make a sift-down reordering (the classic binary-heap hazard) likely
  // if the tiebreak were absent.
  EventList list;
  Recorder rec;
  constexpr std::uint64_t kPerInstant = 64;
  for (std::uint64_t i = 0; i < kPerInstant; ++i) {
    list.schedule_at(rec, 5, i);
    list.schedule_at(rec, 7, 1000 + i);
  }
  while (list.run_next()) {
  }
  ASSERT_EQ(rec.seen.size(), 2 * kPerInstant);
  for (std::uint64_t i = 0; i < kPerInstant; ++i) {
    EXPECT_EQ(rec.seen[i].first, 5u);
    EXPECT_EQ(rec.seen[i].second, i) << "FIFO broken at t=5 slot " << i;
    EXPECT_EQ(rec.seen[kPerInstant + i].first, 7u);
    EXPECT_EQ(rec.seen[kPerInstant + i].second, 1000 + i)
        << "FIFO broken at t=7 slot " << i;
  }
}

TEST(AsyncEventListTest, RejectsSchedulingInThePast) {
  EventList list;
  Recorder rec;
  list.schedule_at(rec, 10, 0);
  ASSERT_TRUE(list.run_next());  // now = 10
  EXPECT_THROW(list.schedule_at(rec, 9, 1), ArgumentError);
  EXPECT_THROW(list.schedule_at(rec, kNever, 1), ArgumentError);
  EXPECT_NO_THROW(list.schedule_at(rec, 10, 1));  // now itself is fine
}

TEST(AsyncEventListTest, ScheduleInSaturatesBelowNever) {
  EventList list;
  Recorder rec;
  list.schedule_in(rec, kNever);  // would overflow; saturates
  EXPECT_EQ(list.next_time(), kNever - 1);
}

TEST(AsyncEventListTest, NextTimeRequiresNonEmpty) {
  EventList list;
  EXPECT_THROW(list.next_time(), ArgumentError);
  EXPECT_FALSE(list.run_next());
  EXPECT_EQ(list.now(), 0u);
}

TEST(AsyncEventListTest, IdenticalScheduleIdenticalDispatch) {
  // Two lists fed the same interleaved schedule-and-run sequence dispatch
  // identically — the determinism the engine's thread-invariance rests on.
  auto drive = [](EventList& list, Recorder& rec) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      list.schedule_at(rec, list.now() + (i % 7) * 3, i);
      if (i % 3 == 0) list.run_next();
    }
    while (list.run_next()) {
    }
  };
  EventList a, b;
  Recorder ra, rb;
  drive(a, ra);
  drive(b, rb);
  EXPECT_EQ(ra.seen, rb.seen);
}

TEST(AsyncTriggerTest, FiresActionWithTimeAndTag) {
  EventList list;
  std::vector<std::pair<SimTime, std::uint64_t>> fired;
  Trigger trig(list, [&](SimTime now, std::uint64_t tag) {
    fired.push_back({now, tag});
  });
  trig.arm_at(42, 7);
  trig.arm_in(5, 8);
  while (list.run_next()) {
  }
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<SimTime, std::uint64_t>{5, 8}));
  EXPECT_EQ(fired[1], (std::pair<SimTime, std::uint64_t>{42, 7}));
}

TEST(AsyncDelayModelTest, FixedAddsLatency) {
  FixedDelay d(10);
  const LinkDelay out = d.classify({0, 1, 0}, 25);
  EXPECT_FALSE(out.held);
  EXPECT_EQ(out.deliver_at, 35u);
}

TEST(AsyncDelayModelTest, UniformBoundedAndSeedDeterministic) {
  UniformDelay a(3, 9, 77);
  UniformDelay b(3, 9, 77);
  for (int i = 0; i < 200; ++i) {
    const LinkDelay da = a.classify({0, 1, 0}, 100);
    const LinkDelay db = b.classify({0, 1, 0}, 100);
    EXPECT_FALSE(da.held);
    EXPECT_GE(da.deliver_at, 103u);
    EXPECT_LE(da.deliver_at, 109u);
    EXPECT_EQ(da.deliver_at, db.deliver_at) << "seed determinism broken";
  }
  EXPECT_THROW(UniformDelay(9, 3, 1), ArgumentError);
}

TEST(AsyncDelayModelTest, AdversaryHoldsWithoutDeadline) {
  AdversaryDelay d;
  const LinkDelay out = d.classify({0, 1, 0}, 50);
  EXPECT_TRUE(out.held);
  EXPECT_EQ(out.deadline, kNever);
}

TEST(AsyncDelayModelTest, GstClampsHeldDeadline) {
  GstDelay d(100, 5);  // adversary-held, forced within 5 ticks after GST
  // Before GST: the deadline is GST + bound.
  LinkDelay early = d.classify({0, 1, 0}, 10);
  EXPECT_TRUE(early.held);
  EXPECT_EQ(early.deadline, 105u);
  // After GST: deadline is send time + bound.
  LinkDelay late = d.classify({0, 1, 0}, 200);
  EXPECT_TRUE(late.held);
  EXPECT_EQ(late.deadline, 205u);
  EXPECT_THROW(GstDelay(0, 0), ArgumentError);  // bound must be >= 1
}

TEST(AsyncDelayModelTest, GstClampsTimedInnerModel) {
  // Wrapping a timed model: a delivery the inner model would postpone past
  // the bound is pulled back to max(now, GST) + bound.
  FixedDelay slow(1000);
  GstDelay d(slow, 50, 20);
  const LinkDelay out = d.classify({0, 1, 0}, 60);
  EXPECT_FALSE(out.held);
  EXPECT_EQ(out.deliver_at, 80u);  // min(60+1000, 60+20)
}

// ------------------------------------------------------------ the auditor

TEST(AsyncAuditTest, RejectsTimeMovingBackwards) {
  AsyncRunAuditor audit;
  audit.begin(4, 1, 0);
  audit.note_time(10);
  EXPECT_THROW(audit.note_time(9), InvariantError);
}

TEST(AsyncAuditTest, EnforcesCrashBudget) {
  AsyncRunAuditor audit;
  audit.begin(4, 1, 0);
  audit.on_crash(0, 2);
  EXPECT_THROW(audit.on_crash(0, 3), InvariantError);
  EXPECT_EQ(audit.crashes(), 1u);
}

TEST(AsyncAuditTest, RejectsDoubleCrashAndBadVictim) {
  AsyncRunAuditor audit;
  audit.begin(4, 4, 0);
  audit.on_crash(0, 2);
  EXPECT_THROW(audit.on_crash(0, 2), InvariantError);
  EXPECT_THROW(audit.on_crash(0, 9), InvariantError);
}

TEST(AsyncAuditTest, RejectsDeliveryToCrashedProcess) {
  AsyncRunAuditor audit;
  audit.begin(4, 1, 0);
  audit.on_crash(5, 2);
  EXPECT_THROW(audit.on_deliver(6, AsyncMessage{0, 2, 0}), InvariantError);
  EXPECT_NO_THROW(audit.on_deliver(6, AsyncMessage{0, 3, 0}));
}

TEST(AsyncAuditTest, RejectsSendFromCrashedProcess) {
  AsyncRunAuditor audit;
  audit.begin(4, 1, 0);
  audit.on_crash(5, 2);
  EXPECT_THROW(audit.on_send(6, AsyncMessage{2, 0, 0}), InvariantError);
}

TEST(AsyncAuditTest, EnforcesOmissionBudgetAndLiveSender) {
  AsyncRunAuditor audit;
  audit.begin(4, 1, 1);
  audit.on_omission(3, 1, 2);
  EXPECT_THROW(audit.on_omission(3, 1, 1), InvariantError);
  audit.begin(4, 1, 5);
  audit.on_crash(0, 1);
  EXPECT_THROW(audit.on_omission(1, 1, 1), InvariantError);
}

TEST(AsyncAuditTest, EndCrossChecksReportedTotals) {
  AsyncRunAuditor audit;
  audit.begin(4, 2, 0);
  audit.on_crash(0, 1);
  EXPECT_NO_THROW(audit.on_end(1, 0));
  EXPECT_THROW(audit.on_end(2, 0), InvariantError);
  EXPECT_THROW(audit.on_end(1, 1), InvariantError);
}

}  // namespace
}  // namespace synran
