// Fuzz target for the invariant auditor: drive random adversaries — valid
// ones, chaotic ones, and deliberately corrupted ones — through audited
// executions. Valid adversaries must never trip the auditor (no false
// positives); invalid plans must never survive to completion (no false
// negatives on the §3.1 budget rules).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.hpp"
#include "adversary/nonadaptive.hpp"
#include "common/rng.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

/// Emits plans drawn from raw randomness with no regard for the model:
/// crash victims may be dead, halted, silent, duplicated, or over budget;
/// omission senders may be silent, duplicated, crash-overlapping, or past
/// the omission budget; masks are random (occasionally even mis-sized);
/// and corruption directives may name dead or out-of-range senders,
/// duplicate receiver entries, overlap the other families, or bust the
/// byzantine budget. (Not the seeded injectors in adversary/ — this one
/// exists to be *wrong*.)
class MalformedPlanAdversary final : public Adversary {
 public:
  explicit MalformedPlanAdversary(std::uint64_t seed) : rng_(seed) {}

  FaultPlan plan_round(const WorldView& w) override {
    FaultPlan plan;
    if (rng_.flip()) return plan;
    const std::uint64_t k = 1 + rng_.below(3);
    for (std::uint64_t i = 0; i < k; ++i) {
      CrashDirective c;
      c.victim = static_cast<ProcessId>(rng_.below(w.n()));
      const std::uint32_t mask_size =
          rng_.below(20) == 0 ? w.n() + 1 : w.n();
      c.deliver_to = DynBitset(mask_size);
      for (std::uint32_t b = 0; b < mask_size; ++b) {
        if (rng_.flip()) c.deliver_to.set(b);
      }
      plan.crashes.push_back(std::move(c));
    }
    const std::uint64_t m = rng_.below(3);
    for (std::uint64_t i = 0; i < m; ++i) {
      OmissionDirective o;
      o.sender = static_cast<ProcessId>(rng_.below(w.n()));
      const std::uint32_t mask_size =
          rng_.below(20) == 0 ? w.n() + 1 : w.n();
      o.drop_for = DynBitset(mask_size);
      for (std::uint32_t b = 0; b < mask_size; ++b) {
        if (rng_.flip()) o.drop_for.set(b);
      }
      plan.omissions.push_back(std::move(o));
    }
    if (rng_.flip()) {
      CorruptionDirective cd;
      // Mostly in-range senders (dead or silent ones included), with an
      // occasional out-of-range id.
      cd.sender = static_cast<ProcessId>(
          rng_.below(w.n() + (rng_.below(20) == 0 ? 1 : 0)));
      const std::uint64_t f = 1 + rng_.below(3);
      for (std::uint64_t j = 0; j < f; ++j) {
        CorruptionDirective::Forgery fg;
        fg.target = static_cast<ProcessId>(rng_.below(w.n()));
        fg.forged = rng_.next();
        cd.forgeries.push_back(fg);
        // Occasionally forge the same receiver twice in one directive.
        if (rng_.below(4) == 0) cd.forgeries.push_back(fg);
      }
      plan.corruptions.push_back(std::move(cd));
    }
    return plan;
  }
  const char* name() const override { return "malformed-plan"; }

 private:
  Xoshiro256 rng_;
};

/// Wraps a well-behaved adversary but additionally crashes the lowest-id
/// sender not already in the plan every round, ignoring the budget — the
/// auditor must stop every such run before it completes.
class BudgetBuster final : public Adversary {
 public:
  explicit BudgetBuster(Adversary& inner) : inner_(&inner) {}
  void begin(std::uint32_t n, std::uint32_t t) override {
    inner_->begin(n, t);
  }
  FaultPlan plan_round(const WorldView& w) override {
    FaultPlan plan = inner_->plan_round(w);
    DynBitset planned(w.n());
    for (const auto& c : plan.crashes) planned.set(c.victim);
    for (ProcessId p = 0; p < w.n(); ++p) {
      if (w.sending(p) && !planned.test(p)) {
        plan.crashes.push_back({p, DynBitset(w.n())});
        break;
      }
    }
    return plan;
  }
  const char* name() const override { return "budget-buster"; }

 private:
  Adversary* inner_;
};

std::unique_ptr<ProcessFactory> draw_factory(Xoshiro256& rng,
                                             std::uint32_t t) {
  switch (rng.below(3)) {
    case 0:
      return std::make_unique<SynRanFactory>();
    case 1:
      return std::make_unique<FloodMinFactory>(FloodMinOptions{t, false});
    default:
      return std::make_unique<FloodMinFactory>(FloodMinOptions{t, true});
  }
}

std::vector<Bit> draw_inputs(Xoshiro256& rng, std::uint32_t n) {
  std::vector<Bit> inputs;
  inputs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) inputs.push_back(bit_of(rng.flip()));
  return inputs;
}

TEST(AuditFuzz, ValidAdversariesNeverTripTheAuditor) {
  Xoshiro256 rng(0xa0d17);
  for (int iter = 0; iter < 120; ++iter) {
    const auto n = 4 + static_cast<std::uint32_t>(rng.below(24));
    const auto t = static_cast<std::uint32_t>(rng.below(n / 2 + 1));
    std::unique_ptr<Adversary> inner;
    switch (rng.below(3)) {
      case 0:
        inner = std::make_unique<RandomCrashAdversary>(
            RandomCrashAdversary::Options{
                1 + static_cast<std::uint32_t>(rng.below(3)), 0.7,
                rng.next()});
        break;
      case 1:
        inner = std::make_unique<ObliviousAdversary>(ObliviousOptions{
            1 + static_cast<std::uint32_t>(rng.below(20)), rng.next()});
        break;
      default:
        inner = std::make_unique<ChainHidingAdversary>();
        break;
    }
    AuditedAdversary audited(*inner);
    const auto factory = draw_factory(rng, t);
    EngineOptions opts;
    opts.t_budget = t;
    opts.seed = rng.next();
    opts.max_rounds = 30000;
    RunResult res;
    ASSERT_NO_THROW(res = run_once(*factory, draw_inputs(rng, n), audited,
                                   opts))
        << "iter " << iter << " adversary " << inner->name();
    EXPECT_LE(res.crashes_total, t);
    EXPECT_EQ(audited.auditor().crashes_so_far(), res.crashes_total);
  }
}

TEST(AuditFuzz, ChaoticPlansNeverSurviveOverBudget) {
  Xoshiro256 rng(0xc4405);
  int violations_caught = 0;
  int clean_runs = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const auto n = 4 + static_cast<std::uint32_t>(rng.below(16));
    const auto t = static_cast<std::uint32_t>(rng.below(n));
    MalformedPlanAdversary chaos(rng.next());
    const auto factory = draw_factory(rng, t);
    EngineOptions opts;
    opts.t_budget = t;
    opts.per_round_cap = rng.flip() ? 2 : 0;
    // A third of the runs forbid omissions outright (the fail-stop default),
    // the rest grant a small budget the malformed plans routinely bust; the
    // byzantine budget is drawn the same way.
    opts.omission_budget =
        rng.below(3) == 0 ? 0 : static_cast<std::uint32_t>(rng.below(12));
    opts.omission_round_cap = rng.flip() ? 1 : 0;
    opts.byzantine_budget =
        rng.below(3) == 0 ? 0 : static_cast<std::uint32_t>(rng.below(12));
    opts.byzantine_round_cap = rng.flip() ? 1 : 0;
    opts.seed = rng.next();
    opts.max_rounds = 30000;
    try {
      const auto res = run_once(*factory, draw_inputs(rng, n), chaos, opts);
      // A chaotic run that completed must nonetheless be model-clean.
      EXPECT_LE(res.crashes_total, t) << "iter " << iter;
      EXPECT_LE(res.omissions_total, opts.omission_budget) << "iter " << iter;
      EXPECT_LE(res.corruptions_total, opts.byzantine_budget)
          << "iter " << iter;
      if (opts.per_round_cap != 0) {
        for (auto c : res.crashes_per_round)
          EXPECT_LE(c, opts.per_round_cap) << "iter " << iter;
      }
      ++clean_runs;
    } catch (const InvariantError&) {
      ++violations_caught;  // the auditor did its job
    }
  }
  // The chaos generator must actually produce both outcomes, otherwise this
  // fuzz proves nothing.
  EXPECT_GT(violations_caught, 30);
  EXPECT_GT(clean_runs, 5);
}

TEST(AuditFuzz, BudgetBusterIsAlwaysStopped) {
  Xoshiro256 rng(0xb0057);
  for (int iter = 0; iter < 50; ++iter) {
    const auto n = 6 + static_cast<std::uint32_t>(rng.below(10));
    const auto t = 1 + static_cast<std::uint32_t>(rng.below(3));
    RandomCrashAdversary inner({1, 0.5, rng.next()});
    BudgetBuster buster(inner);
    const auto factory = draw_factory(rng, t);
    EngineOptions opts;
    opts.t_budget = t;
    opts.seed = rng.next();
    EXPECT_THROW(run_once(*factory, draw_inputs(rng, n), buster, opts),
                 InvariantError)
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace synran
