// Tests for the fixed-bin histogram.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/histogram.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace synran {
namespace {

TEST(HistogramTest, BinsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.9, 9.9}) h.add(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // [0,2): 0.5, 1.5
  EXPECT_EQ(h.bin_count(1), 2u);  // [2,4): 2.5, 2.9
  EXPECT_EQ(h.bin_count(4), 1u);  // [8,10): 9.9
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-1.0);
  h.add(2.0);
  h.add(1.0);  // hi is exclusive
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, TailComputation) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.tail_at_least(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.tail_at_least(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.tail_at_least(9.0), 0.1);
  EXPECT_DOUBLE_EQ(h.tail_at_least(100.0), 0.0);
}

TEST(HistogramTest, QuantileApproximatesSample) {
  Histogram h(0.0, 100.0, 100);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform() * 100.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 3.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 2.0);
}

TEST(HistogramTest, PrintRendersBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  std::ostringstream os;
  h.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), ArgumentError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ArgumentError);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), ArgumentError);
  EXPECT_THROW(h.quantile(1.5), ArgumentError);
}

TEST(HistogramTest, EmptyHistogramIsSane) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.tail_at_least(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace synran
