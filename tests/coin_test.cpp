// Tests for the one-round coin-flipping games (§2): outcome functions,
// analytic vs exhaustive forcing agreement, control estimation, the
// one-side-bias asymmetry, and the exact Schechtman expansion check.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/binomial.hpp"
#include "coin/expansion.hpp"
#include "coin/forcing.hpp"
#include "coin/games.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

std::vector<GameValue> vals(std::initializer_list<int> xs) {
  std::vector<GameValue> out;
  for (int x : xs) out.push_back(static_cast<GameValue>(x));
  return out;
}

DynBitset hide(std::uint32_t n, std::initializer_list<std::uint32_t> idx) {
  DynBitset h(n);
  for (auto i : idx) h.set(i);
  return h;
}

// ------------------------------------------------------------------- games

TEST(MajorityDefaultZero, OutcomeCountsHiddenAsZero) {
  MajorityDefaultZeroGame g(5);
  const auto v = vals({1, 1, 1, 0, 0});
  EXPECT_EQ(g.outcome(v, hide(5, {})), 1u);
  EXPECT_EQ(g.outcome(v, hide(5, {0})), 0u);  // 2 visible ones of 5 slots
}

TEST(MajorityDefaultZero, CannotBeForcedToOne) {
  MajorityDefaultZeroGame g(7);
  const auto v = vals({1, 1, 1, 0, 0, 0, 0});
  const auto res = can_force(g, v, 1, 7);
  EXPECT_FALSE(res.forced);
  EXPECT_TRUE(res.exact);
}

TEST(MajorityDefaultZero, ForcingZeroNeedsExactSurplus) {
  MajorityDefaultZeroGame g(7);
  const auto v = vals({1, 1, 1, 1, 1, 0, 0});  // 5 ones, need ≥ 2 hidden
  EXPECT_FALSE(can_force(g, v, 0, 1).forced);
  const auto res = can_force(g, v, 0, 2);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 2u);
  EXPECT_EQ(g.outcome(v, res.hiding), 0u);
}

TEST(MajorityPresent, TieBreaksTowardZero) {
  MajorityPresentGame g(4);
  EXPECT_EQ(g.outcome(vals({1, 1, 0, 0}), hide(4, {})), 0u);
  EXPECT_EQ(g.outcome(vals({1, 1, 1, 0}), hide(4, {})), 1u);
}

TEST(MajorityPresent, ForcesBothDirections) {
  MajorityPresentGame g(6);
  const auto v = vals({1, 1, 1, 1, 0, 0});
  // Toward 0: hide 2 ones (4−2 = 2 = zeros → tie → 0).
  const auto to0 = can_force(g, v, 0, 2);
  EXPECT_TRUE(to0.forced);
  // Toward 1 from a 0-majority input: hide zeros.
  const auto w = vals({0, 0, 0, 0, 1, 1});
  const auto to1 = can_force(g, w, 1, 3);
  EXPECT_TRUE(to1.forced);
  EXPECT_EQ(g.outcome(w, to1.hiding), 1u);
  EXPECT_FALSE(can_force(g, w, 1, 2).forced);  // needs 3 hidings
}

TEST(ParityPresent, SingleHidingFlipsOutcome) {
  ParityPresentGame g(5);
  const auto v = vals({1, 0, 1, 1, 0});  // parity 1
  EXPECT_EQ(g.outcome(v, hide(5, {})), 1u);
  const auto res = can_force(g, v, 0, 1);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(res.hiding.count(), 1u);
}

TEST(ParityPresent, AllZerosStuckAtZero) {
  ParityPresentGame g(4);
  const auto v = vals({0, 0, 0, 0});
  EXPECT_FALSE(can_force(g, v, 1, 4).forced);
  EXPECT_TRUE(can_force(g, v, 0, 0).forced);
}

TEST(ModSum, OutcomeIsSumModK) {
  ModSumGame g(4, 3);
  const auto v = vals({2, 2, 1, 0});
  EXPECT_EQ(g.outcome(v, hide(4, {})), 2u);  // 5 mod 3
  EXPECT_EQ(g.outcome(v, hide(4, {0})), 0u);
}

TEST(ModSum, ExhaustiveSearchFindsResidues) {
  ModSumGame g(6, 4);
  const auto v = vals({1, 2, 3, 1, 2, 0});  // sum 9 ≡ 1 (mod 4)
  for (std::uint32_t target = 0; target < 4; ++target) {
    const auto res = can_force(g, v, target, 3);
    EXPECT_TRUE(res.forced) << "target " << target;
    EXPECT_EQ(g.outcome(v, res.hiding), target);
  }
}

TEST(LeaderBit, PrefixHidingHandsControl) {
  LeaderBitGame g(5);
  const auto v = vals({0, 0, 1, 0, 1});
  EXPECT_EQ(g.outcome(v, hide(5, {})), 0u);
  const auto res = can_force(g, v, 1, 2);
  EXPECT_TRUE(res.forced);
  EXPECT_EQ(g.outcome(v, res.hiding), 1u);
  EXPECT_FALSE(can_force(g, v, 1, 1).forced);
}

TEST(GamesTest, SampleMatchesDomain) {
  ModSumGame g(50, 5);
  Xoshiro256 rng(3);
  std::vector<GameValue> v;
  g.sample(rng, v);
  ASSERT_EQ(v.size(), 50u);
  for (auto x : v) EXPECT_LT(x, 5);
}

// ----------------------------------------------------------------- forcing

TEST(ForcingTest, AnalyticAgreesWithExhaustiveOnRandomInputs) {
  // The analytic rules claim completeness; cross-check against a blind
  // exhaustive search on a game wrapper with the analytic rule hidden.
  class Blind final : public CoinGame {
   public:
    explicit Blind(const CoinGame& inner) : inner_(inner) {}
    std::uint32_t players() const override { return inner_.players(); }
    std::uint32_t outcomes() const override { return inner_.outcomes(); }
    std::uint32_t domain_size() const override {
      return inner_.domain_size();
    }
    std::uint32_t outcome(std::span<const GameValue> values,
                          const DynBitset& hidden) const override {
      return inner_.outcome(values, hidden);
    }
    const char* name() const override { return "blind"; }

   private:
    const CoinGame& inner_;
  };

  Xoshiro256 rng(21);
  MajorityPresentGame maj(11);
  MajorityDefaultZeroGame mdz(11);
  ParityPresentGame par(11);
  const CoinGame* games[] = {&maj, &mdz, &par};
  for (const CoinGame* game : games) {
    Blind blind(*game);
    std::vector<GameValue> v;
    for (int rep = 0; rep < 30; ++rep) {
      game->sample(rng, v);
      for (std::uint32_t target = 0; target < 2; ++target) {
        for (std::uint32_t budget : {0u, 1u, 2u, 3u}) {
          const auto a = can_force(*game, v, target, budget);
          const auto b = can_force(blind, v, target, budget);
          ASSERT_TRUE(a.exact);
          ASSERT_TRUE(b.exact);
          EXPECT_EQ(a.forced, b.forced)
              << game->name() << " target=" << target
              << " budget=" << budget;
        }
      }
    }
  }
}

TEST(ForcingTest, WitnessAlwaysValidatesAndFitsBudget) {
  Xoshiro256 rng(5);
  MajorityPresentGame g(40);
  std::vector<GameValue> v;
  for (int rep = 0; rep < 50; ++rep) {
    g.sample(rng, v);
    for (std::uint32_t budget : {0u, 3u, 10u}) {
      for (std::uint32_t target = 0; target < 2; ++target) {
        const auto res = can_force(g, v, target, budget);
        if (res.forced) {
          EXPECT_LE(res.hiding.count(), budget);
          EXPECT_EQ(g.outcome(v, res.hiding), target);
        }
      }
    }
  }
}

TEST(ForcingTest, RejectsBadArguments) {
  MajorityPresentGame g(4);
  const auto v = vals({1, 0, 1, 0});
  EXPECT_THROW(can_force(g, v, 2, 1), ArgumentError);  // outcome range
  const auto bad = vals({1, 0});
  EXPECT_THROW(can_force(g, bad, 0, 1), ArgumentError);  // size mismatch
}

// ------------------------------------------------------- control estimates

TEST(ControlTest, MajorityPresentControlledWithSqrtBudget) {
  // With budget 4√(n·ln n) ≫ √n the adversary controls the symmetric
  // majority game in (essentially) every sample.
  const std::uint32_t n = 400;
  const auto budget = static_cast<std::uint32_t>(
      4.0 * std::sqrt(n * std::log(static_cast<double>(n))));
  MajorityPresentGame g(n);
  const auto est = estimate_control(g, budget, 400, 9);
  EXPECT_TRUE(est.exact);
  EXPECT_LT(est.min_pr_unforceable(), 1.0 / n + 0.01);
  // Both directions are cheap for the symmetric game.
  EXPECT_LT(est.pr_unforceable[0], 0.01);
  EXPECT_LT(est.pr_unforceable[1], 0.01);
}

TEST(ControlTest, OneSideBiasShowsInMajorityDefaultZero) {
  const std::uint32_t n = 400;
  const auto budget = static_cast<std::uint32_t>(
      4.0 * std::sqrt(n * std::log(static_cast<double>(n))));
  MajorityDefaultZeroGame g(n);
  const auto est = estimate_control(g, budget, 400, 10);
  // Toward 0: always forceable. Toward 1: only when the draw already has a
  // 1-majority (probability ≈ 1/2).
  EXPECT_LT(est.pr_unforceable[0], 0.01);
  EXPECT_GT(est.pr_unforceable[1], 0.3);
  EXPECT_LT(est.pr_unforceable[1], 0.7);
  EXPECT_EQ(est.best_outcome(), 0u);
}

TEST(ControlTest, ControlImprovesWithBudget) {
  const std::uint32_t n = 256;
  MajorityPresentGame g(n);
  double prev = 1.1;
  for (std::uint32_t budget : {0u, 8u, 32u, 128u}) {
    const auto est = estimate_control(g, budget, 200, 11);
    const double cur = est.min_pr_unforceable();
    EXPECT_LE(cur, prev + 0.05) << "budget " << budget;
    prev = cur;
  }
}

TEST(ControlTest, ZeroBudgetMeansNoControl) {
  MajorityPresentGame g(64);
  const auto est = estimate_control(g, 0, 200, 12);
  // Without hidings, "forcing v" reduces to "the draw already lands on v":
  // Pr(U^0) + Pr(U^1) = 1 exactly.
  EXPECT_NEAR(est.pr_unforceable[0] + est.pr_unforceable[1], 1.0, 1e-12);
}

// --------------------------------------------------------------- expansion

TEST(ExpansionTest, FullCubeHasMeasureOne) {
  HypercubeExpansion e(6, [](std::uint64_t) { return true; });
  EXPECT_DOUBLE_EQ(e.measure(), 1.0);
  EXPECT_DOUBLE_EQ(e.ball_measure(0), 1.0);
}

TEST(ExpansionTest, SingletonBallsMatchBinomialSums) {
  const std::uint32_t n = 10;
  HypercubeExpansion e(n, [](std::uint64_t x) { return x == 0; });
  EXPECT_DOUBLE_EQ(e.measure(), 1.0 / 1024.0);
  double acc = 0.0;
  for (std::uint32_t l = 0; l <= n; ++l) {
    acc += std::exp(log_binomial(n, l)) / 1024.0;
    EXPECT_NEAR(e.ball_measure(l), acc, 1e-9) << "l=" << l;
  }
}

TEST(ExpansionTest, EmptySetNeverExpands) {
  HypercubeExpansion e(8, [](std::uint64_t) { return false; });
  EXPECT_DOUBLE_EQ(e.measure(), 0.0);
  EXPECT_DOUBLE_EQ(e.ball_measure(8), 0.0);
  EXPECT_EQ(e.radius_for(0.5), 9u);
}

TEST(ExpansionTest, SchechtmanBoundHoldsForRandomSets) {
  // The theorem is for all sets; spot-check random ones exactly.
  const std::uint32_t n = 14;
  Xoshiro256 rng(13);
  for (int rep = 0; rep < 10; ++rep) {
    const double density = 0.01 + 0.2 * rng.uniform();
    std::vector<bool> member(1u << n);
    std::size_t cnt = 0;
    for (auto&& m : member) {
      m = rng.uniform() < density;
      cnt += m ? 1 : 0;
    }
    if (cnt == 0) continue;
    HypercubeExpansion e(n, [&](std::uint64_t x) { return member[x]; });
    const double alpha = e.measure();
    for (std::uint32_t l = 0; l <= n; ++l) {
      const double bound =
          schechtman_expansion_bound(static_cast<double>(n), alpha,
                                     static_cast<double>(l));
      EXPECT_GE(e.ball_measure(l) + 1e-12, bound)
          << "rep=" << rep << " l=" << l << " alpha=" << alpha;
    }
  }
}

TEST(ExpansionTest, UnforceableSetOfMajorityGame) {
  // U^0 of the present-majority game with budget b: points where even b
  // hidings keep a strict 1-majority, i.e. ones − zeros > b.
  const std::uint32_t n = 12;
  MajorityPresentGame g(n);
  const std::uint32_t budget = 2;
  const auto e = expansion_of_unforceable_set(g, 0, budget);
  std::uint64_t expected = 0;
  for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
    const auto ones = static_cast<std::uint32_t>(__builtin_popcountll(x));
    const std::uint32_t zeros = n - ones;
    if (ones > zeros + budget) ++expected;
  }
  EXPECT_NEAR(e.measure(),
              static_cast<double>(expected) / static_cast<double>(1ULL << n),
              1e-12);
}

TEST(ExpansionTest, RejectsOversizedCube) {
  EXPECT_THROW(HypercubeExpansion(30, [](std::uint64_t) { return true; }),
               ArgumentError);
}

}  // namespace
}  // namespace synran

namespace synran {
namespace {

// ----------------------------------------------------------- exact control

TEST(ExactControlTest, MatchesHandComputedMajorityCounts) {
  // Majority-present, n = 4, budget 1: U^0 = {ones − zeros > 1} =
  // {ones ≥ 3} → C(4,3)+C(4,4) = 5 of 16; U^1 = {zeros − ones + 1 > 1,
  // i.e. need > budget zeros hidden} = {zeros ≥ ... } by the analytic rule:
  // need = zeros − ones + 1 when not already 1; unforceable iff need > 1
  // ⇔ zeros ≥ ones + 1... enumerate by hand: ones ∈ {0,1}: zeros−ones+1 ∈
  // {5−2·ones ≥ 3} > 1 → unforceable; ones=2 (tie→0): need = 1 ≤ 1 OK.
  // So U^1 = {ones ≤ 1} = 1 + 4 = 5 of 16.
  MajorityPresentGame g(4);
  const auto exact = exact_control(g, 1);
  EXPECT_EQ(exact.samples, 16u);
  EXPECT_EQ(exact.unforceable_count[0], 5u);
  EXPECT_EQ(exact.unforceable_count[1], 5u);
}

TEST(ExactControlTest, SamplingConvergesToExact) {
  MajorityPresentGame g(12);
  const std::uint32_t budget = 2;
  const auto exact = exact_control(g, budget);
  const auto sampled = estimate_control(g, budget, 4000, 21);
  for (std::uint32_t v = 0; v < 2; ++v)
    EXPECT_NEAR(sampled.pr_unforceable[v], exact.pr_unforceable[v], 0.03)
        << "outcome " << v;
}

TEST(ExactControlTest, MonotoneInBudget) {
  MajorityDefaultZeroGame g(10);
  double prev0 = 1.0;
  for (std::uint32_t budget : {0u, 1u, 2u, 4u, 8u}) {
    const auto exact = exact_control(g, budget);
    EXPECT_LE(exact.pr_unforceable[0], prev0 + 1e-12);
    prev0 = exact.pr_unforceable[0];
  }
  EXPECT_DOUBLE_EQ(prev0, 0.0);  // budget 8 ≥ any 1-surplus on 10 players
}

TEST(ExactControlTest, AgreesWithUnforceableSetExpansion) {
  // The same U^v set, measured two ways: exact control enumeration and the
  // hypercube expansion's distance-0 layer.
  MajorityPresentGame g(10);
  for (std::uint32_t budget : {1u, 2u}) {
    const auto exact = exact_control(g, budget);
    for (std::uint32_t v = 0; v < 2; ++v) {
      const auto e = expansion_of_unforceable_set(g, v, budget);
      EXPECT_NEAR(e.measure(), exact.pr_unforceable[v], 1e-12);
    }
  }
}

TEST(ExactControlTest, RejectsNonBinaryAndBigGames) {
  ModSumGame k3(6, 3);
  EXPECT_THROW(exact_control(k3, 1), ArgumentError);
  MajorityPresentGame big(23);
  EXPECT_THROW(exact_control(big, 1), ArgumentError);
}

// ------------------------------------------- Harper-flavoured worst case

TEST(ExpansionTest, HammingBallsExpandSlowestAmongTestedSets) {
  // Harper's theorem: balls minimize vertex-boundary growth at fixed
  // measure. Check the testable consequence: a Hamming ball's enlargement
  // never exceeds that of same-measure random sets by more than sampling
  // slack — i.e. the ball is the conservative (worst) case our Schechtman
  // comparisons lean on.
  const std::uint32_t n = 12;
  HypercubeExpansion probe(n, [](std::uint64_t x) { return x == 0; });
  std::uint32_t r = 0;
  while (probe.ball_measure(r) < 0.05) ++r;
  HypercubeExpansion ball(n, [r](std::uint64_t x) {
    return static_cast<std::uint32_t>(__builtin_popcountll(x)) <= r;
  });
  const double alpha = ball.measure();

  Xoshiro256 rng(31);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<bool> member(1u << n);
    for (auto&& m : member) m = rng.uniform() < alpha;
    HypercubeExpansion random_set(
        n, [&](std::uint64_t x) { return member[x]; });
    if (random_set.measure() < alpha / 2) continue;  // too sparse a draw
    for (std::uint32_t l = 1; l <= n; ++l)
      EXPECT_LE(ball.ball_measure(l), random_set.ball_measure(l) + 0.02)
          << "l=" << l << " rep=" << rep;
  }
}

}  // namespace
}  // namespace synran
