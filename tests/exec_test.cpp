// Tests for the deterministic batch executor: serial/parallel equivalence,
// the synran-seed/2 per-rep streams (golden-pinned), workspace reuse, the
// thread-count-invariant observer stream (buffered + rep-order replay),
// deterministic error propagation, the quarantine/retry failure domains,
// and cooperative stop handling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "common/check.hpp"
#include "exec/executor.hpp"
#include "exec/stopper.hpp"
#include "obs/observer.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran {
namespace {

// The three adversary families the equivalence matrix covers: benign,
// the paper's coin-bias attack, and the deterministic lower-bound chain.
struct Family {
  const char* name;
  AdversaryFactory make;
};

std::vector<Family> families() {
  return {
      {"none", no_adversary_factory()},
      {"coinbias",
       [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
         return std::make_unique<CoinBiasAdversary>(
             CoinBiasOptions{0.55, true, seed});
       }},
      {"chain",
       [](std::uint64_t) -> std::unique_ptr<Adversary> {
         return std::make_unique<ChainHidingAdversary>();
       }},
  };
}

RepeatSpec base_spec(InputPattern pattern, std::uint64_t seed) {
  RepeatSpec spec;
  spec.n = 8;
  spec.pattern = pattern;
  spec.reps = 6;
  spec.seed = seed;
  spec.engine.t_budget = 3;
  return spec;
}

// ------------------------------------------------- serial <-> parallel

TEST(ExecEquivalence, ParallelMatchesSerialAcrossPatternsAndAdversaries) {
  const InputPattern patterns[] = {InputPattern::AllZero, InputPattern::AllOne,
                                   InputPattern::Half, InputPattern::Random,
                                   InputPattern::SingleZero};
  SynRanFactory protocol;
  std::uint64_t seed = 90;
  for (const auto& family : families()) {
    for (InputPattern pattern : patterns) {
      RepeatSpec spec = base_spec(pattern, ++seed);
      spec.threads = 1;
      const std::string serial =
          run_repeated(protocol, family.make, spec).metrics().to_json().dump();
      for (unsigned threads : {2u, 8u}) {
        spec.threads = threads;
        const std::string parallel = run_repeated(protocol, family.make, spec)
                                         .metrics()
                                         .to_json()
                                         .dump();
        EXPECT_EQ(serial, parallel)
            << family.name << " / " << to_string(pattern) << " @ " << threads
            << " threads";
      }
    }
  }
}

TEST(ExecEquivalence, MoreThreadsThanRepsStillMatches) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Random, 5150);
  spec.reps = 3;
  spec.threads = 1;
  const std::string serial =
      run_repeated(protocol, no_adversary_factory(), spec)
          .metrics()
          .to_json()
          .dump();
  spec.threads = 16;  // clamped to 3 workers
  const std::string parallel =
      run_repeated(protocol, no_adversary_factory(), spec)
          .metrics()
          .to_json()
          .dump();
  EXPECT_EQ(serial, parallel);
}

// The executor against a hand-rolled oracle: one engine + workspace driven
// through the schema-2 helpers rep by rep must reproduce the batch exactly.
TEST(ExecEquivalence, MatchesHandRolledScheduleOracle) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Random, 777);
  spec.reps = 9;

  RepeatedRunStats expected;
  EngineWorkspace ws;
  Engine engine(ws);
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
    make_inputs(ws.inputs(), spec.n, spec.pattern, input_rng);
    CoinBiasAdversary adversary(
        CoinBiasOptions{0.55, true, adversary_seed_for_rep(spec.seed, rep)});
    EngineOptions opts = spec.engine;
    opts.seed = engine_seed_for_rep(spec.seed, rep);
    expected.add(engine.run(protocol, ws.inputs(), adversary, opts));
  }

  const AdversaryFactory coinbias =
      [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<CoinBiasAdversary>(
        CoinBiasOptions{0.55, true, seed});
  };
  for (unsigned threads : {1u, 2u, 8u}) {
    spec.threads = threads;
    EXPECT_EQ(expected.metrics().to_json().dump(),
              run_repeated(protocol, coinbias, spec)
                  .metrics()
                  .to_json()
                  .dump())
        << threads << " threads";
  }
}

// -------------------------------------------------- seeding schema golden

// Golden values pin seeding schema 2 (exec/batch.hpp): any change to the
// (master seed, rep) -> stream mapping must show up here and bump
// kSeedSchemaVersion. Values generated once from the shipped implementation.
TEST(ExecSeedSchema, GoldenPerRepStreams) {
  EXPECT_EQ(kSeedSchemaVersion, 2);

  EXPECT_EQ(input_rng_for_rep(42, 0).next(), 0x0004cf6b8c2b86bfULL);
  EXPECT_EQ(input_rng_for_rep(42, 1).next(), 0x02bfbd7ecdcdf285ULL);
  EXPECT_EQ(input_rng_for_rep(42, 7).next(), 0xcb279e514d6f6d7cULL);

  EXPECT_EQ(adversary_seed_for_rep(42, 0), 0x54dabf19143565b0ULL);
  EXPECT_EQ(adversary_seed_for_rep(42, 1), 0x24bfbc7c1112b809ULL);
  EXPECT_EQ(adversary_seed_for_rep(42, 7), 0xfd459ee3068e506cULL);

  EXPECT_EQ(engine_seed_for_rep(42, 0), 0x9320ad2abf3c576dULL);
  EXPECT_EQ(engine_seed_for_rep(42, 1), 0xcb1c1d6347e9d83cULL);
  EXPECT_EQ(engine_seed_for_rep(42, 7), 0xce674ad87714c804ULL);
}

TEST(ExecSeedSchema, GoldenRandomInputs) {
  const auto bits_string = [](std::uint64_t seed, std::size_t rep) {
    Xoshiro256 rng = input_rng_for_rep(seed, rep);
    std::string s;
    for (Bit b : make_inputs(16, InputPattern::Random, rng))
      s.push_back(b == Bit::One ? '1' : '0');
    return s;
  };
  EXPECT_EQ(bits_string(42, 0), "0011110001100100");
  EXPECT_EQ(bits_string(42, 1), "0111101011011100");
}

TEST(ExecSeedSchema, GoldenBatchAggregate) {
  SynRanFactory protocol;
  RepeatSpec spec;
  spec.n = 8;
  spec.pattern = InputPattern::Random;
  spec.reps = 5;
  spec.seed = 7;
  spec.engine.t_budget = 2;
  const auto stats = run_repeated(protocol, no_adversary_factory(), spec);
  EXPECT_TRUE(stats.all_safe());
  EXPECT_DOUBLE_EQ(stats.rounds_to_decision().mean(), 1.2);
  EXPECT_DOUBLE_EQ(stats.rounds_to_halt().mean(), 2.2);
  EXPECT_EQ(stats.decided_one(), 2u);
}

// Rep k's streams are pure functions of (seed, k): the same rep index must
// yield the same streams whether or not other reps exist at all.
TEST(ExecSeedSchema, RepStreamsAreIndependentOfBatchSize) {
  for (std::size_t rep : {0u, 3u, 6u}) {
    Xoshiro256 a = input_rng_for_rep(13, rep);
    Xoshiro256 b = input_rng_for_rep(13, rep);
    EXPECT_EQ(a.next(), b.next());
  }
  // Distinct reps draw from distinct streams.
  EXPECT_NE(input_rng_for_rep(13, 0).next(), input_rng_for_rep(13, 1).next());
  EXPECT_NE(adversary_seed_for_rep(13, 0), adversary_seed_for_rep(13, 1));
  EXPECT_NE(engine_seed_for_rep(13, 0), engine_seed_for_rep(13, 1));
  // And input/adversary/engine streams never collide for small reps.
  EXPECT_NE(adversary_seed_for_rep(13, 0), engine_seed_for_rep(13, 0));
}

// ------------------------------------------------------- thread resolution

TEST(ExecThreads, ResolveExplicitEnvAndDefault) {
  ::unsetenv("SYNRAN_THREADS");
  EXPECT_EQ(exec::resolve_threads(4), 4u);
  EXPECT_EQ(exec::resolve_threads(1), 1u);
  EXPECT_EQ(exec::resolve_threads(0), 1u);  // no env: serial default

  ::setenv("SYNRAN_THREADS", "6", 1);
  EXPECT_EQ(exec::resolve_threads(0), 6u);
  EXPECT_EQ(exec::resolve_threads(2), 2u);  // explicit request wins

  ::setenv("SYNRAN_THREADS", "0", 1);
  EXPECT_EQ(exec::resolve_threads(0), 1u);  // clamped to >= 1
  ::unsetenv("SYNRAN_THREADS");
}

TEST(ExecThreads, SpecOverridesExecutorOptions) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 31);
  spec.threads = 1;
  const std::string serial = exec::BatchExecutor()
                                 .run(protocol, no_adversary_factory(), spec)
                                 .metrics()
                                 .to_json()
                                 .dump();
  spec.threads = 0;  // defer to the executor's own options
  exec::BatchExecutor parallel_executor(exec::ExecOptions{4});
  EXPECT_EQ(serial, parallel_executor.run(protocol, no_adversary_factory(), spec)
                        .metrics()
                        .to_json()
                        .dump());
}

// --------------------------------------------------------------- observers

struct CountingObserver final : obs::EngineObserver {
  int runs = 0;
  void on_run_end(const obs::RunObservation& /*result*/) override { ++runs; }
};

TEST(ExecObserver, ServedAtAnyThreadCount) {
  SynRanFactory protocol;
  for (unsigned threads : {1u, 2u, 4u}) {
    CountingObserver counter;
    RepeatSpec spec = base_spec(InputPattern::Half, 61);
    spec.engine.observer = &counter;
    spec.threads = threads;
    run_repeated(protocol, no_adversary_factory(), spec);
    EXPECT_EQ(counter.runs, static_cast<int>(spec.reps))
        << "threads=" << threads;
  }
}

TEST(ExecObserver, ParallelTraceIsByteIdenticalToSerial) {
  SynRanFactory protocol;
  const AdversaryFactory coinbias =
      [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<CoinBiasAdversary>(CoinBiasOptions{0.55, true,
                                                               seed});
  };
  auto trace_with = [&](unsigned threads) {
    std::ostringstream out;
    obs::JsonlTraceWriter writer(out);
    RepeatSpec spec = base_spec(InputPattern::Half, 61);
    spec.engine.observer = &writer;
    spec.threads = threads;
    run_repeated(protocol, coinbias, spec);
    writer.close();
    return out.str();
  };
  const std::string serial = trace_with(1);
  EXPECT_FALSE(serial.empty());
  // Workers buffer each rep's callbacks privately and the fold replays them
  // in rep order, so the observer's stream — and any trace written through
  // it — cannot depend on scheduling.
  EXPECT_EQ(serial, trace_with(2));
  EXPECT_EQ(serial, trace_with(4));
}

// --------------------------------------------------------- error handling

TEST(ExecErrors, EarliestRepFailureWinsAtAnyThreadCount) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 1234);
  spec.reps = 10;
  // The factory sees only the derived seed; map two of them back to reps.
  const std::uint64_t bad_late = adversary_seed_for_rep(spec.seed, 7);
  const std::uint64_t bad_early = adversary_seed_for_rep(spec.seed, 3);
  const AdversaryFactory faulty =
      [&](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    if (seed == bad_early) throw std::runtime_error("boom at rep 3");
    if (seed == bad_late) throw std::runtime_error("boom at rep 7");
    return std::make_unique<NoAdversary>();
  };
  // Fail-fast wraps the original message with the failing rep's identity —
  // enough to re-run exactly that rep (same master seed, same index).
  const std::uint64_t rep3_engine_seed = engine_seed_for_rep(spec.seed, 3);
  const std::string expected = "rep 3 (engine seed " +
                               std::to_string(rep3_engine_seed) +
                               ") failed: boom at rep 3";
  for (unsigned threads : {1u, 2u, 8u}) {
    spec.threads = threads;
    try {
      run_repeated(protocol, faulty, spec);
      FAIL() << "expected the rep-3 failure at " << threads << " threads";
    } catch (const RepError& e) {
      EXPECT_EQ(e.what(), expected) << threads << " threads";
      EXPECT_EQ(e.rep(), 3u);
      EXPECT_EQ(e.seed(), rep3_engine_seed);
    }
  }
}

// ------------------------------------------------------ failure domains

/// An adversary factory that throws for the given rep indices (mapped back
/// through their schema-2 adversary seeds), a fixed number of times each.
/// `fail_times = 0` means "always".
struct FaultInjector {
  RepeatSpec spec;
  std::map<std::uint64_t, std::size_t> throws_left;

  AdversaryFactory factory(std::vector<std::size_t> bad_reps,
                           std::size_t fail_times = 0) {
    for (std::size_t rep : bad_reps)
      throws_left[adversary_seed_for_rep(spec.seed, rep)] =
          fail_times == 0 ? static_cast<std::size_t>(-1) : fail_times;
    return [this](std::uint64_t seed) -> std::unique_ptr<Adversary> {
      auto it = throws_left.find(seed);
      if (it != throws_left.end() && it->second > 0) {
        if (it->second != static_cast<std::size_t>(-1)) --it->second;
        throw std::runtime_error("injected fault");
      }
      return std::make_unique<NoAdversary>();
    };
  }
};

TEST(ExecQuarantine, FoldsIdenticalSurvivorStatsAtAnyThreadCount) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 4242);
  spec.reps = 10;
  spec.policy = FailurePolicy::Quarantine;

  std::string serial_dump;
  for (unsigned threads : {1u, 2u, 8u}) {
    FaultInjector inject{spec, {}};
    RepeatSpec run_spec = spec;
    run_spec.threads = threads;
    const auto stats =
        run_repeated(protocol, inject.factory({3, 7}), run_spec);
    ASSERT_EQ(stats.reps_quarantined(), 2u) << threads << " threads";
    EXPECT_EQ(stats.reps(), 8u) << threads << " threads";
    // Failures surface in rep order with full identity, at any thread count.
    ASSERT_EQ(stats.failures().size(), 2u);
    EXPECT_EQ(stats.failures()[0].rep, 3u);
    EXPECT_EQ(stats.failures()[0].seed, engine_seed_for_rep(spec.seed, 3));
    EXPECT_EQ(stats.failures()[0].attempts, 1u);
    EXPECT_EQ(stats.failures()[0].error, "injected fault");
    EXPECT_EQ(stats.failures()[1].rep, 7u);
    const std::string dump = stats.metrics().to_json().dump();
    if (threads == 1)
      serial_dump = dump;
    else
      EXPECT_EQ(dump, serial_dump) << threads << " threads";
  }
}

TEST(ExecQuarantine, SurvivorsMatchABatchThatNeverHadTheBadReps) {
  // The quarantined batch's per-rep summaries must be the exact summaries
  // the same rep indices produce in a clean batch: quarantine removes reps,
  // it never perturbs the streams of the reps around them.
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Random, 555);
  spec.reps = 6;

  RepeatedRunStats expected;
  EngineWorkspace ws;
  Engine engine(ws);
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    if (rep == 2) continue;  // the rep quarantine will drop
    Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
    make_inputs(ws.inputs(), spec.n, spec.pattern, input_rng);
    NoAdversary none;
    EngineOptions opts = spec.engine;
    opts.seed = engine_seed_for_rep(spec.seed, rep);
    expected.add(engine.run(protocol, ws.inputs(), none, opts));
  }
  expected.note_quarantined(
      RepFailure{2, engine_seed_for_rep(spec.seed, 2), 1, "injected fault"});

  spec.policy = FailurePolicy::Quarantine;
  FaultInjector inject{spec, {}};
  const auto stats = run_repeated(protocol, inject.factory({2}), spec);
  EXPECT_EQ(stats.reps_quarantined(), 1u);
  EXPECT_EQ(stats.metrics().to_json().dump(),
            expected.metrics().to_json().dump());
}

TEST(ExecQuarantine, RetryReRunsTheIdenticalSeedAndCanSucceed) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Random, 808);
  spec.reps = 6;

  // Clean reference: no faults at all.
  const std::string clean = run_repeated(protocol, no_adversary_factory(),
                                         spec)
                                .metrics()
                                .to_json()
                                .dump();

  // Rep 2's adversary construction fails once, then succeeds: with one
  // retry allowed the batch must converge to the clean result bit for bit,
  // because the retry re-derives the same (input, adversary, engine)
  // streams from (master seed, rep).
  spec.engine.max_rep_retries = 1;
  FaultInjector inject{spec, {}};
  const auto stats =
      run_repeated(protocol, inject.factory({2}, /*fail_times=*/1), spec);
  EXPECT_EQ(stats.reps_quarantined(), 0u);
  EXPECT_EQ(stats.metrics().to_json().dump(), clean);
}

TEST(ExecQuarantine, AttemptsCountRetriesBeforeGivingUp) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 909);
  spec.reps = 4;
  spec.policy = FailurePolicy::Quarantine;
  spec.engine.max_rep_retries = 2;
  FaultInjector inject{spec, {}};
  const auto stats = run_repeated(protocol, inject.factory({1}), spec);
  ASSERT_EQ(stats.failures().size(), 1u);
  EXPECT_EQ(stats.failures()[0].attempts, 3u);  // 1 try + 2 retries
}

TEST(ExecQuarantine, FailFastStillThrowsDespiteRetries) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 1010);
  spec.reps = 4;
  spec.engine.max_rep_retries = 1;
  FaultInjector inject{spec, {}};
  EXPECT_THROW(run_repeated(protocol, inject.factory({1}), spec),
               RepError);
}

// ------------------------------------------------------ cooperative stop

/// Clears the process-wide stop flag on entry and exit so a failing test
/// cannot leak a pending stop into later tests.
struct StopFlagGuard {
  StopFlagGuard() { exec::clear_stop(); }
  ~StopFlagGuard() { exec::clear_stop(); }
};

TEST(ExecStop, PendingStopInterruptsSerialBatchBeforeAnyRep) {
  StopFlagGuard guard;
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 77);
  exec::request_stop();
  try {
    run_repeated(protocol, no_adversary_factory(), spec);
    FAIL() << "expected exec::Interrupted";
  } catch (const exec::Interrupted& e) {
    EXPECT_NE(std::string(e.what()).find("0 of 6"), std::string::npos)
        << e.what();
  }
}

TEST(ExecStop, PendingStopInterruptsParallelBatch) {
  StopFlagGuard guard;
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 78);
  spec.threads = 4;
  exec::request_stop();
  EXPECT_THROW(run_repeated(protocol, no_adversary_factory(), spec),
               exec::Interrupted);
}

struct StopAfterObserver final : obs::EngineObserver {
  int runs = 0;
  int stop_after = 0;
  void on_run_end(const obs::RunObservation& /*result*/) override {
    if (++runs == stop_after) exec::request_stop();
  }
};

TEST(ExecStop, MidBatchStopFinishesInFlightRepThenThrows) {
  StopFlagGuard guard;
  SynRanFactory protocol;
  StopAfterObserver observer;
  observer.stop_after = 3;
  RepeatSpec spec = base_spec(InputPattern::Half, 79);
  spec.engine.observer = &observer;
  try {
    run_repeated(protocol, no_adversary_factory(), spec);
    FAIL() << "expected exec::Interrupted";
  } catch (const exec::Interrupted& e) {
    // Rep 2's completion requested the stop; it was honored before rep 3.
    EXPECT_EQ(observer.runs, 3);
    EXPECT_NE(std::string(e.what()).find("3 of 6"), std::string::npos)
        << e.what();
  }
}

TEST(ExecStop, ClearStopLetsTheNextBatchRun) {
  StopFlagGuard guard;
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 80);
  exec::request_stop();
  EXPECT_THROW(run_repeated(protocol, no_adversary_factory(), spec),
               exec::Interrupted);
  exec::clear_stop();
  EXPECT_EQ(run_repeated(protocol, no_adversary_factory(), spec).reps(), 6u);
}

TEST(ExecErrors, RejectsZeroReps) {
  SynRanFactory protocol;
  RepeatSpec spec = base_spec(InputPattern::Half, 1);
  spec.reps = 0;
  EXPECT_THROW(exec::BatchExecutor().run(protocol, no_adversary_factory(),
                                         spec),
               ArgumentError);
}

// ------------------------------------------------------- workspace reuse

RunSummary fresh_run(const ProcessFactory& factory, std::uint32_t n,
                     InputPattern pattern, std::uint64_t seed) {
  EngineWorkspace ws;
  Engine engine(ws);
  Xoshiro256 rng = input_rng_for_rep(seed, 0);
  make_inputs(ws.inputs(), n, pattern, rng);
  NoAdversary none;
  EngineOptions opts;
  opts.seed = engine_seed_for_rep(seed, 0);
  return engine.run(factory, ws.inputs(), none, opts);
}

void expect_same_summary(const RunSummary& a, const RunSummary& b) {
  EXPECT_EQ(a.rounds_to_decision, b.rounds_to_decision);
  EXPECT_EQ(a.rounds_to_halt, b.rounds_to_halt);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.has_decision, b.has_decision);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.validity, b.validity);
  EXPECT_EQ(a.crashes_total, b.crashes_total);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(ExecWorkspace, ReuseAcrossRunsAndSizesMatchesFreshWorkspaces) {
  SynRanFactory protocol;
  EngineWorkspace ws;
  Engine engine(ws);
  NoAdversary none;
  // Grow, shrink, and repeat sizes; each run must match a fresh workspace.
  const std::uint32_t sizes[] = {4, 9, 4, 16, 9};
  std::uint64_t seed = 300;
  for (std::uint32_t n : sizes) {
    ++seed;
    Xoshiro256 rng = input_rng_for_rep(seed, 0);
    make_inputs(ws.inputs(), n, InputPattern::Random, rng);
    EngineOptions opts;
    opts.seed = engine_seed_for_rep(seed, 0);
    const RunSummary reused = engine.run(protocol, ws.inputs(), none, opts);
    const RunSummary fresh =
        fresh_run(protocol, n, InputPattern::Random, seed);
    expect_same_summary(reused, fresh);
  }
}

TEST(ExecWorkspace, FullResultPathAgreesWithSummary) {
  SynRanFactory protocol;
  EngineWorkspace ws;
  Engine engine(ws);
  NoAdversary none;
  Xoshiro256 rng = input_rng_for_rep(9, 0);
  make_inputs(ws.inputs(), 8, InputPattern::Random, rng);
  EngineOptions opts;
  opts.seed = engine_seed_for_rep(9, 0);
  const std::vector<Bit> inputs = ws.inputs();

  RunResult full;
  const RunSummary with_full =
      engine.run(protocol, ws.inputs(), none, opts, full);

  make_inputs(ws.inputs(), 8, InputPattern::Random,
              rng = input_rng_for_rep(9, 0));
  const RunSummary summary_only =
      engine.run(protocol, ws.inputs(), none, opts);

  expect_same_summary(with_full, summary_only);
  EXPECT_EQ(full.rounds_to_decision, with_full.rounds_to_decision);
  EXPECT_EQ(full.terminated, with_full.terminated);
  EXPECT_EQ(full.crashed.size(), 8u);
  EXPECT_EQ(full.decided.size(), 8u);
  // Per-round crash counts are materialized only on the full path, and sum
  // to the summary's total.
  std::uint32_t crash_sum = 0;
  for (std::uint32_t c : full.crashes_per_round) crash_sum += c;
  EXPECT_EQ(crash_sum, with_full.crashes_total);
  EXPECT_EQ(validity_holds(inputs, full), with_full.validity);
}

}  // namespace
}  // namespace synran
