// Unit tests for src/common: PRNG streams, coin sources, DynBitset, Table,
// and the check macros.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/dynbitset.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace synran {
namespace {

// ----------------------------------------------------------------- SplitMix

TEST(SplitMix64Test, KnownSequence) {
  // Reference values for seed 0 from the published splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

// ----------------------------------------------------------------- Xoshiro

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, SeedsProduceDifferentStreams) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256Test, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256Test, BelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256Test, BelowZeroBoundThrows) {
  Xoshiro256 rng(1);
  EXPECT_THROW(rng.below(0), ArgumentError);
}

TEST(Xoshiro256Test, BelowPinnedLemireSequence) {
  // Regression pin for Lemire's multiply-shift rejection: below() feeds
  // every seeded adversary and experiment, so its exact outputs for a fixed
  // seed are part of the bit-for-bit reproducibility contract. If this test
  // breaks, every recorded experiment number is stale.
  Xoshiro256 rng(0x5eed);
  const struct {
    std::uint64_t bound;
    std::uint64_t want;
  } pins[] = {
      {1, 0x0},
      {2, 0x1},
      {3, 0x2},
      {7, 0x6},
      {10, 0x6},
      {100, 0x34},
      {1000, 0x131},
      {1ULL << 33, 0xd827fa4bULL},
      {0xffffffffffffffffULL, 0xc68396bba4130cfbULL},
      {6, 0x4},
      {6, 0x1},
      {6, 0x4},
  };
  for (const auto& pin : pins) {
    EXPECT_EQ(rng.below(pin.bound), pin.want) << "bound " << pin.bound;
  }
}

TEST(Xoshiro256Test, BelowIsHighWordOfProductForPowerOfTwo) {
  // For bound 2^k the multiply-shift map is exactly the top k bits of
  // next() — a closed form that pins the algorithm (the old modulo-rejection
  // method would return the *bottom* bits instead).
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.below(1ULL << 32), b.next() >> 32);
  }
}

TEST(Xoshiro256Test, FlipIsRoughlyFair) {
  Xoshiro256 rng(11);
  int heads = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i)
    if (rng.flip()) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / reps, 0.5, 0.02);
}

// ------------------------------------------------------------ SeedSequence

TEST(SeedSequenceTest, StreamsAreDistinct) {
  SeedSequence seq(99);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(seq.stream(i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(SeedSequenceTest, StreamsAreStable) {
  SeedSequence a(5), b(5);
  EXPECT_EQ(a.stream(3), b.stream(3));
  EXPECT_NE(a.stream(3), a.stream(4));
  EXPECT_EQ(a.master(), 5u);
}

TEST(SeedSequenceTest, DistinctMastersDecorrelate) {
  // The same stream id under different master seeds must not collide —
  // otherwise two "independent" experiment repetitions share randomness.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t master = 0; master < 500; ++master) {
    seeds.insert(SeedSequence(master).stream(7));
  }
  EXPECT_EQ(seeds.size(), 500u);
}

TEST(SeedSequenceTest, StreamsSeedDecorrelatedGenerators) {
  // Adjacent stream ids are the common case (one per process id); the
  // generators they seed must diverge immediately. Distinct sub-seeds alone
  // are not enough if the expansion collapses them.
  SeedSequence seq(42);
  std::set<std::uint64_t> first_outputs;
  for (std::uint64_t id = 0; id < 500; ++id) {
    Xoshiro256 rng(seq.stream(id));
    first_outputs.insert(rng.next());
  }
  EXPECT_EQ(first_outputs.size(), 500u);
}

// ------------------------------------------------------------- CoinSources

TEST(TapeCoinSourceTest, ReplaysTapeInOrder) {
  TapeCoinSource tape({true, false, true});
  EXPECT_TRUE(tape.flip());
  EXPECT_FALSE(tape.flip());
  EXPECT_TRUE(tape.flip());
  EXPECT_EQ(tape.consumed(), 3u);
}

TEST(TapeCoinSourceTest, ExhaustionThrows) {
  TapeCoinSource tape({true});
  tape.flip();
  EXPECT_THROW(tape.flip(), InvariantError);
}

TEST(TapeCoinSourceTest, ResetStartsOver) {
  TapeCoinSource tape({true});
  tape.flip();
  tape.reset({false, false});
  EXPECT_FALSE(tape.flip());
  EXPECT_EQ(tape.consumed(), 1u);
}

TEST(TapeCoinSourceTest, EmptyTapeIsExhaustedImmediately) {
  TapeCoinSource empty;
  EXPECT_EQ(empty.consumed(), 0u);
  EXPECT_THROW(empty.flip(), InvariantError);
}

TEST(TapeCoinSourceTest, ResetRearmsAnExhaustedTape) {
  // The valency engine reuses one tape object across enumerated branches:
  // exhaustion must be recoverable by reset, and consumed() must restart.
  TapeCoinSource tape({true, false});
  tape.flip();
  tape.flip();
  EXPECT_THROW(tape.flip(), InvariantError);
  tape.reset({false});
  EXPECT_EQ(tape.consumed(), 0u);
  EXPECT_FALSE(tape.flip());
  EXPECT_EQ(tape.consumed(), 1u);
  EXPECT_THROW(tape.flip(), InvariantError);
}

TEST(TapeCoinSourceTest, ResetToEmptyLeavesNothingToFlip) {
  TapeCoinSource tape({true});
  tape.reset({});
  EXPECT_EQ(tape.consumed(), 0u);
  EXPECT_THROW(tape.flip(), InvariantError);
}

TEST(CountingCoinSourceTest, CountsDemands) {
  CountingCoinSource c;
  EXPECT_EQ(c.count(), 0u);
  c.flip();
  c.flip();
  EXPECT_EQ(c.count(), 2u);
}

TEST(CountingCoinSourceTest, AlwaysReturnsTailsWhileCounting) {
  // The counting pass discovers how many coins a round wants *before*
  // enumeration; its answers must be deterministic (all false) so the probe
  // run itself is reproducible.
  CountingCoinSource c;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(c.flip());
  EXPECT_EQ(c.count(), 100u);
}

TEST(RandomCoinSourceTest, SeededDeterminism) {
  RandomCoinSource a(17), b(17);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.flip(), b.flip());
}

// --------------------------------------------------------------- DynBitset

TEST(DynBitsetTest, StartsClear) {
  DynBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
}

TEST(DynBitsetTest, FilledConstructor) {
  DynBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.test(69));
}

TEST(DynBitsetTest, SetResetTest) {
  DynBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitsetTest, OutOfRangeThrows) {
  DynBitset b(10);
  EXPECT_THROW(b.test(10), InvariantError);
  EXPECT_THROW(b.set(10), InvariantError);
}

TEST(DynBitsetTest, BitwiseOps) {
  DynBitset a(65), b(65);
  a.set(1);
  a.set(64);
  b.set(1);
  b.set(2);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a ^ b).count(), 2u);
}

TEST(DynBitsetTest, SetAllRespectsTrailingBits) {
  DynBitset b(66);
  b.set_all();
  EXPECT_EQ(b.count(), 66u);
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynBitsetTest, ForEachSetVisitsInOrder) {
  DynBitset b(200);
  const std::vector<std::size_t> expected{3, 63, 64, 128, 199};
  for (auto i : expected) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynBitsetTest, EqualityAndHash) {
  DynBitset a(50), b(50);
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(8);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(DynBitsetTest, MismatchedSizesThrow) {
  DynBitset a(10), b(11);
  EXPECT_THROW(a &= b, InvariantError);
}

// ------------------------------------------------------------------- Table

TEST(TableTest, AlignsColumnsAndPrintsTitle) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({std::string("x"), 42LL});
  t.row({std::string("longer"), 7LL});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, DoublePrecision) {
  Table t;
  t.header({"v"});
  t.precision(2);
  t.row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommas) {
  Table t;
  t.header({"a", "b"});
  t.row({std::string("x,y"), 1LL});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\",1"), std::string::npos);
}

TEST(TableTest, RowCount) {
  Table t;
  t.header({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row({1LL});
  t.row({2LL});
  EXPECT_EQ(t.row_count(), 2u);
}

// ------------------------------------------------------------------ Checks

TEST(CheckTest, RequireThrowsArgumentError) {
  EXPECT_THROW(SYNRAN_REQUIRE(false, "boom"), ArgumentError);
}

TEST(CheckTest, CheckThrowsInvariantError) {
  EXPECT_THROW(SYNRAN_CHECK(1 == 2), InvariantError);
}

TEST(CheckTest, PassingChecksAreSilent) {
  EXPECT_NO_THROW(SYNRAN_CHECK(true));
  EXPECT_NO_THROW(SYNRAN_REQUIRE(true, "fine"));
}

// --------------------------------------------------------------------- ids

TEST(BitTest, FlipAndConvert) {
  EXPECT_EQ(flip(Bit::Zero), Bit::One);
  EXPECT_EQ(flip(Bit::One), Bit::Zero);
  EXPECT_EQ(to_int(Bit::One), 1);
  EXPECT_EQ(bit_of(true), Bit::One);
  EXPECT_EQ(bit_of(false), Bit::Zero);
}

}  // namespace
}  // namespace synran
