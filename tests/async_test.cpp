// Tests for the asynchronous substrate: codec, engine mechanics, schedulers,
// and the Ben-Or protocol's consensus properties.
#include <gtest/gtest.h>

#include "async/benor.hpp"
#include "async/core.hpp"
#include "async/scheduler.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

std::vector<Bit> bits(std::initializer_list<int> xs) {
  std::vector<Bit> out;
  for (int x : xs) out.push_back(x ? Bit::One : Bit::Zero);
  return out;
}

// ------------------------------------------------------------------- codec

TEST(BenOrWireTest, RoundTripsAllFields) {
  using W = BenOrAsyncProcess::Wire;
  for (bool proposal : {false, true}) {
    for (std::uint32_t round : {1u, 2u, 77u, 1u << 20}) {
      for (int value : {-1, 0, 1}) {
        if (value < 0 && !proposal) continue;  // reports carry real values
        const W w{proposal, round, value};
        const W back = BenOrAsyncProcess::decode(BenOrAsyncProcess::encode(w));
        EXPECT_EQ(back.proposal, proposal);
        EXPECT_EQ(back.round, round);
        EXPECT_EQ(back.value, value);
      }
    }
  }
}

TEST(BenOrWireTest, RejectsBotReport) {
  EXPECT_THROW(BenOrAsyncProcess::encode({false, 1, -1}), ArgumentError);
}

// ----------------------------------------------------------------- engine

TEST(AsyncEngineTest, SingleProcessDecidesImmediately) {
  BenOrAsyncFactory factory;
  FifoScheduler fifo;
  const auto res = run_async(factory, bits({1}), fifo, {});
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_EQ(res.crashes, 0u);
}

TEST(AsyncEngineTest, ValidityUnderEveryScheduler) {
  BenOrAsyncFactory factory;
  for (Bit v : {Bit::Zero, Bit::One}) {
    const std::vector<Bit> inputs(9, v);
    AsyncEngineOptions opts;
    opts.t_budget = 4;

    FifoScheduler fifo;
    auto res = run_async(factory, inputs, fifo, opts);
    EXPECT_TRUE(res.terminated);
    EXPECT_EQ(res.decision, v);

    RandomScheduler rnd(3);
    res = run_async(factory, inputs, rnd, opts);
    EXPECT_TRUE(res.terminated);
    EXPECT_EQ(res.decision, v);

    LaggardScheduler lag(5);
    res = run_async(factory, inputs, lag, opts);
    EXPECT_TRUE(res.terminated);
    EXPECT_EQ(res.decision, v);
    EXPECT_TRUE(res.agreement);
  }
}

TEST(AsyncEngineTest, AgreementOnMixedInputsAcrossSeeds) {
  BenOrAsyncFactory factory;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AsyncEngineOptions opts;
    opts.t_budget = 3;
    opts.seed = seed;
    RandomScheduler sched(seed * 7);
    const auto res =
        run_async(factory, bits({0, 1, 0, 1, 0, 1, 1}), sched, opts);
    ASSERT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
    EXPECT_GE(res.max_round, 1u);
  }
}

TEST(AsyncEngineTest, LaggardSchedulerStillTerminatesAndAgrees) {
  BenOrAsyncFactory factory;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AsyncEngineOptions opts;
    opts.t_budget = 4;
    opts.seed = seed;
    LaggardScheduler sched(seed);
    const auto res =
        run_async(factory, bits({0, 1, 0, 1, 0, 1, 0, 1, 0}), sched, opts);
    ASSERT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
    EXPECT_LE(res.crashes, 4u);
  }
}

TEST(AsyncEngineTest, CoinFlipsAreCounted) {
  // Mixed inputs with an adversarial scheduler: at least some executions
  // must reach the coin-flip branch.
  BenOrAsyncFactory factory;
  std::uint64_t total_flips = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AsyncEngineOptions opts;
    opts.t_budget = 2;
    opts.seed = seed;
    LaggardScheduler sched(seed);
    const auto res = run_async(factory, bits({0, 0, 1, 1, 0, 1}), sched,
                               opts);
    total_flips += res.coin_flips;
  }
  EXPECT_GT(total_flips, 0u);
}

TEST(AsyncEngineTest, RejectsTAtLeastHalf) {
  BenOrAsyncFactory factory;
  FifoScheduler fifo;
  AsyncEngineOptions opts;
  opts.t_budget = 3;  // n = 6: 2t !< n
  EXPECT_THROW(run_async(factory, bits({0, 1, 0, 1, 0, 1}), fifo, opts),
               ArgumentError);
}

TEST(AsyncEngineTest, DeterministicForSeed) {
  BenOrAsyncFactory factory;
  AsyncEngineOptions opts;
  opts.t_budget = 2;
  opts.seed = 99;
  RandomScheduler s1(5), s2(5);
  const auto a = run_async(factory, bits({0, 1, 1, 0, 1}), s1, opts);
  const auto b = run_async(factory, bits({0, 1, 1, 0, 1}), s2, opts);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.coin_flips, b.coin_flips);
}

// A scheduler that tries to exceed its crash budget — the engine must throw.
class GreedyCrasher final : public AsyncScheduler {
 public:
  AsyncAction step(const AsyncWorld& world) override {
    for (ProcessId i = 0; i < world.n(); ++i) {
      if (!world.crashed(i)) {
        AsyncAction a;
        a.kind = AsyncAction::Kind::Crash;
        a.victim = i;
        return a;
      }
    }
    return {AsyncAction::Kind::Deliver, 0, 0, {}};
  }
  const char* name() const override { return "greedy-crasher"; }
};

TEST(AsyncEngineTest, CrashBudgetIsEnforced) {
  BenOrAsyncFactory factory;
  GreedyCrasher sched;
  AsyncEngineOptions opts;
  opts.t_budget = 1;  // the second crash must throw
  EXPECT_THROW(run_async(factory, bits({0, 1, 0}), sched, opts),
               InvariantError);
}

TEST(AsyncEngineTest, CrashDropsInTransitTraffic) {
  // Crash process 0 immediately, dropping everything it sent: the rest
  // must still decide among themselves.
  class CrashZeroFirst final : public AsyncScheduler {
   public:
    AsyncAction step(const AsyncWorld& world) override {
      if (!done_ && !world.crashed(0)) {
        done_ = true;
        AsyncAction a;
        a.kind = AsyncAction::Kind::Crash;
        a.victim = 0;
        for (std::size_t i = 0; i < world.pending().size(); ++i)
          if (world.pending()[i].from == 0) a.drop.push_back(i);
        return a;
      }
      return {AsyncAction::Kind::Deliver, 0, 0, {}};
    }
    const char* name() const override { return "crash-zero"; }

   private:
    bool done_ = false;
  } sched;

  BenOrAsyncFactory factory;
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  // Process 0 holds the only 0: with it gone before anyone heard it, the
  // system must decide 1.
  const auto res = run_async(factory, bits({0, 1, 1, 1, 1}), sched, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_EQ(res.crashes, 1u);
}

// --------------------------------------------- the O(1)-for-small-t story

TEST(AsyncBenOrProperty, FastForUnanimousAndSmallT) {
  // [BO83]: constant expected rounds when t = O(√n); with benign random
  // scheduling and few crashes the round count stays small.
  BenOrAsyncFactory factory;
  std::uint32_t worst_round = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AsyncEngineOptions opts;
    opts.t_budget = 2;  // ≈ √n for n = 9
    opts.seed = seed;
    RandomScheduler sched(seed);
    const auto res =
        run_async(factory, bits({1, 1, 0, 1, 1, 0, 1, 1, 1}), sched, opts);
    ASSERT_TRUE(res.terminated);
    worst_round = std::max(worst_round, res.max_round);
  }
  EXPECT_LE(worst_round, 12u);
}

}  // namespace
}  // namespace synran

namespace synran {
namespace {

// ------------------------------------------------------ scheduler details

TEST(SchedulerTest, FifoDeliversAValidIndex) {
  BenOrAsyncFactory factory;
  FifoScheduler fifo;
  AsyncEngineOptions opts;
  const auto res = run_async(factory, bits({1, 0, 1}), fifo, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_GT(res.steps, 0u);
}

TEST(SchedulerTest, RandomSchedulerIsSeedDeterministic) {
  BenOrAsyncFactory factory;
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  opts.seed = 4;
  RandomScheduler s1(9), s2(9), s3(10);
  const auto a = run_async(factory, bits({1, 0, 1, 0, 1}), s1, opts);
  const auto b = run_async(factory, bits({1, 0, 1, 0, 1}), s2, opts);
  const auto c = run_async(factory, bits({1, 0, 1, 0, 1}), s3, opts);
  EXPECT_EQ(a.steps, b.steps);
  // A different scheduler seed almost surely changes the trajectory; allow
  // outcome equality but require SOME observable difference.
  EXPECT_TRUE(a.steps != c.steps || a.coin_flips != c.coin_flips ||
              a.max_round != c.max_round);
}

TEST(SchedulerTest, LaggardPrefersNonLaggardTraffic) {
  // With 2 laggards out of 6, the first deliveries all come from the
  // non-lagging majority; verify via a one-step inspection harness.
  std::vector<AsyncMessage> pending;
  for (ProcessId from = 0; from < 6; ++from)
    pending.push_back({from, 5, 0});
  std::vector<AsyncProcessView> views(6);
  std::vector<bool> crashed(6, false);
  AsyncWorld world(pending, views, crashed, 0, 0);

  LaggardScheduler sched(1);
  sched.begin(6, 2);  // processes 0 and 1 lag
  const auto action = sched.step(world);
  ASSERT_EQ(action.kind, AsyncAction::Kind::Deliver);
  EXPECT_GE(pending[action.index].from, 2u);
}

TEST(BenOrAsyncTest, StaleMessagesAreIgnoredSafely) {
  // Feed a process an ancient round's report after it advanced: state must
  // not regress (exercised by delivering out of order via LIFO).
  class LifoScheduler final : public AsyncScheduler {
   public:
    AsyncAction step(const AsyncWorld& world) override {
      return {AsyncAction::Kind::Deliver, world.pending().size() - 1, 0, {}};
    }
    const char* name() const override { return "lifo"; }
  } lifo;

  BenOrAsyncFactory factory;
  AsyncEngineOptions opts;
  opts.t_budget = 2;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    opts.seed = seed;
    const auto res =
        run_async(factory, bits({0, 1, 1, 0, 1, 0, 1}), lifo, opts);
    ASSERT_TRUE(res.terminated) << seed;
    EXPECT_TRUE(res.agreement) << seed;
  }
}

TEST(BenOrAsyncTest, MinimalSystemsAcrossT) {
  BenOrAsyncFactory factory;
  for (std::uint32_t n : {1u, 2u, 3u, 5u}) {
    const std::uint32_t t = n >= 3 ? (n - 1) / 2 : 0;
    std::vector<Bit> inputs;
    for (std::uint32_t i = 0; i < n; ++i)
      inputs.push_back(i % 2 ? Bit::One : Bit::Zero);
    RandomScheduler sched(n);
    AsyncEngineOptions opts;
    opts.t_budget = t;
    opts.seed = n;
    const auto res = run_async(factory, inputs, sched, opts);
    ASSERT_TRUE(res.terminated) << "n=" << n;
    EXPECT_TRUE(res.agreement) << "n=" << n;
  }
}

}  // namespace
}  // namespace synran
