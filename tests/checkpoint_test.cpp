// Tests for the synran-ckpt/1 checkpoint layer (obs/checkpoint.hpp): exact
// registry snapshots (raw Welford m2, shortest-round-trip doubles), the
// on-disk ledger's load/record cycle, its tolerance for the torn tails a
// killed run leaves behind, and clean IoError surfacing when the ledger
// cannot be written.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.hpp"
#include "exec/executor.hpp"
#include "obs/checkpoint.hpp"
#include "obs/io_error.hpp"
#include "obs/metrics.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / ("synran_ckpt_test_" + name)).string();
}

/// A registry exercising every metric kind with values whose decimal
/// representations are non-trivial (irrationals, long mantissas): only a
/// bit-exact snapshot round-trips them.
obs::MetricsRegistry sample_registry() {
  obs::MetricsRegistry r;
  r.counter("reps").inc(7);
  r.counter("failures").inc(0);
  r.gauge("last_ratio").set(1.0 / 3.0);
  auto& h = r.histogram("rounds", {1.0, 2.0, 5.0});
  for (double x : {0.5, 1.5, 1.5, 3.0, 100.0}) h.add(x);
  auto& s = r.summary("wait");
  for (int i = 1; i <= 9; ++i) s.add(std::sqrt(static_cast<double>(i)));
  return r;
}

TEST(ResilienceCkpt, SnapshotRestoreReproducesRegistryBitForBit) {
  const obs::MetricsRegistry original = sample_registry();
  const obs::JsonValue snapshot = obs::registry_snapshot(original);
  const obs::MetricsRegistry restored = obs::registry_restore(snapshot);

  // Identical public output...
  EXPECT_EQ(original.to_json().dump(), restored.to_json().dump());
  // ...identical exact state (snapshot of the snapshot)...
  EXPECT_EQ(snapshot.dump(), obs::registry_snapshot(restored).dump());
  // ...and identical behavior under further merges: the restored registry
  // must continue accumulating exactly where the original would have.
  obs::MetricsRegistry a = sample_registry();
  obs::MetricsRegistry b = obs::registry_restore(snapshot);
  const obs::MetricsRegistry extra = sample_registry();
  a.merge(extra);
  b.merge(extra);
  EXPECT_EQ(obs::registry_snapshot(a).dump(), obs::registry_snapshot(b).dump());
}

TEST(ResilienceCkpt, SummaryRestoreValidates) {
  const auto s = Summary::restore(3, 2.0, 0.5, 1.0, 3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.m2(), 0.5);
  EXPECT_THROW(Summary::restore(3, 2.0, -0.5, 1.0, 3.0),
               ArgumentError);
}

TEST(ResilienceCkpt, RegistryRestoreRejectsMalformedSnapshots) {
  EXPECT_THROW(obs::registry_restore(obs::JsonValue(std::int64_t{5})),
               ArgumentError);
  // Structurally an object, but missing the member catalogues.
  EXPECT_THROW(obs::registry_restore(obs::JsonValue::object()), ArgumentError);
  // A summary with negative m2 must be rejected, not smuggled into stddev.
  const auto bad = obs::JsonValue::parse(
      R"({"counters":{},"gauges":{},"histograms":{},)"
      R"("summaries":{"x":{"count":2,"mean":1.0,"m2":-1.0,"min":0.0,)"
      R"("max":2.0}}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_THROW(obs::registry_restore(*bad), ArgumentError);
}

TEST(ResilienceCkpt, BatchStatsCheckpointRoundTripsThroughTheLedger) {
  // End to end: run a real batch, checkpoint it, reload it, and require the
  // restored stats to be indistinguishable — the property the resumed bench
  // reports' byte-identity rests on.
  SynRanFactory protocol;
  RepeatSpec spec;
  spec.n = 8;
  spec.pattern = InputPattern::Random;
  spec.reps = 6;
  spec.seed = 99;
  spec.engine.t_budget = 3;
  const auto stats = run_repeated(protocol, no_adversary_factory(), spec);

  const std::string path = temp_path("roundtrip.jsonl");
  fs::remove(path);
  const std::string key = spec_cell_key(spec, protocol.name(), "test");
  {
    obs::CheckpointLedger ledger(path, "unit", 99);
    ledger.record(obs::CheckpointCell{0, key, stats.checkpoint_json()});
  }
  obs::CheckpointLedger reloaded(path, "unit", 99);
  EXPECT_EQ(reloaded.loaded(), 1u);
  const obs::CheckpointCell* hit = reloaded.find(0, key);
  ASSERT_NE(hit, nullptr);
  const auto restored = RepeatedRunStats::from_checkpoint(hit->data);
  EXPECT_EQ(stats.metrics().to_json().dump(),
            restored.metrics().to_json().dump());
  EXPECT_EQ(stats.checkpoint_json().dump(), restored.checkpoint_json().dump());
  fs::remove(path);
}

TEST(ResilienceCkpt, FindMissesOnAbsentCellOrChangedKey) {
  const std::string path = temp_path("find.jsonl");
  fs::remove(path);
  obs::CheckpointLedger ledger(path, "unit", 1);
  ledger.record(obs::CheckpointCell{0, "key-a", obs::JsonValue::object()});
  EXPECT_NE(ledger.find(0, "key-a"), nullptr);
  EXPECT_EQ(ledger.find(0, "key-b"), nullptr);  // edited sweep: stale record
  EXPECT_EQ(ledger.find(1, "key-a"), nullptr);  // never recorded
  fs::remove(path);
}

TEST(ResilienceCkpt, TornTailKeepsTheValidPrefix) {
  const std::string path = temp_path("torn.jsonl");
  fs::remove(path);
  {
    obs::CheckpointLedger ledger(path, "unit", 7);
    ledger.record(obs::CheckpointCell{0, "k0", obs::JsonValue(true)});
    ledger.record(obs::CheckpointCell{1, "k1", obs::JsonValue(true)});
  }
  {
    // A process killed mid-flush leaves a partial final line.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"cell\":2,\"key\":\"k2\",\"da";
  }
  obs::CheckpointLedger reloaded(path, "unit", 7);
  EXPECT_EQ(reloaded.loaded(), 2u);
  EXPECT_NE(reloaded.find(0, "k0"), nullptr);
  EXPECT_NE(reloaded.find(1, "k1"), nullptr);
  EXPECT_EQ(reloaded.find(2, "k2"), nullptr);
  fs::remove(path);
}

TEST(ResilienceCkpt, ForeignHeaderDiscardsTheFileCells) {
  const std::string path = temp_path("foreign.jsonl");
  fs::remove(path);
  {
    obs::CheckpointLedger ledger(path, "experiment-a", 7);
    ledger.record(obs::CheckpointCell{0, "k0", obs::JsonValue(true)});
  }
  // Different experiment or seed: the recorded cells answer a different
  // question and must not be served.
  EXPECT_EQ(obs::CheckpointLedger(path, "experiment-b", 7).loaded(), 0u);
  EXPECT_EQ(obs::CheckpointLedger(path, "experiment-a", 8).loaded(), 0u);
  EXPECT_EQ(obs::CheckpointLedger(path, "experiment-a", 7).loaded(), 1u);
  fs::remove(path);
}

TEST(ResilienceCkpt, DisabledLedgerIsInert) {
  obs::CheckpointLedger ledger;
  EXPECT_FALSE(ledger.enabled());
  ledger.record(obs::CheckpointCell{0, "k", obs::JsonValue(true)});  // no-op
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.find(0, "k"), nullptr);
}

TEST(ResilienceCkpt, UnwritableLedgerPathThrowsIoErrorAndLeavesNoFiles) {
  // A path beneath a regular file can never be opened (works even as root,
  // unlike permission tricks): record() must surface obs::IoError and leave
  // neither the ledger nor its temp file behind.
  const std::string block = temp_path("block_file");
  { std::ofstream out(block, std::ios::binary); }
  const std::string path = block + "/sub/ledger.jsonl";
  obs::CheckpointLedger ledger(path, "unit", 1);
  EXPECT_THROW(
      ledger.record(obs::CheckpointCell{0, "k", obs::JsonValue(true)}),
      obs::IoError);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(block);
}

}  // namespace
}  // namespace synran
