// Unit tests for src/analysis: summary statistics, exact binomial tails, the
// paper's Lemma 4.4 bound, Schechtman quantities, theory curves, and fits.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/binomial.hpp"
#include "analysis/fit.hpp"
#include "analysis/stats.hpp"
#include "analysis/theory.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace synran {
namespace {

// ----------------------------------------------------------------- Summary

TEST(SummaryTest, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  Summary s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  double var = 0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= 4.0;
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(SummaryTest, MergeEqualsSequential) {
  Xoshiro256 rng(1);
  Summary whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptySides) {
  Summary a, b;
  a.add(1.0);
  a.merge(b);  // empty other
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty self
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// --------------------------------------------------------------- intervals

TEST(WilsonTest, CoversTrueProportion) {
  const auto iv = wilson_interval(50, 100);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_GT(iv.lo, 0.35);
  EXPECT_LT(iv.hi, 0.65);
}

TEST(WilsonTest, ExtremesStayInUnitInterval) {
  const auto zero = wilson_interval(0, 20);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_interval(20, 20);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_LE(all.hi, 1.0);
}

TEST(WilsonTest, InvalidArgumentsThrow) {
  EXPECT_THROW(wilson_interval(1, 0), ArgumentError);
  EXPECT_THROW(wilson_interval(5, 4), ArgumentError);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), ArgumentError);
  EXPECT_THROW(quantile({1.0}, 1.5), ArgumentError);
}

// ---------------------------------------------------------------- binomial

TEST(BinomialTest, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-6);
  EXPECT_NEAR(std::exp(log_binomial(7, 0)), 1.0, 1e-12);
  EXPECT_THROW(log_binomial(3, 4), ArgumentError);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double acc = 0;
    for (std::uint64_t k = 0; k <= 30; ++k) acc += binomial_pmf(30, k, p);
    EXPECT_NEAR(acc, 1.0, 1e-9);
  }
}

TEST(BinomialTest, PmfEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 11, 0.5), 0.0);
}

TEST(BinomialTest, TailsAreComplementary) {
  for (std::uint64_t k = 0; k <= 20; ++k) {
    const double upper = binomial_upper_tail(20, k, 0.3);
    const double lower = k == 0 ? 0.0 : binomial_lower_tail(20, k - 1, 0.3);
    EXPECT_NEAR(upper + lower, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(BinomialTest, TailMonotonicity) {
  double prev = 1.0;
  for (std::uint64_t k = 0; k <= 40; ++k) {
    const double t = binomial_upper_tail(40, k, 0.5);
    EXPECT_LE(t, prev + 1e-12);
    prev = t;
  }
}

TEST(BinomialTest, FairCoinMedianTail) {
  // Pr(X >= n/2) > 1/2 for even n (median at n/2).
  EXPECT_GT(binomial_upper_tail(100, 50, 0.5), 0.5);
  EXPECT_LT(binomial_upper_tail(100, 51, 0.5), 0.5);
}

// Lemma 4.4: Pr(x − n/2 ≥ t√n) ≥ e^{−4(t+1)²}/√(2π) for t < √n/8.
TEST(Lemma44Test, LowerBoundHoldsAgainstExactTail) {
  for (std::uint64_t n : {64u, 256u, 1024u, 4096u}) {
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    for (double t = 0.0; t < sqrt_n / 8.0; t += 0.25) {
      const auto k = static_cast<std::uint64_t>(
          std::ceil(n / 2.0 + t * sqrt_n));
      const double exact = binomial_upper_tail(n, k, 0.5);
      const double bound = lemma44_lower_bound(t);
      EXPECT_GE(exact, bound) << "n=" << n << " t=" << t;
    }
  }
}

TEST(Lemma44Test, Corollary45Instantiation) {
  // t = √(ln n)/8 gives Pr ≥ √(ln n / n) — check the bound chain holds for
  // the exact tail at a representative n.
  const std::uint64_t n = 1024;
  const double t = std::sqrt(std::log(static_cast<double>(n))) / 8.0;
  const auto k = static_cast<std::uint64_t>(
      std::ceil(n / 2.0 + t * std::sqrt(static_cast<double>(n))));
  const double exact = binomial_upper_tail(n, k, 0.5);
  EXPECT_GE(exact, std::sqrt(std::log(static_cast<double>(n)) /
                             static_cast<double>(n)));
}

TEST(HoeffdingTest, UpperBoundsExactTail) {
  for (std::uint64_t n : {50u, 200u}) {
    for (double a = 0; a <= n / 2.0; a += 5.0) {
      const auto k =
          static_cast<std::uint64_t>(std::ceil(n / 2.0 + a));
      EXPECT_LE(binomial_upper_tail(n, k, 0.5),
                hoeffding_upper_bound(static_cast<double>(n), a) + 1e-12);
    }
  }
}

TEST(SchechtmanTest, L0Formula) {
  EXPECT_NEAR(schechtman_l0(100.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(schechtman_l0(100.0, std::exp(-1.0)), 20.0, 1e-9);
  EXPECT_THROW(schechtman_l0(100.0, 0.0), ArgumentError);
}

TEST(SchechtmanTest, BoundShape) {
  const double n = 64, alpha = 0.1;
  const double l0 = schechtman_l0(n, alpha);
  EXPECT_EQ(schechtman_expansion_bound(n, alpha, l0 - 1.0), 0.0);
  EXPECT_EQ(schechtman_expansion_bound(n, alpha, l0), 0.0);
  const double b1 = schechtman_expansion_bound(n, alpha, l0 + 4.0);
  const double b2 = schechtman_expansion_bound(n, alpha, l0 + 8.0);
  EXPECT_GT(b2, b1);
  EXPECT_LT(b2, 1.0);
}

TEST(SchechtmanTest, PaperInstantiation) {
  // The Lemma 2.1 instantiation: α = 1/n, l = 4√(n·ln n) gives ≥ 1 − 1/n.
  for (double n : {64.0, 256.0, 4096.0}) {
    const double l = 4.0 * std::sqrt(n * std::log(n));
    const double bound = schechtman_expansion_bound(n, 1.0 / n, l);
    EXPECT_GE(bound, 1.0 - 1.0 / n - 1e-9) << "n=" << n;
  }
}

// ------------------------------------------------------------------ theory

TEST(TheoryTest, TightBoundReducesToSqrtRegimes) {
  // t = √n ⇒ f ≈ √n/√(n·ln3) = 1/√ln3 — constant.
  const double f = theory::tight_round_bound(10000.0, 100.0);
  EXPECT_NEAR(f, 1.0 / std::sqrt(std::log(3.0)), 1e-9);
  // t = n: f = √(n/ln(2+√n)) grows with n.
  EXPECT_GT(theory::tight_round_bound(4096.0, 4096.0),
            theory::tight_round_bound(1024.0, 1024.0));
}

TEST(TheoryTest, MonotoneInT) {
  double prev = 0.0;
  for (double t = 0.0; t <= 1024.0; t += 64.0) {
    const double f = theory::tight_round_bound(1024.0, t);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(TheoryTest, PerRoundBudgetMatchesFormula) {
  const double n = 1024.0;
  EXPECT_NEAR(theory::per_round_budget(n),
              4.0 * std::sqrt(n * std::log(n)) + 1.0, 1e-9);
}

TEST(TheoryTest, DeterministicStageThreshold) {
  const double n = 1024.0;
  EXPECT_NEAR(theory::deterministic_stage_threshold(n),
              std::sqrt(n / std::log(n)), 1e-9);
  // Guarded for tiny n.
  EXPECT_GE(theory::deterministic_stage_threshold(1.0), 1.0);
  EXPECT_GE(theory::deterministic_stage_rounds(1.0), 2u);
}

TEST(TheoryTest, ValencyEpsilonClamps) {
  EXPECT_NEAR(theory::valency_epsilon(100.0, 1.0), 0.1 - 0.01, 1e-12);
  EXPECT_EQ(theory::valency_epsilon(100.0, 50.0), 0.0);
}

TEST(TheoryTest, LowerBoundRoundsScales) {
  // Doubling t doubles the forced-round curve.
  const double a = theory::lower_bound_rounds(4096.0, 1000.0);
  const double b = theory::lower_bound_rounds(4096.0, 2000.0);
  EXPECT_NEAR(b / a, 2.0, 1e-9);
}

// --------------------------------------------------------------------- fit

TEST(FitTest, ScaleFitRecoversExactProportionality) {
  std::vector<double> f{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.5, 5.0, 7.5, 10.0};
  const auto fit = fit_scale(f, y);
  EXPECT_NEAR(fit.scale, 2.5, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.ratio_spread(), 1.0, 1e-12);
}

TEST(FitTest, RatioSpreadDetectsShapeMismatch) {
  std::vector<double> f{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{1.0, 4.0, 9.0, 16.0};  // quadratic, not linear
  const auto fit = fit_scale(f, y);
  EXPECT_GT(fit.ratio_spread(), 3.0);
}

TEST(FitTest, ZeroReferencePointsAreSkipped) {
  std::vector<double> f{0.0, 1.0, 2.0};
  std::vector<double> y{5.0, 3.0, 6.0};
  const auto fit = fit_scale(f, y);
  EXPECT_NEAR(fit.scale, 3.0, 1e-12);
  EXPECT_EQ(fit.ratios[0], 0.0);
}

TEST(FitTest, LinearFitRecoversLine) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitTest, RejectsDegenerateInput) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0};
  EXPECT_THROW(fit_linear(x, y), ArgumentError);
  std::vector<double> same{2.0, 2.0};
  EXPECT_THROW(fit_linear(same, same), ArgumentError);
  EXPECT_THROW(fit_scale({}, {}), ArgumentError);
}

}  // namespace
}  // namespace synran
