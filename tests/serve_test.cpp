// The serve daemon's contract, tested without sockets or subprocesses:
// regular-file fd pairs drive the same serve_stream() loop the daemon
// runs, and exec::note_signal_stop() plays the operator's SIGINT. The
// properties pinned here are the ones ISSUE-level clients rely on:
// strict framing, CLI-grade request validation, canonicalization (two
// spellings of one batch → one cache key), crash-safe cache recovery
// with quarantine, retry-with-backoff under injected I/O faults, per-
// request deadlines that outlive the request but not the daemon, bounded
// queueing with explicit shedding, and byte-identical responses from the
// compute path, the cache-hit path, and a restarted daemon.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/stopper.hpp"
#include "obs/atomic_file.hpp"
#include "obs/io_error.hpp"
#include "obs/json.hpp"
#include "serve/cache.hpp"
#include "serve/frame.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace synran::serve {
namespace {

namespace fs = std::filesystem;
using obs::JsonValue;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("synran_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

std::string frame(const std::string& body) {
  return std::to_string(body.size()) + "\n" + body;
}

/// Splits a captured response stream back into frame bodies.
std::vector<std::string> split_frames(const std::string& bytes) {
  std::vector<std::string> bodies;
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t nl = bytes.find('\n', at);
    EXPECT_NE(nl, std::string::npos) << "torn length line";
    const std::size_t len = std::stoul(bytes.substr(at, nl - at));
    EXPECT_LE(nl + 1 + len, bytes.size()) << "torn frame body";
    bodies.push_back(bytes.substr(nl + 1, len));
    at = nl + 1 + len;
  }
  return bodies;
}

JsonValue parse_json(const std::string& text) {
  const auto parsed = JsonValue::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return parsed.has_value() ? *parsed : JsonValue::object();
}

/// Feeds request frames through Server::serve_fds over regular files and
/// returns (exit code, raw response bytes).
struct ServeResult {
  int exit_code = -1;
  std::string raw;
  std::vector<std::string> bodies;
};

ServeResult serve_over_files(Server& server, const std::string& dir,
                             const std::vector<std::string>& requests) {
  std::string in_bytes;
  for (const auto& r : requests) in_bytes += frame(r);
  const std::string in_path = dir + "/in.bin";
  const std::string out_path = dir + "/out.bin";
  write_file(in_path, in_bytes);

  const int in_fd = ::open(in_path.c_str(), O_RDONLY);
  const int out_fd =
      ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  EXPECT_GE(in_fd, 0);
  EXPECT_GE(out_fd, 0);

  ServeResult result;
  result.exit_code = server.serve_fds(in_fd, out_fd);
  ::close(in_fd);
  ::close(out_fd);
  result.raw = read_file(out_path);
  result.bodies = split_frames(result.raw);
  return result;
}

ServerOptions test_options(const std::string& cache_dir) {
  ServerOptions options;
  options.cache_dir = cache_dir;
  options.backoff_ms = 0;  // exercise the retry loop, skip the sleeps
  options.threads = 1;
  return options;
}

std::string tiny_run(const std::string& id) {
  return R"({"schema":"synran-req/1","id":")" + id +
         R"(","cmd":"run","config":{"model":"sync","n":8,"reps":3,"seed":11}})";
}

// ---------------------------------------------------------------- framing

TEST(Frame, RoundTripAndCleanEof) {
  const std::string dir = temp_dir("frame_rt");
  const std::string path = dir + "/frames.bin";
  write_file(path, "");
  const int wfd = ::open(path.c_str(), O_WRONLY);
  write_frame(wfd, "{}");
  write_frame(wfd, R"({"k":"v"})");
  ::close(wfd);

  const int rfd = ::open(path.c_str(), O_RDONLY);
  FrameReader reader(rfd);
  std::string body;
  ASSERT_TRUE(reader.next(body));
  EXPECT_EQ(body, "{}");
  ASSERT_TRUE(reader.next(body));
  EXPECT_EQ(body, R"({"k":"v"})");
  EXPECT_FALSE(reader.next(body));  // clean EOF at a frame boundary
  EXPECT_TRUE(reader.exhausted());
  ::close(rfd);
}

TEST(Frame, MalformedLengthOversizeAndTruncationAllThrow) {
  const std::string dir = temp_dir("frame_bad");
  const auto read_one = [&](const std::string& bytes, std::size_t max_frame) {
    const std::string path = dir + "/case.bin";
    write_file(path, bytes);
    const int fd = ::open(path.c_str(), O_RDONLY);
    FrameReader reader(fd, max_frame);
    std::string body;
    const auto cleanup = [fd] { ::close(fd); };
    try {
      reader.next(body);
      cleanup();
      return false;  // no throw
    } catch (const FrameError&) {
      cleanup();
      return true;
    }
  };
  EXPECT_TRUE(read_one("2x\n{}", kMaxFrameBytes));      // non-digit length
  EXPECT_TRUE(read_one("9\n{\"a\":1}", 4));             // over max_frame
  EXPECT_TRUE(read_one("10\n{\"a\"", kMaxFrameBytes));  // EOF mid-body
  EXPECT_FALSE(read_one("2\n{}", kMaxFrameBytes));      // control: well-formed
}

// --------------------------------------------------- request canonical form

TEST(Request, DefaultsSpelledOutCanonicalizeToTheSameKey) {
  const ServeRequest terse = parse_request(
      R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
      R"("config":{"model":"sync","n":64,"seed":9}})");
  const ServeRequest spelled = parse_request(
      R"({"schema":"synran-req/1","id":"b","cmd":"run","config":{)"
      R"("seed":9,"n":64,"model":"sync","protocol":"synran","t":32,)"
      R"("pattern":"random","reps":50,"adversary":"coinbias","faults":"",)"
      R"("max_rounds":100000,"fail_policy":"fail_fast","retries":0}})");
  EXPECT_EQ(terse.config.dump(), spelled.config.dump());
  EXPECT_EQ(cache_key_string(terse.config, "rev1"),
            cache_key_string(spelled.config, "rev1"));
  // git_rev is part of the key: a rebuilt daemon never serves stale bytes.
  EXPECT_NE(cache_key_string(terse.config, "rev1"),
            cache_key_string(terse.config, "rev2"));
}

TEST(Request, AsyncDefaultsCanonicalizeAndExcludeSyncKeys) {
  const ServeRequest terse = parse_request(
      R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
      R"("config":{"model":"async","n":16}})");
  const ServeRequest spelled = parse_request(
      R"({"schema":"synran-req/1","id":"b","cmd":"run","config":{)"
      R"("model":"async","protocol":"benor","scheduler":"random",)"
      R"("delay":"held","gst":0,"delta":0,"retransmit":0,"n":16,"t":7,)"
      R"("pattern":"random","reps":50,"seed":1,"max_steps":2000000,)"
      R"("max_time":0}})");
  EXPECT_EQ(terse.config.dump(), spelled.config.dump());
}

TEST(Request, ValidationRejectsAreStructuredAndSpecific) {
  const auto rejects = [](const std::string& body, const std::string& needle) {
    try {
      parse_request(body);
      ADD_FAILURE() << "accepted: " << body;
    } catch (const BadRequest& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  rejects("not json at all", "JSON");
  rejects(R"({"schema":"synran-req/2","id":"a","cmd":"ping"})", "schema");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"reboot"})", "cmd");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"ping","extra":1})",
          "extra");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
          R"("config":{"model":"sync","bogus":3}})",
          "bogus");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
          R"("config":{"model":"warp"}})",
          "model");
  // Sync-only keys on an async run are a loud rejection, not a silent drop.
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
          R"("config":{"model":"async","adversary":"chain"}})",
          "adversary");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"run",)"
          R"("config":{"model":"sync","faults":"omit:2.5"}})",
          "faults");
  rejects(R"({"schema":"synran-req/1","id":"a","cmd":"ping","config":{}})",
          "config");
}

// ------------------------------------------------------------------- cache

TEST(Cache, StoreLookupAndMissCounters) {
  ResultCache cache({temp_dir("cache_basic"), 0, 3, 0});
  JsonValue payload = JsonValue::object();
  payload.set("answer", static_cast<std::int64_t>(42));
  cache.store("key-a", payload);
  const auto hit = cache.lookup("key-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dump(), payload.dump());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.lookup("key-b").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SurvivesRestartOverTheSameDirectory) {
  const std::string dir = temp_dir("cache_restart");
  JsonValue payload = JsonValue::object();
  payload.set("x", static_cast<std::int64_t>(7));
  {
    ResultCache cache({dir, 0, 3, 0});
    cache.store("persist-key", payload);
  }
  ResultCache reopened({dir, 0, 3, 0});
  EXPECT_EQ(reopened.entries(), 1u);
  const auto hit = reopened.lookup("persist-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dump(), payload.dump());
}

TEST(Cache, QuarantinesTornAndMisnamedEntriesOnRecover) {
  const std::string dir = temp_dir("cache_quarantine");
  {
    ResultCache cache({dir, 0, 3, 0});
    JsonValue payload = JsonValue::object();
    cache.store("good-key", payload);
  }
  // A torn write under the final name (the exact artifact fsync+rename is
  // meant to rule out — but another tool could still drop one here).
  write_file(dir + "/00000000deadbeef.ckpt", "{\"schema\":\"synran-ck");
  // A valid entry under the wrong name: content-addressing must refuse it.
  const std::string good_stem = cache_file_stem("good-key");
  fs::copy_file(dir + "/" + good_stem + ".ckpt",
                dir + "/1111111111111111.ckpt");

  ResultCache cache({dir, 0, 3, 0});
  EXPECT_EQ(cache.quarantined(), 2u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(fs::exists(dir + "/00000000deadbeef.ckpt.quarantined"));
  EXPECT_TRUE(fs::exists(dir + "/1111111111111111.ckpt.quarantined"));
  // The good entry still serves.
  EXPECT_TRUE(cache.lookup("good-key").has_value());
}

TEST(Cache, EvictsLeastRecentlyUsedPastTheLimit) {
  ResultCache cache({temp_dir("cache_evict"), 2, 3, 0});
  JsonValue payload = JsonValue::object();
  cache.store("k1", payload);
  cache.store("k2", payload);
  ASSERT_TRUE(cache.lookup("k1").has_value());  // k1 now more recent than k2
  cache.store("k3", payload);                   // evicts k2
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup("k1").has_value());
  EXPECT_TRUE(cache.lookup("k3").has_value());
  EXPECT_FALSE(cache.lookup("k2").has_value());
}

TEST(Cache, RetriesTransientIoFaultsWithBackoff) {
  ResultCache cache({temp_dir("cache_retry"), 0, 3, 0});
  JsonValue payload = JsonValue::object();
  payload.set("v", static_cast<std::int64_t>(1));

  int faults_left = 2;
  obs::set_io_fault_hook([&faults_left](obs::IoStage stage,
                                        const std::string& path) {
    if (stage == obs::IoStage::Fsync && faults_left > 0) {
      --faults_left;
      throw obs::IoError("injected transient fault on " + path);
    }
  });
  cache.store("flaky-key", payload);  // two failures, third attempt lands
  obs::set_io_fault_hook(nullptr);

  EXPECT_EQ(faults_left, 0);
  EXPECT_EQ(cache.io_retries(), 2u);
  EXPECT_TRUE(cache.lookup("flaky-key").has_value());
}

TEST(Cache, SurfacesIoErrorOnceAttemptsAreExhausted) {
  ResultCache cache({temp_dir("cache_exhaust"), 0, 2, 0});
  obs::set_io_fault_hook([](obs::IoStage, const std::string&) {
    throw obs::IoError("injected persistent fault");
  });
  JsonValue payload = JsonValue::object();
  EXPECT_THROW(cache.store("doomed", payload), obs::IoError);
  obs::set_io_fault_hook(nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

// ------------------------------------------------------------ server loop

TEST(Server, PingStatsAndBadRequestOverOneStream) {
  const std::string dir = temp_dir("srv_basic");
  Server server(test_options(dir + "/cache"));
  const auto result = serve_over_files(
      server, dir,
      {R"({"schema":"synran-req/1","id":"p","cmd":"ping"})",
       R"({"schema":"synran-req/1","id":"oops","cmd":"run",)"
       R"("config":{"bogus":1}})",
       "{not json", R"({"schema":"synran-req/1","id":"s","cmd":"stats"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.bodies.size(), 4u);

  const JsonValue ping = parse_json(result.bodies[0]);
  EXPECT_EQ(ping.find("id")->as_string(), "p");
  EXPECT_TRUE(ping.find("ok")->as_bool());
  EXPECT_TRUE(ping.find("result")->find("pong")->as_bool());

  // An unknown config key is a structured rejection echoing the id.
  const JsonValue bad = parse_json(result.bodies[1]);
  EXPECT_EQ(bad.find("id")->as_string(), "oops");
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("error")->find("code")->as_string(), "bad_request");

  const JsonValue notjson = parse_json(result.bodies[2]);
  EXPECT_FALSE(notjson.find("ok")->as_bool());
  EXPECT_EQ(notjson.find("error")->find("code")->as_string(), "bad_request");

  const JsonValue stats = parse_json(result.bodies[3]);
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_NE(stats.find("result")->find("counters"), nullptr);
}

TEST(Server, ComputeHitAndRestartResponsesAreByteIdentical) {
  const std::string dir = temp_dir("srv_identity");
  const std::vector<std::string> reqs = {tiny_run("q")};

  Server first(test_options(dir + "/cache"));
  const auto computed = serve_over_files(first, dir, reqs);   // miss
  const auto replayed = serve_over_files(first, dir, reqs);   // hit
  EXPECT_EQ(first.cache().hits(), 1u);
  EXPECT_EQ(first.cache().misses(), 1u);

  Server restarted(test_options(dir + "/cache"));  // same dir, new process
  const auto recovered = serve_over_files(restarted, dir, reqs);

  EXPECT_EQ(computed.exit_code, 0);
  EXPECT_EQ(computed.raw, replayed.raw);
  EXPECT_EQ(computed.raw, recovered.raw);
  EXPECT_EQ(restarted.cache().hits(), 1u);
  EXPECT_EQ(restarted.cache().misses(), 0u);

  const JsonValue resp = parse_json(computed.bodies.at(0));
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("result")->find("reps")->as_int(), 3);
}

TEST(Server, ProtocolErrorAnswersOnceAndExitsNonzero) {
  const std::string dir = temp_dir("srv_proto");
  Server server(test_options(dir + "/cache"));
  std::string in_bytes = frame(
      R"({"schema":"synran-req/1","id":"p","cmd":"ping"})");
  in_bytes += "banana\n";  // non-digit length line: unrecoverable
  write_file(dir + "/in.bin", in_bytes);

  const int in_fd = ::open((dir + "/in.bin").c_str(), O_RDONLY);
  const int out_fd =
      ::open((dir + "/out.bin").c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int rc = server.serve_fds(in_fd, out_fd);
  ::close(in_fd);
  ::close(out_fd);

  EXPECT_EQ(rc, 1);
  const auto bodies = split_frames(read_file(dir + "/out.bin"));
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_TRUE(parse_json(bodies[0]).find("ok")->as_bool());
  EXPECT_EQ(parse_json(bodies[1]).find("error")->find("code")->as_string(),
            "protocol_error");
}

TEST(Server, ShedsBeyondMaxQueueWithStructuredOverload) {
  const std::string dir = temp_dir("srv_shed");
  ServerOptions options = test_options(dir + "/cache");
  options.max_queue = 1;
  Server server(options);
  // All three frames are buffered before the first is handled, so the
  // greedy drain queues r1 and must shed r2 and r3.
  const auto result = serve_over_files(
      server, dir, {tiny_run("r1"), tiny_run("r2"), tiny_run("r3")});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.bodies.size(), 3u);

  std::size_t ok = 0, overloaded = 0;
  for (const auto& body : result.bodies) {
    const JsonValue resp = parse_json(body);
    if (resp.find("ok")->as_bool()) {
      ++ok;
      EXPECT_EQ(resp.find("id")->as_string(), "r1");
    } else {
      ++overloaded;
      EXPECT_EQ(resp.find("error")->find("code")->as_string(), "overloaded");
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(overloaded, 2u);
  EXPECT_EQ(server.metrics().counter_at("shed_total").value(), 2.0);
}

TEST(Server, DeadlineExceededIsPerRequestNotPerDaemon) {
  const std::string dir = temp_dir("srv_deadline");
  Server server(test_options(dir + "/cache"));
  // 10^7 reps cannot finish inside 40 ms; the watchdog raises the stop
  // flag, the executor unwinds between reps, and the daemon keeps serving.
  const std::string big_sync =
      R"({"schema":"synran-req/1","id":"slow","cmd":"run","deadline_ms":40,)"
      R"("config":{"model":"sync","n":32,"reps":10000000,"seed":5}})";
  const auto result = serve_over_files(
      server, dir,
      {big_sync, R"({"schema":"synran-req/1","id":"after","cmd":"ping"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.bodies.size(), 2u);

  const JsonValue slow = parse_json(result.bodies[0]);
  EXPECT_FALSE(slow.find("ok")->as_bool());
  EXPECT_EQ(slow.find("error")->find("code")->as_string(),
            "deadline_exceeded");
  EXPECT_TRUE(parse_json(result.bodies[1]).find("ok")->as_bool());
  // A deadline must not leave the daemon's stop flag latched.
  EXPECT_FALSE(exec::stop_requested());
  // An aborted run is never cached: the next daemon must recompute.
  EXPECT_EQ(server.cache().entries(), 0u);
}

TEST(Server, DeadlineAppliesToAsyncBatchesToo) {
  const std::string dir = temp_dir("srv_deadline_async");
  Server server(test_options(dir + "/cache"));
  const std::string big_async =
      R"({"schema":"synran-req/1","id":"aslow","cmd":"run","deadline_ms":40,)"
      R"("config":{"model":"async","n":16,"reps":10000000,"seed":5}})";
  const auto result = serve_over_files(server, dir, {big_async});
  EXPECT_EQ(result.exit_code, 0);
  const JsonValue resp = parse_json(result.bodies.at(0));
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("error")->find("code")->as_string(),
            "deadline_exceeded");
  EXPECT_FALSE(exec::stop_requested());
}

TEST(Server, ShutdownCommandFlushesTheQueueAndExitsZero) {
  const std::string dir = temp_dir("srv_shutdown");
  Server server(test_options(dir + "/cache"));
  // shutdown is handled first; the runs queued behind it are answered
  // `shutting_down`, never silently dropped.
  const auto result = serve_over_files(
      server, dir,
      {R"({"schema":"synran-req/1","id":"bye","cmd":"shutdown"})",
       tiny_run("late1"), tiny_run("late2")});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.bodies.size(), 3u);
  EXPECT_TRUE(parse_json(result.bodies[0]).find("ok")->as_bool());
  for (std::size_t i = 1; i < 3; ++i) {
    const JsonValue resp = parse_json(result.bodies[i]);
    EXPECT_FALSE(resp.find("ok")->as_bool());
    EXPECT_EQ(resp.find("error")->find("code")->as_string(),
              "shutting_down");
  }
}

TEST(Server, SignalBeforeTheLoopDrainsWithExitCodeFour) {
  const std::string dir = temp_dir("srv_drain");
  Server server(test_options(dir + "/cache"));
  exec::note_signal_stop();  // exactly what the SIGINT/SIGTERM handler does
  const auto result = serve_over_files(server, dir, {tiny_run("never")});
  exec::clear_stop();
  EXPECT_EQ(result.exit_code, kDrainExitCode);
  // The signal landed before any frame was accepted; nothing was owed.
  EXPECT_TRUE(result.bodies.empty());
}

TEST(Server, CacheStoreFailureDegradesTheCacheNotTheAnswer) {
  const std::string dir = temp_dir("srv_storefail");
  ServerOptions options = test_options(dir + "/cache");
  options.io_attempts = 2;
  Server server(options);
  obs::set_io_fault_hook([](obs::IoStage, const std::string&) {
    throw obs::IoError("injected persistent fault");
  });
  const auto result = serve_over_files(server, dir, {tiny_run("r")});
  obs::set_io_fault_hook(nullptr);

  EXPECT_EQ(result.exit_code, 0);
  const JsonValue resp = parse_json(result.bodies.at(0));
  EXPECT_TRUE(resp.find("ok")->as_bool());  // the answer still went out
  EXPECT_EQ(server.metrics().counter_at("cache_store_failures").value(), 1.0);
  EXPECT_EQ(server.cache().entries(), 0u);
}

}  // namespace
}  // namespace synran::serve
