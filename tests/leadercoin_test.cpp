// Tests for the LeaderCoin protocol and the adaptive/non-adaptive adversary
// pair — the executable form of §1.2's [CMS89] contrast.
#include <gtest/gtest.h>

#include <set>

#include "adversary/nonadaptive.hpp"
#include "common/check.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

Receipt make_receipt(std::uint32_t ones, std::uint32_t zeros,
                     Payload extra = 0) {
  Receipt r;
  r.count = ones + zeros;
  r.ones = ones;
  r.zeros = zeros;
  r.or_mask = (ones ? payload::kSupports1 : 0) |
              (zeros ? payload::kSupports0 : 0) | extra;
  return r;
}

// ---------------------------------------------------------------- protocol

TEST(LeaderCoinTest, LeaderRotatesDeterministically) {
  EXPECT_EQ(LeaderCoinProcess::leader_of(1, 5), 0u);
  EXPECT_EQ(LeaderCoinProcess::leader_of(2, 5), 1u);
  EXPECT_EQ(LeaderCoinProcess::leader_of(6, 5), 0u);
}

TEST(LeaderCoinTest, LeaderEmbedsItsCoin) {
  LeaderCoinProcess p(0, 4, Bit::One);  // process 0 leads round 1
  TapeCoinSource coins({true});
  const auto out = p.on_round(nullptr, coins);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(*out & LeaderCoinProcess::kLeaderCoinOne);
  EXPECT_FALSE(*out & LeaderCoinProcess::kLeaderCoinZero);
  EXPECT_EQ(coins.consumed(), 1u);
}

TEST(LeaderCoinTest, NonLeaderDoesNotFlipOnSend) {
  LeaderCoinProcess p(2, 4, Bit::One);  // round 1 leader is 0
  TapeCoinSource coins;
  const auto out = p.on_round(nullptr, coins);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(*out & (LeaderCoinProcess::kLeaderCoinOne |
                       LeaderCoinProcess::kLeaderCoinZero));
  EXPECT_EQ(coins.consumed(), 0u);
}

TEST(LeaderCoinTest, MiddleZoneAdoptsLeaderCoin) {
  LeaderCoinProcess p(3, 100, Bit::Zero);
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  // 50/50 split with the leader's coin = 1 visible.
  Receipt r = make_receipt(50, 50, LeaderCoinProcess::kLeaderCoinOne);
  const auto out = p.on_round(&r, coins);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(payload::supports(*out, Bit::One));
  EXPECT_EQ(coins.consumed(), 0u);  // no local flip needed
}

TEST(LeaderCoinTest, MiddleZoneWithoutLeaderFallsBackToLocalCoin) {
  LeaderCoinProcess p(3, 100, Bit::Zero);
  TapeCoinSource coins({false});
  (void)p.on_round(nullptr, coins);
  Receipt r = make_receipt(50, 50);  // leader silent
  const auto out = p.on_round(&r, coins);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(payload::supports(*out, Bit::Zero));
  EXPECT_TRUE(p.view().flipped_coin);
}

TEST(LeaderCoinTest, ThresholdsDecideAndPropose) {
  {
    LeaderCoinProcess p(50, 100, Bit::Zero);
    TapeCoinSource coins;
    (void)p.on_round(nullptr, coins);
    Receipt r = make_receipt(71, 29);
    (void)p.on_round(&r, coins);
    EXPECT_TRUE(p.decided());
    EXPECT_EQ(p.decision(), Bit::One);
  }
  {
    LeaderCoinProcess p(50, 100, Bit::One);
    TapeCoinSource coins;
    (void)p.on_round(nullptr, coins);
    Receipt r = make_receipt(29, 71);
    (void)p.on_round(&r, coins);
    EXPECT_TRUE(p.decided());
    EXPECT_EQ(p.decision(), Bit::Zero);
  }
}

TEST(LeaderCoinTest, HaltsTwoRoundsAfterDeciding) {
  LeaderCoinProcess p(50, 100, Bit::Zero);
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  Receipt decide = make_receipt(90, 10);
  ASSERT_TRUE(p.on_round(&decide, coins).has_value());  // decide + send
  ASSERT_TRUE(p.decided());
  Receipt quiet = make_receipt(90, 10);
  ASSERT_TRUE(p.on_round(&quiet, coins).has_value());   // help 1
  ASSERT_TRUE(p.on_round(&quiet, coins).has_value());   // help 2
  EXPECT_FALSE(p.on_round(&quiet, coins).has_value());  // halt
  EXPECT_TRUE(p.halted());
}

TEST(LeaderCoinTest, EngineRunsSafeWithoutAdversary) {
  LeaderCoinFactory factory;
  RepeatSpec spec;
  spec.n = 32;
  spec.pattern = InputPattern::Random;
  spec.reps = 25;
  spec.seed = 5;
  const auto stats = run_repeated(factory, no_adversary_factory(), spec);
  EXPECT_TRUE(stats.all_safe());
  EXPECT_LT(stats.rounds_to_decision().mean(), 6.0);
}

// ------------------------------------------------------- oblivious / killer

TEST(ObliviousTest, ScheduleIsCommittedAndSeedStable) {
  ObliviousAdversary a({16, 7}), b({16, 7}), c({16, 8});
  a.begin(10, 4);
  b.begin(10, 4);
  c.begin(10, 4);
  EXPECT_EQ(a.schedule(), b.schedule());
  EXPECT_NE(a.schedule(), c.schedule());
  EXPECT_EQ(a.schedule().size(), 4u);
  // Victims are distinct.
  std::set<ProcessId> victims;
  for (const auto& [r, v] : a.schedule()) {
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 16u);
    victims.insert(v);
  }
  EXPECT_EQ(victims.size(), 4u);
}

TEST(ObliviousTest, ProtocolsSurviveIt) {
  SynRanFactory synran;
  LeaderCoinFactory leader;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const ProcessFactory* f :
         {static_cast<const ProcessFactory*>(&synran),
          static_cast<const ProcessFactory*>(&leader)}) {
      ObliviousAdversary adv({20, seed});
      EngineOptions opts;
      opts.t_budget = 10;
      opts.seed = seed;
      opts.max_rounds = 50000;
      Xoshiro256 rng(seed);
      auto inputs = make_inputs(24, InputPattern::Random, rng);
      const auto res = run_once(*f, inputs, adv, opts);
      ASSERT_TRUE(res.terminated) << f->name() << " seed " << seed;
      EXPECT_TRUE(res.agreement) << f->name() << " seed " << seed;
      EXPECT_TRUE(validity_holds(inputs, res));
    }
  }
}

TEST(LeaderKillerTest, StallsLeaderCoinForAboutTRounds) {
  // n must be large enough that the local-coin mixture cannot accidentally
  // cross the 0.4/0.6 thresholds while leaders keep dying (the escape
  // probability shrinks exponentially in n).
  LeaderCoinFactory factory;
  LeaderKillerAdversary adv;
  EngineOptions opts;
  opts.t_budget = 20;
  opts.seed = 3;
  opts.max_rounds = 50000;
  std::vector<Bit> inputs(256, Bit::Zero);
  for (int i = 0; i < 128; ++i) inputs[i] = Bit::One;
  const auto res = run_once(factory, inputs, adv, opts);
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  // The killer burns one crash per round; the protocol cannot settle while
  // leaders keep dying, so it stalls for ≈ t rounds and spends the budget.
  EXPECT_GE(res.rounds_to_decision, 18u);
  EXPECT_EQ(res.crashes_total, 20u);
}

TEST(LeaderKillerTest, HarmlessAgainstSynRan) {
  SynRanFactory factory;
  LeaderKillerAdversary adv;
  EngineOptions opts;
  opts.t_budget = 20;
  opts.seed = 3;
  opts.max_rounds = 50000;
  std::vector<Bit> inputs(64, Bit::Zero);
  for (int i = 0; i < 32; ++i) inputs[i] = Bit::One;
  const auto res = run_once(factory, inputs, adv, opts);
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_LT(res.rounds_to_decision, 12u);
}

}  // namespace
}  // namespace synran
