// Tests for the observability layer: the deterministic JSON model, the
// metrics registry, observer fan-out ordering, and the composed engine view
// (JSONL trace + metrics + TracingAdversary must all agree on one run).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/coinbias.hpp"
#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/observer.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace synran {
namespace {

using obs::JsonValue;

// ----------------------------------------------------------------- JSON

TEST(ObsJson, DumpIsCompactTypedAndInsertionOrdered) {
  JsonValue doc = JsonValue::object()
                      .set("b", JsonValue(std::int64_t{2}))
                      .set("a", JsonValue(1.5))
                      .set("s", JsonValue("x\"y\n"))
                      .set("null", JsonValue(nullptr))
                      .set("flag", JsonValue(true));
  // "b" stays before "a": insertion order, not name order. The integer must
  // not grow a decimal point.
  EXPECT_EQ(doc.dump(),
            "{\"b\":2,\"a\":1.5,\"s\":\"x\\\"y\\n\",\"null\":null,"
            "\"flag\":true}");
}

TEST(ObsJson, DuplicateKeysRejected) {
  JsonValue doc = JsonValue::object().set("k", JsonValue(1));
  EXPECT_THROW(doc.set("k", JsonValue(2)), InvariantError);
  EXPECT_THROW(JsonValue::array().set("k", JsonValue(1)), InvariantError);
  EXPECT_THROW(JsonValue::object().push(JsonValue(1)), InvariantError);
}

TEST(ObsJson, ParseRoundTripsWriterOutput) {
  JsonValue doc = JsonValue::object()
                      .set("ints", JsonValue::array()
                                       .push(JsonValue(0))
                                       .push(JsonValue(std::int64_t{-7})))
                      .set("pi", JsonValue(3.140625))
                      .set("nested", JsonValue::object().set(
                                         "deep", JsonValue("víz\t")));
  const std::string text = doc.dump();
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), text);
  // Integer-ness survives the round trip.
  EXPECT_TRUE(parsed->find("ints")->as_array()[1].is_int());
  EXPECT_TRUE(parsed->find("pi")->is_double());
}

TEST(ObsJson, ParseAcceptsStandardJson) {
  const auto v = JsonValue::parse(
      " { \"a\" : [ 1 , 2.5 , \"\\u00e9\\n\" , null , false ] } ");
  ASSERT_TRUE(v.has_value());
  const auto& arr = v->find("a")->as_array();
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(arr[1].as_double(), 2.5);
  EXPECT_EQ(arr[2].as_string(), "é\n");
  EXPECT_TRUE(arr[3].is_null());
  EXPECT_FALSE(arr[4].as_bool());
}

TEST(ObsJson, ParseRejectsGarbage) {
  std::string err;
  for (const char* bad : {"", "{", "{\"a\":}", "[1,]", "nul", "1 2",
                          "\"unterminated", "{\"a\":1}trailing"}) {
    EXPECT_FALSE(JsonValue::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

// --------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  obs::Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Histogram h(std::vector<double>{1.0, 4.0});
  h.add(0.5);  // bucket 0
  h.add(1.0);  // bucket 0 (inclusive upper bound)
  h.add(3.0);  // bucket 1
  h.add(9.0);  // overflow
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
}

TEST(ObsMetrics, RegistryCreatesOnWriteAndThrowsOnMissingRead) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("runs").inc();
  reg.summary("rounds").add(3.0);
  EXPECT_EQ(reg.counter_at("runs").value(), 1u);
  EXPECT_TRUE(reg.has_counter("runs"));
  EXPECT_FALSE(reg.has_counter("never"));
  EXPECT_THROW(reg.counter_at("never"), ArgumentError);
  EXPECT_THROW(reg.summary_at("never"), ArgumentError);
}

TEST(ObsMetrics, HistogramBoundsMustMatchOnReLookup) {
  obs::MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0}).add(1.5);
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}).add(0.5));
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ArgumentError);
}

TEST(ObsMetrics, MergeFoldsEveryKind) {
  obs::MetricsRegistry a, b;
  a.counter("c").inc(2);
  b.counter("c").inc(3);
  b.counter("only_b").inc();
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", {2.0}).add(1.0);
  b.histogram("h", {2.0}).add(5.0);
  a.summary("s").add(1.0);
  b.summary("s").add(3.0);

  a.merge(b);
  EXPECT_EQ(a.counter_at("c").value(), 5u);
  EXPECT_EQ(a.counter_at("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_at("g").value(), 9.0);
  EXPECT_EQ(a.histogram_at("h").count(), 2u);
  EXPECT_EQ(a.histogram_at("h").counts()[1], 1u);
  EXPECT_EQ(a.summary_at("s").count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary_at("s").mean(), 2.0);
}

TEST(ObsMetrics, ToJsonIsNameOrderedAndParseable) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").inc(1);
  reg.counter("alpha").inc(2);
  reg.gauge("load").set(0.5);
  reg.histogram("lat", {1.0}).add(0.5);
  reg.summary("rounds").add(4.0);

  const std::string text = reg.to_json().dump();
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  // std::map storage: "alpha" serializes before "zeta" regardless of the
  // write order above.
  EXPECT_LT(text.find("\"alpha\""), text.find("\"zeta\""));
  const auto* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("alpha")->as_int(), 2);
  EXPECT_EQ(parsed->find("summaries")->find("rounds")->find("mean")
                ->as_double(),
            4.0);
}

// ------------------------------------------------------------- fan-out

/// Appends "<tag>:<callback>" to a shared log; proves ordering.
class RecordingObserver final : public obs::EngineObserver {
 public:
  RecordingObserver(std::string tag, std::vector<std::string>& log)
      : tag_(std::move(tag)), log_(&log) {}

  void on_run_begin(const obs::RunInfo&) override { put("run_begin"); }
  void on_round_begin(const obs::RoundObservation&) override {
    put("round_begin");
  }
  void on_fault_plan(Round, const FaultPlan&) override { put("fault_plan"); }
  void on_deliveries(Round, std::uint64_t) override { put("deliveries"); }
  void on_round_end(const obs::RoundObservation&) override {
    put("round_end");
  }
  void on_run_end(const obs::RunObservation&) override { put("run_end"); }

 private:
  void put(const char* what) { log_->push_back(tag_ + ":" + what); }
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(ObsMultiObserver, FansOutEveryCallbackInInstallationOrder) {
  std::vector<std::string> log;
  RecordingObserver first("a", log), second("b", log);
  obs::MultiObserver multi;
  multi.add(first);
  multi.add(second);
  ASSERT_EQ(multi.size(), 2u);

  multi.on_run_begin({});
  multi.on_round_begin({});
  multi.on_fault_plan(1, FaultPlan{});
  multi.on_deliveries(1, 10);
  multi.on_round_end({});
  multi.on_run_end({});

  const std::vector<std::string> want = {
      "a:run_begin",   "b:run_begin",   "a:round_begin", "b:round_begin",
      "a:fault_plan",  "b:fault_plan",  "a:deliveries",  "b:deliveries",
      "a:round_end",   "b:round_end",   "a:run_end",     "b:run_end"};
  EXPECT_EQ(log, want);
}

// ------------------------------------------------- composed engine view

/// One adversarial run observed three ways at once; every view must agree.
struct ComposedRun {
  std::string jsonl;
  obs::MetricsRegistry metrics;
  Trace trace;
  RunResult result;
};

ComposedRun run_composed(std::uint64_t seed) {
  ComposedRun out;
  std::ostringstream stream;
  obs::JsonlTraceWriter writer(stream);
  obs::MetricsObserver metrics;
  obs::MultiObserver multi;
  multi.add(writer);
  multi.add(metrics);

  CoinBiasAdversary inner({0.55, true, seed});
  TracingAdversary tracer(inner);

  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = 8;
  opts.seed = seed;
  opts.max_rounds = 100000;
  opts.observer = &multi;
  Xoshiro256 rng(seed);
  out.result = run_once(factory, make_inputs(16, InputPattern::Half, rng),
                        tracer, opts);
  out.jsonl = stream.str();
  out.metrics = metrics.metrics();
  out.trace = tracer.trace();
  return out;
}

TEST(ObsComposed, TraceMetricsAndAdversaryViewsAgree) {
  const ComposedRun run = run_composed(17);
  ASSERT_TRUE(run.result.terminated);

  // Parse the JSONL stream back.
  std::istringstream lines(run.jsonl);
  std::string line;
  std::vector<JsonValue> events;
  while (std::getline(lines, line)) {
    auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    events.push_back(std::move(*v));
  }
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().find("event")->as_string(), "run_begin");
  EXPECT_EQ(events.front().find("schema")->as_string(), obs::kTraceSchema);
  EXPECT_EQ(events.back().find("event")->as_string(), "run_end");

  // One round event per communication round, matching both the engine's
  // round count and the adversary-side TracingAdversary.
  const std::size_t round_events = events.size() - 2;
  EXPECT_EQ(round_events, run.result.rounds_to_halt);
  ASSERT_EQ(round_events, run.trace.rounds.size());
  for (std::size_t i = 0; i < round_events; ++i) {
    const auto& ev = events[i + 1];
    EXPECT_EQ(ev.find("event")->as_string(), "round");
    EXPECT_EQ(ev.find("crashes")->as_int(), run.trace.rounds[i].crashes);
    EXPECT_EQ(ev.find("alive")->as_int(), run.trace.rounds[i].alive);
    EXPECT_EQ(ev.find("senders")->as_int(), run.trace.rounds[i].senders);
    EXPECT_EQ(static_cast<std::uint32_t>(ev.find("crashes")->as_int()),
              run.result.crashes_per_round[i]);
  }

  // run_end totals match the engine's RunResult.
  const auto& end = events.back();
  EXPECT_EQ(end.find("crashes")->as_int(), run.result.crashes_total);
  EXPECT_EQ(static_cast<std::uint64_t>(end.find("delivered")->as_int()),
            run.result.messages_delivered);
  EXPECT_EQ(end.find("terminated")->as_bool(), run.result.terminated);
  EXPECT_EQ(end.find("agreement")->as_bool(), run.result.agreement);
  ASSERT_TRUE(run.result.has_decision);
  EXPECT_EQ(end.find("decision")->as_int(), to_int(run.result.decision));

  // Metrics observer agrees with both.
  EXPECT_EQ(run.metrics.counter_at("runs").value(), 1u);
  EXPECT_EQ(run.metrics.counter_at("rounds").value(),
            run.result.rounds_to_halt);
  EXPECT_EQ(run.metrics.counter_at("crashes").value(),
            run.result.crashes_total);
  EXPECT_EQ(run.metrics.counter_at("messages_delivered").value(),
            run.result.messages_delivered);
  EXPECT_EQ(run.metrics.histogram_at("crashes_per_round").count(),
            round_events);

  // The recorded trace still satisfies the §3.1 model invariants.
  const auto report = check_model_invariants(run.trace);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations.front());
}

TEST(ObsTraceWriter, RunAbandonedClosesOpenRunsAndStandsAloneOnSetupFailure) {
  std::ostringstream stream;
  obs::JsonlTraceWriter writer(stream);

  // Setup failure before any run_begin: the event stands alone under the
  // index the aborted execution would have used (0), and the next run_begin
  // reuses that index — the retry is the same logical run.
  writer.on_run_abandoned(obs::RunAbandoned{0, 11, 0, "factory threw"});
  writer.on_run_begin({});
  // Mid-run failure: closes run 0; the retry opens run 1.
  writer.on_run_abandoned(obs::RunAbandoned{0, 11, 1, "engine threw"});
  writer.on_run_begin({});

  std::istringstream lines(stream.str());
  std::string line;
  std::vector<JsonValue> events;
  while (std::getline(lines, line)) {
    auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    events.push_back(std::move(*v));
  }
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].find("event")->as_string(), "run_abandoned");
  EXPECT_EQ(events[0].find("run")->as_int(), 0);
  EXPECT_EQ(events[0].find("rep")->as_int(), 0);
  EXPECT_EQ(events[0].find("seed")->as_int(), 11);
  EXPECT_EQ(events[0].find("attempt")->as_int(), 0);
  EXPECT_EQ(events[0].find("error")->as_string(), "factory threw");
  EXPECT_EQ(events[1].find("event")->as_string(), "run_begin");
  EXPECT_EQ(events[1].find("run")->as_int(), 0);
  EXPECT_EQ(events[2].find("event")->as_string(), "run_abandoned");
  EXPECT_EQ(events[2].find("run")->as_int(), 0);
  EXPECT_EQ(events[2].find("attempt")->as_int(), 1);
  EXPECT_EQ(events[3].find("event")->as_string(), "run_begin");
  EXPECT_EQ(events[3].find("run")->as_int(), 1);
}

TEST(ObsComposed, JsonlStreamIsSeedDeterministic) {
  EXPECT_EQ(run_composed(99).jsonl, run_composed(99).jsonl);
  EXPECT_NE(run_composed(99).jsonl, run_composed(100).jsonl);
}

TEST(ObsMetricsObserver, NonTerminatedRunsLeaveSummariesEmpty) {
  obs::MetricsObserver metrics;
  NoAdversary none;
  FloodMinFactory factory({2, false});  // needs t+1 = 3 rounds
  EngineOptions opts;
  opts.max_rounds = 1;  // force a non-terminated run
  opts.observer = &metrics;
  Xoshiro256 rng(5);
  const auto res =
      run_once(factory, make_inputs(6, InputPattern::Half, rng), none, opts);
  ASSERT_FALSE(res.terminated);
  EXPECT_EQ(metrics.metrics().counter_at("runs").value(), 1u);
  EXPECT_EQ(metrics.metrics().counter_at("runs_terminated").value(), 0u);
  EXPECT_EQ(metrics.metrics().summary_at("rounds_to_decision").count(), 0u);
}

// ------------------------------------------- registry-backed aggregates

TEST(ObsRunner, RepeatedRunStatsExposeRegistry) {
  SynRanFactory factory;
  RepeatSpec spec;
  spec.n = 8;
  spec.pattern = InputPattern::Half;
  spec.reps = 7;
  spec.seed = 21;
  const auto stats = run_repeated(factory, no_adversary_factory(), spec);
  EXPECT_EQ(stats.reps(), 7u);
  EXPECT_EQ(stats.messages_delivered().count(), 7u);
  EXPECT_GT(stats.messages_delivered().mean(), 0.0);
  // The registry itself is addressable (and serializable) alongside the
  // named accessors.
  EXPECT_EQ(stats.metrics().counter_at("reps").value(), 7u);
  EXPECT_DOUBLE_EQ(stats.metrics().summary_at("rounds_to_decision").mean(),
                   stats.rounds_to_decision().mean());
  const auto parsed = JsonValue::parse(stats.metrics().to_json().dump());
  EXPECT_TRUE(parsed.has_value());
}

TEST(ObsRunner, ZeroRepAggregateReadsBackAsZeros) {
  const RepeatedRunStats stats;
  EXPECT_EQ(stats.reps(), 0u);
  EXPECT_EQ(stats.agreement_failures(), 0u);
  EXPECT_EQ(stats.rounds_to_decision().count(), 0u);
  EXPECT_TRUE(stats.all_safe());
}

}  // namespace
}  // namespace synran
