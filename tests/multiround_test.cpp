// Tests for the multi-round coin-flipping games (§1.2's Aspnes setting).
#include <gtest/gtest.h>

#include <cmath>

#include "coin/multiround.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

TEST(MultiRoundTest, PassiveGameIsRoughlyFair) {
  MultiRoundSpec spec;
  spec.players = 64;
  spec.rounds = 4;
  PassiveMultiRound passive;
  const double p1 = estimate_multiround_bias(spec, passive, 1, 2000, 3);
  // Ties break to 0, so Pr(1) sits slightly below 1/2.
  EXPECT_GT(p1, 0.40);
  EXPECT_LT(p1, 0.55);
}

TEST(MultiRoundTest, DeterministicInSeed) {
  MultiRoundSpec spec;
  spec.players = 32;
  spec.rounds = 3;
  spec.budget = 8;
  GreedyBiasMultiRound adv(1);
  const auto a = play_multiround(spec, adv, 99);
  const auto b = play_multiround(spec, adv, 99);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.outcome, b.outcome);
}

TEST(MultiRoundTest, KillsNeverExceedBudget) {
  MultiRoundSpec spec;
  spec.players = 40;
  spec.rounds = 6;
  spec.budget = 10;
  GreedyBiasMultiRound adv(0);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto res = play_multiround(spec, adv, seed);
    EXPECT_LE(res.kills, 10u);
  }
}

TEST(MultiRoundTest, PerRoundCapIsRespected) {
  // The greedy adversary self-limits; an over-eager one must be caught.
  class Eager final : public MultiRoundAdversary {
   public:
    std::vector<std::uint32_t> kill(const MultiRoundView& view) override {
      std::vector<std::uint32_t> all;
      view.alive->for_each_set([&](std::size_t i) {
        if (all.size() < view.budget_left)
          all.push_back(static_cast<std::uint32_t>(i));
      });
      return all;  // ignores the per-round cap
    }
    const char* name() const override { return "eager"; }
  } eager;

  MultiRoundSpec spec;
  spec.players = 10;
  spec.rounds = 2;
  spec.budget = 6;
  spec.per_round_cap = 2;
  EXPECT_THROW(play_multiround(spec, eager, 1), InvariantError);
}

TEST(MultiRoundTest, GreedyBiasWorksBothDirections) {
  // Budget ≈ 4√(n·R·ln n) dominates the ±√(nR) fluctuation of the sum
  // (clamped below the player count, which it cannot exceed).
  MultiRoundSpec spec;
  spec.players = 256;
  spec.rounds = 2;
  spec.budget = std::min<std::uint32_t>(
      spec.players - 1,
      static_cast<std::uint32_t>(
          4.0 * std::sqrt(256.0 * 2.0 * std::log(256.0))));
  for (std::uint32_t target : {0u, 1u}) {
    GreedyBiasMultiRound adv(target);
    const double p =
        estimate_multiround_bias(spec, adv, target, 300, 7 + target);
    EXPECT_GT(p, 0.95) << "target " << target;
  }
}

TEST(MultiRoundTest, BiasGrowsWithBudget) {
  MultiRoundSpec spec;
  spec.players = 128;
  spec.rounds = 4;
  GreedyBiasMultiRound adv(1);
  double prev = 0.0;
  for (std::uint32_t budget : {0u, 8u, 32u, 96u}) {
    spec.budget = budget;
    const double p = estimate_multiround_bias(spec, adv, 1, 400, 11);
    EXPECT_GE(p, prev - 0.05) << "budget " << budget;
    prev = p;
  }
  EXPECT_GT(prev, 0.9);  // the largest budget controls the game
}

TEST(MultiRoundTest, MoreRoundsDiluteAFixedBudget) {
  // The same budget spread over more rounds of fresh randomness biases
  // less: variance grows with R while the adversary's shift stays ≈ budget.
  MultiRoundSpec spec;
  spec.players = 128;
  spec.budget = 24;
  GreedyBiasMultiRound adv(1);
  spec.rounds = 1;
  const double short_game =
      estimate_multiround_bias(spec, adv, 1, 400, 13);
  spec.rounds = 16;
  const double long_game =
      estimate_multiround_bias(spec, adv, 1, 400, 13);
  EXPECT_GT(short_game, long_game + 0.05);
}

TEST(MultiRoundTest, GuardsArguments) {
  PassiveMultiRound passive;
  MultiRoundSpec spec;
  spec.players = 0;
  EXPECT_THROW(play_multiround(spec, passive, 1), ArgumentError);
  spec.players = 4;
  spec.rounds = 0;
  EXPECT_THROW(play_multiround(spec, passive, 1), ArgumentError);
  spec.rounds = 1;
  spec.budget = 5;
  EXPECT_THROW(play_multiround(spec, passive, 1), ArgumentError);
}

}  // namespace
}  // namespace synran
