// Tests for exact boolean-function influences, pinned against the classic
// [BOL89] reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/binomial.hpp"
#include "coin/influence.hpp"
#include "coin/recursive_games.hpp"
#include "common/check.hpp"

namespace synran {
namespace {

TEST(InfluenceTest, DictatorHasInfluenceOne) {
  const auto prof = influences(5, [](std::uint64_t x) { return x & 1; });
  EXPECT_DOUBLE_EQ(prof.per_player[0], 1.0);
  for (int i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(prof.per_player[i], 0.0);
  EXPECT_DOUBLE_EQ(prof.expectation, 0.5);
  EXPECT_EQ(prof.argmax(), 0u);
  EXPECT_DOUBLE_EQ(prof.total(), 1.0);
}

TEST(InfluenceTest, ParityGivesEveryoneFullInfluence) {
  const auto prof = influences(7, [](std::uint64_t x) {
    return (__builtin_popcountll(x) & 1) != 0;
  });
  for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(prof.per_player[i], 1.0);
  EXPECT_DOUBLE_EQ(prof.total(), 7.0);
}

TEST(InfluenceTest, ConstantFunctionHasNoInfluence) {
  const auto prof = influences(6, [](std::uint64_t) { return true; });
  EXPECT_DOUBLE_EQ(prof.total(), 0.0);
  EXPECT_DOUBLE_EQ(prof.expectation, 1.0);
}

TEST(InfluenceTest, MajorityMatchesExactFormula) {
  // For odd n, I_i(majority) = C(n-1, (n-1)/2) / 2^{n-1} exactly, and all
  // players are symmetric.
  for (std::uint32_t n : {3u, 7u, 11u, 15u}) {
    const auto prof = influences(n, [n](std::uint64_t x) {
      return 2u * static_cast<std::uint32_t>(__builtin_popcountll(x)) > n;
    });
    const double expect =
        std::exp(log_binomial(n - 1, (n - 1) / 2)) /
        std::pow(2.0, static_cast<double>(n - 1));
    for (std::uint32_t i = 0; i < n; ++i)
      EXPECT_NEAR(prof.per_player[i], expect, 1e-9) << "n=" << n;
    // And the asymptotic anchor √(2/(πn)):
    EXPECT_NEAR(prof.per_player[0],
                std::sqrt(2.0 / (M_PI * n)), 0.1 / n + 0.05);
  }
}

TEST(InfluenceTest, MajorityInfluenceShrinksWithN) {
  double prev = 1.0;
  for (std::uint32_t n : {3u, 7u, 11u, 15u, 19u}) {
    const auto prof = influences(n, [n](std::uint64_t x) {
      return 2u * static_cast<std::uint32_t>(__builtin_popcountll(x)) > n;
    });
    EXPECT_LT(prof.max(), prev);
    prev = prof.max();
  }
}

TEST(InfluenceTest, GameAdapterMatchesDirectComputation) {
  MajorityPresentGame game(9);
  const auto via_game = game_influences(game);
  const auto direct = influences(9, [](std::uint64_t x) {
    return 2 * __builtin_popcountll(x) > 9;
  });
  ASSERT_EQ(via_game.per_player.size(), direct.per_player.size());
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_NEAR(via_game.per_player[i], direct.per_player[i], 1e-12);
}

TEST(InfluenceTest, TribesInfluenceIsUniformAndSmall) {
  TribesGame game(4, 4);  // 16 players
  const auto prof = game_influences(game);
  // Player i is pivotal iff its block's other three are 1 and no other
  // block is all-1: I = (1/2)^3 · (1 − (1/2)^4)^3 exactly.
  const double expect = std::pow(0.5, 3) * std::pow(1.0 - 1.0 / 16.0, 3);
  for (std::uint32_t i = 0; i < 16; ++i)
    EXPECT_NEAR(prof.per_player[i], expect, 1e-9);
}

TEST(InfluenceTest, RecursiveMajorityInfluenceDecaysAsTwoThirdsPerLevel) {
  // Majority-of-3 has per-player influence 1/2 at height 1; composing
  // multiplies influences: (1/2)·... each leaf's influence at height h is
  // (1/2)^h · ... — exactly I = (1/2)^h? For maj-3: I_leaf(height h) =
  // (Pr[pivotal])^h with Pr = 1/2: check the exact recursion numerically.
  RecursiveMajorityGame g1(1), g2(2);
  const auto p1 = game_influences(g1);
  const auto p2 = game_influences(g2);
  EXPECT_NEAR(p1.per_player[0], 0.5, 1e-12);
  EXPECT_NEAR(p2.per_player[0], 0.25, 1e-12);
  // Symmetry across leaves.
  for (std::uint32_t i = 1; i < g2.players(); ++i)
    EXPECT_NEAR(p2.per_player[i], p2.per_player[0], 1e-12);
}

TEST(InfluenceTest, GuardsDomain) {
  EXPECT_THROW(influences(0, [](std::uint64_t) { return true; }),
               ArgumentError);
  EXPECT_THROW(influences(23, [](std::uint64_t) { return true; }),
               ArgumentError);
  ModSumGame k3(4, 3);
  EXPECT_THROW(game_influences(k3), ArgumentError);
}

TEST(InfluenceTest, HigherInfluenceMeansCheaperControl) {
  // The [BOL89] connection in executable form: the leader-bit game (a
  // dictatorship after hidings) concentrates influence, and indeed its
  // control cost (one prefix hiding) is far below majority's Θ(√n).
  LeaderBitGame leader(9);
  MajorityPresentGame maj(9);
  const auto lp = game_influences(leader);
  const auto mp = game_influences(maj);
  EXPECT_GT(lp.max(), mp.max());
  EXPECT_EQ(lp.argmax(), 0u);  // the first player dictates
}

}  // namespace
}  // namespace synran
