// Tests for the async batch executor and the event-driven engine's fault
// machinery: serial/parallel metrics equivalence (the async mirror of the
// ExecEquivalence suite), byte-identical observer streams at any thread
// count, structured scheduler-violation errors, fault-timetable injection,
// partial synchrony, retransmission recovery, and golden-pinned decision
// stats for the fixed-delay configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "async/benor.hpp"
#include "async/core.hpp"
#include "common/check.hpp"
#include "obs/trace_writer.hpp"
#include "runner/experiment.hpp"

namespace synran {
namespace {

std::vector<Bit> bits(std::initializer_list<int> xs) {
  std::vector<Bit> out;
  for (int x : xs) out.push_back(x ? Bit::One : Bit::Zero);
  return out;
}

struct DelayCase {
  const char* name;
  AsyncDelayFactory make;
};

struct SchedulerCase {
  const char* name;
  AsyncSchedulerFactory make;
};

AsyncRepeatSpec base_spec(std::uint64_t seed, unsigned threads) {
  AsyncRepeatSpec spec;
  spec.n = 8;
  spec.pattern = InputPattern::Random;
  spec.reps = 12;
  spec.seed = seed;
  spec.threads = threads;
  spec.engine.t_budget = 2;
  spec.engine.max_steps = 200000;
  return spec;
}

// ------------------------------------------------- serial <-> parallel

TEST(AsyncExecEquivalence, MetricsIdenticalAcrossThreadCounts) {
  // The full matrix: every (scheduler, delay) family must produce
  // bit-identical aggregate JSON at 1, 2, and 8 workers.
  const std::vector<SchedulerCase> schedulers = {
      {"random", random_scheduler_factory()},
      {"laggard", laggard_scheduler_factory()},
      {"stall", stall_scheduler_factory()},
  };
  const std::vector<DelayCase> delays = {
      {"held", held_delay_factory()},
      {"fixed", fixed_delay_factory(3)},
      {"uniform", uniform_delay_factory(1, 5)},
      {"gst", gst_delay_factory(20, 4)},
  };
  const BenOrAsyncFactory factory;
  for (const auto& sched : schedulers) {
    for (const auto& delay : delays) {
      // Pure asynchrony starves under stall — skip the one config whose
      // runs would just burn the step cap without deciding.
      if (std::string(sched.name) == "stall" &&
          std::string(delay.name) == "held") {
        continue;
      }
      std::string serial;
      for (unsigned threads : {1u, 2u, 8u}) {
        AsyncRepeatSpec spec = base_spec(99, threads);
        const AsyncRunStats stats =
            run_repeated_async(factory, sched.make, delay.make, spec);
        const std::string dump = stats.metrics().to_json().dump();
        if (threads == 1) {
          serial = dump;
          EXPECT_EQ(stats.reps(), spec.reps);
        } else {
          EXPECT_EQ(dump, serial)
              << sched.name << "/" << delay.name << " diverged at threads="
              << threads;
        }
      }
    }
  }
}

TEST(AsyncExecEquivalence, ObserverStreamByteIdenticalAcrossThreads) {
  // Traces written through the observer must match the serial run byte for
  // byte at any thread count (buffered + rep-order replay).
  const BenOrAsyncFactory factory;
  std::string serial;
  for (unsigned threads : {1u, 2u, 8u}) {
    std::ostringstream out;
    obs::JsonlTraceWriter writer(out);
    AsyncRepeatSpec spec = base_spec(7, threads);
    spec.engine.observer = &writer;
    run_repeated_async(factory, random_scheduler_factory(),
                       gst_delay_factory(30, 5), spec);
    if (threads == 1) {
      serial = out.str();
      EXPECT_FALSE(serial.empty());
      EXPECT_NE(serial.find("run_begin"), std::string::npos);
      EXPECT_NE(serial.find("run_end"), std::string::npos);
    } else {
      EXPECT_EQ(out.str(), serial) << "trace diverged at threads=" << threads;
    }
  }
}

TEST(AsyncExecEquivalence, DelayStreamDecoupledFromCoinStream) {
  // Same master seed, different delay models: the coin/scheduler streams
  // are untouched, so switching the delay family must not perturb how
  // inputs are drawn — reps count and safety hold either way.
  const BenOrAsyncFactory factory;
  AsyncRepeatSpec spec = base_spec(1234, 1);
  const AsyncRunStats a = run_repeated_async(
      factory, random_scheduler_factory(), fixed_delay_factory(1), spec);
  const AsyncRunStats b = run_repeated_async(
      factory, random_scheduler_factory(), uniform_delay_factory(1, 9), spec);
  EXPECT_TRUE(a.all_safe());
  EXPECT_TRUE(b.all_safe());
  EXPECT_EQ(a.reps(), b.reps());
}

// ------------------------------------------------- failure domains

/// Always returns an out-of-range deliver index: every rep fails.
class BrokenScheduler final : public AsyncScheduler {
 public:
  AsyncAction step(const AsyncWorld& world) override {
    return {AsyncAction::Kind::Deliver, world.pending().size() + 7, 0, {}};
  }
  const char* name() const override { return "broken"; }
};

TEST(AsyncExecFailures, FailFastThrowsEarliestRep) {
  const BenOrAsyncFactory factory;
  const AsyncSchedulerFactory broken = [](std::uint64_t) {
    return std::make_unique<BrokenScheduler>();
  };
  for (unsigned threads : {1u, 4u}) {
    AsyncRepeatSpec spec = base_spec(5, threads);
    try {
      run_repeated_async(factory, broken, held_delay_factory(), spec);
      FAIL() << "expected RepError";
    } catch (const RepError& e) {
      EXPECT_EQ(e.rep(), 0u) << "earliest failing rep not selected";
      EXPECT_EQ(e.seed(), engine_seed_for_rep(spec.seed, 0));
    }
  }
}

TEST(AsyncExecFailures, QuarantineKeepsGoing) {
  const BenOrAsyncFactory factory;
  const AsyncSchedulerFactory broken = [](std::uint64_t) {
    return std::make_unique<BrokenScheduler>();
  };
  AsyncRepeatSpec spec = base_spec(5, 2);
  spec.policy = FailurePolicy::Quarantine;
  const AsyncRunStats stats =
      run_repeated_async(factory, broken, held_delay_factory(), spec);
  EXPECT_EQ(stats.reps_quarantined(), spec.reps);
  EXPECT_EQ(stats.reps(), 0u);
  ASSERT_EQ(stats.failures().size(), spec.reps);
  for (std::size_t i = 0; i < stats.failures().size(); ++i) {
    EXPECT_EQ(stats.failures()[i].rep, i);  // rep-order fold
  }
}

// --------------------------------------------- scheduler drop validation

/// Crashes process 0 with a caller-chosen drop list, then delivers head.
class CrashWithDrops final : public AsyncScheduler {
 public:
  explicit CrashWithDrops(std::vector<std::size_t> drop)
      : drop_(std::move(drop)) {}
  AsyncAction step(const AsyncWorld& world) override {
    if (!world.crashed(0)) {
      AsyncAction a;
      a.kind = AsyncAction::Kind::Crash;
      a.victim = 0;
      a.drop = drop_;
      return a;
    }
    return {AsyncAction::Kind::Deliver, 0, 0, {}};
  }
  const char* name() const override { return "crash-with-drops"; }

 private:
  std::vector<std::size_t> drop_;
};

TEST(AsyncSchedulerViolation, DuplicateDropIndexIsRejected) {
  const BenOrAsyncFactory factory;
  CrashWithDrops sched({0, 0});
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  try {
    run_async(factory, bits({0, 1, 0}), sched, opts);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate drop index"),
              std::string::npos)
        << e.what();
  }
}

TEST(AsyncSchedulerViolation, OutOfRangeDropIndexIsRejected) {
  const BenOrAsyncFactory factory;
  CrashWithDrops sched({999});
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  try {
    run_async(factory, bits({0, 1, 0}), sched, opts);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
}

TEST(AsyncSchedulerViolation, DropOfLiveSendersMessageIsRejected) {
  // The start pumps pool messages in send order: indices 0..2 are process
  // 0's broadcast, 3..5 process 1's. Index 3 is live traffic, not the
  // victim's, so dropping it must be refused.
  const BenOrAsyncFactory factory;
  CrashWithDrops sched({3});
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  try {
    run_async(factory, bits({0, 1, 0}), sched, opts);
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("not crash victim"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------- fault timetable

TEST(AsyncEngineFaults, TimetableCrashComposesWithTimedDelays) {
  const BenOrAsyncFactory factory;
  FifoScheduler sched;  // never consulted: everything is timed
  FixedDelay delay(5);
  AsyncFaultTimetable faults;
  faults.crashes.push_back({12, 0});
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  opts.delay = &delay;
  opts.faults = &faults;
  const AsyncRunResult res =
      run_async(factory, bits({0, 1, 1, 0, 1}), sched, opts);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_GT(res.end_time, 12u);
}

TEST(AsyncEngineFaults, TimetableCrashPastBudgetThrows) {
  const BenOrAsyncFactory factory;
  FifoScheduler sched;
  FixedDelay delay(5);
  AsyncFaultTimetable faults;
  faults.crashes.push_back({5, 0});
  faults.crashes.push_back({6, 1});
  AsyncEngineOptions opts;
  opts.t_budget = 1;  // second injection exceeds the budget
  opts.delay = &delay;
  opts.faults = &faults;
  EXPECT_THROW(run_async(factory, bits({0, 1, 1, 0, 1}), sched, opts),
               InvariantError);
}

TEST(AsyncEngineFaults, OmissionInjectionSpendsBudgetAndDropsMessages) {
  const BenOrAsyncFactory factory;
  FifoScheduler sched;
  FixedDelay delay(5);
  AsyncFaultTimetable faults;
  faults.omissions.push_back({2, 0, 3});
  AsyncEngineOptions opts;
  opts.t_budget = 0;
  opts.omission_budget = 1;
  opts.delay = &delay;
  opts.faults = &faults;
  BenOrOptions retransmit;
  retransmit.retransmit_every = 20;  // keeps the run live despite the drops
  const AsyncRunResult res = run_async(BenOrAsyncFactory(retransmit),
                                       bits({0, 1, 1, 0, 1}), sched, opts);
  EXPECT_EQ(res.omissions, 1u);
  EXPECT_EQ(res.messages_omitted, 3u);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);

  opts.omission_budget = 0;  // same injection, no budget: must throw
  EXPECT_THROW(run_async(factory, bits({0, 1, 1, 0, 1}), sched, opts),
               InvariantError);
}

// ------------------------------------------------- partial synchrony

TEST(AsyncPartialSynchrony, StallSchedulerStarvesPureAsynchrony) {
  const BenOrAsyncFactory factory;
  StallScheduler sched;
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  const AsyncRunResult res = run_async(factory, bits({0, 1, 0}), sched, opts);
  EXPECT_FALSE(res.terminated);
  EXPECT_EQ(res.steps, 0u);  // nothing was ever delivered
}

TEST(AsyncPartialSynchrony, GstDeadlinesForceDecisionAfterGst) {
  const BenOrAsyncFactory factory;
  StallScheduler sched;  // extremal adversary: only deadlines deliver
  GstDelay delay(100, 7);
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  opts.delay = &delay;
  const AsyncRunResult res =
      run_async(factory, bits({0, 1, 1, 0, 1}), sched, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_GE(res.decision_time, delay.gst());
  EXPECT_EQ(res.steps, res.messages_delivered);
}

TEST(AsyncPartialSynchrony, RetransmissionRecoversOmittedQuorum) {
  // Drop both round-1 report broadcasts of processes 0 and 1 entirely: no
  // process can reach its n-t = 3 quorum, so the message-driven protocol
  // starves. The retransmission timer is exactly what restores liveness.
  const auto inputs = bits({0, 1, 1, 0});
  FifoScheduler sched;
  AsyncFaultTimetable faults;
  faults.omissions.push_back({1, 0, 4});
  faults.omissions.push_back({1, 1, 4});
  AsyncEngineOptions opts;
  opts.t_budget = 1;
  opts.omission_budget = 2;
  opts.faults = &faults;
  FixedDelay delay(1);
  opts.delay = &delay;
  opts.max_steps = 5000;

  const AsyncRunResult bare =
      run_async(BenOrAsyncFactory(), inputs, sched, opts);
  EXPECT_FALSE(bare.terminated) << "expected starvation without retransmit";

  BenOrOptions retransmit;
  retransmit.retransmit_every = 10;
  const AsyncRunResult recovered =
      run_async(BenOrAsyncFactory(retransmit), inputs, sched, opts);
  EXPECT_TRUE(recovered.terminated);
  EXPECT_TRUE(recovered.agreement);
  EXPECT_GT(recovered.timers_fired, 0u);
}

// ------------------------------------------------- golden pins

TEST(AsyncGolden, FixedDelayBenOrPinned) {
  // The event-driven analog of the old step engine's lockstep-ish runs:
  // fixed unit delay, FIFO event order, no faults. Pinned so accidental
  // changes to event ordering, codec, or coin streams surface loudly.
  // (First pin of this config — the old engine had no timed mode, so there
  // is no prior golden to carry over; values recorded from the initial
  // event-core implementation.)
  const BenOrAsyncFactory factory;
  FifoScheduler sched;
  FixedDelay delay(1);
  AsyncEngineOptions opts;
  opts.t_budget = 2;
  opts.seed = 42;
  opts.delay = &delay;
  const AsyncRunResult res =
      run_async(factory, bits({0, 1, 0, 1, 0, 1, 0, 1}), sched, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.steps, res.messages_delivered);
  // Golden values (seed 42, n=8, t=2, alternating inputs):
  EXPECT_EQ(res.max_round, 3u);
  EXPECT_EQ(res.messages_delivered, 240u);
  EXPECT_EQ(res.coin_flips, 8u);
  EXPECT_EQ(res.end_time, 4u);
  EXPECT_EQ(to_int(res.decision), 1);
}

TEST(AsyncGolden, AdversaryHeldBatchPinned) {
  // The compat configuration: no delay model, random scheduler — the exact
  // semantics of the retired step engine. Pinned at the batch level.
  const BenOrAsyncFactory factory;
  AsyncRepeatSpec spec = base_spec(2024, 1);
  const AsyncRunStats stats = run_repeated_async(
      factory, random_scheduler_factory(), held_delay_factory(), spec);
  EXPECT_TRUE(stats.all_safe());
  EXPECT_EQ(stats.reps(), 12u);
  EXPECT_EQ(stats.decided_one(), 4u);
  EXPECT_DOUBLE_EQ(stats.messages_delivered().mean(), 308.16666666666669);
  EXPECT_DOUBLE_EQ(stats.coin_flips().mean(), 7.0833333333333339);
}

}  // namespace
}  // namespace synran
