// Tests for the k-valued FloodMin extension.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.hpp"
#include "common/check.hpp"
#include "protocols/kfloodmin.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

/// Adapter: runs KFloodMin with explicit k-ary inputs through the binary
/// engine by pre-building the processes.
class KInputFactory final : public ProcessFactory {
 public:
  KInputFactory(KFloodMinOptions opts, std::vector<KValue> inputs)
      : opts_(opts), inputs_(std::move(inputs)) {}
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit) const override {
    return std::make_unique<KFloodMinProcess>(id, n, inputs_[id], opts_);
  }
  const char* name() const override { return "kfloodmin-fixed"; }

 private:
  KFloodMinOptions opts_;
  std::vector<KValue> inputs_;
};

std::vector<Bit> dummy_bits(std::size_t n) {
  return std::vector<Bit>(n, Bit::Zero);
}

TEST(KFloodMinTest, DecidesMinimumOfKaryInputs) {
  KInputFactory factory({2, 8}, {5, 3, 7, 6});
  NoAdversary none;
  const auto res = run_once(factory, dummy_bits(4), none, {});
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.rounds_to_decision, 3u);  // t+1
  // Every survivor decided value 3.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(res.decided[i]);
}

TEST(KFloodMinTest, KaryDecisionIsAgreedUnderCrashes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    KInputFactory factory({3, 16}, {9, 4, 12, 4, 15, 11});
    RandomCrashAdversary adv({1, 0.8, seed});
    EngineOptions opts;
    opts.t_budget = 3;
    opts.seed = seed;
    const auto res = run_once(factory, dummy_bits(6), adv, opts);
    ASSERT_TRUE(res.terminated);
    // Engine-level binary agreement maps all k > 0 decisions to "1"; the
    // k-ary agreement is checked through decision_value in the unit test
    // below, here we check the runs complete and nobody is undecided.
    for (std::size_t i = 0; i < 6; ++i) {
      if (!res.crashed[i]) EXPECT_TRUE(res.decided[i]) << "seed " << seed;
    }
  }
}

TEST(KFloodMinTest, UnitRoundFlow) {
  KFloodMinProcess p(0, 4, 6, {1, 8});
  TapeCoinSource coins;
  const auto out1 = p.on_round(nullptr, coins);
  ASSERT_TRUE(out1.has_value());
  // Value set {6} in the upper bits; low bits say "no zero seen".
  EXPECT_EQ((*out1 >> 8) & 0xff, 1u << 6);
  EXPECT_TRUE(*out1 & payload::kSupports1);

  Receipt r;
  r.count = 4;
  r.or_mask = (Payload{(1u << 6) | (1u << 2)} << 8);
  const auto out2 = p.on_round(&r, coins);
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ((*out2 >> 8) & 0xff, (1u << 6) | (1u << 2));

  const auto out3 = p.on_round(&r, coins);  // round t+2: decide
  EXPECT_FALSE(out3.has_value());
  EXPECT_TRUE(p.decided());
  EXPECT_EQ(p.decision_value(), 2);
}

TEST(KFloodMinTest, ValueZeroMapsToBinaryZero) {
  KInputFactory factory({1, 4}, {0, 3, 2});
  NoAdversary none;
  const auto res = run_once(factory, dummy_bits(3), none, {});
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
}

TEST(KFloodMinTest, BinaryFactoryInterop) {
  // Through the plain ProcessFactory interface it behaves exactly like
  // binary FloodMin.
  KFloodMinFactory factory({2, 2});
  NoAdversary none;
  std::vector<Bit> inputs{Bit::One, Bit::One, Bit::Zero, Bit::One};
  const auto res = run_once(factory, inputs, none, {});
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
  EXPECT_EQ(res.rounds_to_decision, 3u);
}

TEST(KFloodMinTest, GuardsDomain) {
  EXPECT_THROW(KFloodMinProcess(0, 4, 4, {1, 4}), ArgumentError);  // v ≥ k
  EXPECT_THROW(KFloodMinProcess(0, 4, 0, {4, 4}), ArgumentError);  // t ≥ n
  EXPECT_THROW(KFloodMinProcess(0, 4, 0, {1, 1}), ArgumentError);  // k < 2
  EXPECT_THROW(KFloodMinProcess(0, 4, 0, {1, 40}), ArgumentError); // k > 32
}

TEST(KFloodMinTest, CloneAndDigest) {
  KFloodMinProcess p(1, 5, 3, {2, 8});
  auto c = p.clone();
  EXPECT_EQ(p.state_digest(), c->state_digest());
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  EXPECT_NE(p.state_digest(), c->state_digest());
}

}  // namespace
}  // namespace synran
