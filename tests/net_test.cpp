// Unit tests for src/net: payload conventions, fault-plan validation, and
// equivalence of the fast delivery path with the naive reference.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/types.hpp"

namespace synran {
namespace {

std::vector<std::optional<Payload>> bits_payloads(
    const std::vector<int>& bits) {
  std::vector<std::optional<Payload>> out;
  out.reserve(bits.size());
  for (int b : bits) {
    if (b < 0)
      out.emplace_back(std::nullopt);  // silent process
    else
      out.emplace_back(payload::of_bit(b ? Bit::One : Bit::Zero));
  }
  return out;
}

TEST(PayloadTest, OfBitAndSupports) {
  EXPECT_TRUE(payload::supports(payload::of_bit(Bit::One), Bit::One));
  EXPECT_FALSE(payload::supports(payload::of_bit(Bit::One), Bit::Zero));
  EXPECT_TRUE(payload::supports(payload::kSupports0 | payload::kSupports1,
                                Bit::Zero));
}

TEST(FabricTest, FullDeliveryCountsEveryone) {
  const auto payloads = bits_payloads({1, 0, 1, 1});
  DynBitset receivers(4, true);
  RoundTraffic traffic{payloads, nullptr};
  const auto r = deliver(4, traffic, receivers);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r[i].count, 4u);
    EXPECT_EQ(r[i].ones, 3u);
    EXPECT_EQ(r[i].zeros, 1u);
    EXPECT_EQ(r[i].or_mask, payload::kSupports0 | payload::kSupports1);
  }
}

TEST(FabricTest, SilentSendersAreSkipped) {
  const auto payloads = bits_payloads({1, -1, 0});
  DynBitset receivers(3, true);
  RoundTraffic traffic{payloads, nullptr};
  const auto r = deliver(3, traffic, receivers);
  EXPECT_EQ(r[0].count, 2u);
  EXPECT_EQ(r[0].ones, 1u);
}

TEST(FabricTest, CrashWithEmptyDeliveryHidesMessage) {
  const auto payloads = bits_payloads({1, 1, 0});
  FaultPlan plan;
  plan.crashes.push_back({0, DynBitset(3)});
  DynBitset receivers(3, true);
  receivers.reset(0);  // victim no longer receives
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(3, traffic, receivers);
  EXPECT_EQ(r[1].count, 2u);
  EXPECT_EQ(r[1].ones, 1u);
  EXPECT_EQ(r[2].count, 2u);
}

TEST(FabricTest, PartialDeliverySplitsViews) {
  const auto payloads = bits_payloads({1, 0, 0, 0});
  FaultPlan plan;
  DynBitset mask(4);
  mask.set(1);  // only process 1 still hears the crashed 1-sender
  plan.crashes.push_back({0, mask});
  DynBitset receivers(4, true);
  receivers.reset(0);
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(4, traffic, receivers);
  EXPECT_EQ(r[1].count, 4u);
  EXPECT_EQ(r[1].ones, 1u);
  EXPECT_EQ(r[2].count, 3u);
  EXPECT_EQ(r[2].ones, 0u);
  EXPECT_EQ(r[3].ones, 0u);
}

TEST(FabricTest, NonReceiversGetNothing) {
  const auto payloads = bits_payloads({1, 1});
  DynBitset receivers(2);
  receivers.set(1);
  RoundTraffic traffic{payloads, nullptr};
  const auto r = deliver(2, traffic, receivers);
  EXPECT_EQ(r[0].count, 0u);
  EXPECT_EQ(r[1].count, 2u);
}

TEST(FabricTest, ValidationRejectsBadPlans) {
  const auto payloads = bits_payloads({1, -1});
  DynBitset receivers(2, true);

  FaultPlan silent_victim;
  silent_victim.crashes.push_back({1, DynBitset(2)});
  RoundTraffic t1{payloads, &silent_victim};
  EXPECT_THROW(deliver(2, t1, receivers), ArgumentError);

  FaultPlan dup;
  dup.crashes.push_back({0, DynBitset(2)});
  dup.crashes.push_back({0, DynBitset(2)});
  RoundTraffic t2{payloads, &dup};
  EXPECT_THROW(deliver(2, t2, receivers), ArgumentError);

  FaultPlan bad_mask;
  bad_mask.crashes.push_back({0, DynBitset(3)});
  RoundTraffic t3{payloads, &bad_mask};
  EXPECT_THROW(deliver(2, t3, receivers), ArgumentError);

  FaultPlan out_of_range;
  out_of_range.crashes.push_back({5, DynBitset(2)});
  RoundTraffic t4{payloads, &out_of_range};
  EXPECT_THROW(deliver(2, t4, receivers), ArgumentError);
}

TEST(FabricTest, WrongPayloadSizeThrows) {
  const auto payloads = bits_payloads({1, 1});
  DynBitset receivers(3, true);
  RoundTraffic traffic{payloads, nullptr};
  EXPECT_THROW(deliver(3, traffic, receivers), ArgumentError);
}

// Property: fast path == naive path on random traffic.
class FabricEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricEquivalence, FastMatchesNaive) {
  Xoshiro256 rng(GetParam());
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.below(60));

  std::vector<std::optional<Payload>> payloads(n);
  std::vector<ProcessId> senders;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.8) {
      payloads[i] = rng.next() & 0x7;  // random low-3-bit payloads
      senders.push_back(i);
    }
  }

  FaultPlan plan;
  DynBitset receivers(n, true);
  if (!senders.empty()) {
    const std::uint32_t crashes = static_cast<std::uint32_t>(
        rng.below(std::min<std::uint64_t>(senders.size(), 5) + 1));
    for (std::uint32_t k = 0; k < crashes; ++k) {
      const std::size_t j = k + rng.below(senders.size() - k);
      std::swap(senders[k], senders[j]);
      DynBitset mask(n);
      for (std::uint32_t r = 0; r < n; ++r)
        if (rng.flip()) mask.set(r);
      plan.crashes.push_back({senders[k], mask});
      receivers.reset(senders[k]);
    }
  }
  for (std::uint32_t i = 0; i < n; ++i)
    if (rng.uniform() < 0.2) receivers.reset(i);

  RoundTraffic traffic{payloads, &plan};
  const auto fast = deliver(n, traffic, receivers);
  const auto naive = deliver_naive(n, traffic, receivers);
  ASSERT_EQ(fast.size(), naive.size());
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(fast[i], naive[i]) << "receiver " << i << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(RandomTraffic, FabricEquivalence,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(OmissionFabricTest, DropsLinksForChosenReceivers) {
  const auto payloads = bits_payloads({1, 0, 1, 0});
  FaultPlan plan;
  DynBitset drop(4);
  drop.set(1);
  drop.set(2);  // sender 0's message vanishes for receivers 1 and 2
  plan.omissions.push_back({0, drop});
  DynBitset receivers(4, true);
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(4, traffic, receivers);
  EXPECT_EQ(r[0].count, 4u);
  EXPECT_EQ(r[1].count, 3u);
  EXPECT_EQ(r[1].ones, 1u);  // only sender 2's 1 remains
  EXPECT_EQ(r[2].count, 3u);
  EXPECT_EQ(r[3].count, 4u);
  EXPECT_EQ(r[3].ones, 2u);
}

TEST(OmissionFabricTest, OrMaskRebuiltExactly) {
  // Senders 0 and 1 are the only kSupports1 carriers; hiding both from
  // receiver 2 must clear that bit in its or_mask, while receiver 3 (which
  // loses only sender 0) keeps it.
  const auto payloads = bits_payloads({1, 1, 0, 0});
  FaultPlan plan;
  DynBitset drop_both(4);
  drop_both.set(2);
  DynBitset drop_one(4);
  drop_one.set(2);
  drop_one.set(3);
  plan.omissions.push_back({1, drop_both});
  plan.omissions.push_back({0, drop_one});
  DynBitset receivers(4, true);
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(4, traffic, receivers);
  EXPECT_EQ(r[2].count, 2u);
  EXPECT_EQ(r[2].ones, 0u);
  EXPECT_FALSE(r[2].or_mask & payload::kSupports1);
  EXPECT_TRUE(r[2].or_mask & payload::kSupports0);
  EXPECT_EQ(r[3].count, 3u);
  EXPECT_EQ(r[3].ones, 1u);
  EXPECT_TRUE(r[3].or_mask & payload::kSupports1);
}

TEST(OmissionFabricTest, ValidationRejectsBadOmissions) {
  const auto payloads = bits_payloads({1, -1, 1});
  DynBitset receivers(3, true);

  FaultPlan non_sender;
  non_sender.omissions.push_back({1, DynBitset(3)});
  RoundTraffic t1{payloads, &non_sender};
  EXPECT_THROW(deliver(3, t1, receivers), ArgumentError);

  FaultPlan dup;
  dup.omissions.push_back({0, DynBitset(3)});
  dup.omissions.push_back({0, DynBitset(3)});
  RoundTraffic t2{payloads, &dup};
  EXPECT_THROW(deliver(3, t2, receivers), ArgumentError);

  FaultPlan bad_mask;
  bad_mask.omissions.push_back({0, DynBitset(2)});
  RoundTraffic t3{payloads, &bad_mask};
  EXPECT_THROW(deliver(3, t3, receivers), ArgumentError);

  FaultPlan out_of_range;
  out_of_range.omissions.push_back({7, DynBitset(3)});
  RoundTraffic t4{payloads, &out_of_range};
  EXPECT_THROW(deliver(3, t4, receivers), ArgumentError);

  FaultPlan crash_and_omit;
  crash_and_omit.crashes.push_back({0, DynBitset(3)});
  crash_and_omit.omissions.push_back({0, DynBitset(3)});
  RoundTraffic t5{payloads, &crash_and_omit};
  EXPECT_THROW(deliver(3, t5, receivers), ArgumentError);
}

// Property: fast path == naive path under mixed crash + omission plans.
class OmissionFabricEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmissionFabricEquivalence, FastMatchesNaive) {
  Xoshiro256 rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.below(60));

  std::vector<std::optional<Payload>> payloads(n);
  std::vector<ProcessId> senders;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.8) {
      payloads[i] = rng.next() & 0x7;  // random low-3-bit payloads
      senders.push_back(i);
    }
  }

  FaultPlan plan;
  DynBitset receivers(n, true);
  std::size_t used = 0;  // prefix of `senders` consumed by crash directives
  if (!senders.empty()) {
    const std::uint32_t crashes = static_cast<std::uint32_t>(
        rng.below(std::min<std::uint64_t>(senders.size(), 4) + 1));
    for (std::uint32_t k = 0; k < crashes; ++k) {
      const std::size_t j = used + rng.below(senders.size() - used);
      std::swap(senders[used], senders[j]);
      DynBitset mask(n);
      for (std::uint32_t r = 0; r < n; ++r)
        if (rng.flip()) mask.set(r);
      plan.crashes.push_back({senders[used], mask});
      receivers.reset(senders[used]);
      ++used;
    }
  }
  // Omissions target live senders only (the remaining suffix of `senders`).
  if (used < senders.size()) {
    const std::uint32_t omissions = static_cast<std::uint32_t>(rng.below(
        std::min<std::uint64_t>(senders.size() - used, 6) + 1));
    for (std::uint32_t k = 0; k < omissions; ++k) {
      const std::size_t j = used + rng.below(senders.size() - used);
      std::swap(senders[used], senders[j]);
      DynBitset drop(n);
      for (std::uint32_t r = 0; r < n; ++r)
        if (rng.uniform() < 0.4) drop.set(r);
      plan.omissions.push_back({senders[used], drop});
      ++used;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i)
    if (rng.uniform() < 0.2) receivers.reset(i);

  RoundTraffic traffic{payloads, &plan};
  const auto fast = deliver(n, traffic, receivers);
  const auto naive = deliver_naive(n, traffic, receivers);
  ASSERT_EQ(fast.size(), naive.size());
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(fast[i], naive[i]) << "receiver " << i << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(MixedFaultTraffic, OmissionFabricEquivalence,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(CorruptFabricTest, ForgerySubstitutesPayloadPerReceiver) {
  // Sender 0 truly sends 1; receivers 1 and 2 instead observe a forged 0
  // (receiver 2's forgery also carries a high marker bit). The message still
  // arrives, so counts are untouched — only the value flips.
  const auto payloads = bits_payloads({1, 0, 1, 0});
  FaultPlan plan;
  CorruptionDirective cd;
  cd.sender = 0;
  cd.forgeries.push_back({1, payload::kSupports0});
  cd.forgeries.push_back({2, payload::kSupports0 | (Payload{1} << 8)});
  plan.corruptions.push_back(std::move(cd));
  DynBitset receivers(4, true);
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(4, traffic, receivers);
  EXPECT_EQ(r[0].count, 4u);  // untouched receiver sees the truth
  EXPECT_EQ(r[0].ones, 2u);
  EXPECT_EQ(r[1].count, 4u);  // forged link still delivers a message
  EXPECT_EQ(r[1].ones, 1u);
  EXPECT_EQ(r[1].zeros, 3u);
  EXPECT_EQ(r[2].count, 4u);
  EXPECT_EQ(r[2].ones, 1u);
  EXPECT_TRUE(r[2].or_mask & (Payload{1} << 8));
  EXPECT_FALSE(r[1].or_mask & (Payload{1} << 8));
  EXPECT_EQ(r[3], r[0]);
}

TEST(CorruptFabricTest, OrMaskRebuiltAfterForgery) {
  // Sender 0 is the sole kSupports1 carrier; forging its message to
  // receiver 1 as a pure 0 must clear kSupports1 from that receiver's
  // or_mask while everyone else keeps it.
  const auto payloads = bits_payloads({1, 0, 0});
  FaultPlan plan;
  CorruptionDirective cd;
  cd.sender = 0;
  cd.forgeries.push_back({1, payload::kSupports0});
  plan.corruptions.push_back(std::move(cd));
  DynBitset receivers(3, true);
  RoundTraffic traffic{payloads, &plan};
  const auto r = deliver(3, traffic, receivers);
  EXPECT_FALSE(r[1].or_mask & payload::kSupports1);
  EXPECT_TRUE(r[1].or_mask & payload::kSupports0);
  EXPECT_TRUE(r[0].or_mask & payload::kSupports1);
  EXPECT_TRUE(r[2].or_mask & payload::kSupports1);
}

TEST(CorruptFabricTest, ValidationRejectsBadCorruptions) {
  const auto payloads = bits_payloads({1, -1, 1});
  DynBitset receivers(3, true);
  const auto one_forgery = [](ProcessId sender, ProcessId target) {
    CorruptionDirective cd;
    cd.sender = sender;
    cd.forgeries.push_back({target, payload::kSupports0});
    return cd;
  };

  FaultPlan non_sender;  // silent processes have nothing to corrupt
  non_sender.corruptions.push_back(one_forgery(1, 0));
  RoundTraffic t1{payloads, &non_sender};
  EXPECT_THROW(deliver(3, t1, receivers), ArgumentError);

  FaultPlan dup_sender;
  dup_sender.corruptions.push_back(one_forgery(0, 1));
  dup_sender.corruptions.push_back(one_forgery(0, 2));
  RoundTraffic t2{payloads, &dup_sender};
  EXPECT_THROW(deliver(3, t2, receivers), ArgumentError);

  FaultPlan dup_target;
  dup_target.corruptions.push_back(one_forgery(0, 1));
  dup_target.corruptions.back().forgeries.push_back(
      {1, payload::kSupports1});
  RoundTraffic t3{payloads, &dup_target};
  EXPECT_THROW(deliver(3, t3, receivers), ArgumentError);

  FaultPlan sender_range;
  sender_range.corruptions.push_back(one_forgery(9, 0));
  RoundTraffic t4{payloads, &sender_range};
  EXPECT_THROW(deliver(3, t4, receivers), ArgumentError);

  FaultPlan target_range;
  target_range.corruptions.push_back(one_forgery(0, 9));
  RoundTraffic t5{payloads, &target_range};
  EXPECT_THROW(deliver(3, t5, receivers), ArgumentError);

  FaultPlan crash_overlap;
  crash_overlap.crashes.push_back({0, DynBitset(3)});
  crash_overlap.corruptions.push_back(one_forgery(0, 1));
  RoundTraffic t6{payloads, &crash_overlap};
  EXPECT_THROW(deliver(3, t6, receivers), ArgumentError);

  FaultPlan omit_overlap;
  omit_overlap.omissions.push_back({0, DynBitset(3)});
  omit_overlap.corruptions.push_back(one_forgery(0, 1));
  RoundTraffic t7{payloads, &omit_overlap};
  EXPECT_THROW(deliver(3, t7, receivers), ArgumentError);
}

// Property: fast path == naive path under mixed crash + omission +
// corruption plans, including forged payload bits outside the value
// conventions (they must round-trip through the or_mask rebuild exactly).
class CorruptFabricEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptFabricEquivalence, FastMatchesNaive) {
  Xoshiro256 rng(GetParam() * 0xd1b54a32d192ed03ULL + 1);
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.below(60));

  std::vector<std::optional<Payload>> payloads(n);
  std::vector<ProcessId> senders;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.8) {
      payloads[i] = rng.next() & 0x7;  // random low-3-bit payloads
      senders.push_back(i);
    }
  }

  FaultPlan plan;
  DynBitset receivers(n, true);
  std::size_t used = 0;  // prefix of `senders` consumed by directives so far
  if (!senders.empty()) {
    const std::uint32_t crashes = static_cast<std::uint32_t>(
        rng.below(std::min<std::uint64_t>(senders.size(), 3) + 1));
    for (std::uint32_t k = 0; k < crashes; ++k) {
      const std::size_t j = used + rng.below(senders.size() - used);
      std::swap(senders[used], senders[j]);
      DynBitset mask(n);
      for (std::uint32_t r = 0; r < n; ++r)
        if (rng.flip()) mask.set(r);
      plan.crashes.push_back({senders[used], mask});
      receivers.reset(senders[used]);
      ++used;
    }
  }
  if (used < senders.size()) {
    const std::uint32_t omissions = static_cast<std::uint32_t>(rng.below(
        std::min<std::uint64_t>(senders.size() - used, 4) + 1));
    for (std::uint32_t k = 0; k < omissions; ++k) {
      const std::size_t j = used + rng.below(senders.size() - used);
      std::swap(senders[used], senders[j]);
      DynBitset drop(n);
      for (std::uint32_t r = 0; r < n; ++r)
        if (rng.uniform() < 0.4) drop.set(r);
      plan.omissions.push_back({senders[used], drop});
      ++used;
    }
  }
  // Corruptions claim live senders disjoint from the crash and omission
  // prefixes; forged payloads roam a wider bit range than the true ones.
  if (used < senders.size()) {
    const std::uint32_t corruptions = static_cast<std::uint32_t>(rng.below(
        std::min<std::uint64_t>(senders.size() - used, 4) + 1));
    for (std::uint32_t k = 0; k < corruptions; ++k) {
      const std::size_t j = used + rng.below(senders.size() - used);
      std::swap(senders[used], senders[j]);
      CorruptionDirective cd;
      cd.sender = senders[used];
      DynBitset targeted(n);
      const std::uint32_t forgeries =
          1 + static_cast<std::uint32_t>(rng.below(n));
      for (std::uint32_t f = 0; f < forgeries; ++f) {
        const auto target = static_cast<ProcessId>(rng.below(n));
        if (targeted.test(target)) continue;
        targeted.set(target);
        cd.forgeries.push_back({target, rng.next() & 0x3ff});
      }
      plan.corruptions.push_back(std::move(cd));
      ++used;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i)
    if (rng.uniform() < 0.2) receivers.reset(i);

  RoundTraffic traffic{payloads, &plan};
  const auto fast = deliver(n, traffic, receivers);
  const auto naive = deliver_naive(n, traffic, receivers);
  ASSERT_EQ(fast.size(), naive.size());
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(fast[i], naive[i]) << "receiver " << i << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(MixedFaultTraffic, CorruptFabricEquivalence,
                         ::testing::Range<std::uint64_t>(1, 66));

}  // namespace
}  // namespace synran
