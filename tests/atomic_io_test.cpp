// The fsync-before-rename commit discipline, proven via the I/O
// fault-injection shim (obs::set_io_fault_hook). Every persisted artifact
// — AtomicFileSink outputs, checkpoint ledgers, serve cache entries —
// funnels through obs::commit_atomic(), so these tests pin the shared
// contract once: the Fsync stage fires strictly before the Rename stage,
// a fault at either stage leaves the final path byte-identical to what it
// held before, and a transient fault is retryable because the temp file's
// cleanup leaves the writer in a consistent state.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/atomic_file.hpp"
#include "obs/checkpoint.hpp"
#include "obs/io_error.hpp"
#include "obs/json.hpp"

namespace synran::obs {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("synran_atomic_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

/// Records every (stage, path) the commit path announces, in order.
using Trace = std::vector<std::pair<IoStage, std::string>>;

void install_recorder(Trace& trace) {
  set_io_fault_hook([&trace](IoStage stage, const std::string& path) {
    trace.emplace_back(stage, path);
  });
}

struct HookGuard {
  ~HookGuard() { set_io_fault_hook(nullptr); }
};

TEST(CommitAtomic, FsyncsTheTempFileBeforeRenaming) {
  HookGuard guard;
  const std::string dir = temp_dir("order");
  const std::string tmp = dir + "/artifact.json.tmp";
  const std::string final_path = dir + "/artifact.json";
  write_file(tmp, "{\"v\":1}");

  Trace trace;
  install_recorder(trace);
  commit_atomic(tmp, final_path, "test artifact");
  set_io_fault_hook(nullptr);

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].first, IoStage::Fsync);
  EXPECT_EQ(trace[0].second, tmp);
  EXPECT_EQ(trace[1].first, IoStage::Rename);
  EXPECT_EQ(trace[1].second, tmp);
  EXPECT_EQ(read_file(final_path), "{\"v\":1}");
  EXPECT_FALSE(fs::exists(tmp));
}

TEST(CommitAtomic, FaultAtEitherStageLeavesTheFinalPathUntouched) {
  HookGuard guard;
  const std::string dir = temp_dir("fault");
  const std::string tmp = dir + "/artifact.json.tmp";
  const std::string final_path = dir + "/artifact.json";
  write_file(final_path, "old contents");

  for (const IoStage fault_at : {IoStage::Fsync, IoStage::Rename}) {
    write_file(tmp, "new contents");
    set_io_fault_hook([fault_at](IoStage stage, const std::string&) {
      if (stage == fault_at) {
        throw IoError(std::string("injected at ") + to_string(stage));
      }
    });
    EXPECT_THROW(commit_atomic(tmp, final_path, "test artifact"), IoError);
    set_io_fault_hook(nullptr);
    EXPECT_EQ(read_file(final_path), "old contents")
        << "fault at " << to_string(fault_at);
    // The temp file survives for the caller to retry or remove.
    EXPECT_TRUE(fs::exists(tmp));
    fs::remove(tmp);
  }
}

TEST(AtomicFileSink, CommitsThroughTheSharedDiscipline) {
  HookGuard guard;
  const std::string dir = temp_dir("sink");
  const std::string path = dir + "/out.jsonl";

  Trace trace;
  install_recorder(trace);
  {
    AtomicFileSink sink(path);
    ASSERT_NE(sink.stream(), nullptr);
    (*sink.stream()) << "line one\n";
    sink.close();
  }
  set_io_fault_hook(nullptr);

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].first, IoStage::Fsync);
  EXPECT_EQ(trace[1].first, IoStage::Rename);
  EXPECT_EQ(read_file(path), "line one\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileSink, FaultedCloseNeverPublishesATornFile) {
  HookGuard guard;
  const std::string dir = temp_dir("sink_fault");
  const std::string path = dir + "/out.jsonl";
  set_io_fault_hook([](IoStage stage, const std::string&) {
    if (stage == IoStage::Fsync) throw IoError("injected");
  });
  {
    AtomicFileSink sink(path);
    (*sink.stream()) << "half-written";
    EXPECT_THROW(sink.close(), IoError);
  }
  set_io_fault_hook(nullptr);
  // The final name never appeared: a crashed reader can't see torn bytes.
  EXPECT_FALSE(fs::exists(path));
}

TEST(CheckpointLedger, RecordSurvivesATransientFsyncFault) {
  HookGuard guard;
  const std::string dir = temp_dir("ledger");
  const std::string path = dir + "/ledger.ckpt";

  CheckpointLedger ledger(path, "exp", 7);
  JsonValue data = JsonValue::object();
  data.set("cell_value", static_cast<std::int64_t>(1));

  int faults_left = 1;
  set_io_fault_hook([&faults_left](IoStage stage, const std::string&) {
    if (stage == IoStage::Fsync && faults_left > 0) {
      --faults_left;
      throw IoError("injected transient fsync fault");
    }
  });
  EXPECT_THROW(ledger.record(CheckpointCell{0, "cell-key", data}), IoError);
  // The fault aborted the flush before the final name was touched.
  EXPECT_FALSE(fs::exists(path));

  // Same ledger, fault cleared: the retry persists the cell durably.
  ledger.record(CheckpointCell{0, "cell-key", data});
  set_io_fault_hook(nullptr);
  EXPECT_TRUE(fs::exists(path));

  CheckpointLedger reloaded(path, "exp", 7);
  const CheckpointCell* found = reloaded.find(0, "cell-key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->data.dump(), data.dump());
}

TEST(CheckpointLedger, FaultedFlushPreservesThePreviousLedger) {
  HookGuard guard;
  const std::string dir = temp_dir("ledger_prev");
  const std::string path = dir + "/ledger.ckpt";

  JsonValue first = JsonValue::object();
  first.set("v", static_cast<std::int64_t>(1));
  CheckpointLedger ledger(path, "exp", 7);
  ledger.record(CheckpointCell{0, "first", first});
  const std::string committed = read_file(path);

  JsonValue second = JsonValue::object();
  second.set("v", static_cast<std::int64_t>(2));
  set_io_fault_hook([](IoStage stage, const std::string&) {
    if (stage == IoStage::Rename) throw IoError("injected rename fault");
  });
  EXPECT_THROW(ledger.record(CheckpointCell{1, "second", second}), IoError);
  set_io_fault_hook(nullptr);

  // The previously committed ledger bytes are exactly what a restarted
  // process reads: the failed flush changed nothing under the final name.
  EXPECT_EQ(read_file(path), committed);
  CheckpointLedger reloaded(path, "exp", 7);
  EXPECT_NE(reloaded.find(0, "first"), nullptr);
  EXPECT_EQ(reloaded.find(1, "second"), nullptr);
}

}  // namespace
}  // namespace synran::obs
