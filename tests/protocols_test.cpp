// Unit tests for the protocols, driven both directly (crafted receipts
// against a single process — validating every line of the SynRan pseudocode)
// and through the engine.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/theory.hpp"
#include "common/check.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

Receipt bit_receipt(std::uint32_t ones, std::uint32_t zeros) {
  Receipt r;
  r.count = ones + zeros;
  r.ones = ones;
  r.zeros = zeros;
  r.or_mask = (ones ? payload::kSupports1 : 0) |
              (zeros ? payload::kSupports0 : 0);
  return r;
}

/// Feeds one receipt with a coin tape and returns the produced payload.
std::optional<Payload> step(SynRanProcess& p, const Receipt& r,
                            std::vector<bool> tape = {}) {
  TapeCoinSource coins(std::move(tape));
  return p.on_round(&r, coins);
}

constexpr std::uint32_t kN = 100;  // N^0 = 100 for every fresh process

// --------------------------------------------------- SynRan threshold table

TEST(SynRanThresholds, Round1BroadcastsInput) {
  SynRanProcess p(0, kN, Bit::One, {});
  TapeCoinSource coins;
  const auto out = p.on_round(nullptr, coins);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload::of_bit(Bit::One));
  EXPECT_FALSE(p.decided());
}

struct ThresholdCase {
  std::uint32_t ones;
  std::uint32_t zeros;
  Bit expect_b;
  bool expect_decided;
  bool expect_coin;  // b comes from the tape
};

class SynRanThresholdTable
    : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(SynRanThresholdTable, MatchesPaperRules) {
  const auto c = GetParam();
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins0;
  (void)p.on_round(nullptr, coins0);  // round 1

  std::vector<bool> tape;
  if (c.expect_coin) tape.push_back(c.expect_b == Bit::One);
  const auto out = step(p, bit_receipt(c.ones, c.zeros), tape);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload::of_bit(c.expect_b));
  EXPECT_EQ(p.decided(), c.expect_decided);
  EXPECT_EQ(p.view().flipped_coin, c.expect_coin);
}

// With N^{r-1} = 100: decide-1 above 70, propose-1 above 60, Z=0 ⇒ 1,
// decide-0 below 40, propose-0 below 50, coin otherwise.
INSTANTIATE_TEST_SUITE_P(
    PaperRules, SynRanThresholdTable,
    ::testing::Values(
        ThresholdCase{71, 29, Bit::One, true, false},   // O > 7N/10
        ThresholdCase{70, 30, Bit::One, false, false},  // boundary: propose
        ThresholdCase{61, 39, Bit::One, false, false},  // O > 6N/10
        ThresholdCase{30, 0, Bit::One, false, false},   // Z = 0 rule
        ThresholdCase{39, 61, Bit::Zero, true, false},  // O < 4N/10
        ThresholdCase{40, 60, Bit::Zero, false, false}, // boundary: propose
        ThresholdCase{49, 51, Bit::Zero, false, false}, // O < 5N/10
        ThresholdCase{50, 50, Bit::Zero, false, true},  // coin (tape=0)
        ThresholdCase{55, 45, Bit::One, false, true},   // coin (tape=1)
        ThresholdCase{60, 40, Bit::One, false, true})); // boundary: coin

TEST(SynRanThresholds, ZRuleBeatsZeroSideThresholds) {
  // 30 ones / 0 zeros would decide 0 by count, but Z=0 forces 1.
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  const auto out = step(p, bit_receipt(30, 0));
  EXPECT_EQ(*out, payload::of_bit(Bit::One));
  EXPECT_FALSE(p.decided());
  // Control: one single zero message restores the 0-side decision.
  SynRanProcess q(0, kN, Bit::Zero, {});
  TapeCoinSource coins2;
  (void)q.on_round(nullptr, coins2);
  const auto out2 = step(q, bit_receipt(30, 1));
  EXPECT_EQ(*out2, payload::of_bit(Bit::Zero));
  EXPECT_TRUE(q.decided());
}

TEST(SynRanThresholds, SymmetricAblationUsesCurrentCount) {
  // 20 ones / 5 zeros: the paper rule compares against N^{r-1}=100 and sees
  // an 0-side count; the symmetric ablation compares against N^r=25 and
  // decides 1 (20/25 > 7/10).
  SynRanOptions sym;
  sym.coin_rule = CoinRule::Symmetric;
  SynRanProcess p(0, kN, Bit::Zero, sym);
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  const auto out = step(p, bit_receipt(20, 5));
  EXPECT_EQ(*out, payload::of_bit(Bit::One));
  EXPECT_TRUE(p.decided());
}

TEST(SynRanThresholds, ThresholdsUsePreviousRoundCount) {
  // Round 2 thresholds must use N^1, not N^0. Feed N^1 = 80, then a round-2
  // receipt with 50 ones: against N^1=80 that is 10*50 > 6*80 ⇒ propose 1;
  // against N^0=100 it would have been a coin flip (and the empty tape
  // would throw), so a wrong reference count cannot pass silently.
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(44, 36), {});  // N^1=80, 440<500: propose 0
  EXPECT_EQ(p.estimate(), Bit::Zero);
  const auto out = step(p, bit_receipt(50, 25));
  EXPECT_EQ(*out, payload::of_bit(Bit::One));
  EXPECT_FALSE(p.decided());
}

// ------------------------------------------------------- SynRan stop rule

TEST(SynRanStopRule, StopsWhenCountsAreStable) {
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(71, 29));  // decide 1 at round 1
  ASSERT_TRUE(p.decided());
  // Round-2 receipt with no collapse: diff = N^{-1}−N^2 = 0 ≤ N^0/10 ⇒ STOP.
  const auto out = step(p, bit_receipt(70, 30));
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(p.halted());
  EXPECT_TRUE(p.decided());
  EXPECT_EQ(p.decision(), Bit::One);
}

TEST(SynRanStopRule, CollapseRescindsTheDecision) {
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(71, 29));  // decide 1
  ASSERT_TRUE(p.decided());
  // diff = 100 − 85 = 15 > N^0/10 = 10 ⇒ un-decide and keep going
  // (61 ones against N^1=100 then merely proposes 1).
  const auto out = step(p, bit_receipt(61, 24));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(p.halted());
  EXPECT_FALSE(p.decided());
}

TEST(SynRanStopRule, StopUsesTheShiftedWindow) {
  // Decide at round 3; the stop check at round 4 uses N^1−N^4 vs N^2/10.
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(55, 45), {true});   // N^1=100, coin -> 1
  (void)step(p, bit_receipt(55, 35), {true});   // N^2=90, coin -> 1
  (void)step(p, bit_receipt(71, 9));            // N^3=80: 710 > 7*90? 630 ✓
  ASSERT_TRUE(p.decided());
  // diff = N^1−N^4 = 100−80 = 20 > N^2/10 = 9 ⇒ rescind; the subsequent
  // threshold update on 50/80 only proposes (500 > 6*80=480), so decided
  // stays rescinded.
  (void)step(p, bit_receipt(50, 30));
  EXPECT_FALSE(p.decided());
}

// --------------------------------------------------- SynRan hand-off stage

TEST(SynRanDeterministicStage, HandoffBelowThreshold) {
  // threshold = √(100/ln 100) ≈ 4.66: a 4-message round triggers hand-off.
  SynRanProcess p(0, kN, Bit::One, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  const auto out = step(p, bit_receipt(4, 0));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(*out & payload::kDeterministicFlag);
  EXPECT_TRUE(p.in_deterministic_stage());
  EXPECT_FALSE(p.decided());
}

TEST(SynRanDeterministicStage, FloodsAndDecidesMin) {
  SynRanProcess p(0, kN, Bit::One, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(4, 0));  // hand-off
  // Hand-off receipt: sees a 0 somewhere.
  auto out = step(p, bit_receipt(3, 1));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(*out & payload::kSupports0);  // the 0 entered the flood set
  // Flood until the stage ends; only 1s arrive now but the 0 persists.
  const auto det_rounds = theory::deterministic_stage_rounds(kN) + 1;
  for (std::uint32_t i = 0; i < det_rounds + 2 && out.has_value(); ++i)
    out = step(p, bit_receipt(3, 0));
  EXPECT_FALSE(out.has_value()) << "deterministic stage must terminate";
  EXPECT_TRUE(p.decided());
  EXPECT_TRUE(p.halted());
  EXPECT_EQ(p.decision(), Bit::Zero);  // min of {0,1}
}

TEST(SynRanDeterministicStage, DisabledByOption) {
  SynRanOptions opts;
  opts.det_handoff = false;
  SynRanProcess p(0, kN, Bit::One, opts);
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  const auto out = step(p, bit_receipt(2, 1));  // tiny count, but no handoff
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(*out & payload::kDeterministicFlag);
  EXPECT_FALSE(p.in_deterministic_stage());
}

// ------------------------------------------------------ SynRan bookkeeping

TEST(SynRanProcessTest, CloneIsDeepAndDigestTracksState) {
  SynRanProcess p(0, kN, Bit::One, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  auto c = p.clone();
  EXPECT_EQ(p.state_digest(), c->state_digest());
  (void)step(p, bit_receipt(71, 29));
  EXPECT_NE(p.state_digest(), c->state_digest());
  EXPECT_FALSE(c->decided());
  EXPECT_TRUE(p.decided());
}

TEST(SynRanProcessTest, HaltedProcessRejectsFurtherRounds) {
  SynRanProcess p(0, kN, Bit::Zero, {});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  (void)step(p, bit_receipt(71, 29));
  (void)step(p, bit_receipt(71, 29));  // STOP
  ASSERT_TRUE(p.halted());
  Receipt r = bit_receipt(1, 1);
  TapeCoinSource more;
  EXPECT_THROW(p.on_round(&r, more), InvariantError);
}

TEST(SynRanProcessTest, RequiresAtLeastOneProcess) {
  EXPECT_THROW(SynRanProcess(0, 0, Bit::Zero, {}), ArgumentError);
}

// --------------------------------------------------- SynRan via the engine

TEST(SynRanEngine, UnanimousOneDecidesInOneRound) {
  SynRanFactory factory;
  NoAdversary adv;
  const auto res =
      run_once(factory, std::vector<Bit>(32, Bit::One), adv, {});
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_EQ(res.rounds_to_decision, 1u);
}

TEST(SynRanEngine, UnanimousZeroDecidesInOneRound) {
  SynRanFactory factory;
  NoAdversary adv;
  const auto res =
      run_once(factory, std::vector<Bit>(32, Bit::Zero), adv, {});
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
  EXPECT_EQ(res.rounds_to_decision, 1u);
}

TEST(SynRanEngine, MixedInputsTerminateQuicklyWithoutAdversary) {
  SynRanFactory factory;
  NoAdversary adv;
  std::vector<Bit> inputs(64, Bit::Zero);
  for (std::size_t i = 0; i < 32; ++i) inputs[i] = Bit::One;
  EngineOptions opts;
  opts.max_rounds = 1000;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    opts.seed = seed;
    const auto res = run_once(factory, inputs, adv, opts);
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
    EXPECT_LE(res.rounds_to_decision, 30u) << "seed " << seed;
  }
}

TEST(SynRanEngine, SingleProcessDecidesItsInput) {
  SynRanFactory factory;
  NoAdversary adv;
  const auto res = run_once(factory, {Bit::One}, adv, {});
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.decision, Bit::One);
}

// ---------------------------------------------------------------- FloodMin

TEST(FloodMinTest, TakesExactlyTPlusOneRounds) {
  for (std::uint32_t t : {0u, 1u, 3u, 7u}) {
    FloodMinFactory factory({t, false});
    NoAdversary adv;
    std::vector<Bit> inputs(10, Bit::One);
    inputs[3] = Bit::Zero;
    const auto res = run_once(factory, inputs, adv, {});
    EXPECT_TRUE(res.terminated);
    EXPECT_EQ(res.rounds_to_decision, t + 1) << "t=" << t;
    EXPECT_EQ(res.decision, Bit::Zero);  // min value wins
  }
}

TEST(FloodMinTest, AllOnesDecideOne) {
  FloodMinFactory factory({2, false});
  NoAdversary adv;
  const auto res = run_once(factory, std::vector<Bit>(6, Bit::One), adv, {});
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_TRUE(res.agreement);
}

TEST(FloodMinTest, EarlyDecidingStopsAtFPlus2WithoutFailures) {
  FloodMinFactory factory({5, true});
  NoAdversary adv;
  std::vector<Bit> inputs(8, Bit::One);
  inputs[0] = Bit::Zero;
  const auto res = run_once(factory, inputs, adv, {});
  EXPECT_TRUE(res.terminated);
  // Decision is fixed at the first clean round (round 2, since rounds 1 and
  // 2 deliver identical counts), though flooding continues to t+1 = 6.
  EXPECT_EQ(res.rounds_to_halt, 6u);
  EXPECT_EQ(res.decision, Bit::Zero);
}

TEST(FloodMinTest, EarlyDecidingRecordsDecisionRound) {
  FloodMinProcess p(0, 4, Bit::One, {3, true});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  Receipt r1 = bit_receipt(3, 1);
  (void)p.on_round(&r1, coins);  // first receipt: nothing to compare yet
  EXPECT_FALSE(p.decided());
  Receipt r2 = bit_receipt(3, 1);
  (void)p.on_round(&r2, coins);  // same count: clean round
  EXPECT_TRUE(p.decided());
  EXPECT_EQ(p.decision_round(), 2u);
  EXPECT_EQ(p.decision(), Bit::Zero);
}

TEST(FloodMinTest, DirtyRoundsDelayEarlyDecision) {
  FloodMinProcess p(0, 6, Bit::One, {4, true});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  Receipt r1 = bit_receipt(6, 0);
  (void)p.on_round(&r1, coins);
  Receipt r2 = bit_receipt(5, 0);  // count dropped: not clean
  (void)p.on_round(&r2, coins);
  EXPECT_FALSE(p.decided());
  Receipt r3 = bit_receipt(5, 0);  // clean now
  (void)p.on_round(&r3, coins);
  EXPECT_TRUE(p.decided());
  EXPECT_EQ(p.decision_round(), 3u);
}

TEST(FloodMinTest, RejectsTNotBelowN) {
  EXPECT_THROW(FloodMinProcess(0, 3, Bit::Zero, {3, false}), ArgumentError);
}

TEST(FloodMinTest, CloneIsIndependent) {
  FloodMinProcess p(0, 4, Bit::One, {2, false});
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  auto c = p.clone();
  EXPECT_EQ(p.state_digest(), c->state_digest());
  Receipt r = bit_receipt(2, 2);
  (void)p.on_round(&r, coins);
  EXPECT_NE(p.state_digest(), c->state_digest());
}

}  // namespace
}  // namespace synran

namespace synran {
namespace {

// ---------------------------------------- symmetric-mode threshold table

struct SymCase {
  std::uint32_t ones;
  std::uint32_t zeros;
  Bit expect_b;
  bool expect_decided;
  bool expect_coin;
};

class SymmetricThresholdTable : public ::testing::TestWithParam<SymCase> {};

TEST_P(SymmetricThresholdTable, MatchesBenOrStyleRules) {
  const auto c = GetParam();
  SynRanOptions o;
  o.coin_rule = CoinRule::Symmetric;
  SynRanProcess p(0, kN, Bit::Zero, o);
  TapeCoinSource coins0;
  (void)p.on_round(nullptr, coins0);

  std::vector<bool> tape;
  if (c.expect_coin) tape.push_back(c.expect_b == Bit::One);
  const auto out = step(p, bit_receipt(c.ones, c.zeros), tape);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload::of_bit(c.expect_b));
  EXPECT_EQ(p.decided(), c.expect_decided);
  EXPECT_EQ(p.view().flipped_coin, c.expect_coin);
}

// Symmetric mode compares against the CURRENT round's count (here 100):
// decide-1 above 7/10, propose-1 above 6/10, decide-0 below 3/10,
// propose-0 below 4/10, coin between.
INSTANTIATE_TEST_SUITE_P(
    BenOrStyle, SymmetricThresholdTable,
    ::testing::Values(SymCase{71, 29, Bit::One, true, false},
                      SymCase{70, 30, Bit::One, false, false},
                      SymCase{61, 39, Bit::One, false, false},
                      SymCase{60, 40, Bit::One, false, true},
                      SymCase{50, 50, Bit::Zero, false, true},
                      SymCase{40, 60, Bit::Zero, false, true},
                      SymCase{39, 61, Bit::Zero, false, false},
                      SymCase{30, 70, Bit::Zero, false, false},
                      SymCase{29, 71, Bit::Zero, true, false}));

// ------------------------------------------------ threshold-margin guard

TEST(SynRanOptionsTest, InvalidMarginCombinationsAreRejected) {
  SynRanOptions o;
  o.decide_one_num = 6;  // must exceed propose_one_num (6)
  EXPECT_FALSE(o.margins_valid());
  EXPECT_THROW(SynRanProcess(0, 8, Bit::Zero, o), ArgumentError);

  SynRanOptions o2;
  o2.propose_zero_num = 4;
  o2.decide_zero_num = 4;  // propose must exceed decide
  EXPECT_FALSE(o2.margins_valid());
  EXPECT_THROW(SynRanProcess(0, 8, Bit::Zero, o2), ArgumentError);

  SynRanOptions o3;
  o3.decide_one_num = 11;  // numerator over the denominator
  EXPECT_FALSE(o3.margins_valid());
}

TEST(SynRanOptionsTest, CustomMarginsShiftTheWindow) {
  SynRanOptions o;
  o.decide_one_num = 8;
  o.propose_one_num = 7;
  o.propose_zero_num = 4;
  o.decide_zero_num = 3;
  ASSERT_TRUE(o.margins_valid());
  SynRanProcess p(0, kN, Bit::Zero, o);
  TapeCoinSource coins;
  (void)p.on_round(nullptr, coins);
  // 65 ones: under the paper's margins this proposes 1; with the widened
  // window it lands in coin territory.
  const auto out = step(p, bit_receipt(65, 35), {false});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload::of_bit(Bit::Zero));
  EXPECT_TRUE(p.view().flipped_coin);
}

// ---------------------------------------------- SynRan/engine edge cases

TEST(SynRanEngine, TwoProcessesAgreeUnderEveryInputPair) {
  SynRanFactory factory;
  NoAdversary none;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EngineOptions opts;
      opts.seed = 17 + a * 2 + b;
      opts.max_rounds = 2000;
      const auto res = run_once(
          factory, {a ? Bit::One : Bit::Zero, b ? Bit::One : Bit::Zero},
          none, opts);
      ASSERT_TRUE(res.terminated) << a << b;
      EXPECT_TRUE(res.agreement) << a << b;
      if (a == b) {
        EXPECT_EQ(res.decision, a ? Bit::One : Bit::Zero);
      }
    }
  }
}

TEST(SynRanEngine, SymmetricVariantSafeWithoutAdversary) {
  SynRanOptions o;
  o.coin_rule = CoinRule::Symmetric;
  SynRanFactory factory(o);
  NoAdversary none;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EngineOptions opts;
    opts.seed = seed;
    opts.max_rounds = 5000;
    std::vector<Bit> inputs(20, Bit::Zero);
    for (int i = 0; i < 10; ++i) inputs[i] = Bit::One;
    const auto res = run_once(factory, inputs, none, opts);
    ASSERT_TRUE(res.terminated) << seed;
    EXPECT_TRUE(res.agreement) << seed;
  }
}

}  // namespace
}  // namespace synran
