// Tests for the adversary implementations: schedule adherence, budget
// discipline, and the qualitative effects each strategy exists to produce.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/valency.hpp"
#include "analysis/theory.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

std::vector<Bit> half_inputs(std::uint32_t n) {
  std::vector<Bit> inputs(n, Bit::Zero);
  for (std::uint32_t i = n / 2; i < n; ++i) inputs[i] = Bit::One;
  return inputs;
}

// ------------------------------------------------------------------ static

TEST(StaticCrashTest, ExecutesScheduleExactly) {
  StaticCrashAdversary adv({{1, 0, {}}, {2, 1, {2}}});
  FloodMinFactory factory({2, false});
  EngineOptions opts;
  opts.t_budget = 2;
  const auto res = run_once(factory, half_inputs(4), adv, opts);
  EXPECT_EQ(res.crashes_total, 2u);
  EXPECT_TRUE(res.crashed[0]);
  EXPECT_TRUE(res.crashed[1]);
  EXPECT_FALSE(res.crashed[2]);
  ASSERT_GE(res.crashes_per_round.size(), 2u);
  EXPECT_EQ(res.crashes_per_round[0], 1u);
  EXPECT_EQ(res.crashes_per_round[1], 1u);
}

TEST(StaticCrashTest, SkipsDeadAndRespectsBudget) {
  // Same victim scheduled twice, plus an entry beyond the budget.
  StaticCrashAdversary adv({{1, 0, {}}, {2, 0, {}}, {2, 1, {}}, {2, 2, {}}});
  FloodMinFactory factory({3, false});
  EngineOptions opts;
  opts.t_budget = 2;
  const auto res = run_once(factory, half_inputs(4), adv, opts);
  EXPECT_EQ(res.crashes_total, 2u);  // dead victim skipped, budget capped
}

TEST(StaticCrashTest, RejectsOutOfRangeRecipients) {
  StaticCrashAdversary adv({{1, 0, {9}}});
  FloodMinFactory factory({1, false});
  EngineOptions opts;
  opts.t_budget = 1;
  EXPECT_THROW(run_once(factory, half_inputs(4), adv, opts), ArgumentError);
}

// ------------------------------------------------------------------ random

TEST(RandomCrashTest, NeverExceedsBudgetAndKeepsProtocolSafe) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCrashAdversary adv({3, 0.8, seed});
    SynRanFactory factory;
    EngineOptions opts;
    opts.t_budget = 10;
    opts.seed = seed;
    opts.max_rounds = 5000;
    const auto res = run_once(factory, half_inputs(24), adv, opts);
    EXPECT_LE(res.crashes_total, 10u);
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
  }
}

TEST(RandomCrashTest, SeededReproducibility) {
  RandomCrashAdversary a1({2, 0.5, 77});
  RandomCrashAdversary a2({2, 0.5, 77});
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = 8;
  opts.seed = 3;
  const auto r1 = run_once(factory, half_inputs(16), a1, opts);
  const auto r2 = run_once(factory, half_inputs(16), a2, opts);
  EXPECT_EQ(r1.crashes_total, r2.crashes_total);
  EXPECT_EQ(r1.rounds_to_halt, r2.rounds_to_halt);
  EXPECT_EQ(r1.decision, r2.decision);
}

// ------------------------------------------------------------------- chain

TEST(ChainHidingTest, ForcesFloodMinThroughFullSchedule) {
  // n = 8, t = 5, exactly one 0 input: the chain hides the 0 for t rounds.
  const std::uint32_t n = 8, t = 5;
  std::vector<Bit> inputs(n, Bit::One);
  inputs[2] = Bit::Zero;

  ChainHidingAdversary adv;
  FloodMinFactory factory({t, false});
  EngineOptions opts;
  opts.t_budget = t;
  const auto res = run_once(factory, inputs, adv, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.crashes_total, t);
  // One crash per round, every round of the schedule.
  for (std::uint32_t r = 0; r < t; ++r)
    EXPECT_EQ(res.crashes_per_round[r], 1u) << "round " << r + 1;
  // The hidden 0 must still win: it reaches the last holder in round t and
  // is flooded in round t+1.
  EXPECT_EQ(res.decision, Bit::Zero);
}

TEST(ChainHidingTest, DelaysEarlyDecider) {
  const std::uint32_t n = 8, t = 5;
  std::vector<Bit> inputs(n, Bit::One);
  inputs[0] = Bit::Zero;

  // Without an adversary the early decider fixes its decision at round 2.
  FloodMinFactory factory({t, true});
  NoAdversary none;
  const auto fast = run_once(factory, inputs, none, {});
  EXPECT_EQ(fast.rounds_to_decision, 2u);

  // Under the chain, each round looks dirty, so the early rule cannot fire
  // before the chain runs out of budget.
  ChainHidingAdversary adv;
  EngineOptions opts;
  opts.t_budget = t;
  const auto slow = run_once(factory, inputs, adv, opts);
  EXPECT_TRUE(slow.agreement);
  EXPECT_GE(slow.rounds_to_decision, t);
}

TEST(ChainHidingTest, IdlesWithoutAUniqueHolder) {
  ChainHidingAdversary adv;
  FloodMinFactory factory({2, false});
  EngineOptions opts;
  opts.t_budget = 2;
  // Two zeros: no unique holder, the adversary must do nothing.
  std::vector<Bit> inputs{Bit::Zero, Bit::Zero, Bit::One, Bit::One};
  const auto res = run_once(factory, inputs, adv, opts);
  EXPECT_EQ(res.crashes_total, 0u);
}

// ---------------------------------------------------------------- coinbias

TEST(CoinBiasTest, RespectsPerRoundCapAndBudget) {
  const std::uint32_t n = 64;
  CoinBiasAdversary adv;
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = n / 2;
  opts.per_round_cap = static_cast<std::uint32_t>(theory::per_round_budget(n));
  opts.max_rounds = 20000;
  const auto res = run_once(factory, half_inputs(n), adv, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_LE(res.crashes_total, n / 2);
  for (auto c : res.crashes_per_round) EXPECT_LE(c, opts.per_round_cap);
}

TEST(CoinBiasTest, PreservesSafetyAcrossSeeds) {
  const std::uint32_t n = 48;
  SynRanFactory factory;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    CoinBiasAdversary adv({0.55, true, seed});
    EngineOptions opts;
    opts.t_budget = n - 1;
    opts.seed = seed * 31;
    opts.max_rounds = 50000;
    const auto res = run_once(factory, half_inputs(n), adv, opts);
    EXPECT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
  }
}

TEST(CoinBiasTest, DelaysSynRanBeyondAdversaryFreeBaseline) {
  const std::uint32_t n = 256;
  SynRanFactory factory;

  RepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Half;
  spec.reps = 30;
  spec.seed = 5;
  spec.engine.max_rounds = 100000;

  const auto baseline =
      run_repeated(factory, no_adversary_factory(), spec);

  RepeatSpec adv_spec = spec;
  adv_spec.engine.t_budget = n - 1;
  const auto attacked = run_repeated(
      factory,
      [](std::uint64_t seed) {
        return std::make_unique<CoinBiasAdversary>(
            CoinBiasOptions{0.55, true, seed});
      },
      adv_spec);

  ASSERT_TRUE(baseline.all_safe());
  ASSERT_TRUE(attacked.all_safe());
  EXPECT_GT(attacked.rounds_to_decision().mean(),
            baseline.rounds_to_decision().mean() + 2.0);
}

TEST(CoinBiasTest, RejectsBadTargetRatio) {
  CoinBiasAdversary adv({0.7, true, 1});
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = 4;
  EXPECT_THROW(run_once(factory, half_inputs(8), adv, opts), ArgumentError);
}

// ---------------------------------------------------------- valency (MC)

TEST(ValencySamplingTest, SafeAndBudgetDisciplined) {
  const std::uint32_t n = 16;
  ValencySamplingOptions vopts;
  vopts.rollouts = 6;
  ValencySamplingAdversary adv(vopts);
  SynRanFactory factory;
  EngineOptions opts;
  opts.t_budget = 8;
  opts.per_round_cap = 4;
  opts.max_rounds = 5000;
  const auto res = run_once(factory, half_inputs(n), adv, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_LE(res.crashes_total, 8u);
  for (auto c : res.crashes_per_round) EXPECT_LE(c, 4u);
}

}  // namespace
}  // namespace synran
