// Fixture checker: knows both emitted fields.
void check(const Doc& doc) {
  doc.find("event");
  doc.find("known_field");
}
