// Fixture: every emitted field is known to the checker — a clean pass.
void emit(Ev& ev) {
  ev.set("event", "run_begin").set("known_field", JsonValue(1));
}
