// Fixture: every kTrace2* wire constant is referenced by the checker — a
// clean pass.
#pragma once

inline constexpr int kTrace2Version = 2;
inline constexpr int kTrace2KindRound = 0x02;
