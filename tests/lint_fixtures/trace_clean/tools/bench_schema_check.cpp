// Fixture checker: its decoder references both wire constants.
void check(const Bytes& data) {
  require(data.version == kTrace2Version);
  require(data.kind == kTrace2KindRound);
}
