// Fixture: the bottom layer reaching up into sim — a layer inversion.
#pragma once
#include "sim/engine.hpp"
