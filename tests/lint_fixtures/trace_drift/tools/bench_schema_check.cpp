// Fixture checker: knows kTrace2Version only.
void check(const Bytes& data) { require(data.version == kTrace2Version); }
