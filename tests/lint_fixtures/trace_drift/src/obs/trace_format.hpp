// Fixture: kTrace2KindDrifted is defined here but the checker below never
// references it — the schema-literals rule must flag the definition line.
#pragma once

inline constexpr int kTrace2Version = 2;
inline constexpr int kTrace2KindDrifted = 0x05;
