// Fixture: exec sits above sim/obs/analysis and may include them all.
#pragma once
#include "analysis/stats.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
