// Fixture: sim may include net and obs — downward edges, all legal.
#pragma once
#include "net/types.hpp"
#include "obs/observer.hpp"
