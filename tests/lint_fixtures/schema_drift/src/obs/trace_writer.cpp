// Fixture: the writer emits "drifted_field", which the checker below has
// never heard of — the schema-literals rule must flag the writer line.
void emit(Ev& ev) {
  ev.set("event", "run_begin").set("drifted_field", JsonValue(1));
}
