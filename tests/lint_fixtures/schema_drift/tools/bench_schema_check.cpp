// Fixture checker: knows "event" only.
void check(const Doc& doc) { doc.find("event"); }
