// Lexer fixture: every banned token below is inside a comment, a string,
// or a raw string — except one real std::mt19937 on the flagged line.
/* block comment:
   std::random_device hidden; assert( hidden; #include <thread> hidden
*/
const char* s1 = "std::mt19937 inside a plain string";
const char* s2 = R"delim(
std::chrono::steady_clock::now() inside a raw string, with )" embedded
)delim";
// a line-spliced comment swallows the next physical line too \
std::thread hidden_by_splice;
int separators = 1'000'000;
std::mt19937 the_one_real_offender;
