// Fixture: second half of the alpha <-> beta include cycle.
#pragma once
#include "alpha/alpha.hpp"
inline int beta() { return alpha() - 1; }
