// Fixture: alpha and beta include each other — an unlayerable cycle.
#pragma once
#include "beta/beta.hpp"
inline int alpha() { return beta() + 1; }
