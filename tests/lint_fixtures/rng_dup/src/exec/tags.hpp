// Fixture: claims the tag 0x7441 ("tA") for the executor.
#pragma once
inline constexpr unsigned long long kTagAStreamBase = 0x7441ULL;
