// Fixture: a literal stream tag colliding with kTagAStreamBase.
void derive() { seeds.stream(0x7441ULL + rep); }
