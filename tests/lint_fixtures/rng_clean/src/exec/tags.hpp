// Fixture: two stream-tag constants with distinct values — no collision.
#pragma once
inline constexpr unsigned long long kTagAStreamBase = 0x7441ULL;
inline constexpr unsigned long long kTagBStreamBase = 0x7442ULL;
