// Tests for the trace recorder and the §3.1 model-invariant checker, plus
// trace-driven property tests across protocols and adversaries.
#include <gtest/gtest.h>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace synran {
namespace {

Trace record_run(const ProcessFactory& factory, Adversary& inner,
                 std::uint32_t n, std::uint32_t t, std::uint64_t seed,
                 InputPattern pattern = InputPattern::Half) {
  TracingAdversary tracer(inner);
  EngineOptions opts;
  opts.t_budget = t;
  opts.seed = seed;
  opts.max_rounds = 50000;
  Xoshiro256 rng(seed);
  const auto inputs = make_inputs(n, pattern, rng);
  const auto res = run_once(factory, inputs, tracer, opts);
  EXPECT_TRUE(res.terminated);
  return tracer.trace();
}

TEST(TraceTest, RecordsBasicShape) {
  SynRanFactory factory;
  NoAdversary none;
  const Trace tr = record_run(factory, none, 16, 0, 1);
  ASSERT_FALSE(tr.rounds.empty());
  EXPECT_EQ(tr.n, 16u);
  EXPECT_EQ(tr.rounds.front().round, 1u);
  EXPECT_EQ(tr.rounds.front().alive, 16u);
  EXPECT_EQ(tr.rounds.front().senders, 16u);
  EXPECT_EQ(tr.total_crashes(), 0u);
}

TEST(TraceTest, CountsCrashesAndComposition) {
  SynRanFactory factory;
  StaticCrashAdversary adv({{1, 0, {}}, {2, 1, {}}});
  const Trace tr = record_run(factory, adv, 12, 2, 3);
  EXPECT_EQ(tr.total_crashes(), 2u);
  EXPECT_EQ(tr.max_crashes_per_round(), 1u);
  // Half-pattern round 1: six 1-payloads, six 0-payloads.
  EXPECT_EQ(tr.rounds.front().ones, 6u);
  EXPECT_EQ(tr.rounds.front().zeros, 6u);
}

TEST(TraceInvariantsTest, CleanRunsPass) {
  SynRanFactory synran;
  FloodMinFactory flood({4, false});
  NoAdversary none;
  for (const ProcessFactory* f :
       {static_cast<const ProcessFactory*>(&synran),
        static_cast<const ProcessFactory*>(&flood)}) {
    const Trace tr = record_run(*f, none, 10, 0, 7);
    const auto report = check_model_invariants(tr);
    EXPECT_TRUE(report.ok)
        << (report.violations.empty() ? "" : report.violations.front());
  }
}

TEST(TraceInvariantsTest, HoldAcrossAdversariesAndSeeds) {
  SynRanFactory factory;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    {
      RandomCrashAdversary adv({2, 0.7, seed});
      const Trace tr = record_run(factory, adv, 24, 12, seed);
      const auto report = check_model_invariants(tr);
      EXPECT_TRUE(report.ok)
          << "random seed " << seed << ": "
          << (report.violations.empty() ? "" : report.violations.front());
    }
    {
      CoinBiasAdversary adv({0.55, true, seed});
      const Trace tr = record_run(factory, adv, 24, 23, seed);
      const auto report = check_model_invariants(tr);
      EXPECT_TRUE(report.ok)
          << "coinbias seed " << seed << ": "
          << (report.violations.empty() ? "" : report.violations.front());
    }
  }
}

TEST(TraceInvariantsTest, DetectsCorruptedTraces) {
  SynRanFactory factory;
  NoAdversary none;
  Trace tr = record_run(factory, none, 8, 0, 1);
  ASSERT_GE(tr.rounds.size(), 2u);

  {
    Trace bad = tr;
    bad.rounds[1].alive = bad.rounds[0].alive + 1;  // resurrection
    EXPECT_FALSE(check_model_invariants(bad).ok);
  }
  {
    Trace bad = tr;
    bad.rounds[1].halted = 0;
    bad.rounds[0].halted = 5;  // halted shrank
    EXPECT_FALSE(check_model_invariants(bad).ok);
  }
  {
    Trace bad = tr;
    bad.rounds[0].crashes = bad.t_budget + 1;  // over budget
    EXPECT_FALSE(check_model_invariants(bad).ok);
  }
  {
    Trace bad = tr;
    bad.rounds[0].senders = bad.rounds[0].alive + 3;  // ghost senders
    EXPECT_FALSE(check_model_invariants(bad).ok);
  }
}

TEST(TraceTest, SynRanTrafficCompositionIsConsistent) {
  // In every recorded round, ones + zeros must equal senders as long as no
  // process is in the deterministic stage (each probabilistic payload
  // carries exactly one value bit).
  SynRanFactory factory;
  CoinBiasAdversary adv({0.55, true, 11});
  const Trace tr = record_run(factory, adv, 32, 16, 13);
  for (const auto& r : tr.rounds) {
    if (r.deterministic > 0) continue;
    EXPECT_EQ(r.ones + r.zeros, r.senders) << "round " << r.round;
  }
}

TEST(TraceTest, StallKeepsCollapsingCounts) {
  // Against all-1 inputs with the stall rule on, the adversary must keep
  // the sender count collapsing (Lemma 4.1's 10% rule) — visible as a
  // strictly decreasing sender sequence while budget remains.
  SynRanFactory factory;
  CoinBiasAdversary adv({0.55, true, 5});
  const Trace tr =
      record_run(factory, adv, 40, 39, 9, InputPattern::AllOne);
  ASSERT_GE(tr.rounds.size(), 3u);
  EXPECT_GT(tr.total_crashes(), 0u);
  bool decreased = false;
  for (std::size_t i = 1; i < tr.rounds.size(); ++i)
    if (tr.rounds[i].senders < tr.rounds[i - 1].senders) decreased = true;
  EXPECT_TRUE(decreased);
}

}  // namespace
}  // namespace synran
