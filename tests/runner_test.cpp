// Tests for the experiment harness: input patterns, repetition accounting,
// and seed discipline.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran {
namespace {

TEST(MakeInputsTest, PatternsHaveTheRightComposition) {
  Xoshiro256 rng(1);
  const auto all0 = make_inputs(9, InputPattern::AllZero, rng);
  EXPECT_EQ(std::count(all0.begin(), all0.end(), Bit::One), 0);

  const auto all1 = make_inputs(9, InputPattern::AllOne, rng);
  EXPECT_EQ(std::count(all1.begin(), all1.end(), Bit::One), 9);

  const auto half = make_inputs(9, InputPattern::Half, rng);
  EXPECT_EQ(std::count(half.begin(), half.end(), Bit::One), 5);
  EXPECT_EQ(half[0], Bit::Zero);
  EXPECT_EQ(half[8], Bit::One);

  const auto single = make_inputs(9, InputPattern::SingleZero, rng);
  EXPECT_EQ(std::count(single.begin(), single.end(), Bit::Zero), 1);
}

TEST(MakeInputsTest, RandomIsSeedDriven) {
  Xoshiro256 a(7), b(7), c(8);
  const auto x = make_inputs(64, InputPattern::Random, a);
  const auto y = make_inputs(64, InputPattern::Random, b);
  const auto z = make_inputs(64, InputPattern::Random, c);
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
}

TEST(MakeInputsTest, RejectsZeroProcesses) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_inputs(0, InputPattern::AllZero, rng), ArgumentError);
}

TEST(PatternNamesTest, AllNamed) {
  EXPECT_STREQ(to_string(InputPattern::AllZero), "all-0");
  EXPECT_STREQ(to_string(InputPattern::AllOne), "all-1");
  EXPECT_STREQ(to_string(InputPattern::Half), "half");
  EXPECT_STREQ(to_string(InputPattern::Random), "random");
  EXPECT_STREQ(to_string(InputPattern::SingleZero), "single-0");
}

TEST(RunRepeatedTest, AccountsEveryRepetition) {
  FloodMinFactory factory({2, false});
  RepeatSpec spec;
  spec.n = 6;
  spec.pattern = InputPattern::Half;
  spec.reps = 25;
  spec.seed = 3;
  const auto stats = run_repeated(factory, no_adversary_factory(), spec);
  EXPECT_EQ(stats.reps(), 25u);
  EXPECT_TRUE(stats.all_safe());
  EXPECT_EQ(stats.rounds_to_decision().count(), 25u);
  // FloodMin is deterministic: every rep takes exactly t+1 = 3 rounds.
  EXPECT_DOUBLE_EQ(stats.rounds_to_decision().mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.rounds_to_decision().stddev(), 0.0);
  // Half-pattern inputs always contain a 0: FloodMin decides 0 every time.
  EXPECT_EQ(stats.decided_one(), 0u);
}

TEST(RunRepeatedTest, MasterSeedReproducesBatches) {
  SynRanFactory factory;
  RepeatSpec spec;
  spec.n = 16;
  spec.pattern = InputPattern::Random;
  spec.reps = 10;
  spec.seed = 42;
  const auto a = run_repeated(factory, no_adversary_factory(), spec);
  const auto b = run_repeated(factory, no_adversary_factory(), spec);
  EXPECT_DOUBLE_EQ(a.rounds_to_decision().mean(), b.rounds_to_decision().mean());
  EXPECT_EQ(a.decided_one(), b.decided_one());
  spec.seed = 43;
  const auto c = run_repeated(factory, no_adversary_factory(), spec);
  // Different master seed: different inputs and coins. (Means may
  // coincide; the decided-one counts across random inputs rarely do, but
  // guard loosely: at least one aggregate should differ.)
  const bool differs =
      a.decided_one() != c.decided_one() ||
      a.rounds_to_decision().mean() != c.rounds_to_decision().mean() ||
      a.rounds_to_halt().mean() != c.rounds_to_halt().mean();
  EXPECT_TRUE(differs);
}

TEST(RunRepeatedTest, RejectsZeroReps) {
  SynRanFactory factory;
  RepeatSpec spec;
  spec.n = 4;
  spec.reps = 0;
  EXPECT_THROW(run_repeated(factory, no_adversary_factory(), spec),
               ArgumentError);
}

}  // namespace
}  // namespace synran
