// Tests for the corrupted-value fault layer: auditor rejection of every
// malformed corruption plan, engine-side byzantine budget accounting, the
// ByzantineAdversary / AdaptiveCoinAttacker injectors, the additive
// (conditional) trace fields, and the validity-hardened flooding defense.
// Suite names start with Byz/Corrupt so CI's sanitizer job can pick them up
// with `ctest -R "^Byz|^Corrupt"`.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/basic.hpp"
#include "adversary/byzantine.hpp"
#include "common/check.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/kfloodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

std::vector<Bit> half_inputs(std::uint32_t n) {
  std::vector<Bit> inputs(n, Bit::Zero);
  for (std::uint32_t i = n / 2; i < n; ++i) inputs[i] = Bit::One;
  return inputs;
}

/// Adversary built from a lambda (mirrors the omission_test helper).
class LambdaAdversary final : public Adversary {
 public:
  explicit LambdaAdversary(std::function<FaultPlan(const WorldView&)> fn)
      : fn_(std::move(fn)) {}
  FaultPlan plan_round(const WorldView& w) override { return fn_(w); }
  const char* name() const override { return "lambda"; }

 private:
  std::function<FaultPlan(const WorldView&)> fn_;
};

std::string run_expecting_audit_error(Adversary& adv, EngineOptions opts,
                                      std::uint32_t n = 8) {
  SynRanFactory factory;
  try {
    run_once(factory, half_inputs(n), adv, opts);
  } catch (const InvariantError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an InvariantError";
  return {};
}

/// One directive forging the lowest-id sender's message as a 0-vouching
/// value for every other process, every round, whatever the budget says.
FaultPlan corrupt_first_sender(const WorldView& w) {
  FaultPlan plan;
  for (ProcessId p = 0; p < w.n(); ++p) {
    if (!w.sending(p)) continue;
    CorruptionDirective cd;
    cd.sender = p;
    for (ProcessId r = 0; r < w.n(); ++r) {
      if (r != p) cd.forgeries.push_back({r, payload::kSupports0});
    }
    plan.corruptions.push_back(std::move(cd));
    break;
  }
  return plan;
}

// ------------------------------------------------ auditor rejection classes

TEST(CorruptAudit, ForbiddenUnderFailStopDefault) {
  LambdaAdversary adv(corrupt_first_sender);
  EngineOptions opts;  // byzantine_budget stays 0
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("exceeding the byzantine budget 0"), std::string::npos)
      << what;
  EXPECT_NE(
      what.find("corrupted values are forbidden under the fail-stop model"),
      std::string::npos)
      << what;
}

TEST(CorruptAudit, GlobalBudgetIsEnforced) {
  // One directive per round against a budget of 2: round 3's plan must die.
  LambdaAdversary adv(corrupt_first_sender);
  EngineOptions opts;
  opts.byzantine_budget = 2;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("round 3"), std::string::npos) << what;
  EXPECT_NE(what.find("exceeding the byzantine budget 2"), std::string::npos)
      << what;
}

TEST(CorruptAudit, PerRoundCapIsEnforced) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    for (ProcessId s : {ProcessId{0}, ProcessId{1}}) {
      CorruptionDirective cd;
      cd.sender = s;
      cd.forgeries.push_back({static_cast<ProcessId>(w.n() - 1),
                              payload::kSupports0});
      plan.corruptions.push_back(std::move(cd));
    }
    return plan;
  });
  EngineOptions opts;
  opts.byzantine_budget = 10;
  opts.byzantine_round_cap = 1;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("per-round corruption cap is 1"), std::string::npos)
      << what;
}

TEST(CorruptAudit, CrashCorruptOverlapIsRejected) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    CorruptionDirective cd;
    cd.sender = 0;
    cd.forgeries.push_back({1, payload::kSupports0});
    plan.corruptions.push_back(std::move(cd));
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("both crashed and corrupted"), std::string::npos)
      << what;
}

TEST(CorruptAudit, OmitCorruptOverlapIsRejected) {
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.omissions.push_back({0, DynBitset(w.n())});
    CorruptionDirective cd;
    cd.sender = 0;
    cd.forgeries.push_back({1, payload::kSupports0});
    plan.corruptions.push_back(std::move(cd));
    return plan;
  });
  EngineOptions opts;
  opts.omission_budget = 10;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("both omitted and corrupted"), std::string::npos)
      << what;
}

TEST(CorruptAudit, DeadSenderCorruptionIsRejected) {
  // Crash 0 in round 1, then try to forge its (nonexistent) round-2 message.
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    if (w.round() == 1) plan.crashes.push_back({0, DynBitset(w.n())});
    if (w.round() == 2) {
      CorruptionDirective cd;
      cd.sender = 0;
      cd.forgeries.push_back({1, payload::kSupports0});
      plan.corruptions.push_back(std::move(cd));
    }
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("round 2"), std::string::npos) << what;
  EXPECT_NE(what.find("not sending this round"), std::string::npos) << what;
}

TEST(CorruptAudit, DuplicateCorruptionSenderIsRejected) {
  LambdaAdversary adv([](const WorldView&) {
    FaultPlan plan;
    for (int twice = 0; twice < 2; ++twice) {
      CorruptionDirective cd;
      cd.sender = 2;
      cd.forgeries.push_back({3, payload::kSupports1});
      plan.corruptions.push_back(std::move(cd));
    }
    return plan;
  });
  EngineOptions opts;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("appears twice in one fault plan"), std::string::npos)
      << what;
}

TEST(CorruptAudit, DuplicateForgeryTargetIsRejected) {
  LambdaAdversary adv([](const WorldView&) {
    FaultPlan plan;
    CorruptionDirective cd;
    cd.sender = 0;
    cd.forgeries.push_back({1, payload::kSupports0});
    cd.forgeries.push_back({1, payload::kSupports1});
    plan.corruptions.push_back(std::move(cd));
    return plan;
  });
  EngineOptions opts;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("appears twice in one directive"), std::string::npos)
      << what;
}

TEST(CorruptAudit, OutOfRangeForgeryTargetIsRejected) {
  LambdaAdversary adv([](const WorldView&) {
    FaultPlan plan;
    CorruptionDirective cd;
    cd.sender = 0;
    cd.forgeries.push_back({200, payload::kSupports0});
    plan.corruptions.push_back(std::move(cd));
    return plan;
  });
  EngineOptions opts;
  opts.byzantine_budget = 10;
  const std::string what = run_expecting_audit_error(adv, opts);
  EXPECT_NE(what.find("forgery target 200"), std::string::npos) << what;
  EXPECT_NE(what.find("is not a process"), std::string::npos) << what;
}

TEST(CorruptAudit, AuditedAdversaryTracksCorruptionSpend) {
  // The wrapper adopts the byzantine budget from the first WorldView and
  // must agree with the engine's arithmetic for the whole run.
  ByzantineAdversary byz({0.4, 0xc0ffee});
  AuditedAdversary audited(byz);
  SynRanFactory factory;
  EngineOptions opts;
  opts.byzantine_budget = 40;
  opts.seed = 5;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(16), audited, opts));
  EXPECT_EQ(audited.auditor().corruptions_so_far(), res.corruptions_total);
  EXPECT_LE(res.corruptions_total, 40u);
}

// ---------------------------------------------- equivocator injector behavior

TEST(ByzInjector, RespectsBudgetAndReportsSpend) {
  SynRanFactory factory;
  ByzantineAdversary byz({0.5, 42});
  EngineOptions opts;
  opts.byzantine_budget = 3;
  opts.seed = 9;
  const auto res = run_once(factory, half_inputs(16), byz, opts);
  EXPECT_LE(res.corruptions_total, 3u);
  EXPECT_EQ(byz.corruptions_spent(), res.corruptions_total);
}

TEST(ByzInjector, ForgesLinksUnderGenerousBudget) {
  SynRanFactory factory;
  ByzantineAdversary byz({0.5, 42});
  EngineOptions opts;
  opts.byzantine_budget = 1000000;
  opts.seed = 9;
  const auto res = run_once(factory, half_inputs(16), byz, opts);
  EXPECT_GT(res.corruptions_total, 0u);
  EXPECT_GT(res.messages_corrupted, 0u);
  // A directive forges one live sender's links to every other active
  // receiver, so the link count strictly dominates the directive count.
  EXPECT_GT(res.messages_corrupted, res.corruptions_total);
  EXPECT_EQ(byz.corruptions_spent(), res.corruptions_total);
}

TEST(ByzInjector, ZeroRateMatchesNoAdversary) {
  SynRanFactory factory;
  EngineOptions opts;
  opts.byzantine_budget = 1000;
  opts.seed = 11;
  NoAdversary none;
  const auto baseline = run_once(factory, half_inputs(12), none, opts);
  ByzantineAdversary calm({0.0, 42});
  const auto corrupted = run_once(factory, half_inputs(12), calm, opts);
  EXPECT_EQ(corrupted.corruptions_total, 0u);
  EXPECT_EQ(corrupted.messages_corrupted, 0u);
  EXPECT_EQ(corrupted.rounds_to_decision, baseline.rounds_to_decision);
  EXPECT_EQ(corrupted.rounds_to_halt, baseline.rounds_to_halt);
  EXPECT_EQ(corrupted.messages_delivered, baseline.messages_delivered);
}

TEST(ByzInjector, StandsDownWithoutBudget) {
  SynRanFactory factory;
  ByzantineAdversary byz({1.0, 42});
  EngineOptions opts;  // byzantine_budget 0: the injector must emit nothing
  opts.seed = 9;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(16), byz, opts));
  EXPECT_EQ(res.corruptions_total, 0u);
  EXPECT_EQ(byz.corruptions_spent(), 0u);
}

TEST(ByzInjector, RejectsCorruptRateOutsideUnitInterval) {
  ByzantineAdversary high({1.5, 42});
  EXPECT_THROW(high.begin(8, 0), ArgumentError);
  ByzantineAdversary negative({-0.1, 42});
  EXPECT_THROW(negative.begin(8, 0), ArgumentError);
}

TEST(ByzInjector, ComposesWithInnerCrashAdversary) {
  // The equivocator keeps the inner plan's directives and never overlaps
  // them, so the combined plan must pass the engine's auditor.
  SynRanFactory factory;
  ByzantineAdversary byz(
      {0.3, 7}, std::make_unique<RandomCrashAdversary>(
                    RandomCrashAdversary::Options{1, 0.6, 123}));
  EngineOptions opts;
  opts.t_budget = 2;
  opts.byzantine_budget = 500;
  opts.seed = 3;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(16), byz, opts));
  EXPECT_LE(res.crashes_total, 2u);
  EXPECT_LE(res.corruptions_total, 500u);
}

TEST(ByzDeterminism, BitIdenticalAtAnyThreadCount) {
  RepeatSpec spec;
  spec.n = 24;
  spec.pattern = InputPattern::Half;
  spec.reps = 10;
  spec.seed = 0x0b17;
  spec.engine.byzantine_budget = 100000;
  SynRanFactory factory;
  const AdversaryFactory byz = [](std::uint64_t s) {
    return std::make_unique<ByzantineAdversary>(ByzantineOptions{0.2, s});
  };
  spec.threads = 1;
  const std::string serial =
      run_repeated(factory, byz, spec).metrics().to_json().dump();
  const std::string serial_again =
      run_repeated(factory, byz, spec).metrics().to_json().dump();
  EXPECT_EQ(serial, serial_again);
  for (unsigned threads : {2u, 4u}) {
    spec.threads = threads;
    const std::string parallel =
        run_repeated(factory, byz, spec).metrics().to_json().dump();
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

// --------------------------------------------------- adaptive coin attacker

TEST(ByzCoinAttack, SpendMatchesEngineCounters) {
  SynRanFactory factory;
  AdaptiveCoinAttacker attack(CoinAttackOptions{Bit::One, 0.65, 21});
  EngineOptions opts;
  opts.byzantine_budget = 200;
  opts.seed = 17;
  opts.max_rounds = 50000;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(20), attack, opts));
  EXPECT_EQ(attack.corruptions_spent(), res.corruptions_total);
  EXPECT_LE(res.corruptions_total, 200u);
  EXPECT_GT(res.corruptions_total, 0u);
}

TEST(ByzCoinAttack, StandsDownWithoutBudget) {
  SynRanFactory factory;
  AdaptiveCoinAttacker attack(CoinAttackOptions{Bit::One, 0.65, 21});
  EngineOptions opts;  // byzantine_budget 0: the attacker must emit nothing
  opts.seed = 17;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, half_inputs(20), attack, opts));
  EXPECT_EQ(res.corruptions_total, 0u);
  EXPECT_EQ(attack.corruptions_spent(), 0u);
}

TEST(ByzCoinAttack, RejectsPushRatioOutsideHalfOneInterval) {
  AdaptiveCoinAttacker coin_toss(CoinAttackOptions{Bit::One, 0.5, 21});
  EXPECT_THROW(coin_toss.begin(8, 0), ArgumentError);
  AdaptiveCoinAttacker beyond(CoinAttackOptions{Bit::One, 1.1, 21});
  EXPECT_THROW(beyond.begin(8, 0), ArgumentError);
}

TEST(ByzCoinAttack, PushesTheDecidedShareTowardItsTarget) {
  // Balanced inputs, identical per-rep seeds: the attacked batch must decide
  // the attacker's target at least as often as the undisturbed baseline, and
  // strictly more often across these 40 repetitions.
  SynRanFactory factory;
  RepeatSpec spec;
  spec.n = 20;
  spec.pattern = InputPattern::Half;
  spec.reps = 40;
  spec.seed = 0xc0115eed;
  const AdversaryFactory none = [](std::uint64_t) {
    return std::make_unique<NoAdversary>();
  };
  const auto baseline = run_repeated(factory, none, spec);
  spec.engine.byzantine_budget = 1000000;
  const AdversaryFactory attack = [](std::uint64_t s) {
    return std::make_unique<AdaptiveCoinAttacker>(
        CoinAttackOptions{Bit::One, 0.8, s});
  };
  const auto attacked = run_repeated(factory, attack, spec);
  EXPECT_GT(attacked.decided_one(), baseline.decided_one());
  EXPECT_GT(attacked.corruptions_used().mean(), 0.0);
}

// -------------------------------------------------- conditional trace fields

TEST(CorruptTrace, FieldsEmittedOnlyUnderAByzantineBudget) {
  SynRanFactory factory;
  EngineOptions opts;
  opts.seed = 23;

  std::ostringstream plain;
  {
    obs::JsonlTraceWriter writer(plain);
    opts.observer = &writer;
    NoAdversary none;
    run_once(factory, half_inputs(10), none, opts);
  }
  // Fail-stop default: no corruption vocabulary anywhere in the stream.
  EXPECT_EQ(plain.str().find("byzantine"), std::string::npos);
  EXPECT_EQ(plain.str().find("corrupt"), std::string::npos);

  std::ostringstream corrupted;
  {
    obs::JsonlTraceWriter writer(corrupted);
    opts.observer = &writer;
    opts.byzantine_budget = 50;
    ByzantineAdversary byz({0.4, 31});
    run_once(factory, half_inputs(10), byz, opts);
  }
  EXPECT_NE(corrupted.str().find("\"byzantine_budget\":50"),
            std::string::npos);
  EXPECT_NE(corrupted.str().find("\"corruptions\":"), std::string::npos);
  EXPECT_NE(corrupted.str().find("\"corrupted\":"), std::string::npos);
}

// --------------------------------------------- validity-hardened flooding

TEST(ByzHardening, ToleranceFiltersEquivocatedZerosOnUnanimousOne) {
  // Unanimous-1 inputs under a full-rate equivocator capped at 2 directives
  // per round. Plain FloodMin adopts any forged 0 it sees, so validity
  // collapses; the hardened variant admits a value only when more than
  // `corrupt_tolerance` senders vouch for it in one round, which the round
  // cap denies the adversary.
  const std::uint32_t n = 16;
  const std::uint32_t proto_t = 2;
  const std::vector<Bit> inputs(n, Bit::One);
  EngineOptions opts;
  opts.byzantine_budget = 1000000;
  opts.byzantine_round_cap = 2;
  opts.seed = 41;

  FloodMinFactory plain{FloodMinOptions{proto_t, false}};
  ByzantineAdversary byz_a({1.0, 77});
  const auto broken = run_once(plain, inputs, byz_a, opts);
  ASSERT_TRUE(broken.terminated);
  EXPECT_FALSE(validity_holds(inputs, broken));

  KFloodMinFactory hardened{KFloodMinOptions{proto_t, 2, 2}};
  ByzantineAdversary byz_b({1.0, 77});
  const auto defended = run_once(hardened, inputs, byz_b, opts);
  ASSERT_TRUE(defended.terminated);
  EXPECT_TRUE(validity_holds(inputs, defended));
  EXPECT_TRUE(defended.agreement);
  EXPECT_EQ(defended.decision, Bit::One);
  EXPECT_GT(defended.corruptions_total, 0u);
}

TEST(ByzHardening, ZeroToleranceIsPlainFloodingBitForBit) {
  // corrupt_tolerance 0 must not change a fault-free execution at all.
  const std::uint32_t n = 12;
  const std::uint32_t proto_t = 2;
  EngineOptions opts;
  opts.seed = 13;
  NoAdversary none_a;
  KFloodMinFactory plain_k{KFloodMinOptions{proto_t, 2, 0}};
  const auto base = run_once(plain_k, half_inputs(n), none_a, opts);
  NoAdversary none_b;
  KFloodMinFactory hard_k{KFloodMinOptions{proto_t, 2, 2}};
  const auto hard = run_once(hard_k, half_inputs(n), none_b, opts);
  // Hardening costs extra exchange rounds but must land on the same value.
  EXPECT_TRUE(base.agreement);
  EXPECT_TRUE(hard.agreement);
  EXPECT_EQ(base.decision, hard.decision);
  EXPECT_GT(hard.rounds_to_decision, base.rounds_to_decision);
}

}  // namespace
}  // namespace synran
