// Tests for the synchronous engine and the rollout/fork machinery, using
// small purpose-built protocols so engine mechanics are observable in
// isolation from the real consensus logic.
#include <gtest/gtest.h>

#include <functional>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/rollout.hpp"

namespace synran {
namespace {

// A process that broadcasts its input for `rounds` exchanges, then decides
// its input and halts. No coins, no interaction — pure engine probe.
class EchoProcess final : public Process {
 public:
  EchoProcess(ProcessId id, std::uint32_t n, Bit input, std::uint32_t rounds)
      : id_(id), n_(n), b_(input), rounds_(rounds) {}

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource&) override {
    if (prev != nullptr) last_receipt_ = *prev;
    if (sent_ >= rounds_) {
      decided_ = true;
      halted_ = true;
      return std::nullopt;
    }
    ++sent_;
    return payload::of_bit(b_);
  }
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override {
    return {b_, decided_, halted_, false, false};
  }
  std::uint64_t state_digest() const override {
    return (static_cast<std::uint64_t>(id_) << 32) ^ sent_ ^
           (static_cast<std::uint64_t>(b_ == Bit::One) << 20);
  }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<EchoProcess>(*this);
  }

  const Receipt& last_receipt() const { return last_receipt_; }

 private:
  ProcessId id_;
  std::uint32_t n_;
  Bit b_;
  std::uint32_t rounds_;
  std::uint32_t sent_ = 0;
  bool decided_ = false;
  bool halted_ = false;
  Receipt last_receipt_{};
};

class EchoFactory final : public ProcessFactory {
 public:
  explicit EchoFactory(std::uint32_t rounds) : rounds_(rounds) {}
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<EchoProcess>(id, n, input, rounds_);
  }
  const char* name() const override { return "echo"; }

 private:
  std::uint32_t rounds_;
};

// A process that decides the majority bit of round 1 and halts; ties -> 0.
// Used to observe partial-delivery effects end to end.
class MajorityOnceProcess final : public Process {
 public:
  MajorityOnceProcess(ProcessId id, Bit input) : id_(id), b_(input) {}
  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource&) override {
    if (prev == nullptr) return payload::of_bit(b_);
    b_ = 2 * prev->ones > prev->count ? Bit::One : Bit::Zero;
    decided_ = true;
    halted_ = true;
    return std::nullopt;
  }
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override {
    return {b_, decided_, halted_, false, false};
  }
  std::uint64_t state_digest() const override {
    return id_ ^ (static_cast<std::uint64_t>(b_ == Bit::One) << 8) ^
           (static_cast<std::uint64_t>(decided_) << 9);
  }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<MajorityOnceProcess>(*this);
  }

 private:
  ProcessId id_;
  Bit b_;
  bool decided_ = false;
  bool halted_ = false;
};

class MajorityOnceFactory final : public ProcessFactory {
 public:
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t,
                                Bit input) const override {
    return std::make_unique<MajorityOnceProcess>(id, input);
  }
  const char* name() const override { return "majority-once"; }
};

// Runs a callback on a chosen round with full world access, then delegates
// to an inner adversary (or does nothing).
class ProbeAdversary final : public Adversary {
 public:
  using Probe = std::function<FaultPlan(const WorldView&)>;
  ProbeAdversary(Round round, Probe probe)
      : round_(round), probe_(std::move(probe)) {}
  FaultPlan plan_round(const WorldView& world) override {
    if (world.round() == round_) return probe_(world);
    return {};
  }
  const char* name() const override { return "probe"; }

 private:
  Round round_;
  Probe probe_;
};

std::vector<Bit> bits(std::initializer_list<int> xs) {
  std::vector<Bit> out;
  for (int x : xs) out.push_back(x ? Bit::One : Bit::Zero);
  return out;
}

// ------------------------------------------------------------------ engine

TEST(EngineTest, CountsRoundsWithPaperConvention) {
  EchoFactory factory(3);  // 3 exchanges, decide while digesting round 3
  NoAdversary adv;
  EngineOptions opts;
  const auto res = run_once(factory, bits({1, 1, 1}), adv, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_EQ(res.rounds_to_decision, 3u);
  EXPECT_EQ(res.rounds_to_halt, 3u);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_EQ(res.crashes_total, 0u);
}

TEST(EngineTest, DisagreementIsReported) {
  EchoFactory factory(1);  // everyone decides its own input
  NoAdversary adv;
  const auto res = run_once(factory, bits({0, 1}), adv, {});
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.has_decision);
  EXPECT_FALSE(res.agreement);
}

TEST(EngineTest, MaxRoundsCapMarksNonTermination) {
  EchoFactory factory(1000);
  NoAdversary adv;
  EngineOptions opts;
  opts.max_rounds = 5;
  const auto res = run_once(factory, bits({1}), adv, opts);
  EXPECT_FALSE(res.terminated);
}

TEST(EngineTest, BudgetOverrunIsAnInvariantViolation) {
  EchoFactory factory(5);
  ProbeAdversary adv(1, [](const WorldView& w) {
    FaultPlan plan;  // crash everyone with zero budget
    for (ProcessId i = 0; i < w.n(); ++i)
      plan.crashes.push_back({i, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 0;
  EXPECT_THROW(run_once(factory, bits({1, 1, 1}), adv, opts),
               InvariantError);
}

TEST(EngineTest, PerRoundCapIsEnforced) {
  EchoFactory factory(5);
  ProbeAdversary adv(1, [](const WorldView& w) {
    EXPECT_EQ(w.round_cap(), 1u);
    EXPECT_EQ(w.round_budget(), 1u);
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    plan.crashes.push_back({1, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 3;
  opts.per_round_cap = 1;
  EXPECT_THROW(run_once(factory, bits({1, 1, 1}), adv, opts),
               InvariantError);
}

TEST(EngineTest, CrashingDeadProcessIsRejected) {
  EchoFactory factory(5);
  int calls = 0;
  auto probe = [&calls](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    ++calls;
    return plan;
  };
  // Crash 0 in round 1 and again in round 2: round 2 must throw inside the
  // fabric because a dead process is not a sender.
  class TwiceAdversary final : public Adversary {
   public:
    explicit TwiceAdversary(std::function<FaultPlan(const WorldView&)> f)
        : f_(std::move(f)) {}
    FaultPlan plan_round(const WorldView& w) override {
      return w.round() <= 2 ? f_(w) : FaultPlan{};
    }
    const char* name() const override { return "twice"; }

   private:
    std::function<FaultPlan(const WorldView&)> f_;
  } adv(probe);
  EngineOptions opts;
  opts.t_budget = 2;
  EXPECT_THROW(run_once(factory, bits({1, 1, 1}), adv, opts),
               InvariantError);
  EXPECT_EQ(calls, 2);
}

TEST(EngineTest, CrashedProcessIsSilencedForever) {
  MajorityOnceFactory factory;
  // 5 processes: 1,1,1,0,0. Crash a 1-sender in round 1 delivering to
  // nobody: every receiver sees 2 ones / 4 messages -> tie -> 0.
  ProbeAdversary adv(1, [](const WorldView& w) {
    FaultPlan plan;
    ProcessId one_sender = w.n();
    for (ProcessId i = 0; i < w.n(); ++i) {
      if (w.sending(i) &&
          payload::supports(*w.payload(i), Bit::One)) {
        one_sender = i;
        break;
      }
    }
    EXPECT_LT(one_sender, w.n());
    plan.crashes.push_back({one_sender, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  const auto res = run_once(factory, bits({1, 1, 1, 0, 0}), adv, opts);
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
  EXPECT_EQ(res.crashes_total, 1u);
}

TEST(EngineTest, PartialDeliveryCreatesSplitViews) {
  MajorityOnceFactory factory;
  // 4 processes: 1,1,0,0. Crash sender 0 (a 1) delivering only to process 1:
  // process 1 sees 2/4 ones -> 0 (tie), processes 2,3 see 1/3 -> 0.
  ProbeAdversary adv(1, [](const WorldView& w) {
    FaultPlan plan;
    DynBitset mask(w.n());
    mask.set(1);
    plan.crashes.push_back({0, mask});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  const auto res = run_once(factory, bits({1, 1, 0, 0}), adv, opts);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
  EXPECT_FALSE(res.decided[0]);  // crashed before deciding
  EXPECT_TRUE(res.crashed[0]);
}

TEST(EngineTest, DeterministicForSeed) {
  MajorityOnceFactory factory;
  NoAdversary adv;
  EngineOptions opts;
  opts.seed = 123;
  const auto a = run_once(factory, bits({1, 0, 1}), adv, opts);
  const auto b = run_once(factory, bits({1, 0, 1}), adv, opts);
  EXPECT_EQ(a.rounds_to_halt, b.rounds_to_halt);
  EXPECT_EQ(a.decision, b.decision);
}

TEST(EngineTest, RejectsOversizedBudget) {
  EchoFactory factory(1);
  NoAdversary adv;
  EngineOptions opts;
  opts.t_budget = 4;
  EXPECT_THROW(run_once(factory, bits({1, 1}), adv, opts), ArgumentError);
}

TEST(EngineTest, EmptyInputsRejected) {
  EchoFactory factory(1);
  NoAdversary adv;
  EXPECT_THROW(run_once(factory, {}, adv, {}), ArgumentError);
}

// ---------------------------------------------------------- validity_holds

TEST(ValidityTest, VacuousWithoutDecision) {
  RunResult res;
  EXPECT_TRUE(validity_holds(bits({0, 0}), res));
}

TEST(ValidityTest, DetectsViolation) {
  RunResult res;
  res.has_decision = true;
  res.decided = {true, true};
  res.crashed = {false, false};
  res.decisions = {Bit::One, Bit::One};
  EXPECT_FALSE(validity_holds(bits({0, 0}), res));
  EXPECT_TRUE(validity_holds(bits({1, 1}), res));
  EXPECT_TRUE(validity_holds(bits({0, 1}), res));
}

TEST(ValidityTest, IgnoresCrashedProcesses) {
  RunResult res;
  res.has_decision = true;
  res.decided = {true, true};
  res.crashed = {true, false};
  res.decisions = {Bit::One, Bit::Zero};
  EXPECT_TRUE(validity_holds(bits({0, 0}), res));
}

TEST(ValidityTest, VacuousWhenNoSurvivorDecided) {
  // has_decision can be set while every survivor is still undecided (and the
  // only decided process crashed): with nobody's verdict in scope the
  // unanimity requirement is vacuously met, stale decision values included.
  RunResult res;
  res.has_decision = true;
  res.decided = {true, false, false};
  res.crashed = {true, false, false};
  res.decisions = {Bit::One, Bit::One, Bit::One};
  EXPECT_TRUE(validity_holds(bits({0, 0, 0}), res));
}

TEST(ValidityTest, MixedInputsPermitEitherDecision) {
  // With non-unanimous inputs §2's validity clause imposes nothing: even
  // survivors split across both values are fine.
  RunResult res;
  res.has_decision = true;
  res.decided = {true, true, true};
  res.crashed = {false, false, false};
  res.decisions = {Bit::One, Bit::Zero, Bit::One};
  EXPECT_TRUE(validity_holds(bits({0, 1, 0}), res));
  EXPECT_TRUE(validity_holds(bits({1, 0, 1}), res));
}

TEST(ValidityTest, UnanimousInputsButNoDecisionIsVacuous) {
  // A run cut off before any decision (has_decision == false) cannot violate
  // validity regardless of what stale per-process state it carries.
  RunResult res;
  res.has_decision = false;
  res.decided = {true, true};
  res.crashed = {false, false};
  res.decisions = {Bit::One, Bit::One};
  EXPECT_TRUE(validity_holds(bits({0, 0}), res));
  EXPECT_TRUE(validity_holds(bits({1, 1}), res));
}

// ----------------------------------------------------------------- rollout

TEST(RolloutTest, ForkReproducesDeterministicOutcome) {
  MajorityOnceFactory factory;
  bool probed = false;
  ProbeAdversary adv(1, [&probed](const WorldView& w) {
    NoAdversary none;
    const auto out = rollout(w, FaultPlan{}, none, 7);
    EXPECT_TRUE(out.terminated);
    EXPECT_TRUE(out.agreement);
    EXPECT_TRUE(out.decided_one);  // majority of 1,1,0 is 1
    probed = true;
    return FaultPlan{};
  });
  const auto res = run_once(factory, bits({1, 1, 0}), adv, {});
  EXPECT_TRUE(probed);
  EXPECT_EQ(res.decision, Bit::One);
}

TEST(RolloutTest, FirstPlanChangesOutcome) {
  MajorityOnceFactory factory;
  bool probed = false;
  ProbeAdversary adv(1, [&probed](const WorldView& w) {
    // Hypothetical: crash the only 0-sender silently -> everyone sees 2/2
    // ones -> decide 1... while actually we do nothing.
    FaultPlan hide;
    for (ProcessId i = 0; i < w.n(); ++i)
      if (w.sending(i) && !payload::supports(*w.payload(i), Bit::One))
        hide.crashes.push_back({i, DynBitset(w.n())});
    NoAdversary none;
    const auto out = rollout(w, hide, none, 7);
    EXPECT_TRUE(out.decided_one);
    probed = true;
    return FaultPlan{};
  });
  EngineOptions opts;
  opts.t_budget = 1;
  const auto res = run_once(factory, bits({1, 0, 1}), adv, opts);
  EXPECT_TRUE(probed);
  // The real run delivered everything: majority 1.
  EXPECT_EQ(res.decision, Bit::One);
  EXPECT_EQ(res.crashes_total, 0u);
}

TEST(RolloutTest, BudgetIsThreadedThroughFork) {
  EchoFactory factory(4);
  bool probed = false;
  ProbeAdversary adv(2, [&probed](const WorldView& w) {
    ForkState fork = ForkState::from_world(w);
    EXPECT_EQ(fork.budget_left(), w.budget_left());
    EXPECT_EQ(fork.round(), w.round());
    // Over-budget plan must throw inside the fork as well.
    FaultPlan plan;
    for (ProcessId i = 0; i < w.n() && plan.crashes.size() <= w.budget_left();
         ++i)
      if (w.sending(i)) plan.crashes.push_back({i, DynBitset(w.n())});
    if (plan.crash_count() > w.budget_left()) {
      EXPECT_THROW(fork.deliver_with(plan), InvariantError);
    }
    probed = true;
    return FaultPlan{};
  });
  EngineOptions opts;
  opts.t_budget = 1;
  run_once(factory, bits({1, 1, 1}), adv, opts);
  EXPECT_TRUE(probed);
}

TEST(ForkStateTest, CopyIsIndependent) {
  MajorityOnceFactory factory;
  ProbeAdversary adv(1, [](const WorldView& w) {
    ForkState a = ForkState::from_world(w);
    ForkState b(a);
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    a.deliver_with(plan);
    EXPECT_FALSE(a.alive().test(0));
    EXPECT_TRUE(b.alive().test(0));  // the copy is untouched
    return FaultPlan{};
  });
  EngineOptions opts;
  opts.t_budget = 1;
  run_once(factory, bits({1, 1, 0}), adv, opts);
}

}  // namespace
}  // namespace synran
