// Randomized configuration sweep ("fuzz grid"): hundreds of seeded random
// (protocol, adversary, n, t, inputs) combinations, every run checked
// against the full §3.1 model-invariant set via traces plus the consensus
// conditions. This is the catch-all net under the targeted suites.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/nonadaptive.hpp"
#include "common/rng.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/kfloodmin.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace synran {
namespace {

struct FuzzConfig {
  std::unique_ptr<ProcessFactory> factory;
  std::unique_ptr<Adversary> adversary;
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  std::vector<Bit> inputs;
  /// Safety is asserted only for combinations whose agreement guarantee
  /// covers the drawn adversary (ablations/partial-view-fragile protocols
  /// against adaptive splitters are checked for liveness + invariants only).
  bool expect_safety = true;
  std::string label;
};

FuzzConfig draw(Xoshiro256& rng) {
  FuzzConfig cfg;
  cfg.n = 3 + static_cast<std::uint32_t>(rng.below(40));
  cfg.t = static_cast<std::uint32_t>(rng.below(cfg.n));

  const auto proto = rng.below(6);
  switch (proto) {
    case 0:
      cfg.factory = std::make_unique<SynRanFactory>();
      cfg.label = "synran";
      break;
    case 1: {
      SynRanOptions o;
      o.det_handoff = false;
      cfg.factory = std::make_unique<SynRanFactory>(o);
      cfg.label = "synran-nodet";
      break;
    }
    case 2: {
      SynRanOptions o;
      o.coin_rule = CoinRule::Symmetric;
      cfg.factory = std::make_unique<SynRanFactory>(o);
      cfg.label = "benor-sym";
      break;
    }
    case 3:
      cfg.factory = std::make_unique<FloodMinFactory>(
          FloodMinOptions{cfg.t, rng.flip()});
      cfg.label = "floodmin";
      break;
    case 4:
      cfg.factory = std::make_unique<KFloodMinFactory>(
          KFloodMinOptions{cfg.t, 2 + static_cast<std::uint32_t>(
                                          rng.below(30))});
      cfg.label = "kfloodmin";
      break;
    default:
      cfg.factory = std::make_unique<LeaderCoinFactory>();
      cfg.label = "leadercoin";
      break;
  }

  const auto adv = rng.below(5);
  const bool adaptive_splitter = adv == 3;
  switch (adv) {
    case 0:
      cfg.adversary = std::make_unique<NoAdversary>();
      cfg.label += "/none";
      break;
    case 1:
      cfg.adversary = std::make_unique<RandomCrashAdversary>(
          RandomCrashAdversary::Options{
              1 + static_cast<std::uint32_t>(rng.below(3)), 0.7,
              rng.next()});
      cfg.label += "/random";
      break;
    case 2:
      cfg.adversary = std::make_unique<ObliviousAdversary>(
          ObliviousOptions{1 + static_cast<std::uint32_t>(rng.below(30)),
                           rng.next()});
      cfg.label += "/oblivious";
      break;
    case 3:
      cfg.adversary = std::make_unique<CoinBiasAdversary>(
          CoinBiasOptions{0.55, rng.flip(), rng.next()});
      cfg.label += "/coinbias";
      break;
    default:
      cfg.adversary = std::make_unique<ChainHidingAdversary>();
      cfg.label += "/chain";
      break;
  }

  // The random adversary crashes with arbitrary partial masks, which the
  // symmetric ablation and LeaderCoin do not promise to survive; same for
  // the adaptive splitter.
  const bool fragile = cfg.label.rfind("benor-sym", 0) == 0 ||
                       cfg.label.rfind("leadercoin", 0) == 0;
  if (fragile && (adaptive_splitter || adv == 1)) cfg.expect_safety = false;

  cfg.inputs.reserve(cfg.n);
  for (std::uint32_t i = 0; i < cfg.n; ++i)
    cfg.inputs.push_back(bit_of(rng.flip()));
  return cfg;
}

TEST(FuzzGrid, HundredsOfRandomConfigsKeepEveryInvariant) {
  Xoshiro256 rng(0xf022ed);
  int safety_checked = 0;
  for (int iter = 0; iter < 250; ++iter) {
    FuzzConfig cfg = draw(rng);
    TracingAdversary tracer(*cfg.adversary);
    EngineOptions opts;
    opts.t_budget = cfg.t;
    opts.seed = rng.next();
    // The symmetric ablation can genuinely livelock under attack at larger
    // n; the cap turns that into a skipped (not failed) liveness check.
    opts.max_rounds = 30000;

    const auto res = run_once(*cfg.factory, cfg.inputs, tracer, opts);

    // Model invariants hold unconditionally.
    const auto report = check_model_invariants(tracer.trace());
    ASSERT_TRUE(report.ok)
        << "iter " << iter << " [" << cfg.label << "]: "
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_LE(res.crashes_total, cfg.t) << cfg.label;

    if (!res.terminated) {
      EXPECT_FALSE(cfg.expect_safety)
          << "iter " << iter << " [" << cfg.label
          << "]: a safety-expected run failed to terminate";
      continue;
    }
    if (cfg.expect_safety) {
      ++safety_checked;
      EXPECT_TRUE(res.agreement)
          << "iter " << iter << " [" << cfg.label << "]";
      EXPECT_TRUE(validity_holds(cfg.inputs, res))
          << "iter " << iter << " [" << cfg.label << "]";
    }
  }
  // The draw must actually exercise plenty of safety-checked combinations.
  EXPECT_GT(safety_checked, 120);
}

TEST(FuzzGrid, MessageAccountingMatchesTraces) {
  Xoshiro256 rng(0xfeed);
  for (int iter = 0; iter < 40; ++iter) {
    FuzzConfig cfg = draw(rng);
    TracingAdversary tracer(*cfg.adversary);
    EngineOptions opts;
    opts.t_budget = cfg.t;
    opts.seed = rng.next();
    opts.max_rounds = 30000;
    const auto res = run_once(*cfg.factory, cfg.inputs, tracer, opts);
    if (!res.terminated) continue;
    // Each round delivers at most senders × receivers messages.
    std::uint64_t upper = 0;
    for (const auto& r : tracer.trace().rounds)
      upper += static_cast<std::uint64_t>(r.senders) *
               (r.alive - r.halted);
    EXPECT_LE(res.messages_delivered, upper) << cfg.label;
    if (res.rounds_to_halt > 0) {
      EXPECT_GT(res.messages_delivered, 0u) << cfg.label;
    }
  }
}

}  // namespace
}  // namespace synran
