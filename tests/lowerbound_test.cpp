// Tests for the exact valency engine (§3.2–3.6): the classification table,
// exactness on deterministic protocols, validity-pinned initial states, and
// the executable Lemma 3.5.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "lowerbound/valency.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"

namespace synran {
namespace {

// ----------------------------------------------------------- classification

TEST(ClassifyTest, TableIsExhaustiveAndExclusive) {
  // Sweep a grid of (min, max) pairs: exactly one class always fires.
  const double n = 16, k = 1;
  for (double mn = 0.0; mn <= 1.0001; mn += 0.05) {
    for (double mx = mn; mx <= 1.0001; mx += 0.05) {
      const Valency v = classify(mn, mx, n, k);
      const auto mask = classify_bounds({mn, mn}, {mx, mx}, n, k);
      EXPECT_TRUE(bounds_decide_unique(mask));
      EXPECT_EQ(mask, 1u << static_cast<int>(v));
    }
  }
}

TEST(ClassifyTest, CornersMatchPaperTable) {
  const double n = 100, k = 1;  // ε = 1/10 − 1/100 = 0.09
  EXPECT_EQ(classify(0.0, 1.0, n, k), Valency::Bivalent);
  EXPECT_EQ(classify(0.0, 0.5, n, k), Valency::ZeroValent);
  EXPECT_EQ(classify(0.5, 1.0, n, k), Valency::OneValent);
  EXPECT_EQ(classify(0.5, 0.5, n, k), Valency::NullValent);
  // Thresholds are strict around ε = 0.09 (values nudged off the exact
  // boundary to stay clear of floating-point representation).
  EXPECT_EQ(classify(0.091, 0.5, n, k), Valency::NullValent);
  EXPECT_EQ(classify(0.089, 0.5, n, k), Valency::ZeroValent);
}

TEST(ClassifyTest, MarginShrinksWithRound) {
  // By round k = n/√n·… the ε margin hits 0 and everything with min<max
  // straddling nothing becomes null/bi by the degenerate margins.
  EXPECT_EQ(classify(0.0, 1.0, 100.0, 50.0), Valency::NullValent)
      << "ε clamps to 0: nothing is classified low/high";
}

TEST(ClassifyBoundsTest, WideBoundsAdmitSeveralClasses) {
  const auto mask = classify_bounds({0.0, 0.5}, {0.5, 1.0}, 100.0, 1.0);
  EXPECT_FALSE(bounds_decide_unique(mask));
  EXPECT_NE(mask & (1u << static_cast<int>(Valency::Bivalent)), 0);
  EXPECT_NE(mask & (1u << static_cast<int>(Valency::NullValent)), 0);
}

TEST(ClassifyBoundsTest, TightBoundsDecide) {
  const auto mask = classify_bounds({0.0, 0.0}, {1.0, 1.0}, 100.0, 1.0);
  EXPECT_TRUE(bounds_decide_unique(mask));
  EXPECT_EQ(mask, 1u << static_cast<int>(Valency::Bivalent));
}

TEST(ClassifyTest, ToStringCoversAllClasses) {
  EXPECT_STREQ(to_string(Valency::Bivalent), "bivalent");
  EXPECT_STREQ(to_string(Valency::ZeroValent), "0-valent");
  EXPECT_STREQ(to_string(Valency::OneValent), "1-valent");
  EXPECT_STREQ(to_string(Valency::NullValent), "null-valent");
}

// ------------------------------------------------- exact engine, FloodMin

TEST(ValencyEngineTest, FloodMinAllOnesIsOneValent) {
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 6;
  const auto v = evaluate_initial_state(
      factory, std::vector<Bit>(3, Bit::One), opts);
  // Deterministic protocol, unanimous input: Pr[1] = 1 under every
  // adversary, exactly.
  EXPECT_TRUE(v.min_r.exact());
  EXPECT_TRUE(v.max_r.exact());
  EXPECT_DOUBLE_EQ(v.min_r.lo, 1.0);
  EXPECT_DOUBLE_EQ(v.max_r.lo, 1.0);
  EXPECT_FALSE(v.saw_disagreement);
  EXPECT_EQ(v.classes, 1u << static_cast<int>(Valency::OneValent));
}

TEST(ValencyEngineTest, FloodMinAllZerosIsZeroValent) {
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 6;
  const auto v = evaluate_initial_state(
      factory, std::vector<Bit>(3, Bit::Zero), opts);
  EXPECT_DOUBLE_EQ(v.min_r.hi, 0.0);
  EXPECT_DOUBLE_EQ(v.max_r.hi, 0.0);
  EXPECT_EQ(v.classes, 1u << static_cast<int>(Valency::ZeroValent));
}

TEST(ValencyEngineTest, FloodMinMixedInputsSwingWithTheAdversary) {
  // FloodMin with t=1 and inputs {0,1,1}: delivering everything decides 0;
  // crashing the 0-holder before anyone hears it decides 1. So min=0, max=1:
  // bivalent at round 1.
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 6;
  const auto v = evaluate_initial_state(
      factory, {Bit::Zero, Bit::One, Bit::One}, opts);
  EXPECT_TRUE(v.min_r.exact());
  EXPECT_TRUE(v.max_r.exact());
  EXPECT_DOUBLE_EQ(v.min_r.lo, 0.0);
  EXPECT_DOUBLE_EQ(v.max_r.lo, 1.0);
  EXPECT_FALSE(v.saw_disagreement);
  EXPECT_EQ(v.classes, 1u << static_cast<int>(Valency::Bivalent));
}

TEST(ValencyEngineTest, NoBudgetPinsDeterministicOutcome) {
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 0;
  opts.max_depth = 6;
  const auto v = evaluate_initial_state(
      factory, {Bit::Zero, Bit::One, Bit::One}, opts);
  // No crashes possible: the 0 floods and wins, min = max = 0.
  EXPECT_DOUBLE_EQ(v.min_r.hi, 0.0);
  EXPECT_DOUBLE_EQ(v.max_r.hi, 0.0);
}

// --------------------------------------------------- exact engine, SynRan

TEST(ValencyEngineTest, SynRanValidityStatesAreExactlyPinned) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 14;
  const auto all1 = evaluate_initial_state(
      factory, std::vector<Bit>(3, Bit::One), opts);
  EXPECT_DOUBLE_EQ(all1.min_r.lo, 1.0) << "validity: all-1 must decide 1";
  EXPECT_TRUE(all1.min_r.exact());
  EXPECT_FALSE(all1.saw_disagreement);

  const auto all0 = evaluate_initial_state(
      factory, std::vector<Bit>(3, Bit::Zero), opts);
  EXPECT_DOUBLE_EQ(all0.max_r.hi, 0.0) << "validity: all-0 must decide 0";
  EXPECT_TRUE(all0.max_r.exact());
}

TEST(ValencyEngineTest, SynRanMixedInputIsAdversarySwingable) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 14;
  const auto v = evaluate_initial_state(
      factory, {Bit::Zero, Bit::One, Bit::One}, opts);
  // The adversary can hide the single 0 (forcing Z=0 ⇒ all propose 1) or
  // hide a 1 (12 < 4·3 territory ⇒ decide 0): full swing.
  EXPECT_LE(v.min_r.hi, 0.05);
  EXPECT_GE(v.max_r.lo, 0.95);
  EXPECT_FALSE(v.saw_disagreement);
}

TEST(ValencyEngineTest, DepthZeroReturnsVacuousBounds) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 0;
  const auto v = evaluate_initial_state(
      factory, {Bit::Zero, Bit::One}, opts);
  EXPECT_DOUBLE_EQ(v.min_r.lo, 0.0);
  EXPECT_DOUBLE_EQ(v.min_r.hi, 1.0);
}

TEST(ValencyEngineTest, GuardsItsDomain) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 3;
  EXPECT_THROW(
      evaluate_initial_state(factory, std::vector<Bit>(3, Bit::One), opts),
      ArgumentError);  // t must be < n
  opts.t_budget = 1;
  EXPECT_THROW(
      evaluate_initial_state(factory, std::vector<Bit>(8, Bit::One), opts),
      ArgumentError);  // n too large for exhaustion
  opts.per_round_cap = 2;
  EXPECT_THROW(
      evaluate_initial_state(factory, std::vector<Bit>(3, Bit::One), opts),
      ArgumentError);  // cap > 1 unsupported
}

// ------------------------------------------------------------- Lemma 3.5

TEST(Lemma35Test, FloodMinChainContainsBivalentState) {
  FloodMinFactory factory({1, false});
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 6;
  const auto f = find_bivalent_or_null_initial_state(factory, 3, opts);
  ASSERT_TRUE(f.found);
  EXPECT_FALSE(f.verdict.saw_disagreement);
  // The witness cannot be a unanimous input (validity pins those).
  bool all_same = true;
  for (auto b : f.inputs)
    if (b != f.inputs[0]) all_same = false;
  EXPECT_FALSE(all_same);
}

TEST(Lemma35Test, SynRanChainContainsBivalentOrNullState) {
  SynRanFactory factory;
  ValencyOptions opts;
  opts.t_budget = 1;
  opts.max_depth = 14;
  const auto f = find_bivalent_or_null_initial_state(factory, 3, opts);
  EXPECT_TRUE(f.found);
  EXPECT_FALSE(f.verdict.saw_disagreement);
}

}  // namespace
}  // namespace synran
