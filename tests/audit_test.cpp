// Tests for the runtime invariant auditor (src/sim/audit.hpp): every §3.1
// model violation class must be caught with a round-stamped narrative, and
// legitimate adversaries must pass untouched.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "adversary/basic.hpp"
#include "common/check.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace synran {
namespace {

std::vector<Bit> ones(std::uint32_t n) {
  return std::vector<Bit>(n, Bit::One);
}

/// Broadcasts its input for `rounds` exchanges, then decides it and halts.
class ChattyProcess final : public Process {
 public:
  ChattyProcess(ProcessId id, Bit input, std::uint32_t rounds)
      : id_(id), b_(input), rounds_(rounds) {}

  std::optional<Payload> on_round(const Receipt*, CoinSource&) override {
    if (sent_ >= rounds_) {
      decided_ = true;
      halted_ = true;
      return std::nullopt;
    }
    ++sent_;
    return payload::of_bit(b_);
  }
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override {
    return {b_, decided_, halted_, false, false};
  }
  std::uint64_t state_digest() const override {
    return (static_cast<std::uint64_t>(id_) << 32) ^ sent_;
  }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<ChattyProcess>(*this);
  }

 private:
  ProcessId id_;
  Bit b_;
  std::uint32_t rounds_;
  std::uint32_t sent_ = 0;
  bool decided_ = false;
  bool halted_ = false;
};

class ChattyFactory final : public ProcessFactory {
 public:
  /// `early_halt_id` (if any) halts after a single exchange; everyone else
  /// chats for `rounds`.
  explicit ChattyFactory(std::uint32_t rounds,
                         std::optional<ProcessId> early_halt_id = {})
      : rounds_(rounds), early_halt_id_(early_halt_id) {}
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t,
                                Bit input) const override {
    const std::uint32_t r =
        early_halt_id_ && *early_halt_id_ == id ? 1 : rounds_;
    return std::make_unique<ChattyProcess>(id, input, r);
  }
  const char* name() const override { return "chatty"; }

 private:
  std::uint32_t rounds_;
  std::optional<ProcessId> early_halt_id_;
};

/// Adversary built from a lambda.
class LambdaAdversary final : public Adversary {
 public:
  explicit LambdaAdversary(std::function<FaultPlan(const WorldView&)> fn)
      : fn_(std::move(fn)) {}
  FaultPlan plan_round(const WorldView& w) override { return fn_(w); }
  const char* name() const override { return "lambda"; }

 private:
  std::function<FaultPlan(const WorldView&)> fn_;
};

std::string run_expecting_audit_error(const ProcessFactory& factory,
                                      std::vector<Bit> inputs,
                                      Adversary& adv, EngineOptions opts) {
  try {
    run_once(factory, std::move(inputs), adv, opts);
  } catch (const InvariantError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an InvariantError";
  return {};
}

// --------------------------------------------------- budget-class violations

TEST(AuditTest, OverBudgetAdversaryIsCaught) {
  // Crashes one sender every round regardless of the budget: the third
  // crash exceeds t=2 and must be rejected the moment it is planned.
  ChattyFactory factory(100);
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    for (ProcessId p = 0; p < w.n(); ++p) {
      if (w.alive().test(p) && w.sending(p)) {
        plan.crashes.push_back({p, DynBitset(w.n())});
        break;
      }
    }
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 2;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("round 3"), std::string::npos) << what;
  EXPECT_NE(what.find("exceeding the fault budget t=2"), std::string::npos)
      << what;
}

TEST(AuditTest, PerRoundCapViolationIsCaught) {
  ChattyFactory factory(100);
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n())});
    plan.crashes.push_back({1, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 4;
  opts.per_round_cap = 1;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("per-round cap is 1"), std::string::npos) << what;
}

TEST(AuditTest, RecrashIsCaught) {
  // Crash process 0 in rounds 1 and 2: the dead must stay dead.
  ChattyFactory factory(100);
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    if (w.round() <= 2) plan.crashes.push_back({0, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 3;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("round 2"), std::string::npos) << what;
  EXPECT_NE(what.find("re-crashed"), std::string::npos) << what;
  EXPECT_NE(what.find("round 1"), std::string::npos) << what;
}

TEST(AuditTest, CrashingASilentProcessIsCaught) {
  // Process 0 halts after round 1; crashing it in round 3 is outside the
  // model (only senders can be crashed mid-broadcast).
  ChattyFactory factory(100, ProcessId{0});
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    if (w.round() == 3) plan.crashes.push_back({0, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 3;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("not sending"), std::string::npos) << what;
}

TEST(AuditTest, DuplicateVictimIsCaught) {
  ChattyFactory factory(100);
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({2, DynBitset(w.n())});
    plan.crashes.push_back({2, DynBitset(w.n())});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 3;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("appears twice"), std::string::npos) << what;
}

TEST(AuditTest, WrongDeliverToSizeIsCaught) {
  ChattyFactory factory(100);
  LambdaAdversary adv([](const WorldView& w) {
    FaultPlan plan;
    plan.crashes.push_back({0, DynBitset(w.n() + 1)});
    return plan;
  });
  EngineOptions opts;
  opts.t_budget = 3;
  const std::string what =
      run_expecting_audit_error(factory, ones(6), adv, opts);
  EXPECT_NE(what.find("deliver_to"), std::string::npos) << what;
}

// ----------------------------------------------------- decision discipline

/// Decides 0 in round 2, silently swaps the decision to 1 in round 4.
class FlippingProcess final : public Process {
 public:
  std::optional<Payload> on_round(const Receipt*, CoinSource&) override {
    ++round_;
    if (round_ >= 2) decided_ = true;
    if (round_ >= 8) {
      halted_ = true;
      return std::nullopt;
    }
    return payload::of_bit(decision());
  }
  bool decided() const override { return decided_; }
  Bit decision() const override {
    return round_ >= 4 ? Bit::One : Bit::Zero;
  }
  bool halted() const override { return halted_; }
  ProcessView view() const override {
    return {decision(), decided_, halted_, false, false};
  }
  std::uint64_t state_digest() const override { return round_; }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<FlippingProcess>(*this);
  }

 private:
  std::uint32_t round_ = 0;
  bool decided_ = false;
  bool halted_ = false;
};

class FlippingFactory final : public ProcessFactory {
 public:
  std::unique_ptr<Process> make(ProcessId, std::uint32_t,
                                Bit) const override {
    return std::make_unique<FlippingProcess>();
  }
  const char* name() const override { return "flipper"; }
};

TEST(AuditTest, StrictModeCatchesDecisionFlips) {
  FlippingFactory factory;
  NoAdversary none;
  EngineOptions opts;
  opts.strict_decision_audit = true;
  try {
    run_once(factory, ones(3), none, opts);
    FAIL() << "expected an InvariantError";
  } catch (const InvariantError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("flipped its decision from 0 to 1"),
              std::string::npos)
        << what;
  }
}

TEST(AuditTest, DefaultModeToleratesRescindStyleProtocols) {
  // The paper's SynRan rescinds decisions until STOP, so flips are legal at
  // round granularity unless the caller opts into the latching policy.
  FlippingFactory factory;
  NoAdversary none;
  EXPECT_NO_THROW(run_once(factory, ones(3), none, {}));
}

// ----------------------------------------------------------- clean passes

TEST(AuditTest, AuditedAdversaryPassesThroughAndCounts) {
  ChattyFactory factory(6);
  RandomCrashAdversary inner({2, 0.8, 99});
  AuditedAdversary audited(inner);
  EngineOptions opts;
  opts.t_budget = 3;
  opts.seed = 7;
  RunResult res;
  ASSERT_NO_THROW(res = run_once(factory, ones(8), audited, opts));
  EXPECT_EQ(audited.auditor().crashes_so_far(), res.crashes_total);
  EXPECT_LE(res.crashes_total, 3u);
  EXPECT_STREQ(audited.name(), "audited");
}

TEST(AuditTest, RunAuditorDeliveryAccounting) {
  RunAuditor auditor;
  auditor.begin(3, 1, 0);
  std::vector<std::optional<Payload>> payloads(
      3, std::optional<Payload>(payload::kSupports1));
  FaultPlan none;
  DynBitset active(3, true);
  // 3 full broadcasts × 3 active receivers.
  EXPECT_NO_THROW(auditor.on_deliveries(1, none, payloads, active, 9));
  try {
    auditor.on_deliveries(2, none, payloads, active, 8);
    FAIL() << "expected an InvariantError";
  } catch (const InvariantError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("round 2"), std::string::npos) << what;
    EXPECT_NE(what.find("broadcast count is 9"), std::string::npos) << what;
  }
}

TEST(AuditTest, RunAuditorPartialDeliveryAccounting) {
  RunAuditor auditor;
  auditor.begin(4, 2, 0);
  std::vector<std::optional<Payload>> payloads(
      4, std::optional<Payload>(payload::kSupports0));
  FaultPlan plan;
  DynBitset half(4);
  half.set(0);
  half.set(1);
  plan.crashes.push_back({3, half});
  DynBitset active(4, true);
  active.reset(3);
  auditor.on_plan(1, plan, payloads);
  // 3 full broadcasts × 3 active receivers + |{0,1} ∩ active| = 9 + 2.
  EXPECT_NO_THROW(auditor.on_deliveries(1, plan, payloads, active, 11));
  EXPECT_EQ(auditor.crashes_so_far(), 1u);
  EXPECT_EQ(auditor.budget_left(), 1u);
}

}  // namespace
}  // namespace synran
