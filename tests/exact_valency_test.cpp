// Tests for mid-execution valency evaluation and the §3.3–3.5 strategy
// played literally by ExactValencyAdversary on tiny systems.
#include <gtest/gtest.h>

#include <functional>

#include "adversary/exact_valency.hpp"
#include "common/check.hpp"
#include "lowerbound/valency.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

/// Runs a probe at round 1 with full world access.
class ProbeAdversary final : public Adversary {
 public:
  using Probe = std::function<void(const WorldView&)>;
  explicit ProbeAdversary(Probe probe) : probe_(std::move(probe)) {}
  FaultPlan plan_round(const WorldView& world) override {
    if (world.round() == 1 && probe_) probe_(world);
    return {};
  }
  const char* name() const override { return "probe"; }

 private:
  Probe probe_;
};

// ---------------------------------------------------- evaluate_after_plan

TEST(EvaluateAfterPlanTest, MatchesDirectOutcomeForFloodMin) {
  // FloodMin {0,1,1}, t=1: delivering everything pins the outcome to 0;
  // hiding the 0-holder entirely pins it to 1. Query both mid-execution.
  FloodMinFactory factory({1, false});
  bool probed = false;
  ProbeAdversary probe([&](const WorldView& w) {
    ValencyOptions vopts;
    vopts.max_depth = 6;

    const auto keep = evaluate_after_plan(w, FaultPlan{}, vopts, 2.0);
    EXPECT_TRUE(keep.min_r.exact());
    EXPECT_DOUBLE_EQ(keep.min_r.lo, 0.0);
    EXPECT_DOUBLE_EQ(keep.max_r.hi, 0.0);

    FaultPlan hide;
    hide.crashes.push_back({0, DynBitset(w.n())});  // silence the 0-holder
    const auto hidden = evaluate_after_plan(w, hide, vopts, 2.0);
    EXPECT_DOUBLE_EQ(hidden.min_r.lo, 1.0);
    EXPECT_DOUBLE_EQ(hidden.max_r.hi, 1.0);
    probed = true;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  run_once(factory, {Bit::Zero, Bit::One, Bit::One}, probe, opts);
  EXPECT_TRUE(probed);
}

TEST(EvaluateAfterPlanTest, BudgetThreadsThroughTheFork) {
  // With the single budgeted crash spent by the queried plan, the child
  // evaluation must not allow further crashes: FloodMin {0,1,1} after
  // crashing a 1-sender still decides 0 under every continuation.
  FloodMinFactory factory({1, false});
  bool probed = false;
  ProbeAdversary probe([&](const WorldView& w) {
    ValencyOptions vopts;
    vopts.max_depth = 6;
    FaultPlan hide_one;
    hide_one.crashes.push_back({1, DynBitset(w.n())});
    const auto v = evaluate_after_plan(w, hide_one, vopts, 2.0);
    EXPECT_DOUBLE_EQ(v.min_r.hi, 0.0);
    EXPECT_DOUBLE_EQ(v.max_r.hi, 0.0) << "no budget left to hide the 0";
    probed = true;
  });
  EngineOptions opts;
  opts.t_budget = 1;
  run_once(factory, {Bit::Zero, Bit::One, Bit::One}, probe, opts);
  EXPECT_TRUE(probed);
}

TEST(EvaluateAfterPlanTest, RejectsOverBudgetPlans) {
  FloodMinFactory factory({1, false});
  ProbeAdversary probe([&](const WorldView& w) {
    ValencyOptions vopts;
    FaultPlan two;
    two.crashes.push_back({0, DynBitset(w.n())});
    two.crashes.push_back({1, DynBitset(w.n())});
    EXPECT_THROW(evaluate_after_plan(w, two, vopts, 2.0), ArgumentError);
  });
  EngineOptions opts;
  opts.t_budget = 1;
  run_once(factory, {Bit::Zero, Bit::One, Bit::One}, probe, opts);
}

// ------------------------------------------------- the played §3 strategy

TEST(ExactValencyAdversaryTest, ForcesControlWithASingleCrash) {
  // With t = 1 every action at the round-1 decision point commits the
  // outcome; the §3.5 min-r fallback spends its crash to force 0 — the
  // value the baseline never decides on this input. Control, not delay,
  // is what a single crash buys at this scale.
  SynRanFactory factory;
  ExactValencyAdversary adv({12});
  EngineOptions opts;
  opts.t_budget = 1;
  opts.per_round_cap = 1;
  opts.seed = 5;
  opts.max_rounds = 200;
  const auto res =
      run_once(factory, {Bit::Zero, Bit::One, Bit::One}, adv, opts);
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(res.agreement);
  EXPECT_EQ(res.decision, Bit::Zero);
  EXPECT_EQ(res.crashes_total, 1u);

  NoAdversary none;
  const auto base =
      run_once(factory, {Bit::Zero, Bit::One, Bit::One}, none, opts);
  EXPECT_EQ(base.decision, Bit::One);  // the baseline heads to 1
  EXPECT_FALSE(adv.chosen_classes().empty());
}

TEST(ExactValencyAdversaryTest, WithTwoCrashesStretchesOrControls) {
  // With budget 2 the strategy keeps a live option open longer: across
  // seeds it must stay safe, spend budget, and in aggregate either extend
  // the run beyond the 2-round baseline or force the minority value.
  SynRanFactory factory;
  std::size_t stretched = 0, flipped = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ExactValencyAdversary adv({10});
    EngineOptions opts;
    opts.t_budget = 2;
    opts.per_round_cap = 1;
    opts.seed = seed;
    opts.max_rounds = 200;
    const auto res =
        run_once(factory, {Bit::Zero, Bit::One, Bit::One}, adv, opts);
    ASSERT_TRUE(res.terminated) << "seed " << seed;
    ASSERT_TRUE(res.agreement) << "seed " << seed;
    EXPECT_GE(res.crashes_total, 1u) << "seed " << seed;
    if (res.rounds_to_decision > 2) ++stretched;
    if (res.decision == Bit::Zero) ++flipped;
  }
  EXPECT_GT(stretched, 3u);  // most seeds run past the baseline's 2 rounds
  EXPECT_GT(flipped, 0u);    // and some are forced to the minority value
}

TEST(ExactValencyAdversaryTest, RefusesLargeSystems) {
  SynRanFactory factory;
  ExactValencyAdversary adv;
  EngineOptions opts;
  opts.t_budget = 2;
  EXPECT_THROW(run_once(factory, std::vector<Bit>(8, Bit::One), adv, opts),
               ArgumentError);
}

}  // namespace
}  // namespace synran
