// synran-trace/2 binary format: round-trip fidelity against the JSONL
// twin, streaming aggregation parity with the batch's own statistics, and
// hostile-input behavior of the reader — truncation at every byte, flipped
// magic/version bytes, corrupt varints, oversized error lengths, and
// fuzz-style mutations must all end in obs::IoError (or a clean EOF at a
// record boundary), never anything undefined. CI runs this suite under
// ASan/UBSan, which is what turns "never UB" from a comment into a check.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/coinbias.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "obs/io_error.hpp"
#include "obs/trace_aggregate.hpp"
#include "obs/trace_binary.hpp"
#include "obs/trace_format.hpp"
#include "obs/trace_reader.hpp"
#include "obs/trace_record.hpp"
#include "obs/trace_writer.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"

namespace synran {
namespace {

AdversaryFactory coinbias() {
  return [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<CoinBiasAdversary>(CoinBiasOptions{0.55, true,
                                                               seed});
  };
}

/// One small attacked batch's callback stream, captured once.
const std::vector<obs::TraceRecord>& batch_records() {
  static const std::vector<obs::TraceRecord> records = [] {
    std::vector<obs::TraceRecord> recs;
    obs::TraceRecorder recorder(recs);
    SynRanFactory protocol;
    RepeatSpec spec;
    spec.n = 16;
    spec.pattern = InputPattern::Half;
    spec.reps = 5;
    spec.seed = 0xBEEF;
    spec.engine.t_budget = 8;
    spec.engine.observer = &recorder;
    run_repeated(protocol, coinbias(), spec);
    return recs;
  }();
  return records;
}

/// A synthetic omission-mode stream exercising the gated fields and
/// extreme values (a top-bit seed, zero rounds) without needing an
/// omission adversary.
std::vector<obs::TraceRecord> omission_records() {
  std::vector<obs::TraceRecord> recs;
  obs::TraceRecorder recorder(recs);

  obs::RunInfo info;
  info.n = 32;
  info.t_budget = 16;
  info.per_round_cap = 3;
  info.seed = 0xFFFF'FFFF'FFFF'FFF5ULL;
  info.omission_budget = 40;
  info.omission_round_cap = 7;
  recorder.on_run_begin(info);

  obs::RoundObservation round;
  round.round = 1;
  round.alive = 32;
  round.senders = 32;
  round.ones = 16;
  round.zeros = 16;
  round.budget_left = 16;
  round.crashes = 2;
  round.delivered = 960;
  round.omissions = 3;
  round.omitted = 11;
  recorder.on_round_end(round);

  obs::RunObservation end;
  end.terminated = true;
  end.agreement = true;
  end.has_decision = true;
  end.decision = 1;
  end.rounds_to_decision = 1;
  end.rounds_to_halt = 2;
  end.crashes_total = 2;
  end.messages_delivered = 960;
  end.omissions_total = 3;
  end.messages_omitted = 11;
  end.survivors = 30;
  recorder.on_run_end(end);

  recorder.on_run_abandoned(
      obs::RunAbandoned{1, 0x8000'0000'0000'0001ULL, 0, "setup exploded"});
  return recs;
}

std::string to_jsonl(const std::vector<obs::TraceRecord>& records) {
  std::ostringstream out;
  obs::JsonlTraceWriter writer(out);
  obs::replay(records, writer);
  writer.close();
  return out.str();
}

std::string to_binary(const std::vector<obs::TraceRecord>& records) {
  std::ostringstream out;
  obs::BinaryTraceWriter writer(out, obs::Trace2Header{2, "deadbeef"});
  obs::replay(records, writer);
  writer.close();
  return out.str();
}

/// Decodes a binary buffer back into records; throws IoError on damage.
std::vector<obs::TraceRecord> decode(const std::string& binary) {
  std::istringstream in(binary);
  obs::BinaryTraceReader reader(in);
  std::vector<obs::TraceRecord> records;
  obs::TraceRecord record;
  while (reader.next(record)) records.push_back(record);
  return records;
}

// ------------------------------------------------------------- round trips

TEST(TraceBinRoundTrip, BinaryDecodesBackToTheExactJsonl) {
  const std::string direct = to_jsonl(batch_records());
  const std::string recovered = to_jsonl(decode(to_binary(batch_records())));
  EXPECT_FALSE(direct.empty());
  EXPECT_EQ(direct, recovered);
}

TEST(TraceBinRoundTrip, JsonlDecodesBackToTheExactBinary) {
  const std::string direct = to_binary(batch_records());
  std::istringstream in(to_jsonl(batch_records()));
  obs::JsonlTraceReader reader(in);
  std::vector<obs::TraceRecord> records;
  obs::TraceRecord record;
  while (reader.next(record)) records.push_back(record);
  EXPECT_EQ(direct, to_binary(records));
}

TEST(TraceBinRoundTrip, OmissionFieldsAndExtremeValuesSurvive) {
  const auto records = omission_records();
  EXPECT_EQ(to_jsonl(records), to_jsonl(decode(to_binary(records))));
  const auto decoded = decode(to_binary(records));
  ASSERT_EQ(decoded.size(), records.size());
  EXPECT_EQ(decoded[0].begin.seed, 0xFFFF'FFFF'FFFF'FFF5ULL);
  EXPECT_EQ(decoded[0].begin.omission_budget, 40u);
  EXPECT_EQ(decoded[1].round.omitted, 11u);
  EXPECT_EQ(decoded[3].abandoned.seed, 0x8000'0000'0000'0001ULL);
  EXPECT_EQ(decoded[3].abandoned.error, "setup exploded");
}

TEST(TraceBinRoundTrip, CorruptionFieldsRideAfterTheOmissionExtras) {
  // A stream with both fault families active: the corruption varint pair is
  // encoded after the omission pair on every record kind, and both must
  // survive the binary round trip exactly.
  std::vector<obs::TraceRecord> recs;
  obs::TraceRecorder recorder(recs);

  obs::RunInfo info;
  info.n = 24;
  info.t_budget = 8;
  info.seed = 0xFEED;
  info.omission_budget = 12;
  info.omission_round_cap = 2;
  info.byzantine_budget = 9;
  info.byzantine_round_cap = 3;
  recorder.on_run_begin(info);

  obs::RoundObservation round;
  round.round = 1;
  round.alive = 24;
  round.senders = 24;
  round.ones = 12;
  round.zeros = 12;
  round.budget_left = 8;
  round.delivered = 552;
  round.omissions = 2;
  round.omitted = 5;
  round.corruptions = 3;
  round.corrupted = 17;
  recorder.on_round_end(round);

  obs::RunObservation end;
  end.terminated = true;
  end.agreement = true;
  end.has_decision = true;
  end.decision = 0;
  end.rounds_to_decision = 1;
  end.rounds_to_halt = 2;
  end.messages_delivered = 552;
  end.omissions_total = 2;
  end.messages_omitted = 5;
  end.corruptions_total = 3;
  end.messages_corrupted = 17;
  end.survivors = 24;
  recorder.on_run_end(end);

  EXPECT_EQ(to_jsonl(recs), to_jsonl(decode(to_binary(recs))));
  const auto decoded = decode(to_binary(recs));
  ASSERT_EQ(decoded.size(), recs.size());
  EXPECT_EQ(decoded[0].begin.byzantine_budget, 9u);
  EXPECT_EQ(decoded[0].begin.byzantine_round_cap, 3u);
  EXPECT_EQ(decoded[1].round.omitted, 5u);
  EXPECT_EQ(decoded[1].round.corruptions, 3u);
  EXPECT_EQ(decoded[1].round.corrupted, 17u);
  EXPECT_EQ(decoded[2].end.messages_corrupted, 17u);
}

TEST(TraceBinRoundTrip, HeaderMetadataSurvives) {
  std::istringstream in(to_binary(batch_records()));
  obs::BinaryTraceReader reader(in);
  EXPECT_EQ(reader.seed_schema(), 2u);
  EXPECT_EQ(reader.git_rev(), "deadbeef");
}

TEST(TraceBinRoundTrip, EmptyTraceIsAValidHeaderOnlyFile) {
  const std::string empty = to_binary({});
  EXPECT_EQ(empty.size(), obs::kTrace2HeaderSize);
  EXPECT_TRUE(decode(empty).empty());
}

// ------------------------------------------------------------- aggregation

TEST(TraceAggregate, BinaryTraceStatsMatchTheBatchStatistics) {
  SynRanFactory protocol;
  RepeatSpec spec;
  spec.n = 16;
  spec.pattern = InputPattern::Half;
  spec.reps = 5;
  spec.seed = 0xBEEF;
  spec.engine.t_budget = 8;
  const auto stats = run_repeated(protocol, coinbias(), spec);

  for (const bool binary : {true, false}) {
    const std::string trace = binary ? to_binary(batch_records())
                                     : to_jsonl(batch_records());
    std::istringstream in(trace);
    obs::TraceAggregator agg;
    obs::TraceRecord record;
    if (binary) {
      obs::BinaryTraceReader reader(in);
      while (reader.next(record)) agg.add(record);
    } else {
      obs::JsonlTraceReader reader(in);
      while (reader.next(record)) agg.add(record);
    }
    EXPECT_EQ(agg.metrics().to_json().dump(),
              stats.metrics().to_json().dump())
        << (binary ? "binary" : "jsonl");
    EXPECT_EQ(agg.runs(), spec.reps);
  }
}

// ----------------------------------------------------------- hostile input

/// Reads `data` to completion; true on success, false when the reader threw
/// IoError. Anything else propagates and fails the test (under ASan/UBSan,
/// memory errors abort outright).
bool reads_cleanly(const std::string& data) {
  try {
    decode(data);
    return true;
  } catch (const obs::IoError&) {
    return false;
  }
}

TEST(TraceBinHostile, EveryTruncationFailsCleanlyOrEndsAtABoundary) {
  const std::string full = to_binary(batch_records());
  std::size_t clean = 0;
  for (std::size_t len = 0; len < full.size(); ++len) {
    if (reads_cleanly(full.substr(0, len))) ++clean;
  }
  // Header-only and any whole-record prefix read cleanly; a cut inside the
  // header or a record must throw. With 5 runs there are few boundaries.
  EXPECT_GT(clean, 0u);
  EXPECT_LT(clean, full.size() / 2);
  EXPECT_TRUE(reads_cleanly(full));
}

TEST(TraceBinHostile, BadMagicIsRejected) {
  std::string data = to_binary(batch_records());
  data[0] ^= 0x01;
  EXPECT_THROW(decode(data), obs::IoError);
}

TEST(TraceBinHostile, WrongVersionIsRejected) {
  std::string data = to_binary(batch_records());
  data[8] = 0x839 & 0xFF;  // version word no longer kTrace2Version
  data[9] = 0x839 >> 8;
  EXPECT_THROW(decode(data), obs::IoError);
}

TEST(TraceBinHostile, EmptyAndHeaderFragmentAreRejected) {
  EXPECT_THROW(decode(""), obs::IoError);
  EXPECT_THROW(decode(to_binary({}).substr(0, 10)), obs::IoError);
}

TEST(TraceBinHostile, OverlongVarintIsRejected) {
  std::string data = to_binary({});
  data += static_cast<char>(obs::kTrace2KindRunBegin);
  data += '\0';  // flags: no omissions
  data.append(obs::kTrace2MaxVarintBytes, static_cast<char>(0xFF));
  EXPECT_THROW(decode(data), obs::IoError);
}

TEST(TraceBinHostile, UnknownRecordKindIsRejected) {
  std::string data = to_binary({});
  data += static_cast<char>(0x77);
  EXPECT_THROW(decode(data), obs::IoError);
}

TEST(TraceBinHostile, UnknownFlagBitsAreRejected) {
  std::string run_begin = to_binary({});
  run_begin += static_cast<char>(obs::kTrace2KindRunBegin);
  run_begin += static_cast<char>(0x80);  // undefined run_begin flag
  EXPECT_THROW(decode(run_begin), obs::IoError);
}

TEST(TraceBinHostile, OversizedErrorLengthCannotDriveAllocation) {
  // run_abandoned with error_len far past kTrace2MaxErrorBytes: the reader
  // must reject the length, not trust it and allocate.
  std::string data = to_binary({});
  data += static_cast<char>(obs::kTrace2KindRunAbandoned);
  data += '\x01';  // rep
  data += '\x01';  // seed
  data += '\x00';  // attempt
  // error_len = 1 GiB as LEB128 (0x40000000).
  data += static_cast<char>(0x80);
  data += static_cast<char>(0x80);
  data += static_cast<char>(0x80);
  data += static_cast<char>(0x80);
  data += static_cast<char>(0x04);
  EXPECT_THROW(decode(data), obs::IoError);
}

TEST(TraceBinHostile, RandomMutationsNeverEscapeIoError) {
  const std::string pristine = to_binary(batch_records());
  Xoshiro256 rng(0x72ACE);
  for (int trial = 0; trial < 300; ++trial) {
    std::string data = pristine;
    const int flips = 1 + static_cast<int>(rng.next() % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.next() % data.size();
      data[at] = static_cast<char>(rng.next() & 0xFF);
    }
    reads_cleanly(data);  // success or IoError both fine; UB is the bug
  }
}

TEST(TraceBinHostile, RandomGarbageAfterAValidHeaderNeverEscapesIoError) {
  const std::string header = to_binary({});
  Xoshiro256 rng(0x6A7BA6E);
  for (int trial = 0; trial < 300; ++trial) {
    std::string data = header;
    const std::size_t len = rng.next() % 64;
    for (std::size_t i = 0; i < len; ++i)
      data += static_cast<char>(rng.next() & 0xFF);
    reads_cleanly(data);
  }
}

}  // namespace
}  // namespace synran
