// Tests for the bench harness plumbing: CSV naming (collision-free),
// the BENCH_*.json report builder, timing extraction, and the experiment
// trace/report environment hooks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_async.hpp"
#include "bench_util.hpp"

namespace synran::bench {
namespace {

namespace fs = std::filesystem;

/// Sets an environment variable for one test and restores on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BenchCsvSlug, LowercasesAndCollapsesPunctuation) {
  EXPECT_EQ(csv_slug("E1a: t = n/2"), "e1a-t-n-2");
  EXPECT_EQ(csv_slug("already-clean"), "already-clean");
  EXPECT_EQ(csv_slug("---"), "table");
  EXPECT_EQ(csv_slug(""), "table");
}

TEST(BenchCsvNames, CollidingSlugsGetNumericSuffixes) {
  auto& reg = CsvNameRegistry::instance();
  reg.reset();
  EXPECT_EQ(reg.unique("dup"), "dup");
  EXPECT_EQ(reg.unique("dup"), "dup-2");
  EXPECT_EQ(reg.unique("dup"), "dup-3");
  EXPECT_EQ(reg.unique("other"), "other");
  reg.reset();
  EXPECT_EQ(reg.unique("dup"), "dup");
}

TEST(BenchCsvNames, EmitWritesDistinctFilesForSameTitle) {
  const fs::path dir = fs::path(testing::TempDir()) / "synran_csv_dup";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ScopedEnv env("SYNRAN_CSV_DIR", dir.string());
  CsvNameRegistry::instance().reset();
  BenchReport::instance().reset();

  Table first("Same Title");
  first.header({"x"}).row({1.0});
  Table second("Same Title");
  second.header({"x"}).row({2.0});
  emit(first);
  emit(second);

  EXPECT_TRUE(fs::exists(dir / "same-title.csv"));
  EXPECT_TRUE(fs::exists(dir / "same-title-2.csv"));
  EXPECT_NE(slurp(dir / "same-title.csv"), slurp(dir / "same-title-2.csv"));
  fs::remove_all(dir);
}

TEST(BenchReportTest, ExperimentNameFromArgv0) {
  EXPECT_EQ(experiment_name_from("/path/to/bench_e1_synran_scaling"),
            "e1_synran_scaling");
  EXPECT_EQ(experiment_name_from("bench_e9_valency_exact"),
            "e9_valency_exact");
  EXPECT_EQ(experiment_name_from("./custom_tool"), "custom_tool");
}

TEST(BenchReportTest, BuildsSchemaConformingJson) {
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("utest");
  report.note_grid(64, 32);
  report.note_grid(64, 32);  // duplicates collapse
  report.note_grid(128, 64);

  Table table("U: demo");
  table.header({"n", "rounds", "label"});
  table.row({static_cast<long long>(64), 3.5, std::string("ok")});
  report.add_table(table);

  const auto doc = report.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), kBenchSchema);
  EXPECT_EQ(doc.find("experiment")->as_string(), "utest");
  EXPECT_EQ(doc.find("seed")->as_int(), static_cast<std::int64_t>(kSeed));
  EXPECT_FALSE(doc.find("git_rev")->as_string().empty());
  ASSERT_EQ(doc.find("grid")->as_array().size(), 2u);
  EXPECT_EQ(doc.find("grid")->as_array()[1].find("n")->as_int(), 128);
  const auto& tables = doc.find("tables")->as_array();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].find("title")->as_string(), "U: demo");
  const auto& row = tables[0].find("rows")->as_array()[0].as_array();
  EXPECT_TRUE(row[0].is_int());
  EXPECT_TRUE(row[1].is_double());
  EXPECT_EQ(row[2].as_string(), "ok");

  // Identical content serializes identically (the determinism the
  // acceptance criterion demands of seeded fields).
  EXPECT_EQ(doc.dump(), report.to_json().dump());
  report.reset();
}

TEST(BenchReportTest, WriteLandsInRequestedDirectory) {
  const fs::path dir = fs::path(testing::TempDir()) / "synran_bench_out";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("write_test");
  const std::string path = report.write(dir.string());
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(fs::exists(dir / "BENCH_write_test.json"));
  const auto parsed = obs::JsonValue::parse(slurp(path));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->as_string(), kBenchSchema);
  report.reset();
  fs::remove_all(dir);
}

TEST(BenchTimings, ExtractsTheStableGoogleBenchmarkFields) {
  const std::string gbench = R"({
    "context": {"date": "ignored", "host_name": "ignored"},
    "benchmarks": [
      {"name": "BM_Round/64", "run_type": "iteration", "iterations": 100,
       "real_time": 1.5, "cpu_time": 1.25, "time_unit": "ns",
       "threads": 1}
    ]
  })";
  const auto timings = extract_timings(gbench);
  ASSERT_TRUE(timings.is_array());
  ASSERT_EQ(timings.as_array().size(), 1u);
  const auto& t = timings.as_array()[0];
  EXPECT_EQ(t.find("name")->as_string(), "BM_Round/64");
  EXPECT_EQ(t.find("iterations")->as_int(), 100);
  EXPECT_DOUBLE_EQ(t.find("real_time")->as_double(), 1.5);
  EXPECT_EQ(t.find("time_unit")->as_string(), "ns");
  EXPECT_EQ(t.find("threads"), nullptr);  // non-schema fields dropped

  EXPECT_EQ(extract_timings("not json").as_array().size(), 0u);
  EXPECT_EQ(extract_timings("{}").as_array().size(), 0u);
}

TEST(BenchTrace, AttackRunHonoursTraceDirAndNotesGrid) {
  const fs::path dir = fs::path(testing::TempDir()) / "synran_trace_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ScopedEnv env("SYNRAN_TRACE_DIR", dir.string());
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("tracetest");

  SynRanFactory factory;
  const auto stats =
      attack_run(factory, 8, 4, InputPattern::Half, 3, kSeed);
  EXPECT_EQ(stats.reps(), 3u);
  ASSERT_EQ(report.to_json().find("grid")->as_array().size(), 1u);

  // Exactly one trace file for the batch, tagged with the grid point, and
  // holding one run_begin per rep.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    files.push_back(entry.path());
  ASSERT_EQ(files.size(), 1u);
  EXPECT_NE(files[0].filename().string().find("tracetest"),
            std::string::npos);
  EXPECT_NE(files[0].filename().string().find("n8-t4"), std::string::npos);
  const std::string contents = slurp(files[0]);
  std::size_t begins = 0;
  std::istringstream lines(contents);
  std::string line;
  while (std::getline(lines, line)) {
    const auto ev = obs::JsonValue::parse(line);
    ASSERT_TRUE(ev.has_value()) << line;
    if (ev->find("event")->as_string() == "run_begin") ++begins;
  }
  EXPECT_EQ(begins, 3u);
  report.reset();
  fs::remove_all(dir);
}

TEST(BenchTrace, NoEnvMeansNoObserver) {
  ScopedEnv env("SYNRAN_TRACE_DIR", "");
  auto trace = open_trace("tag");
  EXPECT_EQ(trace.observer(), nullptr);
}

TEST(ResilienceBench, EnvOverridesPolicyAndRetries) {
  {
    ScopedEnv policy("SYNRAN_FAIL_POLICY", "quarantine");
    ScopedEnv retries("SYNRAN_REP_RETRIES", "2");
    EXPECT_EQ(bench_fail_policy(), FailurePolicy::Quarantine);
    EXPECT_EQ(bench_rep_retries(), 2u);
  }
  {
    ScopedEnv policy("SYNRAN_FAIL_POLICY", "fail_fast");
    EXPECT_EQ(bench_fail_policy(FailurePolicy::Quarantine),
              FailurePolicy::FailFast);
  }
  {
    // A typo must abort the sweep, not silently run under the fallback.
    ScopedEnv policy("SYNRAN_FAIL_POLICY", "quarentine");
    EXPECT_THROW(bench_fail_policy(), ArgumentError);
  }
}

TEST(ResilienceBench, PartialAndFailuresRideAlongInTheReport) {
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("shape_test");

  // Untouched reports keep the exact pre-resilience JSON shape.
  const auto before = report.to_json();
  EXPECT_EQ(before.find("partial"), nullptr);
  EXPECT_EQ(before.find("failures"), nullptr);

  report.mark_partial();
  report.note_failure(3, RepFailure{2, 77, 2, "boom"});
  const auto doc = report.to_json();
  ASSERT_NE(doc.find("partial"), nullptr);
  EXPECT_TRUE(doc.find("partial")->as_bool());
  const auto& fails = doc.find("failures")->as_array();
  ASSERT_EQ(fails.size(), 1u);
  EXPECT_EQ(fails[0].find("cell")->as_int(), 3);
  EXPECT_EQ(fails[0].find("rep")->as_int(), 2);
  EXPECT_EQ(fails[0].find("seed")->as_int(), 77);
  EXPECT_EQ(fails[0].find("attempts")->as_int(), 2);
  EXPECT_EQ(fails[0].find("error")->as_string(), "boom");
  report.reset();
}

TEST(ResilienceBench, UnwritableBenchDirLeavesNoPartialOrTempFiles) {
  // A path beneath a regular file can never be a directory (robust even as
  // root, unlike permission tricks): write() must report failure by
  // returning "" and leave neither the report nor its temp file behind.
  const fs::path block = fs::path(testing::TempDir()) / "synran_bench_block";
  fs::remove(block);
  { std::ofstream out(block); }
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("blocked");
  const std::string dir = (block / "sub").string();
  EXPECT_EQ(report.write(dir), "");
  EXPECT_FALSE(fs::exists(dir + "/BENCH_blocked.json"));
  EXPECT_FALSE(fs::exists(dir + "/BENCH_blocked.json.tmp"));
  report.reset();
  fs::remove(block);
}

TEST(ResilienceBench, RunCellRecordsThenRestoresFromTheLedger) {
  const fs::path dir = fs::path(testing::TempDir()) / "synran_ckpt_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ScopedEnv ckpt_dir("SYNRAN_CKPT_DIR", dir.string());
  ScopedEnv no_trace("SYNRAN_TRACE_DIR", "");
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("ckpt_cell");
  CheckpointState::instance().reset();

  SynRanFactory factory;
  RepeatSpec spec;
  spec.n = 8;
  spec.pattern = InputPattern::Half;
  spec.reps = 4;
  spec.seed = kSeed;
  spec.engine.t_budget = 3;
  const std::string fresh =
      run_cell(factory, no_adversary_factory(), spec, "utest")
          .checkpoint_json()
          .dump();
  EXPECT_TRUE(fs::exists(dir / "CKPT_ckpt_cell.jsonl"));

  // Second sweep over the same grid with SYNRAN_RESUME=1: cell 0 must be
  // served from the ledger (the notice proves the engine never ran).
  ScopedEnv resume("SYNRAN_RESUME", "1");
  CheckpointState::instance().reset();
  testing::internal::CaptureStdout();
  const std::string restored =
      run_cell(factory, no_adversary_factory(), spec, "utest")
          .checkpoint_json()
          .dump();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("[ckpt: cell 0 restored]"), std::string::npos) << out;
  EXPECT_EQ(fresh, restored);

  // A changed spec (different cell key) must recompute, not serve stale
  // data recorded for the old sweep.
  CheckpointState::instance().reset();
  RepeatSpec changed = spec;
  changed.reps = 5;
  testing::internal::CaptureStdout();
  run_cell(factory, no_adversary_factory(), changed, "utest");
  const std::string out2 = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out2.find("restored"), std::string::npos) << out2;

  CheckpointState::instance().reset();
  report.reset();
  fs::remove_all(dir);
}

TEST(ResilienceBench, AsyncCellRecordsThenRestoresByteIdentically) {
  const fs::path dir = fs::path(testing::TempDir()) / "synran_async_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ScopedEnv ckpt_dir("SYNRAN_CKPT_DIR", dir.string());
  ScopedEnv no_trace("SYNRAN_TRACE_DIR", "");
  auto& report = BenchReport::instance();
  report.reset();
  report.set_experiment("async_ckpt_cell");
  CheckpointState::instance().reset();

  BenOrAsyncFactory factory;
  AsyncRepeatSpec spec;
  spec.n = 6;
  spec.pattern = InputPattern::Half;
  spec.reps = 4;
  spec.seed = kSeed;
  spec.engine.t_budget = 1;
  const std::string fresh =
      run_async_cell(factory, random_scheduler_factory(),
                     fixed_delay_factory(1), spec, "utest-async")
          .checkpoint_json()
          .dump();
  EXPECT_TRUE(fs::exists(dir / "CKPT_async_ckpt_cell.jsonl"));

  // Resumed sweep: the cell must come back from the ledger byte-identical
  // (the notice proves the async engine never ran).
  ScopedEnv resume("SYNRAN_RESUME", "1");
  CheckpointState::instance().reset();
  testing::internal::CaptureStdout();
  const std::string restored =
      run_async_cell(factory, random_scheduler_factory(),
                     fixed_delay_factory(1), spec, "utest-async")
          .checkpoint_json()
          .dump();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("[ckpt: cell 0 restored]"), std::string::npos) << out;
  EXPECT_EQ(fresh, restored);

  // A changed async spec (different cell key) recomputes instead of
  // serving the stale record.
  CheckpointState::instance().reset();
  AsyncRepeatSpec changed = spec;
  changed.reps = 5;
  testing::internal::CaptureStdout();
  run_async_cell(factory, random_scheduler_factory(), fixed_delay_factory(1),
                 changed, "utest-async");
  const std::string out2 = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out2.find("restored"), std::string::npos) << out2;

  CheckpointState::instance().reset();
  report.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace synran::bench
