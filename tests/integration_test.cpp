// Cross-module property tests: every (protocol × adversary × input-pattern ×
// size) combination must preserve Agreement, Validity, and Termination, the
// three conditions of the consensus problem (§3.1), plus the engine-level
// budget discipline — across many seeds.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "adversary/basic.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/nonadaptive.hpp"
#include "analysis/theory.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "sim/engine.hpp"

namespace synran {
namespace {

enum class ProtoKind {
  SynRan,
  SynRanNoDet,
  BenOrSym,
  FloodMin,
  FloodMinEarly,
  LeaderCoin
};
enum class AdvKind {
  None,
  Random,
  Chain,
  CoinBias,
  CoinBiasCapped,
  Oblivious,
  LeaderKiller
};

std::unique_ptr<ProcessFactory> make_factory(ProtoKind kind, std::uint32_t t) {
  switch (kind) {
    case ProtoKind::SynRan:
      return std::make_unique<SynRanFactory>();
    case ProtoKind::SynRanNoDet: {
      SynRanOptions o;
      o.det_handoff = false;
      return std::make_unique<SynRanFactory>(o);
    }
    case ProtoKind::BenOrSym: {
      SynRanOptions o;
      o.coin_rule = CoinRule::Symmetric;
      return std::make_unique<SynRanFactory>(o);
    }
    case ProtoKind::FloodMin:
      return std::make_unique<FloodMinFactory>(FloodMinOptions{t, false});
    case ProtoKind::FloodMinEarly:
      return std::make_unique<FloodMinFactory>(FloodMinOptions{t, true});
    case ProtoKind::LeaderCoin:
      return std::make_unique<LeaderCoinFactory>();
  }
  return nullptr;
}

AdversaryFactory make_adversaries(AdvKind kind, std::uint32_t n) {
  switch (kind) {
    case AdvKind::None:
      return no_adversary_factory();
    case AdvKind::Random:
      return [](std::uint64_t seed) {
        return std::make_unique<RandomCrashAdversary>(
            RandomCrashAdversary::Options{2, 0.6, seed});
      };
    case AdvKind::Chain:
      return [](std::uint64_t) {
        return std::make_unique<ChainHidingAdversary>();
      };
    case AdvKind::CoinBias:
      return [](std::uint64_t seed) {
        return std::make_unique<CoinBiasAdversary>(
            CoinBiasOptions{0.55, true, seed});
      };
    case AdvKind::CoinBiasCapped:
      return [n](std::uint64_t seed) {
        (void)n;
        return std::make_unique<CoinBiasAdversary>(
            CoinBiasOptions{0.55, false, seed});
      };
    case AdvKind::Oblivious:
      return [](std::uint64_t seed) {
        return std::make_unique<ObliviousAdversary>(
            ObliviousOptions{40, seed});
      };
    case AdvKind::LeaderKiller:
      return [](std::uint64_t) {
        return std::make_unique<LeaderKillerAdversary>();
      };
  }
  return no_adversary_factory();
}

const char* proto_name(ProtoKind k) {
  switch (k) {
    case ProtoKind::SynRan:
      return "synran";
    case ProtoKind::SynRanNoDet:
      return "synran-nodet";
    case ProtoKind::BenOrSym:
      return "benor-sym";
    case ProtoKind::FloodMin:
      return "floodmin";
    case ProtoKind::FloodMinEarly:
      return "floodmin-early";
    case ProtoKind::LeaderCoin:
      return "leadercoin";
  }
  return "?";
}

const char* adv_name(AdvKind k) {
  switch (k) {
    case AdvKind::None:
      return "none";
    case AdvKind::Random:
      return "random";
    case AdvKind::Chain:
      return "chain";
    case AdvKind::CoinBias:
      return "coinbias";
    case AdvKind::CoinBiasCapped:
      return "coinbias-capped";
    case AdvKind::Oblivious:
      return "oblivious";
    case AdvKind::LeaderKiller:
      return "leader-killer";
  }
  return "?";
}

using GridParam = std::tuple<ProtoKind, AdvKind, InputPattern, std::uint32_t>;

class ConsensusGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConsensusGrid, SafetyLivenessAndBudget) {
  const auto [proto, adv, pattern, n] = GetParam();
  const std::uint32_t t = n / 2;

  const auto factory = make_factory(proto, t);
  RepeatSpec spec;
  spec.n = n;
  spec.pattern = pattern;
  spec.reps = 12;
  spec.seed = 0x5eed0000ULL + n * 131 + static_cast<int>(pattern) * 17 +
              static_cast<int>(proto) * 3 + static_cast<int>(adv);
  spec.engine.t_budget = t;
  spec.engine.max_rounds = 60000;
  if (adv == AdvKind::CoinBiasCapped)
    spec.engine.per_round_cap = static_cast<std::uint32_t>(
        theory::per_round_budget(static_cast<double>(n)));

  const auto stats =
      run_repeated(*factory, make_adversaries(adv, n), spec);

  EXPECT_EQ(stats.non_terminated(), 0u)
      << proto_name(proto) << " vs " << adv_name(adv);
  // The symmetric ablation exists to show what the one-side-bias machinery
  // buys: its agreement guarantee does not survive the adaptive split
  // attack, so only the paper-faithful protocols carry safety assertions
  // against it.
  const bool adaptive_attack =
      adv == AdvKind::CoinBias || adv == AdvKind::CoinBiasCapped;
  // LeaderCoin documents that its agreement only covers view-preserving
  // adversaries (empty-delivery crashes); random/chain crash mid-round with
  // partial masks.
  const bool partial_views = adaptive_attack || adv == AdvKind::Random ||
                             adv == AdvKind::Chain;
  const bool safety_expected =
      !(proto == ProtoKind::BenOrSym && adaptive_attack) &&
      !(proto == ProtoKind::LeaderCoin && partial_views);
  if (safety_expected) {
    EXPECT_EQ(stats.agreement_failures(), 0u)
        << proto_name(proto) << " vs " << adv_name(adv);
    EXPECT_EQ(stats.validity_failures(), 0u)
        << proto_name(proto) << " vs " << adv_name(adv);
  }
  EXPECT_LE(stats.crashes_used().max(), static_cast<double>(t));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllAdversaries, ConsensusGrid,
    ::testing::Combine(
        ::testing::Values(ProtoKind::SynRan, ProtoKind::SynRanNoDet,
                          ProtoKind::BenOrSym, ProtoKind::FloodMin,
                          ProtoKind::FloodMinEarly, ProtoKind::LeaderCoin),
        ::testing::Values(AdvKind::None, AdvKind::Random, AdvKind::Chain,
                          AdvKind::CoinBias, AdvKind::CoinBiasCapped,
                          AdvKind::Oblivious, AdvKind::LeaderKiller),
        ::testing::Values(InputPattern::AllZero, InputPattern::AllOne,
                          InputPattern::Half, InputPattern::Random),
        ::testing::Values(5u, 16u, 33u)),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name =
          std::string(proto_name(std::get<0>(info.param))) + "_" +
          adv_name(std::get<1>(info.param)) + "_" +
          to_string(std::get<2>(info.param)) + "_n" +
          std::to_string(std::get<3>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ----------------------------------------------------- determinism property

TEST(DeterminismTest, IdenticalSeedsReproduceEntireRuns) {
  SynRanFactory factory;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CoinBiasAdversary a1({0.55, true, seed});
    CoinBiasAdversary a2({0.55, true, seed});
    std::vector<Bit> inputs(40, Bit::Zero);
    for (int i = 0; i < 20; ++i) inputs[i] = Bit::One;
    EngineOptions opts;
    opts.t_budget = 20;
    opts.seed = seed;
    const auto r1 = run_once(factory, inputs, a1, opts);
    const auto r2 = run_once(factory, inputs, a2, opts);
    EXPECT_EQ(r1.rounds_to_decision, r2.rounds_to_decision);
    EXPECT_EQ(r1.rounds_to_halt, r2.rounds_to_halt);
    EXPECT_EQ(r1.crashes_total, r2.crashes_total);
    EXPECT_EQ(r1.crashes_per_round, r2.crashes_per_round);
    EXPECT_EQ(r1.decision, r2.decision);
  }
}

// ------------------------------------------------ validity under adversity

TEST(ValidityProperty, UnanimousInputsSurviveHeavyCrashes) {
  // All-1 inputs with the adversary crashing 60% of processes must still
  // decide 1 (the Z=0 rule is what makes this work for SynRan).
  SynRanFactory factory;
  const std::uint32_t n = 50;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCrashAdversary adv({5, 0.9, seed});
    EngineOptions opts;
    opts.t_budget = 30;
    opts.seed = seed;
    opts.max_rounds = 20000;
    const auto res =
        run_once(factory, std::vector<Bit>(n, Bit::One), adv, opts);
    ASSERT_TRUE(res.terminated);
    EXPECT_TRUE(res.agreement);
    EXPECT_EQ(res.decision, Bit::One) << "seed " << seed;
  }
}

TEST(ValidityProperty, AllZeroSurvivesHeavyCrashes) {
  SynRanFactory factory;
  const std::uint32_t n = 50;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCrashAdversary adv({5, 0.9, seed});
    EngineOptions opts;
    opts.t_budget = 30;
    opts.seed = seed;
    opts.max_rounds = 20000;
    const auto res =
        run_once(factory, std::vector<Bit>(n, Bit::Zero), adv, opts);
    ASSERT_TRUE(res.terminated);
    EXPECT_TRUE(res.agreement);
    EXPECT_EQ(res.decision, Bit::Zero) << "seed " << seed;
  }
}

// ----------------------------------------------- deterministic-stage entry

TEST(DeterministicStageProperty, MassCrashForcesHandoffAndStillAgrees) {
  // Crash all but ~√(n/ln n) processes in the first rounds: survivors must
  // enter the deterministic stage and still reach consensus.
  SynRanFactory factory;
  const std::uint32_t n = 64;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomCrashAdversary adv({20, 1.0, seed});
    EngineOptions opts;
    opts.t_budget = n - 3;
    opts.seed = seed;
    opts.max_rounds = 20000;
    std::vector<Bit> inputs(n, Bit::Zero);
    for (std::uint32_t i = 0; i < n; i += 2) inputs[i] = Bit::One;
    const auto res = run_once(factory, inputs, adv, opts);
    ASSERT_TRUE(res.terminated) << "seed " << seed;
    EXPECT_TRUE(res.agreement) << "seed " << seed;
  }
}

// -------------------------------------------------------------- comparison

TEST(ComparisonProperty, SynRanBeatsDeterministicForLargeT) {
  // t = n/2 with n = 256: FloodMin needs t+1 = 129 rounds; SynRan should
  // finish well under 40 even against the coin-bias adversary.
  const std::uint32_t n = 256, t = n / 2;

  RepeatSpec spec;
  spec.n = n;
  spec.pattern = InputPattern::Random;
  spec.reps = 10;
  spec.seed = 99;
  spec.engine.t_budget = t;
  spec.engine.max_rounds = 100000;

  SynRanFactory synran;
  const auto attacked = run_repeated(
      synran,
      [](std::uint64_t seed) {
        return std::make_unique<CoinBiasAdversary>(
            CoinBiasOptions{0.55, true, seed});
      },
      spec);
  ASSERT_TRUE(attacked.all_safe());
  EXPECT_LT(attacked.rounds_to_decision().mean(), 40.0);

  FloodMinFactory flood({t, false});
  NoAdversary none;
  const auto det = run_once(flood, std::vector<Bit>(n, Bit::One), none,
                            spec.engine);
  EXPECT_EQ(det.rounds_to_decision, t + 1);
}

}  // namespace
}  // namespace synran
