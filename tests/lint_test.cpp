// Unit tests for the synran_lint core: every banned pattern must be caught,
// every legitimate idiom must pass, and the allow-trailer must suppress.
// The banned tokens appearing below as fixture strings carry allow-trailers
// so the lint's own sweep over tests/ stays clean — which doubles as a live
// demonstration of the suppression syntax.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "synran_lint/lint.hpp"

namespace synran::lint {
namespace {

std::size_t count_rule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.rule == rule) ++n;
  return n;
}

// ---------------------------------------------------------- classification

TEST(LintClassify, RootsAndRoles) {
  EXPECT_TRUE(classify("src/sim/engine.cpp").scanned);
  EXPECT_TRUE(classify("tests/sim_test.cpp").scanned);
  EXPECT_TRUE(classify("bench/bench_util.hpp").scanned);
  EXPECT_TRUE(classify("examples/quickstart.cpp").scanned);
  EXPECT_FALSE(classify("tools/synran_cli.cpp").scanned);
  EXPECT_FALSE(classify("build/generated.cpp").scanned);

  EXPECT_TRUE(classify("src/common/rng.hpp").is_rng_header);
  EXPECT_TRUE(classify("src/protocols/synran.cpp").protocol_code);
  EXPECT_TRUE(classify("src/async/benor.cpp").protocol_code);
  EXPECT_FALSE(classify("src/adversary/basic.cpp").protocol_code);

  EXPECT_TRUE(classify("src/sim/engine.cpp").library_code);
  EXPECT_FALSE(classify("src/runner/experiment.cpp").library_code);
  EXPECT_FALSE(classify("examples/quickstart.cpp").library_code);

  EXPECT_TRUE(classify("src/obs/metrics.cpp").clock_allowed);
  EXPECT_TRUE(classify("bench/bench_util.hpp").clock_allowed);
  EXPECT_FALSE(classify("src/sim/engine.cpp").clock_allowed);
  EXPECT_FALSE(classify("tests/sim_test.cpp").clock_allowed);

  EXPECT_TRUE(classify("src/exec/executor.cpp").threads_allowed);
  EXPECT_TRUE(classify("src/exec/batch.hpp").threads_allowed);
  EXPECT_FALSE(classify("src/sim/engine.cpp").threads_allowed);
  EXPECT_FALSE(classify("bench/bench_util.hpp").threads_allowed);
}

// ---------------------------------------------------------- banned-random

TEST(LintBannedRandom, EachPrimitiveIsCaught) {
  const char* lines[] = {
      "std::mt19937 gen(42);",          // synran-lint: allow(banned-random)
      "std::mt19937_64 gen;",           // synran-lint: allow(banned-random)
      "std::random_device rd;",         // synran-lint: allow(banned-random)
      "int x = rand() % 6;",            // synran-lint: allow(banned-random)
      "srand(42);",                     // synran-lint: allow(banned-random)
      "int y = std::rand();",           // synran-lint: allow(banned-random)
      "seed = time(nullptr);",          // synran-lint: allow(banned-random)
      "seed = std::time(0);",           // synran-lint: allow(banned-random)
  };
  for (const char* line : lines) {
    const auto f = scan_file("src/sim/foo.cpp", line);
    EXPECT_EQ(count_rule(f, "banned-random"), 1u) << line;
  }
}

TEST(LintBannedRandom, RngHeaderIsExemptAndLookalikesPass) {
  const std::string ok =
      std::string("#pragma once\n") +
      "std::mt19937 would_be_fine_here;";  // synran-lint: allow(banned-random)
  EXPECT_TRUE(scan_file("src/common/rng.hpp", ok).empty());
  // Identifier boundaries: these merely *contain* banned substrings.
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", "int operand(int);").empty());
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", "auto brand(Bit b);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/foo.cpp", "double runtime(Round r);").empty());
}

TEST(LintBannedRandom, AllowTrailerSuppresses) {
  const std::string line =
      std::string("std::mt19937 g; ") +  // synran-lint: allow(banned-random)
      "// synran-lint: allow(banned-random)";
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", line).empty());
}

// ------------------------------------------------------------ coin-source

TEST(LintCoinSource, DirectGeneratorInProtocolCodeFails) {
  const char* line = "Xoshiro256 rng_(seed);";
  EXPECT_EQ(count_rule(scan_file("src/protocols/p.cpp", line), "coin-source"),
            1u);
  EXPECT_EQ(count_rule(scan_file("src/async/p.cpp", line), "coin-source"),
            1u);
  // The same construction is fine in adversaries, tests, and the engine.
  EXPECT_TRUE(scan_file("src/adversary/a.cpp", line).empty());
  EXPECT_TRUE(scan_file("tests/a_test.cpp", line).empty());
}

TEST(LintCoinSource, CoinSourceUseIsFine) {
  EXPECT_TRUE(
      scan_file("src/protocols/p.cpp", "b_ = bit_of(coins.flip());").empty());
}

// ------------------------------------------------- header hygiene rules

TEST(LintHeaders, MissingPragmaOnceFails) {
  const auto f = scan_file("src/sim/h.hpp", "#include <vector>\n");
  ASSERT_EQ(count_rule(f, "pragma-once"), 1u);
  EXPECT_EQ(f.front().line, 1u);
  EXPECT_TRUE(
      scan_file("src/sim/h.hpp", "#pragma once\n#include <vector>\n")
          .empty());
  // Sources don't need it.
  EXPECT_TRUE(scan_file("src/sim/h.cpp", "#include <vector>\n").empty());
}

TEST(LintHeaders, UsingNamespaceInHeaderFails) {
  const std::string h = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(count_rule(scan_file("src/sim/h.hpp", h), "using-namespace"),
            1u);
  // Fine in a .cpp (examples and tools do this deliberately).
  EXPECT_TRUE(
      scan_file("examples/e.cpp", "using namespace synran;\n").empty());
}

TEST(LintIostream, LibraryCodeMayNotPrint) {
  const char* line = "#include <iostream>";
  EXPECT_EQ(count_rule(scan_file("src/sim/engine.cpp", line), "iostream"),
            1u);
  // The runner, examples, tests, and bench may print.
  EXPECT_TRUE(scan_file("src/runner/experiment.cpp", line).empty());
  EXPECT_TRUE(scan_file("examples/e.cpp", line).empty());
  EXPECT_EQ(count_rule(scan_file("bench/bench_util.hpp", line), "iostream"),
            0u);
  // <ostream> for operator<< is fine anywhere.
  EXPECT_TRUE(scan_file("src/sim/trace.cpp", "#include <ostream>").empty());
}

// ------------------------------------------------------------ bare-assert

TEST(LintBareAssert, AssertAndAbortFail) {
  const char* a = "assert(x > 0);";     // synran-lint: allow(bare-assert)
  const char* b = "std::abort();";      // synran-lint: allow(bare-assert)
  EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", a), "bare-assert"), 1u);
  EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", b), "bare-assert"), 1u);
}

TEST(LintBareAssert, StaticAssertAndGtestMacrosPass) {
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "static_assert(sizeof(int) == 4);").empty());
  EXPECT_TRUE(scan_file("tests/t.cpp", "ASSERT_TRUE(ok);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "SYNRAN_CHECK(budget <= t);").empty());
}

// ------------------------------------------------------------- wall-clock

TEST(LintWallClock, ClockReadsOutsideObsAndBenchFail) {
  const char* lines[] = {
      "#include <chrono>",                      // synran-lint: allow(wall-clock)
      "auto t0 = std::chrono::steady_clock::now();",  // synran-lint: allow(wall-clock)
      "steady_clock::time_point tp;",           // synran-lint: allow(wall-clock)
      "system_clock::time_point tp;",           // synran-lint: allow(wall-clock)
      "auto t = high_resolution_clock::now();", // synran-lint: allow(wall-clock)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "wall-clock"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "wall-clock"), 1u)
        << line;
    // Timing belongs to the observability layer and the bench harness.
    EXPECT_EQ(count_rule(scan_file("src/obs/metrics.cpp", line), "wall-clock"),
              0u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/bench_util.hpp", line), "wall-clock"),
              0u)
        << line;
  }
}

TEST(LintWallClock, LookalikesAndTrailerPass) {
  // "synchronous" contains "chrono": identifier boundaries must reject it.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// the synchronous engine of §3.1").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "void steady_clockwork(int);").empty());
  const std::string line =
      std::string("auto t0 = std::chrono::steady_clock::now(); ") +  // synran-lint: allow(wall-clock)
      "// synran-lint: allow(wall-clock)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// ---------------------------------------------------------------- threads

TEST(LintThreads, ThreadingPrimitivesOutsideExecFail) {
  const char* lines[] = {
      "std::thread worker(fn);",        // synran-lint: allow(threads)
      "std::jthread worker(fn);",       // synran-lint: allow(threads)
      "auto f = std::async(fn);",       // synran-lint: allow(threads)
      "std::mutex m;",                  // synran-lint: allow(threads)
      "std::shared_mutex m;",           // synran-lint: allow(threads)
      "#include <thread>",              // synran-lint: allow(threads)
      "#include <mutex>",               // synran-lint: allow(threads)
      "#include <future>",              // synran-lint: allow(threads)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "threads"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/b.cpp", line), "threads"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "threads"), 1u)
        << line;
    // The executor is the one concurrency boundary.
    EXPECT_EQ(count_rule(scan_file("src/exec/executor.cpp", line), "threads"),
              0u)
        << line;
  }
}

TEST(LintThreads, LookalikesAndTrailerPass) {
  // Non-std names and substrings must not trip the identifier-boundary scan.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "unsigned threads = spec.threads;").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// one workspace per thread").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "#include <thread_local_store.hpp>").empty());
  const std::string line =
      std::string("std::mutex trace_gate; ") +  // synran-lint: allow(threads)
      "// synran-lint: allow(threads)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// ---------------------------------------------------------------- signals

TEST(LintSignals, SignalPrimitivesOutsideExecStopperFail) {
  const char* lines[] = {
      "#include <csignal>",             // synran-lint: allow(signals)
      "#include <signal.h>",            // synran-lint: allow(signals)
      "std::signal(SIGINT, handler);",  // synran-lint: allow(signals)
      "signal(SIGTERM, handler);",      // synran-lint: allow(signals)
      "struct sigaction sa;",           // synran-lint: allow(signals)
      "std::raise(SIGINT);",            // synran-lint: allow(signals)
      "volatile std::sig_atomic_t flag;",  // synran-lint: allow(signals)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "signals"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/b.cpp", line), "signals"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "signals"), 1u)
        << line;
    // The stopper owns the one handler and its flag.
    EXPECT_EQ(count_rule(scan_file("src/exec/stopper.cpp", line), "signals"),
              0u)
        << line;
    EXPECT_EQ(count_rule(scan_file("src/exec/stopper.hpp", line), "signals"),
              0u)
        << line;
  }
}

TEST(LintSignals, LookalikesAndTrailerPass) {
  // Identifier boundaries: these merely contain signal-ish substrings.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "void process_signals_done(int);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// the stop signal is cooperative").empty());
  const std::string line =
      std::string("std::raise(SIGINT); ") +  // synran-lint: allow(signals)
      "// synran-lint: allow(signals)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// --------------------------------------------------- tree walk + summary

TEST(LintTree, WalksFixtureTreeAndReportsPerFile) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(testing::TempDir()) / "synran_lint_fixture";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "protocols");
  fs::create_directories(root / "src" / "common");
  fs::create_directories(root / "tools");

  const auto write = [](const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  };
  const std::string bad_random =
      std::string("std::mt19937 gen;\n");  // synran-lint: allow(banned-random)
  write(root / "src" / "protocols" / "bad.cpp",
        "Xoshiro256 rng(1);\n" + bad_random);
  write(root / "src" / "common" / "ok.hpp",
        "#pragma once\ninline int two() { return 2; }\n");
  // Outside the scanned roots: never visited even with violations.
  write(root / "tools" / "ignored.cpp", bad_random);

  std::size_t files = 0;
  const auto findings = scan_tree(root.string(), &files);
  EXPECT_EQ(files, 2u);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/protocols/bad.cpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[0].rule, "coin-source");
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[1].rule, "banned-random");

  EXPECT_EQ(summary_json(findings, files),
            "{\"files_scanned\":2,\"findings\":2,\"by_rule\":"
            "{\"banned-random\":1,\"coin-source\":1}}");
  fs::remove_all(root);
}

TEST(LintTree, CleanTreeSummary) {
  const std::vector<Finding> none;
  EXPECT_EQ(summary_json(none, 7),
            "{\"files_scanned\":7,\"findings\":0,\"by_rule\":{}}");
}

}  // namespace
}  // namespace synran::lint
