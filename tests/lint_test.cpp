// Unit tests for the synran_lint core: every banned pattern must be caught,
// every legitimate idiom must pass, and the allow-trailer must suppress.
// Also covered: the token lexer (comments and literals are invisible to
// rules), the layer DAG semantics, the three cross-file rules driven over
// the checked-in trees under tests/lint_fixtures/, SARIF 2.1.0 document
// shape, and the baseline round-trip (suppression + stale detection).
// The banned tokens appearing below as fixture strings carry allow-trailers
// so the lint's own sweep over tests/ stays clean — which doubles as a live
// demonstration of the suppression syntax.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "synran_lint/baseline.hpp"
#include "synran_lint/include_graph.hpp"
#include "synran_lint/lexer.hpp"
#include "synran_lint/lint.hpp"
#include "synran_lint/sarif.hpp"

namespace synran::lint {
namespace {

std::size_t count_rule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  std::size_t n = 0;
  for (const auto& f : findings)
    if (f.rule == rule) ++n;
  return n;
}

// ---------------------------------------------------------- classification

TEST(LintClassify, RootsAndRoles) {
  EXPECT_TRUE(classify("src/sim/engine.cpp").scanned);
  EXPECT_TRUE(classify("tests/sim_test.cpp").scanned);
  EXPECT_TRUE(classify("bench/bench_util.hpp").scanned);
  EXPECT_TRUE(classify("examples/quickstart.cpp").scanned);
  EXPECT_FALSE(classify("tools/synran_cli.cpp").scanned);
  EXPECT_FALSE(classify("build/generated.cpp").scanned);

  EXPECT_TRUE(classify("src/common/rng.hpp").is_rng_header);
  EXPECT_TRUE(classify("src/protocols/synran.cpp").protocol_code);
  EXPECT_TRUE(classify("src/async/benor.cpp").protocol_code);
  EXPECT_FALSE(classify("src/adversary/basic.cpp").protocol_code);

  EXPECT_TRUE(classify("src/sim/engine.cpp").library_code);
  EXPECT_FALSE(classify("src/runner/experiment.cpp").library_code);
  EXPECT_FALSE(classify("examples/quickstart.cpp").library_code);

  EXPECT_TRUE(classify("src/obs/metrics.cpp").clock_allowed);
  EXPECT_TRUE(classify("bench/bench_util.hpp").clock_allowed);
  EXPECT_FALSE(classify("src/sim/engine.cpp").clock_allowed);
  EXPECT_FALSE(classify("tests/sim_test.cpp").clock_allowed);

  EXPECT_TRUE(classify("src/exec/executor.cpp").threads_allowed);
  EXPECT_TRUE(classify("src/exec/batch.hpp").threads_allowed);
  EXPECT_FALSE(classify("src/sim/engine.cpp").threads_allowed);
  EXPECT_FALSE(classify("bench/bench_util.hpp").threads_allowed);
}

// ---------------------------------------------------------- banned-random

TEST(LintBannedRandom, EachPrimitiveIsCaught) {
  const char* lines[] = {
      "std::mt19937 gen(42);",          // synran-lint: allow(banned-random)
      "std::mt19937_64 gen;",           // synran-lint: allow(banned-random)
      "std::random_device rd;",         // synran-lint: allow(banned-random)
      "int x = rand() % 6;",            // synran-lint: allow(banned-random)
      "srand(42);",                     // synran-lint: allow(banned-random)
      "int y = std::rand();",           // synran-lint: allow(banned-random)
      "seed = time(nullptr);",          // synran-lint: allow(banned-random)
      "seed = std::time(0);",           // synran-lint: allow(banned-random)
  };
  for (const char* line : lines) {
    const auto f = scan_file("src/sim/foo.cpp", line);
    EXPECT_EQ(count_rule(f, "banned-random"), 1u) << line;
  }
}

TEST(LintBannedRandom, RngHeaderIsExemptAndLookalikesPass) {
  const std::string ok =
      std::string("#pragma once\n") +
      "std::mt19937 would_be_fine_here;";  // synran-lint: allow(banned-random)
  EXPECT_TRUE(scan_file("src/common/rng.hpp", ok).empty());
  // Identifier boundaries: these merely *contain* banned substrings.
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", "int operand(int);").empty());
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", "auto brand(Bit b);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/foo.cpp", "double runtime(Round r);").empty());
}

TEST(LintBannedRandom, AllowTrailerSuppresses) {
  const std::string line =
      std::string("std::mt19937 g; ") +  // synran-lint: allow(banned-random)
      "// synran-lint: allow(banned-random)";
  EXPECT_TRUE(scan_file("src/sim/foo.cpp", line).empty());
}

// ------------------------------------------------------------ coin-source

TEST(LintCoinSource, DirectGeneratorInProtocolCodeFails) {
  const char* line = "Xoshiro256 rng_(seed);";
  EXPECT_EQ(count_rule(scan_file("src/protocols/p.cpp", line), "coin-source"),
            1u);
  EXPECT_EQ(count_rule(scan_file("src/async/p.cpp", line), "coin-source"),
            1u);
  // The same construction is fine in adversaries, tests, and the engine.
  EXPECT_TRUE(scan_file("src/adversary/a.cpp", line).empty());
  EXPECT_TRUE(scan_file("tests/a_test.cpp", line).empty());
}

TEST(LintCoinSource, CoinSourceUseIsFine) {
  EXPECT_TRUE(
      scan_file("src/protocols/p.cpp", "b_ = bit_of(coins.flip());").empty());
}

// ------------------------------------------------- header hygiene rules

TEST(LintHeaders, MissingPragmaOnceFails) {
  const auto f = scan_file("src/sim/h.hpp", "#include <vector>\n");
  ASSERT_EQ(count_rule(f, "pragma-once"), 1u);
  EXPECT_EQ(f.front().line, 1u);
  EXPECT_TRUE(
      scan_file("src/sim/h.hpp", "#pragma once\n#include <vector>\n")
          .empty());
  // Sources don't need it.
  EXPECT_TRUE(scan_file("src/sim/h.cpp", "#include <vector>\n").empty());
}

TEST(LintHeaders, UsingNamespaceInHeaderFails) {
  const std::string h = "#pragma once\nusing namespace std;\n";
  EXPECT_EQ(count_rule(scan_file("src/sim/h.hpp", h), "using-namespace"),
            1u);
  // Fine in a .cpp (examples and tools do this deliberately).
  EXPECT_TRUE(
      scan_file("examples/e.cpp", "using namespace synran;\n").empty());
}

TEST(LintIostream, LibraryCodeMayNotPrint) {
  const char* line = "#include <iostream>";
  EXPECT_EQ(count_rule(scan_file("src/sim/engine.cpp", line), "iostream"),
            1u);
  // The runner, examples, tests, and bench may print.
  EXPECT_TRUE(scan_file("src/runner/experiment.cpp", line).empty());
  EXPECT_TRUE(scan_file("examples/e.cpp", line).empty());
  EXPECT_EQ(count_rule(scan_file("bench/bench_util.hpp", line), "iostream"),
            0u);
  // <ostream> for operator<< is fine anywhere.
  EXPECT_TRUE(scan_file("src/sim/trace.cpp", "#include <ostream>").empty());
}

// ------------------------------------------------------------ bare-assert

TEST(LintBareAssert, AssertAndAbortFail) {
  const char* a = "assert(x > 0);";     // synran-lint: allow(bare-assert)
  const char* b = "std::abort();";      // synran-lint: allow(bare-assert)
  EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", a), "bare-assert"), 1u);
  EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", b), "bare-assert"), 1u);
}

TEST(LintBareAssert, StaticAssertAndGtestMacrosPass) {
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "static_assert(sizeof(int) == 4);").empty());
  EXPECT_TRUE(scan_file("tests/t.cpp", "ASSERT_TRUE(ok);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "SYNRAN_CHECK(budget <= t);").empty());
}

// ------------------------------------------------------------- wall-clock

TEST(LintWallClock, ClockReadsOutsideObsAndBenchFail) {
  const char* lines[] = {
      "#include <chrono>",                      // synran-lint: allow(wall-clock)
      "auto t0 = std::chrono::steady_clock::now();",  // synran-lint: allow(wall-clock)
      "steady_clock::time_point tp;",           // synran-lint: allow(wall-clock)
      "system_clock::time_point tp;",           // synran-lint: allow(wall-clock)
      "auto t = high_resolution_clock::now();", // synran-lint: allow(wall-clock)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "wall-clock"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "wall-clock"), 1u)
        << line;
    // Timing belongs to the observability layer and the bench harness.
    EXPECT_EQ(count_rule(scan_file("src/obs/metrics.cpp", line), "wall-clock"),
              0u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/bench_util.hpp", line), "wall-clock"),
              0u)
        << line;
  }
}

TEST(LintWallClock, LookalikesAndTrailerPass) {
  // "synchronous" contains "chrono": identifier boundaries must reject it.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// the synchronous engine of §3.1").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "void steady_clockwork(int);").empty());
  const std::string line =
      std::string("auto t0 = std::chrono::steady_clock::now(); ") +  // synran-lint: allow(wall-clock)
      "// synran-lint: allow(wall-clock)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// ---------------------------------------------------------------- threads

TEST(LintThreads, ThreadingPrimitivesOutsideExecFail) {
  const char* lines[] = {
      "std::thread worker(fn);",        // synran-lint: allow(threads)
      "std::jthread worker(fn);",       // synran-lint: allow(threads)
      "auto f = std::async(fn);",       // synran-lint: allow(threads)
      "std::mutex m;",                  // synran-lint: allow(threads)
      "std::shared_mutex m;",           // synran-lint: allow(threads)
      "#include <thread>",              // synran-lint: allow(threads)
      "#include <mutex>",               // synran-lint: allow(threads)
      "#include <future>",              // synran-lint: allow(threads)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "threads"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/b.cpp", line), "threads"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "threads"), 1u)
        << line;
    // The executor is the one concurrency boundary.
    EXPECT_EQ(count_rule(scan_file("src/exec/executor.cpp", line), "threads"),
              0u)
        << line;
  }
}

TEST(LintThreads, LookalikesAndTrailerPass) {
  // Non-std names and substrings must not trip the identifier-boundary scan.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "unsigned threads = spec.threads;").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// one workspace per thread").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "#include <thread_local_store.hpp>").empty());
  const std::string line =
      std::string("std::mutex trace_gate; ") +  // synran-lint: allow(threads)
      "// synran-lint: allow(threads)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// ---------------------------------------------------------------- signals

TEST(LintSignals, SignalPrimitivesOutsideExecStopperFail) {
  const char* lines[] = {
      "#include <csignal>",             // synran-lint: allow(signals)
      "#include <signal.h>",            // synran-lint: allow(signals)
      "std::signal(SIGINT, handler);",  // synran-lint: allow(signals)
      "signal(SIGTERM, handler);",      // synran-lint: allow(signals)
      "struct sigaction sa;",           // synran-lint: allow(signals)
      "std::raise(SIGINT);",            // synran-lint: allow(signals)
      "volatile std::sig_atomic_t flag;",  // synran-lint: allow(signals)
  };
  for (const char* line : lines) {
    EXPECT_EQ(count_rule(scan_file("src/sim/f.cpp", line), "signals"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("bench/b.cpp", line), "signals"), 1u)
        << line;
    EXPECT_EQ(count_rule(scan_file("tests/t.cpp", line), "signals"), 1u)
        << line;
    // The stopper owns the one handler and its flag.
    EXPECT_EQ(count_rule(scan_file("src/exec/stopper.cpp", line), "signals"),
              0u)
        << line;
    EXPECT_EQ(count_rule(scan_file("src/exec/stopper.hpp", line), "signals"),
              0u)
        << line;
  }
}

TEST(LintSignals, LookalikesAndTrailerPass) {
  // Identifier boundaries: these merely contain signal-ish substrings.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "void process_signals_done(int);").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// the stop signal is cooperative").empty());
  const std::string line =
      std::string("std::raise(SIGINT); ") +  // synran-lint: allow(signals)
      "// synran-lint: allow(signals)";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", line).empty());
}

// --------------------------------------------------- tree walk + summary

TEST(LintTree, WalksFixtureTreeAndReportsPerFile) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(testing::TempDir()) / "synran_lint_fixture";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "protocols");
  fs::create_directories(root / "src" / "common");
  fs::create_directories(root / "tools");

  const auto write = [](const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  };
  const std::string bad_random =
      std::string("std::mt19937 gen;\n");  // synran-lint: allow(banned-random)
  write(root / "src" / "protocols" / "bad.cpp",
        "Xoshiro256 rng(1);\n" + bad_random);
  write(root / "src" / "common" / "ok.hpp",
        "#pragma once\ninline int two() { return 2; }\n");
  // Outside the scanned roots: never visited even with violations.
  write(root / "tools" / "ignored.cpp", bad_random);

  std::size_t files = 0;
  const auto findings = scan_tree(root.string(), &files);
  EXPECT_EQ(files, 2u);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/protocols/bad.cpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[0].rule, "coin-source");
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[1].rule, "banned-random");

  EXPECT_EQ(summary_json(findings, files),
            "{\"files_scanned\":2,\"findings\":2,\"by_rule\":"
            "{\"banned-random\":1,\"coin-source\":1}}");
  fs::remove_all(root);
}

TEST(LintTree, CleanTreeSummary) {
  const std::vector<Finding> none;
  EXPECT_EQ(summary_json(none, 7),
            "{\"files_scanned\":7,\"findings\":0,\"by_rule\":{}}");
}

// ------------------------------------------------------------------ lexer

TEST(LintLexer, CommentsAndLiteralsAreInvisibleToRules) {
  // Doc comments and fixture strings mention banned primitives all the
  // time; the token lexer must blank them before any rule looks.
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "// never use std::rand here\n").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "/* std::mt19937 gen; */ int x;\n").empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "const char* s = \"std::random_device\";\n")
          .empty());
  EXPECT_TRUE(
      scan_file("src/sim/f.cpp", "auto r = R\"(srand(42); rand();)\";\n")
          .empty());
}

TEST(LintLexer, BlockCommentSpansLinesAndRealCodeStillFires) {
  const std::string text =
      "/*\n"
      "std::mt19937 hidden;\n"
      "*/\n"
      "std::mt19937 real;\n";  // synran-lint: allow(banned-random)
  const auto f = scan_file("src/sim/f.cpp", text);
  ASSERT_EQ(count_rule(f, "banned-random"), 1u);
  EXPECT_EQ(f.front().line, 4u);
}

TEST(LintLexer, SplicedLineCommentSwallowsNextLine) {
  // A line comment ending in a backslash continues onto the next physical
  // line; the banned token there is still comment text.
  const std::string text =
      "// spliced \\\n"
      "std::mt19937 still_in_comment;\n";
  EXPECT_TRUE(scan_file("src/sim/f.cpp", text).empty());
}

TEST(LintLexer, RawStringWithEmbeddedQuoteParen) {
  // The )" inside the raw string must not close it early; only )x" does.
  const std::string text =
      "auto s = R\"x(rand() )\" srand(1))x\";\n"
      "srand(2);\n";  // synran-lint: allow(banned-random)
  const auto f = scan_file("src/sim/f.cpp", text);
  ASSERT_EQ(count_rule(f, "banned-random"), 1u);
  EXPECT_EQ(f.front().line, 2u);
}

TEST(LintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  EXPECT_TRUE(scan_file("src/sim/f.cpp", "int n = 1'000'000;\n").empty());
  // If 1'0' were read as a char literal the rest of the line would be
  // blanked and the real violation missed.
  const auto f = scan_file(
      "src/sim/f.cpp",
      "int n = 1'000'000; srand(n);\n");  // synran-lint: allow(banned-random)
  EXPECT_EQ(count_rule(f, "banned-random"), 1u);
}

TEST(LintLexer, IncludeDirectivesBecomeEdgesNotStrings) {
  const auto lf = lex("src/sim/f.cpp",
                      "#include <vector>\n#include \"net/message.hpp\"\n");
  ASSERT_EQ(lf.includes.size(), 2u);
  EXPECT_EQ(lf.includes[0].target, "vector");
  EXPECT_TRUE(lf.includes[0].angled);
  EXPECT_EQ(lf.includes[1].target, "net/message.hpp");
  EXPECT_FALSE(lf.includes[1].angled);
  EXPECT_EQ(lf.includes[1].line, 2u);
  // Header-names are captured structurally, not recorded as literals.
  EXPECT_TRUE(lf.strings.empty());
}

TEST(LintLexer, PragmaOnceMustBeCode) {
  EXPECT_TRUE(lex("src/sim/h.hpp", "#pragma once\n").has_pragma_once);
  EXPECT_FALSE(lex("src/sim/h.hpp", "// #pragma once\n").has_pragma_once);
  EXPECT_FALSE(lex("src/sim/h.hpp", "const char* s = \"#pragma once\";\n")
                   .has_pragma_once);
}

TEST(LintClassify, FixtureTreesAreSkippedInRepoScans) {
  EXPECT_FALSE(classify("tests/lint_fixtures/lexer/src/sim/edge.cpp").scanned);
  EXPECT_FALSE(
      classify("tests/lint_fixtures/rng_dup/src/exec/tags.hpp").scanned);
  // When a fixture directory itself is the scan root the relative paths
  // lose the lint_fixtures/ prefix and are scanned normally.
  EXPECT_TRUE(classify("src/sim/edge.cpp").scanned);
}

// --------------------------------------------------------------- layering

TEST(LintLayering, ModuleOfParsesSrcPaths) {
  EXPECT_EQ(module_of("src/exec/batch.hpp"), "exec");
  EXPECT_EQ(module_of("src/common/rng.hpp"), "common");
  EXPECT_EQ(module_of("tests/sim_test.cpp"), "");
  EXPECT_EQ(module_of("src/top_level.hpp"), "");
}

TEST(LintLayering, DagSemantics) {
  EXPECT_TRUE(layer_allows("sim", "obs"));
  EXPECT_TRUE(layer_allows("sim", "common"));  // transitive through net
  EXPECT_TRUE(layer_allows("exec", "obs"));
  EXPECT_TRUE(layer_allows("exec", "exec"));  // reflexive
  EXPECT_TRUE(layer_allows("adversary", "protocols"));
  EXPECT_FALSE(layer_allows("common", "sim"));  // upward
  EXPECT_FALSE(layer_allows("obs", "exec"));    // upward
  EXPECT_FALSE(layer_allows("net", "analysis"));  // sideways
  EXPECT_TRUE(layer_known("runner"));
  EXPECT_FALSE(layer_known("alpha"));
}

// ---------------------------------------------- cross-file fixture trees

#ifdef SYNRAN_LINT_FIXTURES

std::vector<Finding> scan_fixture(const std::string& name) {
  return scan_tree(std::string(SYNRAN_LINT_FIXTURES) + "/" + name);
}

TEST(LintFixtures, LayeringCycleIsRejected) {
  const auto f = scan_fixture("layering_cycle");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_EQ(f[0].file, "src/alpha/alpha.hpp");
  EXPECT_EQ(f[1].rule, "layering");
  EXPECT_EQ(f[1].file, "src/beta/beta.hpp");
}

TEST(LintFixtures, UpwardEdgeIsRejected) {
  const auto f = scan_fixture("layering_upward");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "layering");
  EXPECT_EQ(f[0].file, "src/common/low.hpp");
}

TEST(LintFixtures, DagConformingEdgesPass) {
  EXPECT_TRUE(scan_fixture("layering_clean").empty());
}

TEST(LintFixtures, DuplicateStreamTagIsRejected) {
  const auto f = scan_fixture("rng_dup");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "rng-streams");
  // The later site (file,line order) is reported against the first owner.
  EXPECT_EQ(f[0].file, "src/sim/use.cpp");
  EXPECT_NE(f[0].message.find("src/exec/tags.hpp"), std::string::npos);
}

TEST(LintFixtures, DistinctStreamTagsPass) {
  EXPECT_TRUE(scan_fixture("rng_clean").empty());
}

TEST(LintFixtures, DriftedSchemaFieldIsRejected) {
  const auto f = scan_fixture("schema_drift");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "schema-literals");
  EXPECT_NE(f[0].message.find("drifted_field"), std::string::npos);
}

TEST(LintFixtures, LockstepSchemaPasses) {
  EXPECT_TRUE(scan_fixture("schema_clean").empty());
}

TEST(LintFixtures, DriftedTraceConstantIsRejected) {
  const auto f = scan_fixture("trace_drift");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "schema-literals");
  EXPECT_EQ(f[0].file, "src/obs/trace_format.hpp");
  EXPECT_NE(f[0].message.find("kTrace2KindDrifted"), std::string::npos);
}

TEST(LintFixtures, LockstepTraceConstantsPass) {
  EXPECT_TRUE(scan_fixture("trace_clean").empty());
}

TEST(LintFixtures, LexerTreeCatchesOnlyTheRealOffender) {
  const auto f = scan_fixture("lexer");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "banned-random");
  EXPECT_EQ(f[0].file, "src/sim/edge.cpp");
  EXPECT_EQ(f[0].line, 13u);
}

#endif  // SYNRAN_LINT_FIXTURES

// ------------------------------------------------------------------ sarif

TEST(LintSarif, DocumentIsValid210Shape) {
  using synran::obs::JsonValue;
  const std::vector<Finding> findings = {
      {"src/sim/engine.cpp", 12, "layering", "bad edge"},
      {"src/obs/trace_writer.cpp", 7, "schema-literals", "drift"},
  };
  std::string err;
  const auto doc = JsonValue::parse(to_sarif(findings), &err);
  ASSERT_TRUE(doc.has_value()) << err;

  EXPECT_EQ(doc->find("$schema")->as_string(),
            "https://json.schemastore.org/sarif-2.1.0.json");
  EXPECT_EQ(doc->find("version")->as_string(), "2.1.0");

  const auto& runs = doc->find("runs")->as_array();
  ASSERT_EQ(runs.size(), 1u);
  const auto* driver = runs[0].find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->as_string(), "synran_lint");
  // Every registered rule appears in the driver's rule table.
  const auto& rules = driver->find("rules")->as_array();
  ASSERT_EQ(rules.size(), rule_registry().size());
  EXPECT_EQ(rules.size(), 12u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].find("id")->as_string(),
              std::string(rule_registry()[i].id));
    EXPECT_FALSE(rules[i]
                     .find("shortDescription")
                     ->find("text")
                     ->as_string()
                     .empty());
  }

  const auto& results = runs[0].find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("ruleId")->as_string(), "layering");
  EXPECT_EQ(results[0].find("level")->as_string(), "error");
  EXPECT_EQ(results[0].find("message")->find("text")->as_string(),
            "bad edge");
  const auto& locs = results[0].find("locations")->as_array();
  ASSERT_EQ(locs.size(), 1u);
  const auto* phys = locs[0].find("physicalLocation");
  EXPECT_EQ(phys->find("artifactLocation")->find("uri")->as_string(),
            "src/sim/engine.cpp");
  EXPECT_EQ(phys->find("artifactLocation")->find("uriBaseId")->as_string(),
            "SRCROOT");
  EXPECT_EQ(phys->find("region")->find("startLine")->as_int(), 12);
  // ruleIndex points back into the driver rule table.
  const auto idx =
      static_cast<std::size_t>(results[0].find("ruleIndex")->as_int());
  EXPECT_EQ(rules[idx].find("id")->as_string(), "layering");
}

TEST(LintSarif, EmptyFindingsStillProduceAFullRun) {
  using synran::obs::JsonValue;
  std::string err;
  const auto doc = JsonValue::parse(to_sarif({}), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const auto& runs = doc->find("runs")->as_array();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].find("results")->as_array().empty());
  EXPECT_EQ(
      runs[0].find("tool")->find("driver")->find("rules")->as_array().size(),
      12u);
}

// --------------------------------------------------------------- baseline

TEST(LintBaseline, RoundTripSuppressionAndStale) {
  std::vector<Finding> findings = {
      {"src/a/a.cpp", 3, "layering", "m1"},
      {"src/b/b.cpp", 7, "rng-streams", "m2"},
  };
  const auto parsed = parse_baseline(baseline_json(findings));
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].file, "src/a/a.cpp");
  EXPECT_EQ(parsed.entries[0].line, 3u);
  EXPECT_EQ(parsed.entries[0].rule, "layering");

  auto res = apply_baseline(findings, parsed);
  EXPECT_TRUE(res.active.empty());
  EXPECT_EQ(res.suppressed, 2u);
  EXPECT_TRUE(res.stale.empty());

  // The first finding gets fixed: its entry must surface as stale.
  findings.erase(findings.begin());
  res = apply_baseline(findings, parsed);
  EXPECT_TRUE(res.active.empty());
  EXPECT_EQ(res.suppressed, 1u);
  ASSERT_EQ(res.stale.size(), 1u);
  EXPECT_EQ(res.stale[0].file, "src/a/a.cpp");

  // A new finding the baseline never saw stays active.
  findings.push_back({"src/c/c.cpp", 1, "iostream", "m3"});
  res = apply_baseline(findings, parsed);
  ASSERT_EQ(res.active.size(), 1u);
  EXPECT_EQ(res.active[0].file, "src/c/c.cpp");
}

TEST(LintBaseline, OneEntrySuppressesAtMostOneFinding) {
  const std::vector<Finding> twice = {
      {"src/a/a.cpp", 3, "layering", "m1"},
      {"src/a/a.cpp", 3, "layering", "m1-again"},
  };
  const auto parsed = parse_baseline(baseline_json(
      std::vector<Finding>{{"src/a/a.cpp", 3, "layering", "m1"}}));
  const auto res = apply_baseline(twice, parsed);
  EXPECT_EQ(res.suppressed, 1u);
  EXPECT_EQ(res.active.size(), 1u);
}

TEST(LintBaseline, MalformedDocumentsThrow) {
  EXPECT_THROW(parse_baseline("not json"), std::runtime_error);
  EXPECT_THROW(parse_baseline("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(parse_baseline("{\"schema\":\"nope\",\"entries\":[]}"),
               std::runtime_error);
  EXPECT_THROW(
      parse_baseline("{\"schema\":\"synran-lint-baseline/1\"}"),
      std::runtime_error);
  EXPECT_THROW(parse_baseline("{\"schema\":\"synran-lint-baseline/1\","
                              "\"entries\":[{\"file\":1}]}"),
               std::runtime_error);
  EXPECT_THROW(parse_baseline("{\"schema\":\"synran-lint-baseline/1\","
                              "\"entries\":[{\"file\":\"a\",\"line\":0,"
                              "\"rule\":\"r\"}]}"),
               std::runtime_error);
}

// --------------------------------------------------------------- ordering

TEST(LintOrder, FindingsSortByFileLineRule) {
  EXPECT_TRUE(finding_order({"a.cpp", 1, "x", ""}, {"b.cpp", 1, "x", ""}));
  EXPECT_TRUE(finding_order({"a.cpp", 1, "x", ""}, {"a.cpp", 2, "x", ""}));
  EXPECT_TRUE(finding_order({"a.cpp", 1, "a", ""}, {"a.cpp", 1, "b", ""}));
  EXPECT_FALSE(finding_order({"a.cpp", 1, "x", ""}, {"a.cpp", 1, "x", ""}));
}

}  // namespace
}  // namespace synran::lint
