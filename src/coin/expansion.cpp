#include "coin/expansion.hpp"

#include <algorithm>

#include "coin/forcing.hpp"
#include "common/check.hpp"

namespace synran {

HypercubeExpansion::HypercubeExpansion(
    std::uint32_t n, const std::function<bool(std::uint64_t)>& member)
    : n_(n) {
  SYNRAN_REQUIRE(n >= 1 && n <= 26, "hypercube expansion supports n in 1..26");
  const std::uint64_t size = 1ULL << n;
  constexpr std::uint8_t kUnvisited = 0xff;
  std::vector<std::uint8_t> dist(size, kUnvisited);

  // Multi-source BFS, frontier by frontier.
  std::vector<std::uint64_t> frontier;
  for (std::uint64_t x = 0; x < size; ++x)
    if (member(x)) {
      dist[x] = 0;
      frontier.push_back(x);
    }

  count_at_distance_.assign(n + 1, 0);
  count_at_distance_[0] = frontier.size();

  std::vector<std::uint64_t> next;
  for (std::uint32_t d = 1; d <= n && !frontier.empty(); ++d) {
    next.clear();
    for (std::uint64_t x : frontier) {
      for (std::uint32_t b = 0; b < n; ++b) {
        const std::uint64_t y = x ^ (1ULL << b);
        if (dist[y] == kUnvisited) {
          dist[y] = static_cast<std::uint8_t>(d);
          next.push_back(y);
        }
      }
    }
    count_at_distance_[d] = next.size();
    frontier.swap(next);
  }
}

double HypercubeExpansion::measure() const {
  return static_cast<double>(count_at_distance_[0]) /
         static_cast<double>(1ULL << n_);
}

double HypercubeExpansion::ball_measure(std::uint32_t l) const {
  std::uint64_t acc = 0;
  for (std::uint32_t d = 0; d <= std::min(l, n_); ++d)
    acc += count_at_distance_[d];
  return static_cast<double>(acc) / static_cast<double>(1ULL << n_);
}

std::uint32_t HypercubeExpansion::radius_for(double p) const {
  for (std::uint32_t l = 0; l <= n_; ++l)
    if (ball_measure(l) >= p) return l;
  return n_ + 1;
}

std::uint64_t HypercubeExpansion::count_at_distance(std::uint32_t d) const {
  SYNRAN_REQUIRE(d <= n_, "distance beyond cube diameter");
  return count_at_distance_[d];
}

HypercubeExpansion expansion_of_unforceable_set(const CoinGame& game,
                                                std::uint32_t target,
                                                std::uint32_t budget) {
  SYNRAN_REQUIRE(game.domain_size() == 2,
                 "U^v expansion needs a binary-input game");
  const std::uint32_t n = game.players();
  SYNRAN_REQUIRE(n <= 22, "U^v expansion limited to n <= 22");

  ForcingOptions opts;
  opts.exhaustive_max_players = n;
  // Exhaustive search above budget 3 explodes; games used here provide
  // analytic (exact) forcing anyway.
  std::vector<GameValue> values(n);
  return HypercubeExpansion(n, [&](std::uint64_t x) {
    for (std::uint32_t i = 0; i < n; ++i)
      values[i] = static_cast<GameValue>((x >> i) & 1);
    const auto res = can_force(game, values, target, budget, opts);
    SYNRAN_CHECK_MSG(res.exact || res.forced,
                     "U^v membership undecidable for this game/budget");
    return !res.forced;
  });
}

}  // namespace synran
