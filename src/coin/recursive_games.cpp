#include "coin/recursive_games.hpp"

#include "common/check.hpp"

namespace synran {

RecursiveMajorityGame::RecursiveMajorityGame(std::uint32_t height)
    : height_(height) {
  SYNRAN_REQUIRE(height >= 1 && height <= 10,
                 "recursive majority supports height 1..10");
  leaves_ = 1;
  for (std::uint32_t h = 0; h < height; ++h) leaves_ *= 3;
}

std::uint32_t RecursiveMajorityGame::eval(std::span<const GameValue> values,
                                          const DynBitset& hidden,
                                          std::uint32_t node,
                                          std::uint32_t level) const {
  if (level == height_) {
    // Leaf `node`; hidden counts as 0.
    if (hidden.test(node)) return 0;
    return values[node] != 0 ? 1 : 0;
  }
  std::uint32_t ones = 0;
  for (std::uint32_t c = 0; c < 3; ++c)
    ones += eval(values, hidden, node * 3 + c, level + 1);
  return ones >= 2 ? 1 : 0;
}

std::uint32_t RecursiveMajorityGame::outcome(
    std::span<const GameValue> values, const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == leaves_, "value vector has wrong size");
  return eval(values, hidden, 0, 0);
}

TribesGame::TribesGame(std::uint32_t tribes, std::uint32_t width)
    : tribes_(tribes), width_(width) {
  SYNRAN_REQUIRE(tribes >= 1 && width >= 1, "tribes and width must be >= 1");
  SYNRAN_REQUIRE(tribes * width <= 4096, "tribes game too large");
}

std::uint32_t TribesGame::outcome(std::span<const GameValue> values,
                                  const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == players(), "value vector has wrong size");
  for (std::uint32_t b = 0; b < tribes_; ++b) {
    bool all_one = true;
    for (std::uint32_t i = 0; i < width_ && all_one; ++i) {
      const std::uint32_t idx = b * width_ + i;
      if (hidden.test(idx) || values[idx] == 0) all_one = false;
    }
    if (all_one) return 1;
  }
  return 0;
}

std::optional<DynBitset> TribesGame::analytic_force(
    std::span<const GameValue> values, std::uint32_t target,
    std::uint32_t budget) const {
  DynBitset hidden(players());
  if (outcome(values, hidden) == target) return hidden;
  if (target == 1) return std::nullopt;  // hiding can only break blocks
  // Force 0: veto every currently-winning block with one hiding each.
  std::uint32_t used = 0;
  for (std::uint32_t b = 0; b < tribes_; ++b) {
    bool all_one = true;
    for (std::uint32_t i = 0; i < width_ && all_one; ++i)
      if (values[b * width_ + i] == 0) all_one = false;
    if (!all_one) continue;
    if (++used > budget) return std::nullopt;
    hidden.set(b * width_);
  }
  SYNRAN_CHECK(outcome(values, hidden) == 0);
  return hidden;
}

}  // namespace synran
