#include "coin/influence.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

double InfluenceProfile::total() const {
  double acc = 0.0;
  for (double v : per_player) acc += v;
  return acc;
}

double InfluenceProfile::max() const {
  SYNRAN_REQUIRE(!per_player.empty(), "empty influence profile");
  return *std::max_element(per_player.begin(), per_player.end());
}

std::uint32_t InfluenceProfile::argmax() const {
  SYNRAN_REQUIRE(!per_player.empty(), "empty influence profile");
  return static_cast<std::uint32_t>(
      std::max_element(per_player.begin(), per_player.end()) -
      per_player.begin());
}

InfluenceProfile influences(std::uint32_t n,
                            const std::function<bool(std::uint64_t)>& f) {
  SYNRAN_REQUIRE(n >= 1 && n <= 22, "influence computation supports n 1..22");
  const std::uint64_t size = 1ULL << n;

  // Materialize the truth table once; each influence is then one XOR-shift
  // pass over it.
  std::vector<bool> table(size);
  std::uint64_t ones = 0;
  for (std::uint64_t x = 0; x < size; ++x) {
    table[x] = f(x);
    ones += table[x] ? 1 : 0;
  }

  InfluenceProfile out;
  out.expectation = static_cast<double>(ones) / static_cast<double>(size);
  out.per_player.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t bit = 1ULL << i;
    std::uint64_t pivotal = 0;
    for (std::uint64_t x = 0; x < size; ++x) {
      if ((x & bit) != 0) continue;  // count each pair once
      if (table[x] != table[x | bit]) ++pivotal;
    }
    out.per_player[i] =
        static_cast<double>(pivotal) / static_cast<double>(size / 2);
  }
  return out;
}

InfluenceProfile game_influences(const CoinGame& game) {
  SYNRAN_REQUIRE(game.domain_size() == 2 && game.outcomes() == 2,
                 "influences need a binary game");
  const std::uint32_t n = game.players();
  std::vector<GameValue> values(n);
  const DynBitset none(n);
  return influences(n, [&](std::uint64_t x) {
    for (std::uint32_t i = 0; i < n; ++i)
      values[i] = static_cast<GameValue>((x >> i) & 1);
    return game.outcome(values, none) == 1;
  });
}

}  // namespace synran
