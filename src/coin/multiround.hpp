// Multi-round coin-flipping games with a fail-stop adversary — the setting
// Aspnes studied and the paper builds on (§1.2: "by halting O(√n·log n)
// processes the adversary can bias the game to one of the possible outcomes
// with probability greater than 1 − 1/n").
//
// Model: n players; R rounds; every surviving player flips a fair coin each
// round; after seeing the round's coins the adaptive adversary may kill
// players (a killed player's current-round coin is discarded along with all
// its future coins). The outcome is the majority sign of all counted coins
// (ties toward 0).
#pragma once

#include <cstdint>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/rng.hpp"

namespace synran {

struct MultiRoundSpec {
  std::uint32_t players = 0;
  std::uint32_t rounds = 1;
  std::uint32_t budget = 0;         ///< total kills available
  std::uint32_t per_round_cap = 0;  ///< 0 = unlimited within budget
};

/// Full information handed to the adversary each round.
struct MultiRoundView {
  std::uint32_t round = 0;           ///< 1-based
  std::uint32_t rounds_total = 0;
  const DynBitset* alive = nullptr;  ///< players still flipping
  /// This round's coins for alive players (undefined for dead ones).
  const std::vector<bool>* coins = nullptr;
  std::int64_t running_sum = 0;      ///< +1/−1 sum of counted coins so far
  std::uint32_t budget_left = 0;
  std::uint32_t round_cap = 0;
};

/// Chooses the players to kill this round (their current coin is discarded).
class MultiRoundAdversary {
 public:
  virtual ~MultiRoundAdversary() = default;
  virtual void begin(const MultiRoundSpec& /*spec*/) {}
  virtual std::vector<std::uint32_t> kill(const MultiRoundView& view) = 0;
  virtual const char* name() const = 0;
};

/// Never interferes.
class PassiveMultiRound final : public MultiRoundAdversary {
 public:
  std::vector<std::uint32_t> kill(const MultiRoundView&) override {
    return {};
  }
  const char* name() const override { return "passive"; }
};

/// Greedy bias toward `target`: each round, kill players whose fresh coin
/// opposes the target, spending the budget evenly across the remaining
/// rounds (each kill removes one adverse coin now and the player's unbiased
/// future contribution).
class GreedyBiasMultiRound final : public MultiRoundAdversary {
 public:
  explicit GreedyBiasMultiRound(std::uint32_t target) : target_(target) {}
  std::vector<std::uint32_t> kill(const MultiRoundView& view) override;
  const char* name() const override { return "greedy-bias"; }

 private:
  std::uint32_t target_;
};

struct MultiRoundResult {
  std::uint32_t outcome = 0;  ///< 1 iff counted sum > 0
  std::int64_t sum = 0;
  std::uint32_t kills = 0;
};

/// Plays one game to completion. Deterministic in `seed`.
MultiRoundResult play_multiround(const MultiRoundSpec& spec,
                                 MultiRoundAdversary& adversary,
                                 std::uint64_t seed);

/// Monte-Carlo estimate of Pr(outcome == target) under `adversary`.
double estimate_multiround_bias(const MultiRoundSpec& spec,
                                MultiRoundAdversary& adversary,
                                std::uint32_t target, std::size_t samples,
                                std::uint64_t seed);

}  // namespace synran
