// Structured games from the collective coin-flipping literature the paper
// cites ([BOL89], [Lin94]): recursive majority-of-three and tribes. Both
// are classic test beds for influence/control questions; here they exercise
// the generic forcing search (no analytic rule exists) and show how game
// structure changes the adversary's price.
#pragma once

#include <cstdint>

#include "coin/games.hpp"

namespace synran {

/// Recursive majority-of-3: n = 3^height players at the leaves of a ternary
/// tree; each internal node takes the majority of its children. A hidden
/// leaf assumes the adversary's preferred value — i.e. "—" counts toward
/// whichever outcome the adversary is currently testing is *not* reachable;
/// to keep the game well-defined we fix the default: a hidden leaf counts
/// as 0 (like the paper's majority-with-default-0, this makes the game
/// one-sided).
class RecursiveMajorityGame final : public CoinGame {
 public:
  explicit RecursiveMajorityGame(std::uint32_t height);

  std::uint32_t players() const override { return leaves_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  const char* name() const override { return "recursive-majority3"; }

  std::uint32_t height() const { return height_; }

 private:
  std::uint32_t eval(std::span<const GameValue> values,
                     const DynBitset& hidden, std::uint32_t node,
                     std::uint32_t level) const;

  std::uint32_t height_;
  std::uint32_t leaves_;
};

/// Tribes (OR of ANDs): players are split into `tribes` blocks of `width`;
/// the outcome is 1 iff some block is all-1. Hidden players count as 0, so
/// the adversary can veto any single block with one hiding but can never
/// create a winning block — extreme one-sidedness in the 0 direction.
class TribesGame final : public CoinGame {
 public:
  TribesGame(std::uint32_t tribes, std::uint32_t width);

  std::uint32_t players() const override { return tribes_ * width_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  std::optional<DynBitset> analytic_force(std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) const override;
  bool analytic_force_is_complete() const override { return true; }
  const char* name() const override { return "tribes"; }

 private:
  std::uint32_t tribes_;
  std::uint32_t width_;
};

}  // namespace synran
