#include "coin/multiround.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

std::vector<std::uint32_t> GreedyBiasMultiRound::kill(
    const MultiRoundView& view) {
  // Budget pacing: don't dump everything in round 1 — adverse coins keep
  // arriving, so spread the spend across the remaining rounds (with a
  // small surplus allowance for unlucky rounds).
  const std::uint32_t remaining_rounds =
      view.rounds_total - view.round + 1;
  std::uint32_t allowance =
      view.budget_left / remaining_rounds + view.budget_left % 2;
  if (view.round_cap != 0) allowance = std::min(allowance, view.round_cap);
  allowance = std::min(allowance, view.budget_left);

  std::vector<std::uint32_t> victims;
  view.alive->for_each_set([&](std::size_t i) {
    if (victims.size() >= allowance) return;
    const bool coin_one = (*view.coins)[i];
    const bool adverse = target_ == 1 ? !coin_one : coin_one;
    if (adverse) victims.push_back(static_cast<std::uint32_t>(i));
  });
  return victims;
}

MultiRoundResult play_multiround(const MultiRoundSpec& spec,
                                 MultiRoundAdversary& adversary,
                                 std::uint64_t seed) {
  SYNRAN_REQUIRE(spec.players >= 1, "need at least one player");
  SYNRAN_REQUIRE(spec.rounds >= 1, "need at least one round");
  SYNRAN_REQUIRE(spec.budget <= spec.players, "budget exceeds players");

  adversary.begin(spec);
  Xoshiro256 rng(seed);
  DynBitset alive(spec.players, true);
  std::vector<bool> coins(spec.players, false);

  MultiRoundResult res;
  std::uint32_t budget = spec.budget;

  for (std::uint32_t r = 1; r <= spec.rounds; ++r) {
    alive.for_each_set([&](std::size_t i) { coins[i] = rng.flip(); });

    MultiRoundView view;
    view.round = r;
    view.rounds_total = spec.rounds;
    view.alive = &alive;
    view.coins = &coins;
    view.running_sum = res.sum;
    view.budget_left = budget;
    view.round_cap = spec.per_round_cap;

    const auto victims = adversary.kill(view);
    SYNRAN_CHECK_MSG(victims.size() <= budget,
                     "multiround adversary exceeded budget");
    SYNRAN_CHECK_MSG(spec.per_round_cap == 0 ||
                         victims.size() <= spec.per_round_cap,
                     "multiround adversary exceeded per-round cap");
    DynBitset killed_now(spec.players);
    for (auto v : victims) {
      SYNRAN_CHECK_MSG(v < spec.players && alive.test(v),
                       "multiround adversary killed an invalid player");
      SYNRAN_CHECK_MSG(!killed_now.test(v), "duplicate victim");
      killed_now.set(v);
      alive.reset(v);
    }
    budget -= static_cast<std::uint32_t>(victims.size());
    res.kills += static_cast<std::uint32_t>(victims.size());

    // Count the surviving coins of this round.
    alive.for_each_set(
        [&](std::size_t i) { res.sum += coins[i] ? 1 : -1; });
  }

  res.outcome = res.sum > 0 ? 1 : 0;
  return res;
}

double estimate_multiround_bias(const MultiRoundSpec& spec,
                                MultiRoundAdversary& adversary,
                                std::uint32_t target, std::size_t samples,
                                std::uint64_t seed) {
  SYNRAN_REQUIRE(samples >= 1, "need at least one sample");
  SYNRAN_REQUIRE(target <= 1, "binary outcome");
  SeedSequence seeds(seed);
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto res = play_multiround(spec, adversary, seeds.stream(s));
    if (res.outcome == target) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace synran
