// One-round collective coin-flipping games (§2 of the paper).
//
// A game: n players each draw a private value from their own distribution;
// after seeing all values an adaptive fail-stop adversary hides up to t of
// them (replacing them with the default "—"); a public function f of the
// masked sequence yields the outcome in {0..k-1}. The paper's Lemma 2.1 says
// a budget of k·4√(n·ln n) always suffices to control *some* outcome with
// probability > 1−1/n, and the majority-with-default-0 game shows the
// one-sidedness is unavoidable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/rng.hpp"

namespace synran {

/// A player's value. Games here use small integer domains.
using GameValue = std::uint8_t;

class CoinGame {
 public:
  virtual ~CoinGame() = default;

  virtual std::uint32_t players() const = 0;
  /// Number of possible outcomes k.
  virtual std::uint32_t outcomes() const = 0;
  /// Size of each player's value domain (values are 0..domain_size-1).
  virtual std::uint32_t domain_size() const = 0;

  /// Draws one full input vector (players draw independently).
  virtual void sample(Xoshiro256& rng, std::vector<GameValue>& out) const;

  /// Evaluates f on the masked sequence: hidden.test(i) means player i's
  /// value was replaced by the default "—".
  virtual std::uint32_t outcome(std::span<const GameValue> values,
                                const DynBitset& hidden) const = 0;

  /// Analytic forcing, when the game admits one: returns a hiding set of
  /// size ≤ budget that forces `target`, or nullopt if this game has no
  /// analytic rule (callers fall back to search) — NOT "cannot be forced".
  virtual std::optional<DynBitset> analytic_force(
      std::span<const GameValue> values, std::uint32_t target,
      std::uint32_t budget) const;

  /// True when analytic_force is exact: a nullopt-from-search + analytic
  /// miss means genuinely unforceable.
  virtual bool analytic_force_is_complete() const { return false; }

  virtual const char* name() const = 0;
};

/// Majority with default 0 — the paper's example of an inherently one-sided
/// game: a hidden value counts as 0, so the adversary can push toward 0 by
/// hiding 1s but can never manufacture extra 1s. Outcome 1 iff the visible
/// 1s exceed n/2.
class MajorityDefaultZeroGame final : public CoinGame {
 public:
  explicit MajorityDefaultZeroGame(std::uint32_t n) : n_(n) {}
  std::uint32_t players() const override { return n_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  std::optional<DynBitset> analytic_force(std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) const override;
  bool analytic_force_is_complete() const override { return true; }
  const char* name() const override { return "majority-default0"; }

 private:
  std::uint32_t n_;
};

/// Majority over the *present* values (ties broken toward 0). Biasable in
/// both directions by hiding Θ(√n) values of the disfavoured side.
class MajorityPresentGame final : public CoinGame {
 public:
  explicit MajorityPresentGame(std::uint32_t n) : n_(n) {}
  std::uint32_t players() const override { return n_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  std::optional<DynBitset> analytic_force(std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) const override;
  bool analytic_force_is_complete() const override { return true; }
  const char* name() const override { return "majority-present"; }

 private:
  std::uint32_t n_;
};

/// XOR of the present values: one hidden bit flips the outcome, so a
/// 1-adversary fully controls the game — the opposite extreme from majority.
class ParityPresentGame final : public CoinGame {
 public:
  explicit ParityPresentGame(std::uint32_t n) : n_(n) {}
  std::uint32_t players() const override { return n_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  std::optional<DynBitset> analytic_force(std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) const override;
  bool analytic_force_is_complete() const override { return true; }
  const char* name() const override { return "parity-present"; }

 private:
  std::uint32_t n_;
};

/// k-outcome game: players draw uniform values in {0..k-1}; the outcome is
/// the sum of present values mod k. Exercises the k-outcome statement of
/// Lemma 2.1 (every outcome is reachable by hiding a small subset whose sum
/// has the right residue).
class ModSumGame final : public CoinGame {
 public:
  ModSumGame(std::uint32_t n, std::uint32_t k) : n_(n), k_(k) {}
  std::uint32_t players() const override { return n_; }
  std::uint32_t outcomes() const override { return k_; }
  std::uint32_t domain_size() const override { return k_; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  const char* name() const override { return "modsum"; }

 private:
  std::uint32_t n_;
  std::uint32_t k_;
};

/// First-present-player's bit: the epitome of an adversary-controlled game —
/// hiding a prefix hands the outcome to any player the adversary likes.
class LeaderBitGame final : public CoinGame {
 public:
  explicit LeaderBitGame(std::uint32_t n) : n_(n) {}
  std::uint32_t players() const override { return n_; }
  std::uint32_t outcomes() const override { return 2; }
  std::uint32_t domain_size() const override { return 2; }
  std::uint32_t outcome(std::span<const GameValue> values,
                        const DynBitset& hidden) const override;
  std::optional<DynBitset> analytic_force(std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) const override;
  bool analytic_force_is_complete() const override { return true; }
  const char* name() const override { return "leader-bit"; }

 private:
  std::uint32_t n_;
};

}  // namespace synran
