// Boolean-function influence — the quantity at the heart of the collective
// coin-flipping literature the paper builds on ([BOL89], [Lin94]).
//
// For f : {0,1}^n → {0,1} under the uniform measure, the influence of
// player i is I_i(f) = Pr_x[f(x) ≠ f(x ⊕ e_i)], and Ben-Or–Linial relate
// the adversary's control over a game to the influences of its deciding
// function. These exact computations (2^n evaluations, n ≤ ~22) ground the
// one-round-game experiments: a fail-stop adversary hiding player i is at
// least as strong as an adversary flipping i, so Σ I_i lower-bounds how
// "attackable" a game is.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coin/games.hpp"

namespace synran {

struct InfluenceProfile {
  std::vector<double> per_player;  ///< I_i(f)
  double expectation = 0.0;        ///< Pr[f = 1]

  double total() const;    ///< Σ_i I_i(f)
  double max() const;      ///< max_i I_i(f)
  std::uint32_t argmax() const;
};

/// Exact influences of an arbitrary boolean function given as a truth-table
/// oracle over n ≤ 22 variables.
InfluenceProfile influences(std::uint32_t n,
                            const std::function<bool(std::uint64_t)>& f);

/// Exact influences of a binary-input, binary-outcome coin game's deciding
/// function (no hidden players).
InfluenceProfile game_influences(const CoinGame& game);

/// The Ben-Or–Linial reference values for sanity anchors:
///   dictator: I = (1, 0, …)         majority: I_i ~ √(2/(πn))
///   parity:   I_i = 1 for all i     tribes:   I_i = Θ(ln n / n)
/// (tests pin these against the exact computation).

}  // namespace synran
