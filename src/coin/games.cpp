#include "coin/games.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

void CoinGame::sample(Xoshiro256& rng, std::vector<GameValue>& out) const {
  out.resize(players());
  const std::uint32_t d = domain_size();
  for (auto& v : out)
    v = static_cast<GameValue>(d == 2 ? (rng.flip() ? 1 : 0) : rng.below(d));
}

std::optional<DynBitset> CoinGame::analytic_force(
    std::span<const GameValue>, std::uint32_t, std::uint32_t) const {
  return std::nullopt;
}

namespace {

/// Count of visible ones / visible total.
struct VisibleCount {
  std::uint32_t ones = 0;
  std::uint32_t present = 0;
};

VisibleCount count_visible(std::span<const GameValue> values,
                           const DynBitset& hidden) {
  VisibleCount c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (hidden.test(i)) continue;
    ++c.present;
    if (values[i] != 0) ++c.ones;
  }
  return c;
}

/// Hides up to `budget` players holding `side`, starting from the lowest id.
/// Returns the number actually hidden.
std::uint32_t hide_side(std::span<const GameValue> values, GameValue side,
                        std::uint32_t budget, DynBitset& hidden) {
  std::uint32_t used = 0;
  for (std::size_t i = 0; i < values.size() && used < budget; ++i) {
    if (!hidden.test(i) && values[i] == side) {
      hidden.set(i);
      ++used;
    }
  }
  return used;
}

}  // namespace

// ---------------------------------------------------------------- majority-0

std::uint32_t MajorityDefaultZeroGame::outcome(
    std::span<const GameValue> values, const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == n_, "value vector has wrong size");
  const auto c = count_visible(values, hidden);
  // Hidden values count as 0: outcome 1 iff ones form a strict majority of
  // all n slots.
  return 2 * c.ones > n_ ? 1 : 0;
}

std::optional<DynBitset> MajorityDefaultZeroGame::analytic_force(
    std::span<const GameValue> values, std::uint32_t target,
    std::uint32_t budget) const {
  DynBitset hidden(n_);
  if (outcome(values, hidden) == target) return hidden;  // already there
  if (target == 1) return std::nullopt;  // hiding can never add 1s
  // Force 0: hide 1s until they no longer form a strict majority.
  auto c = count_visible(values, hidden);
  const std::uint32_t need = c.ones - n_ / 2;  // ones > n/2 here
  if (need > budget) return std::nullopt;
  hide_side(values, 1, need, hidden);
  SYNRAN_CHECK(outcome(values, hidden) == 0);
  return hidden;
}

// --------------------------------------------------------------- majority-p

std::uint32_t MajorityPresentGame::outcome(std::span<const GameValue> values,
                                           const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == n_, "value vector has wrong size");
  const auto c = count_visible(values, hidden);
  return 2 * c.ones > c.present ? 1 : 0;  // tie -> 0
}

std::optional<DynBitset> MajorityPresentGame::analytic_force(
    std::span<const GameValue> values, std::uint32_t target,
    std::uint32_t budget) const {
  DynBitset hidden(n_);
  if (outcome(values, hidden) == target) return hidden;
  auto c = count_visible(values, hidden);
  const std::uint32_t zeros = c.present - c.ones;
  if (target == 1) {
    // Need ones > present/2 after hiding x zeros: 2·ones > ones + zeros − x.
    const std::uint32_t need = zeros >= c.ones ? zeros - c.ones + 1 : 0;
    if (need > budget || need > zeros) return std::nullopt;
    hide_side(values, 0, need, hidden);
  } else {
    // Need 2·ones ≤ present after hiding x ones:
    // 2(ones−x) ≤ ones + zeros − x  ⇔  x ≥ ones − zeros.
    const std::uint32_t need = c.ones >= zeros ? c.ones - zeros : 0;
    if (need > budget || need > c.ones) return std::nullopt;
    hide_side(values, 1, need, hidden);
  }
  SYNRAN_CHECK(outcome(values, hidden) == target);
  return hidden;
}

// ------------------------------------------------------------------- parity

std::uint32_t ParityPresentGame::outcome(std::span<const GameValue> values,
                                         const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == n_, "value vector has wrong size");
  std::uint32_t x = 0;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!hidden.test(i) && values[i] != 0) x ^= 1;
  return x;
}

std::optional<DynBitset> ParityPresentGame::analytic_force(
    std::span<const GameValue> values, std::uint32_t target,
    std::uint32_t budget) const {
  DynBitset hidden(n_);
  if (outcome(values, hidden) == target) return hidden;
  // Flip the parity by hiding any single 1 (hiding a 0 changes nothing).
  if (budget == 0) return std::nullopt;
  if (hide_side(values, 1, 1, hidden) == 1) return hidden;
  return std::nullopt;  // all-zero input: parity stuck at 0
}

// ------------------------------------------------------------------- modsum

std::uint32_t ModSumGame::outcome(std::span<const GameValue> values,
                                  const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == n_, "value vector has wrong size");
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!hidden.test(i)) s += values[i];
  return static_cast<std::uint32_t>(s % k_);
}

// --------------------------------------------------------------- leader-bit

std::uint32_t LeaderBitGame::outcome(std::span<const GameValue> values,
                                     const DynBitset& hidden) const {
  SYNRAN_REQUIRE(values.size() == n_, "value vector has wrong size");
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!hidden.test(i)) return values[i] != 0 ? 1 : 0;
  return 0;  // everyone hidden: default outcome
}

std::optional<DynBitset> LeaderBitGame::analytic_force(
    std::span<const GameValue> values, std::uint32_t target,
    std::uint32_t budget) const {
  DynBitset hidden(n_);
  // Hide the prefix up to the first player holding `target`.
  std::uint32_t used = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if ((values[i] != 0 ? 1u : 0u) == target) return hidden;
    if (++used > budget) return std::nullopt;
    hidden.set(i);
  }
  // Ran out of players: all-hidden defaults to 0.
  return target == 0 && used <= budget ? std::optional(hidden) : std::nullopt;
}

}  // namespace synran
