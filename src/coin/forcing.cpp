#include "coin/forcing.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

namespace {

/// Complete search over hiding sets of size ≤ budget, in increasing size
/// (so the witness is minimum-cardinality). Cost: Σ_{j≤budget} C(n,j)
/// evaluations — callers gate n and budget.
std::optional<DynBitset> exhaustive_force(const CoinGame& game,
                                          std::span<const GameValue> values,
                                          std::uint32_t target,
                                          std::uint32_t budget) {
  const std::uint32_t n = game.players();
  DynBitset hidden(n);
  if (game.outcome(values, hidden) == target) return hidden;

  std::vector<std::uint32_t> idx;
  for (std::uint32_t size = 1; size <= budget && size <= n; ++size) {
    // Iterate all C(n, size) combinations.
    idx.resize(size);
    for (std::uint32_t i = 0; i < size; ++i) idx[i] = i;
    for (;;) {
      DynBitset h(n);
      for (auto i : idx) h.set(i);
      if (game.outcome(values, h) == target) return h;
      // next combination
      std::int64_t pos = static_cast<std::int64_t>(size) - 1;
      while (pos >= 0 && idx[static_cast<std::size_t>(pos)] ==
                             n - size + static_cast<std::uint32_t>(pos))
        --pos;
      if (pos < 0) break;
      ++idx[static_cast<std::size_t>(pos)];
      for (auto j = static_cast<std::size_t>(pos) + 1; j < size; ++j)
        idx[j] = idx[j - 1] + 1;
    }
  }
  return std::nullopt;
}

/// Greedy hill-climbing: repeatedly hide the single additional value that
/// reaches the target, or failing that, any value (preferring ones that
/// change the outcome at all) — a cheap heuristic with one-sided error.
std::optional<DynBitset> greedy_force(const CoinGame& game,
                                      std::span<const GameValue> values,
                                      std::uint32_t target,
                                      std::uint32_t budget) {
  const std::uint32_t n = game.players();
  DynBitset hidden(n);
  if (game.outcome(values, hidden) == target) return hidden;

  for (std::uint32_t used = 0; used < budget; ++used) {
    std::optional<std::uint32_t> changer;
    bool done = false;
    for (std::uint32_t i = 0; i < n && !done; ++i) {
      if (hidden.test(i)) continue;
      hidden.set(i);
      const std::uint32_t out = game.outcome(values, hidden);
      if (out == target) {
        done = true;
        break;  // keep i hidden
      }
      hidden.reset(i);
      if (!changer.has_value() &&
          out != game.outcome(values, hidden))  // moves the needle at all
        changer = i;
    }
    if (done) return hidden;
    if (!changer.has_value()) return std::nullopt;  // stuck
    hidden.set(*changer);
  }
  return std::nullopt;
}

}  // namespace

ForcingResult can_force(const CoinGame& game,
                        std::span<const GameValue> values,
                        std::uint32_t target, std::uint32_t budget,
                        const ForcingOptions& opts) {
  SYNRAN_REQUIRE(target < game.outcomes(), "target outcome out of range");
  SYNRAN_REQUIRE(values.size() == game.players(),
                 "value vector has wrong size");
  ForcingResult res;

  if (auto h = game.analytic_force(values, target, budget)) {
    res.forced = true;
    res.hiding = std::move(*h);
    res.method = ForcingMethod::Analytic;
    res.exact = true;
    SYNRAN_CHECK(res.hiding.count() <= budget);
    SYNRAN_CHECK(game.outcome(values, res.hiding) == target);
    return res;
  }
  if (game.analytic_force_is_complete()) {
    res.forced = false;
    res.method = ForcingMethod::Analytic;
    res.exact = true;
    return res;
  }

  if (game.players() <= opts.exhaustive_max_players &&
      budget <= opts.exhaustive_max_budget) {
    res.method = ForcingMethod::Exhaustive;
    res.exact = true;
    if (auto h = exhaustive_force(game, values, target, budget)) {
      res.forced = true;
      res.hiding = std::move(*h);
    }
    return res;
  }

  res.method = ForcingMethod::Greedy;
  res.exact = false;
  if (auto h = greedy_force(game, values, target, budget)) {
    res.forced = true;
    res.hiding = std::move(*h);
    res.exact = true;  // a positive witness is always definitive
  }
  return res;
}

double ControlEstimate::min_pr_unforceable() const {
  SYNRAN_REQUIRE(!pr_unforceable.empty(), "empty estimate");
  return *std::min_element(pr_unforceable.begin(), pr_unforceable.end());
}

std::uint32_t ControlEstimate::best_outcome() const {
  SYNRAN_REQUIRE(!pr_unforceable.empty(), "empty estimate");
  return static_cast<std::uint32_t>(
      std::min_element(pr_unforceable.begin(), pr_unforceable.end()) -
      pr_unforceable.begin());
}

ControlEstimate exact_control(const CoinGame& game, std::uint32_t budget,
                              const ForcingOptions& opts) {
  SYNRAN_REQUIRE(game.domain_size() == 2,
                 "exact control needs binary inputs");
  const std::uint32_t n = game.players();
  SYNRAN_REQUIRE(n <= 22, "exact control limited to n <= 22");

  ControlEstimate est;
  est.samples = 1ULL << n;
  est.unforceable_count.assign(game.outcomes(), 0);

  std::vector<GameValue> values(n);
  for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
    for (std::uint32_t i = 0; i < n; ++i)
      values[i] = static_cast<GameValue>((x >> i) & 1);
    for (std::uint32_t v = 0; v < game.outcomes(); ++v) {
      const auto res = can_force(game, values, v, budget, opts);
      SYNRAN_REQUIRE(res.exact || res.forced,
                     "exact control needs a definitive forcing decision");
      if (!res.forced) ++est.unforceable_count[v];
    }
  }
  est.pr_unforceable.reserve(game.outcomes());
  for (auto c : est.unforceable_count)
    est.pr_unforceable.push_back(static_cast<double>(c) /
                                 static_cast<double>(est.samples));
  return est;
}

ControlEstimate estimate_control(const CoinGame& game, std::uint32_t budget,
                                 std::size_t samples, std::uint64_t seed,
                                 const ForcingOptions& opts) {
  SYNRAN_REQUIRE(samples > 0, "need at least one sample");
  ControlEstimate est;
  est.samples = samples;
  est.unforceable_count.assign(game.outcomes(), 0);

  Xoshiro256 rng(seed);
  std::vector<GameValue> values;
  for (std::size_t s = 0; s < samples; ++s) {
    game.sample(rng, values);
    for (std::uint32_t v = 0; v < game.outcomes(); ++v) {
      const auto res = can_force(game, values, v, budget, opts);
      if (!res.forced) {
        ++est.unforceable_count[v];
        if (!res.exact) est.exact = false;
      }
    }
  }
  est.pr_unforceable.reserve(game.outcomes());
  for (auto c : est.unforceable_count)
    est.pr_unforceable.push_back(static_cast<double>(c) /
                                 static_cast<double>(samples));
  return est;
}

}  // namespace synran
