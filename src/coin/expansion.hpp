// Exact Hamming-ball expansion on the hypercube {0,1}^n — the quantity
// Lemma 2.1 bounds via Schechtman's theorem:
//
//   Pr(A) = α, l ≥ l₀ = 2√(n·ln(1/α))  ⇒  Pr(B(A,l)) ≥ 1 − e^{−(l−l₀)²/4n}.
//
// For n ≤ ~20 the 2^n-point space fits in memory, so Pr(B(A,l)) can be
// computed exactly by multi-source BFS and compared against the bound — and
// against the U^v sets of actual coin games, which is precisely how the
// paper uses the inequality.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coin/games.hpp"

namespace synran {

/// Exact expansion profile of a set A ⊆ {0,1}^n under the uniform measure.
class HypercubeExpansion {
 public:
  /// `member(x)` decides membership of the point whose bits are x.
  /// Cost: O(2^n · n) time, O(2^n) memory — callers keep n ≤ ~22.
  HypercubeExpansion(std::uint32_t n,
                     const std::function<bool(std::uint64_t)>& member);

  std::uint32_t n() const { return n_; }
  /// |A| / 2^n.
  double measure() const;
  /// Pr(B(A, l)) — the measure of the radius-l Hamming enlargement.
  double ball_measure(std::uint32_t l) const;
  /// Smallest l with Pr(B(A,l)) ≥ p (n+1 if unreachable, i.e. A empty).
  std::uint32_t radius_for(double p) const;
  /// Number of points at Hamming distance exactly d from A.
  std::uint64_t count_at_distance(std::uint32_t d) const;

 private:
  std::uint32_t n_;
  std::vector<std::uint64_t> count_at_distance_;  ///< index d
};

/// The U^v set of a game over binary inputs: points from which a
/// budget-limited adversary cannot force outcome v (using the game's exact
/// forcing when available, exhaustive search otherwise). Only meaningful for
/// games with domain_size() == 2 and small player counts.
HypercubeExpansion expansion_of_unforceable_set(const CoinGame& game,
                                                std::uint32_t target,
                                                std::uint32_t budget);

}  // namespace synran
