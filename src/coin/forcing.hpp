// Forcing search and control estimation for one-round games (§2.1).
//
// "Control" in the paper: a t-adversary controls the game toward v when it
// can force outcome v with probability > 1 − 1/n over the input draw. The
// quantity measured is Pr(U^v) — the probability that NO hiding set of size
// ≤ t yields v — and Lemma 2.1 shows min_v Pr(U^v) < 1/n once
// t > k·4√(n·ln n).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coin/games.hpp"
#include "common/rng.hpp"

namespace synran {

/// How a forcing decision was reached — matters for interpreting estimates:
/// greedy search can miss forcings (one-sided error), analytic/exhaustive
/// cannot.
enum class ForcingMethod : std::uint8_t {
  Analytic,    ///< the game's own exact rule
  Exhaustive,  ///< complete subset search (exact, small n only)
  Greedy,      ///< hill-climbing (may miss feasible forcings)
};

struct ForcingResult {
  bool forced = false;
  DynBitset hiding;  ///< witnesses `forced`; empty set when already at target
  ForcingMethod method = ForcingMethod::Greedy;
  bool exact = false;  ///< a negative answer is definitive
};

struct ForcingOptions {
  /// Upper limit on players for the exhaustive fallback; above it, greedy.
  std::uint32_t exhaustive_max_players = 22;
  /// Upper limit on the hiding-set size the exhaustive search explores
  /// (combinatorial growth); above it, greedy.
  std::uint32_t exhaustive_max_budget = 3;
};

/// Can the adversary force `target` from this input vector by hiding at most
/// `budget` values? Tries the game's analytic rule, then exhaustive search
/// (when small enough), then greedy hill-climbing.
ForcingResult can_force(const CoinGame& game,
                        std::span<const GameValue> values,
                        std::uint32_t target, std::uint32_t budget,
                        const ForcingOptions& opts = {});

/// Monte-Carlo estimate of Pr(U^v) for each outcome v: the probability that
/// `budget` hidings cannot force v. Returns one estimate per outcome.
/// When the underlying decision procedure is inexact (greedy), the estimates
/// are upper bounds on the true Pr(U^v).
struct ControlEstimate {
  std::vector<double> pr_unforceable;  ///< \hat{Pr}(U^v), indexed by outcome
  std::vector<std::size_t> unforceable_count;
  std::size_t samples = 0;
  bool exact = true;  ///< all per-sample decisions were definitive

  /// min_v \hat{Pr}(U^v) — the Lemma 2.1 quantity.
  double min_pr_unforceable() const;
  /// The outcome attaining the minimum (the controllable direction).
  std::uint32_t best_outcome() const;
};

ControlEstimate estimate_control(const CoinGame& game, std::uint32_t budget,
                                 std::size_t samples, std::uint64_t seed,
                                 const ForcingOptions& opts = {});

/// EXACT Pr(U^v) by enumerating the full input space — no sampling error.
/// Requires a binary-input game with ≤ 22 players and a definitive forcing
/// decision (analytic or exhaustive) for every point; throws otherwise.
ControlEstimate exact_control(const CoinGame& game, std::uint32_t budget,
                              const ForcingOptions& opts = {});

}  // namespace synran
