// Repeated-execution harness shared by tests, examples, and the bench
// tables: input patterns, per-rep seeding, and aggregate verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"

namespace synran {

/// Input assignments used across the experiment suite.
enum class InputPattern : std::uint8_t {
  AllZero,
  AllOne,
  Half,      ///< first half 0, second half 1
  Random,    ///< i.i.d. fair bits (fresh per rep)
  SingleZero ///< one 0 among 1s (the chain adversary's workload)
};

const char* to_string(InputPattern p);

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng);

/// Builds a fresh adversary for one repetition; `seed` decorrelates
/// adversary randomness across reps.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t seed)>;

AdversaryFactory no_adversary_factory();

/// Aggregates over repeated executions.
struct RepeatedRunStats {
  Summary rounds_to_decision;
  Summary rounds_to_halt;
  Summary crashes_used;
  std::size_t reps = 0;
  std::size_t agreement_failures = 0;
  std::size_t validity_failures = 0;
  std::size_t non_terminated = 0;
  std::size_t decided_one = 0;  ///< reps whose common decision was 1

  bool all_safe() const {
    return agreement_failures == 0 && validity_failures == 0 &&
           non_terminated == 0;
  }
};

struct RepeatSpec {
  std::uint32_t n = 0;
  InputPattern pattern = InputPattern::Random;
  EngineOptions engine;  ///< engine.seed is re-derived per rep
  std::size_t reps = 1;
  std::uint64_t seed = 1;  ///< master seed for the whole batch
};

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec);

}  // namespace synran
