// Repeated-execution harness shared by tests, examples, and the bench
// tables: input patterns, per-rep seeding, and aggregate verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"

namespace synran {

/// Input assignments used across the experiment suite.
enum class InputPattern : std::uint8_t {
  AllZero,
  AllOne,
  Half,      ///< first half 0, second half 1
  Random,    ///< i.i.d. fair bits (fresh per rep)
  SingleZero ///< one 0 among 1s (the chain adversary's workload)
};

const char* to_string(InputPattern p);

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng);

/// Builds a fresh adversary for one repetition; `seed` decorrelates
/// adversary randomness across reps.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t seed)>;

AdversaryFactory no_adversary_factory();

/// Aggregates over repeated executions, backed by a metrics registry so the
/// whole batch serializes to JSON in one call (metrics().to_json()). The
/// named accessors are thin adapters over the registry entries; anything a
/// new experiment wants to track rides along in the same registry without
/// touching this struct again.
///
/// Registry contents:
///   summaries  rounds_to_decision, rounds_to_halt (terminated reps only),
///              crashes_used, messages_delivered (all reps)
///   counters   reps, agreement_failures, validity_failures,
///              non_terminated, decided_one
class RepeatedRunStats {
 public:
  RepeatedRunStats();

  /// Expected rounds to decision across terminated reps.
  const Summary& rounds_to_decision() const;
  const Summary& rounds_to_halt() const;
  /// Adversary crash spend per rep (all reps).
  const Summary& crashes_used() const;
  /// Point-to-point deliveries per rep (communication complexity).
  const Summary& messages_delivered() const;

  std::size_t reps() const;
  std::size_t agreement_failures() const;
  std::size_t validity_failures() const;
  std::size_t non_terminated() const;
  /// Reps whose common decision was 1.
  std::size_t decided_one() const;

  bool all_safe() const {
    return agreement_failures() == 0 && validity_failures() == 0 &&
           non_terminated() == 0;
  }

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  obs::MetricsRegistry metrics_;
};

struct RepeatSpec {
  std::uint32_t n = 0;
  InputPattern pattern = InputPattern::Random;
  EngineOptions engine;  ///< engine.seed is re-derived per rep
  std::size_t reps = 1;
  std::uint64_t seed = 1;  ///< master seed for the whole batch
};

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec);

}  // namespace synran
