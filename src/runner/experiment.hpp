// Repeated-execution harness shared by tests, examples, and the bench
// tables. The batch vocabulary (InputPattern, RepeatSpec, RepeatedRunStats,
// seeding schema) lives in exec/batch.hpp; run_repeated is a thin front over
// the deterministic batch executor in exec/executor.hpp, so the same spec
// produces bit-identical statistics at any thread count.
#pragma once

#include "exec/async_batch.hpp"
#include "exec/async_executor.hpp"
#include "exec/batch.hpp"
#include "exec/executor.hpp"

namespace synran {

/// Runs spec.reps seeded executions (spec.threads workers; see RepeatSpec)
/// and returns the aggregate. Equivalent to
/// exec::BatchExecutor().run(factory, adversaries, spec).
RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec);

/// Async counterpart: spec.reps event-driven executions through
/// exec::AsyncBatchExecutor, same thread-count-invariance contract.
AsyncRunStats run_repeated_async(const AsyncProcessFactory& factory,
                                 const AsyncSchedulerFactory& schedulers,
                                 const AsyncDelayFactory& delays,
                                 const AsyncRepeatSpec& spec);

}  // namespace synran
