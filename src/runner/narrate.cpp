#include "runner/narrate.hpp"

#include <iomanip>
#include <ostream>
#include <string>

namespace synran {

namespace {

std::string composition_bar(const RoundTrace& r, std::size_t width) {
  if (r.senders == 0) return std::string(width, '.');
  const auto ones = static_cast<std::size_t>(
      static_cast<double>(r.ones) / r.senders * static_cast<double>(width) +
      0.5);
  std::string bar(width, '0');
  for (std::size_t i = 0; i < ones && i < width; ++i) bar[i] = '1';
  return bar;
}

bool same_shape(const RoundTrace& a, const RoundTrace& b) {
  return a.alive == b.alive && a.halted == b.halted &&
         a.senders == b.senders && a.ones == b.ones && a.zeros == b.zeros &&
         a.crashes == b.crashes && a.decided == b.decided;
}

void emit_line(std::ostream& os, const RoundTrace& r, std::size_t repeat,
               std::size_t width) {
  os << "r" << std::setw(4) << std::left << r.round << std::right << " ["
     << composition_bar(r, width) << "] " << std::setw(4) << r.ones << "x1 "
     << std::setw(4) << r.zeros << "x0  alive " << std::setw(4) << r.alive
     << "  decided " << std::setw(4) << r.decided;
  if (r.halted > 0) os << "  halted " << r.halted;
  if (r.deterministic > 0) os << "  det-stage " << r.deterministic;
  if (r.crashes > 0) os << "  CRASH x" << r.crashes;
  if (repeat > 1) os << "   (x" << repeat << " rounds)";
  os << '\n';
}

}  // namespace

void narrate(const Trace& trace, std::ostream& os,
             const NarrateOptions& options) {
  os << "execution narrative: n = " << trace.n << ", t = " << trace.t_budget
     << ", " << trace.rounds.size() << " rounds, "
     << trace.total_crashes() << " crashes\n";
  std::size_t i = 0;
  while (i < trace.rounds.size()) {
    std::size_t j = i + 1;
    if (options.collapse_repeats) {
      while (j < trace.rounds.size() &&
             same_shape(trace.rounds[i], trace.rounds[j]))
        ++j;
    }
    emit_line(os, trace.rounds[i], j - i, options.bar_width);
    i = j;
  }
}

}  // namespace synran
