// Human-readable execution narration: renders a recorded Trace as the
// round-by-round story the paper's arguments are about — population,
// traffic composition, adversary spend — so a single execution can be read
// like the proof sketches read.
#pragma once

#include <iosfwd>

#include "sim/trace.hpp"

namespace synran {

struct NarrateOptions {
  /// Collapse runs of identical-looking rounds into one "× k" line.
  bool collapse_repeats = true;
  /// Width of the ones/zeros composition bar.
  std::size_t bar_width = 30;
};

/// Writes one line per round (or per collapsed run) to `os`.
void narrate(const Trace& trace, std::ostream& os,
             const NarrateOptions& options = {});

}  // namespace synran
