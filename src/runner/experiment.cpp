#include "runner/experiment.hpp"

#include "common/check.hpp"

namespace synran {

const char* to_string(InputPattern p) {
  switch (p) {
    case InputPattern::AllZero:
      return "all-0";
    case InputPattern::AllOne:
      return "all-1";
    case InputPattern::Half:
      return "half";
    case InputPattern::Random:
      return "random";
    case InputPattern::SingleZero:
      return "single-0";
  }
  return "?";
}

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng) {
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  std::vector<Bit> inputs(n, Bit::Zero);
  switch (pattern) {
    case InputPattern::AllZero:
      break;
    case InputPattern::AllOne:
      inputs.assign(n, Bit::One);
      break;
    case InputPattern::Half:
      for (std::uint32_t i = n / 2; i < n; ++i) inputs[i] = Bit::One;
      break;
    case InputPattern::Random:
      for (auto& b : inputs) b = bit_of(rng.flip());
      break;
    case InputPattern::SingleZero:
      inputs.assign(n, Bit::One);
      inputs[rng.below(n)] = Bit::Zero;
      break;
  }
  return inputs;
}

AdversaryFactory no_adversary_factory() {
  return [](std::uint64_t) { return std::make_unique<NoAdversary>(); };
}

RepeatedRunStats::RepeatedRunStats() {
  // Pre-register everything the accessors expose so a zero-rep aggregate
  // still reads back as zeros instead of "unknown metric".
  metrics_.summary("rounds_to_decision");
  metrics_.summary("rounds_to_halt");
  metrics_.summary("crashes_used");
  metrics_.summary("messages_delivered");
  metrics_.counter("reps");
  metrics_.counter("agreement_failures");
  metrics_.counter("validity_failures");
  metrics_.counter("non_terminated");
  metrics_.counter("decided_one");
}

const Summary& RepeatedRunStats::rounds_to_decision() const {
  return metrics_.summary_at("rounds_to_decision");
}
const Summary& RepeatedRunStats::rounds_to_halt() const {
  return metrics_.summary_at("rounds_to_halt");
}
const Summary& RepeatedRunStats::crashes_used() const {
  return metrics_.summary_at("crashes_used");
}
const Summary& RepeatedRunStats::messages_delivered() const {
  return metrics_.summary_at("messages_delivered");
}
std::size_t RepeatedRunStats::reps() const {
  return metrics_.counter_at("reps").value();
}
std::size_t RepeatedRunStats::agreement_failures() const {
  return metrics_.counter_at("agreement_failures").value();
}
std::size_t RepeatedRunStats::validity_failures() const {
  return metrics_.counter_at("validity_failures").value();
}
std::size_t RepeatedRunStats::non_terminated() const {
  return metrics_.counter_at("non_terminated").value();
}
std::size_t RepeatedRunStats::decided_one() const {
  return metrics_.counter_at("decided_one").value();
}

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec) {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  RepeatedRunStats stats;
  obs::MetricsRegistry& m = stats.metrics();
  SeedSequence seeds(spec.seed);
  Xoshiro256 input_rng(seeds.stream(0xabcdefULL));

  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    auto inputs = make_inputs(spec.n, spec.pattern, input_rng);
    auto adversary = adversaries(seeds.stream(1000 + rep));
    EngineOptions opts = spec.engine;
    opts.seed = seeds.stream(2000000 + rep);

    const RunResult res = run_once(factory, inputs, *adversary, opts);

    m.counter("reps").inc();
    if (!res.terminated) {
      m.counter("non_terminated").inc();
    } else {
      m.summary("rounds_to_decision")
          .add(static_cast<double>(res.rounds_to_decision));
      m.summary("rounds_to_halt").add(static_cast<double>(res.rounds_to_halt));
    }
    m.summary("crashes_used").add(static_cast<double>(res.crashes_total));
    m.summary("messages_delivered")
        .add(static_cast<double>(res.messages_delivered));
    if (res.has_decision && !res.agreement)
      m.counter("agreement_failures").inc();
    if (!validity_holds(inputs, res)) m.counter("validity_failures").inc();
    if (res.agreement && res.decision == Bit::One)
      m.counter("decided_one").inc();
  }
  return stats;
}

}  // namespace synran
