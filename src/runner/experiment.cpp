#include "runner/experiment.hpp"

#include "common/check.hpp"

namespace synran {

const char* to_string(InputPattern p) {
  switch (p) {
    case InputPattern::AllZero:
      return "all-0";
    case InputPattern::AllOne:
      return "all-1";
    case InputPattern::Half:
      return "half";
    case InputPattern::Random:
      return "random";
    case InputPattern::SingleZero:
      return "single-0";
  }
  return "?";
}

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng) {
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  std::vector<Bit> inputs(n, Bit::Zero);
  switch (pattern) {
    case InputPattern::AllZero:
      break;
    case InputPattern::AllOne:
      inputs.assign(n, Bit::One);
      break;
    case InputPattern::Half:
      for (std::uint32_t i = n / 2; i < n; ++i) inputs[i] = Bit::One;
      break;
    case InputPattern::Random:
      for (auto& b : inputs) b = bit_of(rng.flip());
      break;
    case InputPattern::SingleZero:
      inputs.assign(n, Bit::One);
      inputs[rng.below(n)] = Bit::Zero;
      break;
  }
  return inputs;
}

AdversaryFactory no_adversary_factory() {
  return [](std::uint64_t) { return std::make_unique<NoAdversary>(); };
}

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec) {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  RepeatedRunStats stats;
  SeedSequence seeds(spec.seed);
  Xoshiro256 input_rng(seeds.stream(0xabcdefULL));

  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    auto inputs = make_inputs(spec.n, spec.pattern, input_rng);
    auto adversary = adversaries(seeds.stream(1000 + rep));
    EngineOptions opts = spec.engine;
    opts.seed = seeds.stream(2000000 + rep);

    const RunResult res = run_once(factory, inputs, *adversary, opts);

    ++stats.reps;
    if (!res.terminated) {
      ++stats.non_terminated;
    } else {
      stats.rounds_to_decision.add(
          static_cast<double>(res.rounds_to_decision));
      stats.rounds_to_halt.add(static_cast<double>(res.rounds_to_halt));
    }
    stats.crashes_used.add(static_cast<double>(res.crashes_total));
    if (res.has_decision && !res.agreement) ++stats.agreement_failures;
    if (!validity_holds(inputs, res)) ++stats.validity_failures;
    if (res.agreement && res.decision == Bit::One) ++stats.decided_one;
  }
  return stats;
}

}  // namespace synran
