#include "runner/experiment.hpp"

namespace synran {

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec) {
  return exec::BatchExecutor().run(factory, adversaries, spec);
}

}  // namespace synran
