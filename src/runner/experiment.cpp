#include "runner/experiment.hpp"

namespace synran {

RepeatedRunStats run_repeated(const ProcessFactory& factory,
                              const AdversaryFactory& adversaries,
                              const RepeatSpec& spec) {
  return exec::BatchExecutor().run(factory, adversaries, spec);
}

AsyncRunStats run_repeated_async(const AsyncProcessFactory& factory,
                                 const AsyncSchedulerFactory& schedulers,
                                 const AsyncDelayFactory& delays,
                                 const AsyncRepeatSpec& spec) {
  return exec::AsyncBatchExecutor().run(factory, schedulers, delays, spec);
}

}  // namespace synran
