#include "protocols/leadercoin.hpp"

#include "common/check.hpp"

namespace synran {

LeaderCoinProcess::LeaderCoinProcess(ProcessId id, std::uint32_t n, Bit input)
    : id_(id), n_(n), b_(input) {
  SYNRAN_REQUIRE(n >= 1, "LeaderCoin needs at least one process");
}

Payload LeaderCoinProcess::make_payload(CoinSource& coins) {
  Payload p = payload::of_bit(b_);
  if (leader_of(next_round_, n_) == id_) {
    // Embed this round's shared coin. The flip happens whether or not the
    // middle zone will need it — the adversary sees it either way (full
    // information), and burning one flip keeps the protocol oblivious to
    // its own future.
    const bool c = coins.flip();
    flipped_coin_ = true;
    p |= c ? kLeaderCoinOne : kLeaderCoinZero;
  }
  return p;
}

std::optional<Payload> LeaderCoinProcess::on_round(const Receipt* prev,
                                                   CoinSource& coins) {
  SYNRAN_CHECK_MSG(!halted_, "on_round called on a halted process");
  flipped_coin_ = false;

  if (prev == nullptr) {
    SYNRAN_CHECK(next_round_ == 1);
    const Payload p = make_payload(coins);
    ++next_round_;
    return p;
  }

  if (decided_) {
    if (help_rounds_left_ == 0) {
      halted_ = true;
      return std::nullopt;
    }
    --help_rounds_left_;
  } else {
    const std::uint64_t ones = prev->ones;
    const std::uint64_t count = prev->count;
    SYNRAN_CHECK(count > 0);  // own message always arrives
    if (10 * ones > 7 * count) {
      b_ = Bit::One;
      decided_ = true;
    } else if (10 * ones > 6 * count) {
      b_ = Bit::One;
    } else if (10 * ones < 3 * count) {
      b_ = Bit::Zero;
      decided_ = true;
    } else if (10 * ones < 4 * count) {
      b_ = Bit::Zero;
    } else if (prev->or_mask & kLeaderCoinOne) {
      b_ = Bit::One;  // the shared leader coin arrived
    } else if (prev->or_mask & kLeaderCoinZero) {
      b_ = Bit::Zero;
    } else {
      // Leader silent (crashed or suppressed): fall back to a local coin.
      b_ = bit_of(coins.flip());
      flipped_coin_ = true;
    }
  }

  const Payload p = make_payload(coins);
  ++next_round_;
  return p;
}

ProcessView LeaderCoinProcess::view() const {
  ProcessView v;
  v.estimate = b_;
  v.decided = decided_;
  v.halted = halted_;
  v.flipped_coin = flipped_coin_;
  v.deterministic = false;
  return v;
}

std::uint64_t LeaderCoinProcess::state_digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0x27d4eb2fu;
  h = mix(h, id_);
  h = mix(h, next_round_);
  h = mix(h, static_cast<std::uint64_t>(b_ == Bit::One) |
                 (static_cast<std::uint64_t>(decided_) << 1) |
                 (static_cast<std::uint64_t>(halted_) << 2) |
                 (static_cast<std::uint64_t>(help_rounds_left_) << 3));
  return h;
}

std::unique_ptr<Process> LeaderCoinProcess::clone() const {
  return std::make_unique<LeaderCoinProcess>(*this);
}

}  // namespace synran
