#include "protocols/synran.hpp"

#include <cmath>

#include "analysis/theory.hpp"
#include "common/check.hpp"

namespace synran {

SynRanProcess::SynRanProcess(ProcessId id, std::uint32_t n, Bit input,
                             SynRanOptions opts)
    : opts_(opts), n_(n), id_(id), b_(input) {
  SYNRAN_REQUIRE(n >= 1, "SynRan needs at least one process");
  SYNRAN_REQUIRE(opts.margins_valid(),
                 "threshold numerators must satisfy d1 > p1 >= p0 > d0");
  det_threshold_ = theory::deterministic_stage_threshold(n);
  det_rounds_ = static_cast<std::uint32_t>(std::ceil(det_threshold_)) +
                opts_.det_margin;
}

std::uint32_t SynRanProcess::n_history(std::int64_t k) const {
  if (k <= 0) return n_;  // the paper's N^{-1} = N^0 = n convention
  SYNRAN_CHECK_MSG(k + 3 >= static_cast<std::int64_t>(nhist_latest_) &&
                       k <= static_cast<std::int64_t>(nhist_latest_),
                   "N history queried outside the retained window");
  return nhist_[static_cast<std::size_t>(k) & 3];
}

void SynRanProcess::record_n(std::uint32_t round, std::uint32_t count) {
  SYNRAN_CHECK(round == nhist_latest_ + 1 || nhist_latest_ == 0);
  nhist_[round & 3] = count;
  nhist_latest_ = round;
}

std::optional<Payload> SynRanProcess::on_round(const Receipt* prev,
                                               CoinSource& coins) {
  SYNRAN_CHECK_MSG(!halted_, "on_round called on a halted process");
  flipped_coin_ = false;
  std::optional<Payload> out;
  if (mode_ == Mode::Probabilistic) {
    out = probabilistic_round(prev, coins);
  } else {
    out = deterministic_round(prev);
  }
  if (out.has_value()) ++next_round_;
  return out;
}

std::optional<Payload> SynRanProcess::probabilistic_round(const Receipt* prev,
                                                          CoinSource& coins) {
  if (prev == nullptr) {
    SYNRAN_CHECK_MSG(next_round_ == 1, "missing receipt after round 1");
    return payload::of_bit(b_);  // round 1: broadcast the input
  }

  const std::uint32_t r = next_round_ - 1;  // the round `prev` belongs to
  record_n(r, prev->count);

  // Hand-off check — first, exactly as in the pseudocode: once fewer than
  // √(n/ln n) messages arrive, broadcast b_i one more time and switch to the
  // deterministic stage.
  if (opts_.det_handoff &&
      static_cast<double>(prev->count) < det_threshold_) {
    mode_ = Mode::DetSync;
    return payload::of_bit(b_) | payload::kDeterministicFlag;
  }

  // Halting rule: a process that decided at round r-1 stops at round r iff
  // the message count is no longer collapsing (diff = N^{r-3} − N^r is at
  // most N^{r-2}/10); otherwise it rescinds `decided` and keeps going.
  if (decided_) {
    const std::uint32_t n3 = n_history(static_cast<std::int64_t>(r) - 3);
    const std::uint32_t n2 = n_history(static_cast<std::int64_t>(r) - 2);
    const std::uint32_t diff = n3 >= prev->count ? n3 - prev->count : 0;
    if (10ULL * diff <= n2) {
      halted_ = true;
      return std::nullopt;  // STOP
    }
    decided_ = false;
  }

  // Threshold update on O_i^r / Z_i^r. All comparisons in exact integer
  // arithmetic (10·O vs k·N) to match the paper's strict fractions.
  const std::uint64_t ones = prev->ones;
  if (opts_.coin_rule == CoinRule::OneSideBias) {
    // The paper's rules: thresholds against N^{r-1}, and the one-side-bias
    // clause Z = 0 ⇒ 1 between the 1-side and 0-side thresholds. The
    // numerators default to the paper's 7/6/5/4 over 10.
    const std::uint64_t np = n_history(static_cast<std::int64_t>(r) - 1);
    if (10 * ones > opts_.decide_one_num * np) {
      b_ = Bit::One;
      decided_ = true;
    } else if (10 * ones > opts_.propose_one_num * np) {
      b_ = Bit::One;
    } else if (prev->zeros == 0) {
      b_ = Bit::One;
    } else if (10 * ones < opts_.decide_zero_num * np) {
      b_ = Bit::Zero;
      decided_ = true;
    } else if (10 * ones < opts_.propose_zero_num * np) {
      b_ = Bit::Zero;
    } else {
      b_ = bit_of(coins.flip());
      flipped_coin_ = true;
    }
  } else {
    // Symmetric ablation: Ben-Or-style thresholds relative to the current
    // round's count; the collective coin is biasable in both directions.
    const std::uint64_t nc = prev->count;
    if (10 * ones > 7 * nc) {
      b_ = Bit::One;
      decided_ = true;
    } else if (10 * ones > 6 * nc) {
      b_ = Bit::One;
    } else if (10 * ones < 3 * nc) {
      b_ = Bit::Zero;
      decided_ = true;
    } else if (10 * ones < 4 * nc) {
      b_ = Bit::Zero;
    } else {
      b_ = bit_of(coins.flip());
      flipped_coin_ = true;
    }
  }
  return payload::of_bit(b_);
}

std::optional<Payload> SynRanProcess::deterministic_round(const Receipt* prev) {
  SYNRAN_CHECK_MSG(prev != nullptr, "deterministic stage before any receipt");
  const Payload values = prev->or_mask & (payload::kSupports0 |
                                          payload::kSupports1);
  if (mode_ == Mode::DetSync) {
    // `prev` is the hand-off round's receipt: every surviving participant's
    // current b (self included). It seeds the flood set.
    det_mask_ = values | payload::of_bit(b_);
    mode_ = Mode::DetFlood;
    det_floods_sent_ = 1;
    return det_mask_ | payload::kDeterministicFlag;
  }

  det_mask_ |= values;
  SYNRAN_CHECK(det_mask_ != 0);
  if (det_floods_sent_ >= det_rounds_) {
    // Flooding complete: decide the minimum value present (FloodMin rule).
    b_ = (det_mask_ & payload::kSupports0) ? Bit::Zero : Bit::One;
    decided_ = true;
    halted_ = true;
    return std::nullopt;
  }
  ++det_floods_sent_;
  return det_mask_ | payload::kDeterministicFlag;
}

ProcessView SynRanProcess::view() const {
  ProcessView v;
  v.estimate = b_;
  v.decided = decided_;
  v.halted = halted_;
  v.flipped_coin = flipped_coin_;
  v.deterministic = mode_ != Mode::Probabilistic;
  return v;
}

std::uint64_t SynRanProcess::state_digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0x5bd1e995u;
  h = mix(h, id_);
  h = mix(h, static_cast<std::uint64_t>(b_ == Bit::One) |
                 (static_cast<std::uint64_t>(decided_) << 1) |
                 (static_cast<std::uint64_t>(halted_) << 2) |
                 (static_cast<std::uint64_t>(mode_) << 3));
  h = mix(h, next_round_);
  for (auto nh : nhist_) h = mix(h, nh);
  h = mix(h, nhist_latest_);
  h = mix(h, det_mask_);
  h = mix(h, det_floods_sent_);
  return h;
}

std::unique_ptr<Process> SynRanProcess::clone() const {
  return std::make_unique<SynRanProcess>(*this);
}

}  // namespace synran
