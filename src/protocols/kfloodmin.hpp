// K-valued FloodMin: the natural multi-valued extension of the
// deterministic baseline. The synchronous fail-stop model makes multi-value
// consensus a direct generalization — flood the set of seen values for t+1
// rounds and decide the minimum. Payloads carry the value set as a bitmask
// in the (protocol-specific) upper payload bits, while the low two bits keep
// the binary convention so receipts stay meaningful to the fabric.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/process.hpp"

namespace synran {

/// A value in {0..k-1}, k ≤ 32.
using KValue = std::uint8_t;

struct KFloodMinOptions {
  std::uint32_t t = 0;  ///< tolerance; runs t+1 exchange rounds
  std::uint32_t k = 2;  ///< value domain size (≤ 32)
};

class KFloodMinProcess final : public Process {
 public:
  /// `input` (the Bit from the factory interface) is ignored when a k-ary
  /// input was provided through the k-ary constructor.
  KFloodMinProcess(ProcessId id, std::uint32_t n, KValue input,
                   KFloodMinOptions opts);

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override {
    return decision_value_ == 0 ? Bit::Zero : Bit::One;
  }
  bool halted() const override { return halted_; }
  ProcessView view() const override;
  std::uint64_t state_digest() const override;
  std::unique_ptr<Process> clone() const override;

  /// The k-ary decision (only valid once decided()).
  KValue decision_value() const { return decision_value_; }
  KValue min_seen() const;

 private:
  static constexpr int kSetShift = 8;  ///< value-set bitmask position

  KFloodMinOptions opts_;
  std::uint32_t n_ = 0;
  ProcessId id_ = 0;
  std::uint32_t set_ = 0;  ///< bitmask of seen values
  std::uint32_t next_round_ = 1;
  bool decided_ = false;
  bool halted_ = false;
  KValue decision_value_ = 0;
};

/// Factory over k-ary inputs. The base-class `make` maps Bit inputs to the
/// values 0/1 so the binary engine APIs keep working.
class KFloodMinFactory final : public ProcessFactory {
 public:
  explicit KFloodMinFactory(KFloodMinOptions opts) : opts_(opts) {}

  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<KFloodMinProcess>(
        id, n, static_cast<KValue>(to_int(input)), opts_);
  }
  std::unique_ptr<KFloodMinProcess> make_k(ProcessId id, std::uint32_t n,
                                           KValue input) const {
    return std::make_unique<KFloodMinProcess>(id, n, input, opts_);
  }
  const char* name() const override { return "kfloodmin"; }

 private:
  KFloodMinOptions opts_;
};

}  // namespace synran
