// K-valued FloodMin: the natural multi-valued extension of the
// deterministic baseline. The synchronous fail-stop model makes multi-value
// consensus a direct generalization — flood the set of seen values for t+1
// rounds and decide the minimum. Payloads carry the value set as a bitmask
// in the (protocol-specific) upper payload bits, while the low two bits keep
// the binary convention so receipts stay meaningful to the fabric.
//
// The validity-hardened variant (corrupt_tolerance > 0) additionally
// survives corrupted-value faults (CorruptionDirective): plain FloodMin
// adopts any value it ever sees, so a single forged "0" in an all-1 system
// destroys validity. Hardening filters admissions per round — values 0/1
// need more supporting senders than the tolerance (a forged link contributes
// at most one supporter per corruption directive), values ≥ 2 must persist
// across more rounds than the tolerance — and runs tolerance extra exchange
// rounds so honest values still flood to everyone.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "sim/process.hpp"

namespace synran {

/// A value in {0..k-1}, k ≤ 32.
using KValue = std::uint8_t;

struct KFloodMinOptions {
  std::uint32_t t = 0;  ///< tolerance; runs t+1 exchange rounds
  std::uint32_t k = 2;  ///< value domain size (≤ 32)
  /// Max corrupted-value directives tolerated per round; 0 — the default —
  /// is plain FloodMin, bit for bit. When positive, admissions are filtered
  /// (see the header comment) and the protocol runs t+1+corrupt_tolerance
  /// exchange rounds.
  std::uint32_t corrupt_tolerance = 0;
};

class KFloodMinProcess final : public Process {
 public:
  /// `input` (the Bit from the factory interface) is ignored when a k-ary
  /// input was provided through the k-ary constructor.
  KFloodMinProcess(ProcessId id, std::uint32_t n, KValue input,
                   KFloodMinOptions opts);

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override {
    return decision_value_ == 0 ? Bit::Zero : Bit::One;
  }
  bool halted() const override { return halted_; }
  ProcessView view() const override;
  std::uint64_t state_digest() const override;
  std::unique_ptr<Process> clone() const override;

  /// The k-ary decision (only valid once decided()).
  KValue decision_value() const { return decision_value_; }
  KValue min_seen() const;

 private:
  static constexpr int kSetShift = 8;  ///< value-set bitmask position

  KFloodMinOptions opts_;
  std::uint32_t n_ = 0;
  ProcessId id_ = 0;
  std::uint32_t set_ = 0;  ///< bitmask of seen values
  /// Hardened mode only: per-value count of rounds the value was observed
  /// in the receipt or_mask without yet being admitted (values ≥ 2).
  std::array<std::uint32_t, 32> seen_rounds_{};
  std::uint32_t next_round_ = 1;
  bool decided_ = false;
  bool halted_ = false;
  KValue decision_value_ = 0;
};

/// Factory over k-ary inputs. The base-class `make` maps Bit inputs to the
/// values 0/1 so the binary engine APIs keep working.
class KFloodMinFactory final : public ProcessFactory {
 public:
  explicit KFloodMinFactory(KFloodMinOptions opts) : opts_(opts) {}

  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<KFloodMinProcess>(
        id, n, static_cast<KValue>(to_int(input)), opts_);
  }
  std::unique_ptr<KFloodMinProcess> make_k(ProcessId id, std::uint32_t n,
                                           KValue input) const {
    return std::make_unique<KFloodMinProcess>(id, n, input, opts_);
  }
  const char* name() const override {
    return opts_.corrupt_tolerance > 0 ? "kfloodmin-hardened" : "kfloodmin";
  }

 private:
  KFloodMinOptions opts_;
};

}  // namespace synran
