#include "protocols/kfloodmin.hpp"

#include <bit>

#include "common/check.hpp"

namespace synran {

KFloodMinProcess::KFloodMinProcess(ProcessId id, std::uint32_t n,
                                   KValue input, KFloodMinOptions opts)
    : opts_(opts), n_(n), id_(id) {
  SYNRAN_REQUIRE(n >= 1, "KFloodMin needs at least one process");
  SYNRAN_REQUIRE(opts.t < n, "KFloodMin requires t < n");
  SYNRAN_REQUIRE(opts.k >= 2 && opts.k <= 32, "k must be in 2..32");
  SYNRAN_REQUIRE(input < opts.k, "input outside the value domain");
  set_ = 1u << input;
}

KValue KFloodMinProcess::min_seen() const {
  SYNRAN_CHECK(set_ != 0);
  return static_cast<KValue>(std::countr_zero(set_));
}

std::optional<Payload> KFloodMinProcess::on_round(const Receipt* prev,
                                                  CoinSource& /*coins*/) {
  SYNRAN_CHECK_MSG(!halted_, "on_round called on a halted process");
  if (prev != nullptr) {
    const auto seen = static_cast<std::uint32_t>(prev->or_mask >> kSetShift) &
                      ((opts_.k >= 32 ? 0u : (1u << opts_.k)) - 1u);
    if (opts_.corrupt_tolerance == 0) {
      set_ |= seen;
    } else {
      // Hardened admission: a value enters the set only with more evidence
      // than `corrupt_tolerance` forged links per round can fabricate. The
      // low two values have exact supporter counts in the receipt; higher
      // values must persist across rounds (each extra round of persistence
      // costs the adversary another corruption directive).
      const std::uint32_t tol = opts_.corrupt_tolerance;
      std::uint32_t bits = seen & ~set_;
      while (bits != 0) {
        const auto v = static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (v == 0) {
          if (prev->zeros > tol) set_ |= 1u;
        } else if (v == 1) {
          if (prev->ones > tol) set_ |= 2u;
        } else if (++seen_rounds_[v] > tol) {
          set_ |= 1u << v;
        }
      }
    }
  }
  if (next_round_ > opts_.t + 1 + opts_.corrupt_tolerance) {
    decided_ = true;
    decision_value_ = min_seen();
    halted_ = true;
    return std::nullopt;
  }
  ++next_round_;
  // Mirror the min value into the low-two-bit convention (0 if value 0 is
  // present, else "1") so binary-minded tooling still sees something sane.
  const Payload low = (set_ & 1u) ? payload::kSupports0 : payload::kSupports1;
  return (static_cast<Payload>(set_) << kSetShift) | low;
}

ProcessView KFloodMinProcess::view() const {
  ProcessView v;
  v.estimate = (set_ & 1u) ? Bit::Zero : Bit::One;
  v.decided = decided_;
  v.halted = halted_;
  v.deterministic = true;
  return v;
}

std::uint64_t KFloodMinProcess::state_digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0x85ebca6bu;
  h = mix(h, id_);
  h = mix(h, set_);
  h = mix(h, next_round_);
  if (opts_.corrupt_tolerance > 0) {
    // Pending-admission evidence is protocol state too; gated so plain
    // FloodMin digests stay what they always were.
    for (std::uint32_t v = 2; v < opts_.k; ++v) h = mix(h, seen_rounds_[v]);
  }
  h = mix(h, static_cast<std::uint64_t>(decided_) |
                 (static_cast<std::uint64_t>(halted_) << 1) |
                 (static_cast<std::uint64_t>(decision_value_) << 8));
  return h;
}

std::unique_ptr<Process> KFloodMinProcess::clone() const {
  return std::make_unique<KFloodMinProcess>(*this);
}

}  // namespace synran
