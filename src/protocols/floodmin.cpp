#include "protocols/floodmin.hpp"

#include "common/check.hpp"

namespace synran {

FloodMinProcess::FloodMinProcess(ProcessId id, std::uint32_t n, Bit input,
                                 FloodMinOptions opts)
    : opts_(opts), n_(n), id_(id), mask_(payload::of_bit(input)) {
  SYNRAN_REQUIRE(n >= 1, "FloodMin needs at least one process");
  SYNRAN_REQUIRE(opts.t < n, "FloodMin requires t < n");
}

Bit FloodMinProcess::min_of_mask() const {
  return (mask_ & payload::kSupports0) ? Bit::Zero : Bit::One;
}

std::optional<Payload> FloodMinProcess::on_round(const Receipt* prev,
                                                 CoinSource& /*coins*/) {
  SYNRAN_CHECK_MSG(!halted_, "on_round called on a halted process");
  const std::uint32_t total_rounds = opts_.t + 1;

  if (prev != nullptr) {
    mask_ |= prev->or_mask & (payload::kSupports0 | payload::kSupports1);

    // Early deciding: my heard-from set is monotone non-increasing, so equal
    // counts in consecutive rounds mean an identical set — a clean round, in
    // which my flood set provably became complete.
    if (opts_.early_deciding && !decided_ && have_last_count_ &&
        prev->count == last_count_) {
      decided_ = true;
      decision_ = min_of_mask();
      decision_round_ = next_round_ - 1;
    }
    last_count_ = prev->count;
    have_last_count_ = true;
  }

  if (next_round_ > total_rounds) {
    // All t+1 exchanges done: final decision and halt.
    if (!decided_) {
      decided_ = true;
      decision_ = min_of_mask();
      decision_round_ = total_rounds;
    }
    halted_ = true;
    return std::nullopt;
  }

  ++next_round_;
  return mask_;
}

ProcessView FloodMinProcess::view() const {
  ProcessView v;
  v.estimate = min_of_mask();
  v.decided = decided_;
  v.halted = halted_;
  v.flipped_coin = false;
  v.deterministic = true;
  return v;
}

std::uint64_t FloodMinProcess::state_digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0xc2b2ae35u;
  h = mix(h, id_);
  h = mix(h, mask_);
  h = mix(h, next_round_);
  h = mix(h, last_count_ | (static_cast<std::uint64_t>(have_last_count_) << 32));
  h = mix(h, static_cast<std::uint64_t>(decided_) |
                 (static_cast<std::uint64_t>(halted_) << 1) |
                 (static_cast<std::uint64_t>(decision_ == Bit::One) << 2));
  return h;
}

std::unique_ptr<Process> FloodMinProcess::clone() const {
  return std::make_unique<FloodMinProcess>(*this);
}

}  // namespace synran
