// LeaderCoin — a Chor-Merritt-Shmoys-style [CMS89] constant-expected-round
// protocol for NON-adaptive fail-stop adversaries.
//
// §1.2 of the paper: "Chor, Merritt and Shmoys provide a randomized O(1)
// expected number of rounds protocol for non-adaptive fail-stop
// adversaries. In particular this shows that our lower bound does not hold
// without the adaptive selection of the faulty processes." This protocol
// makes that contrast executable:
//
//   * round r's pre-agreed leader is process (r−1) mod n; it embeds a fresh
//     coin flip in its broadcast;
//   * counted thresholds (relative to the current round's count) decide and
//     propose as usual; in the undecided middle zone every process adopts
//     the leader's coin if it arrived, else its own local coin;
//   * a decided process keeps broadcasting for two more rounds (so everyone
//     else crosses the decide threshold), then halts.
//
// Against an oblivious adversary the round-r leader is unlikely to die at
// exactly round r, so one or two leader rounds produce unanimity: O(1)
// expected rounds. An ADAPTIVE adversary simply kills each round's leader
// mid-broadcast (one crash per round) and stalls the protocol for ~t rounds
// — the cheapest possible demonstration of why the paper's lower bound
// needs adaptivity.
//
// Safety note: like the symmetric SynRan ablation, this protocol's
// agreement is NOT robust against adaptive partial-delivery attacks (it was
// never meant to be); the experiment suite runs it against view-preserving
// adversaries only.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/process.hpp"

namespace synran {

class LeaderCoinProcess final : public Process {
 public:
  LeaderCoinProcess(ProcessId id, std::uint32_t n, Bit input);

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override;
  std::uint64_t state_digest() const override;
  std::unique_ptr<Process> clone() const override;

  /// The pre-agreed leader of round r.
  static ProcessId leader_of(std::uint32_t round, std::uint32_t n) {
    return (round - 1) % n;
  }

  /// Payload flags for the leader's embedded coin (only one sender per
  /// round sets them, so the receipt's or_mask recovers the coin exactly).
  static constexpr Payload kLeaderCoinZero = 1ULL << 3;
  static constexpr Payload kLeaderCoinOne = 1ULL << 4;

 private:
  Payload make_payload(CoinSource& coins);

  ProcessId id_ = 0;
  std::uint32_t n_ = 0;
  Bit b_ = Bit::Zero;
  bool decided_ = false;
  bool halted_ = false;
  bool flipped_coin_ = false;
  std::uint32_t next_round_ = 1;
  std::uint32_t help_rounds_left_ = 2;
};

class LeaderCoinFactory final : public ProcessFactory {
 public:
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<LeaderCoinProcess>(id, n, input);
  }
  const char* name() const override { return "leadercoin"; }
};

}  // namespace synran
