// SynRan — the paper's §4 randomized synchronous consensus protocol.
//
// Faithful to the published pseudocode:
//   * counted thresholds against N_i^{r-1} (the previous round's message
//     count), with the decide margins 7/10 and 4/10 and the propose margins
//     6/10 and 5/10;
//   * the one-side-bias rule "Z_i^r = 0 ⇒ b_i = 1" that makes the collective
//     coin biasable only toward 0 (the heart of the upper bound);
//   * the halting rule: after deciding at round r, stop at round r+1 iff
//     N^{r-2} − N^{r+1} ≤ N^{r-1}/10 (the adversary must keep killing 10% of
//     the survivors every few rounds to block halting), else un-decide;
//   * the hand-off to a deterministic flooding stage once fewer than
//     √(n/ln n) messages arrive in a round.
//
// Two ablations used by the experiment suite are exposed as options:
//   * CoinRule::Symmetric replaces the one-side-bias machinery with the
//     symmetric-threshold variant of Ben-Or's protocol (thresholds relative
//     to the current round's count, no Z=0 rule) — the "simple variation of
//     [BO83]" the paper contrasts against;
//   * det_handoff=false removes the deterministic stage.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/process.hpp"

namespace synran {

enum class CoinRule : std::uint8_t {
  OneSideBias,  ///< the paper's SynRan rules
  Symmetric,    ///< Ben-Or-style symmetric thresholds (ablation baseline)
};

struct SynRanOptions {
  CoinRule coin_rule = CoinRule::OneSideBias;
  /// Hand off to the deterministic flooding stage below √(n/ln n) survivors.
  bool det_handoff = true;
  /// Extra flooding rounds beyond ⌈√(n/ln n)⌉ for crash-tolerance margin
  /// (the stage must outlast every crash pattern among its participants,
  /// including processes that joined the stage one round late).
  std::uint32_t det_margin = 2;

  /// The threshold numerators over a denominator of 10. The paper uses
  /// 7/6/5/4 — decide-1 above 7/10, propose-1 above 6/10, propose-0 below
  /// 5/10, decide-0 below 4/10 — and its correctness lemmas (4.1/4.2) rely
  /// on decide/propose gaps of at least 1/10. Exposed for the threshold
  /// sensitivity ablation (experiment E12); the defaults are the paper's.
  std::uint32_t decide_one_num = 7;
  std::uint32_t propose_one_num = 6;
  std::uint32_t propose_zero_num = 5;
  std::uint32_t decide_zero_num = 4;

  bool margins_valid() const {
    return decide_one_num > propose_one_num &&
           propose_one_num >= propose_zero_num &&
           propose_zero_num > decide_zero_num && decide_one_num <= 10;
  }
};

class SynRanProcess final : public Process {
 public:
  SynRanProcess(ProcessId id, std::uint32_t n, Bit input, SynRanOptions opts);

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override;
  std::uint64_t state_digest() const override;
  std::unique_ptr<Process> clone() const override;

  /// Current estimate b_i (exposed for adversaries/tests beyond view()).
  Bit estimate() const { return b_; }
  bool in_deterministic_stage() const { return mode_ != Mode::Probabilistic; }

 private:
  enum class Mode : std::uint8_t {
    Probabilistic,  ///< the randomized stage of §4
    DetSync,        ///< hand-off round: broadcast b_i once more
    DetFlood,       ///< FloodMin over the survivors' b values
  };

  std::optional<Payload> probabilistic_round(const Receipt* prev,
                                             CoinSource& coins);
  std::optional<Payload> deterministic_round(const Receipt* prev);
  /// N_i^k with the paper's convention N^{-1} = N^0 = n.
  std::uint32_t n_history(std::int64_t k) const;
  void record_n(std::uint32_t round, std::uint32_t count);

  SynRanOptions opts_;
  std::uint32_t n_ = 0;
  ProcessId id_ = 0;

  Bit b_ = Bit::Zero;
  bool decided_ = false;
  bool halted_ = false;
  bool flipped_coin_ = false;

  Mode mode_ = Mode::Probabilistic;
  std::uint32_t next_round_ = 1;  ///< round of the message about to be sent

  /// Ring of the last 4 message counts, indexed by round mod 4.
  std::uint32_t nhist_[4] = {0, 0, 0, 0};
  std::uint32_t nhist_latest_ = 0;  ///< largest round recorded

  double det_threshold_ = 0.0;   ///< √(n/ln n)
  std::uint32_t det_rounds_ = 0; ///< flooding rounds to run
  Payload det_mask_ = 0;         ///< values seen during the flooding stage
  std::uint32_t det_floods_sent_ = 0;
};

class SynRanFactory final : public ProcessFactory {
 public:
  explicit SynRanFactory(SynRanOptions opts = {}) : opts_(opts) {}
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<SynRanProcess>(id, n, input, opts_);
  }
  const char* name() const override {
    if (opts_.coin_rule == CoinRule::Symmetric) return "benor-sym";
    return opts_.det_handoff ? "synran" : "synran-nodet";
  }

 private:
  SynRanOptions opts_;
};

}  // namespace synran
