// FloodMin — the classic deterministic t+1-round crash-tolerant consensus
// (see e.g. Lynch, "Distributed Algorithms", ch. 6). Serves two roles here:
//
//  * the paper's deterministic baseline: any deterministic protocol needs
//    t+1 rounds in the worst case, and this one always takes exactly t+1
//    (experiment E7);
//  * a reference point for the early-deciding variant, which decides in
//    min(f+2, t+1) rounds when the adversary actually crashes only f
//    processes — the "adaptivity gap" the randomized protocol exploits.
//
// Each process floods the set of input values it has seen (as the low-2-bit
// payload mask) for R = t+1 rounds, then decides the minimum value present.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/process.hpp"

namespace synran {

struct FloodMinOptions {
  /// Fault tolerance t; the protocol runs t+1 exchange rounds.
  std::uint32_t t = 0;
  /// Decide early at the first "clean" round (identical heard-from counts in
  /// two consecutive rounds). The process keeps flooding until round t+1 so
  /// that late deciders still receive everything, but the decision itself is
  /// fixed at the clean round.
  bool early_deciding = false;
};

class FloodMinProcess final : public Process {
 public:
  FloodMinProcess(ProcessId id, std::uint32_t n, Bit input,
                  FloodMinOptions opts);

  std::optional<Payload> on_round(const Receipt* prev,
                                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override { return decision_; }
  bool halted() const override { return halted_; }
  ProcessView view() const override;
  std::uint64_t state_digest() const override;
  std::unique_ptr<Process> clone() const override;

  /// Exchange round in which the decision was fixed (for E7 reporting).
  std::uint32_t decision_round() const { return decision_round_; }

 private:
  Bit min_of_mask() const;

  FloodMinOptions opts_;
  std::uint32_t n_ = 0;
  ProcessId id_ = 0;

  Payload mask_ = 0;  ///< values seen (low-2-bit convention)
  std::uint32_t next_round_ = 1;
  std::uint32_t last_count_ = 0;  ///< N of the previous receipt
  bool have_last_count_ = false;

  bool decided_ = false;
  bool halted_ = false;
  Bit decision_ = Bit::Zero;
  std::uint32_t decision_round_ = 0;
};

class FloodMinFactory final : public ProcessFactory {
 public:
  explicit FloodMinFactory(FloodMinOptions opts) : opts_(opts) {}
  std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                Bit input) const override {
    return std::make_unique<FloodMinProcess>(id, n, input, opts_);
  }
  const char* name() const override {
    return opts_.early_deciding ? "floodmin-early" : "floodmin";
  }

 private:
  FloodMinOptions opts_;
};

}  // namespace synran
