// Broadcast delivery for one synchronous round.
//
// The fast path exploits that almost all senders deliver to *everyone*: it
// aggregates full-delivery senders once (O(n)) and then adjusts per receiver
// only for the few partially-delivered (crashed-this-round) senders, giving
// O(n + crashes·n_bits/64 + Σ|partial recipients|) per round instead of the
// naive O(n²). A deliberately naive reference implementation is provided for
// cross-checking in tests.
#pragma once

#include <optional>
#include <span>

#include "net/types.hpp"

namespace synran {

/// Inputs to one round of delivery.
struct RoundTraffic {
  /// Per-process outgoing payload; nullopt = sends nothing this round
  /// (crashed earlier, or voluntarily halted).
  std::span<const std::optional<Payload>> payloads;
  /// The fault plan chosen by the adversary for this round. Victims must be
  /// senders (payload present); the fabric checks this.
  const FaultPlan* plan = nullptr;
};

/// Computes the receipt of every process in `receivers` (set bits). Receipts
/// for non-receiver indices are value-initialized. `n` is the system size.
std::vector<Receipt> deliver(std::uint32_t n, const RoundTraffic& traffic,
                             const DynBitset& receivers);

/// Reference implementation: materializes every (sender → receiver) pair.
/// Used only by tests to validate `deliver`.
std::vector<Receipt> deliver_naive(std::uint32_t n, const RoundTraffic& traffic,
                                   const DynBitset& receivers);

}  // namespace synran
