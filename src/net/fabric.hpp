// Broadcast delivery for one synchronous round.
//
// The fast path exploits that almost all senders deliver to *everyone*: it
// aggregates full-delivery senders once (O(n)) and then adjusts per receiver
// only for the few partially-delivered senders — crashed-this-round victims
// add their payload to the recipients that still hear them, omission senders
// (live, but suppressed for a drop set) have their deliveries *subtracted*
// from the aggregate, and corruption senders have the true payload swapped
// for each target's forged one (subtract truth, add forgery; `count` stays
// put because the message still arrives), with the non-invertible or_mask
// rebuilt exactly from per-bit sender counts and forged masks OR'd back on
// top. Total cost stays
// O(n + faults·n_bits/64 + Σ|partial recipients| + Σ|faulted links|) per
// round instead of the naive O(n²). A deliberately naive reference
// implementation is provided for cross-checking in tests.
#pragma once

#include <optional>
#include <span>

#include "net/types.hpp"

namespace synran {

/// Inputs to one round of delivery.
struct RoundTraffic {
  /// Per-process outgoing payload; nullopt = sends nothing this round
  /// (crashed earlier, or voluntarily halted).
  std::span<const std::optional<Payload>> payloads;
  /// The fault plan chosen by the adversary for this round. Crash victims,
  /// omission senders, and corruption senders must be senders (payload
  /// present), and no process may appear in more than one directive family;
  /// the fabric checks this.
  const FaultPlan* plan = nullptr;
};

/// Computes the receipt of every process in `receivers` (set bits). Receipts
/// for non-receiver indices are value-initialized. `n` is the system size.
std::vector<Receipt> deliver(std::uint32_t n, const RoundTraffic& traffic,
                             const DynBitset& receivers);

/// Reference implementation: materializes every (sender → receiver) pair.
/// Used only by tests to validate `deliver`.
std::vector<Receipt> deliver_naive(std::uint32_t n, const RoundTraffic& traffic,
                                   const DynBitset& receivers);

}  // namespace synran
