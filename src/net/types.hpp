// Message-fabric vocabulary for the synchronous broadcast model of §3.1.
//
// Every protocol in this library broadcasts one small payload per round.
// Payload convention (shared by all protocols so receipts can aggregate
// uniformly):
//   bit 0 — the message "supports value 0"
//   bit 1 — the message "supports value 1"
//   bits 2..63 — protocol-specific flags (e.g. SynRan's deterministic-stage
//                marker). Aggregated only through `or_mask`.
// A probabilistic-stage SynRan message carrying b_i sets exactly one of the
// low two bits; a FloodMin message may set both.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/ids.hpp"

namespace synran {

using Payload = std::uint64_t;

/// Payload helpers for the low-two-bit value-mask convention.
namespace payload {
constexpr Payload kSupports0 = 1ULL << 0;
constexpr Payload kSupports1 = 1ULL << 1;
/// Marks a message sent by a process already in its deterministic stage.
constexpr Payload kDeterministicFlag = 1ULL << 2;

constexpr Payload of_bit(Bit b) {
  return b == Bit::One ? kSupports1 : kSupports0;
}
constexpr bool supports(Payload p, Bit b) {
  return (p & (b == Bit::One ? kSupports1 : kSupports0)) != 0;
}
}  // namespace payload

/// What one process received in one round, in aggregate form. This is all the
/// paper's protocols ever need: N_i^r (count), O_i^r (ones), Z_i^r (zeros),
/// and the OR of payload masks for flooding.
struct Receipt {
  std::uint32_t count = 0;  ///< N_i^r — number of messages received
  std::uint32_t ones = 0;   ///< O_i^r — messages supporting 1
  std::uint32_t zeros = 0;  ///< Z_i^r — messages supporting 0
  Payload or_mask = 0;      ///< OR of all received payloads

  friend bool operator==(const Receipt&, const Receipt&) = default;
};

/// One process the adversary crashes during the current exchange phase, with
/// the subset of recipients that still receive its round message (§3.1: "the
/// adversary can decide which subset of its messages will be sent").
struct CrashDirective {
  ProcessId victim = 0;
  DynBitset deliver_to;  ///< size n; recipients that still get the message
};

/// A transient, non-crashing fault: one live sender's round message is
/// suppressed for a chosen subset of receivers. Unlike a crash the sender
/// stays alive and broadcasts normally in later rounds. This extends the
/// paper's strictly fail-stop §3.1 model (see DESIGN.md, "Omission faults").
struct OmissionDirective {
  ProcessId sender = 0;
  DynBitset drop_for;  ///< size n; receivers that do NOT get the message
};

/// A Byzantine value fault: one live sender's round message is *replaced* by
/// forged payloads for chosen receivers — the corrupted-value regime of the
/// Byzantine-agreement literature (King & Saia, JACM 2016 correction), well
/// beyond the paper's fail-stop §3.1 model. The sender stays alive and
/// honest in later rounds; each targeted receiver observes `forged` in place
/// of the true payload, and different receivers may be shown different
/// values (equivocation). Receivers not listed get the genuine message.
struct CorruptionDirective {
  /// One receiver's forged view of the sender's round message.
  struct Forgery {
    ProcessId target = 0;  ///< receiver shown the forged payload
    Payload forged = 0;    ///< what it observes instead of the truth
  };

  ProcessId sender = 0;
  std::vector<Forgery> forgeries;  ///< no duplicate targets
};

/// The adversary's action for one round. Processes not listed deliver to all
/// alive recipients; crash victims are failed and silent forever after;
/// omission senders lose this round's message to `drop_for` receivers but
/// keep running; corruption senders have this round's message replaced by
/// per-receiver forged values but keep running. A sender may appear in at
/// most one of the three directive families per plan (a crash's deliver_to
/// already fully determines its delivery, and an omitted link has no value
/// left to forge).
struct FaultPlan {
  std::vector<CrashDirective> crashes;
  std::vector<OmissionDirective> omissions;
  std::vector<CorruptionDirective> corruptions;

  bool empty() const {
    return crashes.empty() && omissions.empty() && corruptions.empty();
  }
  std::size_t crash_count() const { return crashes.size(); }
  std::size_t omission_count() const { return omissions.size(); }
  std::size_t corruption_count() const { return corruptions.size(); }
};

}  // namespace synran
