#include "net/fabric.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "common/check.hpp"

namespace synran {

namespace {

void accumulate(Receipt& r, Payload p) {
  ++r.count;
  if (p & payload::kSupports1) ++r.ones;
  if (p & payload::kSupports0) ++r.zeros;
  r.or_mask |= p;
}

void validate(std::uint32_t n, const RoundTraffic& traffic) {
  SYNRAN_REQUIRE(traffic.payloads.size() == n, "payloads size != n");
  if (traffic.plan == nullptr) return;
  DynBitset seen(n);
  for (const auto& c : traffic.plan->crashes) {
    SYNRAN_REQUIRE(c.victim < n, "crash victim out of range");
    SYNRAN_REQUIRE(traffic.payloads[c.victim].has_value(),
                   "crash victim is not sending this round");
    SYNRAN_REQUIRE(!seen.test(c.victim), "duplicate crash victim");
    SYNRAN_REQUIRE(c.deliver_to.size() == n, "deliver_to mask has wrong size");
    seen.set(c.victim);
  }
  DynBitset omitted(n);
  for (const auto& o : traffic.plan->omissions) {
    SYNRAN_REQUIRE(o.sender < n, "omission sender out of range");
    SYNRAN_REQUIRE(traffic.payloads[o.sender].has_value(),
                   "omission sender is not sending this round");
    SYNRAN_REQUIRE(!seen.test(o.sender),
                   "omission sender is also a crash victim");
    SYNRAN_REQUIRE(!omitted.test(o.sender), "duplicate omission sender");
    SYNRAN_REQUIRE(o.drop_for.size() == n, "drop_for mask has wrong size");
    omitted.set(o.sender);
  }
  DynBitset corrupted(n);
  DynBitset targets(n);
  for (const auto& cd : traffic.plan->corruptions) {
    SYNRAN_REQUIRE(cd.sender < n, "corruption sender out of range");
    SYNRAN_REQUIRE(traffic.payloads[cd.sender].has_value(),
                   "corruption sender is not sending this round");
    SYNRAN_REQUIRE(!seen.test(cd.sender),
                   "corruption sender is also a crash victim");
    SYNRAN_REQUIRE(!omitted.test(cd.sender),
                   "corruption sender is also an omission sender");
    SYNRAN_REQUIRE(!corrupted.test(cd.sender), "duplicate corruption sender");
    corrupted.set(cd.sender);
    targets.clear_all();
    for (const auto& fg : cd.forgeries) {
      SYNRAN_REQUIRE(fg.target < n, "forgery target out of range");
      SYNRAN_REQUIRE(!targets.test(fg.target), "duplicate forgery target");
      targets.set(fg.target);
    }
  }
}

/// Applies the plan's link-level faults — omitted deliveries and corrupted
/// (forged) deliveries — to receipts pre-filled with the full-sender
/// aggregate. Counts are additive, so removing a true payload is a decrement
/// (an omission removes it outright; a corruption removes it and accumulates
/// the forged payload in its place). The OR of payload masks is not
/// invertible, so affected receivers get their or_mask rebuilt exactly from
/// per-bit sender counts — bit b survives for receiver r iff some
/// full-aggregate sender whose *true* message still reaches r carries it —
/// and the receiver's forged payloads are OR'd back on top. Total cost
/// O(n·|payload bits| + Σ dropped links + Σ forged links), so the fast path
/// keeps its O(n + faults·n_bits/64) shape even when nearly every sender has
/// a small drop set (the chaos regime).
void apply_link_faults(std::uint32_t n, const RoundTraffic& traffic,
                       const DynBitset& receivers, const DynBitset& crashed,
                       const Receipt& full, std::vector<Receipt>& out) {
  // Per-bit population over the full-aggregate senders (every sender that is
  // sending and not crashed this round; omitted senders are among them).
  std::array<std::uint32_t, 64> base_bits{};
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!traffic.payloads[i].has_value() || crashed.test(i)) continue;
    Payload bits = *traffic.payloads[i];
    while (bits != 0) {
      base_bits[static_cast<std::size_t>(std::countr_zero(bits))] += 1;
      bits &= bits - 1;
    }
  }

  // Per-receiver dropped-sender counts, one lazily-sized column per payload
  // bit in use (a handful in practice: the value bits + the det flag).
  std::array<std::vector<std::uint32_t>, 64> drop_bits;
  DynBitset affected(n);
  const auto drop_true_payload = [&](Payload p, std::size_t r) {
    Receipt& out_r = out[r];
    if (p & payload::kSupports1) --out_r.ones;
    if (p & payload::kSupports0) --out_r.zeros;
    affected.set(r);
    Payload bits = p;
    while (bits != 0) {
      auto& column =
          drop_bits[static_cast<std::size_t>(std::countr_zero(bits))];
      if (column.empty()) column.assign(n, 0);
      column[r] += 1;
      bits &= bits - 1;
    }
  };
  for (const auto& o : traffic.plan->omissions) {
    const Payload p = *traffic.payloads[o.sender];
    o.drop_for.for_each_set([&](std::size_t r) {
      if (!receivers.test(r)) return;
      --out[r].count;
      drop_true_payload(p, r);
    });
  }

  // A corrupted link substitutes the forged payload for the true one: the
  // true payload is dropped exactly like an omission, the forged counts are
  // added directly, and the forged mask is OR'd on after the rebuild. The
  // message itself still arrives, so `count` is untouched.
  std::vector<Payload> forged_or;
  for (const auto& cd : traffic.plan->corruptions) {
    const Payload p = *traffic.payloads[cd.sender];
    for (const auto& fg : cd.forgeries) {
      const std::size_t r = fg.target;
      if (!receivers.test(r)) continue;
      drop_true_payload(p, r);
      Receipt& out_r = out[r];
      if (fg.forged & payload::kSupports1) ++out_r.ones;
      if (fg.forged & payload::kSupports0) ++out_r.zeros;
      if (forged_or.empty()) forged_or.assign(n, 0);
      forged_or[r] |= fg.forged;
    }
  }

  affected.for_each_set([&](std::size_t r) {
    Payload mask = 0;
    Payload bits = full.or_mask;
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint32_t dropped =
          drop_bits[b].empty() ? 0 : drop_bits[b][r];
      if (base_bits[b] > dropped) mask |= Payload{1} << b;
    }
    if (!forged_or.empty()) mask |= forged_or[r];
    out[r].or_mask = mask;
  });
}

}  // namespace

std::vector<Receipt> deliver(std::uint32_t n, const RoundTraffic& traffic,
                             const DynBitset& receivers) {
  validate(n, traffic);
  SYNRAN_REQUIRE(receivers.size() == n, "receivers mask has wrong size");

  // Aggregate over senders that deliver everywhere. Omitted senders stay in
  // the aggregate; their dropped links are subtracted per receiver below.
  DynBitset crashed_now(n);
  if (traffic.plan != nullptr) {
    for (const auto& c : traffic.plan->crashes) crashed_now.set(c.victim);
  }

  Receipt full{};
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!traffic.payloads[i].has_value() || crashed_now.test(i)) continue;
    accumulate(full, *traffic.payloads[i]);
  }

  std::vector<Receipt> out(n);
  receivers.for_each_set([&](std::size_t i) { out[i] = full; });

  // Link-fault application must precede the crash additions: it rebuilds
  // affected receivers' or_mask from the aggregate senders alone, and the
  // partial crash deliveries then OR their payloads back on top.
  if (traffic.plan != nullptr && (!traffic.plan->omissions.empty() ||
                                  !traffic.plan->corruptions.empty())) {
    apply_link_faults(n, traffic, receivers, crashed_now, full, out);
  }

  // Per-receiver adjustments for partially delivered senders.
  if (traffic.plan != nullptr) {
    for (const auto& c : traffic.plan->crashes) {
      const Payload p = *traffic.payloads[c.victim];
      c.deliver_to.for_each_set([&](std::size_t i) {
        if (receivers.test(i)) accumulate(out[i], p);
      });
    }
  }
  return out;
}

std::vector<Receipt> deliver_naive(std::uint32_t n, const RoundTraffic& traffic,
                                   const DynBitset& receivers) {
  validate(n, traffic);
  SYNRAN_REQUIRE(receivers.size() == n, "receivers mask has wrong size");

  // Build the full delivery matrix, then fold.
  std::vector<Receipt> out(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!traffic.payloads[s].has_value()) continue;
    const Payload p = *traffic.payloads[s];
    const DynBitset* mask = nullptr;
    const DynBitset* drop = nullptr;
    const CorruptionDirective* corrupt = nullptr;
    if (traffic.plan != nullptr) {
      for (const auto& c : traffic.plan->crashes) {
        if (c.victim == s) {
          mask = &c.deliver_to;
          break;
        }
      }
      for (const auto& o : traffic.plan->omissions) {
        if (o.sender == s) {
          drop = &o.drop_for;
          break;
        }
      }
      for (const auto& cd : traffic.plan->corruptions) {
        if (cd.sender == s) {
          corrupt = &cd;
          break;
        }
      }
    }
    for (std::uint32_t r = 0; r < n; ++r) {
      if (!receivers.test(r)) continue;
      if (mask != nullptr && !mask->test(r)) continue;
      if (drop != nullptr && drop->test(r)) continue;
      Payload observed = p;
      if (corrupt != nullptr) {
        for (const auto& fg : corrupt->forgeries) {
          if (fg.target == r) {
            observed = fg.forged;
            break;
          }
        }
      }
      accumulate(out[r], observed);
    }
  }
  return out;
}

}  // namespace synran
