#include "net/fabric.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

namespace {

void accumulate(Receipt& r, Payload p) {
  ++r.count;
  if (p & payload::kSupports1) ++r.ones;
  if (p & payload::kSupports0) ++r.zeros;
  r.or_mask |= p;
}

void validate(std::uint32_t n, const RoundTraffic& traffic) {
  SYNRAN_REQUIRE(traffic.payloads.size() == n, "payloads size != n");
  if (traffic.plan == nullptr) return;
  DynBitset seen(n);
  for (const auto& c : traffic.plan->crashes) {
    SYNRAN_REQUIRE(c.victim < n, "crash victim out of range");
    SYNRAN_REQUIRE(traffic.payloads[c.victim].has_value(),
                   "crash victim is not sending this round");
    SYNRAN_REQUIRE(!seen.test(c.victim), "duplicate crash victim");
    SYNRAN_REQUIRE(c.deliver_to.size() == n, "deliver_to mask has wrong size");
    seen.set(c.victim);
  }
}

}  // namespace

std::vector<Receipt> deliver(std::uint32_t n, const RoundTraffic& traffic,
                             const DynBitset& receivers) {
  validate(n, traffic);
  SYNRAN_REQUIRE(receivers.size() == n, "receivers mask has wrong size");

  // Aggregate over senders that deliver everywhere.
  DynBitset crashed_now(n);
  if (traffic.plan != nullptr) {
    for (const auto& c : traffic.plan->crashes) crashed_now.set(c.victim);
  }

  Receipt full{};
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!traffic.payloads[i].has_value() || crashed_now.test(i)) continue;
    accumulate(full, *traffic.payloads[i]);
  }

  std::vector<Receipt> out(n);
  receivers.for_each_set([&](std::size_t i) { out[i] = full; });

  // Per-receiver adjustments for partially delivered senders.
  if (traffic.plan != nullptr) {
    for (const auto& c : traffic.plan->crashes) {
      const Payload p = *traffic.payloads[c.victim];
      c.deliver_to.for_each_set([&](std::size_t i) {
        if (receivers.test(i)) accumulate(out[i], p);
      });
    }
  }
  return out;
}

std::vector<Receipt> deliver_naive(std::uint32_t n, const RoundTraffic& traffic,
                                   const DynBitset& receivers) {
  validate(n, traffic);
  SYNRAN_REQUIRE(receivers.size() == n, "receivers mask has wrong size");

  // Build the full delivery matrix, then fold.
  std::vector<Receipt> out(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!traffic.payloads[s].has_value()) continue;
    const Payload p = *traffic.payloads[s];
    const DynBitset* mask = nullptr;
    if (traffic.plan != nullptr) {
      for (const auto& c : traffic.plan->crashes) {
        if (c.victim == s) {
          mask = &c.deliver_to;
          break;
        }
      }
    }
    for (std::uint32_t r = 0; r < n; ++r) {
      if (!receivers.test(r)) continue;
      if (mask != nullptr && !mask->test(r)) continue;
      accumulate(out[r], p);
    }
  }
  return out;
}

}  // namespace synran
