// Wire framing for the synran-req/1 protocol.
//
// A frame is an ASCII decimal byte count, one '\n', then exactly that many
// bytes of UTF-8 JSON. Requests and responses use identical framing, over
// a Unix-domain socket or a pipe/file pair (`synran serve --stdio`):
//
//   59\n{"schema":"synran-req/1","id":"a","cmd":"run","config":{}}
//
// The length line is capped at 20 digits and the body at `max_frame`
// bytes (1 MiB by default), so a hostile or broken client can never make
// the daemon buffer unbounded input. Framing errors (non-digit length,
// oversized frame, EOF mid-body) are unrecoverable for a byte stream —
// there is no way to know where the next frame starts — so they raise
// FrameError and the connection is closed after a best-effort structured
// `protocol_error` response; malformed JSON *inside* a well-formed frame
// is recoverable and handled a layer up (request.hpp).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace synran::serve {

inline constexpr const char* kRequestSchema = "synran-req/1";
inline constexpr const char* kResponseSchema = "synran-resp/1";

/// Default cap on one frame's body, and on a response we will emit.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Unrecoverable stream-level failure: malformed framing, oversized frame,
/// truncated body, or a write to a disconnected peer.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Buffered frame reader over a POSIX fd (socket, pipe, or regular file).
class FrameReader {
 public:
  explicit FrameReader(int fd, std::size_t max_frame = kMaxFrameBytes);

  /// Blocking read of the next frame body. Returns false on clean EOF at a
  /// frame boundary. Throws FrameError on malformed framing or truncation.
  /// While blocked it polls in 100 ms slices and returns false early once
  /// exec::stop_requested() is set, so a drain signal is never stuck
  /// behind an idle client.
  bool next(std::string& body);

  /// True when a complete frame (or EOF) can be consumed without blocking:
  /// the queue-filling probe behind overload shedding. Performs
  /// non-blocking reads to make progress but never waits.
  bool available();

  /// EOF has been reached and the buffer holds no complete frame.
  bool exhausted() const;

 private:
  /// Reads more bytes into buf_. `blocking` waits (in poll slices);
  /// non-blocking returns immediately when nothing is readable. Returns
  /// false when no bytes were added.
  bool fill(bool blocking);
  /// Tries to cut one complete frame from buf_ into `body`.
  bool take(std::string& body);
  /// A complete frame is already buffered.
  bool buffered() const;

  int fd_;
  std::size_t max_frame_;
  std::string buf_;
  bool eof_ = false;
};

/// Writes one frame (length line + body). Throws FrameError on any short
/// write or I/O error — with SIGPIPE ignored, a vanished client surfaces
/// here as EPIPE instead of killing the daemon.
void write_frame(int fd, std::string_view body);

}  // namespace synran::serve
