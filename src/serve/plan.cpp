#include "serve/plan.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "adversary/basic.hpp"
#include "adversary/byzantine.hpp"
#include "adversary/coinbias.hpp"
#include "adversary/nonadaptive.hpp"
#include "adversary/omission.hpp"
#include "common/rng.hpp"
#include "protocols/floodmin.hpp"
#include "protocols/leadercoin.hpp"
#include "protocols/synran.hpp"
#include "runner/experiment.hpp"
#include "serve/request.hpp"

namespace synran::serve {

namespace {

using obs::JsonValue;

// The config reaching this file is canonical (parse_request validated it
// and filled every default), so a missing or ill-typed field here is a
// programming error, not client input. PlanError makes that loud.
[[noreturn]] void plan_bug(const std::string& what) {
  throw std::logic_error("plan: canonical config violated its contract: " +
                         what);
}

const std::string& str_at(const JsonValue& config, const char* key) {
  const JsonValue* v = config.find(key);
  if (v == nullptr || !v->is_string()) plan_bug(key);
  return v->as_string();
}

std::uint64_t u64_at(const JsonValue& config, const char* key) {
  const JsonValue* v = config.find(key);
  if (v == nullptr || !v->is_int() || v->as_int() < 0) plan_bug(key);
  return static_cast<std::uint64_t>(v->as_int());
}

std::uint32_t u32_at(const JsonValue& config, const char* key) {
  return static_cast<std::uint32_t>(u64_at(config, key));
}

std::unique_ptr<ProcessFactory> make_protocol(const std::string& name,
                                              std::uint32_t t) {
  if (name == "synran") return std::make_unique<SynRanFactory>();
  if (name == "benor-sym") {
    SynRanOptions o;
    o.coin_rule = CoinRule::Symmetric;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "synran-nodet") {
    SynRanOptions o;
    o.det_handoff = false;
    return std::make_unique<SynRanFactory>(o);
  }
  if (name == "floodmin")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, false});
  if (name == "floodmin-early")
    return std::make_unique<FloodMinFactory>(FloodMinOptions{t, true});
  if (name == "leadercoin") return std::make_unique<LeaderCoinFactory>();
  plan_bug("protocol '" + name + "'");
}

AdversaryFactory make_adversary(const std::string& name) {
  if (name == "none") return no_adversary_factory();
  if (name == "random")
    return [](std::uint64_t s) {
      return std::make_unique<RandomCrashAdversary>(
          RandomCrashAdversary::Options{2, 0.6, s});
    };
  if (name == "chain")
    return [](std::uint64_t) {
      return std::make_unique<ChainHidingAdversary>();
    };
  if (name == "coinbias")
    return [](std::uint64_t s) {
      return std::make_unique<CoinBiasAdversary>(
          CoinBiasOptions{0.55, true, s});
    };
  if (name == "oblivious")
    return [](std::uint64_t s) {
      return std::make_unique<ObliviousAdversary>(ObliviousOptions{64, s});
    };
  if (name == "leader-killer")
    return [](std::uint64_t) {
      return std::make_unique<LeaderKillerAdversary>();
    };
  plan_bug("adversary '" + name + "'");
}

InputPattern pattern_at(const JsonValue& config) {
  const std::string& name = str_at(config, "pattern");
  if (name == "all-0") return InputPattern::AllZero;
  if (name == "all-1") return InputPattern::AllOne;
  if (name == "half") return InputPattern::Half;
  if (name == "single-0") return InputPattern::SingleZero;
  if (name == "random") return InputPattern::Random;
  plan_bug("pattern '" + name + "'");
}

/// Canonical faults spec → (byzantine?, rate, budget). The text was
/// validated by parse_request; this just re-reads it.
struct FaultSpec {
  bool enabled = false;
  bool byzantine = false;
  double rate = 0.0;
  std::uint32_t budget = std::numeric_limits<std::uint32_t>::max();
};

FaultSpec faults_at(const JsonValue& config) {
  FaultSpec f;
  const std::string& text = str_at(config, "faults");
  if (text.empty()) return f;
  std::string rest;
  if (text.rfind("omit:", 0) == 0) {
    rest = text.substr(5);
  } else if (text.rfind("byz:", 0) == 0) {
    f.byzantine = true;
    rest = text.substr(4);
  } else {
    plan_bug("faults '" + text + "'");
  }
  if (const auto comma = rest.find(','); comma != std::string::npos) {
    f.budget = static_cast<std::uint32_t>(
        std::stoull(rest.substr(comma + 1)));
    rest = rest.substr(0, comma);
  }
  f.rate = std::stod(rest);
  f.enabled = true;
  return f;
}

AsyncSchedulerFactory scheduler_at(const JsonValue& config) {
  const std::string& name = str_at(config, "scheduler");
  if (name == "fifo") return fifo_scheduler_factory();
  if (name == "random") return random_scheduler_factory();
  if (name == "laggard") return laggard_scheduler_factory();
  if (name == "stall") return stall_scheduler_factory();
  plan_bug("scheduler '" + name + "'");
}

AsyncDelayFactory delay_at(const JsonValue& config) {
  const std::string& text = str_at(config, "delay");
  const std::uint64_t gst = u64_at(config, "gst");
  const std::uint64_t delta = u64_at(config, "delta");
  if (gst != 0 || delta != 0) return gst_delay_factory(gst, delta);
  if (text == "held") return held_delay_factory();
  if (text.rfind("fixed:", 0) == 0) {
    return fixed_delay_factory(std::stoull(text.substr(6)));
  }
  if (text.rfind("uniform:", 0) == 0) {
    const std::string rest = text.substr(8);
    const auto comma = rest.find(',');
    if (comma == std::string::npos) plan_bug("delay '" + text + "'");
    return uniform_delay_factory(std::stoull(rest.substr(0, comma)),
                                 std::stoull(rest.substr(comma + 1)));
  }
  plan_bug("delay '" + text + "'");
}

RunPlan build_sync_plan(const JsonValue& config, unsigned threads) {
  RunPlan plan;
  plan.is_async = false;
  const std::uint32_t t = u32_at(config, "t");
  plan.factory = make_protocol(str_at(config, "protocol"), t);
  plan.adversaries = make_adversary(str_at(config, "adversary"));

  const FaultSpec faults = faults_at(config);
  if (faults.enabled) {
    // Same layering as `synran run --faults=...`: the fault coins use
    // their own derived stream (1 = omission chaos, 2 = corruption) so
    // they never perturb the inner adversary's randomness.
    if (faults.byzantine) {
      plan.adversaries = [inner = std::move(plan.adversaries),
                          faults](std::uint64_t s)
          -> std::unique_ptr<Adversary> {
        ByzantineOptions byz;
        byz.corrupt_rate = faults.rate;
        byz.seed = SeedSequence(s).stream(2);
        return std::make_unique<ByzantineAdversary>(byz, inner(s));
      };
    } else {
      plan.adversaries = [inner = std::move(plan.adversaries),
                          faults](std::uint64_t s)
          -> std::unique_ptr<Adversary> {
        ChaosOptions chaos;
        chaos.drop_rate = faults.rate;
        chaos.seed = SeedSequence(s).stream(1);
        return std::make_unique<ChaosAdversary>(chaos, inner(s));
      };
    }
  }

  plan.spec.n = u32_at(config, "n");
  plan.spec.pattern = pattern_at(config);
  plan.spec.reps = u64_at(config, "reps");
  plan.spec.seed = u64_at(config, "seed");
  plan.spec.threads = threads;
  plan.spec.engine.t_budget = t;
  plan.spec.engine.max_rounds = u32_at(config, "max_rounds");
  plan.spec.engine.max_rep_retries = u32_at(config, "retries");
  plan.spec.policy = str_at(config, "fail_policy") == "quarantine"
                         ? FailurePolicy::Quarantine
                         : FailurePolicy::FailFast;
  if (faults.enabled) {
    if (faults.byzantine)
      plan.spec.engine.byzantine_budget = faults.budget;
    else
      plan.spec.engine.omission_budget = faults.budget;
  }
  return plan;
}

RunPlan build_async_plan(const JsonValue& config, unsigned threads) {
  RunPlan plan;
  plan.is_async = true;
  plan.schedulers = scheduler_at(config);
  plan.delays = delay_at(config);
  plan.benor.retransmit_every = u64_at(config, "retransmit");

  plan.aspec.n = u32_at(config, "n");
  plan.aspec.pattern = pattern_at(config);
  plan.aspec.reps = u64_at(config, "reps");
  plan.aspec.seed = u64_at(config, "seed");
  plan.aspec.threads = threads;
  plan.aspec.engine.t_budget = u32_at(config, "t");
  plan.aspec.engine.max_steps = u64_at(config, "max_steps");
  if (const std::uint64_t max_time = u64_at(config, "max_time");
      max_time != 0) {
    plan.aspec.engine.max_time = max_time;
  }
  return plan;
}

/// Pulls one named counter out of a restored aggregate's registry.
std::int64_t counter(const obs::MetricsRegistry& metrics, const char* name) {
  return static_cast<std::int64_t>(metrics.counter_at(name).value());
}

}  // namespace

RunPlan build_plan(const JsonValue& canonical_config, unsigned threads) {
  if (str_at(canonical_config, "model") == "async") {
    return build_async_plan(canonical_config, threads);
  }
  return build_sync_plan(canonical_config, threads);
}

JsonValue execute_plan(const RunPlan& plan) {
  if (plan.is_async) {
    const BenOrAsyncFactory factory(plan.benor);
    const AsyncRunStats stats =
        run_repeated_async(factory, plan.schedulers, plan.delays, plan.aspec);
    return stats.checkpoint_json();
  }
  const RepeatedRunStats stats =
      run_repeated(*plan.factory, plan.adversaries, plan.spec);
  return stats.checkpoint_json();
}

JsonValue result_from_payload(bool is_async, const JsonValue& payload) {
  JsonValue result = JsonValue::object();
  if (is_async) {
    const AsyncRunStats stats = AsyncRunStats::from_checkpoint(payload);
    result.set("model", "async");
    result.set("reps", JsonValue(static_cast<std::int64_t>(stats.reps())));
    result.set("all_safe", JsonValue(stats.all_safe()));
    result.set("decided_one", counter(stats.metrics(), "decided_one"));
    result.set("agreement_failures",
               counter(stats.metrics(), "agreement_failures"));
    result.set("validity_failures",
               counter(stats.metrics(), "validity_failures"));
    result.set("non_terminated", counter(stats.metrics(), "non_terminated"));
    result.set("reps_quarantined",
               counter(stats.metrics(), "reps_quarantined"));
    result.set("rounds_to_decision_mean",
               JsonValue(stats.rounds_to_decision().mean()));
    result.set("ticks_to_decision_mean",
               JsonValue(stats.ticks_to_decision().mean()));
    result.set("messages_delivered_mean",
               JsonValue(stats.messages_delivered().mean()));
  } else {
    const RepeatedRunStats stats = RepeatedRunStats::from_checkpoint(payload);
    result.set("model", "sync");
    result.set("reps", JsonValue(static_cast<std::int64_t>(stats.reps())));
    result.set("all_safe",
               JsonValue(stats.all_safe() && stats.reps_quarantined() == 0));
    result.set("decided_one", counter(stats.metrics(), "decided_one"));
    result.set("agreement_failures",
               counter(stats.metrics(), "agreement_failures"));
    result.set("validity_failures",
               counter(stats.metrics(), "validity_failures"));
    result.set("non_terminated", counter(stats.metrics(), "non_terminated"));
    result.set("reps_quarantined",
               counter(stats.metrics(), "reps_quarantined"));
    result.set("rounds_to_decision_mean",
               JsonValue(stats.rounds_to_decision().mean()));
    result.set("rounds_to_halt_mean",
               JsonValue(stats.rounds_to_halt().mean()));
    result.set("messages_delivered_mean",
               JsonValue(stats.messages_delivered().mean()));
  }
  result.set("checkpoint", payload);
  return result;
}

}  // namespace synran::serve
