// synran-req/1 request parsing, validation, and canonicalization.
//
// The daemon applies the CLI's strictness to every field — unknown names,
// unparsable or out-of-range values, and unknown keys are all structured
// rejections, never crashes — and then rebuilds the run configuration in
// CANONICAL form: every field present (defaults applied), fixed key
// order, compact serialization. Two requests that describe the same batch
// — one spelling out defaults, one omitting them — canonicalize to the
// same bytes, and those bytes (plus the seed schema version and git_rev)
// are what the content-addressed result cache hashes. See EXPERIMENTS.md
// "synran-req/1" for the schema and the canonicalization rules.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace synran::serve {

/// A malformed request: the serve-side UsageError. `code` is the machine-
/// readable error code echoed in the response ("bad_request" for all
/// validation failures); what() is the human-readable diagnostic.
class BadRequest : public std::runtime_error {
 public:
  explicit BadRequest(const std::string& message)
      : std::runtime_error(message) {}
};

enum class Command : std::uint8_t { Run, Ping, Stats, Shutdown };

const char* to_string(Command cmd);

/// One validated request.
struct ServeRequest {
  std::string id;  ///< client-chosen correlation tag, echoed verbatim
  Command cmd = Command::Ping;
  /// Canonical run configuration (Run only): defaults applied, fixed key
  /// order. This exact serialization feeds the cache key.
  obs::JsonValue config;
  /// Per-request deadline in milliseconds; 0 = use the server default.
  /// Clamped to the server default when that default is tighter.
  std::uint64_t deadline_ms = 0;
};

/// Parses and validates one frame body. Throws BadRequest on anything
/// malformed: non-JSON, wrong schema tag, unknown command, unknown or
/// ill-typed config keys, out-of-range values, sync-only fields on an
/// async run.
ServeRequest parse_request(const std::string& body);

/// The canonical cache-key string for a run config:
///   "<canonical config dump>|seed_schema=<N>|git_rev=<rev>"
/// Everything a result depends on and nothing more — thread counts and
/// deadlines are execution resources, not result inputs, and are excluded
/// (statistics are thread-count invariant by the executor's contract).
std::string cache_key_string(const obs::JsonValue& canonical_config,
                             const std::string& git_rev);

}  // namespace synran::serve
