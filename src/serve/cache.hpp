// Crash-safe content-addressed result cache for `synran serve`.
//
// One entry per distinct cache key. The key is the canonical string from
// cache_key_string() — canonical config dump + seed schema + git_rev — and
// the entry's filename is the FNV-1a 64-bit hash of that key in hex:
//
//   <cache-dir>/3f9a0c2e4b6d8e01.ckpt
//
// Each entry is a tiny synran-ckpt/1 ledger (header + one cell) whose cell
// key is the FULL canonical key string, so a hash collision or a renamed
// file can never serve the wrong result: lookups compare the full key, the
// hash only names the file. Entries are written through CheckpointLedger,
// which inherits the repo-wide commit discipline (write tmp, fsync, atomic
// rename, fsync parent dir) — a SIGKILL leaves either the old entry or the
// new one, never a torn file.
//
// Torn or foreign files can still appear (a crash mid-rename of some other
// tool, a stray file dropped into the dir). recover() runs at startup and
// on suspicious lookups: any *.ckpt that fails STRICT validation — every
// line parses, header matches, exactly one cell, filename equals the hash
// of the cell key — is renamed to *.quarantined and counted, never served
// and never silently deleted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace synran::serve {

/// FNV-1a 64-bit, the cache's content address. Stable across platforms.
std::uint64_t fnv1a64(std::string_view text);

/// 16-digit lowercase hex of fnv1a64 — the entry's file stem.
std::string cache_file_stem(std::string_view key);

class ResultCache {
 public:
  struct Options {
    std::string dir;
    /// 0 = unbounded. Otherwise the cache holds at most this many entries
    /// and evicts least-recently-used ones on store().
    std::size_t max_entries = 0;
    /// Attempts per store/lookup before a transient obs::IoError is
    /// surfaced (store) or treated as a miss (lookup).
    unsigned io_attempts = 3;
    /// Base backoff between attempts, doubled each retry. 0 disables the
    /// sleep (tests), keeping the retry loop itself exercised.
    unsigned backoff_ms = 10;
  };

  explicit ResultCache(Options options);

  /// Scans the directory, strictly validates every *.ckpt, quarantines the
  /// invalid ones, and rebuilds the in-memory index. Called by the
  /// constructor; callable again to re-sync after external changes.
  void recover();

  /// The cached payload for `key`, or nullopt. A file that exists but
  /// fails validation is quarantined and reported as a miss.
  std::optional<obs::JsonValue> lookup(const std::string& key);

  /// Stores (or overwrites) the entry for `key`, retrying transient
  /// I/O failures with exponential backoff, then evicts LRU entries past
  /// max_entries. Throws obs::IoError once the attempts are exhausted.
  void store(const std::string& key, const obs::JsonValue& payload);

  const std::string& dir() const { return dir_; }
  std::size_t entries() const { return lru_.size(); }

  // Counters for the server's metrics registry.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t quarantined() const { return quarantined_; }
  /// Transient I/O failures that were retried (store + lookup).
  std::uint64_t io_retries() const { return io_retries_; }

 private:
  std::string entry_path(const std::string& stem) const;
  /// Strict whole-file validation; returns the payload when the file is a
  /// well-formed single-cell serve entry whose cell key hashes to `stem`
  /// and (if non-empty) equals `expect_key`.
  std::optional<obs::JsonValue> read_entry(const std::string& stem,
                                           const std::string& expect_key,
                                           std::string* found_key) const;
  void quarantine(const std::string& stem);
  void touch(const std::string& stem);
  void evict_past_limit();
  void backoff(unsigned attempt) const;

  std::string dir_;
  std::size_t max_entries_ = 0;
  unsigned io_attempts_ = 3;
  unsigned backoff_ms_ = 10;

  /// Entry stems, least-recently-used first. Rebuilt by recover() in
  /// sorted order (deterministic), then maintained by lookups/stores.
  std::vector<std::string> lru_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t io_retries_ = 0;
};

}  // namespace synran::serve
