#include "serve/cache.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/checkpoint.hpp"
#include "obs/io_error.hpp"

namespace synran::serve {

namespace {

namespace fs = std::filesystem;

/// The ledger "experiment" tag for serve entries; a file written by some
/// other checkpoint-producing tool fails validation on this field.
constexpr const char* kCacheExperiment = "synran-serve";

constexpr const char* kEntrySuffix = ".ckpt";
constexpr const char* kQuarantineSuffix = ".quarantined";

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string cache_file_stem(std::string_view key) {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t h = fnv1a64(key);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(h >> (4 * i)) & 0xF];
  }
  return out;
}

ResultCache::ResultCache(Options options)
    : dir_(std::move(options.dir)),
      max_entries_(options.max_entries),
      io_attempts_(options.io_attempts == 0 ? 1 : options.io_attempts),
      backoff_ms_(options.backoff_ms) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw obs::IoError("cache: cannot create directory " + dir_ + ": " +
                       ec.message());
  }
  recover();
}

std::string ResultCache::entry_path(const std::string& stem) const {
  return dir_ + "/" + stem + kEntrySuffix;
}

void ResultCache::backoff(unsigned attempt) const {
  if (backoff_ms_ == 0) return;
  // Exponential: base, 2*base, 4*base, ... Deterministic (no jitter) so
  // the retry schedule is reproducible in tests.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(backoff_ms_ << attempt));
}

std::optional<obs::JsonValue> ResultCache::read_entry(
    const std::string& stem, const std::string& expect_key,
    std::string* found_key) const {
  std::ifstream in(entry_path(stem));
  if (!in.is_open()) return std::nullopt;

  std::string line;
  std::vector<obs::JsonValue> lines;
  while (std::getline(in, line)) {
    if (line.empty()) return std::nullopt;  // blank line: not ours
    auto parsed = obs::JsonValue::parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      return std::nullopt;  // torn tail or foreign bytes
    }
    lines.push_back(std::move(*parsed));
  }
  if (in.bad()) {
    throw obs::IoError("cache: read failed for " + entry_path(stem));
  }
  if (lines.size() != 2) return std::nullopt;  // header + exactly one cell

  const obs::JsonValue& header = lines[0];
  const obs::JsonValue* schema = header.find("schema");
  const obs::JsonValue* experiment = header.find("experiment");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != obs::kCheckpointSchema ||
      experiment == nullptr || !experiment->is_string() ||
      experiment->as_string() != kCacheExperiment) {
    return std::nullopt;
  }

  const obs::JsonValue& cell = lines[1];
  const obs::JsonValue* index = cell.find("cell");
  const obs::JsonValue* key = cell.find("key");
  const obs::JsonValue* data = cell.find("data");
  if (index == nullptr || !index->is_int() || index->as_int() != 0 ||
      key == nullptr || !key->is_string() || data == nullptr) {
    return std::nullopt;
  }
  // The filename must be the hash of the stored key: a renamed or
  // hand-edited entry fails here instead of shadowing some other key.
  if (cache_file_stem(key->as_string()) != stem) return std::nullopt;
  if (found_key != nullptr) *found_key = key->as_string();
  if (!expect_key.empty() && key->as_string() != expect_key) {
    return std::nullopt;
  }
  return *data;
}

void ResultCache::quarantine(const std::string& stem) {
  const std::string from = entry_path(stem);
  const std::string to = from + kQuarantineSuffix;
  std::error_code ec;
  fs::rename(from, to, ec);
  // A failed quarantine rename (e.g. the file vanished) is not fatal; the
  // entry is simply not indexed.
  ++quarantined_;
  lru_.erase(std::remove(lru_.begin(), lru_.end(), stem), lru_.end());
}

void ResultCache::recover() {
  lru_.clear();
  std::vector<std::string> stems;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != kEntrySuffix) continue;
    stems.push_back(p.stem().string());
  }
  if (ec) {
    throw obs::IoError("cache: cannot scan " + dir_ + ": " + ec.message());
  }
  // Sorted order makes the rebuilt LRU deterministic across platforms.
  std::sort(stems.begin(), stems.end());
  for (const std::string& stem : stems) {
    std::string key;
    if (read_entry(stem, /*expect_key=*/"", &key).has_value()) {
      lru_.push_back(stem);
    } else {
      quarantine(stem);
    }
  }
}

void ResultCache::touch(const std::string& stem) {
  lru_.erase(std::remove(lru_.begin(), lru_.end(), stem), lru_.end());
  lru_.push_back(stem);
}

std::optional<obs::JsonValue> ResultCache::lookup(const std::string& key) {
  const std::string stem = cache_file_stem(key);
  const bool existed = fs::exists(entry_path(stem));
  for (unsigned attempt = 0;; ++attempt) {
    try {
      auto payload = read_entry(stem, key, nullptr);
      if (payload.has_value()) {
        ++hits_;
        touch(stem);
        return payload;
      }
      // Present but invalid: torn by a foreign writer or hand-damaged.
      // Quarantine so the daemon never retries a poisoned entry.
      if (existed && fs::exists(entry_path(stem))) quarantine(stem);
      ++misses_;
      return std::nullopt;
    } catch (const obs::IoError&) {
      if (attempt + 1 >= io_attempts_) {
        ++misses_;  // surfaced as a miss: the batch recomputes
        return std::nullopt;
      }
      ++io_retries_;
      backoff(attempt);
    }
  }
}

void ResultCache::store(const std::string& key,
                        const obs::JsonValue& payload) {
  const std::string stem = cache_file_stem(key);
  for (unsigned attempt = 0;; ++attempt) {
    try {
      // A fresh single-cell ledger per entry. The binding constructor
      // tolerates (and discards) whatever is on disk; record() rewrites
      // the file through the fsync + atomic-rename commit path.
      obs::CheckpointLedger ledger(entry_path(stem), kCacheExperiment,
                                   /*seed=*/0);
      ledger.record(obs::CheckpointCell{0, key, payload});
      break;
    } catch (const obs::IoError&) {
      if (attempt + 1 >= io_attempts_) throw;
      ++io_retries_;
      backoff(attempt);
    }
  }
  touch(stem);
  evict_past_limit();
}

void ResultCache::evict_past_limit() {
  if (max_entries_ == 0) return;
  while (lru_.size() > max_entries_) {
    const std::string victim = lru_.front();
    lru_.erase(lru_.begin());
    std::error_code ec;
    fs::remove(entry_path(victim), ec);
    ++evictions_;
  }
}

}  // namespace synran::serve
