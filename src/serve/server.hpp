// The synran-req/1 daemon loop.
//
// One Server instance owns a transport (stdio fds or a Unix-domain
// socket), a bounded request queue, a ResultCache, and a metrics
// registry. The loop is single-threaded by design — requests execute one
// at a time, in arrival order, so responses are deterministic — with two
// narrow exceptions to pure single-threadedness: the batch executor may
// shard one request's reps across workers (statistics are thread-count
// invariant), and a watchdog thread arms the per-request deadline by
// raising the cooperative stop flag the executor already polls.
//
// Overload control: between requests the loop drains every frame the
// client has already sent. The first --max-queue of them wait their turn;
// anything beyond that is answered immediately with a structured
// `overloaded` error — explicit shedding, never an unbounded buffer.
//
// Shutdown and exit codes:
//   clean client EOF (stdio) or `shutdown` command ........ exit 0
//   unrecoverable protocol/transport failure .............. exit 1
//   SIGINT/SIGTERM drain: the in-flight batch stops
//   cooperatively, it and every queued request get a
//   structured `shutting_down` response, then the daemon
//   exits ................................................. exit 4
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"

namespace synran::serve {

/// Exit code for a drain triggered by SIGINT/SIGTERM. Distinct from the
/// CLI's 3 ("interrupted, work abandoned"): a drained daemon answered
/// everything it had accepted before exiting.
inline constexpr int kDrainExitCode = 4;

struct ServerOptions {
  /// Unix-domain socket path; empty = stdio (fd 0 / fd 1).
  std::string socket_path;
  std::string cache_dir = ".synran-cache";
  /// Requests allowed to wait; frames beyond this are shed.
  std::size_t max_queue = 64;
  /// Default per-request deadline in ms; 0 = none. A request's own
  /// deadline_ms is honored when it is tighter.
  std::uint64_t deadline_ms = 0;
  /// Executor worker threads (0 = auto), never part of the cache key.
  unsigned threads = 0;
  /// Build identity baked into every cache key.
  std::string git_rev = "unknown";
  std::size_t max_cache_entries = 0;
  /// Cache I/O retry knobs (see ResultCache::Options).
  unsigned io_attempts = 3;
  unsigned backoff_ms = 10;
  /// Diagnostic log sink (stderr in the CLI); nullptr = silent. Never
  /// receives response data — responses go to the transport only.
  std::ostream* log = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Runs until EOF, `shutdown`, a drain signal, or a fatal transport
  /// error. Returns the process exit code (0, 1, or kDrainExitCode).
  /// Stdio mode serves fds 0/1; socket mode binds options.socket_path and
  /// serves one connection at a time until signalled or shut down.
  int run();

  /// Serves one already-open fd pair until it is exhausted (exposed for
  /// tests, which drive the loop with regular files instead of sockets).
  /// Returns like run().
  int serve_fds(int in_fd, int out_fd);

  const obs::MetricsRegistry& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }

 private:
  enum class Outcome : std::uint8_t {
    CleanEof,       ///< client closed at a frame boundary
    Shutdown,       ///< `shutdown` command honored
    Drained,        ///< SIGINT/SIGTERM drain completed
    ProtocolError,  ///< unrecoverable framing violation
    ClientLost,     ///< write failed (EPIPE); socket mode accepts anew
  };

  Outcome serve_stream(int in_fd, int out_fd);
  /// Handles one frame body; returns false when the daemon should stop
  /// accepting further work from this stream (shutdown command).
  bool handle(const std::string& body, int out_fd);
  void handle_run(const std::string& id, const obs::JsonValue& config,
                  std::uint64_t deadline_ms, int out_fd);
  /// Answers every queued body with a `shutting_down` error.
  void flush_queue_shutting_down(std::deque<std::string>& queue, int out_fd);

  void respond(int out_fd, const obs::JsonValue& response);
  /// Copies cache counters and queue depth into the registry so `stats`
  /// responses and test assertions see one coherent snapshot.
  void sync_metrics(std::size_t queue_depth);

  int run_socket();

  ServerOptions options_;
  ResultCache cache_;
  obs::MetricsRegistry metrics_;
  bool shutdown_requested_ = false;
};

/// Builds a structured error response (schema, id, ok=false, error code +
/// message). Exposed for the client subcommand's own diagnostics.
obs::JsonValue error_response(const std::string& id, const std::string& code,
                              const std::string& message);
obs::JsonValue ok_response(const std::string& id, obs::JsonValue result);

}  // namespace synran::serve
