// Canonical config → executable batch.
//
// A RunPlan is the daemon-side twin of the CLI's flag wiring: the same
// protocol/adversary/scheduler/delay factories, the same RepeatSpec
// construction, built from a canonical synran-req/1 config instead of
// argv. Execution returns the batch's EXACT checkpoint payload
// (RepeatedRunStats/AsyncRunStats::checkpoint_json), which is what the
// content-addressed cache stores; the client-facing result object is then
// derived from that payload by result_from_payload() on BOTH the compute
// and the cache-hit path, so a hit is byte-identical to a fresh run by
// construction, not by luck.
#pragma once

#include <memory>

#include "async/benor.hpp"
#include "exec/async_batch.hpp"
#include "exec/batch.hpp"
#include "obs/json.hpp"

namespace synran::serve {

/// One executable batch. Exactly one of the sync/async halves is live,
/// selected by `is_async`.
struct RunPlan {
  bool is_async = false;

  // Sync (is_async == false).
  std::unique_ptr<ProcessFactory> factory;
  AdversaryFactory adversaries;
  RepeatSpec spec;

  // Async (is_async == true).
  BenOrOptions benor;
  AsyncSchedulerFactory schedulers;
  AsyncDelayFactory delays;
  AsyncRepeatSpec aspec;
};

/// Builds the plan for a canonical config (as produced by parse_request).
/// `threads` is the server's worker count — an execution resource, never
/// part of the cache key (statistics are thread-count invariant).
RunPlan build_plan(const obs::JsonValue& canonical_config, unsigned threads);

/// Runs the batch. Returns the exact checkpoint payload. Propagates
/// exec::Interrupted when a deadline or drain stop lands mid-batch.
obs::JsonValue execute_plan(const RunPlan& plan);

/// Derives the client-facing result object from a checkpoint payload by
/// restoring the aggregate and re-reading it: headline verdict counters, a
/// few headline means, and the full payload under "checkpoint" so clients
/// can rebuild the aggregate exactly. Throws on a foreign/corrupt payload
/// (the cache validator treats that as a torn entry).
obs::JsonValue result_from_payload(bool is_async,
                                   const obs::JsonValue& payload);

}  // namespace synran::serve
