#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <ostream>
#include <thread>

#include "exec/stopper.hpp"
#include "obs/io_error.hpp"
#include "serve/frame.hpp"
#include "serve/plan.hpp"
#include "serve/request.hpp"

namespace synran::serve {

namespace {

/// Arms the cooperative stop flag after a timeout. The executor polls the
/// flag between reps, so the interrupt lands at the next rep boundary —
/// cancellation is cooperative, never mid-statistics. request_stop() does
/// NOT count as a signal, which is how the loop tells a deadline apart
/// from an operator's SIGINT/SIGTERM after the batch unwinds.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(std::uint64_t deadline_ms) {
    if (deadline_ms == 0) return;
    armed_ = true;
    watchdog_ = std::thread([this, deadline_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                       [this] { return cancelled_; })) {
        return;  // batch finished first
      }
      fired_ = true;
      exec::request_stop();
    });
  }

  ~DeadlineGuard() { cancel(); }

  void cancel() {
    if (!armed_) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    armed_ = false;
  }

  /// True when the watchdog raised the stop flag (read after cancel()).
  bool fired() const { return fired_; }

 private:
  bool armed_ = false;
  bool cancelled_ = false;
  bool fired_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread watchdog_;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The client's id from a request that failed validation, so even a
/// rejection can be correlated. Empty when the body is not JSON or the id
/// itself is unusable.
std::string best_effort_id(const std::string& body) {
  const std::optional<obs::JsonValue> parsed = obs::JsonValue::parse(body);
  if (parsed.has_value()) {
    const obs::JsonValue* id = parsed->find("id");
    if (id != nullptr && id->is_string() && id->as_string().size() <= 256) {
      return id->as_string();
    }
  }
  return std::string();
}

}  // namespace

obs::JsonValue error_response(const std::string& id, const std::string& code,
                              const std::string& message) {
  obs::JsonValue error = obs::JsonValue::object();
  error.set("code", code);
  error.set("message", message);
  obs::JsonValue response = obs::JsonValue::object();
  response.set("schema", kResponseSchema);
  response.set("id", id);
  response.set("ok", obs::JsonValue(false));
  response.set("error", std::move(error));
  return response;
}

obs::JsonValue ok_response(const std::string& id, obs::JsonValue result) {
  obs::JsonValue response = obs::JsonValue::object();
  response.set("schema", kResponseSchema);
  response.set("id", id);
  response.set("ok", obs::JsonValue(true));
  response.set("result", std::move(result));
  return response;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(ResultCache::Options{options_.cache_dir,
                                  options_.max_cache_entries,
                                  options_.io_attempts,
                                  options_.backoff_ms}) {
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.log != nullptr) {
    *options_.log << "[serve] cache " << cache_.dir() << ": "
                  << cache_.entries() << " entries recovered";
    if (cache_.quarantined() > 0) {
      *options_.log << ", " << cache_.quarantined() << " quarantined";
    }
    *options_.log << "\n";
  }
}

void Server::respond(int out_fd, const obs::JsonValue& response) {
  write_frame(out_fd, response.dump());
}

void Server::sync_metrics(std::size_t queue_depth) {
  metrics_.counter("cache_hits").inc(cache_.hits() -
                                     metrics_.counter("cache_hits").value());
  metrics_.counter("cache_misses")
      .inc(cache_.misses() - metrics_.counter("cache_misses").value());
  metrics_.counter("cache_evictions")
      .inc(cache_.evictions() - metrics_.counter("cache_evictions").value());
  metrics_.counter("cache_quarantined")
      .inc(cache_.quarantined() -
           metrics_.counter("cache_quarantined").value());
  metrics_.counter("cache_io_retries")
      .inc(cache_.io_retries() -
           metrics_.counter("cache_io_retries").value());
  metrics_.gauge("queue_depth").set(static_cast<double>(queue_depth));
  metrics_.gauge("cache_entries").set(static_cast<double>(cache_.entries()));
}

void Server::handle_run(const std::string& id, const obs::JsonValue& config,
                        std::uint64_t deadline_ms, int out_fd) {
  const std::string key = cache_key_string(config, options_.git_rev);
  const bool is_async = config.find("model")->as_string() == "async";

  if (auto payload = cache_.lookup(key); payload.has_value()) {
    // Byte-identity with the compute path holds because BOTH paths derive
    // the response from the checkpoint payload via result_from_payload —
    // the response never carries a hit/miss marker or timing.
    respond(out_fd, ok_response(id, result_from_payload(is_async, *payload)));
    metrics_.counter("responses_ok").inc();
    return;
  }

  // Effective deadline: the tighter of the request's and the server's.
  std::uint64_t effective = options_.deadline_ms;
  if (deadline_ms != 0 &&
      (effective == 0 || deadline_ms < effective)) {
    effective = deadline_ms;
  }

  obs::JsonValue payload;
  try {
    const RunPlan plan = build_plan(config, options_.threads);
    DeadlineGuard guard(effective);
    payload = execute_plan(plan);
    guard.cancel();
  } catch (const exec::Interrupted& e) {
    if (exec::stop_signals() > 0) {
      // Operator signal beat (or raced) the deadline: the drain path in
      // serve_stream answers this and every queued request.
      respond(out_fd,
              error_response(id, "shutting_down",
                             "daemon is draining: " + std::string(e.what())));
      metrics_.counter("responses_error").inc();
      return;
    }
    // The watchdog fired: this request is over, the daemon is not.
    exec::clear_stop();
    respond(out_fd,
            error_response(id, "deadline_exceeded",
                           "deadline of " + std::to_string(effective) +
                               " ms exceeded: " + e.what()));
    metrics_.counter("deadline_exceeded_total").inc();
    metrics_.counter("responses_error").inc();
    return;
  } catch (const std::exception& e) {
    // A failing batch (RepError under fail_fast, engine errors) is a
    // structured response, never a daemon crash.
    respond(out_fd, error_response(id, "run_failed", e.what()));
    metrics_.counter("responses_error").inc();
    return;
  }

  try {
    cache_.store(key, payload);
  } catch (const obs::IoError& e) {
    // Persistent store failure degrades the cache, not the answer.
    if (options_.log != nullptr) {
      *options_.log << "[serve] cache store failed after retries: "
                    << e.what() << "\n";
    }
    metrics_.counter("cache_store_failures").inc();
  }
  respond(out_fd, ok_response(id, result_from_payload(is_async, payload)));
  metrics_.counter("responses_ok").inc();
}

bool Server::handle(const std::string& body, int out_fd) {
  const double started = now_ms();
  metrics_.counter("requests_total").inc();

  ServeRequest req;
  try {
    req = parse_request(body);
  } catch (const BadRequest& e) {
    respond(out_fd, error_response(best_effort_id(body), "bad_request",
                                   e.what()));
    metrics_.counter("responses_error").inc();
    metrics_.summary("request_latency_ms").add(now_ms() - started);
    return true;
  }

  switch (req.cmd) {
    case Command::Ping: {
      obs::JsonValue result = obs::JsonValue::object();
      result.set("pong", obs::JsonValue(true));
      result.set("git_rev", options_.git_rev);
      respond(out_fd, ok_response(req.id, std::move(result)));
      metrics_.counter("responses_ok").inc();
      break;
    }
    case Command::Stats: {
      sync_metrics(/*queue_depth=*/0);
      respond(out_fd, ok_response(req.id, metrics_.to_json()));
      metrics_.counter("responses_ok").inc();
      break;
    }
    case Command::Shutdown: {
      obs::JsonValue result = obs::JsonValue::object();
      result.set("stopping", obs::JsonValue(true));
      respond(out_fd, ok_response(req.id, std::move(result)));
      metrics_.counter("responses_ok").inc();
      shutdown_requested_ = true;
      break;
    }
    case Command::Run:
      handle_run(req.id, req.config, req.deadline_ms, out_fd);
      break;
  }
  metrics_.summary("request_latency_ms").add(now_ms() - started);
  return !shutdown_requested_;
}

void Server::flush_queue_shutting_down(std::deque<std::string>& queue,
                                       int out_fd) {
  while (!queue.empty()) {
    std::string id;
    try {
      id = parse_request(queue.front()).id;
    } catch (const BadRequest&) {
      // Still answer it: the client sent it before the drain began.
      id = best_effort_id(queue.front());
    }
    respond(out_fd, error_response(id, "shutting_down",
                                   "daemon is draining, request not run"));
    metrics_.counter("responses_error").inc();
    queue.pop_front();
  }
}

Server::Outcome Server::serve_stream(int in_fd, int out_fd) {
  FrameReader reader(in_fd);
  std::deque<std::string> queue;
  std::string body;
  // A framing violation poisons the INPUT side only: no further frame can
  // be trusted, but requests already accepted are still answered before
  // the final protocol_error response and hang-up.
  bool poisoned = false;
  std::string poison_message;

  for (;;) {
    if (exec::stop_signals() > 0) {
      try {
        flush_queue_shutting_down(queue, out_fd);
      } catch (const FrameError&) {
        return Outcome::ClientLost;
      }
      if (options_.log != nullptr) {
        *options_.log << "[serve] drain: signal received, "
                      << "queued requests answered, exiting\n";
      }
      return Outcome::Drained;
    }

    if (!poisoned) {
      try {
        // Greedy drain of everything the client already sent: the first
        // max_queue wait, the rest are shed with a structured error.
        while (reader.available()) {
          if (!reader.next(body)) break;
          if (queue.size() < options_.max_queue) {
            queue.push_back(body);
            continue;
          }
          std::string id;
          try {
            id = parse_request(body).id;
          } catch (const BadRequest&) {
            id = best_effort_id(body);
          }
          respond(out_fd,
                  error_response(id, "overloaded",
                                 "queue full (" +
                                     std::to_string(options_.max_queue) +
                                     " requests waiting); retry later"));
          metrics_.counter("shed_total").inc();
          metrics_.counter("responses_error").inc();
        }

        if (queue.empty()) {
          if (reader.exhausted()) return Outcome::CleanEof;
          if (!reader.next(body)) continue;  // stop or EOF: re-check above
          queue.push_back(body);
        }
      } catch (const FrameError& e) {
        poisoned = true;
        poison_message = e.what();
      }
    }

    if (queue.empty()) {
      // Poisoned and nothing left owed: answer once, hang up.
      try {
        respond(out_fd, error_response("", "protocol_error", poison_message));
      } catch (const FrameError&) {
        return Outcome::ClientLost;
      }
      metrics_.counter("responses_error").inc();
      return Outcome::ProtocolError;
    }

    sync_metrics(queue.size());
    body = std::move(queue.front());
    queue.pop_front();
    bool keep_serving = false;
    try {
      keep_serving = handle(body, out_fd);
      if (!keep_serving) flush_queue_shutting_down(queue, out_fd);
    } catch (const FrameError&) {
      // A response write failed: the client is gone.
      return Outcome::ClientLost;
    }
    if (!keep_serving) return Outcome::Shutdown;
  }
}

int Server::serve_fds(int in_fd, int out_fd) {
  switch (serve_stream(in_fd, out_fd)) {
    case Outcome::CleanEof:
    case Outcome::Shutdown:
      return 0;
    case Outcome::Drained:
      return kDrainExitCode;
    case Outcome::ProtocolError:
    case Outcome::ClientLost:
      return 1;
  }
  return 1;
}

int Server::run_socket() {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    if (options_.log != nullptr) {
      *options_.log << "[serve] socket failed: " << std::strerror(errno)
                    << "\n";
    }
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    if (options_.log != nullptr) {
      *options_.log << "[serve] socket path too long: "
                    << options_.socket_path << "\n";
    }
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listener, 1) < 0) {
    if (options_.log != nullptr) {
      *options_.log << "[serve] bind/listen failed on "
                    << options_.socket_path << ": " << std::strerror(errno)
                    << "\n";
    }
    ::close(listener);
    return 1;
  }
  if (options_.log != nullptr) {
    *options_.log << "[serve] listening on " << options_.socket_path << "\n";
  }

  int exit_code = 0;
  for (;;) {
    if (exec::stop_signals() > 0) {
      exit_code = kDrainExitCode;
      break;
    }
    // Poll in slices so a drain signal is honored while idle.
    struct pollfd pfd = {listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      exit_code = 1;
      break;
    }
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      exit_code = 1;
      break;
    }
    const Outcome outcome = serve_stream(conn, conn);
    ::close(conn);
    if (outcome == Outcome::Drained) {
      exit_code = kDrainExitCode;
      break;
    }
    if (outcome == Outcome::Shutdown) {
      exit_code = 0;
      break;
    }
    // CleanEof / ProtocolError / ClientLost end the connection, not the
    // daemon: the next client gets a fresh stream.
  }
  ::close(listener);
  ::unlink(options_.socket_path.c_str());
  return exit_code;
}

int Server::run() {
  // A client that disconnects mid-response must surface as EPIPE on the
  // write (handled as ClientLost), not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  if (options_.socket_path.empty()) {
    return serve_fds(STDIN_FILENO, STDOUT_FILENO);
  }
  return run_socket();
}

}  // namespace synran::serve
