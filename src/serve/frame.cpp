#include "serve/frame.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "exec/stopper.hpp"

namespace synran::serve {

namespace {

/// Longest length line we accept: 20 digits covers every u64, and any
/// longer run of digits is a broken or hostile stream.
constexpr std::size_t kMaxLengthDigits = 20;

/// Poll slice while blocked, so stop signals are honored promptly.
constexpr int kPollSliceMs = 100;

}  // namespace

FrameReader::FrameReader(int fd, std::size_t max_frame)
    : fd_(fd), max_frame_(max_frame) {}

bool FrameReader::buffered() const {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  // Validate lazily in take(); here a parseable prefix is enough. A
  // malformed length line counts as "consumable" so next() can raise the
  // FrameError instead of blocking forever.
  std::size_t len = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    const char c = buf_[i];
    if (c < '0' || c > '9') return true;  // malformed: consumable error
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (nl == 0 || nl > kMaxLengthDigits || len > max_frame_) return true;
  return buf_.size() >= nl + 1 + len;
}

bool FrameReader::take(std::string& body) {
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  if (nl == 0 || nl > kMaxLengthDigits) {
    throw FrameError("malformed frame: bad length line");
  }
  std::size_t len = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    const char c = buf_[i];
    if (c < '0' || c > '9') {
      throw FrameError("malformed frame: non-digit in length line");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (len > max_frame_) {
    throw FrameError("oversized frame: " + std::to_string(len) +
                     " bytes exceeds the " + std::to_string(max_frame_) +
                     "-byte limit");
  }
  if (buf_.size() < nl + 1 + len) return false;
  body.assign(buf_, nl + 1, len);
  buf_.erase(0, nl + 1 + len);
  return true;
}

bool FrameReader::fill(bool blocking) {
  if (eof_) return false;
  for (;;) {
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int timeout = blocking ? kPollSliceMs : 0;
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) {
        if (exec::stop_requested()) return false;
        continue;
      }
      throw FrameError(std::string("poll failed: ") + std::strerror(errno));
    }
    if (ready == 0) {
      if (!blocking) return false;
      if (exec::stop_requested()) return false;
      continue;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        if (exec::stop_requested()) return false;
        if (!blocking) return false;
        continue;
      }
      throw FrameError(std::string("read failed: ") + std::strerror(errno));
    }
    if (got == 0) {
      eof_ = true;
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(got));
    return true;
  }
}

bool FrameReader::next(std::string& body) {
  for (;;) {
    if (take(body)) return true;
    if (eof_) {
      if (!buf_.empty()) {
        throw FrameError("truncated frame: EOF after " +
                         std::to_string(buf_.size()) +
                         " buffered byte(s) mid-frame");
      }
      return false;
    }
    if (!fill(/*blocking=*/true)) {
      if (eof_) continue;  // loop once more to report truncation or EOF
      if (exec::stop_requested()) return false;
    }
  }
}

bool FrameReader::available() {
  for (;;) {
    if (buffered()) return true;
    if (eof_) return !buf_.empty();  // truncated tail: consumable error
    if (!fill(/*blocking=*/false)) return eof_ && !buf_.empty();
  }
}

bool FrameReader::exhausted() const { return eof_ && buf_.empty(); }

void write_frame(int fd, std::string_view body) {
  std::string out = std::to_string(body.size());
  out += '\n';
  out.append(body);
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t put = ::write(fd, out.data() + off, out.size() - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw FrameError(std::string("write failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(put);
  }
}

}  // namespace synran::serve
