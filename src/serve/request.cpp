#include "serve/request.hpp"

#include <charconv>
#include <limits>
#include <set>

#include "exec/batch.hpp"
#include "serve/frame.hpp"

namespace synran::serve {

namespace {

using obs::JsonValue;

/// Longest client id we echo back; anything longer is hostile padding.
constexpr std::size_t kMaxIdBytes = 256;

std::uint64_t get_u64(const JsonValue& config, const std::string& key,
                      std::uint64_t dflt) {
  const JsonValue* v = config.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_int() || v->as_int() < 0) {
    throw BadRequest("invalid value for config." + key +
                     " (expected a non-negative integer)");
  }
  return static_cast<std::uint64_t>(v->as_int());
}

std::uint32_t get_u32(const JsonValue& config, const std::string& key,
                      std::uint32_t dflt) {
  const std::uint64_t v = get_u64(config, key, dflt);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw BadRequest("value for config." + key + " is out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::string get_string(const JsonValue& config, const std::string& key,
                       const std::string& dflt) {
  const JsonValue* v = config.find(key);
  if (v == nullptr) return dflt;
  if (!v->is_string()) {
    throw BadRequest("invalid value for config." + key +
                     " (expected a string)");
  }
  return v->as_string();
}

void require_one_of(const std::string& key, const std::string& value,
                    std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (value == a) return;
  }
  std::string msg = "invalid config." + key + " '" + value + "' (expected ";
  bool first = true;
  for (const char* a : allowed) {
    if (!first) msg += ", ";
    msg += a;
    first = false;
  }
  msg += ")";
  throw BadRequest(msg);
}

/// Strict whole-string double parse for fault rates.
double parse_rate(const std::string& key, const std::string& text) {
  double v = 0.0;
  const char* b = text.data();
  const char* e = b + text.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (text.empty() || ec != std::errc() || p != e) {
    throw BadRequest("invalid " + key + " rate '" + text +
                     "' (expected a number)");
  }
  return v;
}

std::uint64_t parse_uint(const std::string& key, const std::string& text) {
  std::uint64_t v = 0;
  const char* b = text.data();
  const char* e = b + text.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  if (text.empty() || ec != std::errc() || p != e) {
    throw BadRequest("invalid " + key + " value '" + text +
                     "' (expected a non-negative integer)");
  }
  return v;
}

/// Validates a --faults-style spec: "", omit:RATE[,BUDGET], byz:RATE[,BUDGET].
void check_faults(const std::string& text) {
  if (text.empty()) return;
  std::string rest;
  if (text.rfind("omit:", 0) == 0) {
    rest = text.substr(5);
  } else if (text.rfind("byz:", 0) == 0) {
    rest = text.substr(4);
  } else {
    throw BadRequest("invalid config.faults '" + text +
                     "': expected omit:RATE[,BUDGET] or byz:RATE[,BUDGET]");
  }
  if (const auto comma = rest.find(','); comma != std::string::npos) {
    const std::uint64_t budget =
        parse_uint("config.faults budget", rest.substr(comma + 1));
    if (budget > std::numeric_limits<std::uint32_t>::max()) {
      throw BadRequest("config.faults budget is out of range");
    }
    rest = rest.substr(0, comma);
  }
  const double rate = parse_rate("config.faults", rest);
  if (rate < 0.0 || rate > 1.0) {
    throw BadRequest("invalid config.faults rate '" + rest +
                     "': must lie in [0, 1]");
  }
}

/// Validates a --delay-style spec: held, fixed:D, uniform:LO,HI.
void check_delay(const std::string& text) {
  if (text == "held") return;
  if (text.rfind("fixed:", 0) == 0) {
    parse_uint("config.delay", text.substr(6));
    return;
  }
  if (text.rfind("uniform:", 0) == 0) {
    const std::string rest = text.substr(8);
    const auto comma = rest.find(',');
    if (comma == std::string::npos) {
      throw BadRequest("invalid config.delay '" + text +
                       "': uniform needs LO,HI");
    }
    const auto lo = parse_uint("config.delay", rest.substr(0, comma));
    const auto hi = parse_uint("config.delay", rest.substr(comma + 1));
    if (lo > hi) {
      throw BadRequest("invalid config.delay '" + text +
                       "': LO must be <= HI");
    }
    return;
  }
  throw BadRequest("invalid config.delay '" + text +
                   "' (expected held, fixed:D, or uniform:LO,HI)");
}

void reject_unknown_keys(const JsonValue& object, const char* where,
                         const std::set<std::string>& known) {
  for (const auto& [key, value] : object.as_object()) {
    if (known.count(key) == 0) {
      throw BadRequest(std::string("unknown ") + where + " key '" + key +
                       "'");
    }
  }
}

/// Validates a sync run config and rebuilds it in canonical form.
JsonValue canonicalize_sync(const JsonValue& config) {
  reject_unknown_keys(config, "config",
                      {"model", "protocol", "adversary", "faults", "n", "t",
                       "pattern", "reps", "seed", "max_rounds", "fail_policy",
                       "retries"});
  const std::string protocol = get_string(config, "protocol", "synran");
  require_one_of("protocol", protocol,
                 {"synran", "benor-sym", "synran-nodet", "floodmin",
                  "floodmin-early", "leadercoin"});
  const std::string adversary = get_string(config, "adversary", "coinbias");
  require_one_of("adversary", adversary,
                 {"none", "random", "chain", "coinbias", "oblivious",
                  "leader-killer"});
  const std::string faults = get_string(config, "faults", "");
  check_faults(faults);
  const std::uint32_t n = get_u32(config, "n", 128);
  if (n == 0) throw BadRequest("config.n must be >= 1");
  const std::uint32_t t = get_u32(config, "t", n / 2);
  const std::string pattern = get_string(config, "pattern", "random");
  require_one_of("pattern", pattern,
                 {"all-0", "all-1", "half", "single-0", "random"});
  const std::string policy = get_string(config, "fail_policy", "fail_fast");
  require_one_of("fail_policy", policy, {"fail_fast", "quarantine"});

  JsonValue canon = JsonValue::object();
  canon.set("model", "sync");
  canon.set("protocol", protocol);
  canon.set("adversary", adversary);
  canon.set("faults", faults);
  canon.set("n", JsonValue(n));
  canon.set("t", JsonValue(t));
  canon.set("pattern", pattern);
  canon.set("reps", JsonValue(get_u64(config, "reps", 50)));
  canon.set("seed", JsonValue(get_u64(config, "seed", 1)));
  canon.set("max_rounds", JsonValue(get_u32(config, "max_rounds", 100000)));
  canon.set("fail_policy", policy);
  canon.set("retries", JsonValue(get_u32(config, "retries", 0)));
  return canon;
}

/// Validates an async run config and rebuilds it in canonical form. The
/// sync-only machinery is rejected loudly rather than ignored, mirroring
/// `synran run --model=async`.
JsonValue canonicalize_async(const JsonValue& config) {
  for (const char* key : {"adversary", "faults", "max_rounds", "fail_policy",
                          "retries"}) {
    if (config.find(key) != nullptr) {
      throw BadRequest(std::string("config.") + key +
                       " does not apply to model 'async'" +
                       (std::string(key) == "adversary"
                            ? " (use config.scheduler)"
                            : ""));
    }
  }
  reject_unknown_keys(config, "config",
                      {"model", "protocol", "scheduler", "delay", "gst",
                       "delta", "retransmit", "n", "t", "pattern", "reps",
                       "seed", "max_steps", "max_time"});
  const std::string protocol = get_string(config, "protocol", "benor");
  require_one_of("protocol", protocol, {"benor"});
  const std::string scheduler = get_string(config, "scheduler", "random");
  require_one_of("scheduler", scheduler,
                 {"fifo", "random", "laggard", "stall"});
  const std::string delay = get_string(config, "delay", "held");
  check_delay(delay);
  const std::uint64_t gst = get_u64(config, "gst", 0);
  const std::uint64_t delta = get_u64(config, "delta", 0);
  if (gst != 0 || delta != 0) {
    if (delay != "held") {
      throw BadRequest("config.gst/config.delta require config.delay 'held' "
                       "(they bound the adversary, not a timed link model)");
    }
    if (delta == 0) {
      throw BadRequest("config.gst needs config.delta >= 1 (the post-GST "
                       "bound)");
    }
  }
  const std::uint32_t n = get_u32(config, "n", 32);
  if (n == 0) throw BadRequest("config.n must be >= 1");
  const std::uint32_t t = get_u32(config, "t", n >= 2 ? (n - 1) / 2 : 0);
  const std::string pattern = get_string(config, "pattern", "random");
  require_one_of("pattern", pattern,
                 {"all-0", "all-1", "half", "single-0", "random"});

  JsonValue canon = JsonValue::object();
  canon.set("model", "async");
  canon.set("protocol", protocol);
  canon.set("scheduler", scheduler);
  canon.set("delay", delay);
  canon.set("gst", JsonValue(gst));
  canon.set("delta", JsonValue(delta));
  canon.set("retransmit", JsonValue(get_u64(config, "retransmit", 0)));
  canon.set("n", JsonValue(n));
  canon.set("t", JsonValue(t));
  canon.set("pattern", pattern);
  canon.set("reps", JsonValue(get_u64(config, "reps", 50)));
  canon.set("seed", JsonValue(get_u64(config, "seed", 1)));
  canon.set("max_steps", JsonValue(get_u64(config, "max_steps", 2000000)));
  canon.set("max_time", JsonValue(get_u64(config, "max_time", 0)));
  return canon;
}

}  // namespace

const char* to_string(Command cmd) {
  switch (cmd) {
    case Command::Run:
      return "run";
    case Command::Ping:
      return "ping";
    case Command::Stats:
      return "stats";
    case Command::Shutdown:
      return "shutdown";
  }
  return "?";
}

ServeRequest parse_request(const std::string& body) {
  std::string error;
  const auto parsed = JsonValue::parse(body, &error);
  if (!parsed.has_value()) {
    throw BadRequest("request is not valid JSON: " + error);
  }
  if (!parsed->is_object()) {
    throw BadRequest("request must be a JSON object");
  }
  reject_unknown_keys(*parsed, "request",
                      {"schema", "id", "cmd", "config", "deadline_ms"});

  const JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kRequestSchema) {
    throw BadRequest(std::string("request schema must be \"") +
                     kRequestSchema + "\"");
  }

  ServeRequest req;
  if (const JsonValue* id = parsed->find("id"); id != nullptr) {
    if (!id->is_string()) throw BadRequest("request id must be a string");
    if (id->as_string().size() > kMaxIdBytes) {
      throw BadRequest("request id exceeds " + std::to_string(kMaxIdBytes) +
                       " bytes");
    }
    req.id = id->as_string();
  }

  const JsonValue* cmd = parsed->find("cmd");
  if (cmd == nullptr || !cmd->is_string()) {
    throw BadRequest("request needs a string cmd");
  }
  const std::string& name = cmd->as_string();
  if (name == "run") {
    req.cmd = Command::Run;
  } else if (name == "ping") {
    req.cmd = Command::Ping;
  } else if (name == "stats") {
    req.cmd = Command::Stats;
  } else if (name == "shutdown") {
    req.cmd = Command::Shutdown;
  } else {
    throw BadRequest("unknown cmd '" + name +
                     "' (expected run, ping, stats, or shutdown)");
  }

  if (const JsonValue* dl = parsed->find("deadline_ms"); dl != nullptr) {
    if (!dl->is_int() || dl->as_int() < 0) {
      throw BadRequest("deadline_ms must be a non-negative integer");
    }
    req.deadline_ms = static_cast<std::uint64_t>(dl->as_int());
  }

  const JsonValue* config = parsed->find("config");
  if (req.cmd != Command::Run) {
    if (config != nullptr) {
      throw BadRequest(std::string("cmd '") + name +
                       "' does not take a config");
    }
    return req;
  }
  JsonValue empty = JsonValue::object();
  if (config == nullptr) config = &empty;
  if (!config->is_object()) {
    throw BadRequest("config must be a JSON object");
  }
  const std::string model = get_string(*config, "model", "sync");
  require_one_of("model", model, {"sync", "async"});
  req.config = model == "async" ? canonicalize_async(*config)
                                : canonicalize_sync(*config);
  return req;
}

std::string cache_key_string(const obs::JsonValue& canonical_config,
                             const std::string& git_rev) {
  return canonical_config.dump() +
         "|seed_schema=" + std::to_string(kSeedSchemaVersion) +
         "|git_rev=" + git_rev;
}

}  // namespace synran::serve
