#include "obs/trace_writer.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace synran::obs {

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out, bool flush_each)
    : out_(&out), flush_each_(flush_each) {}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path, bool flush_each)
    : flush_each_(flush_each), sink_(path) {
  out_ = sink_.stream();
}

void JsonlTraceWriter::write_line(const JsonValue& event) {
  const std::string line = event.dump();
  *out_ << line << '\n';
  if (flush_each_) out_->flush();
  ++events_;
  bytes_ += line.size() + 1;
}

void JsonlTraceWriter::on_run_begin(const RunInfo& info) {
  ++runs_;
  in_run_ = true;
  emit_omissions_ = info.omission_budget > 0 || info.omission_round_cap > 0;
  emit_corruptions_ =
      info.byzantine_budget > 0 || info.byzantine_round_cap > 0;
  JsonValue ev = JsonValue::object()
                     .set("event", "run_begin")
                     .set("schema", kTraceSchema)
                     .set("run", JsonValue(runs_ - 1))
                     .set("n", JsonValue(info.n))
                     .set("t", JsonValue(info.t_budget))
                     .set("per_round_cap", JsonValue(info.per_round_cap))
                     .set("seed", JsonValue(info.seed));
  if (emit_omissions_) {
    ev.set("omission_budget", JsonValue(info.omission_budget))
        .set("omission_round_cap", JsonValue(info.omission_round_cap));
  }
  if (emit_corruptions_) {
    ev.set("byzantine_budget", JsonValue(info.byzantine_budget))
        .set("byzantine_round_cap", JsonValue(info.byzantine_round_cap));
  }
  write_line(ev);
}

void JsonlTraceWriter::on_round_end(const RoundObservation& r) {
  JsonValue ev = JsonValue::object()
                     .set("event", "round")
                     .set("run", JsonValue(runs_ == 0 ? 0 : runs_ - 1))
                     .set("round", JsonValue(r.round))
                     .set("alive", JsonValue(r.alive))
                     .set("halted", JsonValue(r.halted))
                     .set("senders", JsonValue(r.senders))
                     .set("ones", JsonValue(r.ones))
                     .set("zeros", JsonValue(r.zeros))
                     .set("det", JsonValue(r.deterministic))
                     .set("decided", JsonValue(r.decided))
                     .set("crashes", JsonValue(r.crashes))
                     .set("budget_left", JsonValue(r.budget_left))
                     .set("delivered", JsonValue(r.delivered));
  if (emit_omissions_) {
    ev.set("omissions", JsonValue(r.omissions))
        .set("omitted", JsonValue(r.omitted));
  }
  if (emit_corruptions_) {
    ev.set("corruptions", JsonValue(r.corruptions))
        .set("corrupted", JsonValue(r.corrupted));
  }
  write_line(ev);
}

void JsonlTraceWriter::on_run_end(const RunObservation& res) {
  JsonValue ev =
      JsonValue::object()
          .set("event", "run_end")
          .set("run", JsonValue(runs_ == 0 ? 0 : runs_ - 1))
          .set("terminated", JsonValue(res.terminated))
          .set("agreement", JsonValue(res.agreement))
          .set("decision", res.has_decision ? JsonValue(res.decision)
                                            : JsonValue(nullptr))
          .set("rounds_to_decision", JsonValue(res.rounds_to_decision))
          .set("rounds_to_halt", JsonValue(res.rounds_to_halt))
          .set("crashes", JsonValue(res.crashes_total))
          .set("delivered", JsonValue(res.messages_delivered))
          .set("survivors", JsonValue(res.survivors));
  if (emit_omissions_) {
    ev.set("omissions", JsonValue(res.omissions_total))
        .set("omitted", JsonValue(res.messages_omitted));
  }
  if (emit_corruptions_) {
    ev.set("corruptions", JsonValue(res.corruptions_total))
        .set("corrupted", JsonValue(res.messages_corrupted));
  }
  in_run_ = false;
  write_line(ev);
  out_->flush();
}

void JsonlTraceWriter::on_run_abandoned(const RunAbandoned& failure) {
  // Closes the open run if one is in flight; a setup failure (no run_begin
  // yet) stands alone under the index the aborted execution would have used.
  const std::uint64_t run = in_run_ ? runs_ - 1 : runs_;
  in_run_ = false;
  write_line(JsonValue::object()
                 .set("event", "run_abandoned")
                 .set("run", JsonValue(run))
                 .set("rep", JsonValue(std::uint64_t{failure.rep}))
                 .set("seed", JsonValue(failure.seed))
                 .set("attempt", JsonValue(failure.attempt))
                 .set("error", failure.error));
  out_->flush();
}

}  // namespace synran::obs
