#include "obs/trace_writer.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace synran::obs {

void JsonlTraceWriter::write_line(const JsonValue& event) {
  *out_ << event.dump() << '\n';
  if (flush_each_) out_->flush();
  ++events_;
}

void JsonlTraceWriter::on_run_begin(const RunInfo& info) {
  ++runs_;
  write_line(JsonValue::object()
                 .set("event", "run_begin")
                 .set("schema", kTraceSchema)
                 .set("run", JsonValue(runs_ - 1))
                 .set("n", JsonValue(info.n))
                 .set("t", JsonValue(info.t_budget))
                 .set("per_round_cap", JsonValue(info.per_round_cap))
                 .set("seed", JsonValue(info.seed)));
}

void JsonlTraceWriter::on_round_end(const RoundObservation& r) {
  write_line(JsonValue::object()
                 .set("event", "round")
                 .set("run", JsonValue(runs_ == 0 ? 0 : runs_ - 1))
                 .set("round", JsonValue(r.round))
                 .set("alive", JsonValue(r.alive))
                 .set("halted", JsonValue(r.halted))
                 .set("senders", JsonValue(r.senders))
                 .set("ones", JsonValue(r.ones))
                 .set("zeros", JsonValue(r.zeros))
                 .set("det", JsonValue(r.deterministic))
                 .set("decided", JsonValue(r.decided))
                 .set("crashes", JsonValue(r.crashes))
                 .set("budget_left", JsonValue(r.budget_left))
                 .set("delivered", JsonValue(r.delivered)));
}

void JsonlTraceWriter::on_run_end(const RunObservation& res) {
  write_line(
      JsonValue::object()
          .set("event", "run_end")
          .set("run", JsonValue(runs_ == 0 ? 0 : runs_ - 1))
          .set("terminated", JsonValue(res.terminated))
          .set("agreement", JsonValue(res.agreement))
          .set("decision", res.has_decision ? JsonValue(res.decision)
                                            : JsonValue(nullptr))
          .set("rounds_to_decision", JsonValue(res.rounds_to_decision))
          .set("rounds_to_halt", JsonValue(res.rounds_to_halt))
          .set("crashes", JsonValue(res.crashes_total))
          .set("delivered", JsonValue(res.messages_delivered))
          .set("survivors", JsonValue(res.survivors)));
  out_->flush();
}

}  // namespace synran::obs
