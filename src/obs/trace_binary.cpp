#include "obs/trace_binary.hpp"

#include <fstream>
#include <istream>
#include <ostream>

namespace synran::obs {
namespace {

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xFF));
  buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// LEB128: 7 data bits per byte, high bit = continuation.
void put_varint(std::string& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf.push_back(static_cast<char>(v));
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(std::ostream& out, Trace2Header header)
    : out_(&out), header_(std::move(header)) {}

BinaryTraceWriter::BinaryTraceWriter(const std::string& path,
                                     Trace2Header header)
    : header_(std::move(header)), sink_(path) {
  out_ = sink_.stream();
}

void BinaryTraceWriter::ensure_header() {
  if (header_written_) return;
  header_written_ = true;
  // Local buffer: emit() may be mid-flight with scratch_ as its record.
  std::string head;
  put_u64(head, kTrace2Magic);
  put_u16(head, kTrace2Version);
  put_u16(head, header_.seed_schema);
  put_u32(head, 0);  // reserved
  for (std::size_t i = 0; i < kTrace2GitRevSize; ++i) {
    head.push_back(i < header_.git_rev.size() ? header_.git_rev[i] : '\0');
  }
  out_->write(head.data(), static_cast<std::streamsize>(head.size()));
  bytes_ += head.size();
}

void BinaryTraceWriter::emit(const std::string& record) {
  ensure_header();
  out_->write(record.data(), static_cast<std::streamsize>(record.size()));
  bytes_ += record.size();
  ++events_;
}

void BinaryTraceWriter::close() {
  ensure_header();  // even a zero-event trace is a valid, sniffable file
  sink_.close();
}

void BinaryTraceWriter::on_run_begin(const RunInfo& info) {
  ++runs_;
  emit_omissions_ = info.omission_budget > 0 || info.omission_round_cap > 0;
  emit_corruptions_ =
      info.byzantine_budget > 0 || info.byzantine_round_cap > 0;
  std::uint8_t flags = 0;
  if (emit_omissions_) flags |= kTrace2FlagOmissions;
  if (emit_corruptions_) flags |= kTrace2FlagCorruptions;
  scratch_.clear();
  scratch_.push_back(static_cast<char>(kTrace2KindRunBegin));
  scratch_.push_back(static_cast<char>(flags));
  put_varint(scratch_, info.n);
  put_varint(scratch_, info.t_budget);
  put_varint(scratch_, info.per_round_cap);
  put_varint(scratch_, info.seed);
  if (emit_omissions_) {
    put_varint(scratch_, info.omission_budget);
    put_varint(scratch_, info.omission_round_cap);
  }
  if (emit_corruptions_) {
    put_varint(scratch_, info.byzantine_budget);
    put_varint(scratch_, info.byzantine_round_cap);
  }
  emit(scratch_);
}

void BinaryTraceWriter::on_round_end(const RoundObservation& r) {
  scratch_.clear();
  scratch_.push_back(static_cast<char>(kTrace2KindRound));
  put_varint(scratch_, r.round);
  put_varint(scratch_, r.alive);
  put_varint(scratch_, r.halted);
  put_varint(scratch_, r.senders);
  put_varint(scratch_, r.ones);
  put_varint(scratch_, r.zeros);
  put_varint(scratch_, r.deterministic);
  put_varint(scratch_, r.decided);
  put_varint(scratch_, r.crashes);
  put_varint(scratch_, r.budget_left);
  put_varint(scratch_, r.delivered);
  if (emit_omissions_) {
    put_varint(scratch_, r.omissions);
    put_varint(scratch_, r.omitted);
  }
  if (emit_corruptions_) {
    put_varint(scratch_, r.corruptions);
    put_varint(scratch_, r.corrupted);
  }
  emit(scratch_);
}

void BinaryTraceWriter::on_run_end(const RunObservation& res) {
  std::uint8_t flags = 0;
  if (res.terminated) flags |= kTrace2EndFlagTerminated;
  if (res.agreement) flags |= kTrace2EndFlagAgreement;
  if (res.has_decision) flags |= kTrace2EndFlagHasDecision;
  if (res.has_decision && res.decision == 1) flags |= kTrace2EndFlagDecisionOne;
  scratch_.clear();
  scratch_.push_back(static_cast<char>(kTrace2KindRunEnd));
  scratch_.push_back(static_cast<char>(flags));
  put_varint(scratch_, res.rounds_to_decision);
  put_varint(scratch_, res.rounds_to_halt);
  put_varint(scratch_, res.crashes_total);
  put_varint(scratch_, res.messages_delivered);
  put_varint(scratch_, res.survivors);
  if (emit_omissions_) {
    put_varint(scratch_, res.omissions_total);
    put_varint(scratch_, res.messages_omitted);
  }
  if (emit_corruptions_) {
    put_varint(scratch_, res.corruptions_total);
    put_varint(scratch_, res.messages_corrupted);
  }
  emit(scratch_);
  out_->flush();
}

void BinaryTraceWriter::on_run_abandoned(const RunAbandoned& failure) {
  std::string error = failure.error;
  if (error.size() > kTrace2MaxErrorBytes) error.resize(kTrace2MaxErrorBytes);
  scratch_.clear();
  scratch_.push_back(static_cast<char>(kTrace2KindRunAbandoned));
  put_varint(scratch_, failure.rep);
  put_varint(scratch_, failure.seed);
  put_varint(scratch_, failure.attempt);
  put_varint(scratch_, error.size());
  scratch_ += error;
  emit(scratch_);
  out_->flush();
}

BinaryTraceReader::BinaryTraceReader(std::istream& in)
    : in_(&in), path_("<stream>") {
  read_header();
}

BinaryTraceReader::BinaryTraceReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(owned_.get()),
      path_(path) {
  if (!static_cast<std::ifstream&>(*owned_).is_open()) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  read_header();
}

void BinaryTraceReader::fail(const std::string& what) const {
  throw IoError("trace: " + path_ + " @" + std::to_string(offset_) + ": " +
                what);
}

bool BinaryTraceReader::read_byte(std::uint8_t& out, bool eof_ok) {
  const int c = in_->get();
  if (c == std::char_traits<char>::eof()) {
    if (eof_ok && !in_->bad()) return false;
    fail(in_->bad() ? "read failure" : "truncated record");
  }
  out = static_cast<std::uint8_t>(c);
  ++offset_;
  return true;
}

std::uint8_t BinaryTraceReader::require_byte(const char* what) {
  std::uint8_t b = 0;
  if (!read_byte(b, /*eof_ok=*/false)) fail(what);
  return b;
}

std::uint64_t BinaryTraceReader::read_varint(const char* what) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kTrace2MaxVarintBytes; ++i) {
    const std::uint8_t b = require_byte(what);
    // Byte 10 of a u64 varint may only carry its single remaining bit.
    if (i == kTrace2MaxVarintBytes - 1 && (b & 0xFE) != 0) {
      fail(std::string(what) + ": varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) return value;
  }
  fail(std::string(what) + ": varint longer than 10 bytes");
}

void BinaryTraceReader::read_header() {
  std::string header(kTrace2HeaderSize, '\0');
  in_->read(header.data(), static_cast<std::streamsize>(header.size()));
  if (in_->gcount() != static_cast<std::streamsize>(header.size())) {
    fail("file shorter than the synran-trace/2 header");
  }
  offset_ = kTrace2HeaderSize;
  std::uint64_t magic = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    magic |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(header[i]))
             << (8 * i);
  }
  if (magic != kTrace2Magic) fail("bad magic (not a synran-trace/2 file)");
  const std::uint16_t version =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(header[8])) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(header[9]) << 8);
  if (version != kTrace2Version) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kTrace2Version) + ")");
  }
  seed_schema_ =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(header[10])) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(header[11]) << 8);
  const std::size_t rev_at = kTrace2HeaderSize - kTrace2GitRevSize;
  git_rev_ = header.substr(rev_at, kTrace2GitRevSize);
  git_rev_.erase(git_rev_.find_last_not_of('\0') + 1);
}

bool BinaryTraceReader::next(TraceRecord& out) {
  std::uint8_t kind = 0;
  if (!read_byte(kind, /*eof_ok=*/true)) return false;

  out = TraceRecord{};
  switch (kind) {
    case kTrace2KindRunBegin: {
      out.kind = TraceRecordKind::RunBegin;
      const std::uint8_t flags = require_byte("run_begin flags");
      if ((flags & ~(kTrace2FlagOmissions | kTrace2FlagCorruptions)) != 0) {
        fail("run_begin carries unknown flags");
      }
      emit_omissions_ = (flags & kTrace2FlagOmissions) != 0;
      emit_corruptions_ = (flags & kTrace2FlagCorruptions) != 0;
      RunInfo& b = out.begin;
      b.n = static_cast<std::uint32_t>(read_varint("run_begin n"));
      b.t_budget = static_cast<std::uint32_t>(read_varint("run_begin t"));
      b.per_round_cap =
          static_cast<std::uint32_t>(read_varint("run_begin per_round_cap"));
      b.seed = read_varint("run_begin seed");
      if (emit_omissions_) {
        b.omission_budget = static_cast<std::uint32_t>(
            read_varint("run_begin omission_budget"));
        b.omission_round_cap = static_cast<std::uint32_t>(
            read_varint("run_begin omission_round_cap"));
      }
      if (emit_corruptions_) {
        b.byzantine_budget = static_cast<std::uint32_t>(
            read_varint("run_begin byzantine_budget"));
        b.byzantine_round_cap = static_cast<std::uint32_t>(
            read_varint("run_begin byzantine_round_cap"));
      }
      return true;
    }
    case kTrace2KindRound: {
      out.kind = TraceRecordKind::RoundEnd;
      RoundObservation& r = out.round;
      r.round = static_cast<Round>(read_varint("round round"));
      r.alive = static_cast<std::uint32_t>(read_varint("round alive"));
      r.halted = static_cast<std::uint32_t>(read_varint("round halted"));
      r.senders = static_cast<std::uint32_t>(read_varint("round senders"));
      r.ones = static_cast<std::uint32_t>(read_varint("round ones"));
      r.zeros = static_cast<std::uint32_t>(read_varint("round zeros"));
      r.deterministic = static_cast<std::uint32_t>(read_varint("round det"));
      r.decided = static_cast<std::uint32_t>(read_varint("round decided"));
      r.crashes = static_cast<std::uint32_t>(read_varint("round crashes"));
      r.budget_left =
          static_cast<std::uint32_t>(read_varint("round budget_left"));
      r.delivered = read_varint("round delivered");
      if (emit_omissions_) {
        r.omissions =
            static_cast<std::uint32_t>(read_varint("round omissions"));
        r.omitted = read_varint("round omitted");
      }
      if (emit_corruptions_) {
        r.corruptions =
            static_cast<std::uint32_t>(read_varint("round corruptions"));
        r.corrupted = read_varint("round corrupted");
      }
      return true;
    }
    case kTrace2KindRunEnd: {
      out.kind = TraceRecordKind::RunEnd;
      const std::uint8_t flags = require_byte("run_end flags");
      constexpr std::uint8_t known =
          kTrace2EndFlagTerminated | kTrace2EndFlagAgreement |
          kTrace2EndFlagHasDecision | kTrace2EndFlagDecisionOne;
      if ((flags & ~known) != 0) fail("run_end carries unknown flags");
      RunObservation& res = out.end;
      res.terminated = (flags & kTrace2EndFlagTerminated) != 0;
      res.agreement = (flags & kTrace2EndFlagAgreement) != 0;
      res.has_decision = (flags & kTrace2EndFlagHasDecision) != 0;
      res.decision =
          res.has_decision && (flags & kTrace2EndFlagDecisionOne) != 0 ? 1 : 0;
      res.rounds_to_decision = static_cast<std::uint32_t>(
          read_varint("run_end rounds_to_decision"));
      res.rounds_to_halt =
          static_cast<std::uint32_t>(read_varint("run_end rounds_to_halt"));
      res.crashes_total =
          static_cast<std::uint32_t>(read_varint("run_end crashes"));
      res.messages_delivered = read_varint("run_end delivered");
      res.survivors =
          static_cast<std::uint32_t>(read_varint("run_end survivors"));
      if (emit_omissions_) {
        res.omissions_total =
            static_cast<std::uint32_t>(read_varint("run_end omissions"));
        res.messages_omitted = read_varint("run_end omitted");
      }
      if (emit_corruptions_) {
        res.corruptions_total =
            static_cast<std::uint32_t>(read_varint("run_end corruptions"));
        res.messages_corrupted = read_varint("run_end corrupted");
      }
      return true;
    }
    case kTrace2KindRunAbandoned: {
      out.kind = TraceRecordKind::RunAbandoned;
      RunAbandoned& ab = out.abandoned;
      ab.rep =
          static_cast<std::size_t>(read_varint("run_abandoned rep"));
      ab.seed = read_varint("run_abandoned seed");
      ab.attempt =
          static_cast<std::uint32_t>(read_varint("run_abandoned attempt"));
      const std::uint64_t len = read_varint("run_abandoned error_len");
      if (len > kTrace2MaxErrorBytes) {
        fail("run_abandoned error length " + std::to_string(len) +
             " exceeds the 1 MiB cap");
      }
      ab.error.resize(static_cast<std::size_t>(len));
      for (std::size_t i = 0; i < ab.error.size(); ++i) {
        ab.error[i] =
            static_cast<char>(require_byte("run_abandoned error text"));
      }
      return true;
    }
    default:
      fail("unknown record kind " + std::to_string(kind));
  }
}

}  // namespace synran::obs
