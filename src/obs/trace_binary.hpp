// synran-trace/2: varint-packed binary trace writer and reader.
//
// BinaryTraceWriter is the JSONL writer's drop-in sibling: the same
// EngineObserver event stream, persisted via the same temp + atomic-rename
// discipline, but ~an order of magnitude smaller (see trace_format.hpp for
// the wire layout). BinaryTraceReader streams a file back into
// TraceRecords, validating structure as it goes — truncation, a bad magic,
// a wrong version, or a corrupt varint raise obs::IoError with the byte
// offset; hostile input can never index out of bounds or over-allocate.
//
// Like the JSONL writer, the binary writer latches the omission and
// corruption gates per run from run_begin's limits, so fail-stop runs pay
// zero bytes for the omission/corruption fields and conversion between the
// formats is bijective.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/atomic_file.hpp"
#include "obs/trace_format.hpp"
#include "obs/trace_reader.hpp"
#include "obs/trace_writer.hpp"

namespace synran::obs {

/// Header metadata a producer stamps into a synran-trace/2 file. The
/// defaults mark provenance as unknown; batch harnesses pass their seeding
/// schema (exec::kSeedSchemaVersion — obs sits below exec in the layer DAG,
/// so the value arrives as a parameter) and build id.
struct Trace2Header {
  std::uint16_t seed_schema = 0;  ///< 0 = unspecified
  std::string git_rev = "unknown";  ///< truncated to kTrace2GitRevSize
};

/// Streams the observer callbacks as synran-trace/2 records. The header is
/// written lazily before the first record, so an empty run set still yields
/// a self-identifying 24-byte file.
class BinaryTraceWriter final : public TraceWriter {
 public:
  explicit BinaryTraceWriter(std::ostream& out, Trace2Header header = {});

  /// Owning mode: stream into `path + ".tmp"`; close() renames the temp
  /// file onto `path`. Throws IoError if the temp file cannot be opened.
  explicit BinaryTraceWriter(const std::string& path,
                             Trace2Header header = {});

  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

  bool is_open() const { return sink_.is_open(); }
  void close() override;

  std::uint64_t events_written() const override { return events_; }
  std::uint64_t bytes_written() const override { return bytes_; }
  std::uint64_t runs_written() const { return runs_; }
  TraceFormat format() const override { return TraceFormat::Binary; }

 private:
  void ensure_header();
  void emit(const std::string& record);

  std::ostream* out_ = nullptr;
  Trace2Header header_;
  bool header_written_ = false;
  bool emit_omissions_ = false;  ///< latched per run from RunInfo
  bool emit_corruptions_ = false;  ///< latched per run from RunInfo
  std::uint64_t events_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t runs_ = 0;
  std::string scratch_;  ///< reused per-record encode buffer

  AtomicFileSink sink_;  ///< disengaged for the borrowed-stream constructor
};

/// Streams a synran-trace/2 file back into TraceRecords. The header is
/// parsed eagerly in the constructor (so a bad magic fails fast); records
/// decode on next(). A clean EOF at a record boundary ends the stream;
/// anything else — truncation mid-record, an unknown kind tag, an
/// over-long varint, an oversized error string — throws IoError naming the
/// byte offset.
class BinaryTraceReader final : public TraceReader {
 public:
  /// Borrowed stream; must outlive the reader. Throws IoError when the
  /// header is missing or malformed.
  explicit BinaryTraceReader(std::istream& in);

  /// Owning mode: opens `path`; throws IoError when it cannot be read or
  /// its header is malformed.
  explicit BinaryTraceReader(const std::string& path);

  bool next(TraceRecord& out) override;

  std::uint16_t seed_schema() const { return seed_schema_; }
  const std::string& git_rev() const { return git_rev_; }

 private:
  void read_header();
  [[noreturn]] void fail(const std::string& what) const;
  /// One byte; false on clean EOF when `eof_ok`, IoError otherwise.
  bool read_byte(std::uint8_t& out, bool eof_ok);
  std::uint8_t require_byte(const char* what);
  std::uint64_t read_varint(const char* what);

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  std::string path_;  ///< for error messages; "<stream>" when borrowed
  std::uint64_t offset_ = 0;
  bool emit_omissions_ = false;  ///< latched per run, like the writer
  bool emit_corruptions_ = false;  ///< latched per run, like the writer
  std::uint16_t seed_schema_ = 0;
  std::string git_rev_;
};

}  // namespace synran::obs
